// E10 -- system-level view: split L1 + unified L2 + DRAM, with adaptive
// encoding enabled at no level, L1 only, or L1+L2. Shows where the paper's
// D-Cache focus sits in the whole-hierarchy energy picture.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/hierarchy_runner.hpp"
#include "sim/report.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

int main() {
  bench::banner("E10", "hierarchy energy with CNT-Cache at different levels");
  const double scale = bench::scale_from_env(0.5);

  const Workload code = build_workload("ifetch", scale);
  const Workload data = build_workload("zipf_kv", scale);

  struct Row {
    const char* name;
    bool l1, l2;
  };
  const Row rows[] = {{"baseline (no encoding)", false, false},
                      {"CNT-Cache at L1", true, false},
                      {"CNT-Cache at L1+L2", true, true}};

  Table t({"configuration", "L1I", "L1D", "L2", "hierarchy total",
           "hierarchy saving"});
  const std::string csv_path = result_path("fig_hierarchy.csv");
  CsvWriter csv(csv_path,
                {"config", "l1i_j", "l1d_j", "l2_j", "caches_j", "dram_j"});

  double base_caches = 0;
  Energy dram{};
  for (const Row& row : rows) {
    HierarchyRunConfig cfg;
    cfg.cnt_at_l1i = cfg.cnt_at_l1d = row.l1;
    cfg.cnt_at_l2 = row.l2;
    // L2 lines see little reuse (miss traffic only), so speculative
    // read-optimized fills rarely amortize there; fill for the cheap write.
    cfg.l2_cnt.fill_policy = FillDirectionPolicy::kMinWriteEnergy;

    const HierarchyRunResult res = run_hierarchy(cfg, code, data);
    const double caches = res.cache_total().in_joules();
    if (base_caches == 0) base_caches = caches;
    dram = res.dram_energy;

    t.add_row({row.name, res.level("L1I").ledger.total().to_string(),
               res.level("L1D").ledger.total().to_string(),
               res.level("L2").ledger.total().to_string(),
               res.cache_total().to_string(),
               Table::pct(1.0 - caches / base_caches)});
    csv.add_row({row.name,
                 std::to_string(res.level("L1I").ledger.total().in_joules()),
                 std::to_string(res.level("L1D").ledger.total().in_joules()),
                 std::to_string(res.level("L2").ledger.total().in_joules()),
                 std::to_string(caches),
                 std::to_string(res.dram_energy.in_joules())});
  }
  std::cout << t.render()
            << "\nDRAM context: the off-chip traffic costs "
            << dram.to_string()
            << " in every configuration\n(encoding is invisible outside "
               "the arrays and changes no traffic). On-chip,\nL1 absorbs "
               "most accesses, so CNT-Cache at L1 captures most of the "
               "benefit;\nL2 sees only low-reuse miss traffic and is "
               "roughly neutral.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
