// E3 -- encoding granularity: whole-line (K = 1) vs partitioned encoding.
// Finer partitions capture locally dense/sparse structure (Fig. 2's
// argument) at the cost of K direction bits per line.
//
// Runs on the parallel experiment engine: one job per (K, workload),
// aggregated per K, with JSONL telemetry beside the CSV.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exec/engine.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main(int argc, char** argv) {
  bench::banner("E3", "partition count K sweep (whole-line vs fine-grained)");
  const double scale = bench::scale_from_env(0.35);
  const usize jobs = bench::jobs_option(argc, argv);
  const bool resume = bench::resume_option(argc, argv);

  const std::vector<usize> partitions = {1, 2, 4, 8, 16, 32};
  SimConfig base;
  base.with_cmos = base.with_static = false;

  exec::SweepSpec spec;
  spec.base(base).scale(scale).suite().axis(
      "partitions", partitions,
      [](SimConfig& cfg, usize k) { cfg.cnt.partitions = k; });

  exec::ExperimentEngine engine(
      {.jobs = jobs,
       .jsonl_path = result_path("fig_partition_sweep.jsonl"),
       .progress = true,
       .resume = resume,
       .handle_signals = true});
  std::vector<exec::JobOutcome> outcomes;
  try {
    outcomes = engine.run(spec);
  } catch (const exec::SweepInterrupted& e) {
    return bench::report_interrupted(e);
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  const auto groups = exec::group_by_tag(outcomes);

  Table t({"K", "partition bits", "D bits/line", "mean saving",
           "vs ideal (captured)"});
  const std::string csv_path = result_path("fig_partition_sweep.csv");
  CsvWriter csv(csv_path,
                {"partitions", "mean_saving", "ideal_saving", "captured"});

  const SimConfig defaults;
  for (usize i = 0; i < groups.size(); ++i) {
    const usize k = partitions[i];
    const auto results = exec::results_of(groups[i].outcomes);
    const double mean = mean_saving(results);
    const double ideal = mean_saving(results, kPolicyIdeal);
    t.add_row({std::to_string(k),
               std::to_string(defaults.cache.line_bytes * 8 / k),
               std::to_string(k), Table::pct(mean),
               Table::pct(ideal > 0 ? mean / ideal : 0.0)});
    csv.add_row({std::to_string(k), std::to_string(mean),
                 std::to_string(ideal),
                 std::to_string(ideal > 0 ? mean / ideal : 0.0)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ", " << engine.worker_count() << " jobs)\njsonl: "
            << result_path("fig_partition_sweep.jsonl") << "\n";
  csv.finish();
  return 0;
}
