// E3 -- encoding granularity: whole-line (K = 1) vs partitioned encoding.
// Finer partitions capture locally dense/sparse structure (Fig. 2's
// argument) at the cost of K direction bits per line.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E3", "partition count K sweep (whole-line vs fine-grained)");
  const double scale = bench::scale_from_env(0.35);

  Table t({"K", "partition bits", "D bits/line", "mean saving",
           "vs ideal (captured)"});
  const std::string csv_path = result_path("fig_partition_sweep.csv");
  CsvWriter csv(csv_path,
                {"partitions", "mean_saving", "ideal_saving", "captured"});

  for (const usize k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SimConfig cfg;
    cfg.cnt.partitions = k;
    cfg.with_cmos = cfg.with_static = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    const double ideal = mean_saving(results, kPolicyIdeal);
    t.add_row({std::to_string(k),
               std::to_string(cfg.cache.line_bytes * 8 / k),
               std::to_string(k), Table::pct(mean),
               Table::pct(ideal > 0 ? mean / ideal : 0.0)});
    csv.add_row({std::to_string(k), std::to_string(mean),
                 std::to_string(ideal),
                 std::to_string(ideal > 0 ? mean / ideal : 0.0)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  return 0;
}
