// Extension -- per-set history sharing. The paper notes "it is usually
// expensive to add bits to the cache line"; sharing one counter pair per
// set divides the H-field cells by the associativity at the cost of mixing
// the ways' access patterns. This bench quantifies the saving/area
// trade-off of the extension against the paper's per-line design.
#include <iostream>

#include "bench_util.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/bits.hpp"
#include "common/csv.hpp"
#include "energy/array_model.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Extension", "per-line vs per-set history counters");
  const double scale = bench::scale_from_env(0.35);

  Table t({"history scope", "H&D bits/line", "area overhead", "mean saving"});
  const std::string csv_path = result_path("fig_history_scope.csv");
  CsvWriter csv(csv_path,
                {"scope", "meta_bits_per_line", "area_overhead",
                 "mean_saving"});

  for (const HistoryScope scope :
       {HistoryScope::kPerLine, HistoryScope::kPerSet}) {
    SimConfig cfg;
    cfg.cnt.history_scope = scope;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;

    // Area overhead of the widened line for this scope.
    const usize hist = 2 * bits_to_hold(cfg.cnt.window - 1);
    const usize meta =
        cfg.cnt.partitions + (scope == HistoryScope::kPerLine
                                  ? hist
                                  : (hist + cfg.cache.ways - 1) /
                                        cfg.cache.ways);
    ArrayGeometry base = geometry_of(cfg.cache);
    ArrayGeometry widened = base;
    widened.meta_bits = meta;
    const double area_overhead =
        ArrayModel(cfg.tech, widened).area_um2() /
            ArrayModel(cfg.tech, base).area_um2() -
        1.0;

    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    t.add_row({to_string(scope), std::to_string(meta),
               Table::pct(area_overhead), Table::pct(mean)});
    csv.add_row({to_string(scope), std::to_string(meta),
                 std::to_string(area_overhead), std::to_string(mean)});
  }
  std::cout << t.render()
            << "\nSharing the counters per set halves the H&D width for a "
               "4-way cache with\nonly a small accuracy cost: windows fire "
               "per set and re-evaluate the line\nbeing touched at the "
               "boundary.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
