// T3 -- implementation overhead of CNT-Cache: the H&D bits widen every
// line, which costs area and leakage; the FIFOs and threshold table add
// storage. The paper argues these are small; this table quantifies them
// for the default configuration and across window/partition choices.
#include <iostream>

#include "bench_util.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/bits.hpp"
#include "common/csv.hpp"
#include "energy/array_model.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("T3", "CNT-Cache storage / area / leakage overhead");

  SimConfig cfg;
  const ArrayGeometry base_geom = geometry_of(cfg.cache);

  Table t({"W", "K", "H&D bits/line", "line overhead", "area overhead",
           "leakage overhead", "FIFO bytes", "threshold entries"});
  const std::string csv_path = result_path("table_overhead.csv");
  CsvWriter csv(csv_path, {"window", "partitions", "meta_bits",
                           "line_overhead", "area_overhead",
                           "leakage_overhead"});

  const ArrayModel base_model(cfg.tech, base_geom);
  for (const usize w : {7u, 15u, 31u}) {
    for (const usize k : {1u, 8u, 16u}) {
      const usize meta = 2 * bits_to_hold(w - 1) + k;
      ArrayGeometry geom = base_geom;
      geom.meta_bits = meta;
      const ArrayModel model(cfg.tech, geom);
      const double line_overhead =
          static_cast<double>(meta) /
          static_cast<double>(geom.line_bits() + geom.tag_bits + 2);
      const double area_overhead =
          model.area_um2() / base_model.area_um2() - 1.0;
      const double leak_overhead =
          model.leakage_watts() / base_model.leakage_watts() - 1.0;
      // Data FIFO holds line bytes per entry; index FIFO ~8 B per entry.
      const usize fifo_bytes = cfg.cnt.fifo_depth * (cfg.cache.line_bytes + 8);
      t.add_row({std::to_string(w), std::to_string(k), std::to_string(meta),
                 Table::pct(line_overhead), Table::pct(area_overhead),
                 Table::pct(leak_overhead), std::to_string(fifo_bytes),
                 std::to_string(w + 1)});
      csv.add_row({std::to_string(w), std::to_string(k), std::to_string(meta),
                   std::to_string(line_overhead),
                   std::to_string(area_overhead),
                   std::to_string(leak_overhead)});
    }
  }
  std::cout << t.render()
            << "\nThe paper's default (W=15, K=8) widens each line by 16 "
               "bits: ~2.9% more\ncells, with matching leakage. The "
               "threshold table is W+1 small entries of\nprecomputed "
               "bit-counts; the FIFOs are a few hundred bytes total.\n\ncsv: "
            << csv_path << "\n";
  csv.finish();
  return 0;
}
