// Substrate option -- sectored writebacks: per-word dirty bits narrow the
// victim read on dirty evictions to the words that actually changed.
// Orthogonal to encoding, but it shifts where writeback energy goes and so
// belongs in the substrate-sensitivity picture.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Substrate", "sectored writebacks (dirty-word masks)");
  const double scale = bench::scale_from_env(0.35);

  Table t({"writeback", "mean baseline", "mean CNT", "mean saving"});
  const std::string csv_path = result_path("fig_sector_writeback.csv");
  CsvWriter csv(csv_path, {"sectored", "base_j", "cnt_j", "mean_saving"});

  for (const bool on : {false, true}) {
    SimConfig cfg;
    cfg.cache.sector_writeback = on;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    Energy base{}, cnt_e{};
    for (const auto& r : results) {
      base += r.energy(kPolicyBaseline);
      cnt_e += r.energy(kPolicyCnt);
    }
    base = base / static_cast<double>(results.size());
    cnt_e = cnt_e / static_cast<double>(results.size());
    t.add_row({on ? "sectored (dirty words)" : "full line",
               base.to_string(), cnt_e.to_string(),
               Table::pct(mean_saving(results))});
    csv.add_row({on ? "1" : "0", std::to_string(base.in_joules()),
                 std::to_string(cnt_e.in_joules()),
                 std::to_string(mean_saving(results))});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
