// Ablation -- write-policy sensitivity: write-back vs write-through and
// write-allocate vs no-write-allocate change how much write traffic the
// data array absorbs, and with it the encoding opportunity.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Ablation", "write-policy sensitivity");
  const double scale = bench::scale_from_env(0.25);

  Table t({"write policy", "alloc policy", "mean saving"});
  const std::string csv_path = result_path("fig_write_policy.csv");
  CsvWriter csv(csv_path, {"write_policy", "alloc_policy", "mean_saving"});

  struct Combo {
    WritePolicy wp;
    AllocPolicy ap;
  };
  for (const Combo c :
       {Combo{WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate},
        Combo{WritePolicy::kWriteBack, AllocPolicy::kNoWriteAllocate},
        Combo{WritePolicy::kWriteThrough, AllocPolicy::kWriteAllocate},
        Combo{WritePolicy::kWriteThrough, AllocPolicy::kNoWriteAllocate}}) {
    SimConfig cfg;
    cfg.cache.write_policy = c.wp;
    cfg.cache.alloc_policy = c.ap;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    t.add_row({to_string(c.wp), to_string(c.ap), Table::pct(mean)});
    csv.add_row({to_string(c.wp), to_string(c.ap), std::to_string(mean)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
