// PERF -- streamed-replay throughput and memory bound: generate a
// server-traffic trace straight to disk (CNTTRS, docs/trace_streaming.md),
// replay it through the cache and energy models from the chunked reader,
// and report accesses/sec plus peak RSS. A second, small, both-fit-in-RAM
// leg replays the identical access stream once materialized and once
// streamed and asserts the energy ledgers render byte-identically --
// streaming must be a pure I/O change, never a results change.
//
//   bench_perf_stream_replay [--bytes N] [--chunk-capacity N] [--keep-trace]
//
// --bytes targets the on-disk trace size (default 32 MiB; the acceptance
// run uses >= 1 GiB). Results land in $CNT_RESULTS_DIR (default
// ./results) as BENCH_stream_replay.json, schema cnt-bench-perf-v2
// (stable identity fields split from the run-varying "timing" object so
// perf JSONs diff cleanly), consumed by scripts/check_regression.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/json.hpp"
#include "exec/options.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/stats_dump.hpp"
#include "trace/gen/server_traffic.hpp"
#include "trace/stream/stream_reader.hpp"
#include "trace/stream/stream_writer.hpp"
#include "trace/stream/trace_source.hpp"

using namespace cnt;

namespace {

u64 peak_rss_bytes() {
#if defined(__unix__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<u64>(ru.ru_maxrss) * 1024;  // ru_maxrss is in KiB
  }
#endif
  return 0;
}

u64 file_size(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto pos = in.tellg();
  return pos < 0 ? 0 : static_cast<u64>(pos);
}

/// Render a result's ledger-relevant fields to a comparable string. The
/// workload label is normalized away: the in-RAM leg is named after its
/// trace, the streamed leg after its file path.
std::string ledger_fingerprint(SimResult r) {
  r.workload = "replay";
  std::ostringstream os;
  dump_json(r, os);
  return os.str();
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("PERF", "streamed trace replay (throughput + memory bound)");
  const u64 target_bytes =
      bench::u64_option(argc, argv, "--bytes", u64{32} << 20);
  const u64 chunk_capacity = bench::u64_option(
      argc, argv, "--chunk-capacity", stream::kDefaultChunkCapacity);
  const bool keep_trace = has_flag(argc, argv, "--keep-trace");
  if (chunk_capacity == 0 || chunk_capacity > stream::kMaxChunkCapacity) {
    std::cerr << "--chunk-capacity must be in [1, "
              << stream::kMaxChunkCapacity << "]\n";
    return 1;
  }

  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;

  try {
    // --- leg 1: generate the big trace straight to disk ------------------
    // The generator emits ~5 accesses per op at ~3 bytes each on disk, so
    // ops ~= bytes / 15 lands near the target; the exact size is reported.
    gen::ServerTrafficParams p;
    p.ops = static_cast<usize>(std::max<u64>(target_bytes / 15, 10000));
    const std::string trace_path = result_path("stream_replay.trs");
    u64 accesses = 0;
    {
      stream::StreamTraceWriter writer(trace_path,
                                       static_cast<u32>(chunk_capacity));
      accesses = gen::generate_server_traffic(p, writer);
      writer.finish();
    }
    const u64 disk_bytes = file_size(trace_path);
    std::cout << "trace: " << trace_path << " (" << accesses << " accesses, "
              << disk_bytes << " bytes, "
              << static_cast<double>(disk_bytes) /
                     static_cast<double>(accesses)
              << " B/access)\n";

    // --- leg 2: streamed replay, timed -----------------------------------
    stream::StreamTraceSource source(trace_path);
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult streamed = simulate(source, {}, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double aps =
        seconds > 0 ? static_cast<double>(accesses) / seconds : 0.0;
    const u64 rss = peak_rss_bytes();
    std::cout << "replay: " << seconds << " s, " << aps
              << " accesses/sec, peak RSS " << rss << " bytes ("
              << static_cast<double>(rss) / (1u << 20) << " MiB)\n";

    // --- leg 3: in-RAM vs. streamed ledger identity (small size) ---------
    gen::ServerTrafficParams small = p;
    small.ops = 20000;
    Trace in_ram("stream_replay_identity");
    {
      TraceCollector collect(in_ram);
      (void)gen::generate_server_traffic(small, collect);
    }
    const std::string small_path = result_path("stream_replay_small.trs");
    {
      stream::StreamTraceWriter writer(small_path,
                                       static_cast<u32>(chunk_capacity));
      (void)gen::generate_server_traffic(small, writer);
      writer.finish();
    }
    VectorTraceSource ram_source(in_ram);
    stream::StreamTraceSource disk_source(small_path);
    const std::string ram_fp = ledger_fingerprint(simulate(ram_source, {}, cfg));
    const std::string disk_fp =
        ledger_fingerprint(simulate(disk_source, {}, cfg));
    const bool identical = ram_fp == disk_fp;
    std::cout << "ledger identity (in-RAM vs. streamed, "
              << in_ram.size() << " accesses): "
              << (identical ? "byte-identical" : "MISMATCH") << "\n";

    // --- emit BENCH_stream_replay.json ------------------------------------
    const std::string json_path = result_path("BENCH_stream_replay.json");
    {
      io::AtomicFileWriter out(json_path, "bench");
      JsonWriter j(out.stream());
      j.begin_object();
      // Schema v2 splits the run-invariant identity fields (diff cleanly
      // across runs and machines) from the run-varying "timing" object
      // (wall clock, throughput, RSS) -- docs/performance.md.
      j.kv("schema", "cnt-bench-perf-v2");
      j.kv("bench", "stream_replay");
      // Perf numbers measured with failpoints armed are invalid;
      // check_regression.py refuses documents where this is true.
      j.kv("failpoints_enabled", fp::enabled());
      // Likewise a run with the job watchdog armed: cancellation polls
      // are still one relaxed load, but the environment is non-standard.
      j.kv("job_timeout_armed", exec::job_timeout_from_env(0) != 0);
      j.kv("accesses", accesses);
      j.kv("file_bytes", disk_bytes);
      j.kv("chunk_capacity", chunk_capacity);
      j.kv("ledger_identical", identical);
      j.kv("cnt_saving", streamed.saving(kPolicyCnt));
      j.key("timing").begin_object();
      j.kv("seconds", seconds);
      j.kv("accesses_per_sec", aps);
      j.kv("peak_rss_bytes", rss);
      j.end_object();
      j.end_object();
      out.stream() << '\n';
      out.commit();
    }
    std::cout << "json: " << json_path << "\n";

    if (!keep_trace) {
      (void)std::remove(trace_path.c_str());
      (void)std::remove(small_path.c_str());
    }
    if (!identical) {
      std::cerr << "FAIL: streamed replay diverged from the in-RAM ledger\n";
      return 1;
    }
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  return 0;
}
