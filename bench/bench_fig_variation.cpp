// M4 -- process-variation Monte Carlo: CNFET fabrication varies tube count
// and diameter per device; this experiment reruns the headline measurement
// over sampled cell corners and reports the saving with error bars, the
// robustness check a hardware venue would ask for.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "device/variation.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("M4", "process-variation Monte Carlo on the headline saving");
  const double scale = bench::scale_from_env(0.15);
  constexpr int kSamples = 12;

  Table t({"sample", "wr1/wr0", "rd0/rd1", "mean saving"});
  const std::string csv_path = result_path("fig_variation.csv");
  CsvWriter csv(csv_path, {"sample", "wr_ratio", "rd_ratio", "mean_saving"});

  Rng rng(0xC0FFEE);
  const VariationParams var;
  Accumulator savings;
  for (int s = 0; s < kSamples; ++s) {
    SimConfig cfg;
    cfg.tech.cell = sample_bit_energies(CnfetDeviceParams{}, var, rng);
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    savings.add(mean);
    const double wr_ratio = cfg.tech.cell.wr1 / cfg.tech.cell.wr0;
    const double rd_ratio = cfg.tech.cell.rd0 / cfg.tech.cell.rd1;
    t.add_row({std::to_string(s), Table::num(wr_ratio, 1) + "x",
               Table::num(rd_ratio, 1) + "x", Table::pct(mean)});
    csv.add_row({std::to_string(s), std::to_string(wr_ratio),
                 std::to_string(rd_ratio), std::to_string(mean)});
  }
  t.add_row({"mean +- std", "", "",
             Table::pct(savings.mean()) + " +- " +
                 Table::pct(savings.stddev())});
  std::cout << t.render()
            << "\nacross " << kSamples
            << " sampled process corners the headline saving moves by a "
               "couple of\npoints at most -- the mechanism depends on the "
               "asymmetry's existence, not\nits exact magnitude.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  return 0;
}
