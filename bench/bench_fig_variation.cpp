// M4 -- process-variation Monte Carlo: CNFET fabrication varies tube count
// and diameter per device; this experiment reruns the headline measurement
// over sampled cell corners and reports the saving with error bars, the
// robustness check a hardware venue would ask for.
//
// Runs on the parallel experiment engine: one job per (sample, workload),
// aggregated per sample in submission order, JSONL telemetry beside the
// CSV. The corner set is drawn up front from one seeded Rng, so the grid
// is identical no matter how many jobs execute it; `--samples N` widens
// the Monte Carlo and `--seed S` re-rolls the corners (defaults 12 and
// 0xC0FFEE, the historical serial loop).
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "device/variation.hpp"
#include "exec/engine.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main(int argc, char** argv) {
  bench::banner("M4", "process-variation Monte Carlo on the headline saving");
  const double scale = bench::scale_from_env(0.15);
  const usize jobs = bench::jobs_option(argc, argv);
  const bool resume = bench::resume_option(argc, argv);
  const u64 samples = bench::u64_option(argc, argv, "--samples", 12);
  const u64 seed = bench::u64_option(argc, argv, "--seed", 0xC0FFEE);

  // Draw every process corner before expanding the sweep: one Rng,
  // consumed in sample order, exactly like the old serial loop.
  Rng rng(seed);
  const VariationParams var;
  std::vector<BitEnergies> cells;
  cells.reserve(samples);
  for (u64 s = 0; s < samples; ++s) {
    cells.push_back(sample_bit_energies(CnfetDeviceParams{}, var, rng));
  }

  SimConfig base;
  base.with_cmos = base.with_static = base.with_ideal = false;

  std::vector<usize> sample_ids(samples);
  for (usize s = 0; s < samples; ++s) sample_ids[s] = s;

  exec::SweepSpec spec;
  spec.base(base).scale(scale).suite().axis(
      "sample", sample_ids,
      [&cells](SimConfig& cfg, usize s) { cfg.tech.cell = cells[s]; });

  exec::ExperimentEngine engine(
      {.jobs = jobs,
       .jsonl_path = result_path("fig_variation.jsonl"),
       .progress = true,
       .resume = resume,
       .handle_signals = true});
  std::vector<exec::JobOutcome> outcomes;
  try {
    outcomes = engine.run(spec);
  } catch (const exec::SweepInterrupted& e) {
    return bench::report_interrupted(e);
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  const auto groups = exec::group_by_tag(outcomes);

  Table t({"sample", "wr1/wr0", "rd0/rd1", "mean saving"});
  const std::string csv_path = result_path("fig_variation.csv");
  CsvWriter csv(csv_path, {"sample", "wr_ratio", "rd_ratio", "mean_saving"});

  Accumulator savings;
  for (usize s = 0; s < groups.size(); ++s) {
    const auto results = exec::results_of(groups[s].outcomes);
    const double mean = mean_saving(results);
    savings.add(mean);
    const double wr_ratio = cells[s].wr1 / cells[s].wr0;
    const double rd_ratio = cells[s].rd0 / cells[s].rd1;
    t.add_row({std::to_string(s), Table::num(wr_ratio, 1) + "x",
               Table::num(rd_ratio, 1) + "x", Table::pct(mean)});
    csv.add_row({std::to_string(s), std::to_string(wr_ratio),
                 std::to_string(rd_ratio), std::to_string(mean)});
  }
  t.add_row({"mean +- std", "", "",
             Table::pct(savings.mean()) + " +- " +
                 Table::pct(savings.stddev())});
  std::cout << t.render()
            << "\nacross " << samples
            << " sampled process corners the headline saving moves by a "
               "couple of\npoints at most -- the mechanism depends on the "
               "asymmetry's existence, not\nits exact magnitude.\n\ncsv: "
            << csv_path << " (scale " << scale << ", seed " << seed << ", "
            << engine.worker_count() << " jobs)\njsonl: "
            << result_path("fig_variation.jsonl") << "\n";
  csv.finish();
  return 0;
}
