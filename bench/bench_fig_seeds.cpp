// M5 -- statistical replication: the suite's generators are deterministic
// per seed; rerunning the headline measurement over perturbed seeds shows
// how much of the reported saving is mechanism and how much is the luck of
// one synthetic instance.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("M5", "headline saving across workload seeds");
  const double scale = bench::scale_from_env(0.2);
  constexpr u64 kSeeds = 8;

  Table t({"seed offset", "mean saving"});
  const std::string csv_path = result_path("fig_seeds.csv");
  CsvWriter csv(csv_path, {"seed_offset", "mean_saving"});

  Accumulator acc;
  for (u64 seed = 0; seed < kSeeds; ++seed) {
    SimConfig cfg;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale, seed);
    const double mean = mean_saving(results);
    acc.add(mean);
    t.add_row({std::to_string(seed), Table::pct(mean)});
    csv.add_row({std::to_string(seed), std::to_string(mean)});
  }
  t.add_row({"mean +- std",
             Table::pct(acc.mean()) + " +- " + Table::pct(acc.stddev())});
  std::cout << t.render()
            << "\nseed 0 is the canonical instance used everywhere else; "
               "the spread across\nre-seeded instances bounds the synthetic "
               "suite's sampling noise.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
