// M2 -- robustness to the reconstructed cell model: the paper's Table
// `tab:rw-analysis` is lost, so our CNFET energies are literature-derived.
// This sweep scales the cell's read/write asymmetry (the wr1/wr0 and
// rd0/rd1 spreads) around the reconstruction and shows the headline saving
// as a function of it -- the conclusion holds for any meaningfully
// asymmetric cell and vanishes, as it must, for a symmetric one.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

namespace {

/// Scale the deltas of the CNFET cell by `k`, keeping the mean per-bit
/// read and write energies fixed (so the *baseline* cost stays comparable
/// and only the exploitable asymmetry changes).
TechParams scaled_asymmetry(double k) {
  TechParams t = TechParams::cnfet();
  const Energy rd_mean = (t.cell.rd0 + t.cell.rd1) / 2.0;
  const Energy wr_mean = (t.cell.wr0 + t.cell.wr1) / 2.0;
  const Energy rd_half = (t.cell.rd0 - t.cell.rd1) / 2.0 * k;
  const Energy wr_half = (t.cell.wr1 - t.cell.wr0) / 2.0 * k;
  t.cell.rd0 = rd_mean + rd_half;
  t.cell.rd1 = rd_mean - rd_half;
  t.cell.wr1 = wr_mean + wr_half;
  t.cell.wr0 = wr_mean - wr_half;
  t.name = "CNFET-asym-" + std::to_string(k);
  return t;
}

}  // namespace

int main() {
  bench::banner("M2", "sensitivity to the cell's read/write asymmetry");
  const double scale = bench::scale_from_env(0.25);

  Table t({"asymmetry x", "wr1/wr0", "rd0/rd1", "mean saving"});
  const std::string csv_path = result_path("fig_asymmetry_sweep.csv");
  CsvWriter csv(csv_path, {"asymmetry", "wr_ratio", "rd_ratio",
                           "mean_saving"});

  for (const double k : {0.0, 0.25, 0.5, 0.75, 1.0, 1.2}) {
    SimConfig cfg;
    cfg.tech = scaled_asymmetry(k);
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    const double wr_ratio = cfg.tech.cell.wr0.in_joules() > 0
                                ? cfg.tech.cell.wr1 / cfg.tech.cell.wr0
                                : 0.0;
    const double rd_ratio = cfg.tech.cell.rd1.in_joules() > 0
                                ? cfg.tech.cell.rd0 / cfg.tech.cell.rd1
                                : 0.0;
    t.add_row({Table::num(k, 2), Table::num(wr_ratio, 2),
               Table::num(rd_ratio, 2), Table::pct(mean)});
    csv.add_row({std::to_string(k), std::to_string(wr_ratio),
                 std::to_string(rd_ratio), std::to_string(mean)});
  }
  std::cout << t.render()
            << "\nx = 1.0 is the literature-derived reconstruction "
               "(wr1/wr0 ~= 9.7);\nat x = 0 the cell is symmetric and "
               "adaptive encoding can only lose its overhead.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  return 0;
}
