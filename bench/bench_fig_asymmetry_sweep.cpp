// M2 -- robustness to the reconstructed cell model: the paper's Table
// `tab:rw-analysis` is lost, so our CNFET energies are literature-derived.
// This sweep scales the cell's read/write asymmetry (the wr1/wr0 and
// rd0/rd1 spreads) around the reconstruction and shows the headline saving
// as a function of it -- the conclusion holds for any meaningfully
// asymmetric cell and vanishes, as it must, for a symmetric one.
//
// Runs on the parallel experiment engine: one job per (x, workload),
// aggregated per asymmetry factor, with JSONL telemetry beside the CSV.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exec/engine.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

namespace {

/// Scale the deltas of the CNFET cell by `k`, keeping the mean per-bit
/// read and write energies fixed (so the *baseline* cost stays comparable
/// and only the exploitable asymmetry changes).
TechParams scaled_asymmetry(double k) {
  TechParams t = TechParams::cnfet();
  const Energy rd_mean = (t.cell.rd0 + t.cell.rd1) / 2.0;
  const Energy wr_mean = (t.cell.wr0 + t.cell.wr1) / 2.0;
  const Energy rd_half = (t.cell.rd0 - t.cell.rd1) / 2.0 * k;
  const Energy wr_half = (t.cell.wr1 - t.cell.wr0) / 2.0 * k;
  t.cell.rd0 = rd_mean + rd_half;
  t.cell.rd1 = rd_mean - rd_half;
  t.cell.wr1 = wr_mean + wr_half;
  t.cell.wr0 = wr_mean - wr_half;
  t.name = "CNFET-asym-" + std::to_string(k);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("M2", "sensitivity to the cell's read/write asymmetry");
  const double scale = bench::scale_from_env(0.25);
  const usize jobs = bench::jobs_option(argc, argv);
  const bool resume = bench::resume_option(argc, argv);

  const std::vector<double> factors = {0.0, 0.25, 0.5, 0.75, 1.0, 1.2};
  SimConfig base;
  base.with_cmos = base.with_static = base.with_ideal = false;

  exec::SweepSpec spec;
  spec.base(base).scale(scale).suite().axis(
      "asymmetry", factors,
      [](SimConfig& cfg, double k) { cfg.tech = scaled_asymmetry(k); });

  exec::ExperimentEngine engine(
      {.jobs = jobs,
       .jsonl_path = result_path("fig_asymmetry_sweep.jsonl"),
       .progress = true,
       .resume = resume,
       .handle_signals = true});
  std::vector<exec::JobOutcome> outcomes;
  try {
    outcomes = engine.run(spec);
  } catch (const exec::SweepInterrupted& e) {
    return bench::report_interrupted(e);
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  const auto groups = exec::group_by_tag(outcomes);

  Table t({"asymmetry x", "wr1/wr0", "rd0/rd1", "mean saving"});
  const std::string csv_path = result_path("fig_asymmetry_sweep.csv");
  CsvWriter csv(csv_path, {"asymmetry", "wr_ratio", "rd_ratio",
                           "mean_saving"});

  for (usize i = 0; i < groups.size(); ++i) {
    const double k = factors[i];
    const auto results = exec::results_of(groups[i].outcomes);
    const double mean = mean_saving(results);
    const TechParams tech = scaled_asymmetry(k);
    const double wr_ratio = tech.cell.wr0.in_joules() > 0
                                ? tech.cell.wr1 / tech.cell.wr0
                                : 0.0;
    const double rd_ratio = tech.cell.rd1.in_joules() > 0
                                ? tech.cell.rd0 / tech.cell.rd1
                                : 0.0;
    t.add_row({Table::num(k, 2), Table::num(wr_ratio, 2),
               Table::num(rd_ratio, 2), Table::pct(mean)});
    csv.add_row({std::to_string(k), std::to_string(wr_ratio),
                 std::to_string(rd_ratio), std::to_string(mean)});
  }
  std::cout << t.render()
            << "\nx = 1.0 is the literature-derived reconstruction "
               "(wr1/wr0 ~= 9.7);\nat x = 0 the cell is symmetric and "
               "adaptive encoding can only lose its overhead.\n\ncsv: "
            << csv_path << " (scale " << scale << ", "
            << engine.worker_count() << " jobs)\njsonl: "
            << result_path("fig_asymmetry_sweep.jsonl") << "\n";
  csv.finish();
  return 0;
}
