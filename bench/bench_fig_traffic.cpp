// E-traffic -- encoding win across the server-traffic scenario family
// (docs/trace_streaming.md): the same Zipfian KV core under steady,
// diurnal, write-bursty, scan-heavy and gather-heavy traffic. The
// interesting spread is how the adaptive predictor's win moves with the
// read/write mix and the access-pattern regularity.
//
// Runs on the parallel experiment engine: one job per scenario, JSONL
// telemetry beside the CSV. `--jobs 1` reproduces the serial reference
// bit-for-bit.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exec/engine.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/gen/server_traffic.hpp"

using namespace cnt;

int main(int argc, char** argv) {
  bench::banner("E-traffic",
                "server-traffic scenarios (encoding win vs. traffic shape)");
  const double scale = bench::scale_from_env(0.25);
  const usize jobs = bench::jobs_option(argc, argv);
  const bool resume = bench::resume_option(argc, argv);

  std::vector<std::string> scenarios = {"server_traffic"};
  for (const auto& sc : gen::traffic_scenarios()) scenarios.push_back(sc.name);

  SimConfig base;
  base.with_cmos = false;

  exec::SweepSpec spec;
  spec.base(base).scale(scale).workloads(scenarios);

  exec::ExperimentEngine engine(
      {.jobs = jobs,
       .jsonl_path = result_path("fig_traffic.jsonl"),
       .progress = true,
       .resume = resume,
       .handle_signals = true});
  std::vector<exec::JobOutcome> outcomes;
  try {
    outcomes = engine.run(spec);
  } catch (const exec::SweepInterrupted& e) {
    return bench::report_interrupted(e);
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  const auto groups = exec::group_by_tag(outcomes);
  std::vector<SimResult> results;
  for (const auto& g : groups) {
    for (const auto& r : exec::results_of(g.outcomes)) {
      results.push_back(r);
    }
  }

  Table t({"scenario", "accesses", "write frac", "hit rate", "static",
           "CNT-Cache", "ideal"});
  const std::string csv_path = result_path("fig_traffic.csv");
  CsvWriter csv(csv_path, {"scenario", "accesses", "write_fraction",
                           "hit_rate", "static_saving", "cnt_saving",
                           "ideal_saving"});
  for (const auto& r : results) {
    const double hit = r.cache_stats.hit_rate();
    t.add_row({r.workload, std::to_string(r.trace_stats.accesses),
               Table::pct(r.trace_stats.write_fraction), Table::pct(hit),
               Table::pct(r.saving(kPolicyStatic)),
               Table::pct(r.saving(kPolicyCnt)),
               Table::pct(r.saving(kPolicyIdeal))});
    csv.add_row({r.workload, std::to_string(r.trace_stats.accesses),
                 std::to_string(r.trace_stats.write_fraction),
                 std::to_string(hit),
                 std::to_string(r.saving(kPolicyStatic)),
                 std::to_string(r.saving(kPolicyCnt)),
                 std::to_string(r.saving(kPolicyIdeal))});
  }
  t.add_row({"mean", "", "", "", Table::pct(mean_saving(results, kPolicyStatic)),
             Table::pct(mean_saving(results)),
             Table::pct(mean_saving(results, kPolicyIdeal))});
  std::cout << t.render() << "\n"
            << "only steady traffic lets the predictor capture the oracle's "
               "headroom;\nhot-set drift, write bursts and especially "
               "read-once scan/gather fills\n(low hit rate, no reuse to "
               "learn from) push the committed encodings the\nwrong way -- "
               "the oracle column shows the headroom is still there.\n\ncsv: "
            << csv_path << " (scale " << scale << ", "
            << engine.worker_count() << " jobs)\njsonl: "
            << result_path("fig_traffic.jsonl") << "\n";
  csv.finish();
  return 0;
}
