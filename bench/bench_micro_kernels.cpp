// Microbenchmarks (google-benchmark): throughput of the simulator's hot
// kernels -- bit counting, line encoding, predictor evaluation, functional
// cache access, and the end-to-end simulation loop.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "cache/cache.hpp"
#include "cnt/cnt_policy.hpp"
#include "cnt/encoding.hpp"
#include "cnt/predictor.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "sim/runner.hpp"
#include "sim/stats_dump.hpp"
#include "trace/capture.hpp"
#include "trace/workload_suite.hpp"

namespace {

using namespace cnt;

std::vector<u8> random_line(u64 seed, usize bytes = 64) {
  Rng rng(seed);
  std::vector<u8> line(bytes);
  for (auto& b : line) b = rng.next_byte();
  return line;
}

void BM_Popcount64B(benchmark::State& state) {
  const auto line = random_line(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(popcount(line));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 64);
}
BENCHMARK(BM_Popcount64B);

void BM_PopcountRange(benchmark::State& state) {
  const auto line = random_line(2);
  usize i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(popcount_range(line, i % 64, 512 - (i % 64)));
    ++i;
  }
}
BENCHMARK(BM_PopcountRange);

void BM_EncodeLine(benchmark::State& state) {
  const PartitionScheme ps(64, static_cast<usize>(state.range(0)));
  const auto line = random_line(3);
  std::vector<u8> out(64);
  u64 dirs = 0xA5A5A5A5A5A5A5A5ULL;
  for (auto _ : state) {
    encode_line(ps, line, dirs, out);
    benchmark::DoNotOptimize(out.data());
    dirs = (dirs << 1) | (dirs >> 63);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 64);
}
BENCHMARK(BM_EncodeLine)->Arg(1)->Arg(8)->Arg(64);

void BM_StoredOnes(benchmark::State& state) {
  const PartitionScheme ps(64, 8);
  const auto line = random_line(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stored_ones(ps, line, 0x5A));
  }
}
BENCHMARK(BM_StoredOnes);

void BM_ThresholdTableBuild(benchmark::State& state) {
  const auto cell = TechParams::cnfet().cell;
  for (auto _ : state) {
    const ThresholdTable t(cell, static_cast<usize>(state.range(0)), 64);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ThresholdTableBuild)->Arg(15)->Arg(63);

void BM_PredictorWindow(benchmark::State& state) {
  const Predictor p(TechParams::cnfet().cell, PartitionScheme(64, 8), 15);
  const auto line = random_line(5);
  LineState st;
  usize i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.on_access(st, (i++ % 4) == 0, line));
  }
}
BENCHMARK(BM_PredictorWindow);

void BM_CacheAccess(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 32 * 1024;
  cfg.ways = 4;
  MainMemory mem;
  Cache cache(cfg, mem);
  Rng rng(6);
  for (auto _ : state) {
    cache.access(MemAccess::read(rng.uniform(1 << 16) * 8));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_CacheAccessWithCntPolicy(benchmark::State& state) {
  CacheConfig cfg;
  cfg.size_bytes = 32 * 1024;
  cfg.ways = 4;
  MainMemory mem;
  Cache cache(cfg, mem);
  CntPolicy policy("cnt", TechParams::cnfet(), geometry_of(cfg), CntConfig{});
  cache.add_sink(policy);
  Rng rng(7);
  for (auto _ : state) {
    cache.access(MemAccess::read(rng.uniform(1 << 16) * 8));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheAccessWithCntPolicy);

void BM_StoredOnesRange(benchmark::State& state) {
  const PartitionScheme ps(64, 8);
  const auto line = random_line(8);
  usize i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stored_ones_range(ps, line, 0xA5, (i % 56) * 8, (i % 56) * 8 + 64));
    ++i;
  }
}
BENCHMARK(BM_StoredOnesRange);

void BM_TraceCaptureStore(benchmark::State& state) {
  TraceCapture tc("bm");
  auto arr = tc.array<u64>(0x1000, 4096);
  usize i = 0;
  for (auto _ : state) {
    arr[i % 4096] = i;
    ++i;
    if (tc.recorded() > 1u << 20) {
      (void)tc.take();
      arr = tc.array<u64>(0x1000, 4096);
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TraceCaptureStore);

void BM_JsonDump(benchmark::State& state) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const std::vector<SimResult> results{
      simulate(build_workload("zipf_kv", 0.02), cfg)};
  for (auto _ : state) {
    std::ostringstream os;
    dump_json(results, os);
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_JsonDump);

void BM_EndToEndSimulate(benchmark::State& state) {
  const Workload w = build_workload("zipf_kv", 0.05);
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(w, cfg));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(w.trace.size()));
}
BENCHMARK(BM_EndToEndSimulate);

}  // namespace
