// Ablation -- substrate sensitivity: does the saving depend on the cache's
// replacement policy? (It shouldn't much: encoding profit follows the data
// and access mix, and replacement only shifts which lines are resident.)
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Ablation", "replacement-policy sensitivity");
  const double scale = bench::scale_from_env(0.25);

  Table t({"replacement", "mean hit%", "mean saving"});
  const std::string csv_path = result_path("fig_replacement.csv");
  CsvWriter csv(csv_path, {"replacement", "mean_hit_rate", "mean_saving"});

  for (const ReplKind kind : {ReplKind::kLru, ReplKind::kTreePlru,
                              ReplKind::kFifo, ReplKind::kRandom}) {
    SimConfig cfg;
    cfg.cache.replacement = kind;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    Accumulator hit;
    for (const auto& r : results) hit.add(r.cache_stats.hit_rate());
    const double mean = mean_saving(results);
    t.add_row({to_string(kind), Table::pct(hit.mean()), Table::pct(mean)});
    csv.add_row({to_string(kind), std::to_string(hit.mean()),
                 std::to_string(mean)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
