// M1 -- mechanism chart: adaptive-encoding saving as a function of the
// data's bit-1 density and the access mix. This is the figure that explains
// *why* every other number looks the way it does: profit peaks at extreme
// densities (far from 0.5) and flips preference as writes take over.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/gen/workloads.hpp"

using namespace cnt;

int main() {
  bench::banner("M1", "saving vs data density x write mix");
  const double scale = bench::scale_from_env(1.0);

  Table t({"bit1 density", "wr=5%", "wr=20%", "wr=50%", "wr=80%"});
  const std::string csv_path = result_path("fig_density_sweep.csv");
  CsvWriter csv(csv_path, {"density", "write_fraction", "cnt_saving",
                           "static_saving", "ideal_saving"});

  const double write_fracs[] = {0.05, 0.20, 0.50, 0.80};
  for (const double d :
       {0.02, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.95}) {
    std::vector<std::string> row{Table::num(d, 2)};
    for (const double wf : write_fracs) {
      gen::DensityProbeParams p;
      p.bit1_density = d;
      p.write_fraction = wf;
      p.accesses = static_cast<usize>(30000 * scale);
      SimConfig cfg;
      cfg.with_cmos = false;
      const auto res = simulate(gen::density_probe(p), cfg);
      row.push_back(Table::pct(res.saving(kPolicyCnt)));
      csv.add_row({std::to_string(d), std::to_string(wf),
                   std::to_string(res.saving(kPolicyCnt)),
                   std::to_string(res.saving(kPolicyStatic)),
                   std::to_string(res.saving(kPolicyIdeal))});
    }
    t.add_row(std::move(row));
  }
  std::cout << t.render()
            << "\nsavings peak far from density 0.5 and survive moderate "
               "write mixes;\nat density ~0.5 there is nothing to encode "
               "and the overheads show.\n\ncsv: "
            << csv_path << "\n";
  csv.finish();
  return 0;
}
