// E5 -- predictor quality: per-benchmark comparison of no encoding
// (baseline), static whole-line inversion, adaptive CNT-Cache, and the
// unattainable per-access oracle. The interesting column is the fraction
// of the oracle's saving that the adaptive predictor captures.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E5", "encoding-policy comparison (static / adaptive / oracle)");
  const double scale = bench::scale_from_env(0.5);

  SimConfig cfg;
  const auto results = run_suite(cfg, scale);

  Table t({"workload", "static", "CNT-Cache", "ideal", "captured"});
  const std::string csv_path = result_path("fig_policy_compare.csv");
  CsvWriter csv(csv_path, {"workload", "static_saving", "cnt_saving",
                           "ideal_saving", "captured"});
  Accumulator captured_acc;
  for (const auto& r : results) {
    const double s_static = r.saving(kPolicyStatic);
    const double s_cnt = r.saving(kPolicyCnt);
    const double s_ideal = r.saving(kPolicyIdeal);
    const double captured = s_ideal > 1e-9 ? s_cnt / s_ideal : 0.0;
    captured_acc.add(captured);
    t.add_row({r.workload, Table::pct(s_static), Table::pct(s_cnt),
               Table::pct(s_ideal), Table::pct(captured)});
    csv.add_row({r.workload, std::to_string(s_static), std::to_string(s_cnt),
                 std::to_string(s_ideal), std::to_string(captured)});
  }
  t.add_row({"mean", Table::pct(mean_saving(results, kPolicyStatic)),
             Table::pct(mean_saving(results)),
             Table::pct(mean_saving(results, kPolicyIdeal)),
             Table::pct(captured_acc.mean())});
  std::cout << t.render() << "\n"
            << "static inversion helps only when data bias happens to match "
               "the access mix;\nthe adaptive predictor captures most of the "
               "oracle's headroom.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
