// E7 -- energy breakdown: where CNT-Cache's joules go per benchmark (data
// array vs tags/peripherals vs the design's own overheads: H&D metadata,
// encoder muxes, predictor logic, re-encode writes, FIFO traffic). Shows
// that the overhead the paper calls "negligible" stays small.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E7", "CNT-Cache energy breakdown per benchmark");
  const double scale = bench::scale_from_env(0.5);

  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const auto results = run_suite(cfg, scale);

  Table t({"workload", "data rd", "data wr", "tag+decode+out", "meta",
           "enc+pred logic", "reencode+fifo", "overhead%"});
  const std::string csv_path = result_path("fig_breakdown.csv");
  CsvWriter csv(csv_path,
                {"workload", "data_read_j", "data_write_j", "peripheral_j",
                 "meta_j", "logic_j", "reencode_fifo_j", "overhead_frac"});

  using C = EnergyCategory;
  for (const auto& r : results) {
    const auto& led = r.find(kPolicyCnt)->ledger;
    const Energy data_rd = led.get(C::kDataRead);
    const Energy data_wr = led.get(C::kDataWrite);
    const Energy periph = led.get(C::kTagRead) + led.get(C::kTagWrite) +
                          led.get(C::kDecode) + led.get(C::kOutput);
    const Energy meta = led.get(C::kMetaRead) + led.get(C::kMetaWrite);
    const Energy logic =
        led.get(C::kEncoderLogic) + led.get(C::kPredictorLogic);
    const Energy extra = led.get(C::kReencode) + led.get(C::kFifo);
    const double overhead = led.overhead_total() / led.total();
    t.add_row({r.workload, data_rd.to_string(), data_wr.to_string(),
               periph.to_string(), meta.to_string(), logic.to_string(),
               extra.to_string(), Table::pct(overhead)});
    csv.add_row({r.workload, std::to_string(data_rd.in_joules()),
                 std::to_string(data_wr.in_joules()),
                 std::to_string(periph.in_joules()),
                 std::to_string(meta.in_joules()),
                 std::to_string(logic.in_joules()),
                 std::to_string(extra.in_joules()),
                 std::to_string(overhead)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
