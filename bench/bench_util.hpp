// Shared helpers for the benchmark harness binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

namespace cnt::bench {

/// Workload scale factor for this binary: $CNT_BENCH_SCALE overrides the
/// caller-supplied default (sweeps default below 1.0 to keep the full
/// `for b in build/bench/*` pass quick; the headline bench runs full size).
inline double scale_from_env(double default_scale) {
  if (const char* env = std::getenv("CNT_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "==============================================================\n"
            << experiment << ": " << what << "\n"
            << "==============================================================\n\n";
}

}  // namespace cnt::bench
