// Shared helpers for the benchmark harness binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/types.hpp"
#include "exec/options.hpp"

namespace cnt::bench {

/// Workload scale factor for this binary: $CNT_BENCH_SCALE overrides the
/// caller-supplied default (sweeps default below 1.0 to keep the full
/// `for b in build/bench/*` pass quick; the headline bench runs full size).
inline double scale_from_env(double default_scale) {
  if (const char* env = std::getenv("CNT_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

/// Parallel job count for engine-backed sweeps: `--jobs N` / `--jobs=N` /
/// `-j N` on the command line, then $CNT_JOBS, then 0 ("unspecified",
/// which the ExperimentEngine resolves to the hardware thread count).
inline usize jobs_option(int argc, const char* const* argv) {
  return cnt::exec::jobs_from_args(argc, argv, 0);
}

inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "==============================================================\n"
            << experiment << ": " << what << "\n"
            << "--------------------------------------------------------------\n"
            << "knobs: CNT_BENCH_SCALE=<f> workload scale | CNT_JOBS=<n> or\n"
            << "       --jobs N parallel sim jobs (engine-backed sweeps)\n"
            << "==============================================================\n\n";
}

}  // namespace cnt::bench
