// Shared helpers for the benchmark harness binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "exec/engine.hpp"
#include "exec/options.hpp"

namespace cnt::bench {

/// Workload scale factor for this binary: $CNT_BENCH_SCALE overrides the
/// caller-supplied default (sweeps default below 1.0 to keep the full
/// `for b in build/bench/*` pass quick; the headline bench runs full size).
inline double scale_from_env(double default_scale) {
  if (const char* env = std::getenv("CNT_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

/// Parallel job count for engine-backed sweeps: `--jobs N` / `--jobs=N` /
/// `-j N` on the command line, then $CNT_JOBS, then 0 ("unspecified",
/// which the ExperimentEngine resolves to the hardware thread count).
inline usize jobs_option(int argc, const char* const* argv) {
  return cnt::exec::jobs_from_args(argc, argv, 0);
}

/// Resume switch for engine-backed sweeps: `--resume` / `--no-resume` on
/// the command line, then $CNT_RESUME, then off.
inline bool resume_option(int argc, const char* const* argv) {
  return cnt::exec::resume_from_args(argc, argv, false);
}

/// Named integer knob for statistical benches: `<flag> N` / `<flag>=N` on
/// the command line (pass the full spelling, e.g. "--samples"), then
/// $CNT_<NAME>, then `fallback`. Used for --samples (Monte Carlo sample
/// counts) and --seed (RNG seeds).
inline u64 u64_option(int argc, const char* const* argv, const char* flag,
                      u64 fallback) {
  return cnt::exec::u64_from_args(argc, argv, flag, fallback);
}

/// Uniform reporting for an interrupted engine sweep (Ctrl-C / SIGTERM):
/// tell the user where the journal is and how to pick the sweep back up,
/// and return the conventional 128+SIGINT exit status for main().
inline int report_interrupted(const cnt::exec::SweepInterrupted& e) {
  std::cerr << "\ninterrupted after " << e.completed() << "/" << e.total()
            << " jobs; journal flushed to " << e.journal_path()
            << "\nrerun with --resume to finish the remaining jobs\n";
  return 130;
}

/// Uniform reporting for a failed engine sweep (stale --resume journal,
/// mid-file journal corruption, unwritable results directory, ...):
/// print the structured what/where/hint rendering and return a plain
/// failure status for main().
inline int report_error(const std::exception& e) {
  std::cerr << "error: " << cnt::format_error(e) << "\n";
  return 1;
}

inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "==============================================================\n"
            << experiment << ": " << what << "\n"
            << "--------------------------------------------------------------\n"
            << "knobs: CNT_BENCH_SCALE=<f> workload scale | CNT_JOBS=<n> or\n"
            << "       --jobs N parallel sim jobs (engine-backed sweeps) |\n"
            << "       --resume or CNT_RESUME=1 resume a killed sweep from\n"
            << "       its journal (engine-backed sweeps)\n"
            << "==============================================================\n\n";
}

}  // namespace cnt::bench
