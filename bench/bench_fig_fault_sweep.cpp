// R1 -- fault-injection grid: defect density x protection scheme over the
// workload suite. Each cell runs the full campaign (stuck-at cells placed
// from the density, plus a fixed transient read-disturb rate) under one of
// the three protection schemes and reports how many upsets were corrected,
// detected, or escaped silently (SDC), along with the residual CNT saving
// after the ECC check/correct energy is charged.
//
// Runs on the parallel experiment engine: one job per (density, scheme,
// workload), resumable from its JSONL journal after a kill. The campaign
// seed is fixed per cell, so two runs of the same grid -- serial or
// parallel, fresh or --resume'd -- produce identical counts.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "exec/engine.hpp"
#include "fault/fault_config.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main(int argc, char** argv) {
  bench::banner("R1", "fault-injection sweep: defect density x protection");
  const double scale = bench::scale_from_env(0.15);
  const usize jobs = bench::jobs_option(argc, argv);
  const bool resume = bench::resume_option(argc, argv);
  const u64 seed = bench::u64_option(argc, argv, "--seed", 0xFA013);

  const std::vector<double> densities = {10.0, 100.0, 1000.0};
  const std::vector<ProtectionScheme> schemes = {
      ProtectionScheme::kNone, ProtectionScheme::kParity,
      ProtectionScheme::kSecded};
  std::vector<std::string> scheme_labels;
  for (const auto s : schemes) scheme_labels.emplace_back(to_string(s));

  SimConfig base;
  base.with_cmos = base.with_static = base.with_ideal = false;
  base.fault.transient_per_read = 1e-5;
  base.fault.seed = seed;

  exec::SweepSpec spec;
  spec.base(base).scale(scale).suite();
  spec.axis("density", densities, [](SimConfig& cfg, double d) {
    cfg.fault.stuck_per_mbit = d;
  });
  spec.axis("protection", scheme_labels,
            [&schemes](SimConfig& cfg, usize i) {
              cfg.fault.protection = schemes[i];
            });

  exec::ExperimentEngine engine(
      {.jobs = jobs,
       .jsonl_path = result_path("fig_fault_sweep.jsonl"),
       .progress = true,
       .resume = resume,
       .handle_signals = true});
  std::vector<exec::JobOutcome> outcomes;
  try {
    outcomes = engine.run(spec);
  } catch (const exec::SweepInterrupted& e) {
    return bench::report_interrupted(e);
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  const auto groups = exec::group_by_tag(outcomes);

  Table t({"stuck/Mbit", "protection", "stuck cells", "flips", "corrected",
           "detected", "SDC bits", "dir SDC", "saving"});
  const std::string csv_path = result_path("fig_fault_sweep.csv");
  CsvWriter csv(csv_path,
                {"stuck_per_mbit", "protection", "stuck_cells", "flips",
                 "corrected_bits", "detected_events", "sdc_bits",
                 "dir_sdc_bits", "mean_saving"});

  for (usize g = 0; g < groups.size(); ++g) {
    const usize di = g / schemes.size();
    const usize si = g % schemes.size();
    const auto results = exec::results_of(groups[g].outcomes);
    const double mean = mean_saving(results);
    FaultStats sum;
    for (const auto& r : results) {
      const FaultStats& fs = r.fault_stats;
      sum.stuck_data_cells += fs.stuck_data_cells;
      sum.stuck_dir_cells += fs.stuck_dir_cells;
      sum.transient_data_flips += fs.transient_data_flips;
      sum.transient_dir_flips += fs.transient_dir_flips;
      sum.corrected_bits += fs.corrected_bits;
      sum.dir_corrected_bits += fs.dir_corrected_bits;
      sum.detected_events += fs.detected_events;
      sum.dir_detected_events += fs.dir_detected_events;
      sum.silent_bits += fs.silent_bits;
      sum.dir_silent_bits += fs.dir_silent_bits;
    }
    const std::string density = Table::num(densities[di], 0);
    t.add_row({density, scheme_labels[si],
               std::to_string(sum.stuck_data_cells + sum.stuck_dir_cells),
               std::to_string(sum.transient_data_flips +
                              sum.transient_dir_flips),
               std::to_string(sum.corrected_bits + sum.dir_corrected_bits),
               std::to_string(sum.detected_events + sum.dir_detected_events),
               std::to_string(sum.silent_bits),
               std::to_string(sum.dir_silent_bits), Table::pct(mean)});
    csv.add_row({std::to_string(densities[di]), scheme_labels[si],
                 std::to_string(sum.stuck_data_cells + sum.stuck_dir_cells),
                 std::to_string(sum.transient_data_flips +
                                sum.transient_dir_flips),
                 std::to_string(sum.corrected_bits + sum.dir_corrected_bits),
                 std::to_string(sum.detected_events + sum.dir_detected_events),
                 std::to_string(sum.silent_bits),
                 std::to_string(sum.dir_silent_bits), std::to_string(mean)});
  }
  std::cout << t.render()
            << "\nSECDED turns every would-be silent corruption in this grid "
               "into a\ncorrection or a detected refetch; parity detects the "
               "odd-weight upsets\nand the ECC energy tax on the saving stays "
               "small.\n\ncsv: "
            << csv_path << " (scale " << scale << ", seed " << seed << ", "
            << engine.worker_count() << " jobs)\njsonl: "
            << result_path("fig_fault_sweep.jsonl") << "\n";
  csv.finish();
  return 0;
}
