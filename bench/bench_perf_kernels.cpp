// PERF -- core hot-path kernels, isolated: set lookup through the cache
// substrate, the partition popcount + encode kernel, and a full
// end-to-end in-RAM replay through the policy stack. Each kernel reports
// ops/sec; together with bench_perf_stream_replay they pin the perf
// trajectory docs/performance.md describes.
//
//   bench_perf_kernels [--ops N]
//
// --ops scales every kernel's iteration count (default 2'000'000).
// Results land in $CNT_RESULTS_DIR (default ./results) as
// BENCH_kernels.json, schema cnt-bench-perf-v2 (stable identity fields
// split from run-varying "timing" objects), consumed by
// scripts/check_regression.py.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "cache/main_memory.hpp"
#include "cnt/encoding.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "exec/options.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/gen/server_traffic.hpp"
#include "trace/stream/trace_source.hpp"

using namespace cnt;

namespace {

struct KernelResult {
  std::string name;
  u64 ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
};

template <typename Fn>
KernelResult time_kernel(const std::string& name, u64 ops, Fn&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  KernelResult r;
  r.name = name;
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.ops_per_sec =
      r.seconds > 0 ? static_cast<double>(ops) / r.seconds : 0.0;
  return r;
}

/// Kernel 1: set lookup + hit path through the SoA cache substrate, no
/// energy sinks attached. A resident working set makes every access a
/// hit, so the measured cost is the probe/replacement/load path itself.
KernelResult kernel_cache_lookup(u64 ops) {
  CacheConfig cfg;
  cfg.size_bytes = 256 * 1024;
  cfg.ways = 8;
  MainMemory mem;
  Cache cache(cfg, mem);

  // Working set = half the cache; pre-generated pseudo-random access
  // pattern so the timed loop does no RNG work.
  const u64 ws_lines = (cfg.size_bytes / cfg.line_bytes) / 2;
  Rng rng(42);
  std::vector<MemAccess> pattern(65536);
  for (auto& a : pattern) {
    a.op = (rng.next() & 7) == 0 ? MemOp::kWrite : MemOp::kRead;
    a.addr = (rng.next() % ws_lines) * cfg.line_bytes +
             (rng.next() & 7) * 8;
    a.size = 8;
    a.value = rng.next();
  }
  for (const auto& a : pattern) cache.access(a);  // warm: all lines resident

  return time_kernel("cache_lookup", ops, [&] {
    for (u64 i = 0; i < ops; ++i) {
      cache.access(pattern[i & (pattern.size() - 1)]);
    }
  });
}

/// Kernel 2: per-partition popcount + adaptive encode over a 64-byte
/// line (the paper's default geometry, 8 partitions). One op = one
/// stored-ones pass plus one full-line encode -- the pair every fill
/// write performs.
KernelResult kernel_popcount_encode(u64 ops) {
  const PartitionScheme ps(64, 8);
  Rng rng(7);
  std::vector<u8> line(ps.line_bytes());
  for (auto& b : line) b = rng.next_byte();
  std::vector<u8> out(ps.line_bytes());

  volatile usize sink = 0;  // keep the popcounts observable
  return time_kernel("popcount_encode", ops, [&] {
    u64 dirs = 0x5a;
    for (u64 i = 0; i < ops; ++i) {
      usize ones = 0;
      for (usize p = 0; p < ps.partitions(); ++p) {
        ones += detail::partition_raw_ones(ps, line.data(), p);
      }
      sink = sink + ones;
      encode_line(ps, line, dirs, out);
      dirs = (dirs * 0x9e3779b97f4a7c15ULL) >> 56;  // vary the mask
      line[i & 63] ^= static_cast<u8>(i);
    }
  });
}

/// Kernel 3: end-to-end replay of an in-RAM server-traffic trace through
/// the full policy stack (baseline + CNT-Cache), the same path the
/// streamed bench times minus the chunked-file decode.
KernelResult kernel_replay(u64 ops) {
  gen::ServerTrafficParams p;
  p.ops = static_cast<usize>(ops / 5);  // ~5 accesses per server op
  Trace trace("kernels_replay");
  {
    TraceCollector collect(trace);
    (void)gen::generate_server_traffic(p, collect);
  }
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  VectorTraceSource source(trace);
  auto r = time_kernel("replay", trace.size(), [&] {
    (void)simulate(source, {}, cfg);
  });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("PERF", "hot-path kernels (lookup / popcount+encode / replay)");
  const u64 ops = bench::u64_option(argc, argv, "--ops", 2'000'000);

  try {
    std::vector<KernelResult> results;
    results.push_back(kernel_cache_lookup(ops));
    results.push_back(kernel_popcount_encode(ops));
    results.push_back(kernel_replay(ops));

    for (const auto& r : results) {
      std::cout << r.name << ": " << r.ops << " ops in " << r.seconds
                << " s = " << r.ops_per_sec << " ops/sec\n";
    }

    const std::string json_path = result_path("BENCH_kernels.json");
    {
      io::AtomicFileWriter out(json_path, "bench");
      JsonWriter j(out.stream());
      j.begin_object();
      j.kv("schema", "cnt-bench-perf-v2");
      j.kv("bench", "kernels");
      // Perf numbers measured with failpoints armed are invalid;
      // check_regression.py refuses documents where this is true.
      j.kv("failpoints_enabled", fp::enabled());
      // Likewise a run with the job watchdog armed: cancellation polls
      // are still one relaxed load, but the environment is non-standard.
      j.kv("job_timeout_armed", exec::job_timeout_from_env(0) != 0);
      j.key("kernels").begin_array();
      for (const auto& r : results) {
        j.begin_object();
        j.kv("name", r.name);
        j.kv("ops", r.ops);
        j.key("timing").begin_object();
        j.kv("seconds", r.seconds);
        j.kv("ops_per_sec", r.ops_per_sec);
        j.end_object();
        j.end_object();
      }
      j.end_array();
      j.end_object();
      out.stream() << '\n';
      out.commit();
    }
    std::cout << "json: " << json_path << "\n";
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  return 0;
}
