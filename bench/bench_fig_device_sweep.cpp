// M3 -- device-to-system sweep: derive the cell energies from the CNFET
// device model and sweep the device choices (tubes per device, tube
// diameter). Shows the whole stack end to end: transistor parameters ->
// cell asymmetry -> cache-level saving, and that the paper's conclusion is
// a property of the cell topology, not of one parameter point.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "device/cell_derivation.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("M3", "CNFET device-parameter sweep (derived cell model)");
  const double scale = bench::scale_from_env(0.2);

  Table t({"tubes/device", "diameter", "wr1/wr0", "rd0 (fJ)", "clock",
           "mean saving"});
  const std::string csv_path = result_path("fig_device_sweep.csv");
  CsvWriter csv(csv_path, {"tubes", "diameter_nm", "wr_ratio", "rd0_fj",
                           "clock_ghz", "mean_saving"});

  struct Point {
    u32 tubes;
    double diameter;
  };
  for (const Point pt : {Point{3, 1.5}, Point{6, 1.2}, Point{6, 1.5},
                         Point{6, 2.0}, Point{10, 1.5}}) {
    CnfetDeviceParams dev;
    dev.tubes_per_device = pt.tubes;
    dev.diameter_nm = pt.diameter;

    SimConfig cfg;
    cfg.tech = derive_tech_params(dev);
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    const double wr_ratio = cfg.tech.cell.wr1 / cfg.tech.cell.wr0;

    t.add_row({std::to_string(pt.tubes), Table::num(pt.diameter, 1) + " nm",
               Table::num(wr_ratio, 1) + "x",
               Table::num(cfg.tech.cell.rd0.in_femtojoules(), 2),
               Table::num(cfg.tech.clock_ghz, 2) + " GHz", Table::pct(mean)});
    csv.add_row({std::to_string(pt.tubes), std::to_string(pt.diameter),
                 std::to_string(wr_ratio),
                 std::to_string(cfg.tech.cell.rd0.in_femtojoules()),
                 std::to_string(cfg.tech.clock_ghz), std::to_string(mean)});
  }
  std::cout << t.render()
            << "\nThe saving tracks the cell's asymmetry, which every "
               "realistic device point\nexhibits; the derived defaults land "
               "on the calibrated Table-1 reconstruction.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
