// E6 -- I-Cache vs D-Cache benefit. The abstract pitches the *D-Cache*
// number; this experiment shows both sides: the read-only instruction
// stream also profits (reads dominate and RISC words are mid-density), and
// the data suite's spread around it.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

int main() {
  bench::banner("E6", "I-Cache vs D-Cache adaptive-encoding benefit");
  const double scale = bench::scale_from_env(0.5);

  // I-side: the basic-block fetch stream on an L1I-configured cache.
  SimConfig icfg;
  icfg.cache.name = "L1I";
  const auto ires = simulate(build_workload("ifetch", scale), icfg);

  // D-side: the full suite.
  SimConfig dcfg;
  const auto dres = run_suite(dcfg, scale);

  Table t({"cache", "workload", "hit%", "baseline", "CNT-Cache", "saving"});
  t.add_row({"L1I", "ifetch", Table::pct(ires.cache_stats.hit_rate()),
             ires.energy(kPolicyBaseline).to_string(),
             ires.energy(kPolicyCnt).to_string(),
             Table::pct(ires.saving(kPolicyCnt))});
  for (const auto& r : dres) {
    t.add_row({"L1D", r.workload, Table::pct(r.cache_stats.hit_rate()),
               r.energy(kPolicyBaseline).to_string(),
               r.energy(kPolicyCnt).to_string(),
               Table::pct(r.saving(kPolicyCnt))});
  }
  t.add_row({"L1D", "mean", "", "", "", Table::pct(mean_saving(dres))});
  std::cout << t.render() << "\n";

  const std::string csv_path = result_path("fig_icache_dcache.csv");
  CsvWriter csv(csv_path, {"cache", "workload", "saving"});
  csv.add_row({"L1I", "ifetch", std::to_string(ires.saving(kPolicyCnt))});
  for (const auto& r : dres) {
    csv.add_row({"L1D", r.workload, std::to_string(r.saving(kPolicyCnt))});
  }
  std::cout << "csv: " << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
