// M7 -- negative control: run the full adaptive machinery on a
// value-symmetric CMOS cell. The paper's mechanism exists only because the
// CNFET cell is asymmetric; on CMOS the predictor must (and does) decide
// "never switch", leaving exactly the encoding hardware's overhead as a
// small loss. A reproduction that cannot show the effect disappearing when
// its cause is removed proves nothing.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("M7", "negative control: adaptive encoding on symmetric CMOS");
  const double scale = bench::scale_from_env(0.25);

  Table t({"cell", "wr1/wr0", "rd0/rd1", "mean saving", "re-encodes"});
  const std::string csv_path = result_path("fig_cmos_control.csv");
  CsvWriter csv(csv_path, {"cell", "mean_saving", "reencodes"});

  struct Point {
    const char* name;
    TechParams tech;
  };
  for (const Point& pt : {Point{"CNFET (asymmetric)", TechParams::cnfet()},
                          Point{"CMOS (symmetric)", TechParams::cmos()}}) {
    SimConfig cfg;
    cfg.tech = pt.tech;  // baseline AND CNT policies both use this cell
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    u64 reencodes = 0;
    for (const auto& r : results) {
      reencodes += r.find(kPolicyCnt)->cnt_stats.reencodes_applied;
    }
    t.add_row({pt.name, Table::num(pt.tech.cell.wr1 / pt.tech.cell.wr0, 2),
               Table::num(pt.tech.cell.rd0 / pt.tech.cell.rd1, 2),
               Table::pct(mean), std::to_string(reencodes)});
    csv.add_row({pt.name, std::to_string(mean), std::to_string(reencodes)});
  }
  std::cout << t.render()
            << "\non the symmetric cell the saving collapses to the "
               "encoding hardware's own\noverhead (a small negative), and "
               "the predictor requests almost no switches --\nthe effect "
               "disappears with its cause, as it must.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
