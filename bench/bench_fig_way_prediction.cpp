// Substrate option -- MRU way prediction on the tag side. The tag array is
// the biggest energy consumer adaptive *data* encoding cannot touch; way
// prediction shrinks it for baseline and CNT-Cache alike, which raises the
// relative weight of the data array and with it the encoding saving.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Substrate", "MRU way prediction (tag-side energy)");
  const double scale = bench::scale_from_env(0.35);

  Table t({"tag access", "mean baseline", "mean CNT", "mean saving"});
  const std::string csv_path = result_path("fig_way_prediction.csv");
  CsvWriter csv(csv_path,
                {"way_prediction", "base_j", "cnt_j", "mean_saving"});

  for (const bool wp : {false, true}) {
    SimConfig cfg;
    cfg.cache.way_prediction = wp;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    Energy base{}, cnt_e{};
    for (const auto& r : results) {
      base += r.energy(kPolicyBaseline);
      cnt_e += r.energy(kPolicyCnt);
    }
    base = base / static_cast<double>(results.size());
    cnt_e = cnt_e / static_cast<double>(results.size());
    const double mean = mean_saving(results);
    t.add_row({wp ? "MRU way-predicted" : "all ways probed",
               base.to_string(), cnt_e.to_string(), Table::pct(mean)});
    csv.add_row({wp ? "1" : "0", std::to_string(base.in_joules()),
                 std::to_string(cnt_e.in_joules()), std::to_string(mean)});
  }
  std::cout << t.render()
            << "\nway prediction cuts both columns' absolute energy and "
               "raises the encoding\nsaving's share of what remains.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
