// T2 -- benchmark-suite characterization: the table a paper's evaluation
// section opens with. Access counts, read/write mix, footprint, hit rate
// on the default L1D, and the bit-1 density of written data (the property
// adaptive encoding exploits).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

int main() {
  bench::banner("T2", "benchmark-suite characterization");
  const double scale = bench::scale_from_env(1.0);

  Table t({"workload", "accesses", "wr%", "footprint", "hit% (32K/4w)",
           "write bit1", "description"});
  const std::string csv_path = result_path("table_workloads.csv");
  CsvWriter csv(csv_path, {"workload", "accesses", "write_fraction",
                           "footprint_kib", "hit_rate", "write_bit1_density"});

  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  for (const auto& entry : default_suite()) {
    const Workload w = entry.build(scale, 0);
    const auto ts = w.trace.stats();
    const auto res = simulate(w, cfg);
    t.add_row({w.name, std::to_string(ts.accesses),
               Table::pct(ts.write_fraction),
               Table::num(ts.footprint_kib, 0) + " KiB",
               Table::pct(res.cache_stats.hit_rate()),
               Table::pct(ts.write_bit1_density),
               w.description.substr(0, 46)});
    csv.add_row({w.name, std::to_string(ts.accesses),
                 std::to_string(ts.write_fraction),
                 std::to_string(ts.footprint_kib),
                 std::to_string(res.cache_stats.hit_rate()),
                 std::to_string(ts.write_bit1_density)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
