// E2 -- prediction-window sensitivity: mean saving and H-field overhead as
// W sweeps. The paper's default is W = 15 ("we set checkpoint as 15
// accesses"); this sweep shows why mid-size windows win: tiny windows
// thrash the encoder and large windows react too slowly while the counter
// width (2*ceil(log2 W) bits/line) keeps growing.
#include <iostream>

#include "bench_util.hpp"
#include "common/bits.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E2", "window size W sweep");
  const double scale = bench::scale_from_env(0.35);

  Table t({"W", "history bits/line", "mean saving", "switches applied",
           "FIFO drops"});
  const std::string csv_path = result_path("fig_window_sweep.csv");
  CsvWriter csv(csv_path,
                {"window", "history_bits", "mean_saving", "reencodes",
                 "fifo_drops"});

  for (const usize w : {3u, 5u, 7u, 11u, 15u, 21u, 31u, 47u, 63u}) {
    SimConfig cfg;
    cfg.cnt.window = w;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    u64 reencodes = 0, drops = 0;
    for (const auto& r : results) {
      const auto* p = r.find(kPolicyCnt);
      reencodes += p->cnt_stats.reencodes_applied;
      drops += p->queue_stats.dropped_full;
    }
    const usize hbits = 2 * bits_to_hold(w - 1);
    t.add_row({std::to_string(w), std::to_string(hbits), Table::pct(mean),
               std::to_string(reencodes), std::to_string(drops)});
    csv.add_row({std::to_string(w), std::to_string(hbits),
                 std::to_string(mean), std::to_string(reencodes),
                 std::to_string(drops)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  return 0;
}
