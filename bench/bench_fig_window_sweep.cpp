// E2 -- prediction-window sensitivity: mean saving and H-field overhead as
// W sweeps. The paper's default is W = 15 ("we set checkpoint as 15
// accesses"); this sweep shows why mid-size windows win: tiny windows
// thrash the encoder and large windows react too slowly while the counter
// width (2*ceil(log2 W) bits/line) keeps growing.
//
// Runs on the parallel experiment engine: one job per (W, workload),
// results aggregated per W in submission order, JSONL telemetry beside
// the CSV. `--jobs 1` reproduces the serial reference bit-for-bit.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/bits.hpp"
#include "common/csv.hpp"
#include "exec/engine.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main(int argc, char** argv) {
  bench::banner("E2", "window size W sweep");
  const double scale = bench::scale_from_env(0.35);
  const usize jobs = bench::jobs_option(argc, argv);
  const bool resume = bench::resume_option(argc, argv);

  const std::vector<usize> windows = {3, 5, 7, 11, 15, 21, 31, 47, 63};
  SimConfig base;
  base.with_cmos = base.with_static = base.with_ideal = false;

  exec::SweepSpec spec;
  spec.base(base).scale(scale).suite().axis(
      "window", windows,
      [](SimConfig& cfg, usize w) { cfg.cnt.window = w; });

  exec::ExperimentEngine engine(
      {.jobs = jobs,
       .jsonl_path = result_path("fig_window_sweep.jsonl"),
       .progress = true,
       .resume = resume,
       .handle_signals = true});
  std::vector<exec::JobOutcome> outcomes;
  try {
    outcomes = engine.run(spec);
  } catch (const exec::SweepInterrupted& e) {
    return bench::report_interrupted(e);
  } catch (const std::exception& e) {
    return bench::report_error(e);
  }
  const auto groups = exec::group_by_tag(outcomes);

  Table t({"W", "history bits/line", "mean saving", "switches applied",
           "FIFO drops"});
  const std::string csv_path = result_path("fig_window_sweep.csv");
  CsvWriter csv(csv_path,
                {"window", "history_bits", "mean_saving", "reencodes",
                 "fifo_drops"});

  for (usize i = 0; i < groups.size(); ++i) {
    const usize w = windows[i];
    const auto results = exec::results_of(groups[i].outcomes);
    const double mean = mean_saving(results);
    u64 reencodes = 0, drops = 0;
    for (const auto& r : results) {
      const auto* p = r.find(kPolicyCnt);
      reencodes += p->cnt_stats.reencodes_applied;
      drops += p->queue_stats.dropped_full;
    }
    const usize hbits = 2 * bits_to_hold(w - 1);
    t.add_row({std::to_string(w), std::to_string(hbits), Table::pct(mean),
               std::to_string(reencodes), std::to_string(drops)});
    csv.add_row({std::to_string(w), std::to_string(hbits),
                 std::to_string(mean), std::to_string(reencodes),
                 std::to_string(drops)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ", " << engine.worker_count() << " jobs)\njsonl: "
            << result_path("fig_window_sweep.jsonl") << "\n";
  csv.finish();
  return 0;
}
