// E8 -- cache-geometry sensitivity: does the saving hold across sizes and
// associativities? (Bigger caches -> higher hit rates -> more read hits for
// the encoder to optimize; associativity changes conflict-miss behaviour.)
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E8", "cache size / associativity sweep");
  const double scale = bench::scale_from_env(0.25);

  Table t({"size", "ways", "mean hit%", "mean saving"});
  const std::string csv_path = result_path("fig_geometry_sweep.csv");
  CsvWriter csv(csv_path, {"size_kib", "ways", "mean_hit_rate",
                           "mean_saving"});

  for (const usize kib : {8u, 16u, 32u, 64u}) {
    for (const usize ways : {2u, 4u, 8u}) {
      SimConfig cfg;
      cfg.cache.size_bytes = kib * 1024;
      cfg.cache.ways = ways;
      cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
      const auto results = run_suite(cfg, scale);
      Accumulator hit;
      for (const auto& r : results) hit.add(r.cache_stats.hit_rate());
      const double mean = mean_saving(results);
      t.add_row({std::to_string(kib) + " KiB", std::to_string(ways),
                 Table::pct(hit.mean()), Table::pct(mean)});
      csv.add_row({std::to_string(kib), std::to_string(ways),
                   std::to_string(hit.mean()), std::to_string(mean)});
    }
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
