// E4 -- switch-hysteresis sweep: the authors' extended description gates
// encoding switches on saving at least a deltaT fraction of the window
// energy ("the new pattern becomes the stable optimization pattern only
// when E_original - E_new > deltaT * E_original"). This sweep regenerates
// the deltaT-vs-saving relationship they set out to explore.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E4", "encoding-switch hysteresis (deltaT) sweep");
  const double scale = bench::scale_from_env(0.35);

  Table t({"deltaT", "mean saving", "switch decisions", "re-encodes"});
  const std::string csv_path = result_path("fig_hysteresis_sweep.csv");
  CsvWriter csv(csv_path,
                {"delta_t", "mean_saving", "decisions", "reencodes"});

  for (const double dt : {0.0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    SimConfig cfg;
    cfg.cnt.delta_t = dt;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    u64 decisions = 0, reencodes = 0;
    for (const auto& r : results) {
      const auto* p = r.find(kPolicyCnt);
      decisions += p->cnt_stats.switch_decisions;
      reencodes += p->cnt_stats.reencodes_applied;
    }
    t.add_row({Table::pct(dt, 0), Table::pct(mean),
               std::to_string(decisions), std::to_string(reencodes)});
    csv.add_row({std::to_string(dt), std::to_string(mean),
                 std::to_string(decisions), std::to_string(reencodes)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
