// E1 -- the headline experiment: D-Cache dynamic energy of CNT-Cache vs the
// baseline CNFET cache across the benchmark suite. The paper reports a
// 22.2% average reduction; this harness regenerates the per-benchmark bars
// and the mean.
#include <iostream>

#include "bench_util.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E1 (headline)",
                "D-Cache dynamic energy, CNT-Cache vs baseline CNFET cache");
  const double scale = bench::scale_from_env(1.0);

  SimConfig cfg;  // 32 KiB 4-way L1D, W = 15, K = 8: the paper's setup
  const auto results = run_suite(cfg, scale);

  std::cout << savings_table(results) << "\n";
  const double mean = mean_saving(results);
  std::cout << "mean CNT-Cache dynamic-energy saving: " << Table::pct(mean)
            << "\npaper reports: 22.2% on its benchmark set\n\n";

  const std::string csv_path = result_path("fig_dynamic_energy.csv");
  write_savings_csv(results, csv_path);
  std::cout << "csv: " << csv_path << " (scale " << scale << ")\n";
  return 0;
}
