// Ablation -- fill-direction policy. The paper leaves the initial encoding
// of a freshly filled line unspecified; this ablation quantifies the three
// natural choices (see FillDirectionPolicy) and justifies the library
// default (min-write).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Ablation", "fill-time encoding-direction policy");
  const double scale = bench::scale_from_env(0.35);

  Table t({"fill policy", "mean saving", "fill inversions", "re-encodes"});
  const std::string csv_path = result_path("fig_fill_policy.csv");
  CsvWriter csv(csv_path,
                {"policy", "mean_saving", "fill_inversions", "reencodes"});

  for (const auto fp :
       {FillDirectionPolicy::kAsIs, FillDirectionPolicy::kMinWriteEnergy,
        FillDirectionPolicy::kReadOptimized,
        FillDirectionPolicy::kByMissType}) {
    SimConfig cfg;
    cfg.cnt.fill_policy = fp;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    u64 inversions = 0, reencodes = 0;
    for (const auto& r : results) {
      const auto* p = r.find(kPolicyCnt);
      inversions += p->cnt_stats.fill_inversions;
      reencodes += p->cnt_stats.reencodes_applied;
    }
    t.add_row({to_string(fp), Table::pct(mean), std::to_string(inversions),
               std::to_string(reencodes)});
    csv.add_row({to_string(fp), std::to_string(mean),
                 std::to_string(inversions), std::to_string(reencodes)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
