// M6 -- residency analysis: accesses per line tenure vs the prediction
// window. A tenure must reach W accesses before Algorithm 1 can fire even
// once, so this figure explains the division of labour measured elsewhere:
// the window predictor governs the hot-line traffic share, the fill-time
// direction choice carries the streaming share.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/analysis.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

using namespace cnt;

int main() {
  bench::banner("M6", "line-tenure lengths vs the W=15 prediction window");
  const double scale = bench::scale_from_env(0.5);

  SimConfig sim_cfg;
  sim_cfg.with_cmos = sim_cfg.with_static = sim_cfg.with_ideal = false;

  Table t({"workload", "tenures", "mean acc/tenure", "max",
           ">=W tenures", "traffic in >=W tenures", "CNT saving"});
  const std::string csv_path = result_path("fig_residency.csv");
  CsvWriter csv(csv_path,
                {"workload", "residencies", "mean_accesses", "max_accesses",
                 "long_tenure_fraction", "long_traffic_fraction",
                 "cnt_saving"});

  for (const auto& entry : default_suite()) {
    const Workload w = entry.build(scale, 0);
    const ResidencyStats rs = analyze_residency(w, sim_cfg.cache, 15);
    const SimResult res = simulate(w, sim_cfg);
    const double saving = res.saving(kPolicyCnt);
    t.add_row({w.name, std::to_string(rs.residencies),
               Table::num(rs.per_residency.mean(), 1),
               Table::num(rs.per_residency.max(), 0),
               Table::pct(rs.long_tenure_fraction),
               Table::pct(rs.traffic_in_long_tenures), Table::pct(saving)});
    csv.add_row({w.name, std::to_string(rs.residencies),
                 std::to_string(rs.per_residency.mean()),
                 std::to_string(rs.per_residency.max()),
                 std::to_string(rs.long_tenure_fraction),
                 std::to_string(rs.traffic_in_long_tenures),
                 std::to_string(saving)});
  }
  std::cout << t.render()
            << "\nstreaming workloads live in short tenures (< W accesses) "
               "where only the\nfill-time choice acts; the window predictor "
               "only governs the >=W share.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
