// A10 -- deferred-update FIFO depth: how many in-flight re-encode requests
// the hardware needs. Together with bench_fig_idle_sweep this completes
// the deferred-update design space: depth governs how many decisions
// survive until an idle slot arrives, idle availability governs how fast
// they drain.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("A10", "deferred-update FIFO depth sweep");
  const double scale = bench::scale_from_env(0.35);

  Table t({"FIFO depth", "bytes", "mean saving", "re-encodes", "drops",
           "max occupancy"});
  const std::string csv_path = result_path("fig_fifo_depth.csv");
  CsvWriter csv(csv_path, {"depth", "mean_saving", "reencodes", "drops",
                           "max_occupancy"});

  for (const usize depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SimConfig cfg;
    cfg.cnt.fifo_depth = depth;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    u64 reencodes = 0, drops = 0, occupancy = 0;
    for (const auto& r : results) {
      const auto* p = r.find(kPolicyCnt);
      reencodes += p->cnt_stats.reencodes_applied;
      drops += p->queue_stats.dropped_full;
      occupancy = std::max(occupancy, p->queue_stats.max_occupancy);
    }
    // Data FIFO holds a line per entry + ~8 B of index.
    const usize bytes = depth * (cfg.cache.line_bytes + 8);
    t.add_row({std::to_string(depth), std::to_string(bytes),
               Table::pct(mean), std::to_string(reencodes),
               std::to_string(drops), std::to_string(occupancy)});
    csv.add_row({std::to_string(depth), std::to_string(mean),
                 std::to_string(reencodes), std::to_string(drops),
                 std::to_string(occupancy)});
  }
  std::cout << t.render()
            << "\na shallow FIFO suffices: decisions arrive at window "
               "granularity and drain\non the next miss, so occupancy "
               "rarely exceeds a couple of entries.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
