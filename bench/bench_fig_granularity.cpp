// Ablation -- write-accounting granularity: the paper's Eqs. (4)/(5)
// charge every access for all L line bits; physically a store only drives
// the accessed word's columns. This ablation runs both models so the
// paper-exact numbers remain reproducible next to the library default.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Ablation",
                "write-accounting granularity (paper line model vs physical "
                "word model)");
  const double scale = bench::scale_from_env(0.35);

  Table t({"granularity", "mean saving", "mean baseline energy"});
  const std::string csv_path = result_path("fig_granularity.csv");
  CsvWriter csv(csv_path, {"granularity", "mean_saving", "mean_base_j"});

  for (const WriteGranularity wg :
       {WriteGranularity::kWord, WriteGranularity::kLine}) {
    SimConfig cfg;
    cfg.cnt.write_granularity = wg;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    Energy base_sum{};
    for (const auto& r : results) base_sum += r.energy(kPolicyBaseline);
    const Energy base_mean = base_sum / static_cast<double>(results.size());
    t.add_row({to_string(wg), Table::pct(mean), base_mean.to_string()});
    csv.add_row({to_string(wg), std::to_string(mean),
                 std::to_string(base_mean.in_joules())});
  }
  std::cout << t.render()
            << "\nThe line model inflates store energy 8x (64 B line vs 8 B "
               "word), which\nover-weights writes in both the baseline and "
               "the encoding decision.\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
