// E9 -- energy-delay product: the abstract's full pitch is that CNFET
// gives "both higher clock speed and energy efficiency". This experiment
// combines the dynamic-energy results with a first-order timing model:
// the CMOS cache runs at its technology clock, the CNFET caches at theirs
// (the adaptive encoder is off the critical path, Section III.A, so
// CNT-Cache keeps the CNFET clock).
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E9", "energy-delay product, CMOS vs CNFET vs CNT-Cache");
  const double scale = bench::scale_from_env(0.5);

  SimConfig cfg;
  cfg.with_static = cfg.with_ideal = false;
  const auto results = run_suite(cfg, scale);

  TimingParams cnfet_t;
  cnfet_t.clock_ghz = cfg.tech.clock_ghz;
  TimingParams cmos_t;
  cmos_t.clock_ghz = cfg.cmos_tech.clock_ghz;

  Table t({"workload", "EDP cmos", "EDP cnfet base", "EDP cnt", "cnt vs cmos",
           "cnt vs cnfet"});
  const std::string csv_path = result_path("fig_edp.csv");
  CsvWriter csv(csv_path, {"workload", "edp_cmos", "edp_cnfet", "edp_cnt"});

  GeoMean vs_cmos, vs_base;
  for (const auto& r : results) {
    const double sec_cnfet = cnfet_t.seconds(r.cache_stats);
    const double sec_cmos = cmos_t.seconds(r.cache_stats);
    const double e_cmos = edp(r.energy(kPolicyCmos), sec_cmos);
    const double e_base = edp(r.energy(kPolicyBaseline), sec_cnfet);
    const double e_cnt = edp(r.energy(kPolicyCnt), sec_cnfet);
    vs_cmos.add(e_cmos / e_cnt);
    vs_base.add(e_base / e_cnt);
    auto fmt = [](double js) { return Table::num(js * 1e18, 1) + " aJs"; };
    t.add_row({r.workload, fmt(e_cmos), fmt(e_base), fmt(e_cnt),
               Table::num(e_cmos / e_cnt, 2) + "x",
               Table::num(e_base / e_cnt, 2) + "x"});
    csv.add_row({r.workload, std::to_string(e_cmos), std::to_string(e_base),
                 std::to_string(e_cnt)});
  }
  t.add_row({"geo-mean", "", "", "", Table::num(vs_cmos.value(), 2) + "x",
             Table::num(vs_base.value(), 2) + "x"});
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
