// T1 -- reconstruction of the paper's Table `tab:rw-analysis`: per-bit
// CNFET SRAM read/write energies for '0' and '1', with the CMOS reference
// and the derived quantities the paper's argument rests on.
#include <iostream>

#include "bench_util.hpp"
#include "cnt/threshold.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "energy/tech_params.hpp"
#include "sim/report.hpp"

using namespace cnt;

int main() {
  bench::banner("T1 (tab:rw-analysis)",
                "per-bit SRAM access energies, CNFET vs CMOS");

  const auto cnfet = TechParams::cnfet();
  const auto cmos = TechParams::cmos();

  Table t({"technology", "E_rd0", "E_rd1", "E_wr0", "E_wr1", "wr1/wr0",
           "rd0-rd1", "wr1-wr0"});
  auto add = [&t](const TechParams& p) {
    t.add_row({p.name, p.cell.rd0.to_string(), p.cell.rd1.to_string(),
               p.cell.wr0.to_string(), p.cell.wr1.to_string(),
               Table::num(p.cell.wr1 / p.cell.wr0, 2) + "x",
               p.cell.read_delta().to_string(),
               p.cell.write_delta().to_string()});
  };
  add(cnfet);
  add(cmos);
  std::cout << t.render() << "\n";

  std::cout << "paper anchors:\n"
            << "  * writing '1' is \"almost 10X\" writing '0' (abstract): "
            << Table::num(cnfet.cell.wr1 / cnfet.cell.wr0, 2) << "x\n"
            << "  * E_rd0-E_rd1 \"quite close\" to E_wr1-E_wr0: "
            << cnfet.cell.read_delta().to_string() << " vs "
            << cnfet.cell.write_delta().to_string() << "\n";

  const ThresholdTable tt(cnfet.cell, 15, 512);
  std::cout << "  * hence Th_rd (Eq. 3) = " << Table::num(tt.th_rd(), 2)
            << " for W = 15, i.e. roughly W/2\n\n";

  const std::string csv_path = result_path("table1_rw_energy.csv");
  CsvWriter csv(csv_path, {"tech", "rd0_fj", "rd1_fj", "wr0_fj", "wr1_fj"});
  for (const auto* p : {&cnfet, &cmos}) {
    csv.add_row({p->name, std::to_string(p->cell.rd0.in_femtojoules()),
                 std::to_string(p->cell.rd1.in_femtojoules()),
                 std::to_string(p->cell.wr0.in_femtojoules()),
                 std::to_string(p->cell.wr1.in_femtojoules())});
  }
  std::cout << "csv: " << csv_path << "\n";
  csv.finish();
  return 0;
}
