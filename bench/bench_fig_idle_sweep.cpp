// A9 -- idle-slot availability: the deferred-update FIFOs only drain in
// idle array slots (paper Section III.A), so this sweep starves and floods
// the drain opportunities to see when re-encodings stop landing and what
// that costs. With no idle slots at all, every switch decision eventually
// hits a full FIFO and is dropped.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("A9", "idle-slot availability vs deferred-update behaviour");
  const double scale = bench::scale_from_env(0.35);

  Table t({"idle model", "mean saving", "re-encodes", "FIFO drops",
           "stale drops"});
  const std::string csv_path = result_path("fig_idle_sweep.csv");
  CsvWriter csv(csv_path, {"idle_per_miss", "hit_idle_period", "mean_saving",
                           "reencodes", "drops", "stale"});

  struct Point {
    u32 per_miss;
    u32 hit_period;
    const char* label;
  };
  for (const Point pt : {Point{0, 0, "starved (no idle slots)"},
                         Point{2, 0, "miss-only, tight"},
                         Point{8, 4, "default"},
                         Point{8, 1, "idle-rich"},
                         Point{32, 1, "unconstrained"}}) {
    SimConfig cfg;
    cfg.cache.idle.idle_per_miss = pt.per_miss;
    cfg.cache.idle.hit_idle_period = pt.hit_period;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    u64 reencodes = 0, drops = 0, stale = 0;
    for (const auto& r : results) {
      const auto* p = r.find(kPolicyCnt);
      reencodes += p->cnt_stats.reencodes_applied;
      drops += p->queue_stats.dropped_full;
      stale += p->queue_stats.drained_stale;
    }
    const double mean = mean_saving(results);
    t.add_row({pt.label, Table::pct(mean), std::to_string(reencodes),
               std::to_string(drops), std::to_string(stale)});
    csv.add_row({std::to_string(pt.per_miss), std::to_string(pt.hit_period),
                 std::to_string(mean), std::to_string(reencodes),
                 std::to_string(drops), std::to_string(stale)});
  }
  std::cout << t.render()
            << "\nthe design degrades gracefully: with zero idle slots the "
               "FIFO fills and\ndecisions are dropped, costing only the "
               "window-predictor share of the saving\n(the fill-time "
               "encoding needs no idle slots at all).\n\ncsv: "
            << csv_path << " (scale " << scale << ")\n";
  csv.finish();
  return 0;
}
