// Extension -- zero-line elision on top of adaptive encoding. Real
// programs keep plenty of all-zero lines resident (zero-initialized
// outputs, sparse tables, padded records); one flag bit per line lets the
// cache skip the data array for them entirely, and the lines it helps
// most (all-zero, read-before-materialize) are exactly the CNFET
// worst-case reads adaptive encoding otherwise has to fix.
#include <iostream>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("Extension", "zero-line elision (+1 flag bit per line)");
  const double scale = bench::scale_from_env(0.35);

  Table t({"configuration", "mean saving", "zero fills", "zero reads",
           "materializations"});
  const std::string csv_path = result_path("fig_zero_line.csv");
  CsvWriter csv(csv_path, {"config", "mean_saving", "zero_fills",
                           "zero_reads", "materializations"});

  for (const bool enabled : {false, true}) {
    SimConfig cfg;
    cfg.cnt.zero_line_opt = enabled;
    cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
    const auto results = run_suite(cfg, scale);
    const double mean = mean_saving(results);
    u64 zf = 0, zr = 0, zm = 0;
    for (const auto& r : results) {
      const auto* p = r.find(kPolicyCnt);
      zf += p->cnt_stats.zero_fills;
      zr += p->cnt_stats.zero_reads;
      zm += p->cnt_stats.zero_materializations;
    }
    t.add_row({enabled ? "adaptive + zero-line flag" : "adaptive only",
               Table::pct(mean), std::to_string(zf), std::to_string(zr),
               std::to_string(zm)});
    csv.add_row({enabled ? "zero_line" : "baseline", std::to_string(mean),
                 std::to_string(zf), std::to_string(zr),
                 std::to_string(zm)});
  }
  std::cout << t.render() << "\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
