// E11 -- total energy (dynamic + leakage) per workload run. The paper's
// headline is dynamic power; this experiment adds the static side: CNFET's
// lower per-cell leakage compounds the win over CMOS, and CNT-Cache's H&D
// bits cost a proportional leakage overhead that the dynamic saving has to
// beat (it does, comfortably).
#include <iostream>

#include "bench_util.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/bits.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "energy/array_model.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace cnt;

int main() {
  bench::banner("E11", "total energy: dynamic + leakage");
  const double scale = bench::scale_from_env(0.5);

  SimConfig cfg;
  cfg.with_static = cfg.with_ideal = false;
  const auto results = run_suite(cfg, scale);

  // Array leakage for each implementation (CNT-Cache's H&D widens lines).
  const ArrayGeometry base_geom = geometry_of(cfg.cache);
  ArrayGeometry cnt_geom = base_geom;
  cnt_geom.meta_bits = 2 * bits_to_hold(cfg.cnt.window - 1) +
                       cfg.cnt.partitions;
  const double leak_cmos =
      ArrayModel(cfg.cmos_tech, base_geom).leakage_watts();
  const double leak_cnfet = ArrayModel(cfg.tech, base_geom).leakage_watts();
  const double leak_cnt = ArrayModel(cfg.tech, cnt_geom).leakage_watts();

  TimingParams cnfet_t, cmos_t;
  cnfet_t.clock_ghz = cfg.tech.clock_ghz;
  cmos_t.clock_ghz = cfg.cmos_tech.clock_ghz;

  Table t({"workload", "CMOS total", "CNFET base total", "CNT total",
           "CNT saving (total)"});
  const std::string csv_path = result_path("fig_total_energy.csv");
  CsvWriter csv(csv_path, {"workload", "cmos_j", "cnfet_j", "cnt_j",
                           "saving_total"});

  Accumulator acc;
  for (const auto& r : results) {
    const double sec_cnfet = cnfet_t.seconds(r.cache_stats);
    const double sec_cmos = cmos_t.seconds(r.cache_stats);
    const Energy cmos = r.energy(kPolicyCmos) +
                        leakage_energy(leak_cmos, sec_cmos);
    const Energy base = r.energy(kPolicyBaseline) +
                        leakage_energy(leak_cnfet, sec_cnfet);
    const Energy cnt_e = r.energy(kPolicyCnt) +
                         leakage_energy(leak_cnt, sec_cnfet);
    const double saving = 1.0 - cnt_e / base;
    acc.add(saving);
    t.add_row({r.workload, cmos.to_string(), base.to_string(),
               cnt_e.to_string(), Table::pct(saving)});
    csv.add_row({r.workload, std::to_string(cmos.in_joules()),
                 std::to_string(base.in_joules()),
                 std::to_string(cnt_e.in_joules()),
                 std::to_string(saving)});
  }
  t.add_row({"mean", "", "", "", Table::pct(acc.mean())});
  std::cout << t.render() << "\nleakage power: CMOS "
            << Energy::joules(leak_cmos).to_string()
            << "/s, CNFET " << Energy::joules(leak_cnfet).to_string()
            << "/s, CNT-Cache " << Energy::joules(leak_cnt).to_string()
            << "/s (+H&D cells)\n\ncsv: " << csv_path << " (scale " << scale
            << ")\n";
  csv.finish();
  return 0;
}
