// AccessEvent contract tests: what the functional cache promises every
// observer, independent of any energy policy.
#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

CacheConfig tiny() {
  CacheConfig c;
  c.size_bytes = 1024;
  c.ways = 2;
  c.line_bytes = 64;
  return c;
}

TEST(Events, KindToStringCoverage) {
  EXPECT_STREQ(to_string(AccessKind::kReadHit), "read_hit");
  EXPECT_STREQ(to_string(AccessKind::kWriteHit), "write_hit");
  EXPECT_STREQ(to_string(AccessKind::kReadMissFill), "read_miss");
  EXPECT_STREQ(to_string(AccessKind::kWriteMissFill), "write_miss");
  EXPECT_STREQ(to_string(AccessKind::kWriteAround), "write_around");
}

TEST(Events, HelperPredicates) {
  AccessEvent ev;
  ev.kind = AccessKind::kReadMissFill;
  EXPECT_TRUE(ev.is_fill());
  EXPECT_FALSE(ev.is_hit());
  ev.kind = AccessKind::kWriteHit;
  EXPECT_FALSE(ev.is_fill());
  EXPECT_TRUE(ev.is_hit());
  ev.kind = AccessKind::kWriteAround;
  EXPECT_FALSE(ev.is_fill());
  EXPECT_FALSE(ev.is_hit());
}

/// Validates structural invariants on every event.
class ContractChecker final : public AccessSink {
 public:
  explicit ContractChecker(const CacheConfig& cfg) : cfg_(cfg) {}

  void on_access(const AccessEvent& ev) override {
    ++events;
    EXPECT_LT(ev.set, cfg_.sets());
    if (ev.kind != AccessKind::kWriteAround) {
      EXPECT_LT(ev.way, cfg_.ways);
      EXPECT_EQ(ev.line_before.size(), cfg_.line_bytes);
      EXPECT_EQ(ev.line_after.size(), cfg_.line_bytes);
      EXPECT_EQ(cfg_.set_index(ev.addr), ev.set);
      EXPECT_EQ(cfg_.tag_of(ev.addr), ev.tag);
      if (ev.size != 0) {
        EXPECT_LE(ev.offset + ev.size, cfg_.line_bytes);
        EXPECT_EQ(ev.offset, cfg_.offset_of(ev.addr));
      }
    }
    EXPECT_EQ(ev.tag_bits_read, (cfg_.tag_bits() + 2) * cfg_.ways);
    EXPECT_LE(ev.tag_ones_read, ev.tag_bits_read);
    if (ev.is_fill()) {
      EXPECT_EQ(ev.tag_bits_written, cfg_.tag_bits() + 2);
      EXPECT_LE(ev.tag_ones_written, ev.tag_bits_written);
    } else {
      EXPECT_EQ(ev.tag_bits_written, 0u);
    }
    if (ev.kind == AccessKind::kReadHit) {
      // Reads leave the line unchanged.
      EXPECT_TRUE(std::equal(ev.line_before.begin(), ev.line_before.end(),
                             ev.line_after.begin()));
    }
    if (ev.evicted_dirty) {
      EXPECT_TRUE(ev.evicted_valid);
    }
  }

  usize events = 0;

 private:
  CacheConfig cfg_;
};

TEST(Events, ContractHoldsUnderRandomTraffic) {
  const auto cfg = tiny();
  MainMemory mem;
  Cache cache(cfg, mem);
  ContractChecker checker(cfg);
  cache.add_sink(checker);

  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    // cnt-lint: narrow-ok -- 1 << k with k < 4
    const u8 size = static_cast<u8>(1u << rng.uniform(4));
    const u64 addr = rng.uniform(8192 / size) * size;
    if (rng.chance(0.4)) {
      cache.access(MemAccess::write(addr, rng.next(), size));
    } else {
      cache.access(MemAccess::read(addr, size));
    }
  }
  EXPECT_EQ(checker.events, 10000u);
}

TEST(Events, SinksSeeIdenticalStreamInOrder) {
  struct Recorder final : AccessSink {
    std::vector<std::pair<AccessKind, u64>> log;
    void on_access(const AccessEvent& ev) override {
      log.emplace_back(ev.kind, ev.addr);
    }
  };
  MainMemory mem;
  Cache cache(tiny(), mem);
  Recorder a, b;
  cache.add_sink(a);
  cache.add_sink(b);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    cache.access(MemAccess::read(rng.uniform(64) * 64));
  }
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.log.size(), 500u);
}

TEST(Events, WriteAroundHasEmptySpans) {
  auto cfg = tiny();
  cfg.alloc_policy = AllocPolicy::kNoWriteAllocate;
  MainMemory mem;
  Cache cache(cfg, mem);
  struct Check final : AccessSink {
    void on_access(const AccessEvent& ev) override {
      ASSERT_EQ(ev.kind, AccessKind::kWriteAround);
      EXPECT_TRUE(ev.line_before.empty());
      EXPECT_TRUE(ev.line_after.empty());
      EXPECT_FALSE(ev.evicted_valid);
    }
  } check;
  cache.add_sink(check);
  cache.access(MemAccess::write(0x100, 1));
}

TEST(Events, EvictionFieldsOnConflictMiss) {
  const auto cfg = tiny();
  MainMemory mem;
  Cache cache(cfg, mem);
  struct Last final : AccessSink {
    AccessKind kind{};
    bool evicted_valid = false;
    bool evicted_dirty = false;
    u64 evicted_tag = 0;
    std::vector<u8> before;
    void on_access(const AccessEvent& ev) override {
      kind = ev.kind;
      evicted_valid = ev.evicted_valid;
      evicted_dirty = ev.evicted_dirty;
      evicted_tag = ev.evicted_tag;
      before.assign(ev.line_before.begin(), ev.line_before.end());
    }
  } last;
  cache.add_sink(last);

  const u64 stride = cfg.sets() * cfg.line_bytes;
  cache.access(MemAccess::write(0x0, 0xAB));  // dirty line, tag 0
  cache.access(MemAccess::read(stride));      // fills way 1
  cache.access(MemAccess::read(2 * stride));  // evicts tag 0 (LRU)
  EXPECT_EQ(last.kind, AccessKind::kReadMissFill);
  EXPECT_TRUE(last.evicted_valid);
  EXPECT_TRUE(last.evicted_dirty);
  EXPECT_EQ(last.evicted_tag, cfg.tag_of(0x0));
  EXPECT_EQ(last.before[0], 0xAB);  // the victim's data was visible
}

}  // namespace
}  // namespace cnt
