// Per-set history sharing extension: correctness of the shared counters
// and the expected area/accuracy trade-off.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cnt/baseline_policies.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/rng.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

CacheConfig cfg_small() {
  CacheConfig c;
  c.size_bytes = 4096;
  c.ways = 4;
  c.line_bytes = 64;
  return c;
}

TEST(HistoryScope, PerSetShrinksGeometryMeta) {
  CntConfig per_line;
  CntConfig per_set;
  per_set.history_scope = HistoryScope::kPerSet;
  const CntPolicy a("a", TechParams::cnfet(), geometry_of(cfg_small()),
                    per_line);
  const CntPolicy b("b", TechParams::cnfet(), geometry_of(cfg_small()),
                    per_set);
  // W=15 (8 hist bits) K=8: per-line 16 bits; per-set 8 + ceil(8/4) = 10.
  EXPECT_EQ(a.array().geometry().meta_bits, 16u);
  EXPECT_EQ(b.array().geometry().meta_bits, 10u);
  EXPECT_LT(b.array().area_um2(), a.array().area_um2());
}

TEST(HistoryScope, SharedCountersFireAcrossWays) {
  // Hammer two different lines of the SAME set alternately; the shared
  // counter reaches W across them while each line individually never
  // would within this access count.
  CntConfig cfg;
  cfg.history_scope = HistoryScope::kPerSet;
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  MainMemory mem;
  auto ccfg = cfg_small();
  ccfg.idle.hit_idle_period = 1;
  Cache cache(ccfg, mem);
  CntPolicy p("cnt", TechParams::cnfet(), geometry_of(ccfg), cfg);
  cache.add_sink(p);

  const u64 stride = ccfg.sets() * ccfg.line_bytes;  // same set, new tag
  // 2 fills + 16 alternating hits -> shared counter crosses 15.
  for (int i = 0; i < 9; ++i) {
    cache.access(MemAccess::read(0x0));
    cache.access(MemAccess::read(stride));
  }
  EXPECT_GE(p.stats().windows_evaluated, 1u);
}

TEST(HistoryScope, PerLineDoesNotFireAcrossWays) {
  CntConfig cfg;
  cfg.fill_policy = FillDirectionPolicy::kAsIs;  // per-line default scope
  MainMemory mem;
  Cache cache(cfg_small(), mem);
  CntPolicy p("cnt", TechParams::cnfet(), geometry_of(cfg_small()), cfg);
  cache.add_sink(p);
  const u64 stride = cfg_small().sets() * cfg_small().line_bytes;
  for (int i = 0; i < 9; ++i) {
    cache.access(MemAccess::read(0x0));
    cache.access(MemAccess::read(stride));
  }
  // Each line saw only 8 hits < W=15.
  EXPECT_EQ(p.stats().windows_evaluated, 0u);
}

TEST(HistoryScope, PerSetStillSavesOnSuite) {
  SimConfig cfg;
  cfg.cnt.history_scope = HistoryScope::kPerSet;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const auto results = run_suite(cfg, 0.1);
  const double mean = mean_saving(results);
  EXPECT_GT(mean, 0.08);  // still clearly positive
}

TEST(HistoryScope, FillDoesNotResetSharedCounters) {
  CntConfig cfg;
  cfg.history_scope = HistoryScope::kPerSet;
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  MainMemory mem;
  auto ccfg = cfg_small();
  ccfg.idle.idle_per_miss = 0;
  ccfg.idle.hit_idle_period = 0;
  Cache cache(ccfg, mem);
  CntPolicy p("cnt", TechParams::cnfet(), geometry_of(ccfg), cfg);
  cache.add_sink(p);

  // 10 hits on one line, then a miss fills another way of the same set,
  // then 4 more hits: shared counter = 10 + 4 == 14... plus nothing from
  // the fill itself (fills don't run the predictor). One more hit fires.
  cache.access(MemAccess::read(0x0));  // fill way 0
  for (int i = 0; i < 10; ++i) cache.access(MemAccess::read(0x0));
  const u64 stride = ccfg.sets() * ccfg.line_bytes;
  cache.access(MemAccess::read(stride));  // fill way 1 (same set)
  for (int i = 0; i < 4; ++i) cache.access(MemAccess::read(0x0));
  EXPECT_EQ(p.stats().windows_evaluated, 0u);
  cache.access(MemAccess::read(0x0));  // 15th counted access
  EXPECT_EQ(p.stats().windows_evaluated, 1u);
}

}  // namespace
}  // namespace cnt
