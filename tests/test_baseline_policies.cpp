#include "cnt/baseline_policies.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/rng.hpp"
#include "trace/value_model.hpp"

namespace cnt {
namespace {

CacheConfig small_cfg() {
  CacheConfig c;
  c.size_bytes = 4096;
  c.ways = 4;
  c.line_bytes = 64;
  return c;
}

using C = EnergyCategory;

struct Rig {
  MainMemory mem;
  Cache cache;
  PlainPolicy plain;
  StaticInvertPolicy inv;
  IdealPolicy ideal;

  Rig()
      : cache(small_cfg(), mem),
        plain("plain", TechParams::cnfet(), geometry_of(small_cfg())),
        inv("inv", TechParams::cnfet(), geometry_of(small_cfg())),
        ideal("ideal", TechParams::cnfet(), geometry_of(small_cfg()), 8) {
    cache.add_sink(plain);
    cache.add_sink(inv);
    cache.add_sink(ideal);
  }
};

TEST(PlainPolicy, ChargesLookupOnEveryAccess) {
  Rig r;
  r.cache.access(MemAccess::read(0x100));
  r.cache.access(MemAccess::read(0x100));
  EXPECT_EQ(r.plain.ledger().count(C::kTagRead), 2u);
  EXPECT_GT(r.plain.ledger().get(C::kDecode).in_joules(), 0.0);
}

TEST(PlainPolicy, ReadHitChargesDataRead) {
  Rig r;
  r.cache.access(MemAccess::read(0x100));  // miss: fill write
  const Energy after_miss = r.plain.ledger().get(C::kDataRead);
  r.cache.access(MemAccess::read(0x100));  // hit: data read
  EXPECT_GT(r.plain.ledger().get(C::kDataRead), after_miss);
}

TEST(PlainPolicy, FillChargesDataWriteAndTagWrite) {
  Rig r;
  r.cache.access(MemAccess::read(0x100));
  EXPECT_EQ(r.plain.ledger().count(C::kDataWrite), 1u);
  EXPECT_EQ(r.plain.ledger().count(C::kTagWrite), 1u);
}

TEST(PlainPolicy, ZeroLineReadCostsMoreThanOnesLine) {
  // CNFET: reading '0' is expensive. A line of zeros must cost more to read
  // than a line of ones under the plain (no-encoding) policy.
  MainMemory mem;
  for (usize i = 0; i < 64; ++i) mem.poke(0x1000 + i, 0xFF);
  Cache cache(small_cfg(), mem);
  PlainPolicy p("p", TechParams::cnfet(), geometry_of(small_cfg()));
  cache.add_sink(p);

  cache.access(MemAccess::read(0x0));  // zeros line, fill
  const Energy zero_read_before = p.ledger().get(C::kDataRead);
  cache.access(MemAccess::read(0x0));  // read hit on zeros
  const Energy zero_cost =
      p.ledger().get(C::kDataRead) - zero_read_before;

  cache.access(MemAccess::read(0x1000));  // ones line, fill
  const Energy ones_read_before = p.ledger().get(C::kDataRead);
  cache.access(MemAccess::read(0x1000));  // read hit on ones
  const Energy ones_cost = p.ledger().get(C::kDataRead) - ones_read_before;

  EXPECT_GT(zero_cost.in_joules(), 5.0 * ones_cost.in_joules());
}

TEST(StaticInvert, ChargesEncoderLogic) {
  Rig r;
  r.cache.access(MemAccess::read(0x100));
  EXPECT_GT(r.inv.ledger().get(C::kEncoderLogic).in_joules(), 0.0);
  EXPECT_DOUBLE_EQ(r.plain.ledger().get(C::kEncoderLogic).in_joules(), 0.0);
}

TEST(StaticInvert, ZeroDataReadsCheapOnesDataReadsDear) {
  // Static inversion stores zeros as ones: zero-line reads become cheap.
  MainMemory mem;
  Cache cache(small_cfg(), mem);
  StaticInvertPolicy p("inv", TechParams::cnfet(), geometry_of(small_cfg()));
  cache.add_sink(p);
  cache.access(MemAccess::read(0x0));
  const Energy before = p.ledger().get(C::kDataRead);
  cache.access(MemAccess::read(0x0));
  const Energy cost = p.ledger().get(C::kDataRead) - before;
  // 512 stored ones at rd1:
  const Energy expect = 512.0 * TechParams::cnfet().cell.rd1;
  EXPECT_NEAR(cost.in_joules(), expect.in_joules(), 1e-24);
}

TEST(Ideal, NeverWorseThanPlainOrStatic) {
  Rig r;
  Rng rng(8);
  SmallIntModel ints;
  Float64Model floats;
  for (int i = 0; i < 5000; ++i) {
    const u64 addr = rng.uniform(256) * 8;
    if (rng.chance(0.4)) {
      const u64 v = rng.chance(0.5) ? ints.sample(rng) : floats.sample(rng);
      r.cache.access(MemAccess::write(addr, v));
    } else {
      r.cache.access(MemAccess::read(addr));
    }
  }
  EXPECT_LE(r.ideal.ledger().total().in_joules(),
            r.plain.ledger().total().in_joules());
  EXPECT_LE(r.ideal.ledger().total().in_joules(),
            r.inv.ledger().total().in_joules());
}

TEST(Ideal, EqualsPlainPeripheralCharges) {
  // The ideal policy differs from plain only in data-array categories.
  Rig r;
  for (int i = 0; i < 100; ++i) {
    r.cache.access(MemAccess::read(static_cast<u64>(i) * 8));
  }
  for (const auto cat : {C::kDecode, C::kTagRead, C::kTagWrite, C::kOutput}) {
    EXPECT_DOUBLE_EQ(r.ideal.ledger().get(cat).in_joules(),
                     r.plain.ledger().get(cat).in_joules());
  }
}

TEST(Policies, WriteAroundChargesOnlyLookup) {
  MainMemory mem;
  auto cfg = small_cfg();
  cfg.alloc_policy = AllocPolicy::kNoWriteAllocate;
  Cache cache(cfg, mem);
  PlainPolicy p("p", TechParams::cnfet(), geometry_of(cfg));
  cache.add_sink(p);
  cache.access(MemAccess::write(0x500, 1));
  EXPECT_EQ(p.ledger().count(C::kTagRead), 1u);
  EXPECT_EQ(p.ledger().count(C::kDataRead), 0u);
  EXPECT_EQ(p.ledger().count(C::kDataWrite), 0u);
}

TEST(Policies, DirtyEvictionChargesWritebackRead) {
  MainMemory mem;
  auto cfg = small_cfg();
  Cache cache(cfg, mem);
  PlainPolicy p("p", TechParams::cnfet(), geometry_of(cfg));
  cache.add_sink(p);
  cache.access(MemAccess::write(0x0, 1));
  const u64 stride = cfg.sets() * cfg.line_bytes;
  for (u64 i = 1; i <= 4; ++i) {
    cache.access(MemAccess::read(i * stride));
  }
  // 5 fills + 1 writeback read: decode charged 5(lookup)+5(fill)+1(wb).
  EXPECT_EQ(p.ledger().count(C::kDecode), 11u);
  EXPECT_EQ(p.ledger().count(C::kDataRead), 1u);  // only the writeback
}

}  // namespace
}  // namespace cnt
