#include "cnt/update_queue.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

ReencodeRequest req(u32 set, u32 way, u32 gen = 0) {
  ReencodeRequest r;
  r.set = set;
  r.way = way;
  r.generation = gen;
  r.new_directions = 0xA5;
  r.write_cost = pJ(1.0);
  r.partitions_flipped = 3;
  return r;
}

TEST(UpdateQueue, PushPopRoundTrip) {
  UpdateQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(req(1, 2, 7)));
  EXPECT_EQ(q.size(), 1u);
  const auto r = q.pop();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->set, 1u);
  EXPECT_EQ(r->way, 2u);
  EXPECT_EQ(r->generation, 7u);
  EXPECT_EQ(r->new_directions, 0xA5u);
  EXPECT_DOUBLE_EQ(r->write_cost.in_picojoules(), 1.0);
  EXPECT_EQ(r->partitions_flipped, 3u);
}

TEST(UpdateQueue, DropsWhenFull) {
  UpdateQueue q(2);
  EXPECT_TRUE(q.push(req(0, 0)));
  EXPECT_TRUE(q.push(req(0, 1)));
  EXPECT_FALSE(q.push(req(0, 2)));
  EXPECT_EQ(q.stats().pushed, 2u);
  EXPECT_EQ(q.stats().dropped_full, 1u);
}

TEST(UpdateQueue, StatsTrackDrainsAndStale) {
  UpdateQueue q(4);
  ASSERT_TRUE(q.push(req(0, 0)));
  ASSERT_TRUE(q.push(req(0, 1)));
  (void)q.pop();
  q.note_stale();
  (void)q.pop();
  EXPECT_EQ(q.stats().drained, 2u);
  EXPECT_EQ(q.stats().drained_stale, 1u);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.stats().drained, 2u);  // empty pop doesn't count
}

TEST(UpdateQueue, MaxOccupancyHighWater) {
  UpdateQueue q(8);
  for (u32 i = 0; i < 5; ++i) ASSERT_TRUE(q.push(req(0, i)));
  for (int i = 0; i < 3; ++i) (void)q.pop();
  ASSERT_TRUE(q.push(req(1, 0)));
  EXPECT_EQ(q.stats().max_occupancy, 5u);
}

TEST(UpdateQueue, FifoOrderPreserved) {
  UpdateQueue q(4);
  for (u32 i = 0; i < 4; ++i) ASSERT_TRUE(q.push(req(i, 0)));
  for (u32 i = 0; i < 4; ++i) {
    const auto r = q.pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->set, i);
  }
}

}  // namespace
}  // namespace cnt
