// End-to-end fault plumbing: FaultConfig -> simulate() -> SimResult.
#include <gtest/gtest.h>

#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

SimConfig two_policy_config() {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  return cfg;
}

TEST(FaultRunner, DisabledCampaignLeavesResultUntouched) {
  const SimConfig cfg = two_policy_config();
  const auto plain = simulate(build_workload("zipf_kv", 0.05), cfg);
  EXPECT_FALSE(plain.has_fault);
  EXPECT_FALSE(plain.fault_stats.any_faults());

  // Run again: a default FaultConfig must not perturb energies at all.
  SimConfig cfg2 = two_policy_config();
  cfg2.fault = FaultConfig{};
  const auto again = simulate(build_workload("zipf_kv", 0.05), cfg2);
  EXPECT_EQ(plain.energy(kPolicyCnt).in_joules(),
            again.energy(kPolicyCnt).in_joules());
  EXPECT_EQ(plain.energy(kPolicyBaseline).in_joules(),
            again.energy(kPolicyBaseline).in_joules());
}

TEST(FaultRunner, UnprotectedCampaignReportsSilentCorruption) {
  SimConfig cfg = two_policy_config();
  cfg.fault.stuck_per_mbit = 500.0;
  cfg.fault.transient_per_read = 1e-4;
  cfg.fault.protection = ProtectionScheme::kNone;
  const auto res = simulate(build_workload("zipf_kv", 0.05), cfg);
  EXPECT_TRUE(res.has_fault);
  EXPECT_GT(res.fault_stats.stuck_data_cells, 0u);
  EXPECT_GT(res.fault_stats.faulty_reads, 0u);
  EXPECT_GT(res.fault_stats.silent_bits, 0u);  // real SDC
  EXPECT_EQ(res.fault_stats.corrected_bits, 0u);
  EXPECT_EQ(res.fault_stats.detected_events, 0u);
}

TEST(FaultRunner, SecdedSuppressesSdcAndChargesEcc) {
  SimConfig unprot = two_policy_config();
  unprot.fault.stuck_per_mbit = 100.0;
  unprot.fault.transient_per_read = 1e-5;
  unprot.fault.protection = ProtectionScheme::kNone;
  const auto none = simulate(build_workload("zipf_kv", 0.05), unprot);

  SimConfig prot = unprot;
  prot.fault.protection = ProtectionScheme::kSecded;
  const auto secded = simulate(build_workload("zipf_kv", 0.05), prot);

  // At this modest density multi-bit codeword overlaps do not occur:
  // everything the unprotected run leaked is corrected or refetched.
  EXPECT_GT(none.fault_stats.silent_bits, 0u);
  EXPECT_EQ(secded.fault_stats.silent_bits, 0u);
  EXPECT_EQ(secded.fault_stats.dir_silent_bits, 0u);
  EXPECT_GT(secded.fault_stats.corrected_bits, 0u);

  // The protection is not free: check-bit storage and checker logic are
  // charged through the ledger, so every policy's total rises.
  EXPECT_GT(secded.energy(kPolicyCnt).in_joules(),
            none.energy(kPolicyCnt).in_joules());
  EXPECT_GT(secded.energy(kPolicyBaseline).in_joules(),
            none.energy(kPolicyBaseline).in_joules());
  const auto* cnt_run = secded.find(kPolicyCnt);
  ASSERT_NE(cnt_run, nullptr);
  EXPECT_GT(cnt_run->ledger.get(EnergyCategory::kEccStorage).in_joules(), 0.0);
  EXPECT_GT(cnt_run->ledger.get(EnergyCategory::kEccLogic).in_joules(), 0.0);
}

TEST(FaultRunner, ParityDetectsWithoutCorrecting) {
  SimConfig cfg = two_policy_config();
  cfg.fault.stuck_per_mbit = 100.0;
  cfg.fault.protection = ProtectionScheme::kParity;
  const auto res = simulate(build_workload("zipf_kv", 0.05), cfg);
  EXPECT_TRUE(res.has_fault);
  EXPECT_GT(res.fault_stats.detected_events, 0u);
  EXPECT_EQ(res.fault_stats.corrected_bits, 0u);
  EXPECT_EQ(res.fault_stats.dir_corrected_bits, 0u);
}

TEST(FaultRunner, CampaignIsDeterministic) {
  SimConfig cfg = two_policy_config();
  cfg.fault.stuck_per_mbit = 300.0;
  cfg.fault.transient_per_read = 1e-4;
  cfg.fault.protection = ProtectionScheme::kSecded;
  const auto a = simulate(build_workload("stream_copy", 0.05), cfg);
  const auto b = simulate(build_workload("stream_copy", 0.05), cfg);
  EXPECT_EQ(a.fault_stats.transient_data_flips,
            b.fault_stats.transient_data_flips);
  EXPECT_EQ(a.fault_stats.corrected_bits, b.fault_stats.corrected_bits);
  EXPECT_EQ(a.fault_stats.silent_bits, b.fault_stats.silent_bits);
  EXPECT_EQ(a.energy(kPolicyCnt).in_joules(), b.energy(kPolicyCnt).in_joules());
}

TEST(FaultRunner, FaultTableRendersCampaignRows) {
  SimConfig cfg = two_policy_config();
  cfg.fault.stuck_per_mbit = 200.0;
  cfg.fault.protection = ProtectionScheme::kSecded;
  const auto res = simulate(build_workload("zipf_kv", 0.05), cfg);
  const auto table = fault_table({res});
  EXPECT_NE(table.find("zipf_kv"), std::string::npos);
  EXPECT_NE(table.find("SDC bits"), std::string::npos);
  // A result without a campaign renders no row.
  const auto clean = simulate(build_workload("zipf_kv", 0.05),
                              two_policy_config());
  const auto empty = fault_table({clean});
  EXPECT_EQ(empty.find("zipf_kv"), std::string::npos);
}

}  // namespace
}  // namespace cnt
