// Unit tests for the durable-I/O layer (common/io.hpp,
// docs/crash_consistency.md): checked DurableFile writes, atomic
// publish via AtomicFileWriter, errno mapping onto the taxonomy, and
// deterministic failure injection through the failpoint registry.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"

namespace cnt {
namespace {

namespace fsys = std::filesystem;

/// Disarm every failpoint when a test exits, pass or fail.
struct FpGuard {
  FpGuard() { fp::clear(); }
  ~FpGuard() { fp::clear(); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class IoTest : public ::testing::Test {
 protected:
  // ctest runs each discovered test as its own process against the same
  // TempDir; the pid suffix keeps parallel runs from clobbering each
  // other.
  std::string path_ = ::testing::TempDir() + "cnt_io_test.out." +
                      std::to_string(::getpid());
  void TearDown() override {
    std::error_code ec;
    fsys::remove(path_, ec);
    fsys::remove(path_ + ".partial", ec);
  }
};

TEST(IoErrno, NamesAndLabelsAreStable) {
  EXPECT_EQ(io::errno_name(ENOSPC), "ENOSPC");
  EXPECT_EQ(io::errno_name(EIO), "EIO");
  EXPECT_EQ(io::errno_name(12345), "");
  EXPECT_EQ(io::errno_label(ENOSPC), "ENOSPC (no space left on device)");
  EXPECT_EQ(io::errno_label(EIO), "EIO (input/output error)");
  EXPECT_EQ(io::errno_label(12345), "errno 12345");
}

TEST_F(IoTest, DurableFileWritesEveryByte) {
  {
    io::DurableFile f(path_, "csv");
    f.write("hello ");
    f.write("world\n");
    f.sync();
    f.close();
  }
  EXPECT_EQ(slurp(path_), "hello world\n");
}

TEST(IoOpen, MissingDirectoryIsAStructuredError) {
  try {
    io::DurableFile f("/nonexistent_dir_xyz/f.bin", "csv");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kIo);
    EXPECT_EQ(e.info().message,
              "open failed: ENOENT (no such file or directory)");
    EXPECT_EQ(e.info().source, "/nonexistent_dir_xyz/f.bin");
    EXPECT_EQ(e.info().hint, "check that the directory exists and is writable");
  }
}

TEST_F(IoTest, AtomicWriterPublishesOnlyOnCommit) {
  io::AtomicFileWriter out(path_, "csv");
  out.stream() << "payload\n";
  EXPECT_FALSE(fsys::exists(path_));
  EXPECT_TRUE(fsys::exists(out.partial_path()));
  out.commit();
  EXPECT_TRUE(out.committed());
  EXPECT_EQ(slurp(path_), "payload\n");
  EXPECT_FALSE(fsys::exists(out.partial_path()));
  out.commit();  // idempotent
  EXPECT_EQ(slurp(path_), "payload\n");
}

TEST_F(IoTest, AtomicWriterDiscardRemovesStagingFile) {
  io::AtomicFileWriter out(path_, "csv");
  out.write("doomed");
  out.discard();
  EXPECT_FALSE(fsys::exists(path_));
  EXPECT_FALSE(fsys::exists(out.partial_path()));
  out.discard();  // safe twice
  EXPECT_THROW(out.commit(), std::logic_error);
}

TEST_F(IoTest, AtomicWriterDestructorDiscards) {
  {
    io::AtomicFileWriter out(path_, "csv");
    out.stream() << "never published";
  }
  EXPECT_FALSE(fsys::exists(path_));
  EXPECT_FALSE(fsys::exists(path_ + ".partial"));
}

TEST_F(IoTest, AtomicWriterKeepsOldFileUntilCommit) {
  {
    io::AtomicFileWriter out(path_, "csv");
    out.stream() << "v1\n";
    out.commit();
  }
  io::AtomicFileWriter out(path_, "csv");
  out.stream() << "v2\n";
  EXPECT_EQ(slurp(path_), "v1\n");  // old artifact intact while staging
  out.commit();
  EXPECT_EQ(slurp(path_), "v2\n");
}

TEST_F(IoTest, InjectedEnospcThrowsAndIsOneShot) {
  FpGuard guard;
  fp::configure("csv.write=error:ENOSPC");
  io::DurableFile f(path_, "csv");
  try {
    f.write("abcdefgh");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kIo);
    EXPECT_EQ(e.info().message,
              "write failed: ENOSPC (no space left on device)");
    EXPECT_EQ(e.info().hint, "free disk space and rerun");
  }
  // One-shot: the recovery write goes through clean.
  f.write("recovered\n");
  f.close();
  EXPECT_EQ(slurp(path_), "recovered\n");
}

TEST_F(IoTest, InjectedShortWritePersistsExactlyHalf) {
  FpGuard guard;
  fp::configure("csv.write=short-write");
  io::DurableFile f(path_, "csv");
  try {
    f.write("abcdefgh");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().message,
              "write failed after 4 of 8 bytes: ENOSPC (no space left on "
              "device)");
  }
  f.close();
  EXPECT_EQ(slurp(path_), "abcd");  // the torn prefix really is on disk
}

TEST_F(IoTest, InjectedRenameFailureLeavesNoArtifact) {
  FpGuard guard;
  fp::configure("csv.rename=error:ENOSPC");
  bool threw = false;
  {
    io::AtomicFileWriter out(path_, "csv");
    out.stream() << "payload\n";
    try {
      out.commit();
    } catch (const Error& e) {
      threw = true;
      EXPECT_EQ(e.info().code, Errc::kIo);
      ASSERT_EQ(e.info().context.size(), 1u);
      EXPECT_EQ(e.info().context[0], "publishing " + path_);
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_FALSE(fsys::exists(path_));             // nothing published
  EXPECT_FALSE(fsys::exists(path_ + ".partial"));  // staging cleaned up
}

TEST_F(IoTest, CsvWriterPublishesAtFinishThroughTheAtomicPath) {
  FpGuard guard;
  fp::configure("csv.sync=error:EIO");
  {
    CsvWriter csv(path_, {"a"});
    csv.add_row({"1"});
    EXPECT_THROW(csv.finish(), Error);
  }
  EXPECT_FALSE(fsys::exists(path_));
  fp::clear();
  {
    CsvWriter csv(path_, {"a"});
    csv.add_row({"1"});
    csv.finish();
  }
  EXPECT_EQ(slurp(path_), "a\n1\n");
}

}  // namespace
}  // namespace cnt
