// Golden tests for the structured error taxonomy (docs/error_handling.md):
// one representative failure per ingest format, asserting the three
// contract fields -- what (message), where (source + line/byte) and how
// (hint) -- plus the single-line rendering that CLIs print. These pin the
// user-facing diagnostics, so changing a message is a deliberate act.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/io.hpp"
#include "common/json.hpp"
#include "exec/journal.hpp"
#include "trace/trace_io.hpp"

namespace cnt {
namespace {

TEST(ErrorTaxonomy, RenderCarriesWhatWhereAndHint) {
  const Error e = Error(Errc::kSyntax, "missing '=' in key-value line")
                      .at("cfg/sim.ini", 7)
                      .hint("write 'key = value'")
                      .context("loading simulator config");
  EXPECT_EQ(e.info().code, Errc::kSyntax);
  EXPECT_EQ(e.info().where(), "cfg/sim.ini: line 7");
  EXPECT_EQ(std::string(e.what()),
            "[syntax] cfg/sim.ini: line 7: missing '=' in key-value line "
            "(while loading simulator config) -- hint: write 'key = value'");
}

TEST(ErrorTaxonomy, ErrcNamesAreStable) {
  // The fuzz digest hashes these names; renaming one changes every
  // recorded digest, so the mapping is pinned here.
  EXPECT_EQ(errc_name(Errc::kIo), "io");
  EXPECT_EQ(errc_name(Errc::kSyntax), "syntax");
  EXPECT_EQ(errc_name(Errc::kDuplicateKey), "duplicate-key");
  EXPECT_EQ(errc_name(Errc::kMagic), "magic");
  EXPECT_EQ(errc_name(Errc::kChecksum), "checksum");
}

TEST(GoldenIni, DuplicateKeyNamesPathLineAndFix) {
  const auto r = Config::try_parse_string("[s]\nk = 1\nk = 2\n", "sim.ini");
  ASSERT_FALSE(r.ok());
  const ErrorInfo& info = r.error().info();
  EXPECT_EQ(info.code, Errc::kDuplicateKey);
  EXPECT_EQ(info.message, "key 's.k' is defined more than once");
  EXPECT_EQ(info.source, "sim.ini");
  EXPECT_EQ(info.line, 3u);
  EXPECT_EQ(info.hint,
            "remove the duplicate; earlier definitions would otherwise be "
            "silently overridden");
}

TEST(GoldenTraceText, BadOpNamesSourceLineAndGrammar) {
  std::istringstream is("R 1000 8\nQ 2000 4\n");
  try {
    (void)read_text(is, "demo.txt");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kSyntax);
    EXPECT_EQ(e.info().message, "bad op 'Q'");
    EXPECT_EQ(e.info().source, "demo.txt");
    EXPECT_EQ(e.info().line, 2u);
    EXPECT_EQ(e.info().hint,
              "each record starts with R (read), W (write) or I (ifetch)");
  }
}

TEST(GoldenTraceBinary, WrongMagicSaysNotACntTrace) {
  std::istringstream is(std::string("GZIP\x01\x02\x03\x04", 8));
  try {
    (void)read_binary(is, "blob.trc");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kMagic);
    EXPECT_NE(e.info().message.find("not a CNT trace"), std::string::npos);
    EXPECT_NE(e.info().message.find("expected 'CNTTRC'"), std::string::npos);
    EXPECT_EQ(e.info().source, "blob.trc");
    EXPECT_NE(e.info().hint.find("6-byte magic"), std::string::npos);
  }
}

TEST(GoldenJournal, MidFileCorruptionNamesRowLineAndRefusal) {
  exec::JournalData journal;
  journal.header_ok = true;
  journal.mid_file_corruption = true;
  journal.corrupt_row_index = 4;
  journal.corrupt_line = 6;
  journal.source_path = "sweep.jsonl.partial";
  const auto err = exec::journal_corruption_error(journal);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->info().code, Errc::kChecksum);
  EXPECT_EQ(err->info().message,
            "journal row 4 fails its CRC seal with intact rows after it "
            "(mid-file corruption, not a torn tail)");
  EXPECT_EQ(err->info().where(), "sweep.jsonl.partial: line 6");
  EXPECT_NE(err->info().hint.find("rerun without --resume"),
            std::string::npos);

  // A merely torn tail must NOT produce a refusal.
  journal.mid_file_corruption = false;
  EXPECT_FALSE(exec::journal_corruption_error(journal).has_value());
}

TEST(GoldenJsonl, SyntaxErrorCarriesByteOffset) {
  try {
    (void)parse_json("{\"a\":1,}", "row.jsonl");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kSyntax);
    EXPECT_EQ(e.info().source, "row.jsonl");
    EXPECT_GT(e.info().byte, 0u);
    EXPECT_EQ(e.info().line, 0u);  // byte-addressed, not line-addressed
    EXPECT_EQ(e.info().hint, "the input is not well-formed JSON");
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(GoldenConfigValue, BadIntegerIsValueErrorWithKeyAndValue) {
  const auto c = Config::parse_string("[s]\nn = 3x\n");
  try {
    (void)c.get_int("s.n", 0);
    FAIL() << "must throw";
  } catch (const ValueError& e) {
    EXPECT_EQ(e.info().code, Errc::kValue);
    EXPECT_EQ(e.info().message, "key 's.n' has invalid integer value '3x'");
    EXPECT_EQ(e.info().hint, "use a plain base-10 integer");
  }
}

TEST(GoldenIo, InjectedEnospcRendersWhatWhereAndHint) {
  fp::clear();
  fp::configure("csv.write=error:ENOSPC");
  const std::string path = ::testing::TempDir() + "golden_io.csv";
  io::DurableFile f(path, "csv");
  try {
    f.write("row\n");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kIo);
    EXPECT_EQ(e.info().message,
              "write failed: ENOSPC (no space left on device)");
    EXPECT_EQ(e.info().source, path);
    EXPECT_EQ(e.info().hint, "free disk space and rerun");
    EXPECT_EQ(std::string(e.what()),
              "[io] " + path +
                  ": write failed: ENOSPC (no space left on device) -- "
                  "hint: free disk space and rerun");
  }
  fp::clear();
  f.close();
  (void)std::remove(path.c_str());
}

TEST(GoldenIo, ShortWriteNamesTheTornByteCount) {
  fp::clear();
  fp::configure("csv.write=short-write");
  const std::string path = ::testing::TempDir() + "golden_torn.csv";
  io::DurableFile f(path, "csv");
  try {
    f.write("abcdefgh");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kIo);
    EXPECT_EQ(e.info().message,
              "write failed after 4 of 8 bytes: ENOSPC (no space left on "
              "device)");
    EXPECT_EQ(e.info().source, path);
  }
  fp::clear();
  f.close();
  (void)std::remove(path.c_str());
}

TEST(GoldenIo, FsyncEioAndRenameFailureNameTheFailedStep) {
  fp::clear();
  const std::string path = ::testing::TempDir() + "golden_sync.csv";
  {
    fp::configure("csv.sync=error:EIO");
    io::DurableFile f(path, "csv");
    f.write("x");
    try {
      f.sync();
      FAIL() << "must throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.info().message, "fsync failed: EIO (input/output error)");
      EXPECT_EQ(e.info().hint,
                "the device reported an I/O error; check the filesystem "
                "before retrying");
    }
    fp::clear();
  }
  {
    fp::configure("csv.rename=error:ENOSPC");
    io::AtomicFileWriter out(path, "csv");
    out.write("y");
    try {
      out.commit();
      FAIL() << "must throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.info().code, Errc::kIo);
      EXPECT_NE(e.info().message.find("rename failed"), std::string::npos);
      EXPECT_EQ(e.info().source, out.partial_path());
      ASSERT_EQ(e.info().context.size(), 1u);
      EXPECT_EQ(e.info().context[0], "publishing " + path);
    }
    fp::clear();
  }
  (void)std::remove(path.c_str());
}

TEST(ErrorTaxonomy, FormatErrorFallsBackForPlainExceptions) {
  const std::runtime_error plain("plain failure");
  EXPECT_EQ(format_error(plain), "plain failure");
  const Error rich = Error(Errc::kIo, "cannot open config file")
                         .at("missing.ini")
                         .hint("check the path and permissions");
  EXPECT_EQ(format_error(rich),
            "[io] missing.ini: cannot open config file -- hint: check the "
            "path and permissions");
}

TEST(ErrorTaxonomy, NearestMatchSuggestsCloseKeysOnly) {
  const std::vector<std::string> known = {"cache.size", "cache.ways",
                                          "cnt.window"};
  EXPECT_EQ(nearest_match("cache.siez", known), "cache.size");
  EXPECT_EQ(nearest_match("cnt.window", known), "cnt.window");
  EXPECT_EQ(nearest_match("zzzzzz", known), "");
}

TEST(ErrorTaxonomy, ResultOrThrowRoundTrips) {
  Result<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(std::move(good).or_throw(), 7);
  Result<int> bad(Error(Errc::kRange, "out of range"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), Errc::kRange);
  EXPECT_THROW((void)std::move(bad).or_throw(), Error);
}

}  // namespace
}  // namespace cnt
