#include "trace/gen/workloads.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

// Reads that precede any write to the same address must be covered by an
// init segment -- otherwise the workload reads undefined memory.
void expect_reads_initialized(const Workload& w) {
  auto covered = [&w](u64 addr, u8 size) {
    for (const auto& seg : w.init) {
      // Inside a segment's span the content is fully defined: explicit
      // bytes/runs or implicit zeros (sparse segments).
      if (seg.covers(addr, size)) return true;
    }
    return false;
  };
  std::unordered_map<u64, bool> written;  // word-granular (8B)
  usize checked = 0;
  for (const auto& a : w.trace) {
    const u64 word = a.addr / 8;
    if (a.op == MemOp::kWrite) {
      written[word] = true;
    } else if (!written.contains(word)) {
      ASSERT_TRUE(covered(a.addr, a.size))
          << w.name << ": uninitialized read at 0x" << std::hex << a.addr;
      if (++checked > 5000) return;  // bound the O(n) scan
    }
  }
}

class SuiteWorkloads : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteWorkloads, WellFormedAndDeterministic) {
  const Workload a = build_workload(GetParam(), 0.25);
  EXPECT_EQ(a.name, GetParam());
  EXPECT_FALSE(a.description.empty());
  EXPECT_GT(a.trace.size(), 1000u);
  EXPECT_TRUE(a.trace.well_formed());

  const Workload b = build_workload(GetParam(), 0.25);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (usize i = 0; i < a.trace.size(); i += 97) {
    EXPECT_EQ(a.trace[i].addr, b.trace[i].addr);
    EXPECT_EQ(a.trace[i].value, b.trace[i].value);
  }
}

TEST_P(SuiteWorkloads, ReadsAreInitialized) {
  expect_reads_initialized(build_workload(GetParam(), 0.25));
}

TEST_P(SuiteWorkloads, ScaleChangesLength) {
  const Workload small = build_workload(GetParam(), 0.2);
  const Workload full = build_workload(GetParam(), 1.0);
  EXPECT_LE(small.trace.size(), full.trace.size());
}

INSTANTIATE_TEST_SUITE_P(AllSuite, SuiteWorkloads,
                         ::testing::ValuesIn(suite_names()));

TEST(Workloads, SuiteHasTenEntries) {
  EXPECT_EQ(default_suite().size(), 10u);
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW((void)build_workload("nope"), std::invalid_argument);
}

TEST(Workloads, WriteMixesDiffer) {
  // The suite must span read-heavy and write-heavy behaviour.
  double min_wf = 1.0, max_wf = 0.0;
  for (const auto& e : default_suite()) {
    const auto s = e.build(0.2, 0).trace.stats();
    min_wf = std::min(min_wf, s.write_fraction);
    max_wf = std::max(max_wf, s.write_fraction);
  }
  EXPECT_LT(min_wf, 0.12);
  EXPECT_GT(max_wf, 0.3);
}

TEST(Workloads, ValueDensitiesDiffer) {
  double min_d = 1.0, max_d = 0.0;
  for (const auto& e : default_suite()) {
    const auto s = e.build(0.2, 0).trace.stats();
    if (s.writes == 0) continue;
    min_d = std::min(min_d, s.write_bit1_density);
    max_d = std::max(max_d, s.write_bit1_density);
  }
  EXPECT_LT(min_d, 0.2);   // some workload writes near-zero-density data
  EXPECT_GT(max_d, 0.35);  // some workload writes float-like data
}

TEST(Workloads, HashJoinHasPhaseChange) {
  const Workload w = build_workload("hash_join", 0.3);
  // First third should be write-heavy, last third read-only.
  const usize n = w.trace.size();
  usize writes_front = 0, writes_back = 0;
  for (usize i = 0; i < n / 3; ++i) {
    writes_front += w.trace[i].is_write();
  }
  for (usize i = 2 * n / 3; i < n; ++i) {
    writes_back += w.trace[i].is_write();
  }
  EXPECT_GT(writes_front, n / 12);
  EXPECT_EQ(writes_back, 0u);
}

TEST(Workloads, IFetchStreamIsAllFetches) {
  const Workload w = build_workload("ifetch", 0.2);
  for (usize i = 0; i < w.trace.size(); i += 53) {
    EXPECT_EQ(w.trace[i].op, MemOp::kIFetch);
  }
  EXPECT_GT(w.trace.size(), 10000u);
}

TEST(Workloads, PointerChaseMostlyReads) {
  const auto s = build_workload("pointer_chase", 0.2).trace.stats();
  EXPECT_LT(s.write_fraction, 0.1);
}

}  // namespace
}  // namespace cnt
