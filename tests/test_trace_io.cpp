#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"

namespace cnt {
namespace {

Trace sample_trace() {
  Trace t("sample");
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    const u64 addr = rng.uniform(1 << 20) * 8;
    switch (rng.uniform(3)) {
      case 0: t.push(MemAccess::read(addr)); break;
      case 1: t.push(MemAccess::write(addr, rng.next())); break;
      default: t.push(MemAccess::ifetch(addr)); break;
    }
  }
  t.push(MemAccess::read(0x1001, 1));
  t.push(MemAccess::write(0x1002, 0xBEEF, 2));
  t.push(MemAccess::read(0x1004, 4));
  return t;
}

void expect_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr) << "record " << i;
    EXPECT_EQ(a[i].size, b[i].size) << "record " << i;
    EXPECT_EQ(a[i].op, b[i].op) << "record " << i;
    if (a[i].op == MemOp::kWrite) {
      EXPECT_EQ(a[i].value, b[i].value) << "record " << i;
    }
  }
}

TEST(TraceIo, TextRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_text(t, ss);
  const Trace back = read_text(ss, "back");
  expect_equal(t, back);
}

TEST(TraceIo, BinaryRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_binary(t, ss);
  const Trace back = read_binary(ss, "back");
  expect_equal(t, back);
}

TEST(TraceIo, TextSkipsCommentsAndBlanks) {
  std::stringstream ss;
  ss << "# a comment\n\nR 40 8\n  # indented comment\nW 80 4 beef\n";
  const Trace t = read_text(ss);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x40u);
  EXPECT_EQ(t[1].value, 0xBEEFu);
  EXPECT_EQ(t[1].size, 4u);
}

TEST(TraceIo, TextRejectsBadOp) {
  std::stringstream ss("X 40 8\n");
  EXPECT_THROW((void)read_text(ss), std::runtime_error);
}

TEST(TraceIo, TextRejectsMissingWriteValue) {
  std::stringstream ss("W 40 8\n");
  EXPECT_THROW((void)read_text(ss), std::runtime_error);
}

TEST(TraceIo, TextRejectsMisalignedAccess) {
  std::stringstream ss("R 41 4\n");
  EXPECT_THROW((void)read_text(ss), std::runtime_error);
}

TEST(TraceIo, TextRejectsOutOfRangeSize) {
  // A size of 300 used to narrow to u8 (300 & 0xFF = 44) before
  // validation, and 264 would even alias to a perfectly valid 8 and load
  // silently. Both must fail, and the error must name the line.
  for (const char* bad : {"R 40 300", "R 40 264", "R 40 0"}) {
    std::stringstream ss(std::string(bad) + "\n");
    try {
      (void)read_text(ss);
      FAIL() << "accepted '" << bad << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
          << e.what();
    }
  }
}

TEST(TraceIo, BinaryRejectsBadMagic) {
  std::stringstream ss("NOTMAGIC........");
  EXPECT_THROW((void)read_binary(ss), std::runtime_error);
}

TEST(TraceIo, BinaryRejectsTruncation) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_binary(t, ss);
  std::string data = ss.str();
  data.resize(data.size() - 5);
  std::stringstream cut(data);
  EXPECT_THROW((void)read_binary(cut), std::runtime_error);
}

TEST(TraceIo, FileRoundTripBothFormats) {
  const Trace t = sample_trace();
  for (const char* name : {"trace_io_test.txt", "trace_io_test.bin"}) {
    const std::string path = ::testing::TempDir() + name;
    save_trace(t, path);
    const Trace back = load_trace(path);
    expect_equal(t, back);
    std::remove(path.c_str());
  }
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/no/such/file.bin"), std::runtime_error);
}

}  // namespace
}  // namespace cnt
