// ThreadPool + JobQueue: startup/shutdown, FIFO hand-off, the
// N-jobs-complete invariant under contention, exception capture, and
// graceful-drain semantics. Labelled `exec` so the TSan preset runs it.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "exec/job_queue.hpp"

namespace cnt::exec {
namespace {

TEST(JobQueue, FifoOrder) {
  JobQueue<int> q;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(JobQueue, CloseDrainsThenSignalsEnd) {
  JobQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::nullopt);  // drained => terminal
}

TEST(JobQueue, CloseWakesBlockedConsumer) {
  JobQueue<int> q;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    const auto v = q.pop();  // blocks until close()
    EXPECT_EQ(v, std::nullopt);
    woke = true;
  });
  // cnt-lint: wait-ok bounded test pacing, no cancellation in scope
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(ThreadPool, StartupShutdown) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  pool.shutdown();
  EXPECT_EQ(pool.thread_count(), 0u);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ZeroMeansHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, AllJobsComplete) {
  constexpr int kJobs = 500;
  ThreadPool pool(8);
  std::atomic<int> done{0};
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), kJobs);
  EXPECT_EQ(pool.error_count(), 0u);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
  pool.submit([&done] { ++done; });
  pool.submit([&done] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, ExceptionCaptureDoesNotKillBatch) {
  ThreadPool pool(4);
  std::atomic<int> ok{0};
  for (int i = 0; i < 20; ++i) {
    if (i % 5 == 0) {
      pool.submit([i] {
        throw std::runtime_error("job " + std::to_string(i) + " failed");
      });
    } else {
      pool.submit([&ok] { ++ok; });
    }
  }
  pool.wait();
  EXPECT_EQ(ok.load(), 16);
  EXPECT_EQ(pool.error_count(), 4u);
  const auto errors = pool.take_errors();
  ASSERT_EQ(errors.size(), 4u);
  std::set<std::string> unique(errors.begin(), errors.end());
  EXPECT_EQ(unique.size(), 4u);  // each failed job reported its own text
  for (const auto& e : errors) {
    EXPECT_NE(e.find("failed"), std::string::npos);
  }
  EXPECT_EQ(pool.error_count(), 0u);  // take_errors() clears

  // Pool still works after failures.
  pool.submit([&ok] { ++ok; });
  pool.wait();
  EXPECT_EQ(ok.load(), 17);
}

TEST(ThreadPool, NonStdExceptionCaptured) {
  ThreadPool pool(1);
  pool.submit([] { throw 42; });  // NOLINT: deliberately not std::exception
  pool.wait();
  EXPECT_EQ(pool.error_count(), 1u);
  EXPECT_EQ(pool.take_errors().front(), "unknown exception");
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] {
        // cnt-lint: wait-ok bounded test pacing, no cancellation in scope
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs shutdown(): every queued job must still execute.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // no jobs submitted; must not hang
  SUCCEED();
}

}  // namespace
}  // namespace cnt::exec
