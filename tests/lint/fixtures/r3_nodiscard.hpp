// cnt-lint fixture: rule R3 ([[nodiscard]] on const accessors).
// Exactly ONE unsuppressed violation plus one suppressed twin.
// NOT part of the main build.
#pragma once

class LedgerLike {
 public:
  double total() const noexcept { return joules_; }  // <- the one R3 violation

  // cnt-lint: nodiscard-ok -- suppressed twin (auxiliary count)
  double auxiliary() const noexcept { return joules_; }

  // Must NOT trigger:
  [[nodiscard]] double annotated() const noexcept { return joules_; }
  void validate() const {}                       // void result
  bool operator==(const LedgerLike& o) const {   // operators exempt
    return joules_ == o.joules_;
  }

 private:
  double joules_ = 0.0;
};

// Out-of-class definitions never need the attribute repeated:
class Decl {
 public:
  [[nodiscard]] double value() const;
};
inline double Decl::value() const { return 1.0; }
