// cnt-lint fixture: rule R1 (nondeterminism primitives).
// Exactly ONE unsuppressed violation plus one suppressed twin; consumed
// by tests/lint/test_lint_rules.cpp. NOT part of the main build.
#include <cstdlib>

int entropy() {
  return rand();  // <- the one R1 violation
}

int whitelisted_telemetry() {
  return rand();  // cnt-lint: nondet-ok -- suppressed twin
}

// Near-misses that must NOT trigger:
// a comment mentioning rand() and std::chrono::system_clock is fine;
const char* kMessage = "strings naming rand() or time(0) are fine";
int time_budget_ms = 7;  // identifier merely containing 'time'
int runtime(int x) { return x; }  // 'runtime' is not 'time'
