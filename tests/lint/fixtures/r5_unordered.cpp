// cnt-lint fixture: rule R5 (unordered-container iteration feeding
// output). Exactly ONE unsuppressed violation plus one suppressed twin.
// NOT part of the main build.
#include <cstdio>
#include <map>
#include <unordered_map>

void dump_stats(const std::unordered_map<int, long>& stats_by_set) {
  for (const auto& kv : stats_by_set) {  // <- the one R5 violation
    std::printf("%d,%ld\n", kv.first, kv.second);
  }
}

void dump_unsorted(const std::unordered_map<int, long>& histogram) {
  // cnt-lint: unordered-ok -- suppressed twin (rows sorted downstream)
  for (const auto& kv : histogram) {
    std::printf("%d,%ld\n", kv.first, kv.second);
  }
}

// Must NOT trigger:
long accumulate(const std::unordered_map<int, long>& counts) {
  long sum = 0;
  for (const auto& kv : counts) sum += kv.second;  // commutative, no output
  return sum;
}

void ordered_is_fine(const std::map<int, long>& ordered) {
  for (const auto& kv : ordered) {
    std::printf("%d,%ld\n", kv.first, kv.second);
  }
}
