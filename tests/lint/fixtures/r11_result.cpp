// cnt-lint fixture: rule R11 (unchecked Result<T>). try_fetch is
// declared to return Result<int>; calling it in statement position and
// dropping the value is the ONE violation, with a suppressed twin.
// NOT part of the main build.
template <typename T>
struct Result {
  T value;
};

Result<int> try_fetch(int key);

inline void caller(int k) {
  try_fetch(k);  // <- the one R11 violation
  try_fetch(k + 1);  // cnt-lint: result-ok suppressed twin
}

// Near-misses that must NOT trigger:
inline int consumer(int k) {
  const Result<int> r = try_fetch(k);  // value consumed
  return r.value;
}
