// cnt-lint fixture: rule R7 (raw std::ofstream outside src/common/io.*).
// Exactly ONE unsuppressed violation plus one suppressed twin.
// NOT part of the main build.
#include <fstream>
#include <string>

void dump_artifact(const std::string& path) {
  std::ofstream out(path);  // <- the one R7 violation
  out << "silently truncatable\n";
}

void fabricate_corrupt_input(const std::string& path) {
  // cnt-lint: io-ok -- suppressed twin (test fabricates a torn file)
  std::ofstream out(path, std::ios::binary);
  out << "torn";
}

// Must NOT trigger: reading is out of scope.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}
