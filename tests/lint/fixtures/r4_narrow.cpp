// cnt-lint fixture: rule R4 (narrowing casts without a range guard).
// Exactly ONE unsuppressed violation plus one suppressed twin.
// Layout note: the suppressed twin sits FIRST so no guard token from a
// later function leaks into its 6-line lookback window.
// NOT part of the main build.
using u8 = unsigned char;

u8 annotated(unsigned long long v) {
  return static_cast<u8>(v);  // cnt-lint: narrow-ok -- suppressed twin
}

u8 truncate(unsigned long long v) {
  return static_cast<u8>(v);  // <- the one R4 violation
}

u8 masked(unsigned long long v) {
  return static_cast<u8>(v & 0xff);  // mask guard: not flagged
}

u8 literal() {
  return static_cast<u8>(42);  // literal argument: not flagged
}

u8 range_checked(unsigned long long v) {
  if (v > 255) v = 255;
  return static_cast<u8>(v);  // branch guard within window: not flagged
}
