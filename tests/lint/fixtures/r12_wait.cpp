// cnt-lint fixture: rule R12 (bare blocking waits). One bare sleep_for
// (the ONE violation) and one suppressed twin; the bounded and
// non-cv pauses below are near-misses that must not trigger.
// NOT part of the main build.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

inline void naps() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // <- violation
  // cnt-lint: wait-ok suppressed twin (bounded test pacing)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// Near-misses that must NOT trigger:
inline void bounded_waits(bool ready) {
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  // wait_for / wait_until are bounded -- the enclosing loop re-checks.
  while (!ready) {
    (void)cv.wait_for(lock, std::chrono::milliseconds(20));
  }
}

inline void unrelated_wait(int waiter) {
  // A wait() member on a non-cv receiver stays out of scope.
  struct Latch {
    void wait(int) {}
  } latch;
  latch.wait(waiter);
}
