// cnt-lint fixture: rule R8 (include-layering DAG). Lives under
// fixtures/src/cache/ so its path ranks as the cache module (layer 2);
// including sim (layer 4) is a back-edge. Exactly ONE unsuppressed
// violation plus one suppressed twin; consumed by
// tests/lint/test_lint_rules.cpp. NOT part of the main build.
#include "sim/runner.hpp"
#include "sim/hierarchy_runner.hpp"  // cnt-lint: layer-ok suppressed twin

// Near-misses that must NOT trigger:
#include "common/types.hpp"  // downward edge: cache -> common is fine
#include <vector>            // system headers are never layered

inline int fixture_uses_the_includes() { return 1; }
