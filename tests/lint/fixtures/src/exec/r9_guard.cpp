// cnt-lint fixture: rule R9 (lock discipline). Lives under
// fixtures/src/exec/ so its path is inside the rule's src/ scope.
// `count_` is annotated guarded-by(mu_); bad() reads it without holding
// the mutex (the ONE violation), audited() is the suppressed twin, and
// good() shows the lock_guard pattern the rule accepts. NOT part of the
// main build.
#include <mutex>

struct Widget {
  std::mutex mu_;
  int count_ = 0;  // cnt-lint: guarded-by(mu_)

  int bad() { return count_; }  // <- the one R9 violation

  int good() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;  // lock held: fine
  }

  int audited() { return count_; }  // cnt-lint: guard-ok suppressed twin
};
