// cnt-lint fixture: rule R6 (bare std::runtime_error in taxonomy-migrated
// subsystems). Lives under fixtures/src/common/ so its path matches the
// rule's scope. Exactly ONE unsuppressed violation plus one suppressed
// twin; consumed by tests/lint/test_lint_rules.cpp. NOT part of the main
// build.
#include <stdexcept>

void reject_input() {
  throw std::runtime_error("parse failed");  // <- the one R6 violation
}

void deliberate_plain_throw() {
  // cnt-lint: throw-ok -- suppressed twin
  throw std::runtime_error("intentionally untyped");
}

// Near-misses that must NOT trigger:
struct Error {
  explicit Error(const char*) {}
};
void taxonomy_throw() { throw Error("structured errors are the point"); }
void rethrow() { throw; }  // bare rethrow is fine
void catcher() {
  try {
    taxonomy_throw();
  } catch (const std::runtime_error&) {  // naming the type is fine
  }
}
const char* kDoc = "docs may say throw std::runtime_error( freely";
