// cnt-lint fixture: rule R10 (hot-path allocation ban). The tagged
// function reserves (the ONE violation) and push_backs (the suppressed
// twin); the untagged function below allocates freely and must not
// trigger. NOT part of the main build.
#include <vector>

// cnt-hot
inline void fill(std::vector<int>& v, int n) {
  v.reserve(16);  // <- the one R10 violation
  for (int i = 0; i < n; ++i) {
    v.push_back(i);  // cnt-lint: hot-ok suppressed twin
  }
}

// Near-misses that must NOT trigger:
inline void cold_fill(std::vector<int>& v) {
  v.reserve(32);  // not tagged cnt-hot: allocation is fine here
}

// cnt-hot
inline void raises(bool bad) {
  if (bad) throw 42;  // throw statements are exempt from the ban
}
