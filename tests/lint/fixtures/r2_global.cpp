// cnt-lint fixture: rule R2 (mutable static/global state).
// Exactly ONE unsuppressed violation plus one suppressed twin.
// NOT part of the main build.

static int g_hit_counter = 0;  // <- the one R2 violation

// cnt-lint: global-ok -- suppressed twin (registry guarded elsewhere)
static int g_registry_size = 0;

// Must NOT trigger:
static const int kLimit = 8;
static constexpr double kScale = 1.5;
inline constexpr int kInlineConst = 2;
static int pure_function() { return kLimit; }
static void also_a_function();

int consume() { return g_hit_counter + g_registry_size + pure_function(); }
