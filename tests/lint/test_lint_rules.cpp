// Fixture suite for the cnt-lint rule engine (ctest label: lint).
//
// Each rule R1-R12 has one fixture under tests/lint/fixtures/ holding
// exactly ONE unsuppressed violation plus ONE suppressed twin. The suite
// asserts (a) the violation is flagged exactly once, (b) stripping the
// `cnt-lint:` suppression markers doubles the count -- proving the
// suppression comment is load-bearing, not vacuous -- and (c) assorted
// lexer/rule edge cases on inline buffers.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "driver.hpp"

namespace cnt::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(CNT_LINT_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Disable every suppression comment in the buffer while keeping line
/// numbers and the rest of the file byte-identical. guarded-by(...) is an
/// annotation, not a suppression: it stays, so R9 still has a guard to
/// enforce after stripping.
std::string strip_suppressions(std::string content) {
  const std::string marker = "cnt-lint:";
  const std::string dummy = "cnt-nope:";
  std::size_t pos = 0;
  while ((pos = content.find(marker, pos)) != std::string::npos) {
    if (content.compare(pos + marker.size(), 12, " guarded-by(") == 0) {
      pos += marker.size();
      continue;
    }
    content.replace(pos, marker.size(), dummy);
    pos += dummy.size();
  }
  return content;
}

struct FixtureCase {
  const char* file;
  const char* rule;
};

class LintFixture : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixture, FlagsExactlyOnce) {
  const auto [file, rule] = GetParam();
  const std::string content = slurp(fixture_path(file));
  ASSERT_FALSE(content.empty());

  const auto findings = lint_buffer(file, content);
  ASSERT_EQ(findings.size(), 1u)
      << "fixture " << file << " must yield exactly one finding";
  EXPECT_EQ(findings[0].rule, rule);
  EXPECT_EQ(findings[0].path, file);
  EXPECT_GT(findings[0].line, 0u);
}

TEST_P(LintFixture, SuppressionIsLoadBearing) {
  const auto [file, rule] = GetParam();
  const auto findings =
      lint_buffer(file, strip_suppressions(slurp(fixture_path(file))));
  ASSERT_EQ(findings.size(), 2u)
      << "fixture " << file
      << " must yield exactly two findings once suppressions are stripped";
  EXPECT_EQ(findings[0].rule, rule);
  EXPECT_EQ(findings[1].rule, rule);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixture,
    ::testing::Values(FixtureCase{"r1_nondet.cpp", "R1"},
                      FixtureCase{"r2_global.cpp", "R2"},
                      FixtureCase{"r3_nodiscard.hpp", "R3"},
                      FixtureCase{"r4_narrow.cpp", "R4"},
                      FixtureCase{"r5_unordered.cpp", "R5"},
                      FixtureCase{"src/common/r6_throw.cpp", "R6"},
                      FixtureCase{"r7_ofstream.cpp", "R7"},
                      FixtureCase{"src/cache/r8_layering.cpp", "R8"},
                      FixtureCase{"src/exec/r9_guard.cpp", "R9"},
                      FixtureCase{"r10_hot.cpp", "R10"},
                      FixtureCase{"r11_result.cpp", "R11"},
                      FixtureCase{"r12_wait.cpp", "R12"}),
    [](const ::testing::TestParamInfo<FixtureCase>& param) {
      return std::string(param.param.rule);
    });

TEST(LintRuleFilter, OnlySelectedRulesRun) {
  const std::string content = slurp(fixture_path("r4_narrow.cpp"));
  EXPECT_TRUE(lint_buffer("f.cpp", content, {"R1"}).empty());
  EXPECT_EQ(lint_buffer("f.cpp", content, {"R4"}).size(), 1u);
}

TEST(LintLexer, CommentsAndStringsNeverTrigger) {
  const std::string snippet =
      "// rand() time(0) system_clock static int g;\n"
      "/* static_cast<u8>(x) random_device */\n"
      "const char* s = \"rand() static int g = 0;\";\n"
      "const char* r = R\"(time(0) unordered_map)\";\n";
  EXPECT_TRUE(lint_buffer("f.cpp", snippet).empty());
}

TEST(LintLexer, SuppressionReachesSameAndNextLineOnly) {
  const std::string two_above =
      "// cnt-lint: global-ok\n"
      "\n"
      "static int g_far = 0;\n";
  EXPECT_EQ(lint_buffer("f.cpp", two_above).size(), 1u);

  const std::string directly_above =
      "// cnt-lint: global-ok\n"
      "static int g_near = 0;\n";
  EXPECT_TRUE(lint_buffer("f.cpp", directly_above).empty());
}

TEST(LintR1, RngModuleIsExempt) {
  const std::string snippet = "int x = rand();\n";
  EXPECT_EQ(lint_buffer("src/exec/engine.cpp", snippet).size(), 1u);
  EXPECT_TRUE(lint_buffer("src/common/rng.cpp", snippet).empty());
  EXPECT_TRUE(lint_buffer("src/common/rng.hpp", snippet).empty());
}

TEST(LintR2, FunctionLocalMutableStaticIsFlagged) {
  const std::string snippet =
      "int id() {\n"
      "  static int next = 0;\n"
      "  return ++next;\n"
      "}\n";
  const auto findings = lint_buffer("f.cpp", snippet);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R2");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintR3, MultiLineDeclarationIsSeen) {
  // grep-style line tools miss the attribute when the declaration wraps;
  // the token-based rule must not.
  const std::string ok =
      "struct S {\n"
      "  [[nodiscard]] double saving(int opt,\n"
      "                              int base) const;\n"
      "};\n";
  EXPECT_TRUE(lint_buffer("f.hpp", ok).empty());
  const std::string bad =
      "struct S {\n"
      "  double saving(int opt,\n"
      "                int base) const;\n"
      "};\n";
  ASSERT_EQ(lint_buffer("f.hpp", bad).size(), 1u);
}

TEST(LintR4, CStyleAndFunctionalCastsAreBannedOutright) {
  EXPECT_EQ(lint_buffer("f.cpp", "int f(long v) { return (char)v; }\n").size(),
            1u);
  EXPECT_EQ(
      lint_buffer("f.cpp", "long g(long v) { return long(v); }\n").size(), 0u);
  const auto functional =
      lint_buffer("f.cpp", "unsigned char h(long v) { return uint8_t(v); }\n");
  ASSERT_EQ(functional.size(), 1u);
  EXPECT_EQ(functional[0].rule, "R4");
}

TEST(LintR5, UsingAliasIsTracked) {
  const std::string snippet =
      "#include <unordered_map>\n"
      "#include <iostream>\n"
      "using Histogram = std::unordered_map<int, long>;\n"
      "void dump(const Histogram& h) {\n"
      "  for (const auto& kv : h) {\n"
      "    std::cout << kv.first;\n"
      "  }\n"
      "}\n";
  const auto findings = lint_buffer("f.cpp", snippet);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LintJson, EscapesAndCounts) {
  LintReport report;
  report.files_scanned = 3;
  report.findings.push_back(
      Finding{"a \"quoted\".cpp", 7, "R1", "nondeterminism", "msg\nline"});
  std::ostringstream os;
  write_json(report, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"cnt-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\".cpp"), std::string::npos);
  EXPECT_NE(json.find("msg\\nline"), std::string::npos);
}

}  // namespace
}  // namespace cnt::lint
