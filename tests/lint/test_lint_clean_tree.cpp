// Clean-tree invariant (ctest label: lint): cnt-lint over the real
// src/, bench/ and examples/ trees must report ZERO findings. Any new
// violation either gets fixed or carries an explicit, reviewed
// `// cnt-lint: <tag>` suppression -- silent drift is not an option.
#include <gtest/gtest.h>

#include "driver.hpp"

namespace cnt::lint {
namespace {

LintReport lint_tree(std::initializer_list<const char*> subdirs) {
  LintOptions opts;
  for (const char* d : subdirs) {
    opts.paths.push_back(std::string(CNT_LINT_SOURCE_ROOT) + "/" + d);
  }
  return run_lint(opts);
}

TEST(LintCleanTree, SrcBenchExamplesHaveZeroFindings) {
  const LintReport report = lint_tree({"src", "bench", "examples"});
  EXPECT_TRUE(report.errors.empty());
  // A broken checkout would vacuously pass with 0 findings; make sure we
  // actually scanned a substantial tree.
  EXPECT_GE(report.files_scanned, 100u);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.path << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
}

TEST(LintCleanTree, TestsAndToolsHaveZeroFindings) {
  LintReport report;
  {
    LintOptions opts;
    opts.paths = {std::string(CNT_LINT_SOURCE_ROOT) + "/tests",
                  std::string(CNT_LINT_SOURCE_ROOT) + "/tools"};
    // The rule fixtures are violations by design.
    opts.excludes = {"tests/lint/fixtures"};
    report = run_lint(opts);
  }
  EXPECT_TRUE(report.errors.empty());
  EXPECT_GE(report.files_scanned, 30u);
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.path << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
}

TEST(LintCleanTree, FixtureDirectoryIsNotClean) {
  // Sanity-check the exclusion above: without it the fixtures must fire.
  LintOptions opts;
  opts.paths = {std::string(CNT_LINT_SOURCE_ROOT) + "/tests/lint/fixtures"};
  const LintReport report = run_lint(opts);
  EXPECT_EQ(report.files_scanned, 12u);
  EXPECT_EQ(report.findings.size(), 12u);
}

}  // namespace
}  // namespace cnt::lint
