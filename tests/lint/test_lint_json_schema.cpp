// Golden-schema pin for cnt-lint's machine-readable surface (ctest
// label: lint). scripts/check_all.sh and external CI parse
// --format=json output and key off rule ids, so this suite freezes the
// JSON field names, the R1..R12 catalog, and the finding sort order. A
// failure here means a consumer-visible contract changed: bump the
// schema string and update every consumer, or revert.
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver.hpp"

namespace cnt::lint {
namespace {

TEST(LintSchema, JsonFieldNamesArePinned) {
  LintReport report;
  report.files_scanned = 2;
  report.findings.push_back(
      Finding{"a.cpp", 3, "R8", "include-layering", "msg"});
  report.errors.push_back("oops");
  std::ostringstream os;
  write_json(report, os);
  const std::string json = os.str();
  for (const char* needle :
       {"\"schema\":\"cnt-lint-v1\"", "\"files_scanned\":2", "\"count\":1",
        "\"findings\":[", "\"file\":\"a.cpp\"", "\"line\":3",
        "\"rule\":\"R8\"", "\"name\":\"include-layering\"",
        "\"message\":\"msg\"", "\"errors\":[\"oops\"]"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "JSON lost pinned field " << needle << "\n"
        << json;
  }
}

TEST(LintSchema, RuleCatalogIsPinned) {
  const std::vector<RuleInfo>& catalog = rule_catalog();
  const std::vector<std::string> want = {"R1", "R2", "R3", "R4",  "R5", "R6",
                                         "R7", "R8", "R9", "R10", "R11", "R12"};
  ASSERT_EQ(catalog.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(catalog[i].id, want[i]);
    EXPECT_NE(std::string(catalog[i].name), "");
    EXPECT_NE(std::string(catalog[i].suppression), "");
    EXPECT_NE(std::string(catalog[i].summary), "");
  }
}

TEST(LintSchema, SuppressionTagsAreUnique) {
  // The audit maps tag -> rule; two rules sharing a tag would make it
  // ambiguous which finding a marker silences.
  std::vector<std::string> tags;
  for (const RuleInfo& r : rule_catalog()) tags.emplace_back(r.suppression);
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(std::adjacent_find(tags.begin(), tags.end()), tags.end());
}

TEST(LintSchema, FindingsAreSortedAndStable) {
  LintOptions opts;
  opts.paths = {std::string(CNT_LINT_FIXTURE_DIR)};
  const LintReport a = run_lint(opts);
  const LintReport b = run_lint(opts);
  ASSERT_FALSE(a.findings.empty());
  EXPECT_TRUE(std::is_sorted(a.findings.begin(), a.findings.end()));
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].path, b.findings[i].path);
    EXPECT_EQ(a.findings[i].line, b.findings[i].line);
    EXPECT_EQ(a.findings[i].rule, b.findings[i].rule);
  }
}

}  // namespace
}  // namespace cnt::lint
