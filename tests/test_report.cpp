#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

std::vector<SimResult> two_results() {
  SimConfig cfg;
  cfg.with_cmos = false;
  std::vector<SimResult> out;
  out.push_back(simulate(build_workload("stream_copy", 0.05), cfg));
  out.push_back(simulate(build_workload("zipf_kv", 0.05), cfg));
  return out;
}

TEST(Report, SavingsTableHasOneRowPerWorkloadPlusMean) {
  const auto results = two_results();
  const std::string table = savings_table(results);
  usize lines = 0;
  for (const char c : table) lines += c == '\n';
  // header + separator + 2 workloads + mean.
  EXPECT_EQ(lines, 5u);
}

TEST(Report, SavingsTableHandlesMissingPolicies) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  std::vector<SimResult> results;
  results.push_back(simulate(build_workload("stream_copy", 0.05), cfg));
  const std::string table = savings_table(results);
  // Absent policies render as '-' rather than crashing.
  EXPECT_NE(table.find("-"), std::string::npos);
}

TEST(Report, BreakdownSkipsAllZeroCategories) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const auto res = simulate(build_workload("stream_copy", 0.05), cfg);
  const std::string table = breakdown_table(res);
  // No policy in this run uses flip-aware or CMOS-only paths; every listed
  // row must have at least one nonzero column, so a category like "fifo"
  // appears only if the CNT policy actually used its FIFO.
  const bool fifo_used =
      res.find(kPolicyCnt)->ledger.get(EnergyCategory::kFifo).in_joules() >
      0.0;
  EXPECT_EQ(table.find("fifo") != std::string::npos, fifo_used);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(Report, ResultsDirHonorsEnvOverride) {
  const std::string dir = ::testing::TempDir() + "cnt_results_env_test";
  ASSERT_EQ(setenv("CNT_RESULTS_DIR", dir.c_str(), 1), 0);
  const std::string got = results_dir();
  EXPECT_EQ(got, dir);
  EXPECT_TRUE(std::filesystem::exists(dir));
  const std::string path = result_path("x.csv");
  EXPECT_EQ(path, dir + "/x.csv");
  unsetenv("CNT_RESULTS_DIR");
  std::filesystem::remove_all(dir);
}

TEST(Report, MeanSavingSupportsAlternatePolicies) {
  const auto results = two_results();
  const double vs_static = mean_saving(results, kPolicyStatic);
  const double vs_ideal = mean_saving(results, kPolicyIdeal);
  EXPECT_GE(vs_ideal, vs_static - 1e-12);  // oracle saves at least as much
}

}  // namespace
}  // namespace cnt
