// Cross-cutting coverage for non-default line sizes (32 B and 128 B):
// geometry, events, encoding partitions, policies, and golden behaviour
// must all hold when the line is not 64 bytes.
#include <gtest/gtest.h>

#include <map>

#include "cache/cache.hpp"
#include "cnt/baseline_policies.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

CacheConfig cfg_line(usize line_bytes) {
  CacheConfig c;
  c.size_bytes = 8192;
  c.ways = 4;
  c.line_bytes = line_bytes;
  return c;
}

class LineSizes : public ::testing::TestWithParam<usize> {};

TEST_P(LineSizes, GeometryAndValidation) {
  const auto cfg = cfg_line(GetParam());
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.sets() * cfg.ways * cfg.line_bytes, cfg.size_bytes);
  EXPECT_EQ(cfg.offset_of(cfg.line_bytes - 1), cfg.line_bytes - 1);
}

TEST_P(LineSizes, GoldenFunctionalModel) {
  const auto cfg = cfg_line(GetParam());
  MainMemory mem;
  Cache cache(cfg, mem);
  std::map<u64, u64> golden;
  Rng rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    const u64 addr = rng.uniform(4096) * 8;
    if (rng.chance(0.5)) {
      const u64 v = rng.next();
      cache.access(MemAccess::write(addr, v));
      golden[addr] = v;
    } else {
      cache.access(MemAccess::read(addr));
    }
  }
  cache.flush();
  for (const auto& [addr, v] : golden) {
    ASSERT_EQ(mem.peek_word(addr, 8), v);
  }
}

TEST_P(LineSizes, CntPolicyRunsAndSaves) {
  const auto cfg = cfg_line(GetParam());
  MainMemory mem;
  Cache cache(cfg, mem);
  CntConfig cnt_cfg;
  // K must divide the line into byte-aligned partitions; 4 works for all.
  cnt_cfg.partitions = 4;
  CntPolicy cnt("cnt", TechParams::cnfet(), geometry_of(cfg), cnt_cfg);
  PlainPolicy plain("p", TechParams::cnfet(), geometry_of(cfg));
  cache.add_sink(cnt);
  cache.add_sink(plain);

  // Sparse *resident* data (half the cache), read-hammered: must save at
  // any line size once the window predictor and fill choice have settled.
  Rng rng(7);
  const usize resident_lines = cfg.size_bytes / cfg.line_bytes / 2;
  for (int i = 0; i < 6000; ++i) {
    cache.access(MemAccess::read(rng.uniform(resident_lines) * GetParam()));
  }
  EXPECT_LT(cnt.ledger().total().in_joules(),
            0.85 * plain.ledger().total().in_joules())
      << "line " << GetParam();
}

TEST_P(LineSizes, EventSpansMatchLineSize) {
  const auto cfg = cfg_line(GetParam());
  MainMemory mem;
  Cache cache(cfg, mem);
  struct Check final : AccessSink {
    usize expected;
    void on_access(const AccessEvent& ev) override {
      EXPECT_EQ(ev.line_after.size(), expected);
    }
  } check;
  check.expected = GetParam();
  cache.add_sink(check);
  cache.access(MemAccess::read(0x100));
  cache.access(MemAccess::read(0x100));
}

TEST_P(LineSizes, SectorMaskWidthFollowsLine) {
  auto cfg = cfg_line(GetParam());
  cfg.sector_writeback = true;
  MainMemory mem;
  Cache cache(cfg, mem);
  struct Probe final : AccessSink {
    u64 mask = 0;
    void on_access(const AccessEvent& ev) override {
      if (ev.evicted_dirty) mask = ev.evicted_dirty_words;
    }
  } probe;
  cache.add_sink(probe);
  // Dirty the last word of line 0, then evict.
  cache.access(MemAccess::write(GetParam() - 8, 1));
  const u64 stride = cfg.sets() * cfg.line_bytes;
  for (u64 i = 1; i <= cfg.ways; ++i) {
    cache.access(MemAccess::read(i * stride));
  }
  EXPECT_EQ(probe.mask, 1ULL << (GetParam() / 8 - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LineSizes, ::testing::Values(32, 64, 128));

}  // namespace
}  // namespace cnt
