// Sectored-writeback (dirty-word mask) tests.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cnt/baseline_policies.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

using C = EnergyCategory;

CacheConfig cfg_sw(bool on) {
  CacheConfig c;
  c.size_bytes = 1024;  // 4 sets x 4 ways
  c.ways = 4;
  c.line_bytes = 64;
  c.sector_writeback = on;
  return c;
}

struct MaskProbe final : AccessSink {
  u64 last_mask = 0;
  bool saw_dirty_eviction = false;
  void on_access(const AccessEvent& ev) override {
    if (ev.evicted_valid && ev.evicted_dirty) {
      last_mask = ev.evicted_dirty_words;
      saw_dirty_eviction = true;
    }
  }
};

void evict_line0(Cache& cache) {
  const u64 stride = cache.config().sets() * cache.config().line_bytes;
  for (u64 i = 1; i <= cache.config().ways; ++i) {
    cache.access(MemAccess::read(i * stride));
  }
}

TEST(SectorWriteback, MaskTracksWrittenWords) {
  MainMemory mem;
  Cache cache(cfg_sw(true), mem);
  MaskProbe probe;
  cache.add_sink(probe);

  cache.access(MemAccess::write(0x00, 1));       // word 0
  cache.access(MemAccess::write(0x18, 2));       // word 3
  cache.access(MemAccess::write(0x1C, 3, 4));    // still word 3
  cache.access(MemAccess::write(0x38, 4, 1));    // word 7
  evict_line0(cache);
  ASSERT_TRUE(probe.saw_dirty_eviction);
  EXPECT_EQ(probe.last_mask, (1ULL << 0) | (1ULL << 3) | (1ULL << 7));
}

TEST(SectorWriteback, DisabledMaskCoversWholeLine) {
  MainMemory mem;
  Cache cache(cfg_sw(false), mem);
  MaskProbe probe;
  cache.add_sink(probe);
  cache.access(MemAccess::write(0x00, 1));
  evict_line0(cache);
  ASSERT_TRUE(probe.saw_dirty_eviction);
  EXPECT_EQ(probe.last_mask, 0xFFu);  // 8 words of a 64 B line
}

TEST(SectorWriteback, CleanEvictionHasEmptyMask) {
  MainMemory mem;
  Cache cache(cfg_sw(true), mem);
  struct Probe final : AccessSink {
    void on_access(const AccessEvent& ev) override {
      if (ev.evicted_valid) {
        EXPECT_FALSE(ev.evicted_dirty);
        EXPECT_EQ(ev.evicted_dirty_words, 0u);
      }
    }
  } probe;
  cache.add_sink(probe);
  cache.access(MemAccess::read(0x0));
  evict_line0(cache);
}

TEST(SectorWriteback, MaskResetsAcrossRefill) {
  MainMemory mem;
  Cache cache(cfg_sw(true), mem);
  MaskProbe probe;
  cache.add_sink(probe);
  cache.access(MemAccess::write(0x00, 1));
  evict_line0(cache);
  EXPECT_EQ(probe.last_mask, 1u);
  // Re-fill the line and dirty a different word only.
  probe.saw_dirty_eviction = false;
  cache.access(MemAccess::write(0x20, 9));  // word 4 of line 0
  evict_line0(cache);
  ASSERT_TRUE(probe.saw_dirty_eviction);
  EXPECT_EQ(probe.last_mask, 1ULL << 4);
}

TEST(SectorWriteback, ReducesWritebackReadEnergy) {
  Energy with{}, without{};
  for (const bool on : {true, false}) {
    MainMemory mem;
    Cache cache(cfg_sw(on), mem);
    PlainPolicy p("p", TechParams::cnfet(), geometry_of(cfg_sw(on)));
    cache.add_sink(p);
    cache.access(MemAccess::write(0x00, 1));  // one dirty word
    evict_line0(cache);
    (on ? with : without) = p.ledger().get(C::kDataRead);
  }
  // One word read out instead of eight.
  EXPECT_NEAR(with.in_joules(), without.in_joules() / 8.0,
              0.01 * without.in_joules());
}

TEST(SectorWriteback, FunctionalContentsUnchanged) {
  MainMemory mem_a, mem_b;
  Cache with(cfg_sw(true), mem_a);
  Cache without(cfg_sw(false), mem_b);
  Rng rng(23);
  for (int i = 0; i < 8000; ++i) {
    const u64 addr = rng.uniform(512) * 8;
    if (rng.chance(0.5)) {
      const u64 v = rng.next();
      with.access(MemAccess::write(addr, v));
      without.access(MemAccess::write(addr, v));
    } else {
      with.access(MemAccess::read(addr));
      without.access(MemAccess::read(addr));
    }
  }
  with.flush();
  without.flush();
  for (u64 a = 0; a < 4096; a += 8) {
    ASSERT_EQ(mem_a.peek_word(a, 8), mem_b.peek_word(a, 8));
  }
}

TEST(SectorWriteback, FullLineWriteMarksAllWords) {
  MainMemory mem;
  auto l2_cfg = cfg_sw(true);
  Cache l2(l2_cfg, mem);
  MaskProbe probe;
  l2.add_sink(probe);
  std::vector<u8> line(64, 0xAA);
  l2.write_line(0x0, line);  // full-line writeback from an upper level
  evict_line0(l2);
  ASSERT_TRUE(probe.saw_dirty_eviction);
  EXPECT_EQ(probe.last_mask, 0xFFu);
}

}  // namespace
}  // namespace cnt
