#include "cache/replacement.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cnt {
namespace {

TEST(Lru, EvictsLeastRecentlyUsed) {
  auto p = make_replacement(ReplKind::kLru, 4, 4);
  for (u32 w = 0; w < 4; ++w) p->on_fill(0, w);
  p->on_access(0, 0);  // 1 is now LRU
  EXPECT_EQ(p->victim(0), 1u);
  p->on_access(0, 1);
  EXPECT_EQ(p->victim(0), 2u);
}

TEST(Lru, SetsAreIndependent) {
  auto p = make_replacement(ReplKind::kLru, 2, 2);
  p->on_fill(0, 0);
  p->on_fill(1, 1);
  p->on_fill(0, 1);
  p->on_fill(1, 0);
  EXPECT_EQ(p->victim(0), 0u);
  EXPECT_EQ(p->victim(1), 1u);
}

TEST(Fifo, IgnoresAccesses) {
  auto p = make_replacement(ReplKind::kFifo, 1, 3);
  p->on_fill(0, 0);
  p->on_fill(0, 1);
  p->on_fill(0, 2);
  p->on_access(0, 0);  // must not refresh way 0
  EXPECT_EQ(p->victim(0), 0u);
  p->on_fill(0, 0);
  EXPECT_EQ(p->victim(0), 1u);
}

TEST(Random, ReturnsValidWays) {
  auto p = make_replacement(ReplKind::kRandom, 1, 4, 42);
  std::set<u32> seen;
  for (int i = 0; i < 200; ++i) {
    const u32 v = p->victim(0);
    ASSERT_LT(v, 4u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all ways eventually chosen
}

TEST(Random, DeterministicPerSeed) {
  auto a = make_replacement(ReplKind::kRandom, 1, 8, 7);
  auto b = make_replacement(ReplKind::kRandom, 1, 8, 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a->victim(0), b->victim(0));
}

TEST(TreePlru, VictimAvoidsRecentlyTouched) {
  auto p = make_replacement(ReplKind::kTreePlru, 1, 4);
  // Touch everything, then re-touch 0..2: victim must be 3? Not guaranteed
  // by PLRU in general, but the victim must never be the most recently
  // touched way.
  for (u32 w = 0; w < 4; ++w) p->on_fill(0, w);
  for (int round = 0; round < 20; ++round) {
    const u32 touched = static_cast<u32>(round % 4);
    p->on_access(0, touched);
    EXPECT_NE(p->victim(0), touched);
  }
}

TEST(TreePlru, FullCycleCoversAllWays) {
  auto p = make_replacement(ReplKind::kTreePlru, 1, 8);
  std::set<u32> victims;
  for (int i = 0; i < 8; ++i) {
    const u32 v = p->victim(0);
    victims.insert(v);
    p->on_fill(0, v);  // filling the victim points the tree away from it
  }
  EXPECT_EQ(victims.size(), 8u);
}

TEST(TreePlru, SingleWay) {
  auto p = make_replacement(ReplKind::kTreePlru, 2, 1);
  p->on_fill(0, 0);
  EXPECT_EQ(p->victim(0), 0u);
}

TEST(Factory, NamesMatchKinds) {
  EXPECT_STREQ(make_replacement(ReplKind::kLru, 1, 2)->name(), "LRU");
  EXPECT_STREQ(make_replacement(ReplKind::kFifo, 1, 2)->name(), "FIFO");
  EXPECT_STREQ(make_replacement(ReplKind::kRandom, 1, 2)->name(), "random");
  EXPECT_STREQ(make_replacement(ReplKind::kTreePlru, 1, 2)->name(),
               "tree-PLRU");
}

TEST(Lru, SingleWay) {
  auto p = make_replacement(ReplKind::kLru, 4, 1);
  p->on_fill(3, 0);
  EXPECT_EQ(p->victim(3), 0u);
}

}  // namespace
}  // namespace cnt
