#include "sim/analysis.hpp"

#include <gtest/gtest.h>

#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

CacheConfig small_cfg() {
  CacheConfig c;
  c.size_bytes = 1024;  // 4 sets x 4 ways
  c.ways = 4;
  c.line_bytes = 64;
  return c;
}

Workload line_hammer(usize lines, usize hits_each) {
  Workload w;
  w.name = "hammer";
  for (usize l = 0; l < lines; ++l) {
    for (usize i = 0; i < hits_each; ++i) {
      w.trace.push(MemAccess::read(l * 64));
    }
  }
  return w;
}

TEST(Residency, SingleTenureCountsAllAccesses) {
  const auto rs = analyze_residency(line_hammer(1, 20), small_cfg(), 15);
  EXPECT_EQ(rs.residencies, 1u);
  EXPECT_EQ(rs.accesses, 20u);
  EXPECT_DOUBLE_EQ(rs.per_residency.mean(), 20.0);
  EXPECT_DOUBLE_EQ(rs.long_tenure_fraction, 1.0);
  EXPECT_DOUBLE_EQ(rs.traffic_in_long_tenures, 1.0);
}

TEST(Residency, ShortTenuresDetected) {
  const auto rs = analyze_residency(line_hammer(4, 5), small_cfg(), 15);
  EXPECT_EQ(rs.residencies, 4u);
  EXPECT_DOUBLE_EQ(rs.per_residency.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.long_tenure_fraction, 0.0);
  EXPECT_DOUBLE_EQ(rs.traffic_in_long_tenures, 0.0);
}

TEST(Residency, EvictionClosesTenure) {
  // 5 lines map conflict-free into 4 sets x 4 ways? With 4 sets, lines
  // 0..4 of stride 64 map to sets 0,1,2,3,0 -- all fit (4 ways). Use a
  // stride of sets*64 to force conflicts in set 0 instead.
  Workload w;
  const u64 stride = small_cfg().sets() * 64;
  // Fill set 0's four ways + once more: evicts the LRU tenure.
  for (u64 i = 0; i < 5; ++i) {
    for (int r = 0; r < 3; ++r) w.trace.push(MemAccess::read(i * stride));
  }
  const auto rs = analyze_residency(w, small_cfg(), 15);
  EXPECT_EQ(rs.residencies, 5u);
  EXPECT_DOUBLE_EQ(rs.per_residency.mean(), 3.0);
}

TEST(Residency, MixedTenureTrafficFractions) {
  // One hot line (30 accesses) + 10 cold streams (2 each): traffic share
  // of >= W tenures is 30 / 50.
  Workload w;
  for (int i = 0; i < 30; ++i) w.trace.push(MemAccess::read(0x0));
  for (u64 l = 1; l <= 10; ++l) {
    w.trace.push(MemAccess::read(l * 64));
    w.trace.push(MemAccess::read(l * 64 + 8));
  }
  const auto rs = analyze_residency(w, small_cfg(), 15);
  EXPECT_EQ(rs.accesses, 50u);
  EXPECT_NEAR(rs.traffic_in_long_tenures, 30.0 / 50.0, 1e-12);
  EXPECT_NEAR(rs.long_tenure_fraction, 1.0 / 11.0, 1e-12);
}

TEST(Residency, WindowParameterMatters) {
  const Workload w = line_hammer(1, 10);
  EXPECT_DOUBLE_EQ(analyze_residency(w, small_cfg(), 5).long_tenure_fraction,
                   1.0);
  EXPECT_DOUBLE_EQ(
      analyze_residency(w, small_cfg(), 15).long_tenure_fraction, 0.0);
}

TEST(Residency, SuiteWorkloadsSpanTheSpectrum) {
  CacheConfig cfg;  // default 32K L1D
  const auto streaming =
      analyze_residency(build_workload("stream_copy", 0.1), cfg, 15);
  const auto hot =
      analyze_residency(build_workload("zipf_kv", 0.3), cfg, 15);
  // Streaming: most traffic in short tenures; zipf: the hot-line share is
  // far larger (more so as the trace lengthens and hot tenures extend).
  EXPECT_LT(streaming.traffic_in_long_tenures, 0.2);
  EXPECT_GT(hot.traffic_in_long_tenures, 0.4);
  EXPECT_GT(hot.traffic_in_long_tenures,
            streaming.traffic_in_long_tenures + 0.25);
}

}  // namespace
}  // namespace cnt
