// Ledger byte-identity wall for the data-oriented hot path.
//
// The cache core, the encoding kernels, and the replay loop are rewritten
// for speed (docs/performance.md); the contract of every such rewrite is
// that it changes *throughput only*, never results. These tests pin the
// full JSON rendering of representative runs -- per-policy, per-category
// joules with charge counts -- against golden fixtures captured from the
// pre-refactor implementation. A single double that rounds differently,
// one reordered floating-point addition, or a changed charge sequence
// shows up as a byte diff here.
//
// Scenarios cover the three hot-path regimes:
//   * suite_stream_copy / suite_zipf_kv: in-RAM default-suite workloads
//     (AoS->SoA cache metadata, word-packed encode/popcount kernels),
//   * srv_stream: a srv_* server-traffic trace replayed from a chunked
//     on-disk .trs file (batched TraceSource pull loop),
//   * fault_secded: a fault campaign with SECDED protection (the fault
//     hook rides the same array paths the refactor touched).
//
// Regenerating fixtures is a deliberate act: run with CNT_UPDATE_GOLDEN=1
// and commit the diff with an explanation of why results were allowed to
// change. The variable is read once per process, so a stray environment
// cannot silently re-baseline a CI run.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "sim/stats_dump.hpp"
#include "trace/gen/server_traffic.hpp"
#include "trace/stream/stream_reader.hpp"
#include "trace/stream/stream_writer.hpp"
#include "trace/stream/trace_source.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

std::string golden_dir() { return CNT_GOLDEN_DIR; }

// Render a result exactly the way the perf bench fingerprints ledgers:
// full dump_json with the workload label normalized (streamed runs are
// named after their temp file path, which must not leak into the bytes).
std::string render(SimResult r) {
  r.workload = "golden";
  std::ostringstream os;
  dump_json(r, os);
  os << '\n';
  return os.str();
}

void check_against_golden(const std::string& name, const std::string& got) {
  const std::string path = golden_dir() + "/" + name + ".json";
  if (std::getenv("CNT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);  // cnt-lint: io-ok regenerating a golden file
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "golden fixture regenerated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "golden fixture missing: " << path
      << " (regenerate deliberately with CNT_UPDATE_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  // EXPECT_EQ on multi-KB strings prints an unreadable blob; compare
  // byte counts first, then the contents.
  EXPECT_EQ(want.str().size(), got.size()) << name << ": size differs";
  EXPECT_TRUE(want.str() == got)
      << name << ": rendered ledger diverged from the golden fixture";
}

SimConfig small_config() {
  SimConfig cfg;  // default 32K/4w L1D, all policies on
  return cfg;
}

TEST(GoldenLedgers, SuiteStreamCopy) {
  const Workload w = build_workload("stream_copy", /*scale=*/0.25);
  check_against_golden("suite_stream_copy", render(simulate(w, small_config())));
}

TEST(GoldenLedgers, SuiteZipfKv) {
  const Workload w = build_workload("zipf_kv", /*scale=*/0.1);
  check_against_golden("suite_zipf_kv", render(simulate(w, small_config())));
}

TEST(GoldenLedgers, SrvStreamedReplay) {
  // A small srv_-style server-traffic trace, written to disk in the
  // chunked CNTTRS format and replayed through the batched streaming
  // path -- the exact loop bench_perf_stream_replay times.
  gen::ServerTrafficParams p;
  p.records = usize{1} << 14;
  p.ops = 30000;
  const std::string path =
      testing::TempDir() + "/golden_srv_stream.trs";
  {
    stream::StreamTraceWriter writer(path);
    (void)gen::generate_server_traffic(p, writer);
    writer.finish();
  }
  stream::StreamTraceSource source(path);
  const SimResult r = simulate(source, {}, small_config());
  (void)std::remove(path.c_str());
  check_against_golden("srv_stream", render(r));
}

TEST(GoldenLedgers, FaultSecded) {
  SimConfig cfg = small_config();
  cfg.fault.stuck_per_mbit = 40.0;
  cfg.fault.transient_per_read = 1e-7;
  cfg.fault.protection = ProtectionScheme::kSecded;
  const Workload w = build_workload("zipf_kv", /*scale=*/0.1);
  check_against_golden("fault_secded", render(simulate(w, cfg)));
}

}  // namespace
}  // namespace cnt
