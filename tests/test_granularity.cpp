// Write-accounting granularity: word-granular stores must charge exactly
// the accessed word's stored bits; the line model must reproduce the
// paper's whole-line charging; and the predictor's write weight must keep
// table decisions equivalent to the direct energy comparison.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cnt/baseline_policies.hpp"
#include "cnt/cnt_policy.hpp"
#include "cnt/threshold.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

using C = EnergyCategory;

CacheConfig cfg_small() {
  CacheConfig c;
  c.size_bytes = 4096;
  c.ways = 4;
  c.line_bytes = 64;
  return c;
}

TEST(Granularity, PlainWordWriteChargesWordOnly) {
  MainMemory mem;
  Cache cache(cfg_small(), mem);
  PlainPolicy p("p", TechParams::cnfet(), geometry_of(cfg_small()),
                WriteGranularity::kWord);
  cache.add_sink(p);
  cache.access(MemAccess::write(0x100, 0, 8));  // miss+fill
  const Energy before = p.ledger().get(C::kDataWrite);
  cache.access(MemAccess::write(0x100, 0xFFFFFFFFFFFFFFFFULL, 8));  // hit
  const Energy cost = p.ledger().get(C::kDataWrite) - before;
  // 64 one-bits written.
  const Energy expect = 64.0 * TechParams::cnfet().cell.wr1;
  EXPECT_NEAR(cost.in_joules(), expect.in_joules(), 1e-24);
}

TEST(Granularity, PlainLineWriteChargesWholeLine) {
  MainMemory mem;
  Cache cache(cfg_small(), mem);
  PlainPolicy p("p", TechParams::cnfet(), geometry_of(cfg_small()),
                WriteGranularity::kLine);
  cache.add_sink(p);
  cache.access(MemAccess::write(0x100, 0, 8));
  const Energy before = p.ledger().get(C::kDataWrite);
  cache.access(MemAccess::write(0x100, 0xFFFFFFFFFFFFFFFFULL, 8));
  const Energy cost = p.ledger().get(C::kDataWrite) - before;
  // 64 ones + 448 zeros written (the paper's L-bit model).
  const Energy expect = 64.0 * TechParams::cnfet().cell.wr1 +
                        448.0 * TechParams::cnfet().cell.wr0;
  EXPECT_NEAR(cost.in_joules(), expect.in_joules(), 1e-24);
}

TEST(Granularity, SubWordSizesChargeProportionally) {
  MainMemory mem;
  Cache cache(cfg_small(), mem);
  PlainPolicy p("p", TechParams::cnfet(), geometry_of(cfg_small()),
                WriteGranularity::kWord);
  cache.add_sink(p);
  cache.access(MemAccess::read(0x200));  // fill
  const Energy before = p.ledger().get(C::kDataWrite);
  cache.access(MemAccess::write(0x200, 0xFF, 1));  // 1-byte store of ones
  const Energy cost = p.ledger().get(C::kDataWrite) - before;
  EXPECT_NEAR(cost.in_joules(),
              (8.0 * TechParams::cnfet().cell.wr1).in_joules(), 1e-24);
}

TEST(Granularity, WordNeverCostsMoreThanLineAcrossPolicies) {
  for (int policy = 0; policy < 3; ++policy) {
    MainMemory mem;
    Cache cache(cfg_small(), mem);
    const auto geom = geometry_of(cfg_small());
    const auto tech = TechParams::cnfet();
    std::unique_ptr<EnergyPolicyBase> word, line;
    CntConfig cw, cl;
    cl.write_granularity = WriteGranularity::kLine;
    switch (policy) {
      case 0:
        word = std::make_unique<PlainPolicy>("w", tech, geom,
                                             WriteGranularity::kWord);
        line = std::make_unique<PlainPolicy>("l", tech, geom,
                                             WriteGranularity::kLine);
        break;
      case 1:
        word = std::make_unique<StaticInvertPolicy>("w", tech, geom,
                                                    WriteGranularity::kWord);
        line = std::make_unique<StaticInvertPolicy>("l", tech, geom,
                                                    WriteGranularity::kLine);
        break;
      default:
        word = std::make_unique<IdealPolicy>("w", tech, geom, 8,
                                             WriteGranularity::kWord);
        line = std::make_unique<IdealPolicy>("l", tech, geom, 8,
                                             WriteGranularity::kLine);
        break;
    }
    cache.add_sink(*word);
    cache.add_sink(*line);
    Rng rng(99u + static_cast<u64>(policy));
    for (int i = 0; i < 3000; ++i) {
      const u64 addr = rng.uniform(256) * 8;
      if (rng.chance(0.5)) {
        cache.access(MemAccess::write(addr, rng.next()));
      } else {
        cache.access(MemAccess::read(addr));
      }
    }
    EXPECT_LE(word->ledger().get(C::kDataWrite).in_joules(),
              line->ledger().get(C::kDataWrite).in_joules() + 1e-30)
        << "policy " << policy;
    // Reads are line-wide in both models.
    EXPECT_DOUBLE_EQ(word->ledger().get(C::kDataRead).in_joules(),
                     line->ledger().get(C::kDataRead).in_joules())
        << "policy " << policy;
  }
}

TEST(Granularity, ThresholdWriteWeightKeepsTableExact) {
  // The Eq. 6 table with a write weight must still match the direct
  // comparison for every (wr_num, n1).
  const auto cell = TechParams::cnfet().cell;
  for (const double weight : {0.125, 0.5, 1.0}) {
    const ThresholdTable t(cell, 15, 64, 0.0, weight);
    for (usize wr = 0; wr <= 15; ++wr) {
      for (usize n1 = 0; n1 <= 64; ++n1) {
        const double profit = (t.window_energy(wr, n1) -
                               t.window_energy_switched(wr, n1) -
                               t.encode_cost(n1))
                                  .in_joules();
        EXPECT_EQ(t.should_switch(wr, n1), profit > 0.0)
            << "weight=" << weight << " wr=" << wr << " n1=" << n1;
      }
    }
  }
}

TEST(Granularity, WriteWeightShiftsClassification) {
  // With a small write weight, even write-heavy windows are read-dominated
  // in energy terms.
  const auto cell = TechParams::cnfet().cell;
  const ThresholdTable unweighted(cell, 15, 64, 0.0, 1.0);
  const ThresholdTable weighted(cell, 15, 64, 0.0, 0.125);
  EXPECT_TRUE(unweighted.is_write_intensive(10));
  EXPECT_FALSE(weighted.is_write_intensive(10));
  // All-writes windows stay write-intensive under any positive weight.
  EXPECT_TRUE(weighted.is_write_intensive(15));
}

TEST(Granularity, CntPolicyWordChargesAccessedWordInStoredEncoding) {
  MainMemory mem;
  Cache cache(cfg_small(), mem);
  CntConfig cfg;
  cfg.fill_policy = FillDirectionPolicy::kReadOptimized;  // invert zeros
  CntPolicy p("cnt", TechParams::cnfet(), geometry_of(cfg_small()), cfg);
  cache.add_sink(p);
  cache.access(MemAccess::read(0x300));  // zero line -> stored inverted
  const Energy before = p.ledger().get(C::kDataWrite);
  // Writing logical zeros into an inverted partition stores 64 ones.
  cache.access(MemAccess::write(0x300, 0, 8));
  const Energy cost = p.ledger().get(C::kDataWrite) - before;
  EXPECT_NEAR(cost.in_joules(),
              (64.0 * TechParams::cnfet().cell.wr1).in_joules(), 1e-24);
}

}  // namespace
}  // namespace cnt
