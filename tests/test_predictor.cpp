#include "cnt/predictor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace cnt {
namespace {

const BitEnergies kCnfet = TechParams::cnfet().cell;

Predictor make_predictor(usize window = 15, usize k = 8) {
  return Predictor(kCnfet, PartitionScheme(64, k), window);
}

TEST(Predictor, HistoryBitsMatchPaper) {
  // W=15: two 4-bit counters -> 8 history bits ("2*log2(W)").
  EXPECT_EQ(make_predictor(15).history_bits(), 8u);
  EXPECT_EQ(make_predictor(16).history_bits(), 8u);  // counts 0..15
  EXPECT_EQ(make_predictor(17).history_bits(), 10u);
}

TEST(Predictor, NoDecisionBeforeWindowCompletes) {
  const auto p = make_predictor(15);
  LineState st;
  std::vector<u8> line(64, 0);
  for (int i = 0; i < 14; ++i) {
    const auto d = p.on_access(st, false, line);
    EXPECT_FALSE(d.window_completed);
  }
  EXPECT_EQ(st.hist.a_num, 14);
  const auto d = p.on_access(st, false, line);
  EXPECT_TRUE(d.window_completed);
  EXPECT_EQ(st.hist.a_num, 0);  // counters reset at the boundary
  EXPECT_EQ(st.hist.wr_num, 0);
}

TEST(Predictor, CountsWritesSeparately) {
  const auto p = make_predictor(10);
  LineState st;
  std::vector<u8> line(64, 0);
  for (int i = 0; i < 6; ++i) (void)p.on_access(st, false, line);
  for (int i = 0; i < 3; ++i) (void)p.on_access(st, true, line);
  EXPECT_EQ(st.hist.a_num, 9);
  EXPECT_EQ(st.hist.wr_num, 3);
}

TEST(Predictor, ReadOnlyZeroLineFlipsAllPartitions) {
  // All-zero stored data + read-only window: every partition should invert
  // (stored '1's are cheap to read).
  const auto p = make_predictor(15, 8);
  LineState st;
  std::vector<u8> line(64, 0);
  PredictorDecision last;
  for (int i = 0; i < 15; ++i) last = p.on_access(st, false, line);
  ASSERT_TRUE(last.window_completed);
  EXPECT_FALSE(last.write_intensive);
  EXPECT_TRUE(last.switch_requested);
  EXPECT_EQ(last.new_directions, 0xFFu);
  EXPECT_EQ(last.partitions_flipped, 8u);
}

TEST(Predictor, WriteOnlyZeroLineKeepsEncoding) {
  // All-zero data is already optimal for writes (wr0 is cheap).
  const auto p = make_predictor(15, 8);
  LineState st;
  std::vector<u8> line(64, 0);
  PredictorDecision last;
  for (int i = 0; i < 15; ++i) last = p.on_access(st, true, line);
  ASSERT_TRUE(last.window_completed);
  EXPECT_TRUE(last.write_intensive);
  EXPECT_FALSE(last.switch_requested);
}

TEST(Predictor, RespectsExistingDirections) {
  // A line already stored inverted (directions all-ones) with logical
  // all-zero data holds stored all-ones -- optimal for reads, so a
  // read-only window requests nothing.
  const auto p = make_predictor(15, 8);
  LineState st;
  st.directions = 0xFF;
  std::vector<u8> line(64, 0);
  PredictorDecision last;
  for (int i = 0; i < 15; ++i) last = p.on_access(st, false, line);
  ASSERT_TRUE(last.window_completed);
  EXPECT_FALSE(last.switch_requested);
  EXPECT_EQ(last.new_directions, 0xFFu);
}

TEST(Predictor, MixedLineFlipsOnlyPoorPartitions) {
  // Partition 0 all-ones, partitions 1..7 all-zero, read-only window:
  // only the zero partitions flip (partition 0 already reads cheap).
  const auto p = make_predictor(15, 8);
  LineState st;
  std::vector<u8> line(64, 0);
  for (usize i = 0; i < 8; ++i) line[i] = 0xFF;
  PredictorDecision last;
  for (int i = 0; i < 15; ++i) last = p.on_access(st, false, line);
  ASSERT_TRUE(last.window_completed);
  EXPECT_EQ(last.new_directions, 0xFEu);
  EXPECT_EQ(last.partitions_flipped, 7u);
}

TEST(Predictor, PartitionedBeatsWholeLineOnMixedData) {
  // Fig. 2's argument: with half the line dense and half sparse, whole-line
  // encoding must make a compromise; partitioned encoding flips exactly the
  // poor half. Count requested flips at K=1 vs K=8.
  std::vector<u8> line(64, 0);
  for (usize i = 32; i < 64; ++i) line[i] = 0xFF;  // upper half dense

  LineState st1, st8;
  const auto p1 = make_predictor(15, 1);
  const auto p8 = make_predictor(15, 8);
  PredictorDecision d1, d8;
  for (int i = 0; i < 15; ++i) {
    d1 = p1.on_access(st1, false, line);
    d8 = p8.on_access(st8, false, line);
  }
  // Whole-line: the line has exactly half ones; no switch is profitable.
  EXPECT_FALSE(d1.switch_requested);
  // Partitioned: the four sparse partitions flip.
  EXPECT_TRUE(d8.switch_requested);
  EXPECT_EQ(d8.new_directions, 0x0Fu);
}

TEST(Predictor, WindowOfOneFiresEveryAccess) {
  const auto p = make_predictor(1, 8);
  LineState st;
  std::vector<u8> line(64, 0);
  for (int i = 0; i < 5; ++i) {
    const auto d = p.on_access(st, false, line);
    EXPECT_TRUE(d.window_completed);
  }
}

TEST(Predictor, DeterministicAcrossIdenticalRuns) {
  const auto p = make_predictor(15, 8);
  Rng rng(5);
  std::vector<u8> line(64);
  for (auto& b : line) b = rng.next_byte();

  LineState a, b2;
  for (int i = 0; i < 45; ++i) {
    const bool w = (i % 3) == 0;
    const auto da = p.on_access(a, w, line);
    const auto db = p.on_access(b2, w, line);
    EXPECT_EQ(da.window_completed, db.window_completed);
    EXPECT_EQ(da.new_directions, db.new_directions);
  }
}

}  // namespace
}  // namespace cnt
