#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

namespace cnt {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter j(os, 0);
  body(j);
  return os.str();
}

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& j) { j.begin_array().end_array(); }),
            "[]");
}

TEST(Json, ScalarValues) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.value("hi"); }), "\"hi\"");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(u64{42}); }), "42");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(i64{-7}); }), "-7");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(true); }), "true");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(false); }), "false");
  EXPECT_EQ(compact([](JsonWriter& j) { j.null(); }), "null");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(2.5); }), "2.5");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(std::nan("")); }), "null");
  EXPECT_EQ(compact([](JsonWriter& j) {
              j.value(std::numeric_limits<double>::infinity());
            }),
            "null");
}

TEST(Json, ObjectWithKeys) {
  const std::string s = compact([](JsonWriter& j) {
    j.begin_object().kv("a", u64{1}).kv("b", "x").end_object();
  });
  EXPECT_EQ(s, "{\"a\":1,\"b\":\"x\"}");
}

TEST(Json, NestedContainers) {
  const std::string s = compact([](JsonWriter& j) {
    j.begin_object();
    j.key("list");
    j.begin_array().value(u64{1}).value(u64{2}).end_array();
    j.key("obj");
    j.begin_object().kv("k", true).end_object();
    j.end_object();
  });
  EXPECT_EQ(s, "{\"list\":[1,2],\"obj\":{\"k\":true}}");
}

TEST(Json, StringEscaping) {
  const std::string s = compact([](JsonWriter& j) {
    j.value("quote\" backslash\\ newline\n tab\t ctrl\x01");
  });
  EXPECT_EQ(s, "\"quote\\\" backslash\\\\ newline\\n tab\\t ctrl\\u0001\"");
}

TEST(Json, DoubleRoundTripPrecision) {
  const std::string s =
      compact([](JsonWriter& j) { j.value(0.1234567890123456789); });
  EXPECT_NEAR(std::stod(s), 0.1234567890123456789, 1e-18);
}

TEST(Json, PrettyPrintIndents) {
  std::ostringstream os;
  {
    JsonWriter j(os, 2);
    j.begin_object().kv("a", u64{1}).end_object();
  }
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, DoneTracksCompletion) {
  std::ostringstream os;
  JsonWriter j(os, 0);
  EXPECT_FALSE(j.done());
  j.begin_object();
  EXPECT_FALSE(j.done());
  j.end_object();
  EXPECT_TRUE(j.done());
}

TEST(Json, ArrayOfObjects) {
  const std::string s = compact([](JsonWriter& j) {
    j.begin_array();
    j.begin_object().kv("i", u64{0}).end_object();
    j.begin_object().kv("i", u64{1}).end_object();
    j.end_array();
  });
  EXPECT_EQ(s, "[{\"i\":0},{\"i\":1}]");
}

// ---- reader ---------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_u64(), 42u);
  EXPECT_EQ(parse_json("-7").as_double(), -7.0);
  EXPECT_EQ(parse_json("2.5").as_double(), 2.5);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, PreservesU64Exactly) {
  // Values above 2^53 are not representable as doubles; the parser must
  // keep them as integers (job keys and fingerprints depend on this).
  EXPECT_EQ(parse_json("18446744073709551615").as_u64(),
            18446744073709551615ull);
  EXPECT_EQ(parse_json("9007199254740993").as_u64(), 9007199254740993ull);
}

TEST(JsonParse, WriterReaderDoubleRoundTripIsBitExact) {
  const double values[] = {0.1234567890123456789, 1e-300, 3.0e21,
                           -0.000123456, 2.5};
  for (const double v : values) {
    const std::string s = compact([v](JsonWriter& j) { j.value(v); });
    EXPECT_EQ(parse_json(s).as_double(), v) << s;
  }
}

TEST(JsonParse, ObjectPreservesOrderAndSupportsLookup) {
  const JsonValue v = parse_json("{\"b\":1,\"a\":{\"x\":[1,2,3]},\"c\":true}");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "b");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(v.at("a").at("x").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").at("x").as_array()[2].as_u64(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
}

TEST(JsonParse, StringEscapesRoundTrip) {
  const std::string original = "quote\" backslash\\ newline\n tab\t";
  const std::string s = compact([&](JsonWriter& j) { j.value(original); });
  EXPECT_EQ(parse_json(s).as_string(), original);
  EXPECT_EQ(parse_json("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\":1"), std::runtime_error);
  EXPECT_THROW((void)parse_json("[1,2,]"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW((void)parse_json("nul"), std::runtime_error);
}

TEST(JsonParse, TypeMismatchThrows) {
  const JsonValue v = parse_json("{\"s\":\"x\"}");
  EXPECT_THROW((void)v.at("s").as_u64(), std::runtime_error);
  EXPECT_THROW((void)v.at("s").as_bool(), std::runtime_error);
  EXPECT_THROW((void)v.as_array(), std::runtime_error);
}

}  // namespace
}  // namespace cnt
