#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

namespace cnt {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream os;
  JsonWriter j(os, 0);
  body(j);
  return os.str();
}

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& j) { j.begin_array().end_array(); }),
            "[]");
}

TEST(Json, ScalarValues) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.value("hi"); }), "\"hi\"");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(u64{42}); }), "42");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(i64{-7}); }), "-7");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(true); }), "true");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(false); }), "false");
  EXPECT_EQ(compact([](JsonWriter& j) { j.null(); }), "null");
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(2.5); }), "2.5");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.value(std::nan("")); }), "null");
  EXPECT_EQ(compact([](JsonWriter& j) {
              j.value(std::numeric_limits<double>::infinity());
            }),
            "null");
}

TEST(Json, ObjectWithKeys) {
  const std::string s = compact([](JsonWriter& j) {
    j.begin_object().kv("a", u64{1}).kv("b", "x").end_object();
  });
  EXPECT_EQ(s, "{\"a\":1,\"b\":\"x\"}");
}

TEST(Json, NestedContainers) {
  const std::string s = compact([](JsonWriter& j) {
    j.begin_object();
    j.key("list");
    j.begin_array().value(u64{1}).value(u64{2}).end_array();
    j.key("obj");
    j.begin_object().kv("k", true).end_object();
    j.end_object();
  });
  EXPECT_EQ(s, "{\"list\":[1,2],\"obj\":{\"k\":true}}");
}

TEST(Json, StringEscaping) {
  const std::string s = compact([](JsonWriter& j) {
    j.value("quote\" backslash\\ newline\n tab\t ctrl\x01");
  });
  EXPECT_EQ(s, "\"quote\\\" backslash\\\\ newline\\n tab\\t ctrl\\u0001\"");
}

TEST(Json, DoubleRoundTripPrecision) {
  const std::string s =
      compact([](JsonWriter& j) { j.value(0.1234567890123456789); });
  EXPECT_NEAR(std::stod(s), 0.1234567890123456789, 1e-18);
}

TEST(Json, PrettyPrintIndents) {
  std::ostringstream os;
  {
    JsonWriter j(os, 2);
    j.begin_object().kv("a", u64{1}).end_object();
  }
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(Json, DoneTracksCompletion) {
  std::ostringstream os;
  JsonWriter j(os, 0);
  EXPECT_FALSE(j.done());
  j.begin_object();
  EXPECT_FALSE(j.done());
  j.end_object();
  EXPECT_TRUE(j.done());
}

TEST(Json, ArrayOfObjects) {
  const std::string s = compact([](JsonWriter& j) {
    j.begin_array();
    j.begin_object().kv("i", u64{0}).end_object();
    j.begin_object().kv("i", u64{1}).end_object();
    j.end_array();
  });
  EXPECT_EQ(s, "[{\"i\":0},{\"i\":1}]");
}

}  // namespace
}  // namespace cnt
