// Server-traffic generator family (src/trace/gen/server_traffic.*):
// deterministic sink-based emission, address-keyed sparse init that
// covers exactly what the trace reads, and the scenario presets exposed
// through build_workload and bench_fig_traffic.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "trace/gen/gen_util.hpp"
#include "trace/gen/server_traffic.hpp"
#include "trace/stream/trace_source.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

gen::ServerTrafficParams small_params() {
  gen::ServerTrafficParams p;
  p.records = 4096;
  p.ops = 3000;
  return p;
}

TEST(ServerTraffic, SinkEmissionIsDeterministic) {
  Trace a("a"), b("b");
  TraceCollector ca(a), cb(b);
  const u64 na = gen::generate_server_traffic(small_params(), ca);
  const u64 nb = gen::generate_server_traffic(small_params(), cb);
  ASSERT_EQ(na, nb);
  ASSERT_EQ(a.size(), na);
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(ServerTraffic, WorkloadWrapsTheSameStream) {
  Trace direct("direct");
  TraceCollector sink(direct);
  (void)gen::generate_server_traffic(small_params(), sink);
  const Workload w = gen::server_traffic(small_params());
  ASSERT_EQ(w.trace.size(), direct.size());
  for (usize i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(w.trace[i].addr, direct[i].addr);
    EXPECT_EQ(w.trace[i].op, direct[i].op);
  }
  EXPECT_EQ(w.name, "server_traffic");
  EXPECT_TRUE(w.trace.well_formed());
}

TEST(ServerTraffic, AddressesStayInTheirRegions) {
  const Workload w = gen::server_traffic(small_params());
  for (const auto& a : w.trace) {
    EXPECT_TRUE(a.valid());
    EXPECT_GE(a.addr, gen::kRegionA);
    EXPECT_LT(a.addr, gen::kRegionD);
  }
}

TEST(ServerTraffic, EveryReadIsCoveredByTheInitImage) {
  // The replayed simulation must never read memory the init image left
  // undefined -- unmapped words read zero, which would make the streamed
  // and suite paths diverge if coverage were incomplete.
  const Workload w = gen::server_traffic(small_params());
  ASSERT_FALSE(w.init.empty());
  for (const auto& a : w.trace) {
    if (a.is_write()) continue;
    bool covered = false;
    for (const auto& seg : w.init) {
      if (seg.covers(a.addr, a.size)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "uncovered read at 0x" << std::hex << a.addr;
    if (!covered) break;
  }
}

TEST(ServerTraffic, InitIsSparseNotDense) {
  // 4096 records span 256 KiB of table plus index and heap, but a 3000-op
  // zipfian run touches a fraction of it; the resident image must scale
  // with touched words, not the address span.
  const Workload w = gen::server_traffic(small_params());
  usize span = 0;
  for (const auto& seg : w.init) span += seg.length();
  EXPECT_GT(span, usize{4096} * 64);
  EXPECT_LT(w.init_resident_bytes(), span / 2);
  EXPECT_GT(w.init_resident_bytes(), 0u);
}

TEST(ServerTraffic, InitValuesAreAddressKeyed) {
  // Same params -> same image, regardless of which trace instance asked.
  const gen::ServerTrafficParams p = small_params();
  const Workload w = gen::server_traffic(p);
  const auto again = gen::server_traffic_init(p, w.trace);
  ASSERT_EQ(again.size(), w.init.size());
  for (usize s = 0; s < again.size(); ++s) {
    EXPECT_EQ(again[s].base, w.init[s].base);
    EXPECT_EQ(again[s].resident_bytes(), w.init[s].resident_bytes());
  }
}

TEST(ServerTraffic, ScenariosAreDistinctAndBuildable) {
  const auto& scenarios = gen::traffic_scenarios();
  ASSERT_GE(scenarios.size(), 5u);
  std::set<std::string> names;
  std::set<u64> seeds;
  for (const auto& sc : scenarios) {
    EXPECT_TRUE(names.insert(sc.name).second) << sc.name;
    EXPECT_TRUE(seeds.insert(sc.params.seed).second) << sc.name;
    EXPECT_EQ(sc.name.rfind("srv_", 0), 0u)
        << "scenario names carry the srv_ prefix: " << sc.name;
    EXPECT_FALSE(sc.description.empty());
  }
  // Scenario presets resolve through build_workload (the bench path).
  const Workload w = build_workload("srv_steady", 0.05);
  EXPECT_EQ(w.name, "srv_steady");
  EXPECT_EQ(w.trace.name(), "srv_steady");
  EXPECT_TRUE(w.trace.well_formed());
  EXPECT_FALSE(w.init.empty());
}

TEST(ServerTraffic, ScenarioTracesDiffer) {
  // Each preset probes a different axis, so the streams must differ.
  const Workload steady = build_workload("srv_steady", 0.05);
  const Workload scan = build_workload("srv_scan", 0.05);
  const Workload burst = build_workload("srv_writeburst", 0.05);
  EXPECT_NE(steady.trace.size(), scan.trace.size());
  const auto writes = [](const Workload& w) {
    usize n = 0;
    for (const auto& a : w.trace) n += a.is_write() ? 1 : 0;
    return n;
  };
  EXPECT_GT(writes(burst) * steady.trace.size(),
            writes(steady) * burst.trace.size())
      << "srv_writeburst must be write-heavier than srv_steady";
}

TEST(ServerTraffic, DefaultSuiteIsUntouched) {
  // The scenario family rides outside the pinned ten-entry suite.
  EXPECT_EQ(default_suite().size(), 10u);
  for (const auto& e : default_suite()) {
    EXPECT_EQ(e.name.rfind("srv_", 0), std::string::npos);
  }
}

}  // namespace
}  // namespace cnt
