#include "trace/value_model.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <memory>

#include "common/rng.hpp"

namespace cnt {
namespace {

double density_of(ValueModel& m, int samples = 4000) {
  Rng rng(1234);
  usize ones = 0;
  for (int i = 0; i < samples; ++i) {
    ones += static_cast<usize>(std::popcount(m.sample(rng)));
  }
  return static_cast<double>(ones) / (64.0 * samples);
}

TEST(ValueModel, SmallIntLowDensity) {
  SmallIntModel m;
  const double d = density_of(m);
  EXPECT_GT(d, 0.01);
  EXPECT_LT(d, 0.2);
}

TEST(ValueModel, SignedIntBimodalDensity) {
  // Per-word: positives sparse, negatives dense; aggregate near the
  // negative_prob-weighted mix.
  SignedIntModel m(32, 0.75, 0.5);
  Rng rng(2);
  usize dense_words = 0, sparse_words = 0;
  for (int i = 0; i < 4000; ++i) {
    const int ones = std::popcount(m.sample(rng));
    if (ones > 40) ++dense_words;
    if (ones < 24) ++sparse_words;
  }
  EXPECT_GT(dense_words, 1500);   // negatives: sign-extended ones
  EXPECT_GT(sparse_words, 1500);  // positives: leading zeros
}

TEST(ValueModel, SignedIntNegativeProbabilityZeroMatchesUnsigned) {
  SignedIntModel m(32, 0.75, 0.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(m.sample(rng), 1ULL << 32);
  }
}

TEST(ValueModel, SignedIntNegativesAreSignExtended) {
  SignedIntModel m(16, 0.7, 1.0);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const u64 v = m.sample(rng);
    EXPECT_EQ(v >> 32, 0xFFFFFFFFu) << std::hex << v;
  }
}

TEST(ValueModel, PointerModerateDensityAndAligned) {
  PointerModel m;
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.sample(rng) % 8, 0u);
  }
  const double d = density_of(m);
  EXPECT_GT(d, 0.1);
  EXPECT_LT(d, 0.4);
}

TEST(ValueModel, Float64NearHalfDensity) {
  Float64Model m(0.0, 1.0);
  const double d = density_of(m);
  EXPECT_GT(d, 0.3);
  EXPECT_LT(d, 0.6);
}

TEST(ValueModel, Float32PairPacksTwoFloats) {
  Float32PairModel m(1.0, 0.1);
  Rng rng(3);
  const u64 v = m.sample(rng);
  // Both halves should look like floats near 1.0 (exponent 0x7F).
  const u32 lo = static_cast<u32>(v);
  const u32 hi = static_cast<u32>(v >> 32);
  EXPECT_EQ((lo >> 23) & 0xFF, 0x7Fu & ((lo >> 23) & 0xFF));
  EXPECT_NE(lo, hi);  // two independent samples
}

TEST(ValueModel, AsciiAllPrintable) {
  AsciiModel m;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const u64 v = m.sample(rng);
    for (int b = 0; b < 8; ++b) {
      const u8 ch = static_cast<u8>(v >> (8 * b));
      EXPECT_GE(ch, 0x20);
      EXPECT_LT(ch, 0x7F);
    }
  }
}

TEST(ValueModel, AsciiDensityMidLow) {
  AsciiModel m;
  const double d = density_of(m);
  EXPECT_GT(d, 0.3);
  EXPECT_LT(d, 0.55);
}

TEST(ValueModel, PixelClampsToBytes) {
  PixelModel m(240.0, 60.0);  // pushes against the 255 clamp
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    (void)m.sample(rng);  // would UB on out-of-range cast if unclamped
  }
  SUCCEED();
}

TEST(ValueModel, SparseMostlyZero) {
  SparseModel m(0.1);
  Rng rng(6);
  int zeros = 0;
  for (int i = 0; i < 2000; ++i) zeros += (m.sample(rng) == 0);
  EXPECT_GT(zeros, 1600);
}

TEST(ValueModel, DenseHighDensity) {
  DenseModel m;
  const double d = density_of(m);
  EXPECT_GT(d, 0.7);
}

TEST(ValueModel, RandomHalfDensity) {
  RandomModel m;
  const double d = density_of(m);
  EXPECT_NEAR(d, 0.5, 0.02);
}

TEST(ValueModel, InstructionHasValidOpcodes) {
  InstructionModel m;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const u64 v = m.sample(rng);
    for (const u32 insn : {static_cast<u32>(v), static_cast<u32>(v >> 32)}) {
      const u32 opcode = insn & 0x7F;
      EXPECT_TRUE(opcode == 0x33 || opcode == 0x13 || opcode == 0x03 ||
                  opcode == 0x23 || opcode == 0x63 || opcode == 0x6F)
          << std::hex << opcode;
    }
  }
}

TEST(ValueModel, NamesDistinct) {
  std::vector<std::unique_ptr<ValueModel>> models;
  models.push_back(std::make_unique<SmallIntModel>());
  models.push_back(std::make_unique<SignedIntModel>());
  models.push_back(std::make_unique<PointerModel>());
  models.push_back(std::make_unique<Float64Model>());
  models.push_back(std::make_unique<AsciiModel>());
  models.push_back(std::make_unique<PixelModel>());
  models.push_back(std::make_unique<SparseModel>());
  models.push_back(std::make_unique<RandomModel>());
  models.push_back(std::make_unique<DenseModel>());
  models.push_back(std::make_unique<InstructionModel>());
  for (usize i = 0; i < models.size(); ++i) {
    for (usize j = i + 1; j < models.size(); ++j) {
      EXPECT_NE(models[i]->name(), models[j]->name());
    }
  }
}

}  // namespace
}  // namespace cnt
