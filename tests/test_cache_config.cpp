#include "cache/cache_config.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

CacheConfig typical() {
  CacheConfig c;
  c.size_bytes = 32 * 1024;
  c.ways = 4;
  c.line_bytes = 64;
  c.addr_bits = 48;
  return c;
}

TEST(CacheConfig, DerivedGeometry) {
  const auto c = typical();
  EXPECT_EQ(c.sets(), 128u);
  EXPECT_EQ(c.offset_bits(), 6u);
  EXPECT_EQ(c.set_bits(), 7u);
  EXPECT_EQ(c.tag_bits(), 35u);
  EXPECT_NO_THROW(c.validate());
}

TEST(CacheConfig, AddressMappingRoundTrip) {
  const auto c = typical();
  const u64 addr = 0x0000'1234'5678'9AC0ULL & ((1ULL << 48) - 1);
  const u64 line = c.line_addr(addr);
  EXPECT_EQ(line % 64, 0u);
  const u32 set = c.set_index(addr);
  const u64 tag = c.tag_of(addr);
  EXPECT_LT(set, c.sets());
  EXPECT_EQ(c.addr_of(tag, set), line);
}

TEST(CacheConfig, OffsetOf) {
  const auto c = typical();
  EXPECT_EQ(c.offset_of(0x1000), 0u);
  EXPECT_EQ(c.offset_of(0x103F), 63u);
}

TEST(CacheConfig, DistinctLinesSameSetDifferentTags) {
  const auto c = typical();
  const u64 a = 0x10000;
  const u64 b = a + c.sets() * c.line_bytes;  // same set, next tag
  EXPECT_EQ(c.set_index(a), c.set_index(b));
  EXPECT_NE(c.tag_of(a), c.tag_of(b));
}

TEST(CacheConfig, ValidateRejectsBadLineSize) {
  auto c = typical();
  c.line_bytes = 48;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.line_bytes = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CacheConfig, ValidateRejectsZeroWays) {
  auto c = typical();
  c.ways = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CacheConfig, ValidateRejectsNonPow2Sets) {
  auto c = typical();
  c.size_bytes = 3 * 16 * 1024;  // 384 sets
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CacheConfig, ValidateRejectsIndivisibleSize) {
  auto c = typical();
  c.size_bytes = 32 * 1024 + 64;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CacheConfig, ValidateRejectsTreePlruNonPow2Ways) {
  auto c = typical();
  c.ways = 3;
  c.size_bytes = 3 * 64 * 128;
  c.replacement = ReplKind::kTreePlru;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.replacement = ReplKind::kLru;
  EXPECT_NO_THROW(c.validate());
}

TEST(CacheConfig, ToStringCoverage) {
  EXPECT_STREQ(to_string(WritePolicy::kWriteBack), "write-back");
  EXPECT_STREQ(to_string(WritePolicy::kWriteThrough), "write-through");
  EXPECT_STREQ(to_string(AllocPolicy::kWriteAllocate), "write-allocate");
  EXPECT_STREQ(to_string(AllocPolicy::kNoWriteAllocate), "no-write-allocate");
  EXPECT_STREQ(to_string(ReplKind::kLru), "LRU");
  EXPECT_STREQ(to_string(ReplKind::kTreePlru), "tree-PLRU");
}

TEST(CacheConfig, DirectMappedIsValid) {
  auto c = typical();
  c.ways = 1;
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.sets(), 512u);
}

}  // namespace
}  // namespace cnt
