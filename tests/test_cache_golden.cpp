// Golden-model test: the cache + memory system must behave exactly like a
// flat byte-addressable memory under an arbitrary access stream, for every
// combination of write/alloc/replacement policy. This is the substrate's
// core functional-correctness property.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "cache/cache.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

struct GoldenParam {
  WritePolicy write;
  AllocPolicy alloc;
  ReplKind repl;
  usize ways;
  bool way_prediction = false;
  bool sector_writeback = false;
};

class CacheGolden : public ::testing::TestWithParam<GoldenParam> {};

TEST_P(CacheGolden, MatchesFlatMemory) {
  const auto param = GetParam();
  CacheConfig cfg;
  cfg.size_bytes = 2048;  // small: lots of evictions
  cfg.ways = param.ways;
  cfg.line_bytes = 64;
  cfg.write_policy = param.write;
  cfg.alloc_policy = param.alloc;
  cfg.replacement = param.repl;
  cfg.way_prediction = param.way_prediction;
  cfg.sector_writeback = param.sector_writeback;

  MainMemory mem;
  Cache cache(cfg, mem);

  std::map<u64, u8> golden;  // byte-granular reference
  Rng rng(2024);
  constexpr u64 kAddrSpace = 16 * 1024;  // 8x the cache: heavy conflict

  for (int i = 0; i < 20000; ++i) {
    // cnt-lint: narrow-ok -- 1 << k with k < 4
    const u8 size = static_cast<u8>(1u << rng.uniform(4));
    const u64 addr = rng.uniform(kAddrSpace / size) * size;
    if (rng.chance(0.45)) {
      u64 value = rng.next();
      if (size < 8) value &= (1ULL << (size * 8)) - 1;
      cache.access(MemAccess::write(addr, value, size));
      for (u8 b = 0; b < size; ++b) {
        golden[addr + b] = static_cast<u8>(value >> (8 * b));
      }
    } else {
      cache.access(MemAccess::read(addr, size));
    }
    // Periodically cross-check a resident word against the golden image.
    if (i % 97 == 0) {
      const u64 check = rng.uniform(kAddrSpace / 8) * 8;
      u64 expect = 0;
      for (u8 b = 0; b < 8; ++b) {
        const auto it = golden.find(check + b);
        expect |= static_cast<u64>(it == golden.end() ? 0 : it->second)
                  << (8 * b);
      }
      const u64 got = cache.find_way(check).has_value()
                          ? cache.peek_word(check, 8)
                          : mem.peek_word(check, 8);
      // A non-resident line's bytes may legitimately still be in the cache's
      // dirty copy... but if not resident, writeback already happened or the
      // line was never cached; either way memory is authoritative.
      if (cache.find_way(check).has_value()) {
        EXPECT_EQ(got, expect) << "resident word at 0x" << std::hex << check;
      }
    }
  }

  // Final flush: every byte must match the golden image.
  cache.flush();
  for (const auto& [addr, byte] : golden) {
    ASSERT_EQ(mem.peek(addr), byte) << "byte at 0x" << std::hex << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CacheGolden,
    ::testing::Values(
        GoldenParam{WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate,
                    ReplKind::kLru, 4},
        GoldenParam{WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate,
                    ReplKind::kTreePlru, 4},
        GoldenParam{WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate,
                    ReplKind::kFifo, 2},
        GoldenParam{WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate,
                    ReplKind::kRandom, 8},
        GoldenParam{WritePolicy::kWriteThrough, AllocPolicy::kWriteAllocate,
                    ReplKind::kLru, 4},
        GoldenParam{WritePolicy::kWriteThrough, AllocPolicy::kNoWriteAllocate,
                    ReplKind::kLru, 4},
        GoldenParam{WritePolicy::kWriteBack, AllocPolicy::kNoWriteAllocate,
                    ReplKind::kLru, 4},
        GoldenParam{WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate,
                    ReplKind::kLru, 1},
        GoldenParam{WritePolicy::kWriteBack, AllocPolicy::kWriteAllocate,
                    ReplKind::kLru, 4, /*way_prediction=*/true,
                    /*sector_writeback=*/true},
        GoldenParam{WritePolicy::kWriteThrough, AllocPolicy::kWriteAllocate,
                    ReplKind::kTreePlru, 4, /*way_prediction=*/true,
                    /*sector_writeback=*/false}),
    [](const ::testing::TestParamInfo<GoldenParam>& param_info) {
      const auto& p = param_info.param;
      std::string name;
      name += p.write == WritePolicy::kWriteBack ? "wb" : "wt";
      name += p.alloc == AllocPolicy::kWriteAllocate ? "_wa" : "_nwa";
      name += "_";
      name += to_string(p.repl);
      name += "_w" + std::to_string(p.ways);
      if (p.way_prediction) name += "_wp";
      if (p.sector_writeback) name += "_sw";
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Two-level golden test: L1 -> L2 -> memory must still be coherent.
TEST(CacheGoldenHierarchy, TwoLevelsMatchFlatMemory) {
  CacheConfig l1_cfg;
  l1_cfg.size_bytes = 1024;
  l1_cfg.ways = 2;
  l1_cfg.line_bytes = 64;
  CacheConfig l2_cfg;
  l2_cfg.size_bytes = 4096;
  l2_cfg.ways = 4;
  l2_cfg.line_bytes = 64;

  MainMemory mem;
  Cache l2(l2_cfg, mem);
  Cache l1(l1_cfg, l2);

  std::map<u64, u8> golden;
  Rng rng(31337);
  for (int i = 0; i < 30000; ++i) {
    const u64 addr = rng.uniform(4096) * 8;
    if (rng.chance(0.5)) {
      const u64 value = rng.next();
      l1.access(MemAccess::write(addr, value, 8));
      for (u8 b = 0; b < 8; ++b) {
        golden[addr + b] = static_cast<u8>(value >> (8 * b));
      }
    } else {
      l1.access(MemAccess::read(addr));
    }
  }
  l1.flush();
  l2.flush();
  for (const auto& [addr, byte] : golden) {
    ASSERT_EQ(mem.peek(addr), byte) << "byte at 0x" << std::hex << addr;
  }
}

}  // namespace
}  // namespace cnt
