// Seed-replication machinery: offset 0 is canonical and deterministic;
// nonzero offsets produce decorrelated but same-shaped instances.
#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

TEST(SuiteSeeds, OffsetZeroIsCanonical) {
  const Workload a = build_workload("zipf_kv", 0.1);
  const Workload b = build_workload("zipf_kv", 0.1, 0);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (usize i = 0; i < a.trace.size(); i += 101) {
    EXPECT_EQ(a.trace[i].addr, b.trace[i].addr);
    EXPECT_EQ(a.trace[i].value, b.trace[i].value);
  }
}

TEST(SuiteSeeds, DifferentOffsetsDiffer) {
  const Workload a = build_workload("zipf_kv", 0.1, 1);
  const Workload b = build_workload("zipf_kv", 0.1, 2);
  // Operation counts match; trace length may differ slightly (the GET/PUT
  // mix is itself sampled).
  const usize n = std::min(a.trace.size(), b.trace.size());
  ASSERT_GT(n, 1000u);
  usize diffs = 0;
  for (usize i = 0; i < n; i += 13) {
    diffs += (a.trace[i].addr != b.trace[i].addr ||
              a.trace[i].value != b.trace[i].value);
  }
  EXPECT_GT(diffs, n / 13 / 4);
}

TEST(SuiteSeeds, SameOffsetDeterministic) {
  const Workload a = build_workload("hash_join", 0.1, 7);
  const Workload b = build_workload("hash_join", 0.1, 7);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (usize i = 0; i < a.trace.size(); i += 97) {
    EXPECT_EQ(a.trace[i].addr, b.trace[i].addr);
  }
}

TEST(SuiteSeeds, ShapePreservedAcrossSeeds) {
  // Access counts and read/write mix are structural, not seed-dependent.
  for (const char* name : {"stream_copy", "pointer_chase", "text_tokenize"}) {
    const auto s0 = build_workload(name, 0.1, 0).trace.stats();
    const auto s5 = build_workload(name, 0.1, 5).trace.stats();
    EXPECT_NEAR(static_cast<double>(s5.accesses),
                static_cast<double>(s0.accesses),
                0.1 * static_cast<double>(s0.accesses))
        << name;
    EXPECT_NEAR(s5.write_fraction, s0.write_fraction, 0.05) << name;
  }
}

TEST(SuiteSeeds, RunSuiteWithSeedProducesSimilarMean) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const auto r0 = run_suite(cfg, 0.1, 0);
  const auto r3 = run_suite(cfg, 0.1, 3);
  double m0 = 0, m3 = 0;
  for (const auto& r : r0) m0 += r.saving(kPolicyCnt);
  for (const auto& r : r3) m3 += r.saving(kPolicyCnt);
  m0 /= static_cast<double>(r0.size());
  m3 /= static_cast<double>(r3.size());
  EXPECT_NEAR(m0, m3, 0.05);
}

TEST(SuiteSeeds, IFetchSupportsSeeds) {
  const Workload a = build_workload("ifetch", 0.1, 1);
  const Workload b = build_workload("ifetch", 0.1, 2);
  usize diffs = 0;
  const usize n = std::min(a.trace.size(), b.trace.size());
  for (usize i = 0; i < n; i += 17) {
    diffs += a.trace[i].addr != b.trace[i].addr;
  }
  EXPECT_GT(diffs, 0u);
}

}  // namespace
}  // namespace cnt
