// stored_ones_range: the word-granular accounting helper must agree with
// the materialized encoding for arbitrary ranges, direction masks, and
// partition counts.
#include <gtest/gtest.h>

#include "cnt/encoding.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

class StoredOnesRange : public ::testing::TestWithParam<usize> {};

TEST_P(StoredOnesRange, MatchesMaterializedEncoding) {
  const usize k = GetParam();
  Rng rng(k * 977 + 5);
  const PartitionScheme ps(64, k);
  std::vector<u8> line(64);
  for (auto& b : line) b = rng.next_byte();
  const u64 dirs = rng.next() & (k == 64 ? ~0ULL : (1ULL << k) - 1);
  const auto enc = encode_line(ps, line, dirs);

  for (usize lo = 0; lo <= 512; lo += 37) {
    for (usize hi = lo; hi <= 512; hi += 61) {
      EXPECT_EQ(stored_ones_range(ps, line, dirs, lo, hi),
                popcount_range(enc, lo, hi))
          << "K=" << k << " [" << lo << "," << hi << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, StoredOnesRange,
                         ::testing::Values<usize>(1, 2, 4, 8, 16, 32, 64));

TEST(StoredOnesRangeEdge, EmptyRange) {
  const PartitionScheme ps(64, 8);
  std::vector<u8> line(64, 0xFF);
  EXPECT_EQ(stored_ones_range(ps, line, 0xFF, 100, 100), 0u);
}

TEST(StoredOnesRangeEdge, FullRangeEqualsStoredOnes) {
  Rng rng(3);
  const PartitionScheme ps(64, 8);
  std::vector<u8> line(64);
  for (auto& b : line) b = rng.next_byte();
  for (const u64 dirs : {0ULL, 0xFFULL, 0xA5ULL}) {
    EXPECT_EQ(stored_ones_range(ps, line, dirs, 0, 512),
              stored_ones(ps, line, dirs));
  }
}

TEST(StoredOnesRangeEdge, WordInsideInvertedPartition) {
  const PartitionScheme ps(64, 8);
  std::vector<u8> line(64, 0);
  // Word at bytes 8..16 sits in partition 1; inverted -> 64 ones.
  EXPECT_EQ(stored_ones_range(ps, line, 0b10, 64, 128), 64u);
  EXPECT_EQ(stored_ones_range(ps, line, 0b00, 64, 128), 0u);
}

TEST(StoredOnesRangeEdge, RangeStraddlingPartitions) {
  const PartitionScheme ps(64, 8);
  std::vector<u8> line(64, 0);
  // Range [32, 96) covers the upper half of partition 0 (raw: 0 ones) and
  // the lower half of partition 1 (inverted: 32 ones).
  EXPECT_EQ(stored_ones_range(ps, line, 0b10, 32, 96), 32u);
}

}  // namespace
}  // namespace cnt
