#include "cnt/cnt_policy.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cnt/baseline_policies.hpp"
#include "common/rng.hpp"
#include "trace/value_model.hpp"

namespace cnt {
namespace {

using C = EnergyCategory;

CacheConfig small_cfg() {
  CacheConfig c;
  c.size_bytes = 4096;
  c.ways = 4;
  c.line_bytes = 64;
  c.idle.idle_per_miss = 8;
  c.idle.hit_idle_period = 4;
  return c;
}

CntConfig default_cnt() {
  CntConfig c;
  c.window = 15;
  c.partitions = 8;
  c.fifo_depth = 8;
  return c;
}

struct Rig {
  MainMemory mem;
  Cache cache;
  CntPolicy cnt;
  PlainPolicy plain;

  explicit Rig(CntConfig cfg = default_cnt(), CacheConfig ccfg = small_cfg())
      : cache(ccfg, mem),
        cnt("cnt", TechParams::cnfet(), geometry_of(ccfg), cfg),
        plain("plain", TechParams::cnfet(), geometry_of(ccfg)) {
    cache.add_sink(cnt);
    cache.add_sink(plain);
  }
};

TEST(CntPolicy, MetaBitsMatchPaperFormula) {
  Rig r;
  // W=15 -> 2*4 history bits; K=8 direction bits.
  EXPECT_EQ(r.cnt.meta_bits(), 16u);
  EXPECT_EQ(r.cnt.array().geometry().meta_bits, 16u);
}

TEST(CntPolicy, FillChoosesMinWriteDirections) {
  // A memory line with one dense partition: min-write fill inverts exactly
  // that partition.
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kMinWriteEnergy;
  Rig r(cfg);
  for (usize i = 8; i < 16; ++i) r.mem.poke(0x1000 + i, 0xFF);
  r.cache.access(MemAccess::read(0x1000));
  const u32 set = r.cache.config().set_index(0x1000);
  const u32 way = *r.cache.find_way(0x1000);
  EXPECT_EQ(r.cnt.directions(set, way), 0b10u);  // partition 1 inverted
  EXPECT_EQ(r.cnt.stats().fill_inversions, 1u);
}

TEST(CntPolicy, AsIsFillStoresRaw) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  Rig r(cfg);
  for (usize i = 0; i < 64; ++i) r.mem.poke(0x1000 + i, 0xFF);
  r.cache.access(MemAccess::read(0x1000));
  const u32 set = r.cache.config().set_index(0x1000);
  EXPECT_EQ(r.cnt.directions(set, *r.cache.find_way(0x1000)), 0u);
}

TEST(CntPolicy, ReadOptimizedFillInvertsSparsePartitions) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kReadOptimized;
  Rig r(cfg);
  // Memory line all zeros: every partition inverts to store ones.
  r.cache.access(MemAccess::read(0x2000));
  const u32 set = r.cache.config().set_index(0x2000);
  EXPECT_EQ(r.cnt.directions(set, *r.cache.find_way(0x2000)), 0xFFu);
}

TEST(CntPolicy, WindowBoundaryEvaluates) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  Rig r(cfg);
  r.cache.access(MemAccess::read(0x0));  // fill; history empty
  for (int i = 0; i < 14; ++i) r.cache.access(MemAccess::read(0x0));
  EXPECT_EQ(r.cnt.stats().windows_evaluated, 0u);
  r.cache.access(MemAccess::read(0x0));  // 15th hit completes the window
  EXPECT_EQ(r.cnt.stats().windows_evaluated, 1u);
}

TEST(CntPolicy, ReadHeavyZeroLineGetsReencoded) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;  // store zeros raw
  Rig r(cfg);
  // 0x0 is all-zero memory; hammer it with reads. Window fires at 15
  // accesses, requests flips, and idle slots from the interleaved misses
  // drain the FIFO.
  for (int i = 0; i < 16; ++i) r.cache.access(MemAccess::read(0x0));
  // Miss to another set provides idle slots (idle_per_miss = 8).
  r.cache.access(MemAccess::read(0x10000));
  EXPECT_GE(r.cnt.stats().switch_decisions, 1u);
  EXPECT_GE(r.cnt.stats().reencodes_applied, 1u);
  const u32 set = r.cache.config().set_index(0x0);
  EXPECT_EQ(r.cnt.directions(set, *r.cache.find_way(0x0)), 0xFFu);
  EXPECT_GT(r.cnt.ledger().get(C::kReencode).in_joules(), 0.0);
  EXPECT_GT(r.cnt.ledger().get(C::kFifo).in_joules(), 0.0);
}

TEST(CntPolicy, HitIdleSlotsAloneDrainQueue) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  auto ccfg = small_cfg();
  ccfg.idle.hit_idle_period = 2;
  Rig r(cfg, ccfg);
  for (int i = 0; i < 20; ++i) r.cache.access(MemAccess::read(0x0));
  EXPECT_GE(r.cnt.stats().reencodes_applied, 1u);
}

TEST(CntPolicy, NoIdleSlotsNoDrain) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  auto ccfg = small_cfg();
  ccfg.idle.hit_idle_period = 0;
  ccfg.idle.idle_per_miss = 0;
  Rig r(cfg, ccfg);
  for (int i = 0; i < 40; ++i) r.cache.access(MemAccess::read(0x0));
  EXPECT_GE(r.cnt.stats().switch_decisions, 1u);
  EXPECT_EQ(r.cnt.stats().reencodes_applied, 0u);
  EXPECT_GE(r.cnt.queue_stats().pushed, 1u);
}

TEST(CntPolicy, StaleRequestDroppedOnDrain) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  auto ccfg = small_cfg();
  ccfg.idle.hit_idle_period = 0;
  ccfg.idle.idle_per_miss = 4;
  Rig r(cfg, ccfg);
  const u64 stride = r.cache.config().sets() * r.cache.config().line_bytes;
  // Pre-fill set 0 completely (tags 0..3); fill-time idle slots hit an
  // empty queue.
  for (u64 i = 0; i < 4; ++i) r.cache.access(MemAccess::read(i * stride));
  // Hammer tag 0 into a pending request (hits produce no idle slots here).
  for (int i = 0; i < 15; ++i) r.cache.access(MemAccess::read(0x0));
  ASSERT_EQ(r.cnt.queue_stats().pushed, 1u);
  ASSERT_EQ(r.cnt.queue_stats().drained, 0u);
  // Make tag 0 the LRU victim, then miss: the eviction bumps the line's
  // generation *before* the miss's idle slots drain the queue, so the
  // request must be discarded as stale.
  for (u64 i = 1; i < 4; ++i) r.cache.access(MemAccess::read(i * stride));
  r.cache.access(MemAccess::read(4 * stride));
  ASSERT_FALSE(r.cache.find_way(0x0).has_value());
  EXPECT_EQ(r.cnt.queue_stats().drained, 1u);
  EXPECT_EQ(r.cnt.queue_stats().drained_stale, 1u);
  EXPECT_EQ(r.cnt.stats().reencodes_applied, 0u);
}

TEST(CntPolicy, FifoFullDropsDecision) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  cfg.fifo_depth = 1;
  cfg.window = 2;
  auto ccfg = small_cfg();
  ccfg.idle.hit_idle_period = 0;
  ccfg.idle.idle_per_miss = 0;
  Rig r(cfg, ccfg);
  // Two different zero lines, each read-hammered: two switch decisions,
  // FIFO holds one.
  for (int i = 0; i < 3; ++i) r.cache.access(MemAccess::read(0x0));
  for (int i = 0; i < 3; ++i) r.cache.access(MemAccess::read(0x40));
  EXPECT_GE(r.cnt.queue_stats().dropped_full, 1u);
}

TEST(CntPolicy, PendingWindowSkipsDuplicate) {
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kAsIs;
  cfg.window = 4;
  auto ccfg = small_cfg();
  ccfg.idle.hit_idle_period = 0;
  ccfg.idle.idle_per_miss = 0;
  Rig r(cfg, ccfg);
  // Two windows complete without any drain: the second decision for the
  // same line must be skipped, not double-queued. (1 fill + 8 hits ->
  // windows fire at hits 4 and 8.)
  for (int i = 0; i < 9; ++i) r.cache.access(MemAccess::read(0x0));
  EXPECT_EQ(r.cnt.queue_stats().pushed, 1u);
  EXPECT_GE(r.cnt.stats().skipped_pending, 1u);
}

TEST(CntPolicy, MetadataChargesAppear) {
  Rig r;
  r.cache.access(MemAccess::read(0x0));
  r.cache.access(MemAccess::read(0x0));
  EXPECT_GT(r.cnt.ledger().get(C::kMetaRead).in_joules(), 0.0);
  EXPECT_GT(r.cnt.ledger().get(C::kMetaWrite).in_joules(), 0.0);
  EXPECT_GT(r.cnt.ledger().get(C::kPredictorLogic).in_joules(), 0.0);
  EXPECT_GT(r.cnt.ledger().get(C::kEncoderLogic).in_joules(), 0.0);
}

TEST(CntPolicy, MetadataAccountingCanBeDisabled) {
  auto cfg = default_cnt();
  cfg.account_metadata = false;
  Rig r(cfg);
  for (int i = 0; i < 20; ++i) r.cache.access(MemAccess::read(0x0));
  EXPECT_DOUBLE_EQ(r.cnt.ledger().get(C::kMetaRead).in_joules(), 0.0);
  EXPECT_DOUBLE_EQ(r.cnt.ledger().get(C::kMetaWrite).in_joules(), 0.0);
}

TEST(CntPolicy, ReadHeavySparseDataBeatsBaseline) {
  // The headline mechanism: read-dominated low-density data. CNT-Cache
  // (with min-write fill + adaptive switching) must clearly beat the
  // baseline.
  Rig r;
  Rng rng(12);
  SmallIntModel ints(32, 0.75);
  // Populate and then read-hammer a working set that fits the cache.
  for (u64 a = 0; a < 32; ++a) {
    r.cache.access(MemAccess::write(a * 64, ints.sample(rng)));
  }
  for (int i = 0; i < 4000; ++i) {
    r.cache.access(MemAccess::read(rng.uniform(32) * 64 + rng.uniform(8) * 8));
  }
  const double base = r.plain.ledger().total().in_joules();
  const double cnt_total = r.cnt.ledger().total().in_joules();
  EXPECT_LT(cnt_total, 0.75 * base);
}

TEST(CntPolicy, WriteHeavySparseDataDoesNotRegress) {
  // Write-dominated zero-ish data: the baseline is already near-optimal
  // (writing zeros is cheap). CNT-Cache must not lose more than its small
  // overhead margin.
  Rig r;
  Rng rng(13);
  SmallIntModel ints(24, 0.7);
  for (int i = 0; i < 4000; ++i) {
    r.cache.access(
        MemAccess::write(rng.uniform(32) * 64 + rng.uniform(8) * 8,
                         ints.sample(rng)));
  }
  const double base = r.plain.ledger().total().in_joules();
  const double cnt_total = r.cnt.ledger().total().in_joules();
  EXPECT_LT(cnt_total, 1.15 * base);
}

TEST(CntPolicy, FlipAwareWritesCostLess) {
  auto cfg = default_cnt();
  cfg.flip_aware_writes = true;
  MainMemory mem;
  Cache cache(small_cfg(), mem);
  CntPolicy fa("fa", TechParams::cnfet(), geometry_of(small_cfg()), cfg);
  CntPolicy full("full", TechParams::cnfet(), geometry_of(small_cfg()),
                 default_cnt());
  cache.add_sink(fa);
  cache.add_sink(full);
  Rng rng(14);
  for (int i = 0; i < 2000; ++i) {
    cache.access(MemAccess::write(rng.uniform(16) * 64, rng.next()));
  }
  EXPECT_LT(fa.ledger().get(C::kDataWrite).in_joules(),
            full.ledger().get(C::kDataWrite).in_joules());
}

TEST(CntPolicy, GenerationGuardsAcrossRefill) {
  // After an eviction + refill of the same set/way, directions reflect the
  // new line's fill policy, not stale state.
  auto cfg = default_cnt();
  cfg.fill_policy = FillDirectionPolicy::kMinWriteEnergy;
  Rig r(cfg);
  for (usize i = 0; i < 64; ++i) r.mem.poke(0x3000 + i, 0xFF);
  r.cache.access(MemAccess::read(0x3000));
  const u32 set = r.cache.config().set_index(0x3000);
  const u32 way = *r.cache.find_way(0x3000);
  EXPECT_EQ(r.cnt.directions(set, way), 0xFFu);  // dense line inverted
  EXPECT_EQ(r.cnt.line_state(set, way).hist.a_num, 0u);
}

TEST(CntPolicy, ByMissTypeFillUsesDemandAccess) {
  // Default policy: a read miss encodes the sparse line for cheap reads
  // (inverted); a write miss encodes for cheap writes (raw).
  Rig r;  // default_cnt() -> kByMissType
  r.cache.access(MemAccess::read(0x2000));  // sparse (zero) line, read miss
  const u32 rset = r.cache.config().set_index(0x2000);
  EXPECT_EQ(r.cnt.directions(rset, *r.cache.find_way(0x2000)), 0xFFu);

  r.cache.access(MemAccess::write(0x4000, 1));  // sparse line, write miss
  const u32 wset = r.cache.config().set_index(0x4000);
  EXPECT_EQ(r.cnt.directions(wset, *r.cache.find_way(0x4000)), 0x0u);
}

TEST(CntPolicy, LedgerTotalsArePositiveAndFinite) {
  Rig r;
  Rng rng(15);
  for (int i = 0; i < 3000; ++i) {
    if (rng.chance(0.3)) {
      r.cache.access(MemAccess::write(rng.uniform(512) * 8, rng.next()));
    } else {
      r.cache.access(MemAccess::read(rng.uniform(512) * 8));
    }
  }
  const double total = r.cnt.ledger().total().in_joules();
  EXPECT_GT(total, 0.0);
  EXPECT_TRUE(std::isfinite(total));
}

}  // namespace
}  // namespace cnt
