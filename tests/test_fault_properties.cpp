// Property tests for the encoding layer under the fault model's key
// question: what does a flipped direction bit do to the decoded line?
#include <gtest/gtest.h>

#include <vector>

#include "cnt/encoding.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

std::vector<u8> random_line(Rng& rng, usize bytes) {
  std::vector<u8> line(bytes);
  for (auto& b : line) b = static_cast<u8>(rng.uniform(256) & 0xffU);
  return line;
}

TEST(EncodingProperty, RoundTripsUnderRandomDataAndDirections) {
  Rng rng(0x5EED);
  for (const usize partitions : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const PartitionScheme ps(64, partitions);
    for (int trial = 0; trial < 200; ++trial) {
      const auto logical = random_line(rng, ps.line_bytes());
      const u64 dirs = partitions == 64 ? rng.next()
                                        : rng.next() & ((1ull << partitions) - 1);
      const auto stored = encode_line(ps, logical, dirs);
      // encode is involutive: applying the same mask again decodes.
      const auto back = encode_line(ps, stored, dirs);
      EXPECT_EQ(back, logical) << "K=" << partitions << " trial=" << trial;
    }
  }
}

TEST(EncodingProperty, SingleDirectionBitFlipCorruptsExactlyOnePartition) {
  Rng rng(0xD1CE);
  const usize partitions = 8;
  const PartitionScheme ps(64, partitions);
  for (int trial = 0; trial < 200; ++trial) {
    const auto logical = random_line(rng, ps.line_bytes());
    const u64 dirs = rng.next() & ((1ull << partitions) - 1);
    const auto stored = encode_line(ps, logical, dirs);
    const usize victim = rng.uniform(partitions);
    // Decode with one flipped direction bit -- what an unprotected
    // direction-bit upset hands the decoder.
    const auto decoded = encode_line(ps, stored, dirs ^ (1ull << victim));
    for (usize p = 0; p < partitions; ++p) {
      for (usize byte = p * ps.partition_bytes();
           byte < (p + 1) * ps.partition_bytes(); ++byte) {
        if (p == victim) {
          // The victim partition reads back bitwise inverted...
          EXPECT_EQ(decoded[byte], static_cast<u8>(~logical[byte]));
        } else {
          // ...and every other partition is untouched.
          EXPECT_EQ(decoded[byte], logical[byte]);
        }
      }
    }
  }
}

TEST(EncodingProperty, ReencodeMatchesFreshEncode) {
  Rng rng(0xBEEF);
  const PartitionScheme ps(64, 8);
  for (int trial = 0; trial < 100; ++trial) {
    const auto logical = random_line(rng, ps.line_bytes());
    const u64 old_dirs = rng.next() & 0xFF;
    const u64 new_dirs = rng.next() & 0xFF;
    auto stored = encode_line(ps, logical, old_dirs);
    reencode_line(ps, stored, old_dirs, new_dirs);
    EXPECT_EQ(stored, encode_line(ps, logical, new_dirs));
  }
}

}  // namespace
}  // namespace cnt
