// Streamed trace subsystem (docs/trace_streaming.md): CNTTRS round trips,
// the TraceSource contract (reset, size_hint, batching), stats/ledger
// equivalence between in-RAM and chunked replay, and golden pins for the
// reader's structured refusals -- torn tails, corrupt chunks, reordered
// chunks and trailing garbage must name what, where and how to fix.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/runner.hpp"
#include "sim/stats_dump.hpp"
#include "trace/stream/stream_reader.hpp"
#include "trace/stream/stream_writer.hpp"
#include "trace/stream/trace_source.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

/// A deterministic mixed trace: reads, writes (valued), ifetches, varied
/// sizes, strided and jumping addresses.
Trace mixed_trace(usize n, u64 seed = 42) {
  Trace t("mixed");
  Rng rng(seed);
  u64 addr = 0x10000;
  for (usize i = 0; i < n; ++i) {
    switch (rng.uniform(5)) {
      case 0: t.push(MemAccess::read(addr, 8)); break;
      case 1: t.push(MemAccess::write(addr, rng.next(), 8)); break;
      case 2: t.push(MemAccess::write(addr, rng.uniform(64), 8)); break;
      case 3: t.push(MemAccess::ifetch(addr & ~u64{3}, 4)); break;
      default: t.push(MemAccess::read(addr & ~u64{1}, 2)); break;
    }
    addr = rng.chance(0.25) ? 0x10000 + rng.uniform(1u << 16) * 8 : addr + 8;
  }
  return t;
}

std::string encode(const Trace& t, u32 capacity) {
  std::ostringstream os;
  stream::StreamTraceWriter w(os, capacity);
  for (const auto& a : t) w.push(a);
  w.finish();
  return os.str();
}

void expect_same_accesses(const Trace& want, TraceSource& got) {
  std::vector<MemAccess> buf(37);  // odd batch size crosses chunk edges
  usize k = 0;
  for (;;) {
    const usize n = got.next(buf);
    if (n == 0) break;
    for (usize i = 0; i < n; ++i, ++k) {
      ASSERT_LT(k, want.size());
      EXPECT_EQ(buf[i].addr, want[k].addr) << "record " << k;
      EXPECT_EQ(buf[i].size, want[k].size) << "record " << k;
      EXPECT_EQ(buf[i].op, want[k].op) << "record " << k;
      if (want[k].is_write()) {
        EXPECT_EQ(buf[i].value, want[k].value) << "record " << k;
      }
    }
  }
  EXPECT_EQ(k, want.size());
}

u32 le32(const std::string& s, usize at) {
  u32 v = 0;
  for (usize b = 0; b < 4; ++b) {
    v |= static_cast<u32>(static_cast<u8>(s[at + b])) << (8 * b);  // cnt-lint: narrow-ok LE byte
  }
  return v;
}

void put_le32(std::string& s, usize at, u32 v) {
  for (usize b = 0; b < 4; ++b) {
    s[at + b] = static_cast<char>((v >> (8 * b)) & 0xff);  // LE byte
  }
}

TEST(StreamRoundTrip, MultiChunkIsLossless) {
  const Trace t = mixed_trace(1000);
  const std::string bytes = encode(t, 64);  // forces 16 chunks
  std::istringstream is(bytes);
  stream::StreamTraceSource src(is, "mem");
  EXPECT_EQ(src.chunk_capacity(), 64u);
  expect_same_accesses(t, src);
}

TEST(StreamRoundTrip, SingleRecordAndEmpty) {
  Trace one("one");
  one.push(MemAccess::write(0x40, 7, 8));
  std::istringstream a(encode(one, 16));
  stream::StreamTraceSource sa(a, "one");
  expect_same_accesses(one, sa);

  const Trace none("none");
  std::istringstream b(encode(none, 16));
  stream::StreamTraceSource sb(b, "none");
  MemAccess buf[4];
  EXPECT_EQ(sb.next(buf), 0u);
  EXPECT_EQ(sb.size_hint().value_or(99), 0u);
}

TEST(StreamRoundTrip, SizeHintComesFromFooter) {
  const Trace t = mixed_trace(513);
  std::istringstream is(encode(t, 128));
  stream::StreamTraceSource src(is, "mem");
  ASSERT_TRUE(src.size_hint().has_value());
  EXPECT_EQ(*src.size_hint(), 513u);
}

TEST(StreamRoundTrip, ResetRewindsMidStream) {
  const Trace t = mixed_trace(300);
  std::istringstream is(encode(t, 32));
  stream::StreamTraceSource src(is, "mem");
  MemAccess buf[50];
  ASSERT_EQ(src.next(buf), 50u);  // abandon the stream mid-chunk
  src.reset();
  expect_same_accesses(t, src);
  // A drained stream stays drained until the next reset.
  EXPECT_EQ(src.next(buf), 0u);
  src.reset();
  expect_same_accesses(t, src);
}

TEST(StreamRoundTrip, MaterializeAndStatsMatchTheOriginal) {
  const Trace t = mixed_trace(700);
  std::istringstream is(encode(t, 100));
  stream::StreamTraceSource src(is, "mem");

  const TraceStats streamed = stats_of(src);
  const TraceStats direct = t.stats();
  EXPECT_EQ(streamed.accesses, direct.accesses);
  EXPECT_EQ(streamed.reads, direct.reads);
  EXPECT_EQ(streamed.writes, direct.writes);
  EXPECT_EQ(streamed.ifetches, direct.ifetches);
  EXPECT_EQ(streamed.unique_lines, direct.unique_lines);
  EXPECT_DOUBLE_EQ(streamed.write_bit1_density, direct.write_bit1_density);

  const Trace back = materialize(src);
  ASSERT_EQ(back.size(), t.size());
  VectorTraceSource vs(back);
  expect_same_accesses(t, vs);
}

TEST(StreamRoundTrip, FileRoundTripViaPathConstructors) {
  const Trace t = mixed_trace(400, 9);
  const std::string path = "test_trace_stream_roundtrip.trs";
  {
    stream::StreamTraceWriter w(path, 75);
    for (const auto& a : t) w.push(a);
    w.finish();
    EXPECT_EQ(w.records(), 400u);
    EXPECT_EQ(w.chunks(), 6u);
  }
  stream::StreamTraceSource src(path);
  EXPECT_EQ(src.name(), path);
  expect_same_accesses(t, src);
  (void)std::remove(path.c_str());
}

TEST(VectorSource, BatchesAndOwnership) {
  const Trace t = mixed_trace(10);
  VectorTraceSource borrowed(t);
  EXPECT_EQ(borrowed.size_hint().value_or(0), 10u);
  expect_same_accesses(t, borrowed);

  VectorTraceSource owning(mixed_trace(10));
  expect_same_accesses(t, owning);  // same seed, same accesses
  EXPECT_EQ(owning.name(), "mixed");
}

TEST(StreamReplay, LedgerIsByteIdenticalToInRamReplay) {
  // Streaming must be a pure I/O change: the same accesses with the same
  // init image must render the exact same energy JSON either way.
  const Workload w = build_workload("zipf_kv", 0.05);
  SimConfig cfg;
  cfg.with_cmos = false;

  SimResult in_ram = simulate(w, cfg);
  std::istringstream is(encode(w.trace, 512));
  stream::StreamTraceSource src(is, "streamed");
  SimResult streamed = simulate(src, w.init, cfg);

  in_ram.workload = streamed.workload = "replay";
  std::ostringstream ja, jb;
  dump_json(in_ram, ja);
  dump_json(streamed, jb);
  EXPECT_EQ(ja.str(), jb.str());
}

// --- golden refusals -------------------------------------------------------

template <typename Fn>
ErrorInfo expect_refusal(const std::string& bytes, Fn check) {
  std::istringstream is(bytes);
  try {
    stream::StreamTraceSource src(is, "t.trs");
    MemAccess buf[64];
    while (src.next(buf) != 0) {
    }
  } catch (const Error& e) {
    check(e.info());
    return e.info();
  }
  ADD_FAILURE() << "reader accepted a corrupt file";
  return {};
}

TEST(StreamGolden, WrongMagicNamesBothFormats) {
  std::string bytes = encode(mixed_trace(5), 8);
  bytes[0] = 'X';
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kMagic);
    EXPECT_NE(e.message.find("not a CNT streamed trace"), std::string::npos);
    EXPECT_NE(e.message.find("expected 'CNTTRS'"), std::string::npos);
    EXPECT_EQ(e.source, "t.trs");
    EXPECT_NE(e.hint.find("CNTTRC"), std::string::npos)
        << "hint should point at the monolithic loader for CNTTRC files";
  });
}

TEST(StreamGolden, WrongVersionSaysWhichBuildReads) {
  std::string bytes = encode(mixed_trace(5), 8);
  bytes[6] = '9';
  bytes[7] = '9';
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kVersion);
    EXPECT_EQ(e.message,
              "unsupported streamed-trace version '99' (this build reads "
              "version 01)");
  });
}

TEST(StreamGolden, ZeroAndOversizedCapacityAreRefused) {
  std::string bytes = encode(mixed_trace(5), 8);
  put_le32(bytes, 8, 0);
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kRange);
    EXPECT_EQ(e.message, "header declares a zero chunk capacity");
  });
  put_le32(bytes, 8, stream::kMaxChunkCapacity + 1);
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kLimit);
    EXPECT_NE(e.message.find("chunk capacity"), std::string::npos);
  });
}

TEST(StreamGolden, TornTailIsRefusedBeforeReplay) {
  const std::string whole = encode(mixed_trace(50), 8);
  const std::string torn = whole.substr(0, whole.size() - 3);
  expect_refusal(torn, [&](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kTruncated);
    EXPECT_EQ(e.message,
              "file does not end in a sealed footer (torn tail or trailing "
              "bytes)");
    EXPECT_EQ(e.byte, torn.size() - stream::kFooterBytes);
    EXPECT_NE(e.hint.find("re-generate"), std::string::npos);
  });
}

TEST(StreamGolden, BelowMinimumSizeNamesTheFloor) {
  expect_refusal("CNTTRS01", [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kTruncated);
    EXPECT_NE(e.message.find("even an empty streamed trace is 41"),
              std::string::npos);
  });
}

TEST(StreamGolden, CorruptChunkPayloadIsAChecksumRefusal) {
  std::string bytes = encode(mixed_trace(50), 8);
  // Flip one bit a few bytes into the first chunk's payload.
  char& target = bytes[stream::kHeaderBytes + 9 + 2];
  target = static_cast<char>(static_cast<u8>(target) ^ 0x10);  // cnt-lint: narrow-ok byte flip
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kChecksum);
    EXPECT_NE(e.message.find("chunk 0 checksum mismatch"), std::string::npos);
    EXPECT_EQ(e.byte, u64{stream::kHeaderBytes});
    EXPECT_NE(e.hint.find("refused"), std::string::npos);
  });
}

TEST(StreamGolden, FooterCountMismatchIsDetected) {
  std::string bytes = encode(mixed_trace(20), 8);
  // Patch the footer's record count and re-seal its CRC, so only the
  // sequential count verification can catch the lie.
  const usize body = bytes.size() - stream::kFooterBytes + 1;
  bytes[body] = static_cast<char>(static_cast<u8>(bytes[body]) + 1);  // cnt-lint: narrow-ok byte bump
  put_le32(bytes, bytes.size() - 4,
           crc32(std::string_view(bytes).substr(body, 24)));
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kChecksum);
    EXPECT_NE(e.message.find("footer declares 21 records"), std::string::npos);
    EXPECT_NE(e.message.find("the file contains 20"), std::string::npos);
  });
}

TEST(StreamGolden, ReorderedChunksFailTheFooterDigest) {
  // Two chunks, each individually CRC-valid; swapping them keeps the
  // counts right, so only the footer's chained chunk-CRC digest notices.
  const std::string bytes = encode(mixed_trace(16), 8);
  const usize c1 = stream::kHeaderBytes;
  const usize len1 = 1 + 8 + le32(bytes, c1 + 5) + 4;
  const usize c2 = c1 + len1;
  const usize len2 = 1 + 8 + le32(bytes, c2 + 5) + 4;
  const std::string swapped = bytes.substr(0, c1) +
                              bytes.substr(c2, len2) +
                              bytes.substr(c1, len1) +
                              bytes.substr(c2 + len2);
  ASSERT_EQ(swapped.size(), bytes.size());
  expect_refusal(swapped, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kChecksum);
    EXPECT_EQ(e.message, "footer chunk-CRC digest mismatch");
    EXPECT_NE(e.hint.find("reordered"), std::string::npos);
  });
}

TEST(StreamGolden, TrailingBytesAfterTheFooterAreRefused) {
  std::string bytes = encode(mixed_trace(5), 8);
  bytes.append(3, 'x');
  // On a seekable stream prevalidation sees the tail is not a footer.
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kTruncated);
    EXPECT_NE(e.message.find("torn tail or trailing bytes"),
              std::string::npos);
  });
}

TEST(StreamGolden, MissingFileIsAnIoError) {
  try {
    stream::StreamTraceSource src("does/not/exist.trs");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kIo);
    EXPECT_EQ(e.info().message, "cannot open streamed trace");
    EXPECT_EQ(e.info().source, "does/not/exist.trs");
  }
}

TEST(StreamLimits, HostilePayloadLengthIsBounded) {
  // A chunk declaring a giant payload must be refused by the per-record
  // bound before any allocation, even though its CRC was never checked.
  std::string bytes = encode(mixed_trace(5), 8);
  put_le32(bytes, stream::kHeaderBytes + 5, u32{64} << 20);
  expect_refusal(bytes, [](const ErrorInfo& e) {
    EXPECT_EQ(e.code, Errc::kLimit);
    EXPECT_NE(e.message.find("payload bytes, above the"), std::string::npos);
  });
}

}  // namespace
}  // namespace cnt
