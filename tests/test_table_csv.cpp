#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace cnt {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string r = t.render();
  EXPECT_NE(r.find("name"), std::string::npos);
  EXPECT_NE(r.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(r.find("---"), std::string::npos);
  // All lines share the same width.
  std::istringstream is(r);
  std::string line;
  usize width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(Table, NumAndPct) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.5, 0), "-2");  // printf rounds half to even
  EXPECT_EQ(Table::pct(0.222, 1), "22.2%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "cnt_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }

  [[nodiscard]] std::string slurp() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"x", "y"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
    csv.finish();
  }
  EXPECT_EQ(slurp(), "x,y\n1,2\n3,4\n");
}

TEST_F(CsvTest, EscapesSpecialCells) {
  {
    CsvWriter csv(path_, {"a"});
    csv.add_row({"has,comma"});
    csv.add_row({"has\"quote"});
    csv.finish();
  }
  EXPECT_EQ(slurp(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvTest, WithoutFinishNothingIsPublished) {
  {
    CsvWriter csv(path_, {"a"});
    csv.add_row({"1"});
    // no finish(): the writer discards its staging file on destruction
  }
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_FALSE(std::filesystem::exists(path_ + ".partial"));
}

TEST_F(CsvTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace cnt
