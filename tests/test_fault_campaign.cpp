#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "fault/fault_config.hpp"

namespace cnt {
namespace {

constexpr usize kSets = 64;
constexpr usize kWays = 4;
constexpr usize kLineBytes = 64;
constexpr usize kPartitions = 8;

FaultConfig stuck_config(double per_mbit, ProtectionScheme scheme) {
  FaultConfig cfg;
  cfg.stuck_per_mbit = per_mbit;
  cfg.stuck_at1_fraction = 1.0;  // all stuck-at-1: all-zero data conflicts
  cfg.transient_per_read = 0.0;
  cfg.protection = scheme;
  cfg.seed = 0xFA013;
  return cfg;
}

// The acceptance matrix for permanent data faults: fill every line with
// all-zeros (conflicting with every stuck-at-1 cell), read it back, and
// check the protection outcome against the per-line defect count.
TEST(FaultCampaign, SecdedCorrectsEverySingleBitDataFault) {
  FaultCampaign c(stuck_config(480.0, ProtectionScheme::kSecded), kSets,
                  kWays, kLineBytes, kPartitions);
  ASSERT_GT(c.stats().stuck_data_cells, 0u);

  usize singles = 0;
  for (u32 set = 0; set < kSets; ++set) {
    for (u32 way = 0; way < kWays; ++way) {
      std::vector<u8> line(kLineBytes, 0);
      c.on_fill(set, way, line);
      const usize stuck = c.stuck_in_line(set, way);
      const auto rep = c.on_read(set, way, line);
      EXPECT_EQ(rep.flips, stuck);
      if (stuck == 1) {
        ++singles;
        EXPECT_EQ(rep.corrected, 1u);
        EXPECT_EQ(rep.detected, 0u);
        EXPECT_EQ(rep.silent, 0u);
        // The read-out value was repaired back to the fill image.
        for (const u8 b : line) EXPECT_EQ(b, 0u);
        // The cell is still stuck: the next read pays the correction again.
        const auto again = c.on_read(set, way, line);
        EXPECT_EQ(again.corrected, 1u);
      } else if (stuck == 2) {
        EXPECT_EQ(rep.detected, 1u);  // refetch recovery
        for (const u8 b : line) EXPECT_EQ(b, 0u);
      }
    }
  }
  EXPECT_GT(singles, 10u) << "density too low to exercise the single-bit case";
  EXPECT_GT(c.stats().corrected_bits, 0u);
}

TEST(FaultCampaign, ParityDetectsButNeverCorrects) {
  FaultCampaign c(stuck_config(480.0, ProtectionScheme::kParity), kSets,
                  kWays, kLineBytes, kPartitions);
  u64 detected = 0;
  for (u32 set = 0; set < kSets; ++set) {
    for (u32 way = 0; way < kWays; ++way) {
      std::vector<u8> line(kLineBytes, 0);
      c.on_fill(set, way, line);
      const auto rep = c.on_read(set, way, line);
      EXPECT_EQ(rep.corrected, 0u);   // parity has no correction capability
      EXPECT_EQ(rep.silent % 2, 0u);  // only even-weight groups escape
      detected += rep.detected;
    }
  }
  EXPECT_GT(detected, 0u);
  EXPECT_EQ(c.stats().corrected_bits, 0u);
}

TEST(FaultCampaign, UnprotectedStuckFaultsAreSilent) {
  FaultCampaign c(stuck_config(480.0, ProtectionScheme::kNone), kSets, kWays,
                  kLineBytes, kPartitions);
  u64 silent_bits = 0;
  for (u32 set = 0; set < kSets; ++set) {
    for (u32 way = 0; way < kWays; ++way) {
      std::vector<u8> line(kLineBytes, 0);
      c.on_fill(set, way, line);
      const auto rep = c.on_read(set, way, line);
      EXPECT_EQ(rep.corrected, 0u);
      EXPECT_EQ(rep.detected, 0u);
      EXPECT_EQ(rep.silent, rep.flips);
      silent_bits += rep.silent;
      // Silent corruption really is served: stuck-at-1 bits read as 1.
      usize ones = 0;
      for (const u8 b : line) ones += static_cast<usize>(std::popcount(b));
      EXPECT_EQ(ones, c.stuck_in_line(set, way));
    }
  }
  EXPECT_GT(silent_bits, 0u);
  EXPECT_EQ(c.stats().silent_bits, silent_bits);
}

TEST(FaultCampaign, TransientReadsFollowSecdedClassification) {
  FaultConfig cfg;
  cfg.transient_per_read = 0.005;
  cfg.protection = ProtectionScheme::kSecded;
  cfg.seed = 77;
  FaultCampaign c(cfg, kSets, kWays, kLineBytes, kPartitions);

  u64 flips = 0;
  for (int pass = 0; pass < 20; ++pass) {
    for (u32 set = 0; set < kSets; ++set) {
      std::vector<u8> line(kLineBytes, 0);
      c.on_fill(set, 0, line);
      const auto rep = c.on_read(set, 0, line);
      flips += rep.flips;
      if (rep.flips == 1) {
        EXPECT_EQ(rep.corrected, 1u);
      } else if (rep.flips == 2) {
        EXPECT_EQ(rep.detected, 1u);
      } else if (rep.flips >= 3) {
        EXPECT_EQ(rep.silent, rep.flips);
      }
    }
  }
  EXPECT_GT(flips, 0u);
  EXPECT_EQ(c.stats().transient_data_flips, flips);
}

TEST(FaultCampaign, SecdedCorrectsEverySingleDirectionBitFault) {
  // High density so the small direction-bit array (sets*ways*K cells)
  // receives defects at all.
  FaultCampaign c(stuck_config(20000.0, ProtectionScheme::kSecded), kSets,
                  kWays, kLineBytes, kPartitions);
  ASSERT_GT(c.stats().stuck_dir_cells, 0u);

  usize singles = 0;
  for (u32 set = 0; set < kSets; ++set) {
    for (u32 way = 0; way < kWays; ++way) {
      const auto [mask, values] = c.stuck_directions(set, way);
      if (std::popcount(mask) != 1) continue;
      ++singles;
      // Write the opposite of the stuck value so the cell really diverges.
      c.write_directions(set, way, 0);  // stuck-at-1 cells flip to 1
      const auto dr = c.read_directions(set, way);
      EXPECT_EQ(dr.report.flips, 1u);
      EXPECT_EQ(dr.report.corrected, 1u);
      EXPECT_EQ(dr.effective, 0u) << "decoder must see the written mask";
      // Still stuck: the next read corrects it again.
      const auto again = c.read_directions(set, way);
      EXPECT_EQ(again.report.corrected, 1u);
      EXPECT_EQ(again.effective, 0u);
    }
  }
  EXPECT_GT(singles, 0u);
  EXPECT_EQ(c.stats().dir_silent_bits, 0u);
}

TEST(FaultCampaign, ParityDetectsEveryDirectionBitFault) {
  FaultCampaign c(stuck_config(20000.0, ProtectionScheme::kParity), kSets,
                  kWays, kLineBytes, kPartitions);
  for (u32 set = 0; set < kSets; ++set) {
    for (u32 way = 0; way < kWays; ++way) {
      const auto [mask, values] = c.stuck_directions(set, way);
      if (mask == 0) continue;
      c.write_directions(set, way, ~values & mask);
      const auto dr = c.read_directions(set, way);
      // Each flipped direction bit makes its partition group odd: always
      // detected, never corrected, never silent.
      EXPECT_EQ(dr.report.detected, dr.report.flips);
      EXPECT_EQ(dr.report.corrected, 0u);
      EXPECT_EQ(dr.report.silent, 0u);
      EXPECT_EQ(dr.effective, ~values & mask);
    }
  }
  EXPECT_EQ(c.stats().dir_silent_bits, 0u);
}

TEST(FaultCampaign, UnprotectedDirectionFaultDecodesFlippedMask) {
  FaultCampaign c(stuck_config(20000.0, ProtectionScheme::kNone), kSets,
                  kWays, kLineBytes, kPartitions);
  u64 silent = 0;
  for (u32 set = 0; set < kSets; ++set) {
    for (u32 way = 0; way < kWays; ++way) {
      const auto [mask, values] = c.stuck_directions(set, way);
      if (mask == 0) continue;
      c.write_directions(set, way, 0);
      const auto dr = c.read_directions(set, way);
      // The decoder runs with the corrupted mask: whole partitions invert.
      EXPECT_EQ(dr.effective, values);
      EXPECT_EQ(dr.report.silent, dr.report.flips);
      silent += dr.report.silent;
    }
  }
  EXPECT_GT(silent, 0u);
  EXPECT_EQ(c.stats().dir_silent_bits, silent);
}

TEST(FaultCampaign, DeterministicForSeed) {
  const FaultConfig cfg = [] {
    FaultConfig f;
    f.stuck_per_mbit = 200.0;
    f.transient_per_read = 0.002;
    f.protection = ProtectionScheme::kSecded;
    f.seed = 1234;
    return f;
  }();
  FaultCampaign a(cfg, kSets, kWays, kLineBytes, kPartitions);
  FaultCampaign b(cfg, kSets, kWays, kLineBytes, kPartitions);
  for (u32 set = 0; set < kSets; ++set) {
    std::vector<u8> la(kLineBytes, 0xA5), lb(kLineBytes, 0xA5);
    a.on_fill(set, 1, la);
    b.on_fill(set, 1, lb);
    const auto ra = a.on_read(set, 1, la);
    const auto rb = b.on_read(set, 1, lb);
    EXPECT_EQ(ra.flips, rb.flips);
    EXPECT_EQ(la, lb);
  }
  EXPECT_EQ(a.stats().transient_data_flips, b.stats().transient_data_flips);
  EXPECT_EQ(a.stats().silent_bits, b.stats().silent_bits);
}

}  // namespace
}  // namespace cnt
