#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace cnt {
namespace {

TEST(Hierarchy, TypicalConfigValid) {
  const auto cfg = HierarchyConfig::typical();
  EXPECT_NO_THROW(cfg.l1d.validate());
  EXPECT_NO_THROW(cfg.l1i.validate());
  EXPECT_NO_THROW(cfg.l2.validate());
  EXPECT_EQ(cfg.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l2.size_bytes, 256u * 1024);
}

TEST(Hierarchy, RoutesByOp) {
  MainMemory mem;
  Hierarchy h(HierarchyConfig::typical(), mem);
  h.access(MemAccess::read(0x1000));
  h.access(MemAccess::write(0x2000, 1));
  h.access(MemAccess::ifetch(0x400000));
  EXPECT_EQ(h.l1d().stats().accesses, 2u);
  EXPECT_EQ(h.l1i().stats().accesses, 1u);
}

TEST(Hierarchy, L2SeesL1Misses) {
  MainMemory mem;
  Hierarchy h(HierarchyConfig::typical(), mem);
  h.access(MemAccess::read(0x1000));  // L1D miss -> L2 miss -> memory
  h.access(MemAccess::read(0x1000));  // L1D hit, L2 untouched
  EXPECT_EQ(h.l2().stats().accesses, 1u);
  EXPECT_EQ(mem.line_reads(), 1u);
}

TEST(Hierarchy, WithoutL2GoesStraightToMemory) {
  MainMemory mem;
  auto cfg = HierarchyConfig::typical();
  cfg.enable_l2 = false;
  Hierarchy h(cfg, mem);
  EXPECT_FALSE(h.has_l2());
  h.access(MemAccess::read(0x1000));
  EXPECT_EQ(mem.line_reads(), 1u);
}

TEST(Hierarchy, RunReplaysWholeTrace) {
  MainMemory mem;
  Hierarchy h(HierarchyConfig::typical(), mem);
  std::vector<MemAccess> t;
  for (u64 i = 0; i < 100; ++i) t.push_back(MemAccess::read(i * 8));
  h.run(t);
  EXPECT_EQ(h.l1d().stats().accesses, 100u);
}

TEST(Hierarchy, FlushAllReachesMemory) {
  MainMemory mem;
  Hierarchy h(HierarchyConfig::typical(), mem);
  h.access(MemAccess::write(0x3000, 0x5A));
  EXPECT_EQ(mem.peek_word(0x3000, 8), 0u);
  h.flush_all();
  EXPECT_EQ(mem.peek_word(0x3000, 8), 0x5Au);
}

TEST(Hierarchy, InclusionOfDataOnFirstTouch) {
  MainMemory mem;
  mem.write_word(0x4000, 0xABC, 8);
  Hierarchy h(HierarchyConfig::typical(), mem);
  h.access(MemAccess::read(0x4000));
  EXPECT_EQ(h.l1d().peek_word(0x4000, 8), 0xABCu);
  EXPECT_EQ(h.l2().peek_word(0x4000, 8), 0xABCu);
}

TEST(Hierarchy, StressRandomTrafficStaysCoherent) {
  MainMemory mem;
  auto cfg = HierarchyConfig::typical();
  cfg.l1d.size_bytes = 1024;
  cfg.l1d.ways = 2;
  cfg.l2.size_bytes = 4096;
  cfg.l2.ways = 2;
  Hierarchy h(cfg, mem);
  Rng rng(77);
  std::unordered_map<u64, u64> golden;
  for (int i = 0; i < 20000; ++i) {
    const u64 addr = rng.uniform(2048) * 8;
    if (rng.chance(0.5)) {
      const u64 v = rng.next();
      h.access(MemAccess::write(addr, v));
      golden[addr] = v;
    } else {
      h.access(MemAccess::read(addr));
    }
  }
  h.flush_all();
  for (const auto& [addr, v] : golden) {
    ASSERT_EQ(mem.peek_word(addr, 8), v);
  }
}

}  // namespace
}  // namespace cnt
