// Zero-line elision extension tests.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/rng.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace cnt {
namespace {

using C = EnergyCategory;

CacheConfig cfg_small() {
  CacheConfig c;
  c.size_bytes = 4096;
  c.ways = 4;
  c.line_bytes = 64;
  return c;
}

CntConfig zl_cfg() {
  CntConfig c;
  c.zero_line_opt = true;
  return c;
}

struct Rig {
  MainMemory mem;
  Cache cache;
  CntPolicy cnt;
  explicit Rig(CntConfig cfg = zl_cfg())
      : cache(cfg_small(), mem),
        cnt("cnt", TechParams::cnfet(), geometry_of(cfg_small()), cfg) {
    cache.add_sink(cnt);
  }
};

TEST(ZeroLine, FlagAddsOneMetaBit) {
  Rig with;
  CntConfig off;
  CntPolicy without("c", TechParams::cnfet(), geometry_of(cfg_small()), off);
  EXPECT_EQ(with.cnt.array().geometry().meta_bits,
            without.array().geometry().meta_bits + 1);
}

TEST(ZeroLine, ZeroFillSkipsDataArray) {
  Rig r;
  r.cache.access(MemAccess::read(0x1000));  // memory is zero -> zero fill
  EXPECT_EQ(r.cnt.stats().zero_fills, 1u);
  EXPECT_DOUBLE_EQ(r.cnt.ledger().get(C::kDataWrite).in_joules(), 0.0);
  // Flag state visible.
  const u32 set = r.cache.config().set_index(0x1000);
  EXPECT_TRUE(r.cnt.line_state(set, *r.cache.find_way(0x1000)).zero_flag);
}

TEST(ZeroLine, ZeroReadsSkipDataArray) {
  Rig r;
  r.cache.access(MemAccess::read(0x1000));
  const Energy dr_after_fill = r.cnt.ledger().get(C::kDataRead);
  for (int i = 0; i < 50; ++i) r.cache.access(MemAccess::read(0x1000));
  EXPECT_EQ(r.cnt.stats().zero_reads, 50u);
  EXPECT_DOUBLE_EQ(r.cnt.ledger().get(C::kDataRead).in_joules(),
                   dr_after_fill.in_joules());
}

TEST(ZeroLine, NonZeroFillBehavesNormally) {
  Rig r;
  r.mem.poke(0x2000, 0xFF);
  r.cache.access(MemAccess::read(0x2000));
  EXPECT_EQ(r.cnt.stats().zero_fills, 0u);
  EXPECT_GT(r.cnt.ledger().get(C::kDataWrite).in_joules(), 0.0);
  const u32 set = r.cache.config().set_index(0x2000);
  EXPECT_FALSE(r.cnt.line_state(set, *r.cache.find_way(0x2000)).zero_flag);
}

TEST(ZeroLine, StoreMaterializesFlaggedLine) {
  Rig r;
  r.cache.access(MemAccess::read(0x1000));  // flagged
  const Energy dw_before = r.cnt.ledger().get(C::kDataWrite);
  r.cache.access(MemAccess::write(0x1000, 0x1234));
  EXPECT_EQ(r.cnt.stats().zero_materializations, 1u);
  EXPECT_GT(r.cnt.ledger().get(C::kDataWrite).in_joules(),
            dw_before.in_joules());
  const u32 set = r.cache.config().set_index(0x1000);
  EXPECT_FALSE(r.cnt.line_state(set, *r.cache.find_way(0x1000)).zero_flag);
}

TEST(ZeroLine, ZeroStoreToFlaggedLineStaysElided) {
  Rig r;
  r.cache.access(MemAccess::read(0x1000));
  r.cache.access(MemAccess::write(0x1000, 0));  // still all-zero
  EXPECT_EQ(r.cnt.stats().zero_materializations, 0u);
  EXPECT_DOUBLE_EQ(r.cnt.ledger().get(C::kDataWrite).in_joules(), 0.0);
}

TEST(ZeroLine, StoreThatZeroesLineArmsFlag) {
  Rig r;
  r.mem.write_word(0x3000, 0xAB, 8);  // only nonzero word in the line
  r.cache.access(MemAccess::read(0x3000));  // normal fill
  EXPECT_EQ(r.cnt.stats().zero_fills, 0u);
  r.cache.access(MemAccess::write(0x3000, 0));  // line becomes all-zero
  EXPECT_EQ(r.cnt.stats().zero_fills, 1u);
  const u32 set = r.cache.config().set_index(0x3000);
  EXPECT_TRUE(r.cnt.line_state(set, *r.cache.find_way(0x3000)).zero_flag);
}

TEST(ZeroLine, FlaggedVictimWritebackSkipsDataRead) {
  Rig r;
  const auto cfg = cfg_small();
  // Dirty a zero line (write of zero marks dirty functionally).
  r.cache.access(MemAccess::write(0x0, 0));
  EXPECT_EQ(r.cnt.stats().zero_fills, 1u);
  const Energy dr_before = r.cnt.ledger().get(C::kDataRead);
  // Evict it with 4 conflicting non-zero lines.
  const u64 stride = cfg.sets() * cfg.line_bytes;
  for (u64 i = 1; i <= 4; ++i) {
    r.mem.poke(i * stride, 0x1);
    r.cache.access(MemAccess::read(i * stride));
  }
  ASSERT_FALSE(r.cache.find_way(0x0).has_value());
  // The writeback of the flagged victim charged no data read; the four
  // fills charge writes, not reads.
  EXPECT_DOUBLE_EQ(r.cnt.ledger().get(C::kDataRead).in_joules(),
                   dr_before.in_joules());
}

TEST(ZeroLine, DisabledFlagNeverSet) {
  CntConfig off;
  Rig r(off);
  r.cache.access(MemAccess::read(0x1000));
  EXPECT_EQ(r.cnt.stats().zero_fills, 0u);
  const u32 set = r.cache.config().set_index(0x1000);
  EXPECT_FALSE(r.cnt.line_state(set, *r.cache.find_way(0x1000)).zero_flag);
  EXPECT_GT(r.cnt.ledger().get(C::kDataWrite).in_joules(), 0.0);
}

TEST(ZeroLine, SuiteSavingImprovesOrHolds) {
  SimConfig base_cfg;
  base_cfg.with_cmos = base_cfg.with_static = base_cfg.with_ideal = false;
  SimConfig zl = base_cfg;
  zl.cnt.zero_line_opt = true;
  const double base = mean_saving(run_suite(base_cfg, 0.1));
  const double with_zl = mean_saving(run_suite(zl, 0.1));
  EXPECT_GE(with_zl, base - 0.005);
}

TEST(ZeroLine, FunctionalContentsUnaffected) {
  // The flag is an energy-model concept; functional data must be exact.
  Rig r;
  Rng rng(3);
  std::unordered_map<u64, u64> golden;
  for (int i = 0; i < 4000; ++i) {
    const u64 addr = rng.uniform(512) * 8;
    if (rng.chance(0.5)) {
      const u64 v = rng.chance(0.3) ? 0 : rng.next();
      r.cache.access(MemAccess::write(addr, v));
      golden[addr] = v;
    } else {
      r.cache.access(MemAccess::read(addr));
    }
  }
  r.cache.flush();
  for (const auto& [addr, v] : golden) {
    ASSERT_EQ(r.mem.peek_word(addr, 8), v);
  }
}

}  // namespace
}  // namespace cnt
