#include "fault/protection.hpp"

#include <gtest/gtest.h>

#include "fault/stuck_map.hpp"

namespace cnt {
namespace {

TEST(SecdedCheckBits, MatchesHammingPlusParity) {
  // Smallest r with 2^r >= payload + r + 1, plus one overall-parity bit.
  EXPECT_EQ(secded_check_bits(0), 0u);
  EXPECT_EQ(secded_check_bits(1), 3u);    // Hamming(3,1) + parity
  EXPECT_EQ(secded_check_bits(4), 4u);    // Hamming(7,4) + parity
  EXPECT_EQ(secded_check_bits(8), 5u);    // Hamming(12,8) + parity
  EXPECT_EQ(secded_check_bits(64), 8u);   // the classic (72,64) SECDED
  EXPECT_EQ(secded_check_bits(128), 9u);
  EXPECT_EQ(secded_check_bits(256), 10u);
  EXPECT_EQ(secded_check_bits(512), 11u);
}

TEST(ParityCheckBits, OnePerPartition) {
  EXPECT_EQ(parity_check_bits(1), 1u);
  EXPECT_EQ(parity_check_bits(8), 8u);
  EXPECT_EQ(parity_check_bits(64), 64u);
}

TEST(ClassifySecded, ByFlipCount) {
  EXPECT_EQ(classify_secded(0), FaultOutcome::kClean);
  EXPECT_EQ(classify_secded(1), FaultOutcome::kCorrected);
  EXPECT_EQ(classify_secded(2), FaultOutcome::kDetected);
  EXPECT_EQ(classify_secded(3), FaultOutcome::kSilent);
  EXPECT_EQ(classify_secded(7), FaultOutcome::kSilent);
}

TEST(ClassifyParity, ByGroupWeight) {
  EXPECT_EQ(classify_parity(0), FaultOutcome::kClean);
  EXPECT_EQ(classify_parity(1), FaultOutcome::kDetected);
  EXPECT_EQ(classify_parity(2), FaultOutcome::kSilent);
  EXPECT_EQ(classify_parity(3), FaultOutcome::kDetected);
  EXPECT_EQ(classify_parity(4), FaultOutcome::kSilent);
}

TEST(ProtectionSpec, NoneIsFree) {
  const auto spec = make_protection_spec(ProtectionScheme::kNone, 512, 8, true);
  EXPECT_FALSE(spec.enabled());
  EXPECT_EQ(spec.check_bits, 0u);
  EXPECT_EQ(spec.covered_bits, 0u);
}

TEST(ProtectionSpec, ParityCoversDataAndOptionallyDirections) {
  const auto data_only =
      make_protection_spec(ProtectionScheme::kParity, 512, 8, false);
  EXPECT_TRUE(data_only.enabled());
  EXPECT_EQ(data_only.covered_bits, 512u);
  EXPECT_EQ(data_only.check_bits, 8u);

  const auto with_dirs =
      make_protection_spec(ProtectionScheme::kParity, 512, 8, true);
  EXPECT_EQ(with_dirs.covered_bits, 520u);
  EXPECT_EQ(with_dirs.check_bits, 8u);  // dir bit p folds into group p
}

TEST(ProtectionSpec, SecdedWidensWithPayload) {
  const auto data_only =
      make_protection_spec(ProtectionScheme::kSecded, 512, 8, false);
  EXPECT_EQ(data_only.covered_bits, 512u);
  EXPECT_EQ(data_only.check_bits, 11u);

  const auto with_dirs =
      make_protection_spec(ProtectionScheme::kSecded, 512, 8, true);
  EXPECT_EQ(with_dirs.covered_bits, 520u);
  EXPECT_EQ(with_dirs.check_bits, 11u);  // 2^10 >= 520 + 10 + 1 still holds
}

TEST(ProtectionScheme, Names) {
  EXPECT_EQ(to_string(ProtectionScheme::kNone), "none");
  EXPECT_EQ(to_string(ProtectionScheme::kParity), "parity");
  EXPECT_EQ(to_string(ProtectionScheme::kSecded), "secded");
}

TEST(StuckMap, DeterministicForSeed) {
  const StuckMap a(42, 1u << 20, 100.0, 0.5);
  const StuckMap b(42, 1u << 20, 100.0, 0.5);
  const StuckMap c(43, 1u << 20, 100.0, 0.5);
  EXPECT_EQ(a.size(), 100u);  // 100 per Mbit over exactly 1 Mbit
  ASSERT_EQ(a.size(), b.size());
  usize same = 0;
  a.for_range(0, 1u << 20, [&](u64 off, bool val) {
    same += b.count_in(off, 1) != 0;
    (void)val;
  });
  EXPECT_EQ(same, a.size());
  // A different seed places a (overwhelmingly) different pattern.
  usize overlap = 0;
  a.for_range(0, 1u << 20, [&](u64 off, bool) {
    overlap += c.count_in(off, 1) != 0;
  });
  EXPECT_LT(overlap, a.size());
}

TEST(StuckMap, ZeroDensityIsEmpty) {
  const StuckMap m(7, 1u << 20, 0.0, 0.5);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.count_in(0, 1u << 20), 0u);
}

TEST(StuckMap, At1FractionExtremes) {
  const StuckMap ones(9, 1u << 20, 50.0, 1.0);
  ones.for_range(0, 1u << 20, [](u64, bool val) { EXPECT_TRUE(val); });
  const StuckMap zeros(9, 1u << 20, 50.0, 0.0);
  zeros.for_range(0, 1u << 20, [](u64, bool val) { EXPECT_FALSE(val); });
}

}  // namespace
}  // namespace cnt
