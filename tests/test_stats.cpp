#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace cnt {
namespace {

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, KnownValues) {
  Accumulator a;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, SingleValueHasZeroVariance) {
  Accumulator a;
  a.add(3.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
}

TEST(Accumulator, MergeMatchesCombined) {
  Rng rng(21);
  Accumulator all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.gaussian() * 3 + 1;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(GeoMean, KnownValue) {
  GeoMean g;
  g.add(2.0);
  g.add(8.0);
  EXPECT_NEAR(g.value(), 4.0, 1e-12);
}

TEST(GeoMean, EmptyIsZero) {
  GeoMean g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(10.0);  // overflow (hi is exclusive)
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string r = h.render();
  EXPECT_NE(r.find("1"), std::string::npos);
  EXPECT_NE(r.find("2"), std::string::npos);
}

}  // namespace
}  // namespace cnt
