#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <array>

#include "energy/tech_params.hpp"

namespace cnt {
namespace {

CacheStats stats_with(u64 hits, u64 misses) {
  CacheStats s;
  s.accesses = hits + misses;
  s.read_hits = hits;
  s.read_misses = misses;
  return s;
}

TEST(Timing, CycleFormula) {
  TimingParams t;
  t.hit_cycles = 2;
  t.miss_penalty = 20;
  const auto s = stats_with(100, 10);
  EXPECT_EQ(t.cycles(s), 110u * 2 + 10u * 20);
}

TEST(Timing, SecondsScaleWithClock) {
  TimingParams fast, slow;
  fast.clock_ghz = 4.0;
  slow.clock_ghz = 2.0;
  const auto s = stats_with(1000, 50);
  EXPECT_NEAR(slow.seconds(s) / fast.seconds(s), 2.0, 1e-12);
}

TEST(Timing, ZeroAccesses) {
  TimingParams t;
  const CacheStats s;
  EXPECT_EQ(t.cycles(s), 0u);
  EXPECT_DOUBLE_EQ(t.seconds(s), 0.0);
}

TEST(Metrics, EdpProduct) {
  EXPECT_DOUBLE_EQ(edp(nJ(2.0), 3.0), 6e-9);
}

TEST(Metrics, LeakageEnergy) {
  const Energy e = leakage_energy(2e-3, 5.0);
  EXPECT_DOUBLE_EQ(e.in_joules(), 1e-2);
}

TEST(Dram, TrafficEnergyCountsAllKinds) {
  MainMemory mem;
  std::array<u8, 64> line{};
  mem.read_line(0, line);
  mem.read_line(64, line);
  mem.write_line(0, line);
  mem.write_word(8, 1, 8);

  DramParams d;
  const Energy expect = 2.0 * d.per_line_read + 1.0 * d.per_line_write +
                        1.0 * d.per_word_write;
  EXPECT_DOUBLE_EQ(d.traffic_energy(mem).in_joules(), expect.in_joules());
}

TEST(Dram, NoTrafficNoEnergy) {
  MainMemory mem;
  EXPECT_DOUBLE_EQ(DramParams{}.traffic_energy(mem).in_joules(), 0.0);
}

TEST(Tech, CnfetClockFasterThanCmos) {
  EXPECT_GT(TechParams::cnfet().clock_ghz, TechParams::cmos().clock_ghz);
}

}  // namespace
}  // namespace cnt
