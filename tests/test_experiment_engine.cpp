// ExperimentEngine + SweepSpec: grid expansion, the parallel==serial
// determinism contract (bit-identical energies), parity with the legacy
// run_suite() loop, failure isolation, and the CNT_JOBS/--jobs option
// chain.
#include "exec/engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/options.hpp"
#include "exec/result_sink.hpp"
#include "exec/sweep.hpp"
#include "sim/report.hpp"
#include "trace/workload_suite.hpp"

namespace cnt::exec {
namespace {

constexpr double kScale = 0.02;  // tiny traces keep the suite fast

SweepSpec small_spec() {
  SimConfig base;
  base.with_cmos = base.with_static = base.with_ideal = false;
  SweepSpec spec;
  spec.base(base)
      .scale(kScale)
      .workloads({"stream_copy", "zipf_kv"})
      .axis("window", std::vector<usize>{7, 15},
            [](SimConfig& cfg, usize w) { cfg.cnt.window = w; });
  return spec;
}

TEST(SweepSpec, ExpansionShape) {
  const auto jobs = small_spec().expand();
  ASSERT_EQ(jobs.size(), 4u);  // 2 windows x 2 workloads
  EXPECT_EQ(small_spec().job_count(), 4u);

  // Axis-major order, workloads innermost, dense ids.
  EXPECT_EQ(jobs[0].tag, "window=7");
  EXPECT_EQ(jobs[0].workload, "stream_copy");
  EXPECT_EQ(jobs[1].tag, "window=7");
  EXPECT_EQ(jobs[1].workload, "zipf_kv");
  EXPECT_EQ(jobs[2].tag, "window=15");
  EXPECT_EQ(jobs[3].tag, "window=15");
  for (usize i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
  }
  EXPECT_EQ(jobs[0].config.cnt.window, 7u);
  EXPECT_EQ(jobs[2].config.cnt.window, 15u);
  EXPECT_EQ(jobs[0].scale, kScale);
}

TEST(SweepSpec, MultiAxisCartesianProduct) {
  SweepSpec spec;
  spec.scale(kScale)
      .workload("stream_copy")
      .axis("window", std::vector<usize>{7, 15},
            [](SimConfig& cfg, usize w) { cfg.cnt.window = w; })
      .axis("partitions", std::vector<usize>{1, 4, 8},
            [](SimConfig& cfg, usize k) { cfg.cnt.partitions = k; });
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].tag, "window=7,partitions=1");
  EXPECT_EQ(jobs[1].tag, "window=7,partitions=4");
  EXPECT_EQ(jobs[2].tag, "window=7,partitions=8");
  EXPECT_EQ(jobs[3].tag, "window=15,partitions=1");
  EXPECT_EQ(jobs[3].config.cnt.window, 15u);
  EXPECT_EQ(jobs[3].config.cnt.partitions, 1u);
}

TEST(SweepSpec, DoubleAxisTagsAndSeeds) {
  SweepSpec spec;
  spec.scale(kScale)
      .workload("stream_copy")
      .seed_offsets({0, 1})
      .axis("asym", std::vector<double>{0.25, 1.0},
            [](SimConfig&, double) {});
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 4u);  // 2 values x 2 seeds x 1 workload
  EXPECT_EQ(jobs[0].tag, "asym=0.25");
  EXPECT_EQ(jobs[0].seed_offset, 0u);
  EXPECT_EQ(jobs[1].seed_offset, 1u);
  EXPECT_EQ(jobs[2].tag, "asym=1");
}

TEST(SweepSpec, DefaultsToSuiteWorkloads) {
  SweepSpec spec;
  spec.scale(kScale);
  EXPECT_EQ(spec.job_count(), suite_names().size());
}

// The tentpole guarantee: a parallel run is bit-identical to --jobs 1.
TEST(ExperimentEngine, ParallelMatchesSerialBitExactly) {
  const auto spec = small_spec();
  const auto serial = ExperimentEngine({.jobs = 1}).run(spec);
  const auto parallel = ExperimentEngine({.jobs = 4}).run(spec);

  ASSERT_EQ(serial.size(), parallel.size());
  for (usize i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& p = parallel[i];
    ASSERT_TRUE(s.ok) << s.error;
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(s.job.id, p.job.id);
    EXPECT_EQ(s.job.workload, p.job.workload);
    EXPECT_EQ(s.job.tag, p.job.tag);
    // Bit-identical energies, not approximately-equal ones.
    ASSERT_EQ(s.result.policies.size(), p.result.policies.size());
    for (usize j = 0; j < s.result.policies.size(); ++j) {
      EXPECT_EQ(s.result.policies[j].name, p.result.policies[j].name);
      EXPECT_EQ(s.result.policies[j].total().in_joules(),
                p.result.policies[j].total().in_joules());
    }
    EXPECT_EQ(s.result.cache_stats.accesses, p.result.cache_stats.accesses);
    EXPECT_EQ(s.result.cache_stats.hits(), p.result.cache_stats.hits());
  }
}

// And the JSONL telemetry (timing off) is byte-identical too.
TEST(ExperimentEngine, ParallelJsonlMatchesSerialByteExactly) {
  const std::string serial_path =
      ::testing::TempDir() + "cnt_engine_serial.jsonl";
  const std::string parallel_path =
      ::testing::TempDir() + "cnt_engine_parallel.jsonl";
  const auto spec = small_spec();
  (void)ExperimentEngine(
      {.jobs = 1, .jsonl_path = serial_path, .jsonl_timing = false})
      .run(spec);
  (void)ExperimentEngine(
      {.jobs = 4, .jsonl_path = parallel_path, .jsonl_timing = false})
      .run(spec);

  std::ifstream a(serial_path), b(parallel_path);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  ASSERT_FALSE(sa.str().empty());
  EXPECT_EQ(sa.str(), sb.str());
}

// Engine results match the legacy serial loop the benches used to run.
TEST(ExperimentEngine, MatchesLegacyRunSuite) {
  SimConfig cfg;
  cfg.cnt.window = 7;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;

  const auto legacy = run_suite(cfg, kScale);

  SweepSpec spec;
  spec.base(cfg).scale(kScale).suite();
  const auto outcomes = ExperimentEngine({.jobs = 3}).run(spec);
  const auto groups = group_by_tag(outcomes);
  ASSERT_EQ(groups.size(), 1u);
  const auto results = results_of(groups[0].outcomes);

  ASSERT_EQ(results.size(), legacy.size());
  for (usize i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].workload, legacy[i].workload);
    EXPECT_EQ(results[i].energy(kPolicyCnt).in_joules(),
              legacy[i].energy(kPolicyCnt).in_joules());
    EXPECT_EQ(results[i].energy(kPolicyBaseline).in_joules(),
              legacy[i].energy(kPolicyBaseline).in_joules());
  }
  EXPECT_EQ(mean_saving(results), mean_saving(legacy));
}

TEST(ExperimentEngine, FailedJobIsIsolated) {
  std::vector<Job> jobs(3);
  jobs[0].workload = "stream_copy";
  jobs[0].scale = kScale;
  jobs[1].workload = "no_such_workload";
  jobs[1].scale = kScale;
  jobs[2].workload = "zipf_kv";
  jobs[2].scale = kScale;

  const auto outcomes = ExperimentEngine({.jobs = 2}).run(jobs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("no_such_workload"), std::string::npos);
  EXPECT_TRUE(outcomes[2].ok);

  // results_of refuses to aggregate over a failure, naming the job.
  const auto groups = group_by_tag(outcomes);
  ASSERT_EQ(groups.size(), 1u);  // all share the empty tag
  EXPECT_THROW((void)results_of(groups[0].outcomes), std::runtime_error);
}

TEST(ExperimentEngine, GroupByTagPreservesFirstAppearanceOrder) {
  std::vector<JobOutcome> outcomes(5);
  const char* tags[] = {"b", "a", "b", "c", "a"};
  for (usize i = 0; i < 5; ++i) {
    outcomes[i].job.id = i;
    outcomes[i].job.tag = tags[i];
  }
  const auto groups = group_by_tag(outcomes);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].tag, "b");
  EXPECT_EQ(groups[1].tag, "a");
  EXPECT_EQ(groups[2].tag, "c");
  EXPECT_EQ(groups[0].outcomes.size(), 2u);
  EXPECT_EQ(groups[0].outcomes[1]->job.id, 2u);
}

TEST(Options, JobsPrecedenceChain) {
  unsetenv("CNT_JOBS");
  EXPECT_EQ(jobs_from_env(0), 0u);
  EXPECT_EQ(jobs_from_env(3), 3u);

  setenv("CNT_JOBS", "6", 1);
  EXPECT_EQ(jobs_from_env(0), 6u);
  EXPECT_EQ(resolve_jobs(0), 6u);
  EXPECT_EQ(resolve_jobs(2), 2u);  // explicit beats env

  setenv("CNT_JOBS", "garbage", 1);
  EXPECT_EQ(jobs_from_env(4), 4u);

  const char* argv1[] = {"bench", "--jobs", "5"};
  EXPECT_EQ(jobs_from_args(3, argv1, 0), 5u);
  const char* argv2[] = {"bench", "--jobs=7"};
  EXPECT_EQ(jobs_from_args(2, argv2, 0), 7u);
  const char* argv3[] = {"bench", "-j", "2"};
  EXPECT_EQ(jobs_from_args(3, argv3, 0), 2u);

  setenv("CNT_JOBS", "9", 1);
  const char* argv4[] = {"bench", "--other"};
  EXPECT_EQ(jobs_from_args(2, argv4, 0), 9u);  // falls back to env
  EXPECT_EQ(jobs_from_args(3, argv1, 0), 5u);  // flag beats env

  unsetenv("CNT_JOBS");
  EXPECT_GE(resolve_jobs(0), 1u);  // hardware fallback
  EXPECT_GE(hardware_jobs(), 1u);
}

}  // namespace
}  // namespace cnt::exec
