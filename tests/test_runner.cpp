#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/report.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

TEST(SimConfig, DefaultsMatchPaperSetup) {
  const SimConfig cfg;
  EXPECT_EQ(cfg.cache.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.cache.ways, 4u);
  EXPECT_EQ(cfg.cache.line_bytes, 64u);
  EXPECT_EQ(cfg.cnt.window, 15u);  // the authors' default checkpoint
  EXPECT_EQ(cfg.tech.name, "CNFET-16");
  EXPECT_EQ(cfg.cmos_tech.name, "CMOS-16");
}

TEST(Simulate, ProducesAllPolicies) {
  const SimConfig cfg;
  const auto res = simulate(build_workload("zipf_kv", 0.1), cfg);
  EXPECT_EQ(res.workload, "zipf_kv");
  EXPECT_NE(res.find(kPolicyCmos), nullptr);
  EXPECT_NE(res.find(kPolicyBaseline), nullptr);
  EXPECT_NE(res.find(kPolicyStatic), nullptr);
  EXPECT_NE(res.find(kPolicyCnt), nullptr);
  EXPECT_NE(res.find(kPolicyIdeal), nullptr);
  EXPECT_EQ(res.find("nope"), nullptr);
  EXPECT_THROW((void)res.energy("nope"), std::out_of_range);
}

TEST(Simulate, OptionalPoliciesCanBeDisabled) {
  SimConfig cfg;
  cfg.with_cmos = false;
  cfg.with_static = false;
  cfg.with_ideal = false;
  const auto res = simulate(build_workload("stream_copy", 0.1), cfg);
  EXPECT_EQ(res.policies.size(), 2u);
  EXPECT_NE(res.find(kPolicyBaseline), nullptr);
  EXPECT_NE(res.find(kPolicyCnt), nullptr);
}

TEST(Simulate, CacheStatsPopulated) {
  const SimConfig cfg;
  const auto res = simulate(build_workload("pointer_chase", 0.1), cfg);
  EXPECT_GT(res.cache_stats.accesses, 0u);
  EXPECT_GT(res.cache_stats.hits(), 0u);
  EXPECT_GT(res.trace_stats.accesses, 0u);
}

TEST(Simulate, InvariantOrderings) {
  // For every workload at small scale: ideal <= cnt reasonably bounded,
  // and CMOS > CNFET baseline ("power-hungry CMOS").
  const SimConfig cfg;
  for (const auto& name : {"zipf_kv", "text_tokenize", "stream_copy"}) {
    const auto res = simulate(build_workload(name, 0.1), cfg);
    EXPECT_LT(res.energy(kPolicyIdeal).in_joules(),
              res.energy(kPolicyBaseline).in_joules())
        << name;
    EXPECT_GT(res.energy(kPolicyCmos).in_joules(),
              res.energy(kPolicyBaseline).in_joules())
        << name;
    // CNT never does worse than 10% over baseline on any suite workload.
    EXPECT_LT(res.energy(kPolicyCnt).in_joules(),
              1.10 * res.energy(kPolicyBaseline).in_joules())
        << name;
  }
}

TEST(Simulate, SavingHelper) {
  const SimConfig cfg;
  const auto res = simulate(build_workload("zipf_kv", 0.1), cfg);
  const double s = res.saving(kPolicyCnt);
  EXPECT_GT(s, -0.2);
  EXPECT_LT(s, 1.0);
  EXPECT_DOUBLE_EQ(res.saving(kPolicyBaseline), 0.0);  // self vs self
}

TEST(Simulate, DeterministicAcrossRuns) {
  const SimConfig cfg;
  const auto a = simulate(build_workload("hash_join", 0.1), cfg);
  const auto b = simulate(build_workload("hash_join", 0.1), cfg);
  EXPECT_DOUBLE_EQ(a.energy(kPolicyCnt).in_joules(),
                   b.energy(kPolicyCnt).in_joules());
  EXPECT_DOUBLE_EQ(a.energy(kPolicyBaseline).in_joules(),
                   b.energy(kPolicyBaseline).in_joules());
}

TEST(Report, SavingsTableRendersAllWorkloads) {
  SimConfig cfg;
  cfg.with_cmos = false;
  std::vector<SimResult> results;
  results.push_back(simulate(build_workload("stream_copy", 0.05), cfg));
  results.push_back(simulate(build_workload("zipf_kv", 0.05), cfg));
  const std::string table = savings_table(results);
  EXPECT_NE(table.find("stream_copy"), std::string::npos);
  EXPECT_NE(table.find("zipf_kv"), std::string::npos);
  EXPECT_NE(table.find("mean"), std::string::npos);
}

TEST(Report, BreakdownTableShowsCntCategories) {
  const SimConfig cfg;
  const auto res = simulate(build_workload("zipf_kv", 0.05), cfg);
  const std::string table = breakdown_table(res);
  EXPECT_NE(table.find("data_read"), std::string::npos);
  EXPECT_NE(table.find("encoder_logic"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(Report, MeanSavingMatchesManualAverage) {
  SimConfig cfg;
  cfg.with_cmos = false;
  cfg.with_static = false;
  cfg.with_ideal = false;
  std::vector<SimResult> results;
  results.push_back(simulate(build_workload("stream_copy", 0.05), cfg));
  results.push_back(simulate(build_workload("zipf_kv", 0.05), cfg));
  const double manual =
      (results[0].saving(kPolicyCnt) + results[1].saving(kPolicyCnt)) / 2.0;
  EXPECT_NEAR(mean_saving(results), manual, 1e-12);
}

TEST(Report, CsvWritten) {
  SimConfig cfg;
  cfg.with_cmos = false;
  std::vector<SimResult> results;
  results.push_back(simulate(build_workload("stream_copy", 0.05), cfg));
  const std::string path = ::testing::TempDir() + "savings_test.csv";
  write_savings_csv(results, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("workload"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cnt
