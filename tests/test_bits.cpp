#include "common/bits.hpp"

#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "common/rng.hpp"

namespace cnt {
namespace {

TEST(Bits, PopcountEmpty) {
  EXPECT_EQ(popcount(std::span<const u8>{}), 0u);
}

TEST(Bits, PopcountKnownPatterns) {
  const std::array<u8, 4> all_ones{0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_EQ(popcount(all_ones), 32u);
  const std::array<u8, 4> zeros{0, 0, 0, 0};
  EXPECT_EQ(popcount(zeros), 0u);
  const std::array<u8, 3> mixed{0x01, 0x03, 0x07};
  EXPECT_EQ(popcount(mixed), 6u);
}

TEST(Bits, PopcountCrossesWordBoundary) {
  // 13 bytes forces both the 8-byte fast path and the tail loop.
  std::array<u8, 13> buf{};
  buf.fill(0xAA);  // 4 ones per byte
  EXPECT_EQ(popcount(buf), 13u * 4);
}

TEST(Bits, PopcountRangeMatchesNaive) {
  Rng rng(42);
  std::array<u8, 16> buf{};
  for (auto& b : buf) b = rng.next_byte();
  for (usize lo = 0; lo <= 128; lo += 7) {
    for (usize hi = lo; hi <= 128; hi += 11) {
      usize naive = 0;
      for (usize i = lo; i < hi; ++i) naive += get_bit(buf, i) ? 1u : 0u;
      EXPECT_EQ(popcount_range(buf, lo, hi), naive)
          << "range [" << lo << ", " << hi << ")";
    }
  }
}

TEST(Bits, InvertIsInvolutive) {
  Rng rng(7);
  std::array<u8, 32> buf{};
  for (auto& b : buf) b = rng.next_byte();
  const auto orig = buf;
  invert(buf);
  for (usize i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], static_cast<u8>(~orig[i] & 0xff));
  }
  invert(buf);
  EXPECT_EQ(buf, orig);
}

TEST(Bits, InvertRangeOnlyTouchesRange) {
  std::array<u8, 8> buf{};
  invert_range(buf, 10, 22);
  for (usize i = 0; i < 64; ++i) {
    EXPECT_EQ(get_bit(buf, i), i >= 10 && i < 22) << "bit " << i;
  }
}

TEST(Bits, InvertRangeEmptyIsNoop) {
  std::array<u8, 4> buf{0x12, 0x34, 0x56, 0x78};
  const auto orig = buf;
  invert_range(buf, 9, 9);
  EXPECT_EQ(buf, orig);
}

TEST(Bits, InvertRangeWithinOneByte) {
  std::array<u8, 2> buf{};
  invert_range(buf, 2, 5);
  EXPECT_EQ(buf[0], 0b0001'1100);
  EXPECT_EQ(buf[1], 0);
}

TEST(Bits, InvertedReturnsComplement) {
  const std::array<u8, 3> buf{0x00, 0xFF, 0x0F};
  const auto inv = inverted(buf);
  EXPECT_EQ(inv, (std::vector<u8>{0xFF, 0x00, 0xF0}));
}

TEST(Bits, HammingDistance) {
  const std::array<u8, 3> a{0x00, 0xFF, 0x0F};
  const std::array<u8, 3> b{0x00, 0x00, 0xFF};
  EXPECT_EQ(hamming_distance(a, a), 0u);
  EXPECT_EQ(hamming_distance(a, b), 8u + 4u);
}

TEST(Bits, Bit1Density) {
  const std::array<u8, 2> half{0xF0, 0x0F};
  EXPECT_DOUBLE_EQ(bit1_density(half), 0.5);
  EXPECT_DOUBLE_EQ(bit1_density(std::span<const u8>{}), 0.0);
}

TEST(Bits, GetSetBitRoundTrip) {
  std::array<u8, 4> buf{};
  set_bit(buf, 0, true);
  set_bit(buf, 13, true);
  set_bit(buf, 31, true);
  EXPECT_TRUE(get_bit(buf, 0));
  EXPECT_TRUE(get_bit(buf, 13));
  EXPECT_TRUE(get_bit(buf, 31));
  EXPECT_EQ(popcount(buf), 3u);
  set_bit(buf, 13, false);
  EXPECT_FALSE(get_bit(buf, 13));
  EXPECT_EQ(popcount(buf), 2u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Bits, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_EQ(log2_exact(1ULL << 33), 33u);
}

TEST(Bits, BitsToHold) {
  EXPECT_EQ(bits_to_hold(0), 1u);
  EXPECT_EQ(bits_to_hold(1), 1u);
  EXPECT_EQ(bits_to_hold(2), 2u);
  EXPECT_EQ(bits_to_hold(14), 4u);  // W=15 counter counts 0..14
  EXPECT_EQ(bits_to_hold(15), 4u);
  EXPECT_EQ(bits_to_hold(16), 5u);
}

// Property sweep: popcount_range over the whole buffer equals popcount.
class BitsRangeProperty : public ::testing::TestWithParam<usize> {};

TEST_P(BitsRangeProperty, FullRangeEqualsPopcount) {
  Rng rng(GetParam());
  std::vector<u8> buf(GetParam() % 67 + 1);
  for (auto& b : buf) b = rng.next_byte();
  EXPECT_EQ(popcount_range(buf, 0, buf.size() * 8), popcount(buf));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsRangeProperty,
                         ::testing::Range<usize>(0, 24));

}  // namespace
}  // namespace cnt
