// Extra (non-suite) workload generators: btree_lookup, rle_compress.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/analysis.hpp"
#include "sim/runner.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

TEST(Btree, WellFormedAndDeterministic) {
  const Workload a = build_workload("btree_lookup", 0.2);
  const Workload b = build_workload("btree_lookup", 0.2);
  EXPECT_TRUE(a.trace.well_formed());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_GT(a.trace.size(), 10000u);
  for (usize i = 0; i < a.trace.size(); i += 211) {
    EXPECT_EQ(a.trace[i].addr, b.trace[i].addr);
  }
}

TEST(Btree, ReadOnly) {
  const auto s = build_workload("btree_lookup", 0.1).trace.stats();
  EXPECT_EQ(s.writes, 0u);
  EXPECT_GT(s.reads, 0u);
}

TEST(Btree, UpperLevelsAreHot) {
  // The root node's tenure should absorb many accesses; leaves are cold.
  CacheConfig cfg;  // default 32K
  const auto rs =
      analyze_residency(build_workload("btree_lookup", 0.2), cfg, 15);
  EXPECT_GT(rs.traffic_in_long_tenures, 0.3);
  EXPECT_LT(rs.long_tenure_fraction, 0.7);  // but most tenures are cold
}

TEST(Btree, InitCoversEveryLevel) {
  gen::BtreeParams p;
  p.lookups = 10;
  const Workload w = gen::btree_lookup(p);
  EXPECT_EQ(w.init.size(), p.levels);
  // All reads must land inside init segments.
  for (const auto& a : w.trace) {
    bool covered = false;
    for (const auto& seg : w.init) {
      covered |= a.addr >= seg.base &&
                 a.addr + a.size <= seg.base + seg.bytes.size();
    }
    ASSERT_TRUE(covered) << std::hex << a.addr;
  }
}

TEST(Rle, WellFormedWithByteAccesses) {
  const Workload w = build_workload("rle_compress", 0.2);
  EXPECT_TRUE(w.trace.well_formed());
  for (usize i = 0; i < w.trace.size(); i += 97) {
    EXPECT_EQ(w.trace[i].size, 1u);  // byte-oriented kernel
  }
}

TEST(Rle, CompressionRatioReflectsRunLength) {
  gen::RleParams longruns, shortruns;
  longruns.input_bytes = 16 * 1024;
  longruns.run_continue_prob = 0.97;
  shortruns = longruns;
  shortruns.run_continue_prob = 0.5;
  const auto sl = gen::rle_compress(longruns).trace.stats();
  const auto ss = gen::rle_compress(shortruns).trace.stats();
  // Short runs produce far more output writes per input byte.
  EXPECT_LT(sl.write_fraction, ss.write_fraction);
  EXPECT_LT(sl.write_fraction, 0.2);
}

TEST(Rle, RunsEncodeInputLength) {
  gen::RleParams p;
  p.input_bytes = 8192;
  const Workload w = gen::rle_compress(p);
  // Sum of count bytes written must equal the input length.
  u64 total = 0;
  const auto& trace = w.trace;
  for (usize i = 0; i < trace.size(); ++i) {
    // count bytes are the even-offset output writes (addr parity in the
    // output region, first of each pair).
    if (trace[i].op == MemOp::kWrite &&
        (trace[i].addr - 0x2000'0000) % 2 == 0) {
      total += trace[i].value & 0xFF;
    }
  }
  EXPECT_EQ(total, p.input_bytes);
}

TEST(ExtraWorkloads, SimulateEndToEnd) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  for (const char* name : {"btree_lookup", "rle_compress"}) {
    const auto res = simulate(build_workload(name, 0.1), cfg);
    EXPECT_GT(res.cache_stats.accesses, 0u) << name;
    EXPECT_TRUE(std::isfinite(res.saving(kPolicyCnt))) << name;
    // Both are integer/byte-structured: adaptive encoding should help.
    EXPECT_GT(res.saving(kPolicyCnt), 0.0) << name;
  }
}

}  // namespace
}  // namespace cnt
