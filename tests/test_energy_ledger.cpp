#include "energy/energy_ledger.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

using C = EnergyCategory;

TEST(EnergyLedger, StartsEmpty) {
  EnergyLedger l;
  EXPECT_DOUBLE_EQ(l.total().in_joules(), 0.0);
  EXPECT_EQ(l.count(C::kDataRead), 0u);
}

TEST(EnergyLedger, ChargeAccumulates) {
  EnergyLedger l;
  l.charge(C::kDataRead, pJ(1.0));
  l.charge(C::kDataRead, pJ(2.0));
  l.charge(C::kTagRead, pJ(0.5));
  EXPECT_DOUBLE_EQ(l.get(C::kDataRead).in_picojoules(), 3.0);
  EXPECT_EQ(l.count(C::kDataRead), 2u);
  EXPECT_DOUBLE_EQ(l.total().in_picojoules(), 3.5);
}

TEST(EnergyLedger, TotalIsSumOfAllCategories) {
  EnergyLedger l;
  for (usize i = 0; i < static_cast<usize>(C::kCount); ++i) {
    l.charge(static_cast<C>(i), fJ(1.0));
  }
  EXPECT_NEAR(l.total().in_femtojoules(),
              static_cast<double>(static_cast<usize>(C::kCount)), 1e-9);
}

TEST(EnergyLedger, ArrayVsOverheadPartition) {
  EnergyLedger l;
  l.charge(C::kDataRead, pJ(1.0));
  l.charge(C::kDecode, pJ(1.0));
  l.charge(C::kEncoderLogic, pJ(2.0));
  l.charge(C::kReencode, pJ(3.0));
  EXPECT_DOUBLE_EQ(l.array_total().in_picojoules(), 2.0);
  EXPECT_DOUBLE_EQ(l.overhead_total().in_picojoules(), 5.0);
  EXPECT_DOUBLE_EQ((l.array_total() + l.overhead_total()).in_picojoules(),
                   l.total().in_picojoules());
}

TEST(EnergyLedger, MergeAddsBoth) {
  EnergyLedger a, b;
  a.charge(C::kDataWrite, pJ(1.0));
  b.charge(C::kDataWrite, pJ(2.0));
  b.charge(C::kFifo, pJ(4.0));
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(C::kDataWrite).in_picojoules(), 3.0);
  EXPECT_DOUBLE_EQ(a.get(C::kFifo).in_picojoules(), 4.0);
  EXPECT_EQ(a.count(C::kDataWrite), 2u);
}

TEST(EnergyLedger, ResetClears) {
  EnergyLedger l;
  l.charge(C::kOutput, pJ(1.0));
  l.reset();
  EXPECT_DOUBLE_EQ(l.total().in_joules(), 0.0);
  EXPECT_EQ(l.count(C::kOutput), 0u);
}

TEST(EnergyLedger, CategoryNamesUniqueAndNonEmpty) {
  for (usize i = 0; i < static_cast<usize>(C::kCount); ++i) {
    const auto name = to_string(static_cast<C>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
    for (usize j = i + 1; j < static_cast<usize>(C::kCount); ++j) {
      EXPECT_NE(name, to_string(static_cast<C>(j)));
    }
  }
}

}  // namespace
}  // namespace cnt
