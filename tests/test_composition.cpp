// Kitchen-sink composition: every optional feature enabled at once must
// still satisfy the core invariants (functional correctness is untouched
// by energy-model options; savings stay sane; stats stay consistent).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

SimConfig kitchen_sink() {
  SimConfig cfg;
  cfg.cache.way_prediction = true;
  cfg.cache.sector_writeback = true;
  cfg.cache.replacement = ReplKind::kTreePlru;
  cfg.cnt.history_scope = HistoryScope::kPerSet;
  cfg.cnt.zero_line_opt = true;
  cfg.cnt.delta_t = 0.05;
  cfg.cnt.partitions = 16;
  cfg.cnt.window = 31;
  return cfg;
}

TEST(Composition, AllFeaturesTogetherRunTheSuite) {
  const auto results = run_suite(kitchen_sink(), 0.1);
  ASSERT_EQ(results.size(), 10u);
  for (const auto& r : results) {
    EXPECT_TRUE(std::isfinite(r.energy(kPolicyCnt).in_joules())) << r.workload;
    EXPECT_GT(r.energy(kPolicyCnt).in_joules(), 0.0) << r.workload;
    // Nothing pathological: savings within a broad sanity band.
    const double s = r.saving(kPolicyCnt);
    EXPECT_GT(s, -0.15) << r.workload;
    EXPECT_LT(s, 0.9) << r.workload;
  }
  // The combination should still clearly save on average.
  EXPECT_GT(mean_saving(results), 0.10);
}

TEST(Composition, AllFeaturesMatchBaselineFunctionally) {
  // The same workload through the kitchen-sink config and the default one
  // must produce identical *functional* cache statistics except where the
  // configs differ functionally (replacement policy changes hits), so pin
  // replacement and compare exactly.
  auto a_cfg = kitchen_sink();
  a_cfg.cache.replacement = ReplKind::kLru;
  SimConfig b_cfg;  // defaults, LRU

  const Workload w = build_workload("zipf_kv", 0.1);
  const auto a = simulate(w, a_cfg);
  const auto b = simulate(w, b_cfg);
  EXPECT_EQ(a.cache_stats.hits(), b.cache_stats.hits());
  EXPECT_EQ(a.cache_stats.misses(), b.cache_stats.misses());
  EXPECT_EQ(a.cache_stats.writebacks, b.cache_stats.writebacks);
}

TEST(Composition, IdealStillBoundsEverything) {
  auto cfg = kitchen_sink();
  // The zero-line flag can legitimately beat the "ideal" *array* bound
  // (it skips the array entirely), so compare with it off.
  cfg.cnt.zero_line_opt = false;
  for (const char* name : {"zipf_kv", "stream_copy", "matmul"}) {
    const auto res = simulate(build_workload(name, 0.1), cfg);
    EXPECT_LE(res.energy(kPolicyIdeal).in_joules(),
              res.energy(kPolicyCnt).in_joules() * 1.000001)
        << name;
  }
}

}  // namespace
}  // namespace cnt
