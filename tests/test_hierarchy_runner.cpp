#include "sim/hierarchy_runner.hpp"

#include <gtest/gtest.h>

#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

TEST(Interleave, MixesAtRequestedRatio) {
  Trace code("c"), data("d");
  for (u64 i = 0; i < 10; ++i) code.push(MemAccess::ifetch(0x1000 + i * 8));
  for (u64 i = 0; i < 4; ++i) data.push(MemAccess::read(0x2000 + i * 8));
  const Trace merged = interleave(code, data, 2);
  EXPECT_EQ(merged.size(), 14u);
  // Pattern: c c d c c d c c d c c d c c (tail of code appended).
  EXPECT_EQ(merged[0].op, MemOp::kIFetch);
  EXPECT_EQ(merged[1].op, MemOp::kIFetch);
  EXPECT_EQ(merged[2].op, MemOp::kRead);
  EXPECT_EQ(merged[5].op, MemOp::kRead);
}

TEST(Interleave, HandlesEmptyStreams) {
  Trace code("c"), data("d");
  for (u64 i = 0; i < 3; ++i) code.push(MemAccess::ifetch(i * 8));
  EXPECT_EQ(interleave(code, Trace{}, 2).size(), 3u);
  EXPECT_EQ(interleave(Trace{}, code, 2).size(), 3u);
  EXPECT_EQ(interleave(Trace{}, Trace{}, 2).size(), 0u);
}

TEST(Interleave, PreservesEveryAccess) {
  const Workload code = build_workload("ifetch", 0.05);
  const Workload data = build_workload("zipf_kv", 0.05);
  const Trace merged = interleave(code.trace, data.trace, 3);
  EXPECT_EQ(merged.size(), code.trace.size() + data.trace.size());
  usize fetches = 0;
  for (const auto& a : merged) fetches += a.op == MemOp::kIFetch;
  EXPECT_EQ(fetches, code.trace.size());
}

class HierarchyRunnerTest : public ::testing::Test {
 protected:
  static Workload code() { return build_workload("ifetch", 0.1); }
  static Workload data() { return build_workload("zipf_kv", 0.1); }
};

TEST_F(HierarchyRunnerTest, ProducesAllLevels) {
  HierarchyRunConfig cfg;
  const auto res = run_hierarchy(cfg, code(), data());
  ASSERT_EQ(res.levels.size(), 3u);
  EXPECT_EQ(res.levels[0].level, "L1I");
  EXPECT_EQ(res.levels[1].level, "L1D");
  EXPECT_EQ(res.levels[2].level, "L2");
  EXPECT_GT(res.cache_total().in_joules(), 0.0);
  EXPECT_GT(res.dram_energy.in_joules(), 0.0);
  EXPECT_GT(res.level("L1I").stats.accesses, 0u);
  EXPECT_THROW((void)res.level("L3"), std::out_of_range);
}

TEST_F(HierarchyRunnerTest, AdaptiveL1BeatsBaselineL1) {
  HierarchyRunConfig on, off;
  off.cnt_at_l1i = off.cnt_at_l1d = false;
  const auto with = run_hierarchy(on, code(), data());
  const auto without = run_hierarchy(off, code(), data());
  // Same functional behaviour...
  EXPECT_EQ(with.level("L1D").stats.hits(),
            without.level("L1D").stats.hits());
  EXPECT_EQ(with.dram_energy.in_joules(), without.dram_energy.in_joules());
  // ...lower L1 energy with the adaptive policy.
  EXPECT_LT(with.level("L1D").ledger.total().in_joules(),
            without.level("L1D").ledger.total().in_joules());
  EXPECT_LT(with.level("L1I").ledger.total().in_joules(),
            without.level("L1I").ledger.total().in_joules());
  // L2 untouched in both configs.
  EXPECT_DOUBLE_EQ(with.level("L2").ledger.total().in_joules(),
                   without.level("L2").ledger.total().in_joules());
}

TEST_F(HierarchyRunnerTest, DeterministicAcrossRuns) {
  HierarchyRunConfig cfg;
  const auto a = run_hierarchy(cfg, code(), data());
  const auto b = run_hierarchy(cfg, code(), data());
  EXPECT_DOUBLE_EQ(a.cache_total().in_joules(), b.cache_total().in_joules());
}

}  // namespace
}  // namespace cnt
