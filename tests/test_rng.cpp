#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace cnt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(99);
  const u64 first = a.next();
  (void)a.next();
  a.reseed(99);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.uniform_range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformOne) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GeometricMagnitudeRespectsCap) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.geometric_magnitude(12, 0.7), 1ULL << 12);
  }
}

TEST(Rng, GeometricMagnitudeIsSkewedSmall) {
  Rng rng(6);
  // With decay 0.7 the mean bit-width is ~3.3, so most values are small.
  int small = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    small += rng.geometric_magnitude(32, 0.7) < 256 ? 1 : 0;
  }
  EXPECT_GT(small, n / 2);
}

TEST(Zipf, UniformWhenSZero) {
  Rng rng(9);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Zipf, SkewFavoursLowRanks) {
  Rng rng(10);
  ZipfSampler z(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(12);
  ZipfSampler z(7, 1.2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 7u);
}

TEST(Zipf, SingleElement) {
  Rng rng(13);
  ZipfSampler z(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

}  // namespace
}  // namespace cnt
