// Crash-consistency regressions (ctest label: crash,
// docs/crash_consistency.md): injected I/O failures and interrupts
// mid-sweep must drain to a sealed `<path>.partial` that --resume
// restores byte-identically, and torn streamed traces must be refused
// by the reader rather than replayed wrong. tools/cnt-crash covers the
// same contracts with real SIGKILLs; these tests pin the in-process
// drain paths deterministically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "exec/engine.hpp"
#include "exec/interrupt.hpp"
#include "trace/stream/stream_reader.hpp"
#include "trace/stream/stream_writer.hpp"

namespace cnt::exec {
namespace {

namespace fsys = std::filesystem;

/// Disarm failpoints and clear the interrupt flag on entry and exit.
struct TortureGuard {
  TortureGuard() {
    fp::clear();
    reset_interrupt();
  }
  ~TortureGuard() {
    fp::clear();
    reset_interrupt();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// ctest runs each discovered test as its own process against the same
/// TempDir, so every artifact path needs a per-process suffix to keep
/// parallel test runs from clobbering each other.
std::string unique_path(const std::string& stem) {
  return ::testing::TempDir() + stem + "." + std::to_string(::getpid());
}

bool context_mentions(const ErrorInfo& info, const std::string& needle) {
  for (const auto& c : info.context) {
    if (c.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::vector<Job> three_jobs() {
  std::vector<Job> jobs;
  for (const char* w : {"zipf_kv", "ifetch", "hash_join"}) {
    Job j;
    j.workload = w;
    j.scale = 0.05;
    jobs.push_back(j);
  }
  return jobs;
}

EngineOptions journal_opts(const std::string& path, bool resume) {
  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;  // byte-identity is the contract under test
  opts.resume = resume;
  opts.max_retries = 2;
  opts.retry_backoff_ms = 1;
  return opts;
}

class CrashConsistencyTest : public ::testing::Test {
 protected:
  std::string path_ = unique_path("cnt_crash_sweep.jsonl");
  TortureGuard guard_;

  void TearDown() override {
    std::error_code ec;
    fsys::remove(path_, ec);
    fsys::remove(path_ + ".partial", ec);
    fsys::remove(reference_path(), ec);
    fsys::remove(reference_path() + ".partial", ec);
  }

  [[nodiscard]] std::string reference_path() const {
    return unique_path("cnt_crash_reference.jsonl");
  }

  /// Clean run into a second path: the byte-level ground truth.
  std::string reference_bytes() {
    const ExperimentEngine engine(journal_opts(reference_path(), false));
    (void)engine.run(three_jobs());
    return slurp(reference_path());
  }

  void expect_resume_restores(const std::string& want) {
    fp::clear();
    const ExperimentEngine engine(journal_opts(path_, /*resume=*/true));
    (void)engine.run(three_jobs());
    EXPECT_EQ(slurp(path_), want) << "--resume must restore the journal "
                                     "byte-identically";
  }
};

TEST_F(CrashConsistencyTest, EnospcMidSweepSealsPartialAndResumes) {
  const std::string want = reference_bytes();
  fp::configure("journal.write=error:ENOSPC@3");  // header + row0 land
  try {
    const ExperimentEngine engine(journal_opts(path_, false));
    (void)engine.run(three_jobs());
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kIo);
    EXPECT_TRUE(context_mentions(e.info(), "writing sweep journal"));
    EXPECT_NE(e.info().hint.find("--resume"), std::string::npos);
    EXPECT_NE(e.info().hint.find(path_ + ".partial"), std::string::npos);
  }
  EXPECT_FALSE(fsys::exists(path_));
  ASSERT_TRUE(fsys::exists(path_ + ".partial"));
  expect_resume_restores(want);
}

TEST_F(CrashConsistencyTest, ShortWriteTornTailIsRecoveredByResume) {
  const std::string want = reference_bytes();
  fp::configure("journal.write=short-write@2");  // row 0 tears mid-line
  EXPECT_THROW(
      {
        const ExperimentEngine engine(journal_opts(path_, false));
        (void)engine.run(three_jobs());
      },
      Error);
  // The torn prefix is really on disk -- recovery must truncate it, not
  // trip over it.
  ASSERT_TRUE(fsys::exists(path_ + ".partial"));
  expect_resume_restores(want);
}

TEST_F(CrashConsistencyTest, RenamePublishFailureKeepsSealedPartial) {
  const std::string want = reference_bytes();
  fp::configure("journal.rename=error:ENOSPC");
  try {
    const ExperimentEngine engine(journal_opts(path_, false));
    (void)engine.run(three_jobs());
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_TRUE(context_mentions(e.info(), "publishing sweep journal"));
  }
  // Every row is sealed in the partial; only the publish failed.
  EXPECT_FALSE(fsys::exists(path_));
  ASSERT_TRUE(fsys::exists(path_ + ".partial"));
  expect_resume_restores(want);
}

TEST_F(CrashConsistencyTest, TransientJobFailureRetriesToIdenticalJournal) {
  const std::string want = reference_bytes();
  fp::configure("engine.job=error:EIO@2");  // job 1 fails once, retries
  const ExperimentEngine engine(journal_opts(path_, false));
  const auto outcomes = engine.run(three_jobs());
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok);
  EXPECT_EQ(outcomes[1].attempts, 2u);
  EXPECT_EQ(slurp(path_), want)
      << "a retried transient failure must not change the journal";
}

TEST_F(CrashConsistencyTest, ParallelJournalFailureDrainsAndResumes) {
  const std::string want = reference_bytes();
  fp::configure("journal.write=error:ENOSPC@3");
  EngineOptions opts = journal_opts(path_, false);
  opts.jobs = 2;  // exercise the worker-side drain path
  EXPECT_THROW(
      {
        const ExperimentEngine engine(opts);
        (void)engine.run(three_jobs());
      },
      Error);
  ASSERT_TRUE(fsys::exists(path_ + ".partial"));
  expect_resume_restores(want);
}

class SignalDrainTest : public CrashConsistencyTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(SignalDrainTest, DrainsSealsPartialAndResumes) {
  const std::string want = reference_bytes();
  EngineOptions opts = journal_opts(path_, false);
  opts.handle_signals = true;
  int polls = 0;
  opts.cancel_check = [&polls]() {
    // Raise the real signal on the second poll: job 0 completes, the
    // handler flips the flag, and the next poll stops the sweep.
    if (++polls == 2) (void)std::raise(GetParam());
    return false;
  };
  try {
    const ExperimentEngine engine(opts);
    (void)engine.run(three_jobs());
    FAIL() << "must be interrupted";
  } catch (const SweepInterrupted& e) {
    EXPECT_GE(e.completed(), 1u);
    EXPECT_LT(e.completed(), 3u);
    EXPECT_EQ(e.total(), 3u);
    EXPECT_EQ(e.journal_path(), path_ + ".partial");
  }
  // The drain sealed every completed row for --resume.
  EXPECT_FALSE(fsys::exists(path_));
  ASSERT_TRUE(fsys::exists(path_ + ".partial"));
  reset_interrupt();
  expect_resume_restores(want);
}

INSTANTIATE_TEST_SUITE_P(SigintSigterm, SignalDrainTest,
                         ::testing::Values(SIGINT, SIGTERM),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == SIGINT ? "SIGINT" : "SIGTERM";
                         });

TEST(TornStreamedTrace, RefusedByReaderThenRegenerates) {
  TortureGuard guard;
  const std::string path = unique_path("cnt_crash_torn.trs");
  auto write_trace = [&path]() {
    stream::StreamTraceWriter writer(path, 16);
    for (u64 i = 0; i < 100; ++i) {
      MemAccess a;
      a.addr = (i % 64) * 64;
      a.size = 8;
      a.op = (i % 4 == 0) ? MemOp::kWrite : MemOp::kRead;
      a.value = i;
      writer.push(a);
    }
    writer.finish();
  };

  fp::configure("trs.write=short-write@3");  // tear a chunk mid-payload
  try {
    write_trace();
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kIo);
  }
  ASSERT_TRUE(fsys::exists(path));
  // The torn file parses as nothing: the reader refuses it outright
  // instead of replaying a prefix as if it were the whole trace.
  EXPECT_THROW(
      {
        stream::StreamTraceSource src(path);
        std::vector<MemAccess> buf(64);
        while (src.next(std::span<MemAccess>(buf)) > 0) {
        }
      },
      Error);

  fp::clear();
  write_trace();  // clean regeneration over the torn file
  stream::StreamTraceSource src(path);
  std::vector<MemAccess> buf(64);
  u64 total = 0;
  usize n = 0;
  while ((n = src.next(std::span<MemAccess>(buf))) > 0) total += n;
  EXPECT_EQ(total, 100u);
  (void)fsys::remove(path);
}

TEST(TornStreamedTrace, WriterRefusesToSealAfterAFailedChunk) {
  TortureGuard guard;
  const std::string path = unique_path("cnt_crash_seal.trs");
  fp::configure("trs.write=error:ENOSPC@2");
  stream::StreamTraceWriter writer(path, 4);
  bool push_failed = false;
  for (u64 i = 0; i < 64 && !push_failed; ++i) {
    MemAccess a;
    a.addr = i * 64;
    a.size = 8;
    try {
      writer.push(a);
    } catch (const Error&) {
      push_failed = true;
    }
  }
  ASSERT_TRUE(push_failed);
  try {
    writer.finish();
    FAIL() << "must refuse to seal";
  } catch (const Error& e) {
    EXPECT_NE(e.info().message.find("refusing to seal"), std::string::npos);
    EXPECT_NE(e.info().hint.find("regenerate"), std::string::npos);
  }
  (void)fsys::remove(path);
}

}  // namespace
}  // namespace cnt::exec
