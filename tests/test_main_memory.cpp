#include "cache/main_memory.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace cnt {
namespace {

TEST(MainMemory, UnwrittenReadsZero) {
  MainMemory mem;
  std::array<u8, 64> line{};
  line.fill(0xAB);
  mem.read_line(0x1000, line);
  for (const u8 b : line) EXPECT_EQ(b, 0);
  EXPECT_EQ(mem.peek(0xDEAD0), 0);
}

TEST(MainMemory, LineRoundTrip) {
  MainMemory mem;
  std::array<u8, 64> out{};
  std::array<u8, 64> in{};
  for (usize i = 0; i < in.size(); ++i) in[i] = static_cast<u8>((i * 3) & 0xffU);
  mem.write_line(0x2000, in);
  mem.read_line(0x2000, out);
  EXPECT_EQ(in, out);
}

TEST(MainMemory, LinesAtPageEdges) {
  MainMemory mem;
  std::array<u8, 128> in{};
  for (usize i = 0; i < in.size(); ++i) in[i] = static_cast<u8>((i + 1) & 0xffU);
  // Last aligned 128 B line of page 0 and first line of page 1.
  mem.write_line(4096 - 128, in);
  mem.write_line(4096, in);
  std::array<u8, 128> out{};
  mem.read_line(4096 - 128, out);
  EXPECT_EQ(in, out);
  mem.read_line(4096, out);
  EXPECT_EQ(in, out);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(MainMemory, WordWrites) {
  MainMemory mem;
  mem.write_word(0x100, 0x1122334455667788ULL, 8);
  EXPECT_EQ(mem.peek_word(0x100, 8), 0x1122334455667788ULL);
  EXPECT_EQ(mem.peek(0x100), 0x88);  // little-endian
  EXPECT_EQ(mem.peek(0x107), 0x11);
  mem.write_word(0x100, 0xAB, 1);
  EXPECT_EQ(mem.peek_word(0x100, 8), 0x11223344556677ABULL);
}

TEST(MainMemory, LoadSegments) {
  MainMemory mem;
  std::vector<MemorySegment> init;
  MemorySegment seg;
  seg.base = 0x3000;
  seg.bytes = {1, 2, 3, 4, 5};
  init.push_back(seg);
  MemorySegment seg2;
  seg2.base = 0x8FFE;  // crosses page boundary at 0x9000
  seg2.bytes = {9, 9, 9, 9};
  init.push_back(seg2);
  mem.load(init);
  EXPECT_EQ(mem.peek(0x3000), 1);
  EXPECT_EQ(mem.peek(0x3004), 5);
  EXPECT_EQ(mem.peek(0x8FFE), 9);
  EXPECT_EQ(mem.peek(0x9001), 9);
}

TEST(MainMemory, TrafficCounters) {
  MainMemory mem;
  std::array<u8, 64> buf{};
  mem.read_line(0, buf);
  mem.read_line(64, buf);
  mem.write_line(0, buf);
  mem.write_word(8, 1, 8);
  EXPECT_EQ(mem.line_reads(), 2u);
  EXPECT_EQ(mem.line_writes(), 1u);
  EXPECT_EQ(mem.word_writes(), 1u);
}

TEST(MainMemory, PokePeek) {
  MainMemory mem;
  mem.poke(0x42, 0x7F);
  EXPECT_EQ(mem.peek(0x42), 0x7F);
}

TEST(MainMemory, SparsePages) {
  MainMemory mem;
  mem.poke(0, 1);
  mem.poke(1ULL << 30, 2);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

}  // namespace
}  // namespace cnt
