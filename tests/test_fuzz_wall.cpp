// The fuzz wall (docs/error_handling.md): every ingest parser, driven
// in-process with >= 10k seeded mutated inputs per format, must either
// accept the input or reject it with a structured cnt::Error -- never
// crash, hang, leak (the wall also runs under the asan preset) or abort.
// Outcome digests are asserted byte-identical across reruns so a wall
// run is fully reproducible from (seed, runs, corpus).
#include "cnt-fuzz/fuzzer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"

namespace cnt::fuzz {
namespace {

constexpr u64 kWallSeed = 20260805;
constexpr u64 kWallRuns = 10000;

std::string corpus_dir(FuzzTarget t) {
  return std::string(CNT_FUZZ_CORPUS_ROOT) + "/" +
         std::string(target_name(t));
}

class FuzzWall : public ::testing::TestWithParam<FuzzTarget> {};

TEST_P(FuzzWall, CorpusContractHolds) {
  // seed_* entries are valid by construction; bad_* entries must be
  // rejected with a structured error -- never accepted, never a crash.
  const auto corpus = load_corpus(corpus_dir(GetParam()));
  bool saw_seed = false;
  bool saw_bad = false;
  for (const CorpusEntry& entry : corpus) {
    const FuzzOutcome outcome = classify(GetParam(), entry.data);
    if (entry.expect_bad) {
      saw_bad = true;
      EXPECT_EQ(outcome.cls, FuzzOutcome::Cls::kRejected)
          << entry.name << " -> " << outcome.label;
    } else {
      saw_seed = true;
      EXPECT_EQ(outcome.cls, FuzzOutcome::Cls::kAccepted)
          << entry.name << " -> " << outcome.label;
    }
  }
  EXPECT_TRUE(saw_seed) << "corpus has no seed_* entries";
  EXPECT_TRUE(saw_bad) << "corpus has no bad_* entries";
}

TEST_P(FuzzWall, TenThousandMutantsNoCrashes) {
  const auto corpus = load_corpus(corpus_dir(GetParam()));
  const FuzzReport report =
      fuzz_target(GetParam(), corpus, kWallSeed, kWallRuns);
  EXPECT_EQ(report.runs, kWallRuns);
  EXPECT_EQ(report.crashed, 0u)
      << report.first_crash_what << "\ninput: " << report.first_crash_input;
  // The corpus seeds valid inputs, so some mutants must survive parsing
  // and some must be rejected -- an all-one-way wall tests nothing.
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.rejected, 0u);
}

TEST_P(FuzzWall, RerunsAreByteIdentical) {
  const auto corpus = load_corpus(corpus_dir(GetParam()));
  const FuzzReport a = fuzz_target(GetParam(), corpus, kWallSeed, kWallRuns);
  const FuzzReport b = fuzz_target(GetParam(), corpus, kWallSeed, kWallRuns);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.crashed, b.crashed);
  // A different seed must explore a different stream.
  const FuzzReport c =
      fuzz_target(GetParam(), corpus, kWallSeed + 1, kWallRuns);
  EXPECT_NE(a.digest, c.digest);
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, FuzzWall,
    ::testing::Values(FuzzTarget::kIni, FuzzTarget::kTraceText,
                      FuzzTarget::kTraceBinary, FuzzTarget::kJournal,
                      FuzzTarget::kJsonl, FuzzTarget::kTraceStream),
    [](const ::testing::TestParamInfo<FuzzTarget>& param) {
      return std::string(target_name(param.param));
    });

TEST(FuzzMutator, IsDeterministicPerSeed) {
  const std::vector<CorpusEntry> corpus = {
      {"seed_a", "[s]\nk = 1\n", false},
      {"seed_b", "R 1000 8\n", false},
  };
  Rng r1(42);
  Rng r2(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mutate(r1, corpus[0].data, corpus),
              mutate(r2, corpus[0].data, corpus));
  }
}

TEST(FuzzCorpus, HexDecodingRoundTrips) {
  // The binary-trace corpus is stored hex-encoded; decoded entries must
  // start with the trace magic (seed entries) and load in sorted order.
  const auto corpus = load_corpus(corpus_dir(FuzzTarget::kTraceBinary));
  for (usize i = 1; i < corpus.size(); ++i) {
    EXPECT_LT(corpus[i - 1].name, corpus[i].name);
  }
  for (const CorpusEntry& entry : corpus) {
    if (entry.name.rfind("seed_", 0) == 0) {
      ASSERT_GE(entry.data.size(), 8u) << entry.name;
      EXPECT_EQ(entry.data.substr(0, 6), "CNTTRC") << entry.name;
    }
  }
}

TEST(FuzzCorpus, MissingDirectoryIsStructuredError) {
  try {
    (void)load_corpus(corpus_dir(FuzzTarget::kIni) + "/nope");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kIo);
  }
}

}  // namespace
}  // namespace cnt::fuzz
