#include "energy/tech_params.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

// These tests pin the two quantitative anchors the paper states for the
// reconstructed Table `tab:rw-analysis` (see tech_params.hpp).

TEST(TechParams, CnfetWriteAsymmetryIsAlmostTenX) {
  const auto t = TechParams::cnfet();
  const double ratio = t.cell.wr1 / t.cell.wr0;
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 11.0);
}

TEST(TechParams, CnfetReadDeltaCloseToWriteDelta) {
  const auto t = TechParams::cnfet();
  const double rd = t.cell.read_delta().in_joules();
  const double wr = t.cell.write_delta().in_joules();
  ASSERT_GT(rd, 0.0);
  ASSERT_GT(wr, 0.0);
  // "quite close": within 20% of each other.
  EXPECT_NEAR(rd / wr, 1.0, 0.2);
}

TEST(TechParams, CnfetReadZeroCostsMoreThanReadOne) {
  const auto t = TechParams::cnfet();
  EXPECT_GT(t.cell.rd0, t.cell.rd1);
}

TEST(TechParams, CmosIsNearlySymmetricAndMoreExpensive) {
  const auto cmos = TechParams::cmos();
  const auto cnfet = TechParams::cnfet();
  EXPECT_EQ(cmos.cell.rd0, cmos.cell.rd1);
  // CMOS writes differ by < 5%.
  EXPECT_NEAR(cmos.cell.wr1 / cmos.cell.wr0, 1.0, 0.05);
  // "power-hungry CMOS": average per-bit energy clearly above CNFET's.
  const auto avg = [](const BitEnergies& e) {
    return (e.rd0 + e.rd1 + e.wr0 + e.wr1) / 4.0;
  };
  EXPECT_GT(avg(cmos.cell) / avg(cnfet.cell), 1.5);
}

TEST(TechParams, BitEnergiesHelpers) {
  const auto t = TechParams::cnfet();
  EXPECT_EQ(t.cell.read(false), t.cell.rd0);
  EXPECT_EQ(t.cell.read(true), t.cell.rd1);
  EXPECT_EQ(t.cell.write(false), t.cell.wr0);
  EXPECT_EQ(t.cell.write(true), t.cell.wr1);
}

TEST(TechParams, NamesSet) {
  EXPECT_FALSE(TechParams::cnfet().name.empty());
  EXPECT_FALSE(TechParams::cmos().name.empty());
  EXPECT_NE(TechParams::cnfet().name, TechParams::cmos().name);
}

TEST(TechParams, LeakageOrdering) {
  // CNFET's selling point includes lower leakage.
  EXPECT_LT(TechParams::cnfet().periph.leakage_per_cell_w,
            TechParams::cmos().periph.leakage_per_cell_w);
}

}  // namespace
}  // namespace cnt
