#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

TEST(MemAccess, ValidityRules) {
  EXPECT_TRUE(MemAccess::read(0x1000, 8).valid());
  EXPECT_TRUE(MemAccess::read(0x1004, 4).valid());
  EXPECT_TRUE(MemAccess::read(0x1001, 1).valid());
  EXPECT_FALSE(MemAccess::read(0x1001, 2).valid());  // misaligned
  EXPECT_FALSE(MemAccess::read(0x1000, 3).valid());  // non-pow2 size
  EXPECT_FALSE(MemAccess::read(0x1000, 16).valid()); // too wide
}

TEST(MemAccess, Factories) {
  const auto r = MemAccess::read(0x10, 4);
  EXPECT_EQ(r.op, MemOp::kRead);
  EXPECT_FALSE(r.is_write());
  const auto w = MemAccess::write(0x18, 0xAB, 8);
  EXPECT_EQ(w.op, MemOp::kWrite);
  EXPECT_TRUE(w.is_write());
  EXPECT_EQ(w.value, 0xABu);
  const auto f = MemAccess::ifetch(0x20);
  EXPECT_EQ(f.op, MemOp::kIFetch);
}

TEST(Trace, PushAndIterate) {
  Trace t("demo");
  t.push(MemAccess::read(0x40));
  t.push(MemAccess::write(0x48, 7));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(), "demo");
  EXPECT_FALSE(t.empty());
  usize n = 0;
  for (const auto& a : t) {
    (void)a;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(Trace, WellFormedDetectsBadAccess) {
  Trace t;
  t.push(MemAccess::read(0x40));
  EXPECT_TRUE(t.well_formed());
  t.push(MemAccess::read(0x41, 4));  // misaligned
  EXPECT_FALSE(t.well_formed());
}

TEST(TraceStats, CountsAndFractions) {
  Trace t;
  t.push(MemAccess::read(0x00));        // line 0
  t.push(MemAccess::read(0x40));        // line 1
  t.push(MemAccess::write(0x80, 0xFF)); // line 2
  t.push(MemAccess::ifetch(0xC0));      // line 3, not in write_fraction
  const auto s = t.stats();
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.ifetches, 1u);
  EXPECT_EQ(s.unique_lines, 4u);
  EXPECT_DOUBLE_EQ(s.write_fraction, 1.0 / 3.0);
}

TEST(TraceStats, WriteBitDensityMasksBySize) {
  Trace t;
  // One-byte write of 0xFF: 8 bits, 8 ones -- the upper value bits must be
  // ignored.
  MemAccess a = MemAccess::write(0x10, 0xFFFF, 1);
  a.value = 0xFFFF;
  t.push(a);
  const auto s = t.stats();
  EXPECT_DOUBLE_EQ(s.write_bit1_density, 1.0);
}

TEST(TraceStats, EmptyTrace) {
  Trace t;
  const auto s = t.stats();
  EXPECT_EQ(s.accesses, 0u);
  EXPECT_DOUBLE_EQ(s.write_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.write_bit1_density, 0.0);
}

TEST(TraceStats, FootprintKib) {
  Trace t;
  for (u64 i = 0; i < 32; ++i) t.push(MemAccess::read(i * 64));
  EXPECT_DOUBLE_EQ(t.stats().footprint_kib, 2.0);
}

}  // namespace
}  // namespace cnt
