#include <gtest/gtest.h>

#include "device/cell_derivation.hpp"
#include "device/cnfet_model.hpp"
#include "device/variation.hpp"

namespace cnt {
namespace {

TEST(CnfetModel, DefaultsAreSane) {
  const CnfetDevice d = evaluate(CnfetDeviceParams{});
  EXPECT_GT(d.vth, 0.1);
  EXPECT_LT(d.vth, 0.5);
  EXPECT_GT(d.ion_n, 1e-5);        // > 10 uA for 6 tubes
  EXPECT_LT(d.ion_p, d.ion_n);     // p-type weaker
  EXPECT_GT(d.switch_energy, 1e-16);
  EXPECT_LT(d.switch_energy, 1e-15);
  EXPECT_GT(d.r_on_p, d.r_on_n);
}

TEST(CnfetModel, MoreTubesMoreDriveMoreCap) {
  CnfetDeviceParams few, many;
  few.tubes_per_device = 2;
  many.tubes_per_device = 10;
  const auto d_few = evaluate(few);
  const auto d_many = evaluate(many);
  EXPECT_GT(d_many.ion_n, d_few.ion_n);
  EXPECT_GT(d_many.c_device, d_few.c_device);
  EXPECT_LT(d_many.r_on_n, d_few.r_on_n);
}

TEST(CnfetModel, SmallerDiameterHigherThresholdLessDrive) {
  CnfetDeviceParams thin, thick;
  thin.diameter_nm = 1.0;
  thick.diameter_nm = 2.0;
  const auto d_thin = evaluate(thin);
  const auto d_thick = evaluate(thick);
  EXPECT_GT(d_thin.vth, d_thick.vth);
  EXPECT_LT(d_thin.ion_n, d_thick.ion_n);
}

TEST(CnfetModel, RejectsNonPhysicalParams) {
  CnfetDeviceParams p;
  p.tubes_per_device = 0;
  EXPECT_THROW((void)evaluate(p), std::invalid_argument);
  p = {};
  p.diameter_nm = 0.3;
  EXPECT_THROW((void)evaluate(p), std::invalid_argument);
  p = {};
  p.vdd = 0.2;  // below threshold at 1.5 nm
  EXPECT_THROW((void)evaluate(p), std::invalid_argument);
  p = {};
  p.p_drive_ratio = 0.0;
  EXPECT_THROW((void)evaluate(p), std::invalid_argument);
}

TEST(CellDerivation, ReproducesPaperAnchors) {
  // The derived cell must satisfy the same anchors as the calibrated
  // table: write asymmetry ~10x, read-0 expensive, deltas comparable.
  const BitEnergies e = derive_bit_energies(CnfetDeviceParams{});
  const double wr_ratio = e.wr1 / e.wr0;
  EXPECT_GT(wr_ratio, 7.0);
  EXPECT_LT(wr_ratio, 13.0);
  EXPECT_GT(e.rd0, e.rd1);
  const double delta_ratio =
      e.read_delta().in_joules() / e.write_delta().in_joules();
  EXPECT_GT(delta_ratio, 0.6);
  EXPECT_LT(delta_ratio, 1.4);
}

TEST(CellDerivation, CloseToCalibratedTable) {
  // Structure check against TechParams::cnfet(): every derived energy is
  // within 40% of the calibrated literature value.
  const BitEnergies derived = derive_bit_energies(CnfetDeviceParams{});
  const BitEnergies calib = TechParams::cnfet().cell;
  const auto close = [](Energy a, Energy b) {
    return a.in_joules() / b.in_joules();
  };
  EXPECT_NEAR(close(derived.rd0, calib.rd0), 1.0, 0.4);
  EXPECT_NEAR(close(derived.rd1, calib.rd1), 1.0, 0.4);
  EXPECT_NEAR(close(derived.wr0, calib.wr0), 1.0, 0.4);
  EXPECT_NEAR(close(derived.wr1, calib.wr1), 1.0, 0.4);
}

TEST(CellDerivation, DeeperSubarrayCostsMore) {
  ArrayContext shallow, deep;
  shallow.rows = 64;
  deep.rows = 256;
  const auto e_sh = derive_bit_energies(CnfetDeviceParams{}, shallow);
  const auto e_dp = derive_bit_energies(CnfetDeviceParams{}, deep);
  EXPECT_GT(e_dp.rd0, e_sh.rd0);   // longer bitline
  EXPECT_GT(e_dp.wr1, e_sh.wr1);
  EXPECT_EQ(e_dp.wr0, e_sh.wr0);   // cell-internal, bitline-independent
}

TEST(CellDerivation, TechParamsScalesClockWithDevice) {
  CnfetDeviceParams strong;
  strong.tubes_per_device = 12;  // more drive, lower RC
  const TechParams nominal = derive_tech_params(CnfetDeviceParams{});
  const TechParams fast = derive_tech_params(strong);
  EXPECT_GT(fast.clock_ghz, nominal.clock_ghz * 0.99);
  EXPECT_EQ(fast.name, "CNFET-derived");
}

TEST(Variation, SamplesStayPhysical) {
  Rng rng(7);
  VariationParams var;
  var.tube_count_sigma = 3.0;  // aggressive
  for (int i = 0; i < 500; ++i) {
    const auto p = sample_device(CnfetDeviceParams{}, var, rng);
    EXPECT_GE(p.tubes_per_device, 1u);
    EXPECT_GE(p.diameter_nm, 0.7);
    EXPECT_LE(p.diameter_nm, 3.0);
    EXPECT_NO_THROW((void)evaluate(p));
  }
}

TEST(Variation, HighSigmaSamplesStayStrictlyPositive) {
  // At cap_rel_sigma well above anything physical, 1 + sigma*g regularly
  // goes negative; the sampler must clamp so no capacitance -- and no
  // derived energy -- ever comes out zero or negative.
  Rng rng(11);
  VariationParams var;
  var.cap_rel_sigma = 1.5;
  for (int i = 0; i < 1000; ++i) {
    const auto p = sample_device(CnfetDeviceParams{}, var, rng);
    EXPECT_GT(p.cgate_per_tube_af, 0.0);
    EXPECT_GT(p.cparasitic_af, 0.0);
    const auto e = sample_bit_energies(CnfetDeviceParams{}, var, rng);
    EXPECT_GT(e.rd0.in_joules(), 0.0);
    EXPECT_GT(e.rd1.in_joules(), 0.0);
    EXPECT_GT(e.wr0.in_joules(), 0.0);
    EXPECT_GT(e.wr1.in_joules(), 0.0);
  }
}

TEST(Variation, ZeroSigmaReproducesNominal) {
  Rng rng(8);
  VariationParams var;
  var.tube_count_sigma = 0.0;
  var.diameter_rel_sigma = 0.0;
  var.cap_rel_sigma = 0.0;
  const auto e = sample_bit_energies(CnfetDeviceParams{}, var, rng);
  const auto nominal = derive_bit_energies(CnfetDeviceParams{});
  EXPECT_DOUBLE_EQ(e.rd0.in_joules(), nominal.rd0.in_joules());
  EXPECT_DOUBLE_EQ(e.wr1.in_joules(), nominal.wr1.in_joules());
}

TEST(Variation, PerturbedCellsKeepAsymmetryStructure) {
  Rng rng(9);
  const VariationParams var;
  for (int i = 0; i < 200; ++i) {
    const auto e = sample_bit_energies(CnfetDeviceParams{}, var, rng);
    EXPECT_GT(e.wr1, e.wr0) << "sample " << i;
    EXPECT_GT(e.rd0, e.rd1) << "sample " << i;
    EXPECT_GT(e.wr1 / e.wr0, 4.0) << "sample " << i;
  }
}

TEST(Variation, SpreadGrowsWithSigma) {
  Rng rng(10);
  VariationParams tight, loose;
  tight.tube_count_sigma = 0.2;
  tight.diameter_rel_sigma = 0.01;
  tight.cap_rel_sigma = 0.005;
  loose.tube_count_sigma = 2.0;
  loose.diameter_rel_sigma = 0.08;
  loose.cap_rel_sigma = 0.05;
  auto spread = [&rng](const VariationParams& v) {
    double lo = 1e9, hi = 0;
    for (int i = 0; i < 300; ++i) {
      const double w =
          sample_bit_energies(CnfetDeviceParams{}, v, rng).wr1.in_joules();
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
    return hi / lo;
  };
  EXPECT_GT(spread(loose), spread(tight));
}

}  // namespace
}  // namespace cnt
