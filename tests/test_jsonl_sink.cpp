// JsonlSink: rows must land in job-submission order no matter what order
// workers complete in (the result-ordering determinism regression test),
// and each row must be one well-formed JSON object.
#include "exec/result_sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "exec/journal.hpp"

namespace cnt::exec {
namespace {

JobOutcome make_outcome(u64 id, bool ok = true) {
  JobOutcome o;
  o.job.id = id;
  o.job.workload = "stream_copy";
  o.job.tag = "window=15";
  o.job.scale = 0.1;
  o.ok = ok;
  if (!ok) o.error = "synthetic failure";
  o.wall_ms = 1.5;
  o.result.workload = "stream_copy";
  return o;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

u64 job_id_of(const std::string& line) {
  const auto pos = line.find("\"job_id\":");
  EXPECT_NE(pos, std::string::npos) << line;
  return static_cast<u64>(std::stoull(line.substr(pos + 9)));
}

TEST(JsonlSink, InOrderPushStreamsImmediately) {
  std::ostringstream os;
  JsonlSink sink(os);
  for (u64 i = 0; i < 4; ++i) {
    sink.push(make_outcome(i));
    EXPECT_EQ(sink.emitted(), i + 1);  // no buffering on the fast path
    EXPECT_EQ(sink.buffered(), 0u);
  }
  sink.finish();
  EXPECT_EQ(lines_of(os.str()).size(), 4u);
}

// The regression test for satellite "result-ordering determinism": feed
// completions in a scrambled order; rows must still come out 0,1,2,...
TEST(JsonlSink, OutOfOrderCompletionEmitsInSubmissionOrder) {
  std::ostringstream os;
  JsonlSink sink(os);
  std::vector<u64> order = {7, 2, 0, 5, 1, 3, 6, 4};
  for (const u64 id : order) sink.push(make_outcome(id));
  sink.finish();

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), order.size());
  for (u64 i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(job_id_of(lines[static_cast<usize>(i)]), i);
  }
}

TEST(JsonlSink, RandomizedOrderStaysSorted) {
  std::ostringstream os;
  JsonlSink sink(os);
  std::vector<u64> order(64);
  for (u64 i = 0; i < order.size(); ++i) order[static_cast<usize>(i)] = i;
  std::mt19937 rng(1234);
  std::shuffle(order.begin(), order.end(), rng);
  for (const u64 id : order) sink.push(make_outcome(id));
  sink.finish();

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), order.size());
  for (u64 i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(job_id_of(lines[static_cast<usize>(i)]), i);
  }
}

TEST(JsonlSink, RowShape) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.push(make_outcome(0));
  sink.push(make_outcome(1, /*ok=*/false));
  sink.finish();

  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"schema\":\"cnt-exec-v2\""), std::string::npos);
    EXPECT_NE(line.find("\"workload\":\"stream_copy\""), std::string::npos);
    EXPECT_NE(line.find("\"key\":\""), std::string::npos);
    EXPECT_TRUE(check_sealed_line(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[1].find("synthetic failure"), std::string::npos);
}

TEST(JsonlSink, TimingFieldIsOptionalForByteComparisons) {
  std::ostringstream with_timing, without_a, without_b;
  {
    JsonlSink sink(with_timing, /*include_timing=*/true);
    sink.push(make_outcome(0));
    sink.finish();
  }
  {
    JsonlSink sink(without_a, /*include_timing=*/false);
    auto o = make_outcome(0);
    o.wall_ms = 1.0;
    sink.push(o);
    sink.finish();
  }
  {
    JsonlSink sink(without_b, /*include_timing=*/false);
    auto o = make_outcome(0);
    o.wall_ms = 99.0;  // different timing must not change the bytes
    sink.push(o);
    sink.finish();
  }
  EXPECT_NE(with_timing.str().find("wall_ms"), std::string::npos);
  EXPECT_EQ(without_a.str().find("wall_ms"), std::string::npos);
  EXPECT_EQ(without_a.str(), without_b.str());
}

TEST(JsonlSink, DuplicateIdThrows) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.push(make_outcome(0));
  EXPECT_THROW(sink.push(make_outcome(0)), std::logic_error);
  sink.push(make_outcome(2));  // buffered
  EXPECT_THROW(sink.push(make_outcome(2)), std::logic_error);
}

TEST(JsonlSink, FinishWithGapThrows) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.push(make_outcome(0));
  sink.push(make_outcome(2));  // id 1 never arrives
  EXPECT_EQ(sink.emitted(), 1u);
  EXPECT_EQ(sink.buffered(), 1u);
  EXPECT_THROW(sink.finish(), std::logic_error);
}

TEST(JsonlSink, DisabledSinkStillTracksOrdering) {
  JsonlSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.push(make_outcome(1));
  sink.push(make_outcome(0));
  sink.finish();
  EXPECT_EQ(sink.emitted(), 2u);
}

TEST(JsonlSink, FileSinkWrites) {
  const std::string path = ::testing::TempDir() + "cnt_sink_test.jsonl";
  {
    JsonlSink sink(path);
    EXPECT_TRUE(sink.enabled());
    EXPECT_EQ(sink.path(), path);
    sink.push(make_outcome(0));
    sink.finish();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"job_id\":0"), std::string::npos);
}

// The journal staging contract: rows stream into <path>.partial and only
// finish() publishes <path> via rename.
TEST(JsonlSink, FileSinkStagesInPartialUntilFinish) {
  const std::string path = ::testing::TempDir() + "cnt_sink_stage.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".partial").c_str());
  {
    JsonlSink sink(path);
    sink.write_header(/*fingerprint=*/0xabcdu, /*jobs=*/1);
    sink.push(make_outcome(0));
    EXPECT_FALSE(std::ifstream(path).good());  // not published yet
    EXPECT_TRUE(std::ifstream(path + ".partial").good());
    sink.finish();
  }
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".partial").good());  // renamed away
}

TEST(JsonlSink, CloseInterruptedKeepsPartialAndFlushesBufferedRows) {
  const std::string path = ::testing::TempDir() + "cnt_sink_interrupt.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".partial").c_str());
  {
    JsonlSink sink(path);
    sink.write_header(/*fingerprint=*/1u, /*jobs=*/4);
    sink.push(make_outcome(0));
    sink.push(make_outcome(3));  // stuck behind the gap at id 1
    EXPECT_EQ(sink.buffered(), 1u);
    sink.close_interrupted();
  }
  EXPECT_FALSE(std::ifstream(path).good());  // never published
  std::ifstream in(path + ".partial");
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  // Header + row 0 + the out-of-order row 3: finished work survives.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"schema\":\"cnt-exec-journal-v1\""),
            std::string::npos);
  EXPECT_EQ(job_id_of(lines[1]), 0u);
  EXPECT_EQ(job_id_of(lines[2]), 3u);
}

TEST(JsonlSink, HeaderAfterRowThrows) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.push(make_outcome(0));
  EXPECT_THROW(sink.write_header(0, 1), std::logic_error);
}

}  // namespace
}  // namespace cnt::exec
