// Cooperative cancellation, deadlines, the per-job watchdog and the
// interruptible retry backoff (docs/robustness.md). The timing
// assertions are deliberately loose -- an order of magnitude below the
// uninterrupted delay -- so a loaded CI box cannot flake them.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <thread>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "exec/engine.hpp"
#include "exec/interrupt.hpp"
#include "exec/watchdog.hpp"

namespace cnt {
namespace {

u64 elapsed_ms_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

TEST(CancelToken, FirstReasonWinsAndSticks) {
  cancel::Token t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.reason(), cancel::Reason::kNone);

  t.cancel(cancel::Reason::kTimeout);
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), cancel::Reason::kTimeout);

  // A late operator Ctrl-C must not relabel the watchdog's verdict.
  t.cancel(cancel::Reason::kCancel);
  EXPECT_EQ(t.reason(), cancel::Reason::kTimeout);
}

TEST(CancelToken, WaitReturnsImmediatelyWhenAlreadyCancelled) {
  cancel::Token t;
  t.cancel();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(t.wait_ms(5000));
  EXPECT_LT(elapsed_ms_since(t0), 500u);
}

TEST(CancelToken, CancelFromAnotherThreadWakesTheWait) {
  cancel::Token t;
  std::thread canceller([&t] {
    const cancel::Token pace;
    (void)pace.wait_ms(30);
    t.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(t.wait_ms(10'000));
  canceller.join();
  // The condition variable wakes on cancel(): far under the full wait.
  EXPECT_LT(elapsed_ms_since(t0), 1000u);
}

TEST(CancelToken, WakePredicateIsPolledPerSlice) {
  cancel::Token t;
  std::atomic<bool> flag{false};
  std::thread flipper([&flag] {
    const cancel::Token pace;
    (void)pace.wait_ms(30);
    flag.store(true, std::memory_order_relaxed);
  });
  const auto t0 = std::chrono::steady_clock::now();
  // The flag cannot notify the condition variable (that is the point:
  // it models an async-signal flag), so the slice poll must see it.
  EXPECT_TRUE(t.wait_ms(
      10'000, [&flag] { return flag.load(std::memory_order_relaxed); }));
  flipper.join();
  EXPECT_LT(elapsed_ms_since(t0), 1000u);
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, UneventfulWaitTimesOut) {
  const cancel::Token t;
  EXPECT_FALSE(t.wait_ms(1));
}

TEST(CancelDeadline, NeverAndAfterMs) {
  const cancel::Deadline never = cancel::Deadline::never();
  EXPECT_TRUE(never.is_never());
  EXPECT_FALSE(never.expired());
  EXPECT_EQ(never.remaining_ms(), ~u64{0});

  const cancel::Deadline past = cancel::Deadline::after_ms(0);
  EXPECT_FALSE(past.is_never());
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining_ms(), 0u);

  const cancel::Deadline future = cancel::Deadline::after_ms(60'000);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_ms(), 0u);
  EXPECT_LE(future.remaining_ms(), 60'000u);
}

TEST(CancelScope, InstallsNestsAndRestores) {
  EXPECT_EQ(cancel::current(), nullptr);
  EXPECT_FALSE(cancel::poll());

  cancel::Token outer;
  {
    const cancel::ScopedToken a(outer);
    EXPECT_EQ(cancel::current(), &outer);

    cancel::Token inner;
    inner.cancel();
    {
      const cancel::ScopedToken b(inner);
      EXPECT_EQ(cancel::current(), &inner);
      EXPECT_TRUE(cancel::poll());
    }
    EXPECT_EQ(cancel::current(), &outer);
    EXPECT_FALSE(cancel::poll());
  }
  EXPECT_EQ(cancel::current(), nullptr);
}

TEST(CancelScope, ThrowIfCancelledBuildsStructuredErrors) {
  // No token installed: a no-op.
  EXPECT_NO_THROW(cancel::throw_if_cancelled("sim.replay"));

  cancel::Token timed;
  timed.cancel(cancel::Reason::kTimeout);
  {
    const cancel::ScopedToken scope(timed);
    try {
      cancel::throw_if_cancelled("sim.replay");
      FAIL() << "timeout token did not throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.info().code, Errc::kTimeout);
      EXPECT_EQ(e.info().source, "sim.replay");
      EXPECT_NE(e.info().hint.find("--job-timeout-ms"), std::string::npos);
    }
  }

  cancel::Token stopped;
  stopped.cancel(cancel::Reason::kCancel);
  {
    const cancel::ScopedToken scope(stopped);
    try {
      cancel::throw_if_cancelled("trs.refill");
      FAIL() << "cancelled token did not throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.info().code, Errc::kCancelled);
      EXPECT_EQ(e.info().source, "trs.refill");
    }
  }
}

TEST(CancelErrc, NamesAreRegistered) {
  EXPECT_EQ(errc_name(Errc::kCancelled), "cancelled");
  EXPECT_EQ(errc_name(Errc::kTimeout), "timeout");
}

TEST(Watchdog, CancelsAHungTokenWithinTheTimeout) {
  exec::Watchdog dog(40);
  EXPECT_EQ(dog.timeout_ms(), 40u);
  const auto token = std::make_shared<cancel::Token>();
  const auto t0 = std::chrono::steady_clock::now();
  const exec::Watchdog::Guard guard = dog.watch(token);
  // The park models a hung job: only the watchdog can end it.
  EXPECT_TRUE(token->wait_ms(10'000));
  EXPECT_EQ(token->reason(), cancel::Reason::kTimeout);
  EXPECT_LT(elapsed_ms_since(t0), 5000u);
}

TEST(Watchdog, GuardReleaseStopsTheClock) {
  exec::Watchdog dog(30);
  const auto token = std::make_shared<cancel::Token>();
  { const exec::Watchdog::Guard guard = dog.watch(token); }
  // The attempt finished before its deadline; the expired entry must
  // not cancel a token the engine already released.
  const cancel::Token pace;
  (void)pace.wait_ms(120);
  EXPECT_FALSE(token->cancelled());
}

// ---------------------------------------------------------------------------
// Engine-level behaviour: retry aggregation, quarantine, backoff drain.

exec::JobRunner always_failing(u32& calls) {
  return [&calls](const exec::Job& job) {
    exec::JobOutcome o;
    o.job = job;
    o.error = "boom";
    o.errc = "io";
    ++calls;
    return o;
  };
}

TEST(RetryAggregation, ExhaustionRecordsEveryAttemptAndQuarantines) {
  u32 calls = 0;
  const exec::JobOutcome out =
      exec::run_job_with_retry(exec::Job{}, /*max_retries=*/2,
                               /*backoff_ms=*/0, always_failing(calls));
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(out.attempts, 3u);
  ASSERT_EQ(out.attempt_errcs.size(), 3u);
  for (const std::string& name : out.attempt_errcs) EXPECT_EQ(name, "io");
  EXPECT_TRUE(out.quarantined);
  EXPECT_EQ(out.quarantine_reason, "retries");
  EXPECT_FALSE(out.timed_out);
}

TEST(RetryAggregation, SuccessAfterRetryCarriesNoFailureMetadata) {
  u32 calls = 0;
  const exec::JobRunner flaky = [&calls](const exec::Job& job) {
    exec::JobOutcome o;
    o.job = job;
    if (++calls < 2) {
      o.error = "transient";
      o.errc = "io";
      return o;
    }
    o.ok = true;
    return o;
  };
  const exec::JobOutcome out =
      exec::run_job_with_retry(exec::Job{}, 3, 0, flaky);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_TRUE(out.attempt_errcs.empty());
  EXPECT_FALSE(out.quarantined);
}

TEST(RetryAggregation, TimedOutAttemptIsNotRetried) {
  exec::Watchdog dog(30);
  u32 calls = 0;
  // A hung job: parks on its attempt token until the watchdog fires.
  const exec::JobRunner hanger = [&calls](const exec::Job& job) {
    ++calls;
    exec::JobOutcome o;
    o.job = job;
    cancel::Token* token = cancel::current();
    EXPECT_NE(token, nullptr);
    while (token != nullptr && !token->cancelled()) {
      (void)token->wait_ms(10'000);
    }
    try {
      cancel::throw_if_cancelled("test.hang");
    } catch (const Error& e) {
      o.error = e.what();
      o.errc = std::string(errc_name(e.info().code));
    }
    return o;
  };
  const auto t0 = std::chrono::steady_clock::now();
  const exec::JobOutcome out = exec::run_job_with_retry(
      exec::Job{}, /*max_retries=*/5, /*backoff_ms=*/0, hanger, &dog);
  // One attempt only: a hung job rarely unhangs, so the timeout is
  // final and the retry budget stays unspent.
  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.timed_out);
  EXPECT_TRUE(out.quarantined);
  EXPECT_EQ(out.quarantine_reason, "timeout");
  EXPECT_EQ(out.attempts, 1u);
  ASSERT_EQ(out.attempt_errcs.size(), 1u);
  EXPECT_EQ(out.attempt_errcs[0], "timeout");
  EXPECT_LT(elapsed_ms_since(t0), 5000u);
}

TEST(RetryAggregation, HangFailpointIsCancelledByTheWatchdog) {
  fp::configure("engine.job=hang");
  exec::Watchdog dog(30);
  u32 calls = 0;
  const exec::JobRunner runner = [&calls](const exec::Job& job) {
    ++calls;
    exec::JobOutcome o;
    o.job = job;
    switch (fp::check("engine.job")) {
      case fp::Action::kCancelled: {
        // The park ended: surface the token's verdict like run_job does.
        cancel::Token* token = cancel::current();
        const auto reason = token != nullptr ? token->reason()
                                             : cancel::Reason::kCancel;
        const Error e = cancel::cancelled_error(reason, "engine.job");
        o.error = e.what();
        o.errc = std::string(errc_name(e.info().code));
        return o;
      }
      default:
        break;
    }
    o.ok = true;
    return o;
  };
  const exec::JobOutcome out =
      exec::run_job_with_retry(exec::Job{}, 0, 0, runner, &dog);
  fp::clear();
  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.timed_out);
  EXPECT_EQ(out.quarantine_reason, "timeout");
  EXPECT_EQ(out.errc, "timeout");
}

TEST(Backoff, SignalMidBackoffDrainsWithinASlice) {
  exec::install_signal_handlers();
  exec::reset_interrupt();
  u32 calls = 0;
  std::thread raiser([] {
    const cancel::Token pace;
    (void)pace.wait_ms(40);
    (void)std::raise(SIGINT);
  });
  const auto t0 = std::chrono::steady_clock::now();
  // 4 s backoff before the first retry; the SIGINT ~40 ms in must
  // preempt it within a wait slice, not after the full delay.
  const exec::JobOutcome out = exec::run_job_with_retry(
      exec::Job{}, /*max_retries=*/1, /*backoff_ms=*/4000,
      always_failing(calls));
  const u64 took = elapsed_ms_since(t0);
  raiser.join();
  exec::reset_interrupt();
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(calls, 1u);  // the retry never ran
  EXPECT_EQ(out.attempts, 1u);
  // Interrupted, not exhausted: the job is NOT quarantined, so a
  // --resume re-attempts it without ceremony.
  EXPECT_FALSE(out.quarantined);
  ASSERT_EQ(out.attempt_errcs.size(), 1u);
  EXPECT_EQ(out.attempt_errcs[0], "io");
  EXPECT_LT(took, 1000u);
}

TEST(ExitCodes, QuarantineCountAndSweepExitCode) {
  std::vector<exec::JobOutcome> outcomes(3);
  outcomes[0].ok = true;
  outcomes[1].ok = true;
  outcomes[2].ok = true;
  EXPECT_EQ(exec::quarantined_count(outcomes), 0u);
  EXPECT_EQ(exec::sweep_exit_code(outcomes), 0);

  outcomes[1].ok = false;
  EXPECT_EQ(exec::sweep_exit_code(outcomes), 1);

  outcomes[1].quarantined = true;
  EXPECT_EQ(exec::quarantined_count(outcomes), 1u);
  EXPECT_EQ(exec::sweep_exit_code(outcomes), exec::kExitQuarantine);
}

}  // namespace
}  // namespace cnt
