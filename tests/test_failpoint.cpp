// Unit tests for the deterministic failpoint registry
// (common/failpoint.hpp, docs/crash_consistency.md): spec parsing with
// did-you-mean diagnostics, @N trigger semantics, one-shot firing,
// environment configuration, hit-count probing and the crash action.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace cnt {
namespace {

/// Disarm every failpoint when a test exits, pass or fail.
struct FpGuard {
  FpGuard() { fp::clear(); }
  ~FpGuard() { fp::clear(); }
};

TEST(FailpointSpec, EntryWithoutEqualsIsSyntaxError) {
  FpGuard guard;
  try {
    fp::configure("journal.write");
    FAIL() << "must throw";
  } catch (const ValueError& e) {
    EXPECT_EQ(e.info().code, Errc::kSyntax);
    EXPECT_EQ(e.info().source, "CNT_FAILPOINTS");
    EXPECT_NE(e.info().hint.find("site=action"), std::string::npos);
  }
  EXPECT_FALSE(fp::enabled());  // a bad spec arms nothing
}

TEST(FailpointSpec, UnknownSiteGetsDidYouMean) {
  FpGuard guard;
  try {
    fp::configure("journal.wrote=crash");
    FAIL() << "must throw";
  } catch (const ValueError& e) {
    EXPECT_EQ(e.info().code, Errc::kUnknownKey);
    EXPECT_EQ(e.info().message, "unknown failpoint site 'journal.wrote'");
    EXPECT_EQ(e.info().hint, "did you mean 'journal.write'?");
  }
}

TEST(FailpointSpec, UnknownActionAndBadIndexAreValueErrors) {
  FpGuard guard;
  try {
    fp::configure("journal.write=explode");
    FAIL() << "must throw";
  } catch (const ValueError& e) {
    EXPECT_EQ(e.info().code, Errc::kValue);
    EXPECT_NE(e.info().hint.find("error:ENOSPC"), std::string::npos);
  }
  EXPECT_THROW(fp::configure("journal.write=crash@0"), ValueError);
  EXPECT_THROW(fp::configure("journal.write=crash@x"), ValueError);
  EXPECT_THROW(fp::configure("journal.write=delay:99999999"), ValueError);
}

TEST(FailpointTrigger, FiresOnNthEvaluationExactlyOnce) {
  FpGuard guard;
  fp::configure("csv.write=error:ENOSPC@2");
  ASSERT_TRUE(fp::enabled());
  EXPECT_EQ(fp::evaluate("csv.write"), fp::Action::kNone);
  EXPECT_EQ(fp::evaluate("csv.write"), fp::Action::kErrorEnospc);
  EXPECT_EQ(fp::evaluate("csv.write"), fp::Action::kNone);  // one-shot
  EXPECT_EQ(fp::hit_count("csv.write"), 3u);
}

TEST(FailpointTrigger, SitesAreIndependent) {
  FpGuard guard;
  fp::configure("csv.write=error:EIO; csv.sync=error:ENOSPC");
  EXPECT_EQ(fp::evaluate("csv.sync"), fp::Action::kErrorEnospc);
  EXPECT_EQ(fp::evaluate("csv.write"), fp::Action::kErrorEio);
  const auto armed = fp::armed();
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_EQ(armed[0].site, "csv.write");
  EXPECT_EQ(armed[0].action, "error:EIO");
  EXPECT_EQ(armed[1].site, "csv.sync");
}

TEST(FailpointTrigger, ClearDisarmsEverything) {
  FpGuard guard;
  fp::configure("csv.write=error:ENOSPC");
  EXPECT_TRUE(fp::enabled());
  fp::clear();
  EXPECT_FALSE(fp::enabled());
  EXPECT_EQ(fp::check("csv.write"), fp::Action::kNone);
}

TEST(FailpointCatalog, IsSortedAndCoversEveryWriterFamily) {
  const auto& catalog = fp::site_catalog();
  EXPECT_TRUE(std::is_sorted(catalog.begin(), catalog.end()));
  for (const char* site :
       {"bench.write", "csv.rename", "engine.job", "journal.sync",
        "stats.write", "trace.rename", "trs.write"}) {
    EXPECT_TRUE(std::binary_search(catalog.begin(), catalog.end(),
                                   std::string(site)))
        << site << " missing from the catalog";
  }
}

// Exact pins: the grammar's vocabulary is load-bearing for the chaos
// wall (tools/cnt-chaos composes schedules from these strings) and for
// docs/crash_consistency.md. Growing either catalog must update this
// test, the docs and the harness together.
TEST(FailpointCatalog, SiteAndActionListsArePinned) {
  const std::vector<std::string> sites = {
      "bench.rename", "bench.sync",    "bench.write",  "csv.rename",
      "csv.sync",     "csv.write",     "engine.job",   "journal.rename",
      "journal.sync", "journal.write", "stats.rename", "stats.sync",
      "stats.write",  "trace.rename",  "trace.sync",   "trace.write",
      "trs.sync",     "trs.write",
  };
  EXPECT_EQ(fp::site_catalog(), sites);

  const std::vector<std::string> actions = {
      "crash", "delay", "error:EIO", "error:ENOSPC", "hang", "short-write",
  };
  EXPECT_EQ(fp::action_catalog(), actions);
  EXPECT_TRUE(std::is_sorted(actions.begin(), actions.end()));
}

// The `hang` action parks on the ambient cancellation token and surfaces
// Action::kCancelled once the token fires -- the watchdog's kill switch
// (docs/robustness.md). Without a token it would poll forever; that
// torture case belongs to the chaos wall, not a unit test.
TEST(FailpointHang, ParkEndsWhenTheInstalledTokenIsCancelled) {
  FpGuard guard;
  fp::configure("csv.write=hang");

  cancel::Token token;
  cancel::ScopedToken scope(token);
  std::thread canceller([&token] {
    const cancel::Token pace;
    (void)pace.wait_ms(30);
    token.cancel(cancel::Reason::kTimeout);
  });

  const auto t0 = std::chrono::steady_clock::now();
  const fp::Action got = fp::evaluate("csv.write");
  const auto took = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  canceller.join();

  EXPECT_EQ(got, fp::Action::kCancelled);
  EXPECT_TRUE(token.cancelled());
  EXPECT_LT(took.count(), 5000);  // parked, then woke promptly -- no spin-out
  // One-shot: the entry fired; the next write proceeds untouched.
  EXPECT_EQ(fp::evaluate("csv.write"), fp::Action::kNone);
}

TEST(FailpointEnv, ConfigureFromEnvArmsAndReportProbes) {
  FpGuard guard;
  const std::string report = ::testing::TempDir() +
                             "cnt_failpoint_report." +
                             std::to_string(::getpid());
  ASSERT_EQ(::setenv("CNT_FAILPOINTS", "csv.write=error:ENOSPC@7", 1), 0);
  ASSERT_EQ(::setenv("CNT_FAILPOINT_REPORT", report.c_str(), 1), 0);
  fp::configure_from_env();
  ASSERT_EQ(::unsetenv("CNT_FAILPOINTS"), 0);
  ASSERT_EQ(::unsetenv("CNT_FAILPOINT_REPORT"), 0);

  const auto armed = fp::armed();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].site, "csv.write");
  EXPECT_EQ(armed[0].trigger_hit, 7u);

  (void)fp::evaluate("csv.write");
  (void)fp::evaluate("csv.write");
  (void)fp::evaluate("trs.sync");
  fp::write_report();
  std::ifstream in(report);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "csv.write 2\ntrs.sync 1\n");
  (void)std::remove(report.c_str());
}

TEST(FailpointProbe, ReportModeCountsWithoutArming) {
  FpGuard guard;
  const std::string report = ::testing::TempDir() +
                             "cnt_failpoint_probe." +
                             std::to_string(::getpid());
  ASSERT_EQ(::setenv("CNT_FAILPOINT_REPORT", report.c_str(), 1), 0);
  fp::configure_from_env();
  ASSERT_EQ(::unsetenv("CNT_FAILPOINT_REPORT"), 0);
  EXPECT_TRUE(fp::enabled());  // probing counts as enabled
  EXPECT_EQ(fp::check("journal.write"), fp::Action::kNone);
  EXPECT_EQ(fp::hit_count("journal.write"), 1u);
  (void)std::remove(report.c_str());
}

using FailpointDeathTest = ::testing::Test;

TEST(FailpointDeathTest, CrashActionKillsTheProcess) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(
      {
        fp::configure("csv.write=crash");
        (void)fp::evaluate("csv.write");
      },
      ::testing::KilledBySignal(SIGKILL), "");
}

}  // namespace
}  // namespace cnt
