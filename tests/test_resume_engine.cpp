// The crash-safety tentpole, end to end: kill a sweep mid-flight
// (gracefully via cancel_check / SIGINT, or hard via _exit in a forked
// child), resume it with --resume semantics, and require the final JSONL
// to be byte-identical to an uninterrupted run with only the missing jobs
// re-simulated. Plus the retry policy and the resume/retry option chain.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.hpp"
#include "exec/engine.hpp"
#include "exec/interrupt.hpp"
#include "exec/journal.hpp"
#include "exec/options.hpp"
#include "exec/sweep.hpp"

#if defined(__unix__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cnt::exec {
namespace {

constexpr double kScale = 0.02;

SweepSpec small_spec() {
  SimConfig base;
  base.with_cmos = base.with_static = base.with_ideal = false;
  SweepSpec spec;
  spec.base(base)
      .scale(kScale)
      .workloads({"stream_copy", "zipf_kv"})
      .axis("window", std::vector<usize>{7, 15},
            [](SimConfig& cfg, usize w) { cfg.cnt.window = w; });
  return spec;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".partial").c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string reference_run(const std::string& path) {
  (void)ExperimentEngine(
      {.jobs = 1, .jsonl_path = path, .jsonl_timing = false})
      .run(small_spec());
  return slurp(path);
}

// The acceptance-criteria test: kill after 2 of 4 jobs, resume, and the
// journal must be byte-identical to the uninterrupted run.
TEST(ResumeEngine, KillAndResumeIsByteIdentical) {
  const std::string ref_path = temp_path("cnt_resume_ref.jsonl");
  const std::string ref = reference_run(ref_path);
  ASSERT_FALSE(ref.empty());

  const std::string path = temp_path("cnt_resume_kill.jsonl");
  usize polls = 0;
  EngineOptions interrupted_opts;
  interrupted_opts.jobs = 1;
  interrupted_opts.jsonl_path = path;
  interrupted_opts.jsonl_timing = false;
  interrupted_opts.cancel_check = [&polls] { return ++polls >= 3; };
  try {
    (void)ExperimentEngine(interrupted_opts).run(small_spec());
    FAIL() << "sweep was not interrupted";
  } catch (const SweepInterrupted& e) {
    EXPECT_EQ(e.completed(), 2u);
    EXPECT_EQ(e.total(), 4u);
    EXPECT_EQ(e.journal_path(), path + ".partial");
  }
  // The kill leaves the flushed partial behind, never the final file.
  EXPECT_FALSE(std::ifstream(path).good());
  ASSERT_TRUE(std::ifstream(path + ".partial").good());

  usize resume_polls = 0;
  EngineOptions resume_opts;
  resume_opts.jobs = 1;
  resume_opts.jsonl_path = path;
  resume_opts.jsonl_timing = false;
  resume_opts.resume = true;
  resume_opts.cancel_check = [&resume_polls] {
    ++resume_polls;
    return false;
  };
  const auto outcomes = ExperimentEngine(resume_opts).run(small_spec());

  // Byte-identical journal, partial renamed away.
  EXPECT_EQ(slurp(path), ref);
  EXPECT_FALSE(std::ifstream(path + ".partial").good());

  // Exactly the 2 missing jobs were re-simulated (cancel_check is polled
  // once per executed job); the journaled 2 were replayed.
  EXPECT_EQ(resume_polls, 2u);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].resumed);
  EXPECT_TRUE(outcomes[1].resumed);
  EXPECT_FALSE(outcomes[2].resumed);
  EXPECT_FALSE(outcomes[3].resumed);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << o.error;
}

// Resumed outcomes must aggregate identically to computed ones.
TEST(ResumeEngine, ResumedOutcomesMatchComputedBitExactly) {
  const std::string path = temp_path("cnt_resume_agg.jsonl");
  const auto fresh = ExperimentEngine(
      {.jobs = 1, .jsonl_path = path, .jsonl_timing = false})
      .run(small_spec());

  // Resume over the *final* file (everything journaled): all 4 replay.
  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  const auto resumed = ExperimentEngine(opts).run(small_spec());

  ASSERT_EQ(resumed.size(), fresh.size());
  for (usize i = 0; i < fresh.size(); ++i) {
    EXPECT_TRUE(resumed[i].resumed);
    ASSERT_EQ(resumed[i].result.policies.size(),
              fresh[i].result.policies.size());
    for (usize j = 0; j < fresh[i].result.policies.size(); ++j) {
      EXPECT_EQ(resumed[i].result.policies[j].total().in_joules(),
                fresh[i].result.policies[j].total().in_joules());
    }
    EXPECT_EQ(resumed[i].result.saving(kPolicyCnt),
              fresh[i].result.saving(kPolicyCnt));
  }
}

TEST(ResumeEngine, CorruptTailIsRecomputed) {
  const std::string ref_path = temp_path("cnt_resume_corrupt_ref.jsonl");
  const std::string ref = reference_run(ref_path);

  const std::string path = temp_path("cnt_resume_corrupt.jsonl");
  (void)reference_run(path);

  // Fake a torn final write: move the journal back to .partial and chop
  // the last row in half.
  std::string text = slurp(path);
  std::remove(path.c_str());
  text.resize(text.size() - 40);
  {
    std::ofstream out(path + ".partial");  // cnt-lint: io-ok fabricating raw journal bytes
    out << text;
  }

  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  const auto outcomes = ExperimentEngine(opts).run(small_spec());
  EXPECT_EQ(slurp(path), ref);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].resumed);
  EXPECT_FALSE(outcomes[3].resumed);  // its row was torn -> re-simulated
}

TEST(ResumeEngine, MidFileCorruptionRefusesToResume) {
  const std::string path = temp_path("cnt_resume_midfile.jsonl");
  (void)reference_run(path);

  // Damage a row in the MIDDLE of the journal (sealed rows follow it):
  // unlike a torn tail this is not a crash signature, and silently
  // replaying around the hole would drop results -- resume must refuse.
  std::string text = slurp(path);
  std::remove(path.c_str());
  text[text.find("job_id", text.find('\n') + 1)] = 'X';
  {
    std::ofstream out(path + ".partial");  // cnt-lint: io-ok fabricating raw journal bytes
    out << text;
  }

  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  try {
    (void)ExperimentEngine(opts).run(small_spec());
    FAIL() << "mid-file-corrupt journal was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kChecksum);
    // The row index and the refusal rationale must reach the user.
    EXPECT_NE(e.info().message.find("row 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
    EXPECT_NE(e.info().source.find(".partial"), std::string::npos);
  }
}

TEST(ResumeEngine, MismatchedSweepFingerprintThrows) {
  const std::string path = temp_path("cnt_resume_mismatch.jsonl");
  (void)reference_run(path);

  SweepSpec other = small_spec();
  other.axis("partitions", std::vector<usize>{2},
             [](SimConfig& cfg, usize k) { cfg.cnt.partitions = k; });
  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  try {
    (void)ExperimentEngine(opts).run(other);
    FAIL() << "mismatched journal was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
}

TEST(ResumeEngine, ResumeWithoutJournalRunsFresh) {
  const std::string path = temp_path("cnt_resume_fresh.jsonl");
  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;  // nothing to resume from: plain full run
  const auto outcomes = ExperimentEngine(opts).run(small_spec());
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.ok);
    EXPECT_FALSE(o.resumed);
  }
}

TEST(ResumeEngine, ParallelResumeMatchesSerialResume) {
  const std::string ref_path = temp_path("cnt_resume_par_ref.jsonl");
  const std::string ref = reference_run(ref_path);

  const std::string path = temp_path("cnt_resume_par.jsonl");
  usize polls = 0;
  EngineOptions kill_opts;
  kill_opts.jobs = 1;
  kill_opts.jsonl_path = path;
  kill_opts.jsonl_timing = false;
  kill_opts.cancel_check = [&polls] { return ++polls >= 2; };
  EXPECT_THROW((void)ExperimentEngine(kill_opts).run(small_spec()),
               SweepInterrupted);

  EngineOptions opts;
  opts.jobs = 4;  // resume on the parallel path
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  (void)ExperimentEngine(opts).run(small_spec());
  EXPECT_EQ(slurp(path), ref);
}

TEST(Retry, SucceedsAfterTransientFailures) {
  u32 calls = 0;
  const JobRunner flaky = [&calls](const Job& job) {
    JobOutcome o;
    o.job = job;
    if (++calls < 3) {
      o.error = "transient";
      return o;
    }
    o.ok = true;
    return o;
  };
  Job job;
  job.id = 5;
  const JobOutcome out =
      run_job_with_retry(job, /*max_retries=*/3, /*backoff_ms=*/0, flaky);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(out.job.id, 5u);
}

TEST(Retry, GivesUpAfterBudget) {
  u32 calls = 0;
  const JobRunner broken = [&calls](const Job& job) {
    JobOutcome o;
    o.job = job;
    o.error = "permanent";
    ++calls;
    return o;
  };
  const JobOutcome out = run_job_with_retry(Job{}, 2, 0, broken);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 3u);  // 1 initial + 2 retries
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(out.error, "permanent");
}

TEST(Retry, ZeroBudgetPreservesLegacySingleAttempt) {
  u32 calls = 0;
  const JobRunner broken = [&calls](const Job& job) {
    JobOutcome o;
    o.job = job;
    o.error = "boom";
    ++calls;
    return o;
  };
  const JobOutcome out = run_job_with_retry(Job{}, 0, 0, broken);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(calls, 1u);
}

TEST(Interrupt, SignalHandlerSetsAndResetsFlag) {
  install_signal_handlers();
  reset_interrupt();
  EXPECT_FALSE(interrupt_requested());
  std::raise(SIGINT);
  EXPECT_TRUE(interrupt_requested());
  reset_interrupt();
  EXPECT_FALSE(interrupt_requested());
}

TEST(Interrupt, EngineStopsOnPendingInterrupt) {
  const std::string path = temp_path("cnt_resume_signal.jsonl");
  request_interrupt();
  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.handle_signals = true;
  try {
    (void)ExperimentEngine(opts).run(small_spec());
    FAIL() << "pending interrupt was ignored";
  } catch (const SweepInterrupted& e) {
    EXPECT_EQ(e.completed(), 0u);
    EXPECT_EQ(e.total(), 4u);
  }
  reset_interrupt();

  // Without handle_signals the engine ignores the global flag entirely.
  request_interrupt();
  EngineOptions plain;
  plain.jobs = 1;
  const auto outcomes = ExperimentEngine(plain).run(small_spec());
  reset_interrupt();
  EXPECT_EQ(outcomes.size(), 4u);
}

// A hard kill: the child dies via _exit (no unwinding, no
// close_interrupted, exactly like SIGKILL mid-sweep) after 2 jobs; the
// parent resumes from whatever the per-row flush left on disk.
// fork() interacts poorly with ThreadSanitizer's runtime, so the test is
// compiled out under TSan -- the graceful-kill tests above still run.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CNT_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define CNT_TSAN 1
#endif
#if defined(__unix__) && !defined(CNT_TSAN)
TEST(ResumeEngine, HardKillThenResumeIsByteIdentical) {
  const std::string ref_path = temp_path("cnt_resume_hard_ref.jsonl");
  const std::string ref = reference_run(ref_path);

  const std::string path = temp_path("cnt_resume_hard.jsonl");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die abruptly after 2 completed jobs.
    usize polls = 0;
    EngineOptions opts;
    opts.jobs = 1;
    opts.jsonl_path = path;
    opts.jsonl_timing = false;
    opts.cancel_check = [&polls]() -> bool {
      if (++polls >= 3) _exit(42);
      return false;
    };
    try {
      (void)ExperimentEngine(opts).run(small_spec());
    } catch (...) {
    }
    _exit(0);  // not reached
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42);
  ASSERT_TRUE(std::ifstream(path + ".partial").good());

  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  const auto outcomes = ExperimentEngine(opts).run(small_spec());
  EXPECT_EQ(slurp(path), ref);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].resumed);
  EXPECT_TRUE(outcomes[1].resumed);
  EXPECT_FALSE(outcomes[2].resumed);
}
#endif

// --- Quarantine journal rows (docs/robustness.md) --------------------------
//
// A hang at job 2 of 4 under the watchdog seals a Q-row mid-journal; the
// sweep still completes, and --resume replays the clean rows byte-
// identically while re-attempting only the quarantined job.

std::string quarantined_run(const std::string& path, const char* spec) {
  fp::configure(spec);
  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.job_timeout_ms = 100;
  const auto outcomes = ExperimentEngine(opts).run(small_spec());
  fp::clear();
  EXPECT_EQ(quarantined_count(outcomes), 1u);
  EXPECT_EQ(sweep_exit_code(outcomes), kExitQuarantine);
  return slurp(path);
}

TEST(QuarantineJournal, ResumeReplaysCleanRowsAndClearsTheQRow) {
  const std::string ref_path = temp_path("cnt_quar_ref.jsonl");
  const std::string ref = reference_run(ref_path);

  const std::string path = temp_path("cnt_quar_resume.jsonl");
  const std::string chaos = quarantined_run(path, "engine.job=hang@2");
  ASSERT_NE(chaos, ref);
  EXPECT_NE(chaos.find("\"quarantined\":true"), std::string::npos);
  EXPECT_NE(chaos.find("\"reason\":\"timeout\""), std::string::npos);
  EXPECT_NE(chaos.find("\"attempt_errcs\":[\"timeout\"]"),
            std::string::npos);

  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  const auto outcomes = ExperimentEngine(opts).run(small_spec());
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].resumed);
  EXPECT_FALSE(outcomes[1].resumed);  // the quarantined job, re-attempted
  EXPECT_TRUE(outcomes[2].resumed);
  EXPECT_TRUE(outcomes[3].resumed);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << o.error;
  EXPECT_EQ(slurp(path), ref);
}

TEST(QuarantineJournal, TornQRowTailIsTruncatedAndRecomputed) {
  const std::string ref_path = temp_path("cnt_quar_torn_ref.jsonl");
  const std::string ref = reference_run(ref_path);

  // Hang the LAST job so the Q-row is the journal's final row, then
  // fake a torn write by chopping into it: the crash signature resume
  // must truncate, not refuse.
  const std::string path = temp_path("cnt_quar_torn.jsonl");
  std::string text = quarantined_run(path, "engine.job=hang@4");
  std::remove(path.c_str());
  text.resize(text.size() - 20);
  {
    std::ofstream out(path + ".partial");  // cnt-lint: io-ok fabricating raw journal bytes
    out << text;
  }

  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  const auto outcomes = ExperimentEngine(opts).run(small_spec());
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_FALSE(outcomes[3].resumed);  // torn Q-row -> re-simulated
  EXPECT_EQ(slurp(path), ref);
}

TEST(QuarantineJournal, CorruptQRowWithSealedRowsAfterItRefuses) {
  const std::string path = temp_path("cnt_quar_corrupt.jsonl");
  std::string text = quarantined_run(path, "engine.job=hang@2");
  std::remove(path.c_str());

  // Damage the Q-row in place: intact sealed rows follow it, so this is
  // in-place damage, not a crash signature -- resume must refuse with
  // the checksum taxonomy, never replay around the hole.
  const std::size_t at = text.find("\"quarantined\"");
  ASSERT_NE(at, std::string::npos);
  text[at + 1] = 'X';
  {
    std::ofstream out(path + ".partial");  // cnt-lint: io-ok fabricating raw journal bytes
    out << text;
  }

  EngineOptions opts;
  opts.jobs = 1;
  opts.jsonl_path = path;
  opts.jsonl_timing = false;
  opts.resume = true;
  try {
    (void)ExperimentEngine(opts).run(small_spec());
    FAIL() << "journal with a damaged Q-row was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.info().code, Errc::kChecksum);
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
}

TEST(Options, ResumePrecedenceChain) {
  unsetenv("CNT_RESUME");
  EXPECT_FALSE(resume_from_env());
  EXPECT_TRUE(resume_from_env(true));

  setenv("CNT_RESUME", "1", 1);
  EXPECT_TRUE(resume_from_env());
  setenv("CNT_RESUME", "off", 1);
  EXPECT_FALSE(resume_from_env(true));
  setenv("CNT_RESUME", "garbage", 1);
  EXPECT_TRUE(resume_from_env(true));  // malformed -> fallback

  const char* argv1[] = {"bench", "--resume"};
  EXPECT_TRUE(resume_from_args(2, argv1));
  const char* argv2[] = {"bench", "--resume", "--no-resume"};
  EXPECT_FALSE(resume_from_args(3, argv2));  // last flag wins
  setenv("CNT_RESUME", "1", 1);
  const char* argv3[] = {"bench", "--other"};
  EXPECT_TRUE(resume_from_args(2, argv3));  // env fallback
  unsetenv("CNT_RESUME");
}

TEST(Options, RetriesChain) {
  unsetenv("CNT_RETRIES");
  EXPECT_EQ(retries_from_env(), 0u);
  EXPECT_EQ(resolve_retries(0), 0u);
  EXPECT_EQ(resolve_retries(4), 4u);

  setenv("CNT_RETRIES", "3", 1);
  EXPECT_EQ(retries_from_env(), 3u);
  EXPECT_EQ(resolve_retries(0), 3u);
  EXPECT_EQ(resolve_retries(1), 1u);  // explicit beats env
  setenv("CNT_RETRIES", "0", 1);
  EXPECT_EQ(retries_from_env(7), 0u);
  setenv("CNT_RETRIES", "junk", 1);
  EXPECT_EQ(retries_from_env(7), 7u);
  unsetenv("CNT_RETRIES");
}

TEST(Options, JobTimeoutChain) {
  unsetenv("CNT_JOB_TIMEOUT_MS");
  EXPECT_EQ(job_timeout_from_env(), 0u);
  EXPECT_EQ(resolve_job_timeout(0), 0u);
  EXPECT_EQ(resolve_job_timeout(250), 250u);

  setenv("CNT_JOB_TIMEOUT_MS", "500", 1);
  EXPECT_EQ(job_timeout_from_env(), 500u);
  EXPECT_EQ(resolve_job_timeout(0), 500u);
  EXPECT_EQ(resolve_job_timeout(100), 100u);  // explicit beats env
  setenv("CNT_JOB_TIMEOUT_MS", "junk", 1);
  EXPECT_EQ(job_timeout_from_env(7), 7u);  // malformed -> fallback
  unsetenv("CNT_JOB_TIMEOUT_MS");
}

}  // namespace
}  // namespace cnt::exec
