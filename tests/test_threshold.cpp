#include "cnt/threshold.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "energy/sram_cell.hpp"

namespace cnt {
namespace {

const BitEnergies kCnfet = TechParams::cnfet().cell;

TEST(Threshold, ThRdRoughlyHalfWindowForCnfet) {
  // Paper: "Since E_rd0 - E_rd1 is quite close to E_wr1 - E_wr0, Th_rd is
  // roughly half of W."
  const ThresholdTable t(kCnfet, 15, 512);
  EXPECT_NEAR(t.th_rd(), 7.5, 1.2);
}

TEST(Threshold, ThRdMatchesEq3) {
  const ThresholdTable t(kCnfet, 20, 512);
  const double drd = kCnfet.read_delta().in_joules();
  const double dwr = kCnfet.write_delta().in_joules();
  const double expect = 20.0 / (1.0 + drd / dwr);
  EXPECT_NEAR(t.th_rd(), expect, 1e-9);
}

TEST(Threshold, WindowEnergyMatchesEq4) {
  const ThresholdTable t(kCnfet, 15, 512);
  const usize wr = 5, n1 = 100;
  const Energy expect = 10.0 * read_energy_counts(kCnfet, 512, n1) +
                        5.0 * write_energy_counts(kCnfet, 512, n1);
  EXPECT_NEAR(t.window_energy(wr, n1).in_joules(), expect.in_joules(), 1e-24);
}

TEST(Threshold, SwitchedEnergyIsEnergyOfComplement) {
  const ThresholdTable t(kCnfet, 15, 512);
  EXPECT_DOUBLE_EQ(t.window_energy_switched(4, 100).in_joules(),
                   t.window_energy(4, 412).in_joules());
}

TEST(Threshold, EncodeCostMatchesPaperFormula) {
  // E_encode = N1*E_wr0 + (L-N1)*E_wr1 (the re-encoded data has L-N1 ones).
  const ThresholdTable t(kCnfet, 15, 512);
  const usize n1 = 77;
  const Energy expect = static_cast<double>(n1) * kCnfet.wr0 +
                        static_cast<double>(512 - n1) * kCnfet.wr1;
  EXPECT_NEAR(t.encode_cost(n1).in_joules(), expect.in_joules(), 1e-24);
}

TEST(Threshold, ESaveSignTracksAccessMix) {
  const ThresholdTable t(kCnfet, 15, 512);
  EXPECT_GT(t.e_save(0).in_joules(), 0.0);   // all reads
  EXPECT_LT(t.e_save(15).in_joules(), 0.0);  // all writes
}

TEST(Threshold, ClassificationMatchesESaveSign) {
  const ThresholdTable t(kCnfet, 15, 512);
  for (usize wr = 0; wr <= 15; ++wr) {
    EXPECT_EQ(t.is_write_intensive(wr), t.e_save(wr).in_joules() < 0.0)
        << "wr=" << wr;
  }
}

// The central correctness property: the hardware table decision (Eq. 6,
// clamped) must exactly equal the direct energy comparison
// E > E_bar + E_encode for EVERY (wr_num, bit1num) pair.
class TableEquivalence : public ::testing::TestWithParam<usize> {};

TEST_P(TableEquivalence, TableMatchesDirectComparison) {
  const usize window = GetParam();
  for (const usize unit_bits : {64u, 512u}) {
    const ThresholdTable t(kCnfet, window, unit_bits);
    for (usize wr = 0; wr <= window; ++wr) {
      for (usize n1 = 0; n1 <= unit_bits; n1 += (unit_bits > 64 ? 7 : 1)) {
        const double profit = (t.window_energy(wr, n1) -
                               t.window_energy_switched(wr, n1) -
                               t.encode_cost(n1))
                                  .in_joules();
        const bool direct = profit > 0.0;
        EXPECT_EQ(t.should_switch(wr, n1), direct)
            << "W=" << window << " L=" << unit_bits << " wr=" << wr
            << " n1=" << n1 << " profit=" << profit;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, TableEquivalence,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 31, 63));

TEST(Threshold, CmosSymmetricCellNeverSwitches) {
  // For a value-symmetric cell, no encoding ever pays: E == E_bar and
  // E_encode > 0.
  BitEnergies sym{.rd0 = fJ(4.2), .rd1 = fJ(4.2), .wr0 = fJ(4.8),
                  .wr1 = fJ(4.8)};
  const ThresholdTable t(sym, 15, 512);
  for (usize wr = 0; wr <= 15; ++wr) {
    for (usize n1 = 0; n1 <= 512; n1 += 64) {
      EXPECT_FALSE(t.should_switch(wr, n1));
    }
  }
}

TEST(Threshold, ReadIntensiveAllZerosWantsSwitch) {
  // A read-only window over an all-zeros line: inverting makes every read
  // cheap; the switch must fire.
  const ThresholdTable t(kCnfet, 15, 512);
  EXPECT_TRUE(t.should_switch(0, 0));
  // ...and an all-ones line is already optimal for reads.
  EXPECT_FALSE(t.should_switch(0, 512));
}

TEST(Threshold, WriteIntensiveAllOnesWantsSwitch) {
  const ThresholdTable t(kCnfet, 15, 512);
  EXPECT_TRUE(t.should_switch(15, 512));
  EXPECT_FALSE(t.should_switch(15, 0));
}

TEST(Threshold, HysteresisSuppressesMarginalSwitches) {
  const ThresholdTable strict(kCnfet, 15, 512, 0.0);
  const ThresholdTable lax(kCnfet, 15, 512, 0.5);
  usize strict_count = 0, lax_count = 0;
  for (usize wr = 0; wr <= 15; ++wr) {
    for (usize n1 = 0; n1 <= 512; n1 += 8) {
      strict_count += strict.should_switch(wr, n1);
      lax_count += lax.should_switch(wr, n1);
      // Hysteresis can only remove switches, never add them.
      if (lax.should_switch(wr, n1)) {
        EXPECT_TRUE(strict.should_switch(wr, n1));
      }
    }
  }
  EXPECT_LT(lax_count, strict_count);
}

TEST(Threshold, DegenerateWindowNeverSwitchesWhenProfitFlat) {
  // Engineer E_save == (E_wr1-E_wr0)/2 exactly: the profit slope is zero
  // and profit == L*(G - E_wr1) < 0, so no N1 may switch. W=1, one write:
  // G = -dwr < 0... instead construct via a read-only window with
  // rd0-rd1 == dwr/2.
  BitEnergies cell{.rd0 = fJ(1.5), .rd1 = fJ(0.5), .wr0 = fJ(0.5),
                   .wr1 = fJ(2.5)};  // drd = 1.0 = dwr/2
  const ThresholdTable t(cell, 1, 64);
  for (usize n1 = 0; n1 <= 64; ++n1) {
    EXPECT_FALSE(t.should_switch(0, n1)) << "n1=" << n1;
  }
}

// Randomized-cell property sweep: for arbitrary (but ordered) asymmetric
// cells, the clamped Eq.-6 table must match the direct comparison at every
// (wr_num, n1), and the classification must track E_save's sign.
class RandomCellProperty : public ::testing::TestWithParam<u64> {};

TEST_P(RandomCellProperty, TableExactForRandomCells) {
  Rng rng(GetParam());
  // Random cell with the CNFET orderings (rd0 > rd1, wr1 > wr0) but
  // arbitrary magnitudes and asymmetry ratios.
  const double rd1 = 0.1 + rng.uniform01() * 2.0;
  const double rd0 = rd1 + rng.uniform01() * 5.0 + 0.01;
  const double wr0 = 0.1 + rng.uniform01() * 2.0;
  const double wr1 = wr0 + rng.uniform01() * 5.0 + 0.01;
  const BitEnergies cell{.rd0 = fJ(rd0), .rd1 = fJ(rd1), .wr0 = fJ(wr0),
                         .wr1 = fJ(wr1)};

  const usize window = 3 + GetParam() % 20;
  const ThresholdTable t(cell, window, 64);
  for (usize wr = 0; wr <= window; ++wr) {
    EXPECT_EQ(t.is_write_intensive(wr), t.e_save(wr).in_joules() < 0.0);
    for (usize n1 = 0; n1 <= 64; ++n1) {
      const double profit = (t.window_energy(wr, n1) -
                             t.window_energy_switched(wr, n1) -
                             t.encode_cost(n1))
                                .in_joules();
      EXPECT_EQ(t.should_switch(wr, n1), profit > 0.0)
          << "seed=" << GetParam() << " W=" << window << " wr=" << wr
          << " n1=" << n1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cells, RandomCellProperty,
                         ::testing::Range<u64>(100, 125));

TEST(Threshold, ThresholdAccessorInRangeForTypicalCase) {
  const ThresholdTable t(kCnfet, 15, 512);
  // Read-only window: breakeven should be an interior value.
  const double th = t.threshold(0);
  EXPECT_GT(th, 0.0);
  EXPECT_LT(th, 512.0);
}

}  // namespace
}  // namespace cnt
