// End-to-end integration tests: the full suite at reduced scale must
// reproduce the paper's qualitative results (shape, not absolute numbers):
//   - CNT-Cache saves dynamic energy vs. the baseline CNFET cache on
//     average across the benchmark suite (paper: 22.2%);
//   - adaptive encoding beats static inversion on average;
//   - the ideal bound caps every policy;
//   - W = 15 region is a sensible operating point.
#include <gtest/gtest.h>

#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

// Shared fixture: run the suite once at small scale.
class SuiteIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimConfig cfg;
    results_ = new std::vector<SimResult>(run_suite(cfg, 0.2));
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }
  // cnt-lint: global-ok -- per-suite fixture, written once in SetUp
  static std::vector<SimResult>* results_;
};

std::vector<SimResult>* SuiteIntegration::results_ = nullptr;

TEST_F(SuiteIntegration, AllTenWorkloadsRan) {
  EXPECT_EQ(results_->size(), 10u);
}

TEST_F(SuiteIntegration, HeadlineMeanSavingInPaperBallpark) {
  // Paper: 22.2% average dynamic-power reduction for the D-Cache. At
  // reduced trace scale we accept a generous band around it; the full-size
  // number is tracked in EXPERIMENTS.md.
  const double mean = mean_saving(*results_);
  EXPECT_GT(mean, 0.10);
  EXPECT_LT(mean, 0.45);
}

TEST_F(SuiteIntegration, CntNeverLosesBadlyOnAnyWorkload) {
  for (const auto& r : *results_) {
    EXPECT_GT(r.saving(kPolicyCnt), -0.05) << r.workload;
  }
}

TEST_F(SuiteIntegration, CntBeatsStaticOnAverage) {
  double cnt_sum = 0, static_sum = 0;
  for (const auto& r : *results_) {
    cnt_sum += r.saving(kPolicyCnt);
    static_sum += r.saving(kPolicyStatic);
  }
  EXPECT_GT(cnt_sum, static_sum);
}

TEST_F(SuiteIntegration, IdealBoundsEveryPolicy) {
  for (const auto& r : *results_) {
    const double ideal = r.energy(kPolicyIdeal).in_joules();
    EXPECT_LE(ideal, r.energy(kPolicyBaseline).in_joules()) << r.workload;
    EXPECT_LE(ideal, r.energy(kPolicyStatic).in_joules()) << r.workload;
    // CNT pays real overheads (meta, logic, re-encode) the ideal does not,
    // so the data-array savings cannot push it below the bound minus those
    // overheads; in practice ideal <= cnt holds on all suite workloads.
    EXPECT_LE(ideal, r.energy(kPolicyCnt).in_joules()) << r.workload;
  }
}

TEST_F(SuiteIntegration, CmosWorstEverywhere) {
  for (const auto& r : *results_) {
    EXPECT_GT(r.energy(kPolicyCmos).in_joules(),
              r.energy(kPolicyBaseline).in_joules())
        << r.workload;
  }
}

TEST_F(SuiteIntegration, ReadHeavyLowDensityWorkloadsSaveMost) {
  // zipf_kv (hot, read-heavy, sparse integer data) must be among the
  // biggest savers; stream_scale (float data, streaming) among the weakest.
  double zipf = 0, scale = 0;
  for (const auto& r : *results_) {
    if (r.workload == "zipf_kv") zipf = r.saving(kPolicyCnt);
    if (r.workload == "stream_scale") scale = r.saving(kPolicyCnt);
  }
  EXPECT_GT(zipf, scale);
}

TEST(WindowSweepShape, MidWindowsBeatExtremes) {
  // E2's qualitative shape: very small windows (switch thrash + bigger
  // counters-per-access relative benefit) and very large windows (stale
  // encodings) should not beat the W~15 region dramatically; W=15 must be
  // within 5 points of the best swept value on the aggregate.
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  double best = -1.0, at15 = -1.0;
  for (const usize w : {3u, 7u, 15u, 31u, 63u}) {
    cfg.cnt.window = w;
    const auto results = run_suite(cfg, 0.1);
    const double mean = mean_saving(results);
    best = std::max(best, mean);
    if (w == 15) at15 = mean;
  }
  EXPECT_GT(at15, best - 0.05);
}

TEST(PartitionSweepShape, PartitionedBeatsWholeLine) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  cfg.cnt.partitions = 1;
  const double whole = mean_saving(run_suite(cfg, 0.1));
  cfg.cnt.partitions = 8;
  const double part8 = mean_saving(run_suite(cfg, 0.1));
  EXPECT_GT(part8, whole);
}

TEST(IcacheShape, IFetchStreamBenefits) {
  // The I-Cache sees read-only RISC words; adaptive encoding should yield
  // a clear saving there too (reads dominate).
  SimConfig cfg;
  cfg.cache.name = "L1I";
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const auto res = simulate(build_workload("ifetch", 0.3), cfg);
  EXPECT_GT(res.saving(kPolicyCnt), 0.05);
}

}  // namespace
}  // namespace cnt
