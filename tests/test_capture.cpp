#include "trace/capture.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/main_memory.hpp"
#include "sim/runner.hpp"

namespace cnt {
namespace {

TEST(Capture, RecordsLoadsAndStores) {
  TraceCapture tc("k");
  auto a = tc.array<u64>(0x1000, 4);
  a[0] = 7;
  const u64 v = a[0];
  EXPECT_EQ(v, 7u);
  const Workload w = tc.take();
  ASSERT_EQ(w.trace.size(), 2u);
  EXPECT_EQ(w.trace[0].op, MemOp::kWrite);
  EXPECT_EQ(w.trace[0].addr, 0x1000u);
  EXPECT_EQ(w.trace[0].value, 7u);
  EXPECT_EQ(w.trace[1].op, MemOp::kRead);
}

TEST(Capture, InitialContentsBecomeInitSegment) {
  TraceCapture tc("k");
  const std::vector<i32> init{10, -20, 30};
  auto a = tc.array<i32>(0x2000, init);
  EXPECT_EQ(static_cast<i32>(a[1]), -20);
  const Workload w = tc.take();
  ASSERT_EQ(w.init.size(), 1u);
  EXPECT_EQ(w.init[0].base, 0x2000u);
  EXPECT_EQ(w.init[0].bytes.size(), 12u);
  // Little-endian -20.
  EXPECT_EQ(w.init[0].bytes[4], 0xEC);
  EXPECT_EQ(w.init[0].bytes[7], 0xFF);
}

TEST(Capture, ZeroInitializedArrayReadsZero) {
  TraceCapture tc("k");
  auto a = tc.array<double>(0x3000, 8);
  EXPECT_DOUBLE_EQ(static_cast<double>(a[3]), 0.0);
}

TEST(Capture, FloatingPointRoundTrip) {
  TraceCapture tc("k");
  auto a = tc.array<double>(0x4000, 2);
  a[0] = 3.14159;
  a[1] = -2.5e-8;
  EXPECT_DOUBLE_EQ(static_cast<double>(a[0]), 3.14159);
  EXPECT_DOUBLE_EQ(static_cast<double>(a[1]), -2.5e-8);
}

TEST(Capture, SmallScalarTypes) {
  TraceCapture tc("k");
  auto bytes = tc.array<u8>(0x5000, 4);
  auto shorts = tc.array<u16>(0x6000, 4);
  bytes[2] = 0xAB;
  shorts[1] = 0xBEEF;
  // cnt-lint: narrow-ok -- explicit proxy loads of u8/u16 elements
  EXPECT_EQ(static_cast<u8>(bytes[2]), 0xAB);
  // cnt-lint: narrow-ok
  EXPECT_EQ(static_cast<u16>(shorts[1]), 0xBEEF);
  const Workload w = tc.take();
  EXPECT_EQ(w.trace[0].size, 1u);
  EXPECT_EQ(w.trace[1].size, 2u);
  EXPECT_TRUE(w.trace.well_formed());
}

TEST(Capture, CompoundAssignment) {
  TraceCapture tc("k");
  auto a = tc.array<i64>(0x7000, 1);
  a[0] = 10;
  a[0] += 5;   // load + store
  a[0] *= 2;   // load + store
  EXPECT_EQ(static_cast<i64>(a[0]), 30);
  const Workload w = tc.take();
  EXPECT_EQ(w.trace.size(), 1u + 2 + 2 + 1);
}

TEST(Capture, ElementToElementCopy) {
  TraceCapture tc("k");
  auto a = tc.array<u32>(0x8000, std::vector<u32>{11, 22});
  a[0] = a[1];  // load then store
  EXPECT_EQ(static_cast<u32>(a[0]), 22u);
}

TEST(Capture, OverlappingArraysRejected) {
  TraceCapture tc("k");
  (void)tc.array<u64>(0x9000, 8);
  EXPECT_THROW((void)tc.array<u8>(0x9010, 4), std::invalid_argument);
  // Adjacent (non-overlapping) is fine.
  EXPECT_NO_THROW((void)tc.array<u8>(0x9040, 4));
}

TEST(Capture, OutOfBoundsAccessThrows) {
  TraceCapture tc("k");
  auto a = tc.array<u64>(0xA000, 2);
  EXPECT_THROW((void)static_cast<u64>(a[2]), std::out_of_range);
  EXPECT_THROW(a[5] = 1, std::out_of_range);
}

TEST(Capture, TakeResetsForReuse) {
  TraceCapture tc("k");
  auto a = tc.array<u64>(0xB000, 1);
  a[0] = 1;
  const Workload first = tc.take();
  EXPECT_EQ(first.trace.size(), 1u);
  auto b = tc.array<u64>(0xB000, 1);  // same base OK after take()
  b[0] = 2;
  const Workload second = tc.take();
  EXPECT_EQ(second.trace.size(), 1u);
  EXPECT_EQ(second.trace[0].value, 2u);
}

TEST(Capture, CapturedKernelRunsThroughSimulator) {
  // End-to-end: capture a prefix-sum kernel, simulate it, and check the
  // cache's flushed memory matches the kernel's own arithmetic.
  TraceCapture tc("prefix_sum");
  const usize n = 256;
  std::vector<u64> init(n);
  for (usize i = 0; i < n; ++i) init[i] = i;
  auto a = tc.array<u64>(0x10000, init);
  for (usize i = 1; i < n; ++i) {
    a[i] = static_cast<u64>(a[i]) + static_cast<u64>(a[i - 1]);
  }
  const u64 expect_last = static_cast<u64>(a[n - 1]);
  const Workload w = tc.take();

  MainMemory mem;
  mem.load(w.init);
  CacheConfig cfg;
  cfg.size_bytes = 2048;
  cfg.ways = 2;
  Cache cache(cfg, mem);
  for (const auto& acc : w.trace) cache.access(acc);
  cache.flush();
  EXPECT_EQ(mem.peek_word(0x10000 + (n - 1) * 8, 8), expect_last);
  EXPECT_EQ(expect_last, 255u * 256 / 2);
}

TEST(Capture, SavingsComputableOnCapturedKernel) {
  TraceCapture tc("sparse_counters");
  auto counters = tc.array<u64>(0x20000, 64);
  for (int round = 0; round < 200; ++round) {
    counters[static_cast<usize>(round * 7 % 64)] += 1;
  }
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  const SimResult res = simulate(tc.take(), cfg);
  EXPECT_GT(res.cache_stats.accesses, 0u);
  EXPECT_TRUE(std::isfinite(res.saving(kPolicyCnt)));
}

}  // namespace
}  // namespace cnt
