#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cnt {
namespace {

CacheConfig tiny_config() {
  CacheConfig c;
  c.name = "tiny";
  c.size_bytes = 1024;  // 4 sets x 4 ways x 64 B
  c.ways = 4;
  c.line_bytes = 64;
  c.idle.idle_per_miss = 2;
  c.idle.hit_idle_period = 0;
  return c;
}

/// Records every event for inspection.
class Recorder final : public AccessSink {
 public:
  struct Rec {
    AccessKind kind;
    u32 set;
    u32 way;
    bool evicted_valid;
    bool evicted_dirty;
    u32 idle_slots;
    std::vector<u8> before;
    std::vector<u8> after;
  };
  void on_access(const AccessEvent& ev) override {
    Rec r;
    r.kind = ev.kind;
    r.set = ev.set;
    r.way = ev.way;
    r.evicted_valid = ev.evicted_valid;
    r.evicted_dirty = ev.evicted_dirty;
    r.idle_slots = ev.idle_slots;
    r.before.assign(ev.line_before.begin(), ev.line_before.end());
    r.after.assign(ev.line_after.begin(), ev.line_after.end());
    recs.push_back(std::move(r));
  }
  std::vector<Rec> recs;
};

TEST(Cache, ColdMissThenHit) {
  MainMemory mem;
  Cache cache(tiny_config(), mem);
  Recorder rec;
  cache.add_sink(rec);

  cache.access(MemAccess::read(0x1000));
  cache.access(MemAccess::read(0x1008));
  EXPECT_EQ(cache.stats().read_misses, 1u);
  EXPECT_EQ(cache.stats().read_hits, 1u);
  ASSERT_EQ(rec.recs.size(), 2u);
  EXPECT_EQ(rec.recs[0].kind, AccessKind::kReadMissFill);
  EXPECT_EQ(rec.recs[1].kind, AccessKind::kReadHit);
}

TEST(Cache, WriteThenReadReturnsValue) {
  MainMemory mem;
  Cache cache(tiny_config(), mem);
  cache.access(MemAccess::write(0x2000, 0xDEADBEEFCAFEF00DULL));
  EXPECT_EQ(cache.peek_word(0x2000, 8), 0xDEADBEEFCAFEF00DULL);
  // Write-back: memory must NOT have the value yet.
  EXPECT_EQ(mem.peek_word(0x2000, 8), 0u);
  cache.flush();
  EXPECT_EQ(mem.peek_word(0x2000, 8), 0xDEADBEEFCAFEF00DULL);
}

TEST(Cache, FillBringsMemoryContents) {
  MainMemory mem;
  mem.write_word(0x3000, 0x1234, 8);
  Cache cache(tiny_config(), mem);
  cache.access(MemAccess::read(0x3000));
  EXPECT_EQ(cache.peek_word(0x3000, 8), 0x1234u);
}

TEST(Cache, EvictionWritesBackDirtyLine) {
  MainMemory mem;
  auto cfg = tiny_config();
  Cache cache(cfg, mem);

  // Dirty one line in set 0, then stream 4 more lines into set 0.
  cache.access(MemAccess::write(0x0, 0x42));
  const u64 stride = cfg.sets() * cfg.line_bytes;  // same set, new tag
  for (u64 i = 1; i <= 4; ++i) {
    cache.access(MemAccess::read(i * stride));
  }
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(mem.peek_word(0x0, 8), 0x42u);
}

TEST(Cache, CleanEvictionDoesNotWriteBack) {
  MainMemory mem;
  auto cfg = tiny_config();
  Cache cache(cfg, mem);
  const u64 stride = cfg.sets() * cfg.line_bytes;
  for (u64 i = 0; i <= 4; ++i) {
    cache.access(MemAccess::read(i * stride));
  }
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, LruVictimSelection) {
  MainMemory mem;
  auto cfg = tiny_config();
  Cache cache(cfg, mem);
  const u64 stride = cfg.sets() * cfg.line_bytes;
  // Fill ways with tags 0..3, touch tag 0, then force an eviction.
  for (u64 i = 0; i < 4; ++i) cache.access(MemAccess::read(i * stride));
  cache.access(MemAccess::read(0));           // refresh tag 0
  cache.access(MemAccess::read(4 * stride));  // evicts tag 1 (LRU)
  EXPECT_TRUE(cache.find_way(0).has_value());
  EXPECT_FALSE(cache.find_way(stride).has_value());
  EXPECT_TRUE(cache.find_way(2 * stride).has_value());
}

TEST(Cache, WriteMissWithWriteAllocateFills) {
  MainMemory mem;
  mem.write_word(0x4008, 0x77, 8);
  Cache cache(tiny_config(), mem);
  cache.access(MemAccess::write(0x4000, 0x11));
  EXPECT_EQ(cache.stats().write_misses, 1u);
  EXPECT_EQ(cache.stats().fills, 1u);
  // The rest of the line came from memory.
  EXPECT_EQ(cache.peek_word(0x4008, 8), 0x77u);
  EXPECT_EQ(cache.peek_word(0x4000, 8), 0x11u);
}

TEST(Cache, NoWriteAllocateBypasses) {
  MainMemory mem;
  auto cfg = tiny_config();
  cfg.alloc_policy = AllocPolicy::kNoWriteAllocate;
  Cache cache(cfg, mem);
  Recorder rec;
  cache.add_sink(rec);
  cache.access(MemAccess::write(0x5000, 0xAA));
  EXPECT_EQ(cache.stats().write_arounds, 1u);
  EXPECT_EQ(cache.stats().fills, 0u);
  EXPECT_EQ(mem.peek_word(0x5000, 8), 0xAAu);
  ASSERT_EQ(rec.recs.size(), 1u);
  EXPECT_EQ(rec.recs[0].kind, AccessKind::kWriteAround);
  EXPECT_FALSE(cache.find_way(0x5000).has_value());
}

TEST(Cache, WriteThroughForwardsImmediately) {
  MainMemory mem;
  auto cfg = tiny_config();
  cfg.write_policy = WritePolicy::kWriteThrough;
  Cache cache(cfg, mem);
  cache.access(MemAccess::write(0x6000, 0xBB));
  EXPECT_EQ(mem.peek_word(0x6000, 8), 0xBBu);
  // Line is resident but clean: eviction won't write back.
  const auto way = cache.find_way(0x6000);
  ASSERT_TRUE(way.has_value());
  EXPECT_FALSE(cache.line_view(cache.config().set_index(0x6000), *way).dirty);
}

TEST(Cache, EventSpansCarryLineData) {
  MainMemory mem;
  Cache cache(tiny_config(), mem);
  Recorder rec;
  cache.add_sink(rec);
  cache.access(MemAccess::write(0x0, 0xFF, 1));
  ASSERT_EQ(rec.recs.size(), 1u);
  const auto& fill = rec.recs[0];
  EXPECT_EQ(fill.after.size(), 64u);
  EXPECT_EQ(fill.after[0], 0xFF);
  // Way was invalid before: line_before is all zeros.
  for (const u8 b : fill.before) EXPECT_EQ(b, 0);
}

TEST(Cache, WriteHitEventShowsBeforeAndAfter) {
  MainMemory mem;
  Cache cache(tiny_config(), mem);
  Recorder rec;
  cache.add_sink(rec);
  cache.access(MemAccess::write(0x0, 0x01, 1));
  cache.access(MemAccess::write(0x0, 0x02, 1));
  ASSERT_EQ(rec.recs.size(), 2u);
  EXPECT_EQ(rec.recs[1].kind, AccessKind::kWriteHit);
  EXPECT_EQ(rec.recs[1].before[0], 0x01);
  EXPECT_EQ(rec.recs[1].after[0], 0x02);
}

TEST(Cache, IdleSlotsEmittedOnMiss) {
  MainMemory mem;
  Cache cache(tiny_config(), mem);
  Recorder rec;
  cache.add_sink(rec);
  cache.access(MemAccess::read(0x0));   // miss
  cache.access(MemAccess::read(0x8));   // hit
  EXPECT_EQ(rec.recs[0].idle_slots, 2u);
  EXPECT_EQ(rec.recs[1].idle_slots, 0u);
}

TEST(Cache, HitIdlePeriod) {
  MainMemory mem;
  auto cfg = tiny_config();
  cfg.idle.hit_idle_period = 2;
  Cache cache(cfg, mem);
  Recorder rec;
  cache.add_sink(rec);
  cache.access(MemAccess::read(0x0));  // miss
  u32 idle_total = 0;
  for (int i = 0; i < 4; ++i) {
    cache.access(MemAccess::read(0x8));
    idle_total += rec.recs.back().idle_slots;
  }
  EXPECT_EQ(idle_total, 2u);  // every 2nd hit yields one slot
}

TEST(Cache, MultiLevelLineTraffic) {
  MainMemory mem;
  auto l2_cfg = tiny_config();
  l2_cfg.name = "L2";
  l2_cfg.size_bytes = 4096;
  Cache l2(l2_cfg, mem);
  Cache l1(tiny_config(), l2);

  l1.access(MemAccess::write(0x7000, 0x99));
  // Evict through L1 by filling the set.
  const u64 stride = l1.config().sets() * l1.config().line_bytes;
  for (u64 i = 1; i <= 4; ++i) {
    l1.access(MemAccess::read(0x7000 + i * stride));
  }
  // The dirty line went to L2, not memory.
  EXPECT_EQ(l2.peek_word(0x7000, 8), 0x99u);
  EXPECT_EQ(mem.peek_word(0x7000, 8), 0u);
  EXPECT_GT(l2.stats().accesses, 0u);
}

TEST(Cache, IFetchBehavesAsRead) {
  MainMemory mem;
  mem.write_word(0x8000, 0xFEED, 8);
  Cache cache(tiny_config(), mem);
  cache.access(MemAccess::ifetch(0x8000));
  EXPECT_EQ(cache.stats().read_misses, 1u);
  cache.access(MemAccess::ifetch(0x8000));
  EXPECT_EQ(cache.stats().read_hits, 1u);
}

TEST(Cache, TagEventFieldsPopulated) {
  MainMemory mem;
  Cache cache(tiny_config(), mem);

  struct TagCheck final : AccessSink {
    void on_access(const AccessEvent& ev) override {
      EXPECT_GT(ev.tag_bits_read, 0u);
      EXPECT_LE(ev.tag_ones_read, ev.tag_bits_read);
      if (ev.is_fill()) {
        EXPECT_GT(ev.tag_bits_written, 0u);
        EXPECT_LE(ev.tag_ones_written, ev.tag_bits_written);
      }
      ++count;
    }
    int count = 0;
  } check;
  cache.add_sink(check);

  cache.access(MemAccess::read(0xFF000));
  cache.access(MemAccess::read(0xFF000));
  EXPECT_EQ(check.count, 2);
}

}  // namespace
}  // namespace cnt
