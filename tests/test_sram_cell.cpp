#include "energy/sram_cell.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

const BitEnergies kCell = TechParams::cnfet().cell;

TEST(SramCell, ReadEnergyCountsFormula) {
  // 16 bits, 5 ones: 5*rd1 + 11*rd0.
  const Energy e = read_energy_counts(kCell, 16, 5);
  const Energy expect = 5.0 * kCell.rd1 + 11.0 * kCell.rd0;
  EXPECT_DOUBLE_EQ(e.in_joules(), expect.in_joules());
}

TEST(SramCell, WriteEnergyCountsFormula) {
  const Energy e = write_energy_counts(kCell, 16, 5);
  const Energy expect = 5.0 * kCell.wr1 + 11.0 * kCell.wr0;
  EXPECT_DOUBLE_EQ(e.in_joules(), expect.in_joules());
}

TEST(SramCell, BufferFormsMatchCountForms) {
  Rng rng(31);
  std::vector<u8> buf(64);
  for (auto& b : buf) b = rng.next_byte();
  const usize ones = popcount(buf);
  EXPECT_DOUBLE_EQ(read_energy(kCell, buf).in_joules(),
                   read_energy_counts(kCell, 512, ones).in_joules());
  EXPECT_DOUBLE_EQ(write_energy(kCell, buf).in_joules(),
                   write_energy_counts(kCell, 512, ones).in_joules());
}

TEST(SramCell, AllZerosVsAllOnes) {
  const std::array<u8, 8> zeros{};
  std::array<u8, 8> ones{};
  ones.fill(0xFF);
  // Reading zeros is the expensive case; writing ones is the expensive case.
  EXPECT_GT(read_energy(kCell, zeros), read_energy(kCell, ones));
  EXPECT_LT(write_energy(kCell, zeros), write_energy(kCell, ones));
}

TEST(SramCell, ReadPlusInvertedReadIsConstant) {
  // E(N1) + E(L-N1) depends only on L -- a useful invariant of the model.
  Rng rng(5);
  std::vector<u8> buf(32);
  for (auto& b : buf) b = rng.next_byte();
  const auto inv = inverted(buf);
  const Energy sum = read_energy(kCell, buf) + read_energy(kCell, inv);
  const Energy expect = 256.0 * (kCell.rd0 + kCell.rd1);
  EXPECT_NEAR(sum.in_joules(), expect.in_joules(), 1e-24);
}

TEST(SramCell, FlipAwareIdenticalDataIsCheap) {
  std::array<u8, 8> data{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0};
  const Energy full = write_energy(kCell, data);
  const Energy same = write_energy_flip_aware(kCell, data, data);
  EXPECT_LT(same.in_joules(), 0.2 * full.in_joules());
  EXPECT_GT(same.in_joules(), 0.0);
}

TEST(SramCell, FlipAwareAllChangedApproachesFull) {
  std::array<u8, 8> old_data{};
  std::array<u8, 8> new_data{};
  new_data.fill(0xFF);
  const Energy fa = write_energy_flip_aware(kCell, old_data, new_data);
  const Energy full = write_energy(kCell, new_data);
  // Equal up to floating-point summation order.
  EXPECT_NEAR(fa.in_joules(), full.in_joules(), 1e-9 * full.in_joules());
}

TEST(SramCell, FlipAwareNeverExceedsFullModel) {
  Rng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<u8> a(16), b(16);
    for (auto& x : a) x = rng.next_byte();
    for (auto& x : b) x = rng.next_byte();
    EXPECT_LE(write_energy_flip_aware(kCell, a, b).in_joules(),
              write_energy(kCell, b).in_joules() + 1e-30);
  }
}

// Property sweep over every (L, N1): energies are monotone in the expected
// direction for the CNFET asymmetry.
class CellMonotone : public ::testing::TestWithParam<usize> {};

TEST_P(CellMonotone, ReadDecreasesWritIncreasesWithOnes) {
  const usize bits = GetParam();
  for (usize n1 = 1; n1 <= bits; ++n1) {
    EXPECT_LT(read_energy_counts(kCell, bits, n1),
              read_energy_counts(kCell, bits, n1 - 1));
    EXPECT_GT(write_energy_counts(kCell, bits, n1),
              write_energy_counts(kCell, bits, n1 - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CellMonotone,
                         ::testing::Values(1, 8, 64, 512));

}  // namespace
}  // namespace cnt
