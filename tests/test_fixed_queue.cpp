#include "common/fixed_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cnt {
namespace {

TEST(FixedQueue, StartsEmpty) {
  FixedQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(FixedQueue, FifoOrder) {
  FixedQueue<int> q(3);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(FixedQueue, RejectsWhenFull) {
  FixedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);  // the rejected push did not disturb order
}

TEST(FixedQueue, WrapsAround) {
  FixedQueue<int> q(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.push(round));
    EXPECT_EQ(q.pop(), round);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, InterleavedWrap) {
  FixedQueue<int> q(3);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  EXPECT_EQ(q.pop(), 1);
  ASSERT_TRUE(q.push(3));
  ASSERT_TRUE(q.push(4));  // wraps
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
}

TEST(FixedQueue, FrontPeeksWithoutRemoving) {
  FixedQueue<std::string> q(2);
  ASSERT_TRUE(q.push("a"));
  EXPECT_EQ(q.front(), "a");
  EXPECT_EQ(q.size(), 1u);
}

TEST(FixedQueue, ClearEmpties) {
  FixedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  q.clear();
  EXPECT_TRUE(q.empty());
  ASSERT_TRUE(q.push(7));
  EXPECT_EQ(q.pop(), 7);
}

TEST(FixedQueue, MoveOnlyTypes) {
  FixedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(42)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

}  // namespace
}  // namespace cnt
