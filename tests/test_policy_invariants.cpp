// Cross-policy property tests under randomized traffic: the accounting
// invariants every energy policy must keep regardless of data or mix.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cnt/baseline_policies.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

using C = EnergyCategory;

CacheConfig cfg_small() {
  CacheConfig c;
  c.size_bytes = 4096;
  c.ways = 4;
  c.line_bytes = 64;
  return c;
}

class PolicyInvariants : public ::testing::TestWithParam<u64> {};

TEST_P(PolicyInvariants, HoldUnderRandomTraffic) {
  MainMemory mem;
  Cache cache(cfg_small(), mem);
  const auto geom = geometry_of(cfg_small());
  const auto tech = TechParams::cnfet();

  PlainPolicy plain("plain", tech, geom);
  StaticInvertPolicy inv("inv", tech, geom);
  IdealPolicy ideal("ideal", tech, geom, 8);
  CntPolicy cnt("cnt", tech, geom, CntConfig{});
  cache.add_sink(plain);
  cache.add_sink(inv);
  cache.add_sink(ideal);
  cache.add_sink(cnt);

  Rng rng(GetParam());
  usize accesses = 0;
  for (int i = 0; i < 6000; ++i) {
    const u64 addr = rng.uniform(1024) * 8;
    if (rng.chance(0.35)) {
      cache.access(MemAccess::write(addr, rng.next()));
    } else {
      cache.access(MemAccess::read(addr));
    }
    ++accesses;
  }

  // 1. Every lookup charges the tag array exactly once per access.
  const std::vector<const EnergyPolicyBase*> all{&plain, &inv, &ideal, &cnt};
  for (const EnergyPolicyBase* p : all) {
    EXPECT_EQ(p->ledger().count(C::kTagRead), accesses) << p->name();
    const double total = p->ledger().total().in_joules();
    EXPECT_TRUE(std::isfinite(total)) << p->name();
    EXPECT_GT(total, 0.0) << p->name();
  }

  // 2. Peripheral categories agree between plain and ideal exactly (same
  //    decode/tag/output charging paths).
  for (const auto cat : {C::kDecode, C::kTagRead, C::kTagWrite, C::kOutput}) {
    EXPECT_DOUBLE_EQ(plain.ledger().get(cat).in_joules(),
                     ideal.ledger().get(cat).in_joules());
  }

  // 3. Ideal's data energy is a lower bound for plain and static.
  const double ideal_data = (ideal.ledger().get(C::kDataRead) +
                             ideal.ledger().get(C::kDataWrite))
                                .in_joules();
  const std::vector<const EnergyPolicyBase*> non_adaptive{&plain, &inv};
  for (const EnergyPolicyBase* p : non_adaptive) {
    const double data = (p->ledger().get(C::kDataRead) +
                         p->ledger().get(C::kDataWrite))
                            .in_joules();
    EXPECT_LE(ideal_data, data + 1e-30) << p->name();
  }

  // 4. CNT bookkeeping consistency.
  const auto& qs = cnt.queue_stats();
  const auto& st = cnt.stats();
  EXPECT_EQ(qs.drained, st.reencodes_applied + qs.drained_stale);
  EXPECT_LE(st.reencodes_applied, st.switch_decisions);
  EXPECT_GE(st.partition_flips_requested, st.switch_decisions);
  EXPECT_EQ(cnt.ledger().count(C::kReencode) > 0,
            st.reencodes_applied > 0);

  // 5. The ledger's array/overhead split covers the total.
  const double sum = (cnt.ledger().array_total() +
                      cnt.ledger().overhead_total())
                         .in_joules();
  EXPECT_NEAR(sum, cnt.ledger().total().in_joules(),
              1e-12 * cnt.ledger().total().in_joules());

  // 6. Plain never charges CNT-only categories.
  for (const auto cat : {C::kMetaRead, C::kMetaWrite, C::kEncoderLogic,
                         C::kPredictorLogic, C::kReencode, C::kFifo}) {
    EXPECT_DOUBLE_EQ(plain.ledger().get(cat).in_joules(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyInvariants,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(PolicyInvariants, ReadOnlySteadyStateNeverWritesData) {
  MainMemory mem;
  Cache cache(cfg_small(), mem);
  PlainPolicy plain("plain", TechParams::cnfet(), geometry_of(cfg_small()));
  cache.add_sink(plain);

  // Warm a resident working set, then hammer reads.
  for (u64 a = 0; a < 32; ++a) cache.access(MemAccess::read(a * 64));
  const u64 writes_before = plain.ledger().count(C::kDataWrite);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    cache.access(MemAccess::read(rng.uniform(32) * 64));
  }
  EXPECT_EQ(plain.ledger().count(C::kDataWrite), writes_before);
}

}  // namespace
}  // namespace cnt
