#include "energy/array_model.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

ArrayGeometry typical_geom() {
  ArrayGeometry g;
  g.sets = 128;
  g.ways = 4;
  g.line_bytes = 64;
  g.tag_bits = 35;
  g.meta_bits = 0;
  return g;
}

TEST(ArrayGeometry, DerivedCounts) {
  const auto g = typical_geom();
  EXPECT_EQ(g.line_bits(), 512u);
  EXPECT_EQ(g.lines(), 512u);
  EXPECT_EQ(g.data_cells(), 512u * 512u);
  EXPECT_EQ(g.tag_cells(), 512u * 37u);
  EXPECT_EQ(g.capacity_bytes(), 32u * 1024u);
}

TEST(ArrayModel, DecodeEnergyPositiveAndScalesWithSets) {
  const auto tech = TechParams::cnfet();
  ArrayGeometry small = typical_geom();
  ArrayGeometry big = typical_geom();
  big.sets = 1024;
  const ArrayModel m_small(tech, small);
  const ArrayModel m_big(tech, big);
  EXPECT_GT(m_small.decode_energy().in_joules(), 0.0);
  EXPECT_GT(m_big.decode_energy(), m_small.decode_energy());
}

TEST(ArrayModel, DecodeEnergyGrowsWithMetaBits) {
  const auto tech = TechParams::cnfet();
  ArrayGeometry base = typical_geom();
  ArrayGeometry widened = typical_geom();
  widened.meta_bits = 16;
  // The wordline spans the extra H&D columns.
  EXPECT_GT(ArrayModel(tech, widened).decode_energy(),
            ArrayModel(tech, base).decode_energy());
}

TEST(ArrayModel, TagLookupScalesWithBitsAndOnes) {
  const ArrayModel m(TechParams::cnfet(), typical_geom());
  const Energy e0 = m.tag_lookup_energy(148, 0);
  const Energy e_half = m.tag_lookup_energy(148, 74);
  // With CNFET cells, reading more stored '1's is *cheaper*.
  EXPECT_LT(e_half, e0);
  EXPECT_GT(e0.in_joules(), 0.0);
}

TEST(ArrayModel, TagWriteMoreOnesCostsMore) {
  const ArrayModel m(TechParams::cnfet(), typical_geom());
  EXPECT_GT(m.tag_write_energy(37, 30), m.tag_write_energy(37, 2));
}

TEST(ArrayModel, OutputScalesLinearly) {
  const ArrayModel m(TechParams::cnfet(), typical_geom());
  EXPECT_DOUBLE_EQ(m.output_energy(128).in_joules(),
                   2.0 * m.output_energy(64).in_joules());
}

TEST(ArrayModel, LeakageAndAreaScaleWithCells) {
  const auto tech = TechParams::cnfet();
  ArrayGeometry base = typical_geom();
  ArrayGeometry widened = typical_geom();
  widened.meta_bits = 12;
  const ArrayModel m_base(tech, base);
  const ArrayModel m_wide(tech, widened);
  EXPECT_GT(m_base.leakage_watts(), 0.0);
  EXPECT_GT(m_wide.leakage_watts(), m_base.leakage_watts());
  EXPECT_GT(m_wide.area_um2(), m_base.area_um2());
  // The H&D overhead for 12 meta bits on a 512-bit line is ~2.3%.
  const double overhead = m_wide.area_um2() / m_base.area_um2() - 1.0;
  EXPECT_GT(overhead, 0.01);
  EXPECT_LT(overhead, 0.04);
}

TEST(ArrayModel, CmosPeripheralsCostMore) {
  const auto g = typical_geom();
  EXPECT_GT(ArrayModel(TechParams::cmos(), g).decode_energy(),
            ArrayModel(TechParams::cnfet(), g).decode_energy());
}

}  // namespace
}  // namespace cnt
