#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "sim/runner.hpp"
#include "trace/gen/workloads.hpp"

namespace cnt {
namespace {

TEST(DensityProbe, HitsRequestedDensity) {
  for (const double d : {0.05, 0.5, 0.9}) {
    gen::DensityProbeParams p;
    p.bit1_density = d;
    p.accesses = 2000;
    const Workload w = gen::density_probe(p);
    ASSERT_EQ(w.init.size(), 1u);
    EXPECT_NEAR(bit1_density(w.init[0].bytes), d, 0.03) << "d=" << d;
  }
}

TEST(DensityProbe, HitsRequestedWriteMix) {
  gen::DensityProbeParams p;
  p.write_fraction = 0.35;
  p.accesses = 20000;
  const auto s = gen::density_probe(p).trace.stats();
  EXPECT_NEAR(s.write_fraction, 0.35, 0.02);
}

TEST(DensityProbe, WorkingSetResident) {
  gen::DensityProbeParams p;
  p.lines = 32;
  const auto s = gen::density_probe(p).trace.stats();
  EXPECT_LE(s.unique_lines, 32u);
}

TEST(DensityProbe, SavingsMonotoneInDensityForReads) {
  // Mechanism check at the simulation level: for a read-heavy probe,
  // sparser data means more encoding profit.
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  double prev = 1.0;
  for (const double d : {0.05, 0.25, 0.45}) {
    gen::DensityProbeParams p;
    p.bit1_density = d;
    p.write_fraction = 0.05;
    p.accesses = 8000;
    const auto res = simulate(gen::density_probe(p), cfg);
    const double saving = res.saving(kPolicyCnt);
    EXPECT_LT(saving, prev) << "d=" << d;
    prev = saving;
  }
  // And at the sparse end the saving must be substantial.
  gen::DensityProbeParams p;
  p.bit1_density = 0.05;
  p.write_fraction = 0.05;
  p.accesses = 8000;
  EXPECT_GT(simulate(gen::density_probe(p), cfg).saving(kPolicyCnt), 0.35);
}

TEST(DensityProbe, SymmetricDataYieldsNoGain) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  gen::DensityProbeParams p;
  p.bit1_density = 0.5;
  p.accesses = 8000;
  const auto res = simulate(gen::density_probe(p), cfg);
  // Nothing to encode: saving is within the overhead margin of zero.
  EXPECT_LT(res.saving(kPolicyCnt), 0.03);
  EXPECT_GT(res.saving(kPolicyCnt), -0.12);
}

}  // namespace
}  // namespace cnt
