#include "sim/stats_dump.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/workload_suite.hpp"

namespace cnt {
namespace {

// Structural JSON sanity: balanced braces/brackets outside strings.
void expect_balanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

SimResult one_result() {
  SimConfig cfg;
  return simulate(build_workload("zipf_kv", 0.05), cfg);
}

TEST(StatsDump, SingleResultIsWellFormed) {
  std::ostringstream os;
  dump_json(one_result(), os);
  const std::string s = os.str();
  expect_balanced(s);
  EXPECT_NE(s.find("\"workload\": \"zipf_kv\""), std::string::npos);
  EXPECT_NE(s.find("\"cnt_cache\""), std::string::npos);
  EXPECT_NE(s.find("\"hit_rate\""), std::string::npos);
  EXPECT_NE(s.find("\"data_read\""), std::string::npos);
  EXPECT_NE(s.find("\"windows_evaluated\""), std::string::npos);
  EXPECT_NE(s.find("\"savings\""), std::string::npos);
}

TEST(StatsDump, MultiResultHasSchemaAndAll) {
  SimConfig cfg;
  cfg.with_cmos = cfg.with_static = cfg.with_ideal = false;
  std::vector<SimResult> results;
  results.push_back(simulate(build_workload("stream_copy", 0.05), cfg));
  results.push_back(simulate(build_workload("hash_join", 0.05), cfg));
  std::ostringstream os;
  dump_json(results, os);
  const std::string s = os.str();
  expect_balanced(s);
  EXPECT_NE(s.find("cnt-cache-results-v1"), std::string::npos);
  EXPECT_NE(s.find("stream_copy"), std::string::npos);
  EXPECT_NE(s.find("hash_join"), std::string::npos);
}

TEST(StatsDump, FileWriting) {
  const std::string path = ::testing::TempDir() + "cnt_stats_dump.json";
  dump_json_file({one_result()}, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  expect_balanced(ss.str());
  std::remove(path.c_str());
}

TEST(StatsDump, BadPathThrows) {
  EXPECT_THROW(dump_json_file({}, "/no/such/dir/x.json"), std::runtime_error);
}

}  // namespace
}  // namespace cnt
