// MRU way-prediction (tag-energy option) tests.
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cnt/baseline_policies.hpp"
#include "cnt/cnt_policy.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

using C = EnergyCategory;

CacheConfig cfg_wp(bool wp) {
  CacheConfig c;
  c.size_bytes = 4096;
  c.ways = 4;
  c.line_bytes = 64;
  c.way_prediction = wp;
  return c;
}

struct TagProbe final : AccessSink {
  usize last_bits = 0;
  usize single = 0;
  usize full = 0;
  usize per_way;
  usize ways;
  explicit TagProbe(const CacheConfig& c)
      : per_way(c.tag_bits() + 2), ways(c.ways) {}
  void on_access(const AccessEvent& ev) override {
    last_bits = ev.tag_bits_read;
    if (ev.tag_bits_read == per_way) {
      ++single;
    } else {
      EXPECT_EQ(ev.tag_bits_read, per_way * ways);
      ++full;
    }
  }
};

TEST(WayPrediction, RepeatedHitsProbeOneWay) {
  const auto cfg = cfg_wp(true);
  MainMemory mem;
  Cache cache(cfg, mem);
  TagProbe probe(cfg);
  cache.add_sink(probe);

  cache.access(MemAccess::read(0x100));  // miss: full probe
  EXPECT_EQ(probe.full, 1u);
  for (int i = 0; i < 10; ++i) cache.access(MemAccess::read(0x108));
  EXPECT_EQ(probe.single, 10u);  // MRU hits every time
}

TEST(WayPrediction, AlternatingWaysMispredict) {
  const auto cfg = cfg_wp(true);
  MainMemory mem;
  Cache cache(cfg, mem);
  TagProbe probe(cfg);
  cache.add_sink(probe);

  const u64 stride = cfg.sets() * cfg.line_bytes;
  cache.access(MemAccess::read(0x0));       // fill way 0
  cache.access(MemAccess::read(stride));    // fill way 1
  probe.single = probe.full = 0;
  // Ping-pong between the two ways of the same set: every access
  // mispredicts (the MRU is the other line).
  for (int i = 0; i < 10; ++i) {
    cache.access(MemAccess::read(i % 2 == 0 ? 0x0 : stride));
  }
  EXPECT_EQ(probe.full, 10u);
  EXPECT_EQ(probe.single, 0u);
}

TEST(WayPrediction, DisabledAlwaysReadsAllWays) {
  const auto cfg = cfg_wp(false);
  MainMemory mem;
  Cache cache(cfg, mem);
  TagProbe probe(cfg);
  cache.add_sink(probe);
  for (int i = 0; i < 10; ++i) cache.access(MemAccess::read(0x100));
  EXPECT_EQ(probe.single, 0u);
  EXPECT_EQ(probe.full, 10u);
}

TEST(WayPrediction, FunctionalBehaviourUnchanged) {
  MainMemory mem_a, mem_b;
  Cache with(cfg_wp(true), mem_a);
  Cache without(cfg_wp(false), mem_b);
  Rng rng(17);
  for (int i = 0; i < 8000; ++i) {
    const u64 addr = rng.uniform(1024) * 8;
    if (rng.chance(0.4)) {
      const u64 v = rng.next();
      with.access(MemAccess::write(addr, v));
      without.access(MemAccess::write(addr, v));
    } else {
      with.access(MemAccess::read(addr));
      without.access(MemAccess::read(addr));
    }
  }
  EXPECT_EQ(with.stats().hits(), without.stats().hits());
  EXPECT_EQ(with.stats().writebacks, without.stats().writebacks);
  with.flush();
  without.flush();
  for (u64 a = 0; a < 8192; a += 512) {
    EXPECT_EQ(mem_a.peek_word(a, 8), mem_b.peek_word(a, 8));
  }
}

TEST(WayPrediction, ReducesTagEnergyForAllPolicies) {
  Rng rng(18);
  Energy tag_with{}, tag_without{};
  for (const bool wp : {true, false}) {
    MainMemory mem;
    Cache cache(cfg_wp(wp), mem);
    PlainPolicy plain("p", TechParams::cnfet(), geometry_of(cfg_wp(wp)));
    cache.add_sink(plain);
    rng.reseed(18);
    // One resident line per set: the MRU probe hits on every re-access.
    for (int i = 0; i < 5000; ++i) {
      cache.access(MemAccess::read(rng.uniform(16) * 64));
    }
    (wp ? tag_with : tag_without) = plain.ledger().get(C::kTagRead);
  }
  EXPECT_LT(tag_with.in_joules(), 0.6 * tag_without.in_joules());
}

}  // namespace
}  // namespace cnt
