// Journal layer: stable job keys and sweep fingerprints, CRC-32 line
// seals, header round-trips, torn-tail truncation on load, and exact
// outcome reconstruction from journaled rows.
#include "exec/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "exec/engine.hpp"
#include "exec/result_sink.hpp"

namespace cnt::exec {
namespace {

constexpr double kScale = 0.02;

Job make_job(u64 id, const std::string& workload = "stream_copy") {
  Job j;
  j.id = id;
  j.workload = workload;
  j.tag = "window=7";
  j.scale = kScale;
  j.config.cnt.window = 7;
  j.config.with_cmos = j.config.with_static = j.config.with_ideal = false;
  return j;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".partial").c_str());
  return path;
}

TEST(Hash, Crc32KnownAnswer) {
  // The IEEE 802.3 check value; any table/polynomial mistake breaks it.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Hash, HexRoundTrip) {
  EXPECT_EQ(hex_u64(0), "0000000000000000");
  EXPECT_EQ(hex_u64(0xdeadbeefcafef00dull), "deadbeefcafef00d");
  EXPECT_EQ(hex_u32(0xCBF43926u), "cbf43926");
  u64 v64 = 0;
  ASSERT_TRUE(parse_hex_u64("deadbeefcafef00d", v64));
  EXPECT_EQ(v64, 0xdeadbeefcafef00dull);
  u32 v32 = 0;
  ASSERT_TRUE(parse_hex_u32("cbf43926", v32));
  EXPECT_EQ(v32, 0xCBF43926u);
  EXPECT_FALSE(parse_hex_u64("deadbeef", v64));       // wrong length
  EXPECT_FALSE(parse_hex_u32("cbf4392g", v32));       // non-hex digit
}

TEST(Hash, Fnv1a64LengthPrefixDisambiguates) {
  Fnv1a64 a, b;
  a.update(std::string_view("ab")).update(std::string_view("c"));
  b.update(std::string_view("a")).update(std::string_view("bc"));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Journal, JobKeyIgnoresSubmissionId) {
  Job a = make_job(0);
  Job b = make_job(17);
  EXPECT_EQ(job_key(a), job_key(b));
}

TEST(Journal, JobKeyCoversIdentityFields) {
  const u64 base = job_key(make_job(0));

  Job j = make_job(0, "zipf_kv");
  EXPECT_NE(job_key(j), base);

  j = make_job(0);
  j.tag = "window=15";
  EXPECT_NE(job_key(j), base);

  j = make_job(0);
  j.scale = kScale * 2;
  EXPECT_NE(job_key(j), base);

  j = make_job(0);
  j.seed_offset = 1;
  EXPECT_NE(job_key(j), base);

  j = make_job(0);
  j.config.cnt.window = 15;
  EXPECT_NE(job_key(j), base);

  j = make_job(0);
  j.config.cache.size_bytes *= 2;
  EXPECT_NE(job_key(j), base);
}

TEST(Journal, SweepFingerprintIsOrderSensitive) {
  std::vector<Job> ab = {make_job(0, "stream_copy"), make_job(1, "zipf_kv")};
  std::vector<Job> ba = {make_job(0, "zipf_kv"), make_job(1, "stream_copy")};
  std::vector<Job> a = {make_job(0, "stream_copy")};
  EXPECT_NE(sweep_fingerprint(ab), sweep_fingerprint(ba));
  EXPECT_NE(sweep_fingerprint(ab), sweep_fingerprint(a));
  EXPECT_EQ(sweep_fingerprint(ab), sweep_fingerprint(ab));
}

TEST(Journal, SealAndCheckLine) {
  const std::string sealed = seal_line("{\"a\":1}");
  EXPECT_TRUE(check_sealed_line(sealed));
  EXPECT_EQ(sealed.substr(0, 7), "{\"a\":1,");
  EXPECT_EQ(sealed.back(), '}');

  // Any single-byte corruption must be caught.
  for (usize i = 0; i < sealed.size(); ++i) {
    std::string corrupt = sealed;
    corrupt[i] = corrupt[i] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(check_sealed_line(corrupt)) << "flip at byte " << i;
  }
  // ... and so must truncation (a torn write).
  for (usize cut = 1; cut < sealed.size(); ++cut) {
    EXPECT_FALSE(check_sealed_line(sealed.substr(0, sealed.size() - cut)));
  }
  EXPECT_FALSE(check_sealed_line("{\"a\":1}"));  // never sealed
}

TEST(Journal, HeaderLineIsSealedAndParseable) {
  const std::string line = make_header_line(0x1234abcdu, 42);
  EXPECT_TRUE(check_sealed_line(line));
  const JsonValue v = parse_json(line);
  EXPECT_EQ(v.at("schema").as_string(), kHeaderSchema);
  EXPECT_EQ(v.at("fingerprint").as_string(), hex_u64(0x1234abcdu));
  EXPECT_EQ(v.at("jobs").as_u64(), 42u);
}

TEST(Journal, LoadMissingFileIsEmpty) {
  const JournalData data = load_journal(temp_path("cnt_journal_none.jsonl"));
  EXPECT_FALSE(data.header_ok);
  EXPECT_TRUE(data.rows.empty());
  EXPECT_TRUE(data.source_path.empty());
}

TEST(Journal, LoadRejectsHeaderlessFile) {
  const std::string path = temp_path("cnt_journal_headerless.jsonl");
  {
    std::ofstream out(path);  // cnt-lint: io-ok fabricating raw journal bytes
    JobOutcome o = run_job(make_job(0));
    write_jsonl_row(o, out, /*include_timing=*/false);
    out << '\n';
  }
  const JournalData data = load_journal(path);
  EXPECT_FALSE(data.header_ok);
  EXPECT_TRUE(data.rows.empty());
}

TEST(Journal, RoundTripThroughSinkAndLoad) {
  const std::string path = temp_path("cnt_journal_roundtrip.jsonl");
  const Job job0 = make_job(0, "stream_copy");
  const Job job1 = make_job(1, "zipf_kv");
  {
    JsonlSink sink(path, /*include_timing=*/false);
    sink.write_header(0xfeedu, 2);
    sink.push(run_job(job0));
    sink.push(run_job(job1));
    sink.finish();
  }
  const JournalData data = load_journal(path);
  ASSERT_TRUE(data.header_ok);
  EXPECT_EQ(data.source_path, path);
  EXPECT_EQ(data.fingerprint, 0xfeedu);
  EXPECT_EQ(data.jobs_declared, 2u);
  EXPECT_EQ(data.dropped_lines, 0u);
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0].job_id, 0u);
  EXPECT_EQ(data.rows[0].key, job_key(job0));
  EXPECT_EQ(data.rows[1].job_id, 1u);
  EXPECT_EQ(data.rows[1].key, job_key(job1));
  EXPECT_TRUE(data.rows[0].ok);
}

TEST(Journal, TornTailIsTruncated) {
  const std::string path = temp_path("cnt_journal_torn.jsonl");
  std::ostringstream row0, row1;
  write_jsonl_row(run_job(make_job(0)), row0, false);
  write_jsonl_row(run_job(make_job(1, "zipf_kv")), row1, false);
  {
    std::ofstream out(path);  // cnt-lint: io-ok fabricating raw journal bytes
    out << make_header_line(1, 2) << '\n';
    out << row0.str() << '\n';
    // A torn write: the last row lost its tail when the process died.
    out << row1.str().substr(0, row1.str().size() / 2);
  }
  const JournalData data = load_journal(path);
  ASSERT_TRUE(data.header_ok);
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0].job_id, 0u);
  EXPECT_EQ(data.dropped_lines, 1u);
  // A torn tail is recoverable; it must NOT be classified as mid-file
  // corruption and must not produce a refusal error.
  EXPECT_FALSE(data.mid_file_corruption);
  EXPECT_FALSE(journal_corruption_error(data).has_value());
}

TEST(Journal, CorruptionStopsTheUsablePrefix) {
  const std::string path = temp_path("cnt_journal_corrupt.jsonl");
  std::ostringstream row0, row1, row2;
  write_jsonl_row(run_job(make_job(0)), row0, false);
  write_jsonl_row(run_job(make_job(1, "zipf_kv")), row1, false);
  write_jsonl_row(run_job(make_job(2, "pointer_chase")), row2, false);
  std::string bad = row1.str();
  bad[bad.find("zipf_kv") + 1] = 'X';  // bit rot inside row 1
  {
    std::ofstream out(path);  // cnt-lint: io-ok fabricating raw journal bytes
    out << make_header_line(1, 3) << '\n'
        << row0.str() << '\n'
        << bad << '\n'
        << row2.str() << '\n';
  }
  const JournalData data = load_journal(path);
  ASSERT_TRUE(data.header_ok);
  // Row 2 is intact but unreachable: everything after the first bad line
  // is discarded so resume re-runs it rather than trusting the tail.
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.dropped_lines, 2u);
  // The sealed row AFTER the bad one proves this is damage inside the
  // file, not a torn tail: the loader flags it with the exact location.
  EXPECT_TRUE(data.mid_file_corruption);
  EXPECT_EQ(data.corrupt_row_index, 1u);  // 0-based: the second row
  EXPECT_EQ(data.corrupt_line, 3u);       // 1-based: header, row0, bad
}

TEST(Journal, MidFileCorruptionYieldsRefusalError) {
  const std::string path = temp_path("cnt_journal_refusal.jsonl");
  std::ostringstream row0, row1;
  write_jsonl_row(run_job(make_job(0)), row0, false);
  write_jsonl_row(run_job(make_job(1, "zipf_kv")), row1, false);
  std::string bad = row0.str();
  bad[bad.find("job_id")] = 'X';  // bit rot inside row 0
  {
    std::ofstream out(path);  // cnt-lint: io-ok fabricating raw journal bytes
    out << make_header_line(1, 2) << '\n'
        << bad << '\n'
        << row1.str() << '\n';
  }
  const JournalData data = load_journal(path);
  ASSERT_TRUE(data.header_ok);
  ASSERT_TRUE(data.mid_file_corruption);
  const auto err = journal_corruption_error(data);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->info().code, Errc::kChecksum);
  EXPECT_EQ(err->info().source, path);
  EXPECT_EQ(err->info().line, 2u);
  EXPECT_NE(err->info().message.find("row 0"), std::string::npos);
  EXPECT_NE(err->info().hint.find("--resume"), std::string::npos);
}

TEST(Journal, PartialIsPreferredOverFinal) {
  const std::string path = temp_path("cnt_journal_partial.jsonl");
  std::ostringstream row;
  write_jsonl_row(run_job(make_job(0)), row, false);
  {
    std::ofstream final_file(path);  // cnt-lint: io-ok fabricating raw journal bytes
    final_file << make_header_line(7, 1) << '\n';
  }
  {
    std::ofstream partial(path + ".partial");  // cnt-lint: io-ok fabricating raw journal bytes
    partial << make_header_line(8, 1) << '\n' << row.str() << '\n';
  }
  const JournalData data = load_journal(path);
  ASSERT_TRUE(data.header_ok);
  EXPECT_EQ(data.source_path, path + ".partial");
  EXPECT_EQ(data.fingerprint, 8u);
  EXPECT_EQ(data.rows.size(), 1u);
}

// The load-bearing resume property: a reconstructed outcome reproduces
// every aggregate the benches derive from a SimResult, bit-for-bit.
TEST(Journal, OutcomeReconstructionIsExact) {
  const Job job = make_job(0);
  const JobOutcome original = run_job(job);
  ASSERT_TRUE(original.ok);

  std::ostringstream os;
  write_jsonl_row(original, os, /*include_timing=*/false);
  JournalRow row;
  {
    const std::string path = temp_path("cnt_journal_exact.jsonl");
    std::ofstream out(path);  // cnt-lint: io-ok fabricating raw journal bytes
    out << make_header_line(1, 1) << '\n' << os.str() << '\n';
    out.close();
    JournalData data = load_journal(path);
    ASSERT_EQ(data.rows.size(), 1u);
    row = std::move(data.rows[0]);
  }

  const JobOutcome rebuilt = outcome_from_row(row, job);
  EXPECT_TRUE(rebuilt.ok);
  EXPECT_TRUE(rebuilt.resumed);
  EXPECT_FALSE(original.resumed);

  const SimResult& a = original.result;
  const SimResult& b = rebuilt.result;
  ASSERT_EQ(a.policies.size(), b.policies.size());
  for (usize i = 0; i < a.policies.size(); ++i) {
    EXPECT_EQ(a.policies[i].name, b.policies[i].name);
    // Bit-identical energy totals, not approximately equal ones.
    EXPECT_EQ(a.policies[i].total().in_joules(),
              b.policies[i].total().in_joules());
  }
  EXPECT_EQ(a.saving(kPolicyCnt), b.saving(kPolicyCnt));
  EXPECT_EQ(a.cache_stats.accesses, b.cache_stats.accesses);
  EXPECT_EQ(a.cache_stats.hits(), b.cache_stats.hits());
  EXPECT_EQ(a.cache_stats.misses(), b.cache_stats.misses());
  EXPECT_EQ(a.cache_stats.hit_rate(), b.cache_stats.hit_rate());
  EXPECT_EQ(a.cache_stats.writebacks, b.cache_stats.writebacks);
  EXPECT_EQ(a.trace_stats.accesses, b.trace_stats.accesses);
  EXPECT_EQ(a.trace_stats.write_fraction, b.trace_stats.write_fraction);

  const PolicyResult* ac = a.find(kPolicyCnt);
  const PolicyResult* bc = b.find(kPolicyCnt);
  ASSERT_NE(ac, nullptr);
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(ac->cnt_stats.windows_evaluated, bc->cnt_stats.windows_evaluated);
  EXPECT_EQ(ac->cnt_stats.reencodes_applied, bc->cnt_stats.reencodes_applied);
  EXPECT_EQ(ac->cnt_stats.fill_inversions, bc->cnt_stats.fill_inversions);
  EXPECT_EQ(ac->queue_stats.pushed, bc->queue_stats.pushed);
  EXPECT_EQ(ac->queue_stats.dropped_full, bc->queue_stats.dropped_full);

  // Re-serializing the reconstruction yields the original bytes: replay
  // and recomputation are indistinguishable on disk.
  std::ostringstream os2;
  write_jsonl_row(rebuilt, os2, /*include_timing=*/false);
  EXPECT_EQ(os2.str(), os.str());
}

TEST(Journal, FailedRowRoundTrips) {
  const Job job = make_job(0, "no_such_workload");
  const JobOutcome original = run_job(job);
  ASSERT_FALSE(original.ok);

  std::ostringstream os;
  write_jsonl_row(original, os, false);
  const std::string path = temp_path("cnt_journal_failed.jsonl");
  {
    std::ofstream out(path);  // cnt-lint: io-ok fabricating raw journal bytes
    out << make_header_line(1, 1) << '\n' << os.str() << '\n';
  }
  JournalData data = load_journal(path);
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_FALSE(data.rows[0].ok);
  const JobOutcome rebuilt = outcome_from_row(data.rows[0], job);
  EXPECT_FALSE(rebuilt.ok);
  EXPECT_EQ(rebuilt.error, original.error);
}

}  // namespace
}  // namespace cnt::exec
