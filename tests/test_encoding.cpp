#include "cnt/encoding.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace cnt {
namespace {

std::vector<u8> random_line(Rng& rng, usize bytes = 64) {
  std::vector<u8> line(bytes);
  for (auto& b : line) b = rng.next_byte();
  return line;
}

TEST(PartitionScheme, ValidSchemes) {
  const PartitionScheme ps(64, 8);
  EXPECT_EQ(ps.partitions(), 8u);
  EXPECT_EQ(ps.partition_bits(), 64u);
  EXPECT_EQ(ps.partition_bytes(), 8u);
  EXPECT_EQ(ps.bit_begin(3), 192u);
  EXPECT_EQ(ps.bit_end(3), 256u);
}

TEST(PartitionScheme, WholeLine) {
  const PartitionScheme ps(64, 1);
  EXPECT_EQ(ps.partition_bits(), 512u);
}

TEST(PartitionScheme, RejectsBadK) {
  EXPECT_THROW(PartitionScheme(64, 0), std::invalid_argument);
  EXPECT_THROW(PartitionScheme(64, 65), std::invalid_argument);
  // 64 bytes = 512 bits; K=3 doesn't divide evenly.
  EXPECT_THROW(PartitionScheme(64, 3), std::invalid_argument);
  // K=128 would give sub-byte partitions even if it divided.
  EXPECT_THROW(PartitionScheme(8, 16), std::invalid_argument);
}

TEST(Encoding, DirectionZeroIsIdentity) {
  Rng rng(1);
  const PartitionScheme ps(64, 8);
  const auto line = random_line(rng);
  EXPECT_EQ(encode_line(ps, line, 0), line);
}

TEST(Encoding, AllOnesInvertsEverything) {
  Rng rng(2);
  const PartitionScheme ps(64, 8);
  const auto line = random_line(rng);
  const auto enc = encode_line(ps, line, 0xFF);
  EXPECT_EQ(enc, inverted(line));
}

TEST(Encoding, SelectivePartitions) {
  Rng rng(3);
  const PartitionScheme ps(64, 8);
  const auto line = random_line(rng);
  const auto enc = encode_line(ps, line, 0b0000'0101);
  for (usize p = 0; p < 8; ++p) {
    for (usize i = p * 8; i < (p + 1) * 8; ++i) {
      if (p == 0 || p == 2) {
        EXPECT_EQ(enc[i], static_cast<u8>(~line[i]));
      } else {
        EXPECT_EQ(enc[i], line[i]);
      }
    }
  }
}

class EncodingRoundTrip
    : public ::testing::TestWithParam<std::tuple<usize, u64>> {};

TEST_P(EncodingRoundTrip, EncodeIsInvolutive) {
  const auto [k, seed] = GetParam();
  Rng rng(seed);
  const PartitionScheme ps(64, k);
  const auto line = random_line(rng);
  const u64 dirs = rng.next() & ((k == 64 ? ~0ULL : (1ULL << k) - 1));
  const auto enc = encode_line(ps, line, dirs);
  const auto back = encode_line(ps, enc, dirs);
  EXPECT_EQ(back, line);
}

INSTANTIATE_TEST_SUITE_P(
    Ks, EncodingRoundTrip,
    ::testing::Combine(::testing::Values<usize>(1, 2, 4, 8, 16, 32, 64),
                       ::testing::Values<u64>(11, 22, 33)));

TEST(Encoding, ReencodeFlipsOnlyChangedPartitions) {
  Rng rng(4);
  const PartitionScheme ps(64, 8);
  auto logical = random_line(rng);
  const u64 old_dirs = 0b0011'0000;
  const u64 new_dirs = 0b0101'0000;
  auto stored = encode_line(ps, logical, old_dirs);
  reencode_line(ps, stored, old_dirs, new_dirs);
  EXPECT_EQ(stored, encode_line(ps, logical, new_dirs));
}

TEST(Encoding, StoredPartitionOnes) {
  const PartitionScheme ps(16, 2);  // two 64-bit partitions
  std::vector<u8> line(16, 0);
  line[0] = 0xFF;   // 8 ones in partition 0
  line[15] = 0x0F;  // 4 ones in partition 1
  EXPECT_EQ(stored_partition_ones(ps, line, 0, false), 8u);
  EXPECT_EQ(stored_partition_ones(ps, line, 0, true), 56u);
  EXPECT_EQ(stored_partition_ones(ps, line, 1, false), 4u);
  EXPECT_EQ(stored_partition_ones(ps, line, 1, true), 60u);
}

TEST(Encoding, StoredOnesMatchesMaterializedEncoding) {
  Rng rng(5);
  for (const usize k : {1u, 4u, 8u, 16u}) {
    const PartitionScheme ps(64, k);
    const auto line = random_line(rng);
    const u64 dirs = rng.next() & ((1ULL << k) - 1);
    const auto enc = encode_line(ps, line, dirs);
    EXPECT_EQ(stored_ones(ps, line, dirs), popcount(enc)) << "K=" << k;
  }
}

TEST(Encoding, PartitionOnesSumsToTotal) {
  Rng rng(6);
  const PartitionScheme ps(64, 8);
  const auto line = random_line(rng);
  const auto ones = partition_ones(ps, line);
  usize sum = 0;
  for (const auto o : ones) sum += o;
  EXPECT_EQ(sum, popcount(line));
}

}  // namespace
}  // namespace cnt
