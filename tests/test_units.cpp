#include "common/units.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

TEST(Energy, FactoriesAndAccessors) {
  EXPECT_DOUBLE_EQ(fJ(2.5).in_femtojoules(), 2.5);
  EXPECT_DOUBLE_EQ(pJ(3.0).in_picojoules(), 3.0);
  EXPECT_DOUBLE_EQ(nJ(1.0).in_joules(), 1e-9);
  EXPECT_DOUBLE_EQ(Energy::millijoules(2.0).in_joules(), 2e-3);
}

TEST(Energy, Arithmetic) {
  const Energy a = pJ(2.0);
  const Energy b = pJ(3.0);
  EXPECT_DOUBLE_EQ((a + b).in_picojoules(), 5.0);
  EXPECT_DOUBLE_EQ((b - a).in_picojoules(), 1.0);
  EXPECT_DOUBLE_EQ((a * 4.0).in_picojoules(), 8.0);
  EXPECT_DOUBLE_EQ((4.0 * a).in_picojoules(), 8.0);
  EXPECT_DOUBLE_EQ((a / 2.0).in_picojoules(), 1.0);
  EXPECT_DOUBLE_EQ(b / a, 1.5);
}

TEST(Energy, CompoundAssignment) {
  Energy e = fJ(1.0);
  e += fJ(2.0);
  EXPECT_DOUBLE_EQ(e.in_femtojoules(), 3.0);
  e -= fJ(0.5);
  EXPECT_DOUBLE_EQ(e.in_femtojoules(), 2.5);
  e *= 2.0;
  EXPECT_DOUBLE_EQ(e.in_femtojoules(), 5.0);
}

TEST(Energy, Comparison) {
  EXPECT_LT(fJ(1.0), fJ(2.0));
  EXPECT_EQ(fJ(2.0), fJ(2.0));
  EXPECT_NEAR(pJ(1.0).in_joules(), fJ(1000.0).in_joules(), 1e-24);
  EXPECT_GT(nJ(1.0), pJ(999.0));
}

TEST(Energy, DefaultIsZero) {
  Energy e;
  EXPECT_DOUBLE_EQ(e.in_joules(), 0.0);
}

TEST(Energy, ToStringPicksPrefix) {
  EXPECT_EQ(fJ(2.5).to_string(1), "2.5 fJ");
  EXPECT_EQ(pJ(3.25).to_string(2), "3.25 pJ");
  EXPECT_EQ(nJ(1.5).to_string(1), "1.5 nJ");
  EXPECT_EQ(Energy::joules(2.0).to_string(0), "2 J");
}

TEST(Energy, ToStringZero) {
  EXPECT_EQ(Energy{}.to_string(1), "0.0 pJ");
}

TEST(Energy, ToStringNegative) {
  const std::string s = (fJ(1.0) - fJ(3.0)).to_string(1);
  EXPECT_EQ(s, "-2.0 fJ");
}

}  // namespace
}  // namespace cnt
