#include "common/config.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto c = Config::parse_string(
      "top = 1\n[cache]\nsize = 32k\nways=4\n[cnt]\nwindow = 15\n");
  EXPECT_TRUE(c.has("top"));
  EXPECT_TRUE(c.has("cache.size"));
  EXPECT_TRUE(c.has("cnt.window"));
  EXPECT_FALSE(c.has("cache.window"));
  EXPECT_EQ(c.get_uint("cache.ways", 0), 4u);
}

TEST(Config, CommentsAndBlanksIgnored) {
  const auto c = Config::parse_string(
      "# full-line comment\n\n[s] ; trailing comment\nk = v # after value\n");
  EXPECT_EQ(c.get_string("s.k", ""), "v");
}

TEST(Config, WhitespaceTrimmed) {
  const auto c = Config::parse_string("[ s ]\n  key   =   spaced value  \n");
  EXPECT_EQ(c.get_string("s.key", ""), "spaced value");
}

TEST(Config, TypedGetters) {
  const auto c = Config::parse_string(
      "[t]\ni = -5\nu = 7\nd = 2.5\nb1 = yes\nb2 = OFF\ns = text\n");
  EXPECT_EQ(c.get_int("t.i", 0), -5);
  EXPECT_EQ(c.get_uint("t.u", 0), 7u);
  EXPECT_DOUBLE_EQ(c.get_double("t.d", 0), 2.5);
  EXPECT_TRUE(c.get_bool("t.b1", false));
  EXPECT_FALSE(c.get_bool("t.b2", true));
  EXPECT_EQ(c.get_string("t.s", ""), "text");
}

TEST(Config, FallbacksForMissingKeys) {
  const Config c;
  EXPECT_EQ(c.get_int("nope", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("nope", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("nope", true));
  EXPECT_EQ(c.get_size("nope", 99), 99u);
  EXPECT_EQ(c.get("nope"), std::nullopt);
}

TEST(Config, SizeSuffixes) {
  const auto c = Config::parse_string(
      "[m]\na = 64\nb = 32k\nc = 2m\nd = 1g\nK = 4K\n");
  EXPECT_EQ(c.get_size("m.a", 0), 64u);
  EXPECT_EQ(c.get_size("m.b", 0), 32u * 1024);
  EXPECT_EQ(c.get_size("m.c", 0), 2u * 1024 * 1024);
  EXPECT_EQ(c.get_size("m.d", 0), 1024ULL * 1024 * 1024);
  EXPECT_EQ(c.get_size("m.K", 0), 4u * 1024);
}

TEST(Config, MalformedValuesThrow) {
  const auto c = Config::parse_string(
      "[t]\ni = 3x\nd = abc\nb = maybe\nu = -1\nsz = 3q\n");
  EXPECT_THROW((void)c.get_int("t.i", 0), std::invalid_argument);
  EXPECT_THROW((void)c.get_double("t.d", 0), std::invalid_argument);
  EXPECT_THROW((void)c.get_bool("t.b", false), std::invalid_argument);
  EXPECT_THROW((void)c.get_uint("t.u", 0), std::invalid_argument);
  EXPECT_THROW((void)c.get_size("t.sz", 0), std::invalid_argument);
}

TEST(Config, SyntaxErrorsThrowWithLine) {
  EXPECT_THROW((void)Config::parse_string("[unterminated\n"),
               std::runtime_error);
  EXPECT_THROW((void)Config::parse_string("no equals sign\n"),
               std::runtime_error);
  EXPECT_THROW((void)Config::parse_string("= novalue-key\n"),
               std::runtime_error);
}

TEST(Config, DuplicateKeyRejected) {
  // Silent last-wins hid config typos; a duplicate full key is an error.
  try {
    const auto c = Config::parse_string("[s]\nk = 1\nk = 2\n");
    FAIL() << "duplicate key must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kDuplicateKey);
    EXPECT_NE(std::string(e.what()).find("s.k"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  // The same bare key in different sections is two distinct keys.
  const auto c = Config::parse_string("[a]\nk = 1\n[b]\nk = 2\n");
  EXPECT_EQ(c.get_int("a.k", 0), 1);
  EXPECT_EQ(c.get_int("b.k", 0), 2);
}

TEST(Config, KeysSorted) {
  const auto c = Config::parse_string("[b]\nz=1\n[a]\ny=2\n");
  const auto keys = c.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a.y");
  EXPECT_EQ(keys[1], "b.z");
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW((void)Config::load("/no/such/config.ini"), std::runtime_error);
}

}  // namespace
}  // namespace cnt
