#include "sim/config_io.hpp"

#include <gtest/gtest.h>

namespace cnt {
namespace {

TEST(SimConfigIo, EmptyConfigKeepsDefaults) {
  const SimConfig def;
  const SimConfig cfg = sim_config_from(Config{});
  EXPECT_EQ(cfg.cache.size_bytes, def.cache.size_bytes);
  EXPECT_EQ(cfg.cnt.window, def.cnt.window);
  EXPECT_EQ(cfg.cnt.partitions, def.cnt.partitions);
  EXPECT_EQ(cfg.with_cmos, def.with_cmos);
}

TEST(SimConfigIo, AppliesAllSections) {
  const auto ini = Config::parse_string(R"(
[cache]
size = 64k
ways = 8
line = 64
replacement = plru
write_policy = wt
alloc = nwa
idle_per_miss = 3
hit_idle_period = 0

[cnt]
window = 31
partitions = 16
fifo_depth = 4
delta_t = 0.1
fill = read-optimized
granularity = line
history = per-set
account_metadata = false
flip_aware = true

[policies]
cmos = false
static = false
ideal = true
)");
  const SimConfig cfg = sim_config_from(ini);
  EXPECT_EQ(cfg.cache.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.cache.ways, 8u);
  EXPECT_EQ(cfg.cache.replacement, ReplKind::kTreePlru);
  EXPECT_EQ(cfg.cache.write_policy, WritePolicy::kWriteThrough);
  EXPECT_EQ(cfg.cache.alloc_policy, AllocPolicy::kNoWriteAllocate);
  EXPECT_EQ(cfg.cache.idle.idle_per_miss, 3u);
  EXPECT_EQ(cfg.cache.idle.hit_idle_period, 0u);
  EXPECT_EQ(cfg.cnt.window, 31u);
  EXPECT_EQ(cfg.cnt.partitions, 16u);
  EXPECT_EQ(cfg.cnt.fifo_depth, 4u);
  EXPECT_DOUBLE_EQ(cfg.cnt.delta_t, 0.1);
  EXPECT_EQ(cfg.cnt.fill_policy, FillDirectionPolicy::kReadOptimized);
  EXPECT_EQ(cfg.cnt.write_granularity, WriteGranularity::kLine);
  EXPECT_EQ(cfg.cnt.history_scope, HistoryScope::kPerSet);
  EXPECT_FALSE(cfg.cnt.account_metadata);
  EXPECT_TRUE(cfg.cnt.flip_aware_writes);
  EXPECT_FALSE(cfg.with_cmos);
  EXPECT_FALSE(cfg.with_static);
  EXPECT_TRUE(cfg.with_ideal);
}

TEST(SimConfigIo, UnknownEnumThrows) {
  EXPECT_THROW(
      (void)sim_config_from(Config::parse_string("[cnt]\nfill = magic\n")),
      std::invalid_argument);
  EXPECT_THROW((void)sim_config_from(
                   Config::parse_string("[cache]\nreplacement = mru\n")),
               std::invalid_argument);
}

TEST(SimConfigIo, InvalidGeometryThrows) {
  EXPECT_THROW(
      (void)sim_config_from(Config::parse_string("[cache]\nsize = 1000\n")),
      std::invalid_argument);
}

TEST(SimConfigIo, KnownKeysCoverSchema) {
  const auto keys = known_sim_config_keys();
  for (const char* k : {"cache.size", "cnt.window", "policies.ideal",
                        "workload.name"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), k), keys.end()) << k;
  }
}

}  // namespace
}  // namespace cnt
