#include "fault/protection.hpp"

namespace cnt {

usize secded_check_bits(usize payload_bits) noexcept {
  if (payload_bits == 0) return 0;
  usize r = 1;
  while ((usize{1} << r) < payload_bits + r + 1) ++r;
  return r + 1;  // + overall parity bit (the "DED" extension)
}

ProtectionSpec make_protection_spec(ProtectionScheme scheme, usize line_bits,
                                    usize partitions,
                                    bool include_directions) {
  ProtectionSpec spec;
  spec.scheme = scheme;
  if (scheme == ProtectionScheme::kNone) return spec;
  const usize extra = include_directions ? partitions : 0;
  spec.covered_bits = line_bits + extra;
  spec.check_bits = scheme == ProtectionScheme::kParity
                        ? parity_check_bits(partitions)
                        : secded_check_bits(line_bits + extra);
  return spec;
}

}  // namespace cnt
