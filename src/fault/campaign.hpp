// FaultCampaign: one seeded, deterministic fault-injection run.
//
// The campaign owns the physical-divergence state of a single cache
// array: a StuckMap per fault domain (data cells, direction-bit cells),
// independent RNG streams for transient upsets in each domain, and the
// per-line record of what direction mask was *written* vs. what the
// cells actually *hold*. It plugs into the functional cache as a
// LineFaultHook (data side) and is queried by CntPolicy for the
// direction-bit side, so a corrupted direction bit really is decoded
// with the flipped mask: the whole partition reads back inverted unless
// the protection scheme catches it.
//
// Protection semantics (see src/fault/protection.hpp for the codes):
//   * corrected -- the code repaired the read-out value; for stuck cells
//     the repair is paid again on every read (the cell stays stuck).
//   * detected -- the code flagged an uncorrectable pattern; the model
//     assumes refetch recovery, so the stored content is restored and
//     only the detection is counted.
//   * silent   -- the pattern escaped the code: the corruption stays in
//     the array, is served to the CPU, and propagates down on writeback.
// Flips co-occurring in the data and direction portions of one codeword
// read are classified independently (the joint event is quadratically
// rare at realistic rates); the codeword *geometry* still covers both,
// which is what the energy accounting prices.
#pragma once

#include <span>
#include <vector>

#include "cache/fault_hook.hpp"
#include "cnt/direction_hook.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault_config.hpp"
#include "fault/protection.hpp"
#include "fault/stuck_map.hpp"

namespace cnt {

/// Campaign-wide fault tallies, reported through SimResult.
struct FaultStats {
  u64 stuck_data_cells = 0;   ///< placed in the data array
  u64 stuck_dir_cells = 0;    ///< placed in the direction-bit array
  u64 transient_data_flips = 0;
  u64 transient_dir_flips = 0;
  u64 faulty_reads = 0;       ///< array reads that saw >= 1 raw flip
  u64 corrected_bits = 0;     ///< data bits repaired by SECDED
  u64 detected_events = 0;    ///< data-side detections (refetch recovery)
  u64 silent_bits = 0;        ///< data bits of silent corruption (SDC)
  u64 dir_flips = 0;          ///< direction-bit upsets observed at read
  u64 dir_corrected_bits = 0;
  u64 dir_detected_events = 0;
  u64 dir_silent_bits = 0;    ///< partitions decoded with the wrong mask

  [[nodiscard]] bool any_faults() const noexcept {
    return stuck_data_cells + stuck_dir_cells + transient_data_flips +
               transient_dir_flips !=
           0;
  }
};

class FaultCampaign final : public LineFaultHook, public DirectionFaultHook {
 public:
  FaultCampaign(const FaultConfig& cfg, usize sets, usize ways,
                usize line_bytes, usize partitions);

  // LineFaultHook (data-array domain; installed via Cache::set_fault_hook).
  void on_fill(u32 set, u32 way, std::span<u8> stored) override;
  LineFaultReport on_read(u32 set, u32 way, std::span<u8> stored) override;

  // DirectionFaultHook (direction-bit domain; attached to CntPolicy).
  void write_directions(u32 set, u32 way, u64 dirs) override;
  [[nodiscard]] DirRead read_directions(u32 set, u32 way) override;

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const StuckMap& data_stuck() const noexcept {
    return data_stuck_;
  }
  [[nodiscard]] const StuckMap& dir_stuck() const noexcept {
    return dir_stuck_;
  }
  [[nodiscard]] usize line_bits() const noexcept { return line_bits_; }
  /// Stuck data cells overlapping line (set, way).
  [[nodiscard]] usize stuck_in_line(u32 set, u32 way) const noexcept;
  /// Stuck direction-bit cells of line (set, way), as a (mask, value-mask)
  /// pair: bit p of `first` set means direction bit p is stuck, and bit p
  /// of `second` gives the value it is stuck at.
  [[nodiscard]] std::pair<u64, u64> stuck_directions(u32 set,
                                                     u32 way) const noexcept;

 private:
  [[nodiscard]] u64 line_index(u32 set, u32 way) const noexcept {
    return static_cast<u64>(set) * ways_ + way;
  }
  [[nodiscard]] u64 data_base(u32 set, u32 way) const noexcept {
    return line_index(set, way) * line_bits_;
  }
  [[nodiscard]] u64 dir_base(u32 set, u32 way) const noexcept {
    return line_index(set, way) * partitions_;
  }
  [[nodiscard]] u64 apply_dir_stuck(u64 base, u64 dirs) const noexcept;
  void classify_data_read(std::span<u8> stored, LineFaultReport& rep);

  FaultConfig cfg_;
  usize ways_;
  usize line_bits_;
  usize partitions_;
  usize part_bits_;
  StuckMap data_stuck_;
  StuckMap dir_stuck_;
  Rng data_rng_;
  Rng dir_rng_;
  std::vector<u64> written_dirs_;  ///< per line: mask the encoder intended
  std::vector<u64> stored_dirs_;   ///< per line: mask the cells hold
  std::vector<u32> flip_scratch_;  ///< bit offsets flipped by this read
  FaultStats stats_;
};

}  // namespace cnt
