#include "fault/stuck_map.hpp"

#include <cmath>
#include <unordered_set>

#include "common/rng.hpp"

namespace cnt {

StuckMap::StuckMap(u64 seed, u64 total_bits, double per_mbit,
                   double at1_fraction) {
  if (total_bits == 0 || per_mbit <= 0.0) return;
  const double expected =
      static_cast<double>(total_bits) * per_mbit / (1024.0 * 1024.0);
  u64 count = static_cast<u64>(std::llround(expected));
  if (count > total_bits) count = total_bits;
  if (count == 0) return;

  Rng rng(seed);
  std::unordered_set<u64> taken;
  taken.reserve(static_cast<usize>(count) * 2);
  cells_.reserve(static_cast<usize>(count));
  while (taken.size() < count) {
    const u64 bit = rng.uniform(total_bits);
    if (!taken.insert(bit).second) continue;
    cells_.push_back(Cell{bit, rng.chance(at1_fraction)});
  }
  std::sort(cells_.begin(), cells_.end(),
            [](const Cell& a, const Cell& b) { return a.bit < b.bit; });
}

usize StuckMap::count_in(u64 base, u64 count) const noexcept {
  usize n = 0;
  for_range(base, count, [&n](usize, bool) { ++n; });
  return n;
}

}  // namespace cnt
