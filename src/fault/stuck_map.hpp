// Deterministic placement of permanent stuck-at cells across one array.
//
// The map is a sorted list of (bit index, stuck value) pairs sampled once
// at campaign construction: the realized count is round(total_bits *
// density / 2^20) and the positions are drawn without replacement from a
// seeded Rng, so the same (seed, geometry, density) always yields the
// same defect pattern -- fault sweeps are replayable and resumable like
// every other experiment in the repo. Per-line queries binary-search the
// sorted list, so the per-access cost is O(log defects + hits).
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace cnt {

class StuckMap {
 public:
  StuckMap() = default;
  /// Sample round(total_bits * per_mbit / 2^20) distinct stuck cells;
  /// each sticks at '1' with probability `at1_fraction`.
  StuckMap(u64 seed, u64 total_bits, double per_mbit, double at1_fraction);

  [[nodiscard]] usize size() const noexcept { return cells_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }

  /// Visit every stuck cell with bit index in [base, base + count):
  /// fn(offset_within_range, stuck_value).
  template <typename Fn>
  void for_range(u64 base, u64 count, Fn&& fn) const {
    auto it = std::lower_bound(
        cells_.begin(), cells_.end(), base,
        [](const Cell& c, u64 b) { return c.bit < b; });
    for (; it != cells_.end() && it->bit < base + count; ++it) {
      fn(static_cast<usize>(it->bit - base), it->value);
    }
  }

  /// Number of stuck cells in [base, base + count).
  [[nodiscard]] usize count_in(u64 base, u64 count) const noexcept;

 private:
  struct Cell {
    u64 bit;
    bool value;
  };
  std::vector<Cell> cells_;  // sorted by bit index
};

}  // namespace cnt
