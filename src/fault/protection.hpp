// Array protection codes: geometry and outcome classification.
//
// Two schemes are modeled exactly at the level the energy accounting and
// the campaign need:
//   * per-partition parity -- one check bit per encoding partition.
//     An odd number of flips inside a partition group is detected (the
//     controller refetches a clean copy); an even number cancels in the
//     parity sum and passes silently.
//   * per-line SECDED -- an extended Hamming code (r check bits with
//     2^r >= payload + r + 1, plus one overall parity bit) over the whole
//     line payload. One flip per codeword read is corrected, two are
//     detected, three or more alias to a wrong syndrome and pass as a
//     (possibly miscorrected) silent error.
//
// ProtectionSpec packages the per-line geometry so energy policies can
// charge check-bit storage traffic and checker logic without knowing the
// code internals.
#pragma once

#include "common/protection.hpp"
#include "common/types.hpp"
#include "fault/fault_config.hpp"

namespace cnt {

/// What the protection logic concluded about one array read.
enum class FaultOutcome : u8 {
  kClean,      ///< no flips in the codeword
  kCorrected,  ///< flips repaired in the read-out data (SECDED single)
  kDetected,   ///< flagged but not correctable; recovered by refetch
  kSilent,     ///< escaped the code: silent data corruption (SDC)
};

[[nodiscard]] constexpr const char* to_string(FaultOutcome o) noexcept {
  switch (o) {
    case FaultOutcome::kClean: return "clean";
    case FaultOutcome::kCorrected: return "corrected";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSilent: return "silent";
  }
  return "?";
}

/// Check bits of a SECDED (extended Hamming) code over `payload_bits`:
/// the smallest r with 2^r >= payload_bits + r + 1, plus the overall
/// parity bit. 64 -> 8, 512 -> 11, 520 -> 11.
[[nodiscard]] usize secded_check_bits(usize payload_bits) noexcept;

/// Check bits of per-partition parity: one per partition.
[[nodiscard]] constexpr usize parity_check_bits(usize partitions) noexcept {
  return partitions;
}

/// Classify `flips` simultaneous upsets in one SECDED codeword read.
[[nodiscard]] constexpr FaultOutcome classify_secded(usize flips) noexcept {
  if (flips == 0) return FaultOutcome::kClean;
  if (flips == 1) return FaultOutcome::kCorrected;
  if (flips == 2) return FaultOutcome::kDetected;
  return FaultOutcome::kSilent;
}

/// Classify `flips` simultaneous upsets in one parity group read.
[[nodiscard]] constexpr FaultOutcome classify_parity(usize flips) noexcept {
  if (flips == 0) return FaultOutcome::kClean;
  return (flips % 2 == 1) ? FaultOutcome::kDetected : FaultOutcome::kSilent;
}

// ProtectionSpec itself lives in common/protection.hpp (energy policies
// consume it from below this layer); this module owns the code math that
// builds one.

/// Build the spec for a line of `line_bits` data bits under `scheme`.
/// `partitions` sizes the parity groups; when `include_directions` is set
/// (CNT-Cache) the codeword also covers the K direction bits -- parity
/// folds direction bit p into partition p's group, SECDED widens the
/// codeword payload.
[[nodiscard]] ProtectionSpec make_protection_spec(ProtectionScheme scheme,
                                                  usize line_bits,
                                                  usize partitions,
                                                  bool include_directions);

}  // namespace cnt
