// Fault-campaign configuration: the reliability knobs of the simulator.
//
// CNFET arrays are defect-prone by construction -- metallic tubes that
// survive removal and missing tubes leave cells stuck at a value, and the
// reduced noise margins raise transient upset rates. A FaultConfig
// describes one deterministic campaign: where permanent stuck-at cells
// land (seeded placement from a defect density), how often transient
// read-disturb/retention flips strike, and which protection scheme the
// array pays for. All-zero knobs (the default) disable the subsystem
// entirely; the hot paths then never touch it.
#pragma once

#include "common/protection.hpp"
#include "common/types.hpp"

namespace cnt {

struct FaultConfig {
  /// Expected permanent stuck-at cells per 2^20 array bits (data and
  /// direction-bit arrays are seeded independently at the same density).
  /// The realized count is round(expected) -- deterministic in the seed.
  double stuck_per_mbit = 0.0;
  /// Fraction of stuck cells stuck at '1' (the rest stick at '0').
  double stuck_at1_fraction = 0.5;
  /// Per-bit probability of a transient flip on each array read of the
  /// bit (read disturb / retention upsets surfacing at read time).
  double transient_per_read = 0.0;
  /// Protection scheme charged to every policy's ledger.
  ProtectionScheme protection = ProtectionScheme::kNone;
  /// Extend the line codeword over the per-partition direction bits
  /// (CNT-Cache only; the baseline array has no direction bits).
  bool protect_directions = true;
  /// Campaign seed: stuck-cell placement and transient arrival times.
  u64 seed = 0xFA013;

  /// True when any fault machinery must be active. The disabled default
  /// keeps every simulation bit-identical to a build without the fault
  /// subsystem (no hooks installed, no energy charged, no RNG consumed).
  [[nodiscard]] bool enabled() const noexcept {
    return stuck_per_mbit > 0.0 || transient_per_read > 0.0 ||
           protection != ProtectionScheme::kNone;
  }
};

}  // namespace cnt
