// Fault-campaign configuration: the reliability knobs of the simulator.
//
// CNFET arrays are defect-prone by construction -- metallic tubes that
// survive removal and missing tubes leave cells stuck at a value, and the
// reduced noise margins raise transient upset rates. A FaultConfig
// describes one deterministic campaign: where permanent stuck-at cells
// land (seeded placement from a defect density), how often transient
// read-disturb/retention flips strike, and which protection scheme the
// array pays for. All-zero knobs (the default) disable the subsystem
// entirely; the hot paths then never touch it.
#pragma once

#include "common/types.hpp"

namespace cnt {

/// Array protection scheme. Parity is per *partition* (one check bit per
/// encoding partition, so a detected flip also names the partition whose
/// direction bit may be wrong); SECDED is one Hamming+parity codeword per
/// line covering the data bits and, for CNT-Cache, the direction bits.
enum class ProtectionScheme : u8 {
  kNone,    ///< unprotected: every flip is silent data corruption
  kParity,  ///< detects odd flip counts per partition; cannot correct
  kSecded,  ///< corrects 1 flip, detects 2, miscorrects >= 3 per codeword
};

[[nodiscard]] constexpr const char* to_string(ProtectionScheme s) noexcept {
  switch (s) {
    case ProtectionScheme::kNone: return "none";
    case ProtectionScheme::kParity: return "parity";
    case ProtectionScheme::kSecded: return "secded";
  }
  return "?";
}

struct FaultConfig {
  /// Expected permanent stuck-at cells per 2^20 array bits (data and
  /// direction-bit arrays are seeded independently at the same density).
  /// The realized count is round(expected) -- deterministic in the seed.
  double stuck_per_mbit = 0.0;
  /// Fraction of stuck cells stuck at '1' (the rest stick at '0').
  double stuck_at1_fraction = 0.5;
  /// Per-bit probability of a transient flip on each array read of the
  /// bit (read disturb / retention upsets surfacing at read time).
  double transient_per_read = 0.0;
  /// Protection scheme charged to every policy's ledger.
  ProtectionScheme protection = ProtectionScheme::kNone;
  /// Extend the line codeword over the per-partition direction bits
  /// (CNT-Cache only; the baseline array has no direction bits).
  bool protect_directions = true;
  /// Campaign seed: stuck-cell placement and transient arrival times.
  u64 seed = 0xFA013;

  /// True when any fault machinery must be active. The disabled default
  /// keeps every simulation bit-identical to a build without the fault
  /// subsystem (no hooks installed, no energy charged, no RNG consumed).
  [[nodiscard]] bool enabled() const noexcept {
    return stuck_per_mbit > 0.0 || transient_per_read > 0.0 ||
           protection != ProtectionScheme::kNone;
  }
};

}  // namespace cnt
