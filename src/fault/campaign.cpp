#include "fault/campaign.hpp"

#include <bit>
#include <cmath>

#include <cassert>

namespace cnt {
namespace {

// Distinct stream constants so the data-array and direction-bit transient
// processes are independent of each other (and of StuckMap placement):
// which policies are attached never changes the data-side fault pattern.
constexpr u64 kDataStuckStream = 0x9E3779B97F4A7C15ull;
constexpr u64 kDirStuckStream = 0xC2B2AE3D27D4EB4Full;
constexpr u64 kDataRngStream = 0x165667B19E3779F9ull;
constexpr u64 kDirRngStream = 0x27D4EB2F165667C5ull;

[[nodiscard]] bool get_bit(std::span<const u8> bytes, usize bit) noexcept {
  return (bytes[bit >> 3] >> (bit & 7)) & 1u;
}

void put_bit(std::span<u8> bytes, usize bit, bool value) noexcept {
  const u8 mask = static_cast<u8>(1u << (bit & 7));
  if (value) {
    bytes[bit >> 3] |= mask;
  } else {
    bytes[bit >> 3] &= static_cast<u8>(~mask);
  }
}

void flip_bit(std::span<u8> bytes, usize bit) noexcept {
  bytes[bit >> 3] ^= static_cast<u8>(1u << (bit & 7));
}

/// Gap to the next success of a Bernoulli(p) process (geometric skip
/// sampling): visiting only the flipped bits keeps a read O(#flips)
/// instead of O(line bits). Exact for p in (0, 1).
[[nodiscard]] u64 geometric_skip(Rng& rng, double p) {
  if (p >= 1.0) return 0;
  const double u = rng.uniform01();  // [0, 1)
  // floor(log(1-u) / log(1-p)); both logs are negative.
  return static_cast<u64>(std::log1p(-u) / std::log1p(-p));
}

}  // namespace

FaultCampaign::FaultCampaign(const FaultConfig& cfg, usize sets, usize ways,
                             usize line_bytes, usize partitions)
    : cfg_(cfg),
      ways_(ways),
      line_bits_(line_bytes * 8),
      partitions_(partitions),
      part_bits_(partitions > 0 ? line_bytes * 8 / partitions : 0),
      data_stuck_(cfg.seed ^ kDataStuckStream,
                  static_cast<u64>(sets) * ways * line_bytes * 8,
                  cfg.stuck_per_mbit, cfg.stuck_at1_fraction),
      dir_stuck_(cfg.seed ^ kDirStuckStream,
                 static_cast<u64>(sets) * ways * partitions,
                 cfg.stuck_per_mbit, cfg.stuck_at1_fraction),
      data_rng_(cfg.seed ^ kDataRngStream),
      dir_rng_(cfg.seed ^ kDirRngStream),
      written_dirs_(sets * ways, 0),
      stored_dirs_(sets * ways, 0) {
  assert(partitions <= 64);  // direction mask is a u64
  assert(partitions == 0 || line_bits_ % partitions == 0);
  stats_.stuck_data_cells = data_stuck_.size();
  stats_.stuck_dir_cells = dir_stuck_.size();
}

void FaultCampaign::on_fill(u32 set, u32 way, std::span<u8> stored) {
  // Nothing to mutate: the fill image is the reference the check bits are
  // computed from. Stuck cells clamp physically the moment the line is
  // written, but that divergence is observed -- and classified under the
  // protection scheme -- at the next array read, which reasserts the
  // defect map against this image. Mutating here instead would erase the
  // reference and hide fill-path stuck faults from the ECC entirely.
  (void)set;
  (void)way;
  (void)stored;
}

LineFaultReport FaultCampaign::on_read(u32 set, u32 way,
                                       std::span<u8> stored) {
  LineFaultReport rep;
  flip_scratch_.clear();

  // Reassert permanent defects: a repaired stuck cell reverts on the next
  // fill/write, so each read sees it afresh.
  const u64 base = data_base(set, way);
  data_stuck_.for_range(base, line_bits_, [&](usize off, bool value) {
    if (get_bit(stored, off) != value) {
      put_bit(stored, off, value);
      flip_scratch_.push_back(static_cast<u32>(off));
    }
  });

  // Transient upsets (read disturb / retention loss), exact Bernoulli
  // process over the line's bits. A flip landing on a stuck cell is
  // physically impossible -- skip it.
  if (cfg_.transient_per_read > 0.0) {
    u64 bit = geometric_skip(data_rng_, cfg_.transient_per_read);
    while (bit < line_bits_) {
      if (data_stuck_.count_in(base + bit, 1) == 0) {
        flip_bit(stored, static_cast<usize>(bit));
        flip_scratch_.push_back(static_cast<u32>(bit));
        ++stats_.transient_data_flips;
      }
      bit += 1 + geometric_skip(data_rng_, cfg_.transient_per_read);
    }
  }

  rep.flips = static_cast<u32>(flip_scratch_.size());
  if (rep.flips == 0) return rep;
  ++stats_.faulty_reads;
  classify_data_read(stored, rep);
  return rep;
}

void FaultCampaign::classify_data_read(std::span<u8> stored,
                                       LineFaultReport& rep) {
  const auto repair_all = [&] {
    for (const u32 off : flip_scratch_) flip_bit(stored, off);
  };
  switch (cfg_.protection) {
    case ProtectionScheme::kNone:
      rep.silent = rep.flips;
      stats_.silent_bits += rep.flips;
      break;
    case ProtectionScheme::kSecded:
      switch (classify_secded(rep.flips)) {
        case FaultOutcome::kCorrected:
          repair_all();
          rep.corrected = rep.flips;
          stats_.corrected_bits += rep.flips;
          break;
        case FaultOutcome::kDetected:
          // Uncorrectable but flagged: the controller refetches the line,
          // so the served data is clean; only the event is counted.
          repair_all();
          rep.detected = 1;
          ++stats_.detected_events;
          break;
        case FaultOutcome::kSilent:
          rep.silent = rep.flips;
          stats_.silent_bits += rep.flips;
          break;
        case FaultOutcome::kClean: break;
      }
      break;
    case ProtectionScheme::kParity: {
      // One parity bit per partition group: odd flip counts are detected
      // (recovered by refetch), even counts alias and pass silently.
      assert(part_bits_ > 0);
      u64 odd_parts = 0;  // bitmask of groups with odd flip parity
      for (const u32 off : flip_scratch_) {
        odd_parts ^= 1ull << (off / part_bits_);
      }
      u32 silent = 0;
      for (const u32 off : flip_scratch_) {
        if ((odd_parts >> (off / part_bits_)) & 1ull) {
          flip_bit(stored, off);  // refetch restores detected groups
        } else {
          ++silent;
        }
      }
      const u32 detected =
          static_cast<u32>(std::popcount(odd_parts));
      rep.detected = detected;
      rep.silent = silent;
      stats_.detected_events += detected;
      stats_.silent_bits += silent;
      break;
    }
  }
}

u64 FaultCampaign::apply_dir_stuck(u64 base, u64 dirs) const noexcept {
  dir_stuck_.for_range(base, partitions_, [&](usize off, bool value) {
    const u64 mask = 1ull << off;
    dirs = value ? (dirs | mask) : (dirs & ~mask);
  });
  return dirs;
}

void FaultCampaign::write_directions(u32 set, u32 way, u64 dirs) {
  const u64 li = line_index(set, way);
  written_dirs_[static_cast<usize>(li)] = dirs;
  stored_dirs_[static_cast<usize>(li)] = apply_dir_stuck(dir_base(set, way),
                                                         dirs);
}

FaultCampaign::DirRead FaultCampaign::read_directions(u32 set, u32 way) {
  const u64 li = line_index(set, way);
  const u64 base = dir_base(set, way);
  u64 stored = stored_dirs_[static_cast<usize>(li)];

  // Transient flips over the K direction bits (skipping stuck cells).
  if (cfg_.transient_per_read > 0.0 && partitions_ > 0) {
    u64 bit = geometric_skip(dir_rng_, cfg_.transient_per_read);
    while (bit < partitions_) {
      if (dir_stuck_.count_in(base + bit, 1) == 0) {
        stored ^= 1ull << bit;
        ++stats_.transient_dir_flips;
      }
      bit += 1 + geometric_skip(dir_rng_, cfg_.transient_per_read);
    }
    stored_dirs_[static_cast<usize>(li)] = stored;
  }

  DirRead out;
  const u64 written = written_dirs_[static_cast<usize>(li)];
  const u32 flips = static_cast<u32>(std::popcount(stored ^ written));
  out.report.flips = flips;
  if (flips == 0) {
    out.effective = stored;
    return out;
  }
  stats_.dir_flips += flips;

  const bool protect =
      cfg_.protect_directions && cfg_.protection != ProtectionScheme::kNone;
  if (!protect) {
    // Decode proceeds with the flipped mask: every flipped bit inverts
    // the read-out of a whole partition. Real SDC.
    out.effective = stored;
    out.report.silent = flips;
    stats_.dir_silent_bits += flips;
    return out;
  }

  const auto recover = [&] {
    // Corrected or detected-and-refetched: the decoder uses the intended
    // mask. Transient damage is scrubbed; stuck cells reassert into the
    // stored copy immediately.
    out.effective = written;
    stored_dirs_[static_cast<usize>(li)] = apply_dir_stuck(base, written);
  };

  if (cfg_.protection == ProtectionScheme::kSecded) {
    switch (classify_secded(flips)) {
      case FaultOutcome::kCorrected:
        recover();
        out.report.corrected = flips;
        stats_.dir_corrected_bits += flips;
        break;
      case FaultOutcome::kDetected:
        recover();
        out.report.detected = 1;
        ++stats_.dir_detected_events;
        break;
      case FaultOutcome::kSilent:
        out.effective = stored;
        out.report.silent = flips;
        stats_.dir_silent_bits += flips;
        break;
      case FaultOutcome::kClean: break;
    }
  } else {
    // Parity groups each direction bit with its partition's data bits, so
    // a lone direction-bit flip makes its group odd: detected (but never
    // corrected) -- one detection event per flipped bit.
    recover();
    out.report.detected = flips;
    stats_.dir_detected_events += flips;
  }
  return out;
}

usize FaultCampaign::stuck_in_line(u32 set, u32 way) const noexcept {
  return data_stuck_.count_in(data_base(set, way), line_bits_);
}

std::pair<u64, u64> FaultCampaign::stuck_directions(u32 set,
                                                    u32 way) const noexcept {
  u64 mask = 0;
  u64 values = 0;
  dir_stuck_.for_range(dir_base(set, way), partitions_,
                       [&](usize off, bool value) {
                         mask |= 1ull << off;
                         if (value) values |= 1ull << off;
                       });
  return {mask, values};
}

}  // namespace cnt
