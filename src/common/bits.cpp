#include "common/bits.hpp"

namespace cnt {

// The hot kernels (popcount, popcount_range, invert, invert_range,
// hamming_distance, get_bit/set_bit) are defined inline in bits.hpp; only
// the allocating/derived helpers live out of line.

std::vector<u8> inverted(std::span<const u8> bytes) {
  std::vector<u8> out(bytes.begin(), bytes.end());
  invert(out);
  return out;
}

double bit1_density(std::span<const u8> bytes) noexcept {
  if (bytes.empty()) return 0.0;
  return static_cast<double>(popcount(bytes)) /
         static_cast<double>(bytes.size() * 8);
}

}  // namespace cnt
