#include "common/bits.hpp"

#include <cassert>
#include <cstring>

namespace cnt {

namespace {

// Mask with bits [lo, hi) set within a byte, 0 <= lo <= hi <= 8.
constexpr u8 byte_mask(usize lo, usize hi) noexcept {
  const u32 width = static_cast<u32>(hi - lo);
  const u32 base = width >= 8 ? 0xFFu : ((1u << width) - 1u);
  return static_cast<u8>((base << lo) & 0xFFu);
}

}  // namespace

usize popcount(std::span<const u8> bytes) noexcept {
  usize total = 0;
  usize i = 0;
  // Word-at-a-time fast path.
  for (; i + 8 <= bytes.size(); i += 8) {
    u64 w;
    std::memcpy(&w, bytes.data() + i, 8);
    total += static_cast<usize>(std::popcount(w));
  }
  for (; i < bytes.size(); ++i) {
    total += static_cast<usize>(std::popcount(static_cast<u32>(bytes[i])));
  }
  return total;
}

usize popcount_range(std::span<const u8> bytes, usize bit_begin,
                     usize bit_end) noexcept {
  assert(bit_begin <= bit_end);
  assert(bit_end <= bytes.size() * 8);
  if (bit_begin == bit_end) return 0;

  const usize first_byte = bit_begin / 8;
  const usize last_byte = (bit_end - 1) / 8;

  if (first_byte == last_byte) {
    const u8 mask = byte_mask(bit_begin % 8, (bit_end - 1) % 8 + 1);
    return static_cast<usize>(
        std::popcount(static_cast<u32>(bytes[first_byte] & mask)));
  }

  usize total = static_cast<usize>(std::popcount(
      static_cast<u32>(bytes[first_byte] & byte_mask(bit_begin % 8, 8))));
  if (last_byte > first_byte + 1) {
    total += popcount(bytes.subspan(first_byte + 1, last_byte - first_byte - 1));
  }
  total += static_cast<usize>(std::popcount(
      static_cast<u32>(bytes[last_byte] & byte_mask(0, (bit_end - 1) % 8 + 1))));
  return total;
}

void invert(std::span<u8> bytes) noexcept {
  for (auto& b : bytes) b = static_cast<u8>(~b);
}

void invert_range(std::span<u8> bytes, usize bit_begin, usize bit_end) noexcept {
  assert(bit_begin <= bit_end);
  assert(bit_end <= bytes.size() * 8);
  if (bit_begin == bit_end) return;

  const usize first_byte = bit_begin / 8;
  const usize last_byte = (bit_end - 1) / 8;

  if (first_byte == last_byte) {
    bytes[first_byte] ^= byte_mask(bit_begin % 8, (bit_end - 1) % 8 + 1);
    return;
  }

  bytes[first_byte] ^= byte_mask(bit_begin % 8, 8);
  for (usize i = first_byte + 1; i < last_byte; ++i) {
    bytes[i] = static_cast<u8>(~bytes[i]);
  }
  bytes[last_byte] ^= byte_mask(0, (bit_end - 1) % 8 + 1);
}

std::vector<u8> inverted(std::span<const u8> bytes) {
  std::vector<u8> out(bytes.begin(), bytes.end());
  invert(out);
  return out;
}

usize hamming_distance(std::span<const u8> a, std::span<const u8> b) noexcept {
  assert(a.size() == b.size());
  usize total = 0;
  usize i = 0;
  for (; i + 8 <= a.size(); i += 8) {
    u64 wa, wb;
    std::memcpy(&wa, a.data() + i, 8);
    std::memcpy(&wb, b.data() + i, 8);
    total += static_cast<usize>(std::popcount(wa ^ wb));
  }
  for (; i < a.size(); ++i) {
    total += static_cast<usize>(
        std::popcount(static_cast<u32>(a[i] ^ b[i])));
  }
  return total;
}

double bit1_density(std::span<const u8> bytes) noexcept {
  if (bytes.empty()) return 0.0;
  return static_cast<double>(popcount(bytes)) /
         static_cast<double>(bytes.size() * 8);
}

bool get_bit(std::span<const u8> bytes, usize index) noexcept {
  assert(index < bytes.size() * 8);
  return (bytes[index / 8] >> (index % 8)) & 1u;
}

void set_bit(std::span<u8> bytes, usize index, bool value) noexcept {
  assert(index < bytes.size() * 8);
  const u8 mask = static_cast<u8>(1u << (index % 8));
  if (value) {
    bytes[index / 8] |= mask;
  } else {
    bytes[index / 8] &= static_cast<u8>(~mask);
  }
}

}  // namespace cnt
