#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace cnt {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) {
                   // cnt-lint: narrow-ok -- tolower(uchar) fits in char
                   return static_cast<char>(std::tolower(c));
                 });
  return s;
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* kind, std::string hint) {
  throw ValueError(Errc::kValue, "key '" + key + "' has invalid " + kind +
                                     " value '" + value + "'")
      .hint(std::move(hint));
}

}  // namespace

Config Config::parse(std::istream& is, std::string source,
                     const ParseLimits& limits) {
  Config cfg;
  std::string line;
  std::string section;
  u64 line_no = 0;
  usize key_count = 0;
  for (;;) {
    const LineStatus status = bounded_getline(is, line, limits.max_line_bytes);
    if (status == LineStatus::kEof) break;
    ++line_no;
    if (status == LineStatus::kTooLong) {
      throw Error(Errc::kLimit,
                  "line exceeds the " +
                      std::to_string(limits.max_line_bytes) +
                      "-byte strict-parse cap")
          .at(source, line_no)
          .hint("INI lines this long are never legitimate config; the file "
                "is likely corrupt or not an INI file");
    }
    // Strip comments ('#' or ';').
    const auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line.resize(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;

    if (t.front() == '[') {
      if (t.back() != ']' || t.size() < 3) {
        throw Error(Errc::kSyntax, "bad section header '" + t + "'")
            .at(source, line_no)
            .hint("write '[section]' on its own line");
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }

    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw Error(Errc::kSyntax, "missing '=' in key-value line")
          .at(source, line_no)
          .hint("write 'key = value'");
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      throw Error(Errc::kSyntax, "empty key before '='")
          .at(source, line_no)
          .hint("write 'key = value'");
    }
    const std::string full = section.empty() ? key : section + "." + key;
    if (cfg.values_.contains(full)) {
      throw Error(Errc::kDuplicateKey,
                  "key '" + full + "' is defined more than once")
          .at(source, line_no)
          .hint("remove the duplicate; earlier definitions would otherwise "
                "be silently overridden");
    }
    if (++key_count > limits.max_records) {
      throw Error(Errc::kLimit,
                  "more than " + std::to_string(limits.max_records) +
                      " keys (strict-parse cap)")
          .at(source, line_no)
          .hint("no simulator config needs this many keys; the file is "
                "likely not an INI file");
    }
    cfg.set(full, value);
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error(Errc::kIo, "cannot open config file")
        .at(path)
        .hint("check the path and permissions");
  }
  return parse(in, path);
}

Config Config::parse_string(const std::string& text) {
  std::istringstream ss(text);
  return parse(ss, "<string>");
}

Result<Config> Config::try_load(const std::string& path) {
  try {
    return Config::load(path);
  } catch (Error& e) {
    return std::move(e);
  }
}

Result<Config> Config::try_parse_string(const std::string& text,
                                        std::string source) {
  try {
    std::istringstream ss(text);
    return Config::parse(ss, std::move(source));
  } catch (Error& e) {
    return std::move(e);
  }
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

i64 Config::get_int(const std::string& key, i64 fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    usize pos = 0;
    const i64 out = std::stoll(*v, &pos);
    if (pos != v->size()) {
      bad_value(key, *v, "integer", "use a plain base-10 integer");
    }
    return out;
  } catch (const ValueError&) {
    throw;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "integer", "use a plain base-10 integer");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "integer", "the value overflows a 64-bit integer");
  }
}

u64 Config::get_uint(const std::string& key, u64 fallback) const {
  const i64 v = get_int(key, static_cast<i64>(fallback));
  if (v < 0) {
    bad_value(key, *get(key), "unsigned", "the value must be >= 0");
  }
  return static_cast<u64>(v);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    usize pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) {
      bad_value(key, *v, "number", "use a decimal number like 2.5");
    }
    return out;
  } catch (const ValueError&) {
    throw;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "number", "use a decimal number like 2.5");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "number", "the value overflows a double");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string lv = lower(*v);
  if (lv == "true" || lv == "1" || lv == "yes" || lv == "on") return true;
  if (lv == "false" || lv == "0" || lv == "no" || lv == "off") return false;
  bad_value(key, *v, "boolean",
            "use one of true/false/1/0/yes/no/on/off");
}

u64 Config::get_size(const std::string& key, u64 fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  std::string body = *v;
  u64 mult = 1;
  switch (std::tolower(static_cast<unsigned char>(body.back()))) {
    case 'k': mult = 1024; body.pop_back(); break;
    case 'm': mult = 1024 * 1024; body.pop_back(); break;
    case 'g': mult = 1024ULL * 1024 * 1024; body.pop_back(); break;
    default: break;
  }
  try {
    usize pos = 0;
    const u64 base = std::stoull(trim(body), &pos);
    if (pos != trim(body).size()) {
      bad_value(key, *v, "size", "use an integer with optional k/m/g suffix");
    }
    if (mult != 1 && base > ~u64{0} / mult) {
      bad_value(key, *v, "size", "the value overflows 64 bits");
    }
    return base * mult;
  } catch (const ValueError&) {
    throw;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "size", "use an integer with optional k/m/g suffix");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "size", "the value overflows 64 bits");
  }
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::vector<std::pair<std::string, std::string>> Config::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [k, _] : values_) {
    if (std::find(known.begin(), known.end(), k) != known.end()) continue;
    out.emplace_back(k, nearest_match(k, known));
  }
  return out;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

}  // namespace cnt
