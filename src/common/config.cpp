#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cnt {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) {
                   // cnt-lint: narrow-ok -- tolower(uchar) fits in char
                   return static_cast<char>(std::tolower(c));
                 });
  return s;
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* kind) {
  throw std::invalid_argument("config: key '" + key + "' has invalid " +
                              kind + " value '" + value + "'");
}

}  // namespace

Config Config::parse(std::istream& is) {
  Config cfg;
  std::string line;
  std::string section;
  usize line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments ('#' or ';').
    const auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line.resize(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;

    if (t.front() == '[') {
      if (t.back() != ']' || t.size() < 3) {
        throw std::runtime_error("config: bad section header at line " +
                                 std::to_string(line_no));
      }
      section = trim(t.substr(1, t.size() - 2));
      continue;
    }

    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config: missing '=' at line " +
                               std::to_string(line_no));
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config: empty key at line " +
                               std::to_string(line_no));
    }
    cfg.set(section.empty() ? key : section + "." + key, value);
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  return parse(in);
}

Config Config::parse_string(const std::string& text) {
  std::istringstream ss(text);
  return parse(ss);
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

i64 Config::get_int(const std::string& key, i64 fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    usize pos = 0;
    const i64 out = std::stoll(*v, &pos);
    if (pos != v->size()) bad_value(key, *v, "integer");
    return out;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "integer");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "integer");
  }
}

u64 Config::get_uint(const std::string& key, u64 fallback) const {
  const i64 v = get_int(key, static_cast<i64>(fallback));
  if (v < 0) bad_value(key, *get(key), "unsigned");
  return static_cast<u64>(v);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  try {
    usize pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) bad_value(key, *v, "number");
    return out;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "number");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "number");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string lv = lower(*v);
  if (lv == "true" || lv == "1" || lv == "yes" || lv == "on") return true;
  if (lv == "false" || lv == "0" || lv == "no" || lv == "off") return false;
  bad_value(key, *v, "boolean");
}

u64 Config::get_size(const std::string& key, u64 fallback) const {
  const auto v = get(key);
  if (!v || v->empty()) return fallback;
  std::string body = *v;
  u64 mult = 1;
  switch (std::tolower(static_cast<unsigned char>(body.back()))) {
    case 'k': mult = 1024; body.pop_back(); break;
    case 'm': mult = 1024 * 1024; body.pop_back(); break;
    case 'g': mult = 1024ULL * 1024 * 1024; body.pop_back(); break;
    default: break;
  }
  try {
    usize pos = 0;
    const u64 base = std::stoull(trim(body), &pos);
    if (pos != trim(body).size()) bad_value(key, *v, "size");
    return base * mult;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "size");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "size");
  }
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

}  // namespace cnt
