// Open-addressing hash containers for the simulator hot path.
//
// The replay loop performs one unique-line membership probe per access
// (TraceStatsAccumulator) and one page-table probe per fill/writeback
// (MainMemory). std::unordered_{set,map} put a heap-allocated node and a
// pointer chase on each of those probes; at millions of accesses per
// second they dominate the profile (docs/performance.md). These
// containers keep keys in one contiguous power-of-two array with linear
// probing, so a probe is a multiply-shift hash plus a handful of adjacent
// loads.
//
// Scope is deliberately narrow: u64 keys, insert/find only (no erase),
// values stored in a parallel array. Determinism: results depend only on
// the key sequence -- no pointers, no randomized seeds -- and nothing
// here is ever iterated, so container order can never leak into output
// (lint rule R5 by construction).
#pragma once

#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace cnt {

namespace detail {

/// splitmix64 finalizer: full-avalanche mixing so clustered keys (line
/// numbers, page numbers) spread across the table.
[[nodiscard]] constexpr u64 hash_mix_u64(u64 x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Insert-only set of u64 keys. One flat slot array; the all-ones key is
/// reserved as the empty-slot sentinel and tracked with a flag so every
/// u64 value remains storable.
class U64Set {
 public:
  U64Set() : slots_(kInitialCapacity, kEmpty) {}

  /// Insert `key`; returns true when it was not present before.
  bool insert(u64 key) {
    if (key == kEmpty) {
      const bool fresh = !has_empty_key_;
      has_empty_key_ = true;
      return fresh;
    }
    if ((size_ + 1) * 8 >= slots_.size() * 7) grow();
    const usize i = probe(slots_, key);
    if (slots_[i] == key) return false;
    slots_[i] = key;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(u64 key) const noexcept {
    if (key == kEmpty) return has_empty_key_;
    return slots_[probe(slots_, key)] == key;
  }

  [[nodiscard]] usize size() const noexcept {
    return size_ + (has_empty_key_ ? 1 : 0);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  static constexpr u64 kEmpty = ~u64{0};
  static constexpr usize kInitialCapacity = 1024;  // power of two

  /// Index of the slot holding `key` or of the empty slot where it belongs.
  [[nodiscard]] static usize probe(const std::vector<u64>& slots,
                                   u64 key) noexcept {
    const usize mask = slots.size() - 1;
    usize i = static_cast<usize>(detail::hash_mix_u64(key)) & mask;
    while (slots[i] != kEmpty && slots[i] != key) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    std::vector<u64> bigger(slots_.size() * 2, kEmpty);
    for (const u64 key : slots_) {
      if (key != kEmpty) bigger[probe(bigger, key)] = key;
    }
    slots_.swap(bigger);
  }

  std::vector<u64> slots_;
  usize size_ = 0;
  bool has_empty_key_ = false;
};

/// Insert-only map from u64 keys to trivially-copyable values, laid out as
/// a flat key array plus a parallel value array.
template <typename V>
class U64Map {
 public:
  U64Map() : keys_(kInitialCapacity, kEmpty), values_(kInitialCapacity) {}

  /// Value slot for `key`, inserting `fallback` when absent.
  V& find_or_insert(u64 key, const V& fallback) {
    if (key == kEmpty) {
      if (!has_empty_key_) {
        has_empty_key_ = true;
        empty_value_ = fallback;
      }
      return empty_value_;
    }
    if ((size_ + 1) * 8 >= keys_.size() * 7) grow();
    const usize i = probe(keys_, key);
    if (keys_[i] != key) {
      keys_[i] = key;
      values_[i] = fallback;
      ++size_;
    }
    return values_[i];
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] const V* find(u64 key) const noexcept {
    if (key == kEmpty) return has_empty_key_ ? &empty_value_ : nullptr;
    const usize i = probe(keys_, key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }
  [[nodiscard]] V* find(u64 key) noexcept {
    return const_cast<V*>(static_cast<const U64Map*>(this)->find(key));
  }

  [[nodiscard]] usize size() const noexcept {
    return size_ + (has_empty_key_ ? 1 : 0);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  static constexpr u64 kEmpty = ~u64{0};
  static constexpr usize kInitialCapacity = 64;  // power of two

  [[nodiscard]] static usize probe(const std::vector<u64>& keys,
                                   u64 key) noexcept {
    const usize mask = keys.size() - 1;
    usize i = static_cast<usize>(detail::hash_mix_u64(key)) & mask;
    while (keys[i] != kEmpty && keys[i] != key) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    std::vector<u64> keys(keys_.size() * 2, kEmpty);
    std::vector<V> values(keys_.size() * 2);
    for (usize i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == kEmpty) continue;
      const usize j = probe(keys, keys_[i]);
      keys[j] = keys_[i];
      values[j] = values_[i];
    }
    keys_.swap(keys);
    values_.swap(values);
  }

  std::vector<u64> keys_;
  std::vector<V> values_;
  usize size_ = 0;
  bool has_empty_key_ = false;
  V empty_value_{};
};

}  // namespace cnt
