// Bit-level utilities for cache-line data.
//
// CNT-Cache's energy model is bit-pattern dependent (reading/writing '0'
// and '1' cost differently in a CNFET SRAM cell), so the simulator needs
// fast popcounts, range inversion, and bit-density statistics over byte
// buffers representing cache lines.
#pragma once

#include <bit>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace cnt {

/// Number of '1' bits in a byte buffer.
[[nodiscard]] usize popcount(std::span<const u8> bytes) noexcept;

/// Number of '1' bits in the bit-range [bit_begin, bit_end) of `bytes`.
/// Bits are numbered LSB-first within each byte, bytes in buffer order.
/// Precondition: bit_end <= bytes.size() * 8 and bit_begin <= bit_end.
[[nodiscard]] usize popcount_range(std::span<const u8> bytes, usize bit_begin,
                                   usize bit_end) noexcept;

/// Invert every bit of `bytes` in place.
void invert(std::span<u8> bytes) noexcept;

/// Invert the bit-range [bit_begin, bit_end) of `bytes` in place.
/// Same bit-numbering and preconditions as popcount_range().
void invert_range(std::span<u8> bytes, usize bit_begin, usize bit_end) noexcept;

/// Returns a copy of `bytes` with every bit inverted.
[[nodiscard]] std::vector<u8> inverted(std::span<const u8> bytes);

/// Number of bit positions where `a` and `b` differ (Hamming distance).
/// Precondition: a.size() == b.size().
[[nodiscard]] usize hamming_distance(std::span<const u8> a,
                                     std::span<const u8> b) noexcept;

/// Fraction of '1' bits in the buffer, in [0, 1]. Empty buffers yield 0.
[[nodiscard]] double bit1_density(std::span<const u8> bytes) noexcept;

/// Extract bit `index` (LSB-first within bytes) from the buffer.
[[nodiscard]] bool get_bit(std::span<const u8> bytes, usize index) noexcept;

/// Set bit `index` (LSB-first within bytes) in the buffer.
void set_bit(std::span<u8> bytes, usize index, bool value) noexcept;

/// True iff `v` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(u64 v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two. Precondition: is_pow2(v).
[[nodiscard]] constexpr u32 log2_exact(u64 v) noexcept {
  return static_cast<u32>(std::countr_zero(v));
}

/// Smallest number of bits needed to represent values in [0, n].
/// ceil_log2(0) == 0, ceil_log2(1) == 1 bit counter? -- by convention this
/// returns the width of a counter able to hold the value n itself:
/// ceil_log2(15) == 4, ceil_log2(16) == 5.
[[nodiscard]] constexpr u32 bits_to_hold(u64 n) noexcept {
  u32 w = 0;
  while (n != 0) {
    ++w;
    n >>= 1;
  }
  return w == 0 ? 1 : w;
}

}  // namespace cnt
