// Bit-level utilities for cache-line data.
//
// CNT-Cache's energy model is bit-pattern dependent (reading/writing '0'
// and '1' cost differently in a CNFET SRAM cell), so the simulator needs
// fast popcounts, range inversion, and bit-density statistics over byte
// buffers representing cache lines.
//
// The popcount/invert/hamming kernels are defined inline here: they sit on
// the per-access hot path (tens of calls per simulated access once every
// energy policy has charged its pattern-dependent costs), where an
// out-of-line call per 8-byte word costs more than the popcount itself.
// All kernels work word-at-a-time over unaligned 64-bit loads.
#pragma once

#include <bit>
#include <cassert>
#include <cstring>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace cnt {

namespace detail {

/// Unaligned little-endian 64-bit load (compiles to a single mov).
[[nodiscard]] inline u64 load_u64(const u8* p) noexcept {
  u64 w;
  std::memcpy(&w, p, 8);
  return w;
}

/// Mask with bits [lo, hi) set within a byte, 0 <= lo <= hi <= 8.
[[nodiscard]] constexpr u8 byte_mask(usize lo, usize hi) noexcept {
  const u32 width = static_cast<u32>(hi - lo);
  const u32 base = width >= 8 ? 0xFFu : ((1u << width) - 1u);
  return static_cast<u8>((base << lo) & 0xFFu);
}

}  // namespace detail

/// Number of '1' bits in a byte buffer.
[[nodiscard]] inline usize popcount(std::span<const u8> bytes) noexcept {
  usize total = 0;
  usize i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    total += static_cast<usize>(std::popcount(detail::load_u64(bytes.data() + i)));
  }
  for (; i < bytes.size(); ++i) {
    total += static_cast<usize>(std::popcount(static_cast<u32>(bytes[i])));
  }
  return total;
}

/// Number of '1' bits in the bit-range [bit_begin, bit_end) of `bytes`.
/// Bits are numbered LSB-first within each byte, bytes in buffer order.
/// Precondition: bit_end <= bytes.size() * 8 and bit_begin <= bit_end.
[[nodiscard]] inline usize popcount_range(std::span<const u8> bytes,
                                          usize bit_begin,
                                          usize bit_end) noexcept {
  assert(bit_begin <= bit_end);
  assert(bit_end <= bytes.size() * 8);
  if (bit_begin == bit_end) return 0;

  // Byte-aligned ranges (dirty-word and partition boundaries -- the hot
  // callers) reduce to whole-byte popcounts with no edge masking.
  if (((bit_begin | bit_end) & 7) == 0) {
    return popcount(bytes.subspan(bit_begin / 8, (bit_end - bit_begin) / 8));
  }

  const usize first_byte = bit_begin / 8;
  const usize last_byte = (bit_end - 1) / 8;

  if (first_byte == last_byte) {
    const u8 mask = detail::byte_mask(bit_begin % 8, (bit_end - 1) % 8 + 1);
    return static_cast<usize>(
        std::popcount(static_cast<u32>(bytes[first_byte] & mask)));
  }

  usize total = static_cast<usize>(std::popcount(static_cast<u32>(
      bytes[first_byte] & detail::byte_mask(bit_begin % 8, 8))));
  if (last_byte > first_byte + 1) {
    total += popcount(bytes.subspan(first_byte + 1, last_byte - first_byte - 1));
  }
  total += static_cast<usize>(std::popcount(static_cast<u32>(
      bytes[last_byte] & detail::byte_mask(0, (bit_end - 1) % 8 + 1))));
  return total;
}

/// Invert every bit of `bytes` in place.
inline void invert(std::span<u8> bytes) noexcept {
  usize i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    const u64 w = ~detail::load_u64(bytes.data() + i);
    std::memcpy(bytes.data() + i, &w, 8);
  }
  for (; i < bytes.size(); ++i) {
    // cnt-lint: narrow-ok (~ promotes to int; the low byte is the result)
    bytes[i] = static_cast<u8>(~bytes[i]);
  }
}

/// Invert the bit-range [bit_begin, bit_end) of `bytes` in place.
/// Same bit-numbering and preconditions as popcount_range().
inline void invert_range(std::span<u8> bytes, usize bit_begin,
                         usize bit_end) noexcept {
  assert(bit_begin <= bit_end);
  assert(bit_end <= bytes.size() * 8);
  if (bit_begin == bit_end) return;

  if (((bit_begin | bit_end) & 7) == 0) {
    invert(bytes.subspan(bit_begin / 8, (bit_end - bit_begin) / 8));
    return;
  }

  const usize first_byte = bit_begin / 8;
  const usize last_byte = (bit_end - 1) / 8;

  if (first_byte == last_byte) {
    bytes[first_byte] ^= detail::byte_mask(bit_begin % 8, (bit_end - 1) % 8 + 1);
    return;
  }

  bytes[first_byte] ^= detail::byte_mask(bit_begin % 8, 8);
  if (last_byte > first_byte + 1) {
    invert(bytes.subspan(first_byte + 1, last_byte - first_byte - 1));
  }
  bytes[last_byte] ^= detail::byte_mask(0, (bit_end - 1) % 8 + 1);
}

/// Returns a copy of `bytes` with every bit inverted.
[[nodiscard]] std::vector<u8> inverted(std::span<const u8> bytes);

/// Number of bit positions where `a` and `b` differ (Hamming distance).
/// Precondition: a.size() == b.size().
[[nodiscard]] inline usize hamming_distance(std::span<const u8> a,
                                            std::span<const u8> b) noexcept {
  usize total = 0;
  usize i = 0;
  for (; i + 8 <= a.size(); i += 8) {
    total += static_cast<usize>(std::popcount(
        detail::load_u64(a.data() + i) ^ detail::load_u64(b.data() + i)));
  }
  for (; i < a.size(); ++i) {
    total += static_cast<usize>(std::popcount(static_cast<u32>(a[i] ^ b[i])));
  }
  return total;
}

/// Fraction of '1' bits in the buffer, in [0, 1]. Empty buffers yield 0.
[[nodiscard]] double bit1_density(std::span<const u8> bytes) noexcept;

/// Extract bit `index` (LSB-first within bytes) from the buffer.
[[nodiscard]] inline bool get_bit(std::span<const u8> bytes,
                                  usize index) noexcept {
  assert(index < bytes.size() * 8);
  return (bytes[index / 8] >> (index % 8)) & 1u;
}

/// Set bit `index` (LSB-first within bytes) in the buffer.
inline void set_bit(std::span<u8> bytes, usize index, bool value) noexcept {
  assert(index < bytes.size() * 8);
  const u8 mask = static_cast<u8>(1u << (index % 8));
  if (value) {
    bytes[index / 8] |= mask;
  } else {
    bytes[index / 8] &= static_cast<u8>(~mask);
  }
}

/// True iff `v` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(u64 v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two. Precondition: is_pow2(v).
[[nodiscard]] constexpr u32 log2_exact(u64 v) noexcept {
  return static_cast<u32>(std::countr_zero(v));
}

/// Smallest number of bits needed to represent values in [0, n].
/// ceil_log2(0) == 0, ceil_log2(1) == 1 bit counter? -- by convention this
/// returns the width of a counter able to hold the value n itself:
/// ceil_log2(15) == 4, ceil_log2(16) == 5.
[[nodiscard]] constexpr u32 bits_to_hold(u64 n) noexcept {
  u32 w = 0;
  while (n != 0) {
    ++w;
    n >>= 1;
  }
  return w == 0 ? 1 : w;
}

}  // namespace cnt
