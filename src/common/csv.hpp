// Minimal CSV writer: every experiment binary writes its series next to the
// printed table so figures can be re-plotted from the raw data.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cnt {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws cnt::Error (Errc::kIo) if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  /// Append a data row; must have exactly as many cells as the header.
  /// Cells containing commas, quotes, or newlines are quoted per RFC 4180.
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void emit(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  usize columns_;
};

}  // namespace cnt
