// Minimal CSV writer over the durable-I/O layer: every experiment binary
// writes its series next to the printed table so figures can be
// re-plotted from the raw data. Rows buffer in memory and finish()
// publishes the file atomically (docs/crash_consistency.md) -- a crashed
// or failed bench never leaves a truncated CSV behind, and a failed
// write throws instead of exiting 0.
#pragma once

#include <string>
#include <vector>

#include "common/io.hpp"
#include "common/types.hpp"

namespace cnt {

class CsvWriter {
 public:
  /// Stages output at `path + ".partial"` and buffers the header row.
  /// Throws cnt::Error (Errc::kIo) if the staging file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  /// Append a data row; must have exactly as many cells as the header.
  /// Cells containing commas, quotes, or newlines are quoted per RFC 4180.
  void add_row(const std::vector<std::string>& cells);

  /// Durably publish the CSV (checked write + fsync + atomic rename onto
  /// `path`). Every writer must call this once after its last row;
  /// without it the destructor discards the staging file and nothing is
  /// published. Throws cnt::Error (Errc::kIo) on write/rename failure.
  void finish();

  [[nodiscard]] const std::string& path() const noexcept {
    return out_.path();
  }

 private:
  void emit(const std::vector<std::string>& cells);

  io::AtomicFileWriter out_;
  usize columns_;
};

}  // namespace cnt
