// Protection vocabulary shared across layers: which code an array pays
// for, and the per-line check-bit geometry that energy policies charge.
//
// The scheme enum and the spec struct live in common/ because they cross
// the layering boundary in both directions: the fault subsystem *builds*
// specs (fault/protection.hpp owns the code math), while the energy
// policies in src/cnt *consume* them -- and cnt sits below fault in the
// include DAG (docs/static_analysis.md, rule R8).
#pragma once

#include "common/types.hpp"

namespace cnt {

/// Array protection scheme. Parity is per *partition* (one check bit per
/// encoding partition, so a detected flip also names the partition whose
/// direction bit may be wrong); SECDED is one Hamming+parity codeword per
/// line covering the data bits and, for CNT-Cache, the direction bits.
enum class ProtectionScheme : u8 {
  kNone,    ///< unprotected: every flip is silent data corruption
  kParity,  ///< detects odd flip counts per partition; cannot correct
  kSecded,  ///< corrects 1 flip, detects 2, miscorrects >= 3 per codeword
};

[[nodiscard]] constexpr const char* to_string(ProtectionScheme s) noexcept {
  switch (s) {
    case ProtectionScheme::kNone: return "none";
    case ProtectionScheme::kParity: return "parity";
    case ProtectionScheme::kSecded: return "secded";
  }
  return "?";
}

/// Per-line protection geometry for one policy's array.
struct ProtectionSpec {
  ProtectionScheme scheme = ProtectionScheme::kNone;
  usize covered_bits = 0;  ///< payload bits per line (data [+ direction bits])
  usize check_bits = 0;    ///< stored check bits per line

  [[nodiscard]] bool enabled() const noexcept {
    return scheme != ProtectionScheme::kNone;
  }
};

}  // namespace cnt
