// Access events: the observation interface between the functional cache
// and the energy-accounting policies.
//
// The functional behaviour of a cache is identical under every encoding
// policy (encoding only changes what the bits *physically* look like), so
// the simulator runs the functional cache once and broadcasts each access
// to all registered sinks. Every energy policy -- baseline CNFET, CMOS,
// static-invert, adaptive CNT-Cache, oracle -- observes the *same* run,
// which makes comparisons exact rather than statistically matched.
//
// Spans in an event point into cache-internal scratch storage and are valid
// only for the duration of the callback.
#pragma once

#include <span>

#include "common/access.hpp"
#include "common/types.hpp"

namespace cnt {

enum class AccessKind : u8 {
  kReadHit,
  kWriteHit,
  kReadMissFill,   ///< read miss, line filled (possibly evicting)
  kWriteMissFill,  ///< write miss with write-allocate
  kWriteAround,    ///< write miss with no-write-allocate (bypasses array)
};

/// Per-array-read fault tally produced by a LineFaultHook (src/cache/
/// fault_hook.hpp) and carried on the event so energy policies can charge
/// protection work. `flips` counts raw upsets seen by the read;
/// `corrected` / `detected` / `silent` partition them by protection
/// outcome (silent bits remain in the returned data -- real SDC).
struct LineFaultReport {
  u32 flips = 0;
  u32 corrected = 0;
  u32 detected = 0;  ///< detection events (recovered by refetch)
  u32 silent = 0;

  void add(const LineFaultReport& o) noexcept {
    flips += o.flips;
    corrected += o.corrected;
    detected += o.detected;
    silent += o.silent;
  }
};

[[nodiscard]] constexpr const char* to_string(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::kReadHit: return "read_hit";
    case AccessKind::kWriteHit: return "write_hit";
    case AccessKind::kReadMissFill: return "read_miss";
    case AccessKind::kWriteMissFill: return "write_miss";
    case AccessKind::kWriteAround: return "write_around";
  }
  return "?";
}

struct AccessEvent {
  AccessKind kind = AccessKind::kReadHit;
  MemOp op = MemOp::kRead;
  u64 addr = 0;
  u32 set = 0;
  u32 way = 0;      ///< valid except for kWriteAround
  u32 offset = 0;   ///< byte offset of the word within the line
  u8 size = 0;      ///< word size in bytes

  /// Stored tag value of the accessed line (post-access).
  u64 tag = 0;

  /// Logical line contents before the access. For fills this is the
  /// previous physical occupant of the way (the evicted line's data, or
  /// zeros when the way was invalid). Empty for kWriteAround.
  std::span<const u8> line_before;
  /// Logical line contents after the access. Empty for kWriteAround.
  std::span<const u8> line_after;

  /// Tag-array lookup cost inputs: total tag+state bits read across the
  /// set's ways this access, and how many of them were '1'.
  usize tag_bits_read = 0;
  usize tag_ones_read = 0;
  /// Tag bits written on a fill (0 otherwise) and their '1' count.
  usize tag_bits_written = 0;
  usize tag_ones_written = 0;

  /// Eviction side effects (fills only).
  bool evicted_valid = false;
  bool evicted_dirty = false;
  u64 evicted_tag = 0;
  /// With CacheConfig::sector_writeback: bit i set means the victim's i-th
  /// 8-byte word was dirty (must be read out for the writeback). Without
  /// sectoring, all words of a dirty victim count as dirty.
  u64 evicted_dirty_words = 0;

  /// Idle array slots following this access (see IdleModel); the
  /// CNT-Cache deferred-update FIFOs drain during these.
  u32 idle_slots = 0;

  /// Fault-campaign outcome of the array reads behind this access (the
  /// demand read and, on fills, the victim writeback read). All-zero when
  /// no fault hook is installed, so policies can charge correction energy
  /// unconditionally from these counters.
  LineFaultReport fault;

  [[nodiscard]] bool is_fill() const noexcept {
    return kind == AccessKind::kReadMissFill ||
           kind == AccessKind::kWriteMissFill;
  }
  [[nodiscard]] bool is_hit() const noexcept {
    return kind == AccessKind::kReadHit || kind == AccessKind::kWriteHit;
  }
};

/// Observer interface. Sinks must not mutate the cache.
class AccessSink {
 public:
  virtual ~AccessSink() = default;
  virtual void on_access(const AccessEvent& ev) = 0;
};

}  // namespace cnt
