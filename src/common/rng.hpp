// Deterministic pseudo-random number generation for workload synthesis.
//
// All simulator randomness flows through Rng (xoshiro256**), so a seed fully
// reproduces a run. Distribution helpers cover the needs of the workload
// generators: uniform ranges, geometric magnitudes (small-integer value
// models), Zipfian keys (database-like access skew), and Gaussians
// (floating-point value models).
#pragma once

#include <cmath>
#include <vector>

#include "common/types.hpp"

namespace cnt {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Chosen over std::mt19937_64 for speed and a compact, well-defined state
/// that keeps traces bit-reproducible across standard libraries.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(u64 seed) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] u64 next() noexcept;

  /// Low byte of the next raw value: one draw, uniform in [0, 255].
  /// The idiomatic way to fill byte buffers (replaces ad-hoc
  /// `static_cast<u8>(next())` truncation at call sites).
  [[nodiscard]] u8 next_byte() noexcept {
    return static_cast<u8>(next() & 0xffU);
  }

  /// Uniform in [0, bound). Precondition: bound > 0.
  [[nodiscard]] u64 uniform(u64 bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] u64 uniform_range(u64 lo, u64 hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream stays position-independent).
  [[nodiscard]] double gaussian() noexcept;

  /// Geometric-magnitude unsigned integer: P(value needs b bits) decays by
  /// `decay` per extra bit, capped at max_bits. Models the small-integer
  /// skew of real program data (many leading zeros -> low bit-1 density).
  [[nodiscard]] u64 geometric_magnitude(u32 max_bits, double decay) noexcept;

 private:
  u64 s_[4]{};
};

/// Zipf(s, n) sampler over {0, .., n-1} using precomputed inverse CDF
/// buckets; O(log n) per sample. Rank 0 is the most popular key.
class ZipfSampler {
 public:
  /// Precondition: n > 0, s >= 0. s == 0 degenerates to uniform.
  ZipfSampler(usize n, double s);

  [[nodiscard]] usize sample(Rng& rng) const noexcept;
  [[nodiscard]] usize size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace cnt
