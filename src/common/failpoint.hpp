// Deterministic failpoint registry for crash-consistency testing
// (docs/crash_consistency.md).
//
// Every durable writer names its I/O steps as *sites* ("journal.write",
// "trs.sync", ...) and asks the registry before performing them. With no
// failpoints armed the question costs one relaxed atomic load -- the
// perf wall (scripts/check_all.sh leg 6 + BENCH_stream_replay.json gate)
// holds the instrumentation to that budget. Arming happens through
// `CNT_FAILPOINTS` (or configure() in tests):
//
//   CNT_FAILPOINTS="journal.write=error:ENOSPC@3;trs.sync=crash"
//
// grammar: site=action[:arg][@N] entries separated by ';' or ','.
// Actions:
//   error:ENOSPC / error:EIO -- the caller throws the mapped Errc::kIo
//                               error exactly as the real syscall would;
//   short-write              -- the caller persists a prefix of the bytes,
//                               then fails (a torn record on disk);
//   delay[:ms]               -- sleep (default 10 ms) and continue;
//   hang                     -- park until the thread's cancellation
//                               token fires (common/cancel.hpp), then
//                               surface Action::kCancelled -- the
//                               watchdog's torture case (docs/robustness.md);
//   crash                    -- SIGKILL the process at the site, the
//                               moral equivalent of a power cut.
// `@N` fires on the Nth evaluation of the site (1-based, default 1);
// error/short-write/delay/hang are one-shot so recovery paths run clean.
// Sites come from a fixed compile-time catalog; arming an unknown site
// is a configuration error with a did-you-mean hint.
//
// The registry is deterministic: which evaluation fires depends only on
// the spec and the (deterministic) order the program reaches the site.
// tools/cnt-crash layers seeded kill-index selection on top.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cnt::fp {

/// What the caller must do at an armed site. Crash and delay are handled
/// inside evaluate(); only the error-shaped actions reach the caller.
enum class Action : u8 {
  kNone,         ///< proceed normally
  kErrorEnospc,  ///< fail as if write() returned ENOSPC
  kErrorEio,     ///< fail as if the device reported EIO
  kShortWrite,   ///< persist a prefix of the payload, then fail
  kCancelled,    ///< a `hang` park ended: fail with the token's
                 ///< kCancelled/kTimeout error (cancel::cancelled_error)
};

/// One armed entry plus its live hit counter (for tests and cnt-crash).
struct SiteState {
  std::string site;
  std::string action;  ///< rendered as written in the spec
  u64 trigger_hit = 0; ///< 1-based evaluation index that fires
  u64 hits = 0;        ///< evaluations of this site so far
};

/// True when any failpoint is armed or hit-count probing is on. One
/// relaxed atomic load on the hot path.
[[nodiscard]] bool enabled() noexcept;

/// Count a hit at `site` and return the action the caller must take.
/// Sleeps for delay actions; never returns for crash actions.
[[nodiscard]] Action evaluate(std::string_view site) noexcept;

/// Hot-path helper: kNone without a registry lookup when disabled.
[[nodiscard]] inline Action check(std::string_view site) noexcept {
  return enabled() ? evaluate(site) : Action::kNone;
}

/// Arm failpoints from a spec string (grammar above). Replaces any
/// previous configuration. Throws cnt::ValueError on an unknown site,
/// unknown action, or malformed entry.
void configure(std::string_view spec);

/// Arm from $CNT_FAILPOINTS and enable hit-count probing when
/// $CNT_FAILPOINT_REPORT names a file (written by write_report() or at
/// process exit). Called lazily on the first enabled() check; call it
/// directly after changing the environment (forked children, tests).
void configure_from_env();

/// Disarm everything and reset hit counters. enabled() becomes false
/// (probe mode included); the environment is not re-read.
void clear() noexcept;

/// Snapshot of the armed entries, in spec order.
[[nodiscard]] std::vector<SiteState> armed();

/// Evaluations of `site` since the last configure()/clear(). Counted for
/// every site while enabled() -- armed or not.
[[nodiscard]] u64 hit_count(std::string_view site);

/// Write "site count" lines (catalog order, hit sites only) to the
/// $CNT_FAILPOINT_REPORT path. No-op without a report path. cnt-crash
/// uses the report of a clean run to enumerate kill points.
void write_report();

/// The fixed site catalog, sorted. Every evaluate() call site in the
/// tree names one of these (docs/crash_consistency.md documents each).
[[nodiscard]] const std::vector<std::string>& site_catalog();

/// The fixed action catalog, sorted ("crash", "delay", ... "hang",
/// "short-write"). Pinned by tests so new actions land in the grammar,
/// the docs, and the chaos wall together.
[[nodiscard]] const std::vector<std::string>& action_catalog();

}  // namespace cnt::fp
