#include "common/cancel.hpp"

#include <string>
#include <utility>

namespace cnt::cancel {

namespace {

// Signal flags and interrupt requests cannot notify a condition
// variable, so every blocking wait is sliced: worst-case latency from
// "flag set" to "waiter awake" is one slice. 20 ms keeps the SIGINT
// drain test comfortably sub-delay while costing ~50 wakeups/sec only
// while a wait is actually pending.
constexpr u64 kWaitSliceMs = 20;

// The ambient token for this thread, installed by ScopedToken. Plain
// pointer: lifetime is owned by the installer, which outlives the scope.
thread_local Token* t_current = nullptr;

}  // namespace

void Token::cancel(Reason r) noexcept {
  if (r == Reason::kNone) return;
  u8 expected = static_cast<u8>(Reason::kNone);
  if (!reason_.compare_exchange_strong(expected, static_cast<u8>(r),
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
    return;  // already cancelled; first reason wins
  }
  // Take the lock so a waiter between its predicate check and its sleep
  // cannot miss the notify.
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_all();
}

bool Token::wait_ms(u64 ms, const std::function<bool()>& wake) const {
  const Deadline deadline = Deadline::after_ms(ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cancelled()) return true;
    if (wake && wake()) return true;
    const u64 left = deadline.remaining_ms();
    if (left == 0) return false;
    const u64 slice = left < kWaitSliceMs ? left : kWaitSliceMs;
    cv_.wait_for(lock, std::chrono::milliseconds(slice));
  }
}

Deadline Deadline::after_ms(u64 ms) noexcept {
  Deadline d;
  d.never_ = false;
  d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return d;
}

bool Deadline::expired() const noexcept {
  if (never_) return false;
  return std::chrono::steady_clock::now() >= at_;
}

u64 Deadline::remaining_ms() const noexcept {
  if (never_) return ~u64{0};
  const auto now = std::chrono::steady_clock::now();
  if (now >= at_) return 0;
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(at_ - now)
          .count());
}

ScopedToken::ScopedToken(Token& token) noexcept : prev_(t_current) {
  t_current = &token;
}

ScopedToken::~ScopedToken() { t_current = prev_; }

Token* current() noexcept { return t_current; }

bool poll() noexcept { return t_current != nullptr && t_current->cancelled(); }

Error cancelled_error(Reason reason, std::string_view where) {
  if (reason == Reason::kTimeout) {
    return Error(Errc::kTimeout, "job exceeded its deadline")
        .at(std::string(where))
        .hint("raise --job-timeout-ms / CNT_JOB_TIMEOUT_MS, or inspect the "
              "quarantined row in the sweep journal");
  }
  return Error(Errc::kCancelled, "work cancelled")
      .at(std::string(where))
      .hint("cancellation was requested (signal or shutdown); partial "
            "results are replayable with --resume");
}

void throw_if_cancelled(std::string_view where) {
  Token* t = t_current;
  if (t == nullptr || !t->cancelled()) return;
  throw cancelled_error(t->reason(), where);
}

}  // namespace cnt::cancel
