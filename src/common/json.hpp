// Minimal streaming JSON writer for machine-readable experiment output.
//
// Correct-by-construction nesting via an explicit context stack: commas
// and colons are inserted automatically, misuse (value without a key
// inside an object, end_object inside an array, ...) asserts. Doubles are
// emitted with enough digits to round-trip; non-finite doubles become
// null (JSON has no NaN/Inf).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cnt {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent = 2);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key(name) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// True once the single top-level value is complete.
  [[nodiscard]] bool done() const noexcept;

 private:
  enum class Ctx : u8 { kTop, kObject, kArray, kAwaitValue };
  void before_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  int indent_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_items_;
  bool top_written_ = false;
};

}  // namespace cnt
