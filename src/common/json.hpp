// Minimal streaming JSON writer + recursive-descent reader for
// machine-readable experiment output.
//
// Writer: correct-by-construction nesting via an explicit context stack:
// commas and colons are inserted automatically, misuse (value without a
// key inside an object, end_object inside an array, ...) asserts. Doubles
// are emitted with enough digits to round-trip; non-finite doubles become
// null (JSON has no NaN/Inf).
//
// Reader: parse_json() builds a JsonValue tree. Numbers written by the
// writer round-trip exactly -- integers are kept as integers and doubles
// are parsed from the writer's %.17g rendering, so a value read back from
// a journal compares bit-equal to the value that produced it. Malformed
// input throws cnt::Error (Errc::kSyntax/kLimit) carrying the source name
// and byte offset; nesting depth is bounded by ParseLimits.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cnt {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent = 2);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key(name) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// True once the single top-level value is complete.
  [[nodiscard]] bool done() const noexcept;

 private:
  enum class Ctx : u8 { kTop, kObject, kArray, kAwaitValue };
  void before_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  int indent_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_items_;
  bool top_written_ = false;
};

/// One parsed JSON value. Objects preserve member order (JSONL rows are
/// order-sensitive for byte-identical re-emission); duplicate keys keep
/// the first occurrence on lookup.
class JsonValue {
 public:
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw cnt::Error (Errc::kValue) on a kind mismatch
  /// and Errc::kRange on sign violations.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] u64 as_u64() const;  ///< also accepts a non-negative double
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  as_object() const;

  /// Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Object member by key; throws cnt::Error (Errc::kSchema) naming the
  /// key when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  [[nodiscard]] static JsonValue make_null() noexcept { return {}; }
  [[nodiscard]] static JsonValue make_bool(bool v) noexcept;
  [[nodiscard]] static JsonValue make_integer(u64 v, bool negative) noexcept;
  [[nodiscard]] static JsonValue make_double(double v) noexcept;
  [[nodiscard]] static JsonValue make_string(std::string s) noexcept;
  [[nodiscard]] static JsonValue make_array() noexcept;
  [[nodiscard]] static JsonValue make_object() noexcept;

  std::vector<JsonValue>& mutable_array() noexcept { return arr_; }
  std::vector<std::pair<std::string, JsonValue>>& mutable_object() noexcept {
    return obj_;
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool is_integer_ = false;  ///< number was written without '.'/exponent
  bool negative_ = false;
  u64 int_ = 0;       ///< magnitude when is_integer_
  double num_ = 0.0;  ///< value when !is_integer_
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;

  [[nodiscard]] Error kind_error(const char* want) const;
};

/// Parse exactly one JSON value (leading/trailing whitespace allowed).
/// Throws cnt::Error with the source name and byte offset on malformed
/// input; `source` names the input in diagnostics (file path, "<json>").
[[nodiscard]] JsonValue parse_json(std::string_view text,
                                   std::string source = "<json>",
                                   const ParseLimits& limits =
                                       kDefaultLimits);

/// Non-throwing variant: the thrown cnt::Error is returned instead.
[[nodiscard]] Result<JsonValue> try_parse_json(
    std::string_view text, std::string source = "<json>",
    const ParseLimits& limits = kDefaultLimits);

}  // namespace cnt
