#include "common/error.hpp"

#include <algorithm>

namespace cnt {

std::string_view errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::kIo: return "io";
    case Errc::kSyntax: return "syntax";
    case Errc::kValue: return "value";
    case Errc::kRange: return "range";
    case Errc::kLimit: return "limit";
    case Errc::kMagic: return "magic";
    case Errc::kVersion: return "version";
    case Errc::kChecksum: return "checksum";
    case Errc::kSchema: return "schema";
    case Errc::kDuplicateKey: return "duplicate-key";
    case Errc::kUnknownKey: return "unknown-key";
    case Errc::kTruncated: return "truncated";
    case Errc::kInternal: return "internal";
    case Errc::kCancelled: return "cancelled";
    case Errc::kTimeout: return "timeout";
  }
  return "unknown";
}

std::string ErrorInfo::where() const {
  std::string out = source;
  if (line != 0) {
    if (!out.empty()) out += ": ";
    out += "line " + std::to_string(line);
  } else if (byte != 0) {
    if (!out.empty()) out += ": ";
    out += "byte " + std::to_string(byte);
  }
  return out;
}

std::string ErrorInfo::render() const {
  std::string out = "[";
  out += errc_name(code);
  out += "] ";
  const std::string loc = where();
  if (!loc.empty()) {
    out += loc;
    out += ": ";
  }
  out += message;
  for (const std::string& frame : context) {
    out += " (while ";
    out += frame;
    out += ")";
  }
  if (!hint.empty()) {
    out += " -- hint: ";
    out += hint;
  }
  return out;
}

std::string format_error(const std::exception& e) {
  if (const auto* structured = dynamic_cast<const ErrorBase*>(&e)) {
    return structured->info().render();
  }
  return e.what();
}

LineStatus bounded_getline(std::istream& is, std::string& out,
                           usize max_bytes) {
  out.clear();
  std::streambuf* buf = is.rdbuf();
  if (buf == nullptr) {
    is.setstate(std::ios::failbit);
    return LineStatus::kEof;
  }
  bool read_any = false;
  for (;;) {
    const int c = buf->sbumpc();
    if (c == std::streambuf::traits_type::eof()) {
      is.setstate(read_any ? std::ios::eofbit
                           : std::ios::eofbit | std::ios::failbit);
      return read_any ? LineStatus::kOk : LineStatus::kEof;
    }
    read_any = true;
    if (c == '\n') return LineStatus::kOk;
    if (out.size() >= max_bytes) return LineStatus::kTooLong;
    out += static_cast<char>(c & 0xff);
  }
}

namespace {

/// Classic two-row Levenshtein; both inputs are short config keys.
usize edit_distance(const std::string& a, const std::string& b) {
  std::vector<usize> prev(b.size() + 1);
  std::vector<usize> cur(b.size() + 1);
  for (usize j = 0; j <= b.size(); ++j) prev[j] = j;
  for (usize i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (usize j = 1; j <= b.size(); ++j) {
      const usize sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string nearest_match(const std::string& key,
                          const std::vector<std::string>& candidates) {
  const usize cutoff = std::max<usize>(2, key.size() / 4);
  usize best = cutoff + 1;
  std::string winner;
  for (const std::string& c : candidates) {
    // Cheap lower bound: the distance is at least the length difference.
    const usize len_gap = c.size() > key.size() ? c.size() - key.size()
                                                : key.size() - c.size();
    if (len_gap >= best) continue;
    const usize d = edit_distance(key, c);
    if (d < best) {
      best = d;
      winner = c;
    }
  }
  return best <= cutoff ? winner : std::string{};
}

}  // namespace cnt
