// Hashing and checksum helpers for stable identifiers and on-disk
// integrity checks.
//
// FNV-1a (64-bit) builds *stable job keys and fingerprints*: it is simple,
// dependency-free, and -- unlike std::hash -- guaranteed identical across
// platforms, standard libraries and process restarts, which is exactly
// what a resumable journal needs to match rows written by a previous run.
// CRC-32 (IEEE, reflected) guards *individual journal lines* against torn
// writes and bit rot; it is the conventional choice for short-record
// integrity and its 8-hex-digit rendering keeps rows compact.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace cnt {

inline constexpr u64 kFnv64Offset = 14695981039346656037ull;
inline constexpr u64 kFnv64Prime = 1099511628211ull;

/// Incremental FNV-1a 64-bit hasher with typed feeders. Strings are
/// length-prefixed so `("ab","c")` and `("a","bc")` hash differently;
/// integers feed as 8 little-endian bytes and doubles as their IEEE-754
/// bit pattern, so the stream is unambiguous and platform-stable.
class Fnv1a64 {
 public:
  Fnv1a64& update_bytes(const void* data, usize n) noexcept;
  Fnv1a64& update(std::string_view s) noexcept;
  Fnv1a64& update(u64 v) noexcept;
  Fnv1a64& update(i64 v) noexcept { return update(static_cast<u64>(v)); }
  Fnv1a64& update(double v) noexcept;
  Fnv1a64& update(bool v) noexcept { return update(static_cast<u64>(v)); }

  [[nodiscard]] u64 digest() const noexcept { return h_; }

 private:
  u64 h_ = kFnv64Offset;
};

/// One-shot FNV-1a 64 of a byte string (no length prefix).
[[nodiscard]] u64 fnv1a64(std::string_view s) noexcept;

/// CRC-32 (IEEE 802.3, reflected, init/final xor 0xFFFFFFFF) of `s`.
[[nodiscard]] u32 crc32(std::string_view s) noexcept;

/// Incremental CRC-32 over multiple buffers: seed with crc32_init(), feed
/// each piece in order, then finalize. `crc32(a + b)` ==
/// `crc32_final(crc32_feed(crc32_feed(crc32_init(), a), b))` -- callers
/// checksum a header and a payload without concatenating them.
[[nodiscard]] constexpr u32 crc32_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] u32 crc32_feed(u32 state, std::string_view s) noexcept;
[[nodiscard]] constexpr u32 crc32_final(u32 state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// Fixed-width lowercase hex: 16 digits for u64, 8 for u32.
[[nodiscard]] std::string hex_u64(u64 v);
[[nodiscard]] std::string hex_u32(u32 v);

/// Parse a fixed-width lowercase/uppercase hex string (no 0x prefix).
/// Returns false on wrong length or a non-hex digit.
[[nodiscard]] bool parse_hex_u64(std::string_view s, u64& out) noexcept;
[[nodiscard]] bool parse_hex_u32(std::string_view s, u32& out) noexcept;

}  // namespace cnt
