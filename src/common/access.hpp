// Memory-access record: the unit of stimulus for the cache simulator.
//
// CNT-Cache's energy model depends on the *values* flowing through the
// cache (bit-1 density decides encoding profit), so write records carry
// their data payload -- the simulator is value-carrying end to end, like a
// gem5 syscall-emulation run, not an address-only trace replay.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace cnt {

enum class MemOp : u8 {
  kRead,    ///< data load
  kWrite,   ///< data store (carries `value`)
  kIFetch,  ///< instruction fetch (read-only, separate cache port)
};

[[nodiscard]] constexpr const char* to_string(MemOp op) noexcept {
  switch (op) {
    case MemOp::kRead: return "R";
    case MemOp::kWrite: return "W";
    case MemOp::kIFetch: return "I";
  }
  return "?";
}

struct MemAccess {
  u64 addr = 0;   ///< byte address; must be `size`-aligned
  u64 value = 0;  ///< little-endian payload, low `size` bytes (writes only)
  u8 size = 8;    ///< access width in bytes: 1, 2, 4, or 8
  MemOp op = MemOp::kRead;

  [[nodiscard]] bool is_write() const noexcept { return op == MemOp::kWrite; }

  /// Validity: power-of-two size <= 8 and naturally aligned (so an access
  /// never straddles a cache line of >= 8 bytes).
  [[nodiscard]] bool valid() const noexcept {
    return (size == 1 || size == 2 || size == 4 || size == 8) &&
           (addr % size) == 0;
  }

  [[nodiscard]] static MemAccess read(u64 addr, u8 size = 8) noexcept {
    return MemAccess{.addr = addr, .value = 0, .size = size,
                     .op = MemOp::kRead};
  }
  [[nodiscard]] static MemAccess write(u64 addr, u64 value,
                                       u8 size = 8) noexcept {
    return MemAccess{.addr = addr, .value = value, .size = size,
                     .op = MemOp::kWrite};
  }
  [[nodiscard]] static MemAccess ifetch(u64 addr, u8 size = 8) noexcept {
    return MemAccess{.addr = addr, .value = 0, .size = size,
                     .op = MemOp::kIFetch};
  }
};

}  // namespace cnt
