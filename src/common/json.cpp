#include "common/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace cnt {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  stack_.push_back(Ctx::kTop);
  has_items_.push_back(false);
}

JsonWriter::~JsonWriter() {
  assert(done() && "JsonWriter destroyed with unterminated containers");
}

bool JsonWriter::done() const noexcept {
  return stack_.size() == 1 && top_written_;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (usize i = 1; i < stack_.size(); ++i) {
    for (int s = 0; s < indent_; ++s) os_ << ' ';
  }
}

void JsonWriter::before_value() {
  const Ctx ctx = stack_.back();
  assert(ctx != Ctx::kObject &&
         "value inside an object requires a preceding key()");
  if (ctx == Ctx::kTop) {
    assert(!top_written_ && "only one top-level JSON value allowed");
    top_written_ = true;
    return;
  }
  if (ctx == Ctx::kAwaitValue) {
    stack_.pop_back();  // the key consumed; back to the object
    return;
  }
  // Array element.
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(stack_.back() == Ctx::kObject);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) {
    // Closing brace at the parent's indent level.
    if (indent_ > 0) {
      os_ << '\n';
      for (usize i = 1; i < stack_.size(); ++i) {
        for (int s = 0; s < indent_; ++s) os_ << ' ';
      }
    }
  }
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(stack_.back() == Ctx::kArray);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had && indent_ > 0) {
    os_ << '\n';
    for (usize i = 1; i < stack_.size(); ++i) {
      for (int s = 0; s < indent_; ++s) os_ << ' ';
    }
  }
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(stack_.back() == Ctx::kObject && "key() outside an object");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  write_escaped(name);
  os_ << (indent_ > 0 ? ": " : ":");
  stack_.push_back(Ctx::kAwaitValue);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

}  // namespace cnt
