#include "common/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace cnt {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {
  stack_.push_back(Ctx::kTop);
  has_items_.push_back(false);
}

JsonWriter::~JsonWriter() {
  assert(done() && "JsonWriter destroyed with unterminated containers");
}

bool JsonWriter::done() const noexcept {
  return stack_.size() == 1 && top_written_;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (usize i = 1; i < stack_.size(); ++i) {
    for (int s = 0; s < indent_; ++s) os_ << ' ';
  }
}

void JsonWriter::before_value() {
  const Ctx ctx = stack_.back();
  assert(ctx != Ctx::kObject &&
         "value inside an object requires a preceding key()");
  if (ctx == Ctx::kTop) {
    assert(!top_written_ && "only one top-level JSON value allowed");
    top_written_ = true;
    return;
  }
  if (ctx == Ctx::kAwaitValue) {
    stack_.pop_back();  // the key consumed; back to the object
    return;
  }
  // Array element.
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(stack_.back() == Ctx::kObject);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had) {
    // Closing brace at the parent's indent level.
    if (indent_ > 0) {
      os_ << '\n';
      for (usize i = 1; i < stack_.size(); ++i) {
        for (int s = 0; s < indent_; ++s) os_ << ' ';
      }
    }
  }
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(stack_.back() == Ctx::kArray);
  const bool had = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had && indent_ > 0) {
    os_ << '\n';
    for (usize i = 1; i < stack_.size(); ++i) {
      for (int s = 0; s < indent_; ++s) os_ << ' ';
    }
  }
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(stack_.back() == Ctx::kObject && "key() outside an object");
  if (has_items_.back()) os_ << ',';
  has_items_.back() = true;
  newline_indent();
  write_escaped(name);
  os_ << (indent_ > 0 ? ": " : ":");
  stack_.push_back(Ctx::kAwaitValue);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw kind_error("bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw kind_error("number");
  if (!is_integer_) return num_;
  const double mag = static_cast<double>(int_);
  return negative_ ? -mag : mag;
}

u64 JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) throw kind_error("number");
  if (is_integer_) {
    if (negative_) {
      throw Error(Errc::kRange, "JsonValue: negative integer read as u64")
          .hint("the field must be non-negative");
    }
    return int_;
  }
  if (num_ < 0.0) {
    throw Error(Errc::kRange, "JsonValue: negative number read as u64")
        .hint("the field must be non-negative");
  }
  return static_cast<u64>(num_);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw kind_error("string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw kind_error("array");
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (kind_ != Kind::kObject) throw kind_error("object");
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw Error(Errc::kSchema,
                "JsonValue: missing key \"" + std::string(key) + "\"")
        .hint("the input is valid JSON but lacks a required field");
  }
  return *v;
}

JsonValue JsonValue::make_bool(bool v) noexcept {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_integer(u64 v, bool negative) noexcept {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.is_integer_ = true;
  j.negative_ = negative;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::make_double(double v) noexcept {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string s) noexcept {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

JsonValue JsonValue::make_array() noexcept {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::make_object() noexcept {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

Error JsonValue::kind_error(const char* want) const {
  static constexpr const char* kKindNames[] = {"null",   "bool",  "number",
                                               "string", "array", "object"};
  return Error(Errc::kValue,
               std::string("JsonValue: not a ") + want + " (value is " +
                   kKindNames[static_cast<usize>(kind_)] + ")")
      .hint("the field exists but holds the wrong JSON type");
}

namespace {

/// Recursive-descent JSON parser over a string_view. No allocation beyond
/// the resulting tree; errors carry the source name and byte offset for
/// torn-line diagnostics, and nesting depth is bounded by ParseLimits.
class JsonParser {
 public:
  JsonParser(std::string_view text, std::string source,
             const ParseLimits& limits)
      : text_(text), source_(std::move(source)), limits_(limits) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = parse_value(/*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what,
                         Errc code = Errc::kSyntax) const {
    throw Error(code, what)
        .at_byte(source_, pos_)
        .hint("the input is not well-formed JSON");
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) noexcept {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(usize depth) {
    if (depth > limits_.max_depth) {
      fail("nesting deeper than the strict-parse cap of " +
               std::to_string(limits_.max_depth),
           Errc::kLimit);
    }
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object(usize depth) {
    expect('{');
    JsonValue obj = JsonValue::make_object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.mutable_object().emplace_back(std::move(key),
                                        parse_value(depth + 1));
      skip_ws();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array(usize depth) {
    expect('[');
    JsonValue arr = JsonValue::make_array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      skip_ws();
      arr.mutable_array().push_back(parse_value(depth + 1));
      skip_ws();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    u32 cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<u32>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<u32>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<u32>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs are not produced
    // by JsonWriter, which only escapes control characters).
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const usize start = pos_;
    bool negative = false;
    bool integral = true;
    if (!at_end() && peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      // Build the magnitude directly so u64-range values survive exactly.
      u64 mag = 0;
      bool overflow = false;
      for (const char c : token) {
        if (c == '-') continue;
        const u64 digit = static_cast<u64>(c - '0');
        if (mag > (~0ull - digit) / 10) {
          overflow = true;
          break;
        }
        mag = mag * 10 + digit;
      }
      if (!overflow) return JsonValue::make_integer(mag, negative);
    }
    // strtod of a %.17g rendering reproduces the original double exactly.
    return JsonValue::make_double(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::string source_;
  const ParseLimits& limits_;
  usize pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text, std::string source,
                     const ParseLimits& limits) {
  return JsonParser(text, std::move(source), limits).parse();
}

Result<JsonValue> try_parse_json(std::string_view text, std::string source,
                                 const ParseLimits& limits) {
  try {
    return parse_json(text, std::move(source), limits);
  } catch (Error& e) {
    return std::move(e);
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

}  // namespace cnt
