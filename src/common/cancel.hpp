// Cooperative cancellation & deadlines (docs/robustness.md).
//
// A Token is a one-way latch: cancel() flips it exactly once with a
// Reason (operator cancel vs. watchdog timeout) and wakes any waiter;
// cancelled() is a single relaxed atomic load, cheap enough to poll once
// per replay batch -- the same disabled-cost bar the failpoint registry
// holds (common/failpoint.hpp).
//
// Work that should be cancellable installs its token thread-locally with
// a ScopedToken; deep code (the batched replay loops, StreamTraceSource
// refill, the failpoint `hang` park) then polls the ambient token via
// poll()/throw_if_cancelled() without any plumbing through the call
// graph. Cancellation surfaces as a structured cnt::Error carrying
// Errc::kCancelled or Errc::kTimeout with what/where/hint.
//
// Every blocking wait in the tree goes through Token::wait_ms (enforced
// by cnt-lint rule R12): the wait is sliced, wakes immediately on
// cancel(), and re-checks a caller predicate each slice so conditions a
// condition variable cannot observe -- POSIX signal flags above all --
// still preempt the sleep.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string_view>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cnt::cancel {

/// Why a token was cancelled. First cancel() wins; later calls are
/// no-ops, so a late operator Ctrl-C cannot relabel a watchdog timeout.
enum class Reason : u8 {
  kNone,     ///< not cancelled
  kCancel,   ///< explicit cancellation (signal, cancel_check, shutdown)
  kTimeout,  ///< a deadline or watchdog expired
};

class Token {
 public:
  Token() = default;
  Token(const Token&) = delete;
  Token& operator=(const Token&) = delete;

  /// Latch the token with `r` and wake every wait_ms(). Idempotent: the
  /// first reason sticks.
  void cancel(Reason r = Reason::kCancel) noexcept;

  /// One relaxed atomic load -- the hot-path poll.
  [[nodiscard]] bool cancelled() const noexcept {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<u8>(Reason::kNone);  // cnt-lint: narrow-ok enum tag
  }

  [[nodiscard]] Reason reason() const noexcept {
    return static_cast<Reason>(reason_.load(std::memory_order_relaxed));
  }

  /// Sleep up to `ms`, returning early -- and true -- when the token is
  /// cancelled or `wake` returns true. cancel() interrupts the wait
  /// immediately through the condition variable; `wake` (a signal flag,
  /// an interrupt request) is polled once per bounded slice because
  /// async-signal handlers cannot notify a condition variable.
  [[nodiscard]] bool wait_ms(u64 ms,
                             const std::function<bool()>& wake = {}) const;

 private:
  std::atomic<u8> reason_{0};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
};

/// A wall-clock budget measured on the steady clock.
class Deadline {
 public:
  /// Never expires (remaining_ms() saturates).
  [[nodiscard]] static Deadline never() noexcept { return Deadline{}; }

  /// Expires `ms` milliseconds from now.
  [[nodiscard]] static Deadline after_ms(u64 ms) noexcept;

  [[nodiscard]] bool is_never() const noexcept { return never_; }
  [[nodiscard]] bool expired() const noexcept;
  /// Milliseconds left; 0 once expired, u64 max for never().
  [[nodiscard]] u64 remaining_ms() const noexcept;

 private:
  Deadline() = default;
  bool never_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// RAII thread-local install: while alive, poll()/throw_if_cancelled()
/// on this thread observe `token`. Nests; the destructor restores the
/// previous token (the engine installs one token per job attempt).
class ScopedToken {
 public:
  explicit ScopedToken(Token& token) noexcept;
  ~ScopedToken();
  ScopedToken(const ScopedToken&) = delete;
  ScopedToken& operator=(const ScopedToken&) = delete;

 private:
  Token* prev_;
};

/// The token installed on this thread, or nullptr.
[[nodiscard]] Token* current() noexcept;

/// True when this thread's installed token is cancelled. One TLS read
/// plus one relaxed atomic load; false (one TLS read) with no token
/// installed -- cheap enough for once-per-batch polling.
[[nodiscard]] bool poll() noexcept;

/// Build the structured error for a cancellation observed at `where`
/// ("sim.replay", "engine.job", ...): Errc::kTimeout for Reason::kTimeout,
/// Errc::kCancelled otherwise.
[[nodiscard]] Error cancelled_error(Reason reason, std::string_view where);

/// Throw cancelled_error(reason, where) when this thread's token is
/// cancelled; no-op (no token or not cancelled) otherwise.
void throw_if_cancelled(std::string_view where);

}  // namespace cnt::cancel
