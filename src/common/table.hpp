// ASCII table rendering for benchmark harness output.
//
// Every experiment binary prints the rows of the paper table/figure it
// regenerates; this formatter keeps that output aligned and readable.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cnt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; it may have fewer cells than there are headers (the
  /// remainder renders empty) but not more.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision.
  [[nodiscard]] static std::string num(double v, int digits = 3);
  /// Convenience: format a percentage (0.222 -> "22.2%").
  [[nodiscard]] static std::string pct(double frac, int digits = 1);

  [[nodiscard]] usize rows() const noexcept { return rows_.size(); }

  /// Render with box-drawing rules, e.g.
  ///   name     | saving
  ///   ---------+-------
  ///   matmul   | 21.3%
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cnt
