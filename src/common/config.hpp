// Minimal INI-style configuration parser for the simulator front-ends.
//
// Format:
//   # comment / ; comment
//   [section]
//   key = value
//
// Keys are addressed as "section.key" (keys before any section header live
// in the "" section and are addressed by bare name). Values keep their raw
// text; typed getters parse on demand and throw cnt::ValueError (derived
// from std::invalid_argument) naming the key on malformed values, so
// configuration errors are caught loudly rather than silently defaulted.
//
// Strict parsing (docs/error_handling.md): every syntax error is a
// cnt::Error carrying the config *path*, the 1-based line number and a
// fix-it hint; a key defined twice within the same section is rejected
// (Errc::kDuplicateKey) instead of silently last-wins; and line length /
// key count are bounded by ParseLimits so a hostile file cannot trigger
// unbounded memory growth.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cnt {

class Config {
 public:
  Config() = default;

  /// Parse from a stream. `source` names the input in error messages
  /// (pass the file path when you have one). Throws cnt::Error on syntax
  /// errors, duplicate keys, or exceeded limits.
  [[nodiscard]] static Config parse(std::istream& is,
                                    std::string source = "<stream>",
                                    const ParseLimits& limits =
                                        kDefaultLimits);
  /// Parse a file; cnt::Error (Errc::kIo) if it cannot be opened. The
  /// path appears in every subsequent parse error.
  [[nodiscard]] static Config load(const std::string& path);
  /// Parse from a string (tests, inline configs).
  [[nodiscard]] static Config parse_string(const std::string& text);

  /// Non-throwing variants for callers that prefer branching (CLIs, the
  /// fuzz wall). Any thrown cnt::Error is returned instead.
  [[nodiscard]] static Result<Config> try_load(const std::string& path);
  [[nodiscard]] static Result<Config> try_parse_string(
      const std::string& text, std::string source = "<string>");

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] i64 get_int(const std::string& key, i64 fallback) const;
  [[nodiscard]] u64 get_uint(const std::string& key, u64 fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Accepts true/false/1/0/yes/no/on/off (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Sizes accept k/m/g suffixes (binary): "32k" -> 32768.
  [[nodiscard]] u64 get_size(const std::string& key, u64 fallback) const;

  /// All keys, sorted (diagnostics; lets a CLI warn about unknown keys).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Keys not present in `known`, each paired with the nearest known key
  /// by edit distance ("" when nothing is close) for "did you mean"
  /// diagnostics.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  unknown_keys(const std::vector<std::string>& known) const;

  void set(const std::string& key, std::string value);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cnt
