// Minimal INI-style configuration parser for the simulator front-ends.
//
// Format:
//   # comment / ; comment
//   [section]
//   key = value
//
// Keys are addressed as "section.key" (keys before any section header live
// in the "" section and are addressed by bare name). Values keep their raw
// text; typed getters parse on demand and throw std::invalid_argument with
// the key name on malformed values, so configuration errors are caught
// loudly rather than silently defaulted.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cnt {

class Config {
 public:
  Config() = default;

  /// Parse from a stream. Throws std::runtime_error with a line number on
  /// syntax errors (unterminated section, missing '=').
  [[nodiscard]] static Config parse(std::istream& is);
  /// Parse a file; std::runtime_error if it cannot be opened.
  [[nodiscard]] static Config load(const std::string& path);
  /// Parse from a string (tests, inline configs).
  [[nodiscard]] static Config parse_string(const std::string& text);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] i64 get_int(const std::string& key, i64 fallback) const;
  [[nodiscard]] u64 get_uint(const std::string& key, u64 fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Accepts true/false/1/0/yes/no/on/off (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Sizes accept k/m/g suffixes (binary): "32k" -> 32768.
  [[nodiscard]] u64 get_size(const std::string& key, u64 fallback) const;

  /// All keys, sorted (diagnostics; lets a CLI warn about unknown keys).
  [[nodiscard]] std::vector<std::string> keys() const;

  void set(const std::string& key, std::string value);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cnt
