#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace cnt {

void Accumulator::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::mean() const noexcept {
  return n_ == 0 ? 0.0 : mean_;
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void GeoMean::add(double x) noexcept {
  assert(x > 0.0);
  ++n_;
  log_sum_ += std::log(x);
}

double GeoMean::value() const noexcept {
  return n_ == 0 ? 0.0 : std::exp(log_sum_ / static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, usize buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<usize>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(usize i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(usize i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(usize bar_width) const {
  u64 peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (usize i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<usize>(static_cast<double>(counts_[i]) /
                           static_cast<double>(peak) *
                           static_cast<double>(bar_width));
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ != 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

}  // namespace cnt
