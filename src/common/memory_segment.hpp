// A contiguous pre-initialized memory region (program data segment).
//
// Lives in common/ because it crosses a layering boundary: trace-side
// workload builders *produce* segments and the cache's backing store
// *loads* them, and src/cache sits below src/trace in the include DAG
// (docs/static_analysis.md, rule R8).
//
// Two representations compose:
//  - a dense image: `bytes` starting at `base` (the original form, still
//    what every small-kernel generator uses);
//  - a sparse/implicit-zero extension for server-scale tables: a region
//    of `span` bytes (>= bytes.size()) that reads as zero except for
//    explicit `runs`, each a contiguous slice of the shared `pool`.
//
// The resident footprint is O(bytes.size() + pool.size()) -- proportional
// to the explicit content, never to the region span -- so a multi-GiB
// mostly-zero record table costs only its touched records.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace cnt {

struct MemorySegment {
  u64 base = 0;
  std::vector<u8> bytes;

  struct SparseRun {
    u64 offset = 0;  ///< byte offset from `base`
    u64 length = 0;  ///< payload is the next `length` bytes of `pool`
  };
  u64 span = 0;                 ///< region length; 0 = bytes.size()
  std::vector<SparseRun> runs;  ///< ascending offsets, non-overlapping
  std::vector<u8> pool;         ///< concatenated run payloads, run order

  /// Region length in bytes (dense size when no span is set).
  [[nodiscard]] u64 length() const noexcept {
    return span == 0 ? bytes.size() : span;
  }
  /// Bytes of real storage behind this segment (the O(nonzero) figure).
  [[nodiscard]] usize resident_bytes() const noexcept {
    return bytes.size() + pool.size();
  }
  /// True when [addr, addr+size) lies inside the region (its content is
  /// then fully defined: explicit bytes or implicit zeros).
  [[nodiscard]] bool covers(u64 addr, usize size) const noexcept {
    return addr >= base && addr + size <= base + length();
  }
  /// Append a sparse run. Precondition: `offset` is at or past the end of
  /// the previous run and `offset + payload.size() <= length()`.
  void add_run(u64 offset, std::span<const u8> payload) {
    assert(runs.empty() ||
           offset >= runs.back().offset + runs.back().length);
    assert(offset + payload.size() <= length());
    runs.push_back({offset, payload.size()});
    pool.insert(pool.end(), payload.begin(), payload.end());
  }
};

}  // namespace cnt
