#include "common/io.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/cancel.hpp"
#include "common/failpoint.hpp"

namespace cnt::io {

namespace {

/// Transient (EINTR/EAGAIN) retries before a write becomes an error.
constexpr u32 kTransientRetries = 8;

void backoff(u32 attempt) {
  const u32 shift = attempt < 4 ? attempt : 4;
  // cnt-lint: wait-ok bounded (<=16 ms) syscall-retry pause, not a job wait
  std::this_thread::sleep_for(std::chrono::milliseconds(1) * (1u << shift));
}

/// A `hang` failpoint parked here and the park was cancelled: surface
/// the token's reason as the structured kCancelled/kTimeout error.
[[noreturn]] void throw_cancelled(std::string_view site) {
  cancel::Token* token = cancel::current();
  const cancel::Reason reason =
      token != nullptr ? token->reason() : cancel::Reason::kCancel;
  throw cancel::cancelled_error(reason, site);
}

std::string hint_for(int err) {
  switch (err) {
    case ENOSPC:
      return "free disk space and rerun";
    case EIO:
      return "the device reported an I/O error; check the filesystem "
             "before retrying";
    case ENOENT:
      return "check that the directory exists and is writable";
    case EACCES:
    case EPERM:
    case EROFS:
      return "check permissions on the destination directory";
    case EISDIR:
      return "the destination names a directory, not a file";
    case EINTR:
    case EAGAIN:
      return "the call kept being interrupted after bounded retries; "
             "the system is overloaded";
    default:
      return "check the path and the destination filesystem";
  }
}

/// fsync the directory containing `path` so a just-renamed entry
/// survives a power cut. Best-effort: some filesystems refuse directory
/// fsync; that is not a failure the caller can act on.
void sync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

[[nodiscard]] Error rename_error(const std::string& from,
                                 const std::string& to, int err) {
  return Error(Errc::kIo, "rename failed: " + errno_label(err))
      .at(from)
      .context("publishing " + to)
      .hint(hint_for(err));
}

}  // namespace

std::string_view errno_name(int err) noexcept {
  switch (err) {
    case ENOSPC: return "ENOSPC";
    case EIO: return "EIO";
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOENT: return "ENOENT";
    case EISDIR: return "EISDIR";
    case ENOTDIR: return "ENOTDIR";
    case EROFS: return "EROFS";
    case EEXIST: return "EEXIST";
    case EXDEV: return "EXDEV";
    case EBADF: return "EBADF";
    case EFBIG: return "EFBIG";
    case EMFILE: return "EMFILE";
    case ENFILE: return "ENFILE";
    case EINVAL: return "EINVAL";
    default: return "";
  }
}

std::string errno_label(int err) {
  // Fixed descriptions (not strerror) so error messages are stable
  // across libcs and locales -- tests pin them byte-for-byte.
  const char* desc = nullptr;
  switch (err) {
    case ENOSPC: desc = "no space left on device"; break;
    case EIO: desc = "input/output error"; break;
    case EINTR: desc = "interrupted system call"; break;
    case EAGAIN: desc = "resource temporarily unavailable"; break;
    case EACCES: desc = "permission denied"; break;
    case EPERM: desc = "operation not permitted"; break;
    case ENOENT: desc = "no such file or directory"; break;
    case EISDIR: desc = "is a directory"; break;
    case ENOTDIR: desc = "not a directory"; break;
    case EROFS: desc = "read-only file system"; break;
    case EEXIST: desc = "file exists"; break;
    case EXDEV: desc = "cross-device link"; break;
    case EBADF: desc = "bad file descriptor"; break;
    case EFBIG: desc = "file too large"; break;
    case EMFILE: desc = "too many open files"; break;
    case ENFILE: desc = "file table overflow"; break;
    case EINVAL: desc = "invalid argument"; break;
    default: break;
  }
  if (desc == nullptr) return "errno " + std::to_string(err);
  return std::string(errno_name(err)) + " (" + desc + ")";
}

Error io_error(std::string_view op, int err, const std::string& path) {
  return Error(Errc::kIo, std::string(op) + " failed: " + errno_label(err))
      .at(path)
      .hint(hint_for(err));
}

// --- DurableFile -----------------------------------------------------------

DurableFile::DurableFile(std::string path, std::string site_prefix)
    : path_(std::move(path)),
      site_write_(site_prefix + ".write"),
      site_sync_(site_prefix + ".sync") {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) throw io_error("open", errno, path_);
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) (void)::close(fd_);
}

Error DurableFile::write_error(usize done, usize total, int err) const {
  std::string msg = "write failed";
  if (done > 0) {
    msg += " after " + std::to_string(done) + " of " + std::to_string(total) +
           " bytes";
  }
  msg += ": " + errno_label(err);
  return Error(Errc::kIo, std::move(msg)).at(path_).hint(hint_for(err));
}

void DurableFile::write_all(const char* data, usize n) {
  usize done = 0;
  u32 transient = 0;
  while (done < n) {
    const ssize_t w = ::write(fd_, data + done, n - done);
    if (w >= 0) {
      done += static_cast<usize>(w);
      transient = 0;
      continue;
    }
    const int err = errno;
    if ((err == EINTR || err == EAGAIN) && ++transient <= kTransientRetries) {
      backoff(transient);
      continue;
    }
    throw write_error(done, n, err);
  }
}

void DurableFile::write(std::string_view bytes) {
  switch (fp::check(site_write_)) {
    case fp::Action::kErrorEnospc:
      throw write_error(0, bytes.size(), ENOSPC);
    case fp::Action::kErrorEio:
      throw write_error(0, bytes.size(), EIO);
    case fp::Action::kShortWrite: {
      // Persist a real prefix, then fail: the on-disk state is exactly a
      // torn record, the case recovery paths must handle.
      const usize half = bytes.size() / 2;
      write_all(bytes.data(), half);
      throw write_error(half, bytes.size(), ENOSPC);
    }
    case fp::Action::kCancelled:
      throw_cancelled(site_write_);
    case fp::Action::kNone:
      break;
  }
  write_all(bytes.data(), bytes.size());
}

void DurableFile::sync() {
  switch (fp::check(site_sync_)) {
    case fp::Action::kErrorEnospc:
      throw io_error("fsync", ENOSPC, path_);
    case fp::Action::kErrorEio:
    case fp::Action::kShortWrite:  // short writes do not apply to fsync
      throw io_error("fsync", EIO, path_);
    case fp::Action::kCancelled:
      throw_cancelled(site_sync_);
    case fp::Action::kNone:
      break;
  }
  if (::fsync(fd_) != 0) {
    const int err = errno;
    // Pipes and some filesystems reject fsync; that is a property of
    // the destination, not a write failure.
    if (err == EINVAL || err == EROFS) return;
    throw io_error("fsync", err, path_);
  }
}

void DurableFile::close() {
  if (fd_ < 0) return;
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) throw io_error("close", errno, path_);
}

// --- rename + AtomicFileWriter --------------------------------------------

void rename_file(const std::string& from, const std::string& to,
                 const std::string& site_prefix) {
  switch (fp::check(site_prefix + ".rename")) {
    case fp::Action::kErrorEnospc:
      throw rename_error(from, to, ENOSPC);
    case fp::Action::kErrorEio:
    case fp::Action::kShortWrite:
      throw rename_error(from, to, EIO);
    case fp::Action::kCancelled:
      throw_cancelled(site_prefix + ".rename");
    case fp::Action::kNone:
      break;
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    throw rename_error(from, to, errno);
  }
  sync_parent_dir(to);
}

AtomicFileWriter::AtomicFileWriter(std::string path, std::string site_prefix)
    : path_(std::move(path)),
      partial_(path_ + ".partial"),
      prefix_(std::move(site_prefix)) {
  file_.emplace(partial_, prefix_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!finished_) discard();
}

void AtomicFileWriter::write(std::string_view bytes) {
  buffer_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  if (finished_) {
    throw std::logic_error("AtomicFileWriter: commit() after discard()");
  }
  const std::string bytes = buffer_.str();
  file_->write(bytes);
  file_->sync();
  file_->close();
  rename_file(partial_, path_, prefix_);
  file_.reset();
  committed_ = true;
  finished_ = true;
}

void AtomicFileWriter::discard() noexcept {
  if (finished_) return;
  finished_ = true;
  file_.reset();  // best-effort close
  (void)std::remove(partial_.c_str());
}

}  // namespace cnt::io
