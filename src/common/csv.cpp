#include "common/csv.hpp"

#include <cassert>

#include "common/error.hpp"

namespace cnt {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : path_(path), out_(path), columns_(headers.size()) {
  if (!out_) {
    throw Error(Errc::kIo, "CsvWriter: cannot open output file")
        .at(path)
        .hint("check that the directory exists and is writable");
  }
  emit(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  assert(cells.size() == columns_);
  emit(cells);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (usize i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

}  // namespace cnt
