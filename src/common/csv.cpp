#include "common/csv.hpp"

#include <cassert>

namespace cnt {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : out_(path, "csv"), columns_(headers.size()) {
  emit(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  assert(cells.size() == columns_);
  emit(cells);
}

void CsvWriter::finish() { out_.commit(); }

void CsvWriter::emit(const std::vector<std::string>& cells) {
  std::ostream& os = out_.stream();
  for (usize i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    os << escape(cells[i]);
  }
  os << '\n';
}

}  // namespace cnt
