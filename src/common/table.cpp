#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace cnt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::pct(double frac, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, frac * 100.0);
  return buf;
}

std::string Table::render() const {
  std::vector<usize> widths(headers_.size());
  for (usize c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (usize c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (usize c = 0; c < cells.size(); ++c) {
      if (c != 0) os << " | ";
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };

  emit_row(headers_);
  for (usize c = 0; c < widths.size(); ++c) {
    if (c != 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace cnt
