#include "common/hash.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace cnt {

namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[s][b] advances a byte that sits s positions deeper in the message,
// so eight table lookups fold eight message bytes per iteration. The
// polynomial and therefore every CRC value are unchanged -- only the
// folding order differs.
constexpr std::array<std::array<u32, 256>, 8> make_crc32_tables() {
  std::array<std::array<u32, 256>, 8> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (u32 i = 0; i < 256; ++i) {
    for (usize s = 1; s < 8; ++s) {
      t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
    }
  }
  return t;
}

constexpr std::array<std::array<u32, 256>, 8> kCrc32Tables =
    make_crc32_tables();

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Fnv1a64& Fnv1a64::update_bytes(const void* data, usize n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (usize i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= kFnv64Prime;
  }
  return *this;
}

Fnv1a64& Fnv1a64::update(std::string_view s) noexcept {
  update(static_cast<u64>(s.size()));
  return update_bytes(s.data(), s.size());
}

Fnv1a64& Fnv1a64::update(u64 v) noexcept {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  return update_bytes(bytes, 8);
}

Fnv1a64& Fnv1a64::update(double v) noexcept {
  return update(std::bit_cast<u64>(v));
}

u64 fnv1a64(std::string_view s) noexcept {
  u64 h = kFnv64Offset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv64Prime;
  }
  return h;
}

u32 crc32(std::string_view s) noexcept {
  return crc32_final(crc32_feed(crc32_init(), s));
}

u32 crc32_feed(u32 state, std::string_view s) noexcept {
  const auto& t = kCrc32Tables;
  u32 c = state;
  const char* p = s.data();
  usize n = s.size();
  // The 8-byte fast path loads two little-endian words; on a big-endian
  // target the byte loop below (bit-identical, just slower) handles
  // everything.
  if constexpr (std::endian::native == std::endian::little) {
    for (; n >= 8; p += 8, n -= 8) {
      u32 lo = 0;
      u32 hi = 0;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    }
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ static_cast<unsigned char>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

std::string hex_u64(u64 v) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<usize>(i)] = kHexDigits[v & 0xFu];
    v >>= 4;
  }
  return s;
}

std::string hex_u32(u32 v) {
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[static_cast<usize>(i)] = kHexDigits[v & 0xFu];
    v >>= 4;
  }
  return s;
}

bool parse_hex_u64(std::string_view s, u64& out) noexcept {
  if (s.size() != 16) return false;
  u64 v = 0;
  for (const char c : s) {
    const int d = hex_digit(c);
    if (d < 0) return false;
    v = (v << 4) | static_cast<u64>(d);
  }
  out = v;
  return true;
}

bool parse_hex_u32(std::string_view s, u32& out) noexcept {
  if (s.size() != 8) return false;
  u32 v = 0;
  for (const char c : s) {
    const int d = hex_digit(c);
    if (d < 0) return false;
    v = (v << 4) | static_cast<u32>(d);
  }
  out = v;
  return true;
}

}  // namespace cnt
