#include "common/rng.hpp"

#include <algorithm>
#include <cassert>
#include <numbers>

namespace cnt {

namespace {

constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

u64 splitmix64(u64& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(u64 seed) noexcept {
  u64 sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

u64 Rng::next() noexcept {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::uniform(u64 bound) noexcept {
  assert(bound > 0);
  // Rejection sampling to remove modulo bias.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = next();
    if (r >= threshold) return r % bound;
  }
}

u64 Rng::uniform_range(u64 lo, u64 hi) noexcept {
  assert(lo <= hi);
  const u64 span = hi - lo;
  if (span == ~0ULL) return next();
  return lo + uniform(span + 1);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::gaussian() noexcept {
  // Box-Muller; avoid log(0).
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

u64 Rng::geometric_magnitude(u32 max_bits, double decay) noexcept {
  assert(max_bits >= 1 && max_bits <= 64);
  u32 bits = 1;
  while (bits < max_bits && chance(decay)) ++bits;
  if (bits >= 64) return next();
  return uniform(1ULL << bits);
}

ZipfSampler::ZipfSampler(usize n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (usize k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against FP rounding at the tail
}

usize ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<usize>(it - cdf_.begin());
}

}  // namespace cnt
