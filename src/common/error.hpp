// Structured error taxonomy for the ingest layer (INI configs, traces,
// journals, JSON/JSONL) and a lightweight Result<T> return path.
//
// Every parse failure answers three questions:
//   what   -- a one-line message naming the problem,
//   where  -- source name plus line number or byte offset,
//   how    -- an actionable hint ("write 'key = value'", "delete the
//             stale journal", ...).
//
// cnt::Error derives from std::runtime_error and cnt::ValueError from
// std::invalid_argument, so pre-taxonomy call sites (and tests) that
// catch the standard types keep working; new code catches cnt::ErrorBase
// to read the structured fields. Conventions and the full catalog:
// docs/error_handling.md.
#pragma once

#include <istream>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace cnt {

/// Failure classes shared by every ingest format.
enum class Errc : u8 {
  kIo,            ///< cannot open / read / rename a file
  kSyntax,        ///< malformed text (missing '=', bad JSON token, ...)
  kValue,         ///< well-formed text, unparseable value ("3x" as int)
  kRange,         ///< parseable value outside its legal range
  kLimit,         ///< strict-parse resource cap exceeded (line/record/alloc)
  kMagic,         ///< binary file is not the expected format at all
  kVersion,       ///< right format, unsupported version
  kChecksum,      ///< CRC / seal mismatch on otherwise readable content
  kSchema,        ///< structurally valid input missing required fields,
                  ///< or an identity mismatch (journal fingerprint)
  kDuplicateKey,  ///< the same key defined twice where that is ambiguous
  kUnknownKey,    ///< a key the schema does not define
  kTruncated,     ///< input ends mid-record
  kInternal,      ///< invariant violation; a bug, not an input problem
  kCancelled,     ///< work abandoned on request (signal, shutdown)
  kTimeout,       ///< a deadline or watchdog expired (common/cancel.hpp)
};

/// Stable lowercase name ("syntax", "duplicate-key", ...) for rendering
/// and for deterministic fuzz-outcome digests.
[[nodiscard]] std::string_view errc_name(Errc code) noexcept;

/// The structured payload carried by every taxonomy exception.
struct ErrorInfo {
  Errc code = Errc::kInternal;
  std::string message;  ///< what happened
  std::string source;   ///< file path, or "<string>" / "<stream>"
  u64 line = 0;         ///< 1-based line number; 0 = not line-addressed
  u64 byte = 0;         ///< byte offset; used when line == 0
  std::string hint;     ///< how to fix it ("" = no hint)
  std::vector<std::string> context;  ///< enclosing operations, innermost first

  /// "cfg.ini: line 3" / "row.json: byte 17" / "cfg.ini" / "".
  [[nodiscard]] std::string where() const;
  /// Single-line rendering: `[code] where: message (while ...) -- hint: ...`.
  [[nodiscard]] std::string render() const;
};

/// Virtual interface shared by Error and ValueError so call sites can
/// `catch (const cnt::ErrorBase& e)` regardless of the std base class.
class ErrorBase {
 public:
  virtual ~ErrorBase() = default;
  [[nodiscard]] virtual const ErrorInfo& info() const noexcept = 0;
};

/// Taxonomy exception over a standard base class. Builder methods are
/// rvalue-qualified so a throw site reads as one expression:
///
///   throw Error(Errc::kSyntax, "missing '='")
///       .at(path, line_no)
///       .hint("write 'key = value'");
template <class StdExc>
class BasicError : public StdExc, public ErrorBase {
 public:
  BasicError(Errc code, std::string message) : StdExc("") {
    info_.code = code;
    info_.message = std::move(message);
    rendered_ = info_.render();
  }

  /// Attach the source name and an optional 1-based line number.
  BasicError&& at(std::string source, u64 line = 0) && {
    info_.source = std::move(source);
    info_.line = line;
    return update();
  }

  /// Attach the source name and a byte offset (binary / JSON inputs).
  BasicError&& at_byte(std::string source, u64 byte) && {
    info_.source = std::move(source);
    info_.byte = byte;
    return update();
  }

  /// Attach the "how to fix" hint.
  BasicError&& hint(std::string how) && {
    info_.hint = std::move(how);
    return update();
  }

  /// Push an enclosing-operation frame ("loading sweep journal", ...).
  BasicError&& context(std::string frame) && {
    info_.context.push_back(std::move(frame));
    return update();
  }

  [[nodiscard]] const char* what() const noexcept override {
    return rendered_.c_str();
  }
  [[nodiscard]] const ErrorInfo& info() const noexcept override {
    return info_;
  }
  [[nodiscard]] Errc code() const noexcept { return info_.code; }

 private:
  BasicError&& update() {
    rendered_ = info_.render();
    return std::move(*this);
  }

  ErrorInfo info_;
  std::string rendered_;
};

/// Parse / I-O failures (catchable as std::runtime_error).
using Error = BasicError<std::runtime_error>;
/// Malformed values behind a valid syntax (catchable as
/// std::invalid_argument, the pre-taxonomy contract of Config getters).
using ValueError = BasicError<std::invalid_argument>;

/// Rich rendering for CLI error paths: the structured render() when `e`
/// carries an ErrorInfo, plain what() otherwise.
[[nodiscard]] std::string format_error(const std::exception& e);

/// expected-style return path for callers that prefer branching over
/// catching (front-ends, the fuzz wall). Holds either a T or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(implicit)
  Result(Error error) : error_(std::move(error)) {}    // NOLINT(implicit)

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] explicit operator bool() const noexcept { return ok(); }

  /// Precondition: ok().
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  /// Precondition: !ok().
  [[nodiscard]] const Error& error() const& { return *error_; }

  /// Move the value out, or throw the stored Error.
  T or_throw() && {
    if (!ok()) throw std::move(*error_);
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Strict-parse resource caps. Every ingest parser enforces these so a
/// malformed or hostile input can never trigger unbounded memory growth:
/// text lines and record/key counts are bounded, and a binary header's
/// declared count can only pre-reserve up to max_reserve_bytes (larger
/// declared counts still parse; the vector then grows only as records
/// actually arrive and truncation is reported instead).
struct ParseLimits {
  usize max_line_bytes = usize{1} << 20;      ///< 1 MiB per text line
  usize max_records = usize{1} << 26;         ///< records / rows / keys
  usize max_reserve_bytes = usize{64} << 20;  ///< 64 MiB preallocation cap
  usize max_depth = 64;                       ///< JSON nesting depth
};

inline constexpr ParseLimits kDefaultLimits{};

/// Outcome of a bounded line read.
enum class LineStatus : u8 {
  kOk,      ///< a line (possibly empty) was read into `out`
  kEof,     ///< no characters left; `out` is empty
  kTooLong, ///< the line exceeds max_bytes; `out` holds the read prefix
};

/// std::getline with a byte cap: reads up to (not including) '\n',
/// returning kTooLong instead of growing `out` past `max_bytes`. Callers
/// decide whether an over-long line is a thrown kLimit error (strict
/// parsers) or data corruption (journal loading, which never throws).
[[nodiscard]] LineStatus bounded_getline(std::istream& is, std::string& out,
                                         usize max_bytes);

/// Nearest candidate by edit distance for "did you mean ...?" hints;
/// "" when nothing is close (distance must be <= max(2, |key| / 4)).
[[nodiscard]] std::string nearest_match(
    const std::string& key, const std::vector<std::string>& candidates);

}  // namespace cnt
