// Durable, checked file output (docs/crash_consistency.md).
//
// Two durability classes back every artifact the tree writes:
//
//  * incremental-durable (sweep journals, .trs streamed traces):
//    DurableFile performs checked full writes straight at the target
//    descriptor; a crash leaves a prefix the reader either recovers
//    (journal torn tail) or refuses with a structured error (.trs
//    without a sealed footer).
//  * publish-atomic (CSV, stats JSON, BENCH JSON, .trc/.txt traces):
//    AtomicFileWriter stages into `<path>.partial`; commit() performs a
//    checked write + fsync + rename + parent-directory fsync, so readers
//    of `path` see the old file or the complete new one, never a torn
//    intermediate -- and a failed run throws instead of exiting 0 with
//    a truncated artifact.
//
// Every failure maps errno onto the Errc taxonomy (common/error.hpp)
// with what/where/hint; transient EINTR/EAGAIN results are retried with
// bounded backoff before becoming errors. All operations consult the
// failpoint registry (common/failpoint.hpp) at `<site_prefix>.write`,
// `<site_prefix>.sync` and `<site_prefix>.rename` sites.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cnt::io {

/// Stable errno mnemonic ("ENOSPC"), or "" for errnos outside the
/// catalog. Used for locale-independent golden error messages.
[[nodiscard]] std::string_view errno_name(int err) noexcept;

/// "ENOSPC (no space left on device)" for cataloged errnos,
/// "errno 113" otherwise.
[[nodiscard]] std::string errno_label(int err);

/// Build the taxonomy error for a failed file operation:
/// `[io] <path>: <op> failed: <ERRNO (description)> -- hint: ...`.
[[nodiscard]] Error io_error(std::string_view op, int err,
                             const std::string& path);

/// Checked POSIX file writer. Create/truncate on construction; write()
/// loops until every byte is accepted (bounded EINTR/EAGAIN retry with
/// backoff) and throws Error(Errc::kIo) on real failures, so no caller
/// can silently drop a partial write.
class DurableFile {
 public:
  /// `site_prefix` names the failpoint family: "journal" checks
  /// journal.write / journal.sync. Throws Error(kIo) on open failure.
  DurableFile(std::string path, std::string site_prefix);
  ~DurableFile();  ///< best-effort close; call close() for a checked one

  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  /// Write all of `bytes` or throw. Failpoint site `<prefix>.write`.
  void write(std::string_view bytes);

  /// fsync the descriptor. Failpoint site `<prefix>.sync`.
  void sync();

  /// Checked close; idempotent. Throws when the kernel reports a
  /// deferred write error at close time.
  void close();

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  [[nodiscard]] Error write_error(usize done, usize total, int err) const;
  void write_all(const char* data, usize n);

  std::string path_;
  std::string site_write_;
  std::string site_sync_;
  int fd_ = -1;
};

/// rename(from, to) with failpoint site `<site_prefix>.rename`, errno
/// mapping, and a best-effort fsync of the destination's parent
/// directory so the publish itself survives a power cut.
void rename_file(const std::string& from, const std::string& to,
                 const std::string& site_prefix);

/// All-or-nothing artifact writer: stream() buffers in memory, commit()
/// durably writes `<path>.partial` and atomically renames it onto
/// `path`. Destroying an uncommitted writer discards the staging file,
/// so an aborted run publishes nothing instead of a truncated artifact.
class AtomicFileWriter {
 public:
  /// Opens `<path>.partial` immediately so directory/permission errors
  /// surface before any work is done. Throws Error(kIo).
  AtomicFileWriter(std::string path, std::string site_prefix);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// In-memory buffer; formatted output goes here until commit().
  [[nodiscard]] std::ostream& stream() noexcept { return buffer_; }

  /// Append raw bytes to the buffer.
  void write(std::string_view bytes);

  /// Durable publish: checked write + fsync + close + rename +
  /// parent-dir fsync. Throws Error(kIo); the staging file is removed
  /// by the destructor when commit() does not complete. Throws
  /// std::logic_error after discard().
  void commit();

  /// Drop the staging file and forget the buffered content. Safe to
  /// call twice; the destructor calls it when commit() never happened.
  void discard() noexcept;

  [[nodiscard]] bool committed() const noexcept { return committed_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& partial_path() const noexcept {
    return partial_;
  }

 private:
  std::string path_;
  std::string partial_;
  std::string prefix_;
  std::ostringstream buffer_;
  std::optional<DurableFile> file_;
  bool committed_ = false;
  bool finished_ = false;  ///< committed or discarded
};

}  // namespace cnt::io
