// Streaming statistics accumulators used by the simulator's reporting layer.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cnt {

/// Streaming mean / variance / min / max (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] usize count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator into this one (parallel-safe combine).
  void merge(const Accumulator& other) noexcept;

 private:
  usize n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean over positive samples. Samples <= 0 are rejected by
/// precondition (assert) because geo-mean is undefined there.
class GeoMean {
 public:
  void add(double x) noexcept;
  [[nodiscard]] usize count() const noexcept { return n_; }
  [[nodiscard]] double value() const noexcept;

 private:
  usize n_ = 0;
  double log_sum_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, usize buckets);

  void add(double x) noexcept;
  [[nodiscard]] usize bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] u64 bucket(usize i) const noexcept { return counts_[i]; }
  [[nodiscard]] u64 underflow() const noexcept { return underflow_; }
  [[nodiscard]] u64 overflow() const noexcept { return overflow_; }
  [[nodiscard]] u64 total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(usize i) const noexcept;
  [[nodiscard]] double bucket_hi(usize i) const noexcept;

  /// Multi-line ASCII rendering (one row per bucket with a bar).
  [[nodiscard]] std::string render(usize bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<u64> counts_;
  u64 underflow_ = 0;
  u64 overflow_ = 0;
  u64 total_ = 0;
};

}  // namespace cnt
