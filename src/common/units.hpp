// Strong types for physical quantities used by the energy model.
//
// Energies are carried in joules internally; formatting helpers render the
// magnitudes the paper's domain uses (fJ per bit, pJ per access, nJ/uJ per
// run). A strong type keeps joules from being confused with counts or
// seconds anywhere in the accounting pipeline.
#pragma once

#include <compare>
#include <string>

namespace cnt {

class Energy {
 public:
  constexpr Energy() noexcept = default;

  [[nodiscard]] static constexpr Energy joules(double j) noexcept {
    return Energy{j};
  }
  [[nodiscard]] static constexpr Energy millijoules(double mj) noexcept {
    return Energy{mj * 1e-3};
  }
  [[nodiscard]] static constexpr Energy nanojoules(double nj) noexcept {
    return Energy{nj * 1e-9};
  }
  [[nodiscard]] static constexpr Energy picojoules(double pj) noexcept {
    return Energy{pj * 1e-12};
  }
  [[nodiscard]] static constexpr Energy femtojoules(double fj) noexcept {
    return Energy{fj * 1e-15};
  }

  [[nodiscard]] constexpr double in_joules() const noexcept { return j_; }
  [[nodiscard]] constexpr double in_nanojoules() const noexcept {
    return j_ * 1e9;
  }
  [[nodiscard]] constexpr double in_picojoules() const noexcept {
    return j_ * 1e12;
  }
  [[nodiscard]] constexpr double in_femtojoules() const noexcept {
    return j_ * 1e15;
  }

  constexpr Energy& operator+=(Energy rhs) noexcept {
    j_ += rhs.j_;
    return *this;
  }
  constexpr Energy& operator-=(Energy rhs) noexcept {
    j_ -= rhs.j_;
    return *this;
  }
  constexpr Energy& operator*=(double k) noexcept {
    j_ *= k;
    return *this;
  }

  friend constexpr Energy operator+(Energy a, Energy b) noexcept {
    return Energy{a.j_ + b.j_};
  }
  friend constexpr Energy operator-(Energy a, Energy b) noexcept {
    return Energy{a.j_ - b.j_};
  }
  friend constexpr Energy operator*(Energy e, double k) noexcept {
    return Energy{e.j_ * k};
  }
  friend constexpr Energy operator*(double k, Energy e) noexcept {
    return Energy{e.j_ * k};
  }
  friend constexpr double operator/(Energy a, Energy b) noexcept {
    return a.j_ / b.j_;
  }
  friend constexpr Energy operator/(Energy e, double k) noexcept {
    return Energy{e.j_ / k};
  }
  friend constexpr auto operator<=>(Energy a, Energy b) noexcept = default;

  /// Human-readable rendering with an auto-selected SI prefix, e.g.
  /// "3.21 pJ". `digits` controls significant fraction digits.
  [[nodiscard]] std::string to_string(int digits = 3) const;

 private:
  explicit constexpr Energy(double j) noexcept : j_(j) {}
  double j_ = 0.0;
};

/// Convenience literal-style helpers (cnt::fJ(2.5) etc.).
[[nodiscard]] constexpr Energy fJ(double v) noexcept {
  return Energy::femtojoules(v);
}
[[nodiscard]] constexpr Energy pJ(double v) noexcept {
  return Energy::picojoules(v);
}
[[nodiscard]] constexpr Energy nJ(double v) noexcept {
  return Energy::nanojoules(v);
}

}  // namespace cnt
