#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace cnt {

std::string Energy::to_string(int digits) const {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr std::array<Prefix, 7> kPrefixes{{
      {1.0, "J"},
      {1e-3, "mJ"},
      {1e-6, "uJ"},
      {1e-9, "nJ"},
      {1e-12, "pJ"},
      {1e-15, "fJ"},
      {1e-18, "aJ"},
  }};

  const double mag = std::fabs(j_);
  const Prefix* chosen = &kPrefixes.back();
  if (mag == 0.0) {
    chosen = &kPrefixes[4];  // render zero as pJ, the common scale here
  } else {
    for (const auto& p : kPrefixes) {
      if (mag >= p.scale) {
        chosen = &p;
        break;
      }
    }
  }

  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %s", digits, j_ / chosen->scale,
                chosen->name);
  return buf;
}

}  // namespace cnt
