#include "common/failpoint.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#if defined(__unix__)
#include <csignal>
#include <unistd.h>
#endif

#include "common/cancel.hpp"
#include "common/error.hpp"

namespace cnt::fp {

namespace {

enum class Kind : u8 { kEnospc, kEio, kShort, kDelay, kCrash, kHang };

struct Entry {
  std::string site;
  std::string action;  ///< as written in the spec, for armed()
  Kind kind = Kind::kEnospc;
  u64 delay_ms = 10;
  u64 trigger = 1;
  bool fired = false;
};

struct Registry {
  std::mutex mu;
  std::vector<Entry> entries;  // cnt-lint: guarded-by(mu)
  std::map<std::string, u64, std::less<>> hits;  // cnt-lint: guarded-by(mu)
  bool probe = false;  // cnt-lint: guarded-by(mu) count hits with nothing armed
  std::string report_path;  // cnt-lint: guarded-by(mu) $CNT_FAILPOINT_REPORT
  bool atexit_registered = false;  // cnt-lint: guarded-by(mu)
};

Registry& reg() {
  static Registry r;  // cnt-lint: global-ok mutex-guarded failpoint registry
  return r;
}

/// 0 = environment not read yet, 1 = disabled, 2 = armed or probing.
/// The hot path is one relaxed load of this flag.
std::atomic<int> g_state{0};  // fast-path flag, release/relaxed ordering

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void crash_now() {
  // The moral equivalent of a power cut: no destructors, no flushes
  // beyond what already reached the kernel.
  std::fflush(nullptr);
#if defined(__unix__)
  ::kill(::getpid(), SIGKILL);
#endif
  std::abort();
}

Entry parse_entry(std::string_view text) {
  const auto eq = text.find('=');
  if (eq == std::string_view::npos) {
    throw ValueError(Errc::kSyntax,
                     "failpoint entry '" + std::string(text) + "' has no '='")
        .at("CNT_FAILPOINTS")
        .hint("write site=action[:arg][@N], e.g. journal.write=error:ENOSPC@3");
  }
  Entry e;
  e.site = std::string(trim(text.substr(0, eq)));
  const auto& catalog = site_catalog();
  if (!std::binary_search(catalog.begin(), catalog.end(), e.site)) {
    const std::string near = nearest_match(e.site, catalog);
    throw ValueError(Errc::kUnknownKey,
                     "unknown failpoint site '" + e.site + "'")
        .at("CNT_FAILPOINTS")
        .hint(near.empty()
                  ? "tools/cnt-crash --list prints the site catalog"
                  : "did you mean '" + near + "'?");
  }
  std::string_view rest = trim(text.substr(eq + 1));
  const auto at_pos = rest.rfind('@');
  if (at_pos != std::string_view::npos) {
    const std::string_view digits = trim(rest.substr(at_pos + 1));
    u64 n = 0;
    bool ok = !digits.empty();
    for (const char c : digits) {
      if (c < '0' || c > '9' || n > (u64{1} << 60)) {
        ok = false;
        break;
      }
      n = n * 10 + static_cast<u64>(c - '0');
    }
    if (!ok || n == 0) {
      throw ValueError(Errc::kValue, "bad hit index '" + std::string(digits) +
                                         "' in failpoint entry '" +
                                         std::string(text) + "'")
          .at("CNT_FAILPOINTS")
          .hint("@N is a 1-based decimal evaluation index, e.g. "
                "journal.write=crash@4");
    }
    e.trigger = n;
    rest = trim(rest.substr(0, at_pos));
  }
  e.action = std::string(rest);
  if (rest == "error:ENOSPC") {
    e.kind = Kind::kEnospc;
  } else if (rest == "error:EIO") {
    e.kind = Kind::kEio;
  } else if (rest == "short-write") {
    e.kind = Kind::kShort;
  } else if (rest == "crash") {
    e.kind = Kind::kCrash;
  } else if (rest == "hang") {
    e.kind = Kind::kHang;
  } else if (rest == "delay" || rest.substr(0, 6) == "delay:") {
    e.kind = Kind::kDelay;
    if (rest.size() > 6) {
      const std::string_view digits = rest.substr(6);
      u64 ms = 0;
      bool ok = !digits.empty();
      for (const char c : digits) {
        if (c < '0' || c > '9' || ms > 60'000) {
          ok = false;
          break;
        }
        ms = ms * 10 + static_cast<u64>(c - '0');
      }
      if (!ok) {
        throw ValueError(Errc::kValue,
                         "bad delay '" + std::string(rest) + "'")
            .at("CNT_FAILPOINTS")
            .hint("write delay or delay:<milliseconds>, at most 60000");
      }
      e.delay_ms = ms;
    }
  } else {
    throw ValueError(Errc::kValue,
                     "unknown failpoint action '" + std::string(rest) + "'")
        .at("CNT_FAILPOINTS")
        .hint("actions: error:ENOSPC, error:EIO, short-write, delay[:ms], "
              "hang, crash");
  }
  return e;
}

std::vector<Entry> parse_spec(std::string_view spec) {
  std::vector<Entry> entries;
  usize start = 0;
  for (usize i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ';' || spec[i] == ',') {
      const std::string_view piece = trim(spec.substr(start, i - start));
      if (!piece.empty()) entries.push_back(parse_entry(piece));
      start = i + 1;
    }
  }
  return entries;
}

void lazy_init_from_env() {
  try {
    configure_from_env();
  } catch (const std::exception& e) {
    // A typo in CNT_FAILPOINTS must never degrade into a silently
    // clean run -- the torture harness would report false passes.
    std::fprintf(stderr, "cnt-failpoint: %s\n", e.what());
    std::exit(2);
  }
}

}  // namespace

bool enabled() noexcept {
  int s = g_state.load(std::memory_order_relaxed);
  if (s == 0) {
    lazy_init_from_env();
    s = g_state.load(std::memory_order_relaxed);
  }
  return s == 2;
}

Action evaluate(std::string_view site) noexcept {
  u64 delay_ms = 0;
  bool crash = false;
  bool hang = false;
  Action act = Action::kNone;
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    u64 h = 0;
    auto it = r.hits.find(site);
    if (it == r.hits.end()) {
      r.hits.emplace(std::string(site), u64{1});
      h = 1;
    } else {
      h = ++it->second;
    }
    for (Entry& e : r.entries) {
      if (e.fired || e.site != site || e.trigger != h) continue;
      e.fired = true;  // one-shot: recovery paths run clean
      switch (e.kind) {
        case Kind::kEnospc: act = Action::kErrorEnospc; break;
        case Kind::kEio: act = Action::kErrorEio; break;
        case Kind::kShort: act = Action::kShortWrite; break;
        case Kind::kDelay: delay_ms = e.delay_ms; break;
        case Kind::kCrash: crash = true; break;
        case Kind::kHang: hang = true; break;
      }
      break;
    }
  }
  if (crash) crash_now();
  if (hang) {
    // Park outside the registry lock (other sites keep evaluating) until
    // this thread's cancellation token fires. A token waiter wakes
    // immediately via the condition variable; with no token installed the
    // park is unbounded -- exactly the torture case the watchdog and the
    // chaos wall's wall-clock bound exist to catch.
    cancel::Token* token = cancel::current();
    if (token != nullptr) {
      while (!token->cancelled()) (void)token->wait_ms(60'000);
    } else {
      while (!cancel::poll()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    return Action::kCancelled;
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return act;
}

void configure(std::string_view spec) {
  std::vector<Entry> entries = parse_spec(spec);  // may throw; state untouched
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  r.entries = std::move(entries);
  r.hits.clear();
  g_state.store((r.entries.empty() && !r.probe) ? 1 : 2,
                std::memory_order_release);
}

void configure_from_env() {
  const char* spec = std::getenv("CNT_FAILPOINTS");
  const char* report = std::getenv("CNT_FAILPOINT_REPORT");
  std::vector<Entry> entries;
  if (spec != nullptr) entries = parse_spec(spec);
  bool need_atexit = false;
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    r.entries = std::move(entries);
    r.hits.clear();
    r.report_path = report != nullptr ? report : "";
    r.probe = !r.report_path.empty();
    need_atexit = r.probe && !r.atexit_registered;
    if (need_atexit) r.atexit_registered = true;
    g_state.store((r.entries.empty() && !r.probe) ? 1 : 2,
                  std::memory_order_release);
  }
  if (need_atexit) {
    (void)std::atexit([] { write_report(); });
  }
}

void clear() noexcept {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  r.entries.clear();
  r.hits.clear();
  r.probe = false;
  r.report_path.clear();
  g_state.store(1, std::memory_order_release);
}

std::vector<SiteState> armed() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<SiteState> out;
  out.reserve(r.entries.size());
  for (const Entry& e : r.entries) {
    const auto it = r.hits.find(e.site);
    out.push_back(SiteState{e.site, e.action, e.trigger,
                            it == r.hits.end() ? 0 : it->second});
  }
  return out;
}

u64 hit_count(std::string_view site) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.hits.find(site);
  return it == r.hits.end() ? 0 : it->second;
}

void write_report() {
  std::string path;
  std::string body;
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    if (r.report_path.empty()) return;
    path = r.report_path;
    for (const auto& [site, n] : r.hits) {  // std::map: sorted, deterministic
      body += site;
      body += ' ';
      body += std::to_string(n);
      body += '\n';
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cnt-failpoint: cannot write report %s\n",
                 path.c_str());
    return;
  }
  (void)std::fwrite(body.data(), 1, body.size(), f);
  (void)std::fclose(f);
}

const std::vector<std::string>& site_catalog() {
  // Sorted; parse_entry binary-searches it. One family per artifact
  // writer (docs/crash_consistency.md) plus the engine's job runner.
  static const std::vector<std::string> kSites = {
      "bench.rename", "bench.sync",  "bench.write",   "csv.rename",
      "csv.sync",     "csv.write",   "engine.job",    "journal.rename",
      "journal.sync", "journal.write", "stats.rename", "stats.sync",
      "stats.write",  "trace.rename", "trace.sync",   "trace.write",
      "trs.sync",     "trs.write",
  };
  return kSites;
}

const std::vector<std::string>& action_catalog() {
  // Sorted, pinned by tests/test_failpoint.cpp so the grammar, the docs
  // and the chaos wall grow in lockstep.
  static const std::vector<std::string> kActions = {
      "crash", "delay", "error:EIO", "error:ENOSPC", "hang", "short-write",
  };
  return kActions;
}

}  // namespace cnt::fp
