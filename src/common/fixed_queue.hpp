// Bounded FIFO used to model the CNT-Cache deferred-update queues.
//
// The paper takes re-encoding off the critical path with a data FIFO plus a
// synchronized index FIFO drained in idle cache slots; this container models
// a hardware FIFO with a fixed capacity and explicit overflow signalling.
#pragma once

#include <cassert>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace cnt {

template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(usize capacity) : buf_(capacity) {
    assert(capacity > 0);
  }

  [[nodiscard]] usize capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] usize size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }

  /// Enqueue; returns false (and leaves the queue unchanged) when full --
  /// the hardware analogue of a FIFO-full backpressure signal.
  [[nodiscard]] bool push(T value) {
    if (full()) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    ++size_;
    return true;
  }

  /// Dequeue the oldest element, or nullopt when empty.
  [[nodiscard]] std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return out;
  }

  /// Peek at the oldest element. Precondition: !empty().
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  usize head_ = 0;
  usize size_ = 0;
};

}  // namespace cnt
