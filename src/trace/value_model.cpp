#include "trace/value_model.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace cnt {

u64 SmallIntModel::sample(Rng& rng) {
  return rng.geometric_magnitude(max_bits_, decay_);
}

u64 SignedIntModel::sample(Rng& rng) {
  const u64 magnitude = inner_.sample(rng);
  if (rng.chance(neg_prob_)) {
    return static_cast<u64>(-static_cast<i64>(magnitude) - 1);
  }
  return magnitude;
}

u64 PointerModel::sample(Rng& rng) {
  const u64 offset = rng.uniform(span_ / 8) * 8;  // 8-byte aligned
  return base_ + offset;
}

u64 Float64Model::sample(Rng& rng) {
  const double v = mu_ + sigma_ * rng.gaussian();
  u64 bits;
  std::memcpy(&bits, &v, 8);
  return bits;
}

u64 Float32PairModel::sample(Rng& rng) {
  const float a = static_cast<float>(mu_ + sigma_ * rng.gaussian());
  const float b = static_cast<float>(mu_ + sigma_ * rng.gaussian());
  u32 abits, bbits;
  std::memcpy(&abits, &a, 4);
  std::memcpy(&bbits, &b, 4);
  return (static_cast<u64>(bbits) << 32) | abits;
}

u64 AsciiModel::sample(Rng& rng) {
  // English-like mix: ~15% spaces, ~70% lowercase, ~8% uppercase, ~7%
  // digits/punctuation. All printable, so the high bit of each byte is 0.
  u64 word = 0;
  for (int i = 0; i < 8; ++i) {
    const double r = rng.uniform01();
    u8 ch;
    if (r < 0.15) {
      ch = ' ';
    } else if (r < 0.85) {
      ch = static_cast<u8>('a' + rng.uniform(26));
    } else if (r < 0.93) {
      ch = static_cast<u8>('A' + rng.uniform(26));
    } else {
      ch = static_cast<u8>('0' + rng.uniform(10));
    }
    word |= static_cast<u64>(ch) << (8 * i);
  }
  return word;
}

u64 PixelModel::sample(Rng& rng) {
  u64 word = 0;
  for (int i = 0; i < 8; ++i) {
    const double v = mean_ + sigma_ * rng.gaussian();
    const u8 px = static_cast<u8>(std::clamp(v, 0.0, 255.0));
    word |= static_cast<u64>(px) << (8 * i);
  }
  return word;
}

u64 SparseModel::sample(Rng& rng) {
  if (!rng.chance(p_)) return 0;
  return rng.next();
}

u64 InstructionModel::sample(Rng& rng) {
  // Two RISC-V-flavoured 32-bit words: 7-bit opcode from a small set,
  // register fields in [0,32), modest immediates.
  auto insn = [&rng]() -> u32 {
    static constexpr u32 kOpcodes[] = {0x33, 0x13, 0x03, 0x23, 0x63, 0x6F};
    const u32 op = kOpcodes[rng.uniform(std::size(kOpcodes))];
    const u32 rd = static_cast<u32>(rng.uniform(32)) << 7;
    const u32 funct3 = static_cast<u32>(rng.uniform(8)) << 12;
    const u32 rs1 = static_cast<u32>(rng.uniform(32)) << 15;
    const u32 imm = static_cast<u32>(rng.geometric_magnitude(12, 0.7)) << 20;
    return op | rd | funct3 | rs1 | imm;
  };
  return (static_cast<u64>(insn()) << 32) | insn();
}

}  // namespace cnt
