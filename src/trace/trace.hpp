// Trace container and workload description.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/access.hpp"

namespace cnt {

/// Aggregate statistics over a trace, for workload characterization tables.
struct TraceStats {
  usize accesses = 0;
  usize reads = 0;
  usize writes = 0;
  usize ifetches = 0;
  usize unique_lines = 0;     ///< distinct 64 B-aligned lines touched
  double write_fraction = 0;  ///< writes / (reads + writes)
  double footprint_kib = 0;   ///< unique_lines * 64 / 1024
  double write_bit1_density = 0;  ///< mean '1'-bit fraction of write payloads
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void push(const MemAccess& a) { accesses_.push_back(a); }
  void reserve(usize n) { accesses_.reserve(n); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] usize size() const noexcept { return accesses_.size(); }
  [[nodiscard]] bool empty() const noexcept { return accesses_.empty(); }
  [[nodiscard]] const MemAccess& operator[](usize i) const noexcept {
    return accesses_[i];
  }
  [[nodiscard]] auto begin() const noexcept { return accesses_.begin(); }
  [[nodiscard]] auto end() const noexcept { return accesses_.end(); }

  /// All accesses are `valid()` per MemAccess::valid().
  [[nodiscard]] bool well_formed() const noexcept;

  [[nodiscard]] TraceStats stats() const;

 private:
  std::string name_;
  std::vector<MemAccess> accesses_;
};

/// A contiguous pre-initialized memory region (program data segment).
struct MemorySegment {
  u64 base = 0;
  std::vector<u8> bytes;
};

/// A complete benchmark program as seen by the simulator: its access trace
/// plus the initial contents of the memory it reads before writing.
struct Workload {
  std::string name;
  std::string description;
  Trace trace;
  std::vector<MemorySegment> init;
};

}  // namespace cnt
