// Trace container and workload description.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/access.hpp"
#include "common/flat_hash.hpp"
#include "common/memory_segment.hpp"
#include "common/types.hpp"

namespace cnt {

/// Aggregate statistics over a trace, for workload characterization tables.
struct TraceStats {
  usize accesses = 0;
  usize reads = 0;
  usize writes = 0;
  usize ifetches = 0;
  usize unique_lines = 0;     ///< distinct 64 B-aligned lines touched
  double write_fraction = 0;  ///< writes / (reads + writes)
  double footprint_kib = 0;   ///< unique_lines * 64 / 1024
  double write_bit1_density = 0;  ///< mean '1'-bit fraction of write payloads
};

/// One-pass TraceStats builder. Both Trace::stats() and the streaming
/// replay path (stats_of(TraceSource&)) feed this same accumulator, so a
/// materialized trace and a chunked on-disk replay of the same accesses
/// report identical statistics by construction. Memory is O(unique lines
/// touched), never O(trace length).
class TraceStatsAccumulator {
 public:
  void feed(const MemAccess& a);
  /// Snapshot of the statistics for everything fed so far.
  [[nodiscard]] TraceStats finish() const;

 private:
  TraceStats s_;
  // Unique-line tracking, two-level: one hash probe per access lands on a
  // 4 KiB page's 64-line occupancy mask instead of an entry per line. The
  // table is 64x smaller than a per-line set, so the per-access probe
  // stays cache-resident even for server-scale footprints; the count is
  // maintained incrementally (a mask iteration would be order-dependent).
  U64Map<u64> page_line_masks_;
  // One-entry probe cache: consecutive accesses overwhelmingly land on the
  // same 4 KiB page, so feed() skips the hash probe while the page repeats.
  // The cached pointer stays valid across feeds because the table only
  // rehashes when a *new* page is inserted, which refreshes the cache.
  u64 last_page_ = ~u64{0};
  u64* last_mask_ = nullptr;
  usize unique_lines_ = 0;
  usize write_bits_ = 0;
  usize write_ones_ = 0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void push(const MemAccess& a) { accesses_.push_back(a); }
  void reserve(usize n) { accesses_.reserve(n); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] usize size() const noexcept { return accesses_.size(); }
  [[nodiscard]] bool empty() const noexcept { return accesses_.empty(); }
  [[nodiscard]] const MemAccess& operator[](usize i) const noexcept {
    return accesses_[i];
  }
  [[nodiscard]] auto begin() const noexcept { return accesses_.begin(); }
  [[nodiscard]] auto end() const noexcept { return accesses_.end(); }

  /// All accesses are `valid()` per MemAccess::valid().
  [[nodiscard]] bool well_formed() const noexcept;

  [[nodiscard]] TraceStats stats() const;

 private:
  std::string name_;
  std::vector<MemAccess> accesses_;
};

/// A complete benchmark program as seen by the simulator: its access trace
/// plus the initial contents of the memory it reads before writing.
struct Workload {
  std::string name;
  std::string description;
  Trace trace;
  std::vector<MemorySegment> init;

  /// Total real bytes held by the init image (sum of segment residents).
  [[nodiscard]] usize init_resident_bytes() const noexcept;
};

}  // namespace cnt
