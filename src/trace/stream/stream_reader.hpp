// Chunked columnar trace reader: a TraceSource over a CNTTRS file that
// holds one decoded chunk at a time, so replay memory is O(chunk), never
// O(trace). Every structural defect -- bad magic, torn tail, corrupt
// chunk, count mismatch -- is refused with a structured error (what /
// where / hint), not skipped. Format: docs/trace_streaming.md.
#pragma once

#include <fstream>
#include <istream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "trace/stream/format.hpp"
#include "trace/stream/trace_source.hpp"

namespace cnt::stream {

class StreamTraceSource final : public TraceSource {
 public:
  /// Open `path`. Throws Error (kIo/kMagic/kVersion/kTruncated/...) when
  /// the file is missing or structurally unusable; on a seekable stream
  /// a torn tail is refused here, before any replay work.
  explicit StreamTraceSource(const std::string& path,
                             const ParseLimits& limits = kDefaultLimits);
  /// Read from a borrowed stream (tests, fuzzing). `name` labels errors.
  StreamTraceSource(std::istream& is, std::string name,
                    const ParseLimits& limits = kDefaultLimits);

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  usize next(std::span<MemAccess> out) override;
  void reset() override;
  /// Total records, known up front from the prevalidated footer.
  [[nodiscard]] std::optional<u64> size_hint() const override {
    return footer_records_;
  }

  [[nodiscard]] u32 chunk_capacity() const noexcept { return capacity_; }

 private:
  void prevalidate_footer();
  void read_header();
  /// Decode the next chunk into buf_. False once the footer was consumed
  /// (and verified against the running totals).
  bool refill();
  void parse_footer();
  void read_exact(char* dst, usize n, const std::string& what);

  std::ifstream file_;  ///< backing storage for the path constructor
  std::istream* is_;
  std::string name_;
  ParseLimits limits_;

  u32 capacity_ = 0;
  u64 pos_ = 0;  ///< bytes consumed; error offsets point at chunk starts
  u64 chunks_seen_ = 0;
  u64 records_seen_ = 0;
  Fnv1a64 crc_digest_;
  std::optional<u64> footer_records_;  ///< set by prevalidation
  bool done_ = false;

  std::vector<MemAccess> buf_;
  usize buf_pos_ = 0;
  std::string payload_;  ///< raw chunk payload, reused across refills
};

}  // namespace cnt::stream
