#include "trace/stream/trace_source.hpp"

#include <algorithm>

namespace cnt {

usize VectorTraceSource::next(std::span<MemAccess> out) {
  const usize n = std::min(out.size(), trace_->size() - pos_);
  for (usize i = 0; i < n; ++i) out[i] = (*trace_)[pos_ + i];
  pos_ += n;
  return n;
}

TraceStats stats_of(TraceSource& source) {
  source.reset();
  TraceStatsAccumulator acc;
  MemAccess buf[512];
  for (;;) {
    const usize n = source.next(buf);
    if (n == 0) break;
    for (usize i = 0; i < n; ++i) acc.feed(buf[i]);
  }
  source.reset();
  return acc.finish();
}

Trace materialize(TraceSource& source) {
  source.reset();
  Trace trace(source.name());
  if (const auto hint = source.size_hint()) {
    // Sizing hint only; cap the pre-reserve so a lying hint cannot OOM.
    trace.reserve(static_cast<usize>(
        std::min<u64>(*hint, (u64{64} << 20) / sizeof(MemAccess))));
  }
  MemAccess buf[512];
  for (;;) {
    const usize n = source.next(buf);
    if (n == 0) break;
    for (usize i = 0; i < n; ++i) trace.push(buf[i]);
  }
  return trace;
}

}  // namespace cnt
