// On-disk constants of the CNTTRS chunked columnar trace format, shared
// by the writer and the reader. Full layout: docs/trace_streaming.md.
//
//   header : "CNTTRS" "01" u32(chunk_capacity)
//   chunk  : 'C' u32(n) u32(payload_bytes) payload crc32
//   footer : 'F' u64(records) u64(chunks) u64(crc_digest) crc32
//
// All integers are little-endian. Each chunk's CRC-32 covers the n and
// payload_bytes fields plus the payload (the same seal discipline as
// journal lines); the footer's FNV-1a digest chains every chunk CRC so a
// dropped or reordered chunk is detected even when each survivor is
// individually intact.
#pragma once

#include "common/types.hpp"

namespace cnt::stream {

inline constexpr char kStreamMagic[6] = {'C', 'N', 'T', 'T', 'R', 'S'};
inline constexpr char kStreamVersion[2] = {'0', '1'};

inline constexpr u8 kChunkMarker = 'C';
inline constexpr u8 kFooterMarker = 'F';

/// Records per chunk. 16 Ki records decode into a ~384 KiB MemAccess
/// buffer -- the O(1) resident bound of streamed replay, sized so the
/// decode buffer plus the cache model's working set stay resident in a
/// typical few-MiB L2 instead of evicting it once per refill (measured
/// ~4% replay throughput, docs/performance.md). The reader accepts any
/// capacity up to kMaxChunkCapacity, so files written with other sizes
/// remain readable.
inline constexpr u32 kDefaultChunkCapacity = u32{1} << 14;
/// Hard cap on a file's declared capacity: bounds the decode buffer a
/// hostile header can demand. 2^20 records keep the worst-case payload
/// (~31 MiB) and decode buffer (~18 MiB) under ParseLimits'
/// max_reserve_bytes allocation cap.
inline constexpr u32 kMaxChunkCapacity = u32{1} << 20;

/// magic + version + u32 capacity.
inline constexpr usize kHeaderBytes = 12;
/// marker + records + chunks + digest + crc32.
inline constexpr usize kFooterBytes = 29;

/// Worst-case payload bytes per record: packed op nibble (rounded up to a
/// byte) + 10-byte address varint + a 20-byte single-record value run.
/// Bounds payload_bytes so a corrupt length cannot OOM the reader.
inline constexpr usize kMaxPayloadPerRecord = 31;

}  // namespace cnt::stream
