// Chunked columnar trace writer: a TraceSink that streams CNTTRS chunks
// to disk as they fill, so generators can emit multi-GB traces without
// ever materializing them. Format: docs/trace_streaming.md.
//
// The path constructor writes through the durable-I/O layer
// (common/io.hpp): every chunk is a checked write (failpoint sites
// trs.write / trs.sync, docs/crash_consistency.md), and once any write
// has failed finish() refuses to seal the file -- an aborted generation
// leaves an unsealed .trs the reader rejects with a structured error,
// never a sealed-but-short one.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/io.hpp"
#include "trace/stream/format.hpp"
#include "trace/stream/trace_source.hpp"

namespace cnt::stream {

class StreamTraceWriter final : public TraceSink {
 public:
  /// Write to a borrowed stream (tests, in-memory round trips).
  explicit StreamTraceWriter(std::ostream& os,
                             u32 chunk_capacity = kDefaultChunkCapacity);
  /// Create/truncate `path` and write to it with checked durable
  /// writes. Throws Error(kIo) on open failure.
  explicit StreamTraceWriter(const std::string& path,
                             u32 chunk_capacity = kDefaultChunkCapacity);

  StreamTraceWriter(const StreamTraceWriter&) = delete;
  StreamTraceWriter& operator=(const StreamTraceWriter&) = delete;

  /// Flushes pending records and the footer if finish() was not called;
  /// errors are swallowed here, so call finish() explicitly when you need
  /// them reported.
  ~StreamTraceWriter() override;

  void push(const MemAccess& a) override;

  /// Seal the file: flush the pending chunk, write the footer, and (in
  /// path mode) fsync. Idempotent. Throws Error(kIo) when a write
  /// failed -- including earlier push() failures: a writer that ever
  /// failed refuses to seal, so the reader refuses the artifact too.
  void finish();

  [[nodiscard]] u64 records() const noexcept { return records_; }
  [[nodiscard]] u64 chunks() const noexcept { return chunks_; }

 private:
  void write_header();
  void flush_chunk();
  void out_bytes(const std::string& bytes);

  std::optional<io::DurableFile> file_;  ///< set by the path constructor
  std::ostream* os_ = nullptr;           ///< set by the stream constructor
  std::string source_;                   ///< for error reporting
  u32 capacity_;
  std::vector<MemAccess> pending_;
  u64 records_ = 0;
  u64 chunks_ = 0;
  Fnv1a64 crc_digest_;  ///< chains every chunk CRC for the footer
  bool finished_ = false;
  bool failed_ = false;  ///< a write failed; never seal this file
};

}  // namespace cnt::stream
