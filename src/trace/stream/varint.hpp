// LEB128-style varints and the zigzag signed mapping used by the chunked
// trace format's address column. Kept header-only: these are the innermost
// loops of multi-GB replay.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"

namespace cnt::stream {

/// Append `v` as a little-endian base-128 varint (1-10 bytes).
inline void put_varint(std::string& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Map a signed delta to an unsigned varint-friendly value: small
/// magnitudes of either sign stay small (0 -> 0, -1 -> 1, 1 -> 2, ...).
[[nodiscard]] inline u64 zigzag_encode(i64 v) noexcept {
  return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}

[[nodiscard]] inline i64 zigzag_decode(u64 z) noexcept {
  return static_cast<i64>(z >> 1) ^ -static_cast<i64>(z & 1);
}

/// Bounded forward cursor over an in-memory chunk payload. All reads are
/// checked: a truncated or over-long field returns false instead of
/// walking off the buffer, so the caller can turn it into a structured
/// parse error with the right byte offset.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] usize pos() const noexcept { return pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == bytes_.size(); }

  [[nodiscard]] bool read_u8(u8& out) noexcept {
    if (pos_ >= bytes_.size()) return false;
    out = bytes_[pos_++];
    return true;
  }

  /// False on truncation or an over-long (> 10 byte) encoding.
  [[nodiscard]] bool read_varint(u64& out) noexcept {
    u64 v = 0;
    for (u32 shift = 0; shift < 70; shift += 7) {
      u8 b = 0;
      if (!read_u8(b)) return false;
      v |= static_cast<u64>(b & 0x7f) << shift;  // shift peaks at 63
      if ((b & 0x80) == 0) {
        out = v;
        return true;
      }
    }
    return false;
  }

 private:
  std::span<const u8> bytes_;
  usize pos_ = 0;
};

}  // namespace cnt::stream
