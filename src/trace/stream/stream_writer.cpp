#include "trace/stream/stream_writer.hpp"

#include <bit>
#include <cassert>

#include "common/error.hpp"
#include "trace/stream/varint.hpp"

namespace cnt::stream {

namespace {

void put_u32(std::string& out, u32 v) {
  for (usize b = 0; b < 4; ++b) {
    out.push_back(static_cast<char>(v >> (8 * b)));  // LE byte
  }
}

void put_u64(std::string& out, u64 v) {
  for (usize b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>(v >> (8 * b)));  // LE byte
  }
}

}  // namespace

StreamTraceWriter::StreamTraceWriter(std::ostream& os, u32 chunk_capacity)
    : os_(&os), source_("<stream>"), capacity_(chunk_capacity) {
  assert(capacity_ > 0 && capacity_ <= kMaxChunkCapacity);
  pending_.reserve(capacity_);
  write_header();
}

StreamTraceWriter::StreamTraceWriter(const std::string& path,
                                     u32 chunk_capacity)
    : source_(path), capacity_(chunk_capacity) {
  assert(capacity_ > 0 && capacity_ <= kMaxChunkCapacity);
  file_.emplace(path, "trs");  // throws Error(kIo) on open failure
  pending_.reserve(capacity_);
  write_header();
}

StreamTraceWriter::~StreamTraceWriter() {
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch) -- dtor must not throw
  }
}

void StreamTraceWriter::out_bytes(const std::string& bytes) {
  if (file_.has_value()) {
    try {
      file_->write(bytes);  // checked; failpoint site trs.write
    } catch (...) {
      // Whatever reached the disk is a torn prefix: refuse to seal so
      // the reader refuses the file instead of trusting a short trace.
      failed_ = true;
      throw;
    }
  } else {
    os_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

void StreamTraceWriter::write_header() {
  std::string header;
  header.append(kStreamMagic, sizeof kStreamMagic);
  header.append(kStreamVersion, sizeof kStreamVersion);
  put_u32(header, capacity_);
  out_bytes(header);
}

void StreamTraceWriter::push(const MemAccess& a) {
  assert(!finished_ && "push() after finish()");
  assert(a.valid());
  pending_.push_back(a);
  ++records_;
  if (pending_.size() == capacity_) flush_chunk();
}

void StreamTraceWriter::flush_chunk() {
  if (pending_.empty()) return;
  const usize n = pending_.size();

  // Column 1: packed op nibbles, two records per byte.
  // nibble = op | (log2(size) << 2).
  std::string payload;
  payload.reserve(n * 4);
  for (usize i = 0; i < n; i += 2) {
    const auto nib = [this](usize j) -> u8 {
      const MemAccess& a = pending_[j];
      return static_cast<u8>(              // cnt-lint: narrow-ok 4-bit value
          static_cast<u8>(a.op) |          // cnt-lint: narrow-ok 2-bit enum
          static_cast<u8>(std::countr_zero(a.size) << 2));  // cnt-lint: narrow-ok size is 1/2/4/8
    };
    u8 b = nib(i);
    if (i + 1 < n) b = static_cast<u8>(b | (nib(i + 1) << 4));  // two nibbles
    payload.push_back(static_cast<char>(b));
  }

  // Column 2: addresses. First raw, then zigzag deltas -- strided and
  // sequential workloads collapse to 1-2 bytes per access. Chunk-local,
  // so every chunk decodes independently.
  put_varint(payload, pending_[0].addr);
  for (usize i = 1; i < n; ++i) {
    const i64 delta =
        static_cast<i64>(pending_[i].addr - pending_[i - 1].addr);
    put_varint(payload, zigzag_encode(delta));
  }

  // Column 3: write values as (run_length, value) pairs over the chunk's
  // writes in order. Repeated stores of the same word (memset-like loops,
  // counter resets) collapse; singleton runs cost one extra byte.
  usize i = 0;
  while (i < n) {
    if (!pending_[i].is_write()) {
      ++i;
      continue;
    }
    const u64 v = pending_[i].value;
    u64 run = 0;
    usize j = i;
    while (j < n) {
      if (pending_[j].is_write()) {
        if (pending_[j].value != v) break;
        ++run;
      }
      ++j;
    }
    put_varint(payload, run);
    put_varint(payload, v);
    i = j;
  }

  // Seal: CRC-32 over the length fields plus the payload, the same
  // discipline as journal lines. Marker + body + CRC go out as one
  // write so a kill mid-chunk tears at most one record boundary.
  std::string body;
  body.reserve(9 + payload.size() + 4);
  body.push_back(static_cast<char>(kChunkMarker));  // cnt-lint: narrow-ok marker byte
  put_u32(body, static_cast<u32>(n));  // n <= capacity
  put_u32(body, static_cast<u32>(payload.size()));
  body += payload;
  const u32 crc = crc32(std::string_view(body).substr(1));
  put_u32(body, crc);
  out_bytes(body);

  crc_digest_.update(static_cast<u64>(crc));
  ++chunks_;
  pending_.clear();
}

void StreamTraceWriter::finish() {
  if (finished_) return;
  if (failed_) {
    throw Error(Errc::kIo,
                "streamed trace had a write failure; refusing to seal")
        .at(source_)
        .hint("the file is incomplete and the reader will refuse it; "
              "regenerate the trace");
  }
  flush_chunk();
  std::string body;
  put_u64(body, records_);
  put_u64(body, chunks_);
  put_u64(body, crc_digest_.digest());
  const u32 crc = crc32(body);
  std::string footer;
  footer.reserve(1 + body.size() + 4);
  footer.push_back(static_cast<char>(kFooterMarker));  // cnt-lint: narrow-ok marker byte
  footer += body;
  put_u32(footer, crc);
  out_bytes(footer);
  finished_ = true;  // structure is complete even if the fsync below fails
  if (file_.has_value()) {
    file_->sync();  // failpoint site trs.sync
    file_->close();
    file_.reset();
  } else {
    os_->flush();
    if (!*os_) {
      throw Error(Errc::kIo, "write failure while sealing streamed trace")
          .at(source_)
          .hint("check free disk space; the file is incomplete and will be "
                "refused by the reader");
    }
  }
}

}  // namespace cnt::stream
