// Pull-based access streams: the interface the simulator consumes instead
// of a materialized std::vector<MemAccess>, plus the push-based sink that
// generators emit into. Together they decouple "where accesses come from"
// (an in-RAM Trace, a chunked on-disk file, a generator running live)
// from "what consumes them", so multi-GB traces replay with O(chunk)
// resident memory.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "trace/trace.hpp"

namespace cnt {

/// A forward stream of memory accesses. Consumers pull batches; a batch
/// API keeps virtual-dispatch cost off the per-access path.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Fill up to out.size() accesses; returns how many were written.
  /// 0 means the stream is exhausted (and stays exhausted until reset()).
  virtual usize next(std::span<MemAccess> out) = 0;

  /// Rewind to the first access.
  virtual void reset() = 0;

  /// Total access count when known up front (vector sources; chunked
  /// files carry it in their footer). Sizing hint only -- the stream is
  /// authoritative.
  [[nodiscard]] virtual std::optional<u64> size_hint() const {
    return std::nullopt;
  }
};

/// A push-based access consumer. Generators write into a sink, so the
/// same generator body can fill an in-RAM Trace or stream chunks straight
/// to disk without ever materializing the whole trace.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void push(const MemAccess& a) = 0;
};

/// Sink that appends into an existing Trace (the in-RAM path).
class TraceCollector final : public TraceSink {
 public:
  explicit TraceCollector(Trace& out) noexcept : out_(&out) {}
  void push(const MemAccess& a) override { out_->push(a); }

 private:
  Trace* out_;
};

/// TraceSource over an in-RAM Trace. Borrows by default (the Workload
/// stays the owner); the rvalue constructor takes ownership for callers
/// that want a self-contained source.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(const Trace& trace) noexcept : trace_(&trace) {}
  explicit VectorTraceSource(Trace&& trace)
      : owned_(std::move(trace)), trace_(&*owned_) {}

  [[nodiscard]] const std::string& name() const noexcept override {
    return trace_->name();
  }
  usize next(std::span<MemAccess> out) override;
  void reset() override { pos_ = 0; }
  [[nodiscard]] std::optional<u64> size_hint() const override {
    return trace_->size();
  }

 private:
  std::optional<Trace> owned_;
  const Trace* trace_;
  usize pos_ = 0;
};

/// One-pass TraceStats over any source: rewinds, drains through a
/// TraceStatsAccumulator, rewinds again. Equals Trace::stats() on the
/// same accesses by construction (both feed the same accumulator) while
/// holding O(unique lines), never O(trace length).
[[nodiscard]] TraceStats stats_of(TraceSource& source);

/// Drain a source into an in-RAM Trace (tools, tests, small files).
/// Rewinds first, so the result is the whole stream. The inverse of
/// streaming: only use where the trace is known to fit in memory.
[[nodiscard]] Trace materialize(TraceSource& source);

}  // namespace cnt
