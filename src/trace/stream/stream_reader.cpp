#include "trace/stream/stream_reader.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "common/cancel.hpp"
#include "trace/stream/varint.hpp"

namespace cnt::stream {

namespace {

u32 get_u32(const char* p) {
  u32 v = 0;
  for (usize b = 0; b < 4; ++b) {
    v |= static_cast<u32>(static_cast<u8>(p[b]))  // cnt-lint: narrow-ok reinterpreting one byte
         << (8 * b);
  }
  return v;
}

u64 get_u64(const char* p) {
  u64 v = 0;
  for (usize b = 0; b < 8; ++b) {
    v |= static_cast<u64>(static_cast<u8>(p[b]))  // cnt-lint: narrow-ok reinterpreting one byte
         << (8 * b);
  }
  return v;
}

std::string printable(const char* bytes, usize n) {
  std::string out;
  for (usize i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(bytes[i]);
    if (std::isprint(c) != 0) {
      out += bytes[i];
    } else {
      constexpr char kHex[] = "0123456789abcdef";
      out += "\\x";
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    }
  }
  return out;
}

}  // namespace

StreamTraceSource::StreamTraceSource(const std::string& path,
                                     const ParseLimits& limits)
    : file_(path, std::ios::in | std::ios::binary),
      is_(&file_),
      name_(path),
      limits_(limits) {
  if (!file_) {
    throw Error(Errc::kIo, "cannot open streamed trace")
        .at(name_)
        .hint("check the path and permissions");
  }
  prevalidate_footer();
  read_header();
}

StreamTraceSource::StreamTraceSource(std::istream& is, std::string name,
                                     const ParseLimits& limits)
    : is_(&is), name_(std::move(name)), limits_(limits) {
  prevalidate_footer();
  read_header();
}

void StreamTraceSource::prevalidate_footer() {
  // On a seekable stream, refuse a torn tail *now* -- before hours of
  // replay -- by checking that the input ends in a sealed footer. The
  // footer also yields size_hint(). Non-seekable streams skip this; the
  // sequential read performs the same checks at end of stream.
  is_->seekg(0, std::ios::end);
  if (!*is_) {
    is_->clear();
    return;
  }
  const auto end = is_->tellg();
  const u64 total = end < 0 ? 0 : static_cast<u64>(end);
  if (total < kHeaderBytes + kFooterBytes) {
    throw Error(Errc::kTruncated,
                "file is " + std::to_string(total) +
                    " bytes; even an empty streamed trace is " +
                    std::to_string(kHeaderBytes + kFooterBytes))
        .at(name_)
        .hint("the writer was interrupted before sealing the footer; "
              "re-generate the trace");
  }
  is_->seekg(static_cast<std::streamoff>(total - kFooterBytes));
  char f[kFooterBytes];
  if (!is_->read(f, sizeof f)) {
    throw Error(Errc::kIo, "cannot read the trailing footer bytes")
        .at(name_)
        .hint("check the file is readable to its end");
  }
  const u32 crc = crc32(std::string_view(f + 1, 24));
  if (static_cast<u8>(f[0]) != kFooterMarker || crc != get_u32(f + 25)) {
    throw Error(Errc::kTruncated,
                "file does not end in a sealed footer (torn tail or "
                "trailing bytes)")
        .at_byte(name_, total - kFooterBytes)
        .hint("a crashed or interrupted writer leaves no footer seal; "
              "re-generate the trace rather than replaying a prefix");
  }
  footer_records_ = get_u64(f + 1);
  is_->seekg(0);
}

void StreamTraceSource::read_header() {
  char header[kHeaderBytes];
  read_exact(header, sizeof header, "the 12-byte header");
  if (std::memcmp(header, kStreamMagic, sizeof kStreamMagic) != 0) {
    throw Error(Errc::kMagic,
                "not a CNT streamed trace (magic is '" +
                    printable(header, sizeof kStreamMagic) +
                    "', expected 'CNTTRS')")
        .at(name_)
        .hint("chunked traces start with the 6-byte magic 'CNTTRS'; "
              "monolithic binary traces ('CNTTRC') load via load_trace()");
  }
  const char* version = header + sizeof kStreamMagic;
  if (std::memcmp(version, kStreamVersion, sizeof kStreamVersion) != 0) {
    throw Error(Errc::kVersion,
                "unsupported streamed-trace version '" +
                    printable(version, sizeof kStreamVersion) +
                    "' (this build reads version 01)")
        .at(name_)
        .hint("re-generate the trace with this build's tools");
  }
  capacity_ = get_u32(header + 8);
  if (capacity_ == 0) {
    throw Error(Errc::kRange, "header declares a zero chunk capacity")
        .at(name_)
        .hint("capacity is records per chunk and must be positive");
  }
  if (capacity_ > kMaxChunkCapacity) {
    throw Error(Errc::kLimit,
                "header declares a chunk capacity of " +
                    std::to_string(capacity_) + ", above the cap of " +
                    std::to_string(kMaxChunkCapacity))
        .at(name_)
        .hint("a corrupt capacity would otherwise size unbounded decode "
              "buffers; chunks this large also defeat streaming's O(chunk) "
              "memory bound");
  }
  pos_ = kHeaderBytes;
}

void StreamTraceSource::read_exact(char* dst, usize n,
                                   const std::string& what) {
  if (!is_->read(dst, static_cast<std::streamsize>(n))) {
    throw Error(Errc::kTruncated, "input ends inside " + what)
        .at_byte(name_, pos_)
        .hint("the file was cut short; re-copy or re-generate the trace");
  }
}

// cnt-hot per-chunk rather than per-access, but a chunk is <= 4096 records
bool StreamTraceSource::refill() {
  // Cooperative cancellation at the chunk boundary: a watchdog-cancelled
  // job parked on slow I/O (an NFS stall, a delay failpoint downstream)
  // surfaces kCancelled/kTimeout here instead of hanging the sweep.
  cancel::throw_if_cancelled("trs.refill");
  const u64 chunk_start = pos_;
  char marker = 0;
  read_exact(&marker, 1, "a chunk or footer marker");
  pos_ += 1;
  if (static_cast<u8>(marker) == kFooterMarker) {
    parse_footer();
    return false;
  }
  if (static_cast<u8>(marker) != kChunkMarker) {
    throw Error(Errc::kSyntax,
                "bad marker byte '" + printable(&marker, 1) +
                    "' where a chunk or footer was expected")
        .at_byte(name_, chunk_start)
        .hint("the file is corrupt or was concatenated with other data");
  }

  char head[8];
  read_exact(head, sizeof head, "a chunk header");
  pos_ += sizeof head;
  const u32 n = get_u32(head);
  const u32 payload_bytes = get_u32(head + 4);
  if (n == 0 || n > capacity_) {
    throw Error(Errc::kRange,
                "chunk " + std::to_string(chunks_seen_) + " declares " +
                    std::to_string(n) +
                    " records (chunk capacity is " +
                    std::to_string(capacity_) + ")")
        .at_byte(name_, chunk_start)
        .hint("chunks hold 1..capacity records; the length field is "
              "corrupt");
  }
  const u64 payload_cap = std::min<u64>(
      limits_.max_reserve_bytes, u64{n} * kMaxPayloadPerRecord + 16);
  if (payload_bytes > payload_cap) {
    throw Error(Errc::kLimit,
                "chunk " + std::to_string(chunks_seen_) + " declares " +
                    std::to_string(payload_bytes) +
                    " payload bytes, above the " +
                    std::to_string(payload_cap) + "-byte bound for " +
                    std::to_string(n) + " records")
        .at_byte(name_, chunk_start)
        .hint("a corrupt payload length would otherwise drive unbounded "
              "reads");
  }

  std::string& payload = payload_;
  // cnt-lint: hot-ok capacity is reused across chunks; grows O(log) times
  payload.resize(payload_bytes);
  read_exact(payload.data(), payload_bytes, "a chunk payload");
  pos_ += payload_bytes;
  char crc_raw[4];
  read_exact(crc_raw, sizeof crc_raw, "a chunk checksum");
  pos_ += sizeof crc_raw;

  const u32 crc = crc32_final(crc32_feed(
      crc32_feed(crc32_init(), std::string_view(head, sizeof head)), payload));
  if (crc != get_u32(crc_raw)) {
    throw Error(Errc::kChecksum,
                "chunk " + std::to_string(chunks_seen_) +
                    " checksum mismatch (stored " +
                    hex_u32(get_u32(crc_raw)) + ", computed " +
                    hex_u32(crc) + ")")
        .at_byte(name_, chunk_start)
        .hint("the chunk is corrupt; replaying around it would silently "
              "skew every energy figure, so the file is refused");
  }

  // --- decode the three columns ------------------------------------------
  buf_.assign(n, MemAccess{});
  buf_pos_ = 0;
  const std::span<const u8> bytes(
      reinterpret_cast<const u8*>(payload.data()), payload.size());
  ByteReader r(bytes);

  auto malformed = [&](const std::string& what) -> Error {
    return Error(Errc::kSyntax,
                 // cnt-lint: hot-ok error path; runs once, then file is dead
                 "chunk " + std::to_string(chunks_seen_) + ": " + what)
        .at_byte(name_, chunk_start)
        .hint("the chunk passed its CRC but does not decode; this is a "
              "writer bug or a deliberate corruption");
  };

  // Column 1: packed op nibbles.
  u8 pair = 0;
  for (usize i = 0; i < n; ++i) {
    if (i % 2 == 0 && !r.read_u8(pair)) {
      throw malformed("payload ends inside the op column");
    }
    const u8 nib = (i % 2 == 0) ? (pair & 0xf)
                                : static_cast<u8>(pair >> 4);
    const u8 op_raw = nib & 0x3;
    if (op_raw > static_cast<u8>(MemOp::kIFetch)) {
      throw Error(Errc::kRange,
                  "chunk " + std::to_string(chunks_seen_) + " record " +
                      std::to_string(i) + " has op code 3")
          .at_byte(name_, chunk_start)
          .hint("op codes are 0 (read), 1 (write) or 2 (ifetch)");
    }
    buf_[i].op = static_cast<MemOp>(op_raw);
    buf_[i].size = static_cast<u8>(1u << (nib >> 2));  // 1/2/4/8
  }

  // Column 2: addresses (first raw, then zigzag deltas).
  u64 addr = 0;
  for (usize i = 0; i < n; ++i) {
    u64 v = 0;
    if (!r.read_varint(v)) {
      throw malformed("payload ends inside the address column");
    }
    addr = i == 0 ? v : addr + static_cast<u64>(zigzag_decode(v));
    buf_[i].addr = addr;
    if (!buf_[i].valid()) {
      throw Error(Errc::kRange,
                  "chunk " + std::to_string(chunks_seen_) + " record " +
                      std::to_string(i) +
                      " is invalid (size must be 1/2/4/8 and the address "
                      "size-aligned)")
          .at_byte(name_, chunk_start)
          .hint("capture traces with the in-tree tools to get aligned "
                "power-of-two accesses");
    }
  }

  // Column 3: write values as (run_length, value) pairs.
  u64 run_left = 0;
  u64 run_value = 0;
  for (usize i = 0; i < n; ++i) {
    if (buf_[i].op != MemOp::kWrite) continue;
    if (run_left == 0) {
      u64 len = 0;
      if (!r.read_varint(len) || !r.read_varint(run_value)) {
        throw malformed("payload ends inside the value column");
      }
      if (len == 0) throw malformed("zero-length value run");
      run_left = len;
    }
    buf_[i].value = run_value;
    --run_left;
  }
  if (run_left != 0) {
    throw malformed("value run overruns the chunk's writes");
  }
  if (!r.done()) {
    throw malformed(std::to_string(payload.size() - r.pos()) +
                    " trailing payload bytes");
  }

  crc_digest_.update(static_cast<u64>(crc));
  ++chunks_seen_;
  records_seen_ += n;
  return true;
}

void StreamTraceSource::parse_footer() {
  const u64 footer_start = pos_ - 1;
  char body[24];
  read_exact(body, sizeof body, "the footer");
  pos_ += sizeof body;
  char crc_raw[4];
  read_exact(crc_raw, sizeof crc_raw, "the footer checksum");
  pos_ += sizeof crc_raw;
  const u32 crc = crc32(std::string_view(body, sizeof body));
  if (crc != get_u32(crc_raw)) {
    throw Error(Errc::kChecksum, "footer checksum mismatch")
        .at_byte(name_, footer_start)
        .hint("the footer seal is corrupt; re-copy or re-generate the "
              "trace");
  }
  const u64 records = get_u64(body);
  const u64 chunks = get_u64(body + 8);
  const u64 digest = get_u64(body + 16);
  if (records != records_seen_ || chunks != chunks_seen_) {
    throw Error(Errc::kChecksum,
                "footer declares " + std::to_string(records) +
                    " records in " + std::to_string(chunks) +
                    " chunks but the file contains " +
                    std::to_string(records_seen_) + " in " +
                    std::to_string(chunks_seen_))
        .at_byte(name_, footer_start)
        .hint("whole chunks were dropped or duplicated; the file is not "
              "the one the writer sealed");
  }
  if (digest != crc_digest_.digest()) {
    throw Error(Errc::kChecksum, "footer chunk-CRC digest mismatch")
        .at_byte(name_, footer_start)
        .hint("chunks were reordered or substituted; every chunk passes "
              "its own CRC but the sequence differs from the sealed one");
  }
  // Anything after a valid footer is not part of the trace.
  if (is_->peek() != std::char_traits<char>::eof()) {
    throw Error(Errc::kSyntax, "trailing bytes after the sealed footer")
        .at_byte(name_, pos_)
        .hint("the file was appended to after sealing; truncate it to " +
              std::to_string(pos_) + " bytes or re-generate");
  }
  done_ = true;
}

// cnt-hot
usize StreamTraceSource::next(std::span<MemAccess> out) {
  usize written = 0;
  while (written < out.size()) {
    if (buf_pos_ == buf_.size()) {
      if (done_ || !refill()) break;
    }
    const usize n = std::min(out.size() - written, buf_.size() - buf_pos_);
    std::copy_n(buf_.begin() + static_cast<std::ptrdiff_t>(buf_pos_), n,
                out.begin() + static_cast<std::ptrdiff_t>(written));
    buf_pos_ += n;
    written += n;
  }
  return written;
}

void StreamTraceSource::reset() {
  is_->clear();
  is_->seekg(0);
  if (!*is_) {
    throw Error(Errc::kIo, "cannot rewind streamed trace")
        .at(name_)
        .hint("reset() needs a seekable stream; re-open the file instead");
  }
  pos_ = 0;
  chunks_seen_ = 0;
  records_seen_ = 0;
  crc_digest_ = Fnv1a64{};
  done_ = false;
  buf_.clear();
  buf_pos_ = 0;
  read_header();
}

}  // namespace cnt::stream
