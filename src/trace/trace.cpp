#include "trace/trace.hpp"

#include <bit>
#include <cassert>

namespace cnt {

void TraceStatsAccumulator::feed(const MemAccess& a) {
  ++s_.accesses;
  switch (a.op) {
    case MemOp::kRead: ++s_.reads; break;
    case MemOp::kWrite: ++s_.writes; break;
    case MemOp::kIFetch: ++s_.ifetches; break;
  }
  // Distinct 64 B lines, grouped by 4 KiB page: line (addr / 64) maps to
  // bit (addr / 64) % 64 of the mask for page (addr / 4096).
  const u64 page = a.addr >> 12;
  if (page != last_page_ || last_mask_ == nullptr) {
    last_mask_ = &page_line_masks_.find_or_insert(page, 0);
    last_page_ = page;
  }
  const u64 bit = u64{1} << ((a.addr >> 6) & 63);
  if ((*last_mask_ & bit) == 0) {
    *last_mask_ |= bit;
    ++unique_lines_;
  }
  if (a.op == MemOp::kWrite) {
    const u64 mask = a.size == 8 ? ~0ULL : ((1ULL << (a.size * 8)) - 1);
    write_bits_ += static_cast<usize>(a.size) * 8;
    write_ones_ += static_cast<usize>(std::popcount(a.value & mask));
  }
}

TraceStats TraceStatsAccumulator::finish() const {
  TraceStats s = s_;
  s.unique_lines = unique_lines_;
  const usize rw = s.reads + s.writes;
  s.write_fraction =
      rw == 0 ? 0.0
              : static_cast<double>(s.writes) / static_cast<double>(rw);
  s.footprint_kib = static_cast<double>(s.unique_lines) * 64.0 / 1024.0;
  s.write_bit1_density =
      write_bits_ == 0
          ? 0.0
          : static_cast<double>(write_ones_) / static_cast<double>(write_bits_);
  return s;
}

bool Trace::well_formed() const noexcept {
  for (const auto& a : accesses_) {
    if (!a.valid()) return false;
  }
  return true;
}

TraceStats Trace::stats() const {
  TraceStatsAccumulator acc;
  for (const auto& a : accesses_) acc.feed(a);
  return acc.finish();
}

usize Workload::init_resident_bytes() const noexcept {
  usize total = 0;
  for (const auto& seg : init) total += seg.resident_bytes();
  return total;
}

}  // namespace cnt
