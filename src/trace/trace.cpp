#include "trace/trace.hpp"

#include <bit>
#include <unordered_set>

namespace cnt {

bool Trace::well_formed() const noexcept {
  for (const auto& a : accesses_) {
    if (!a.valid()) return false;
  }
  return true;
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.accesses = accesses_.size();
  std::unordered_set<u64> lines;
  usize write_bits = 0;
  usize write_ones = 0;
  for (const auto& a : accesses_) {
    switch (a.op) {
      case MemOp::kRead: ++s.reads; break;
      case MemOp::kWrite: ++s.writes; break;
      case MemOp::kIFetch: ++s.ifetches; break;
    }
    lines.insert(a.addr / 64);
    if (a.op == MemOp::kWrite) {
      const u64 mask = a.size == 8 ? ~0ULL : ((1ULL << (a.size * 8)) - 1);
      write_bits += static_cast<usize>(a.size) * 8;
      write_ones += static_cast<usize>(std::popcount(a.value & mask));
    }
  }
  s.unique_lines = lines.size();
  const usize rw = s.reads + s.writes;
  s.write_fraction =
      rw == 0 ? 0.0
              : static_cast<double>(s.writes) / static_cast<double>(rw);
  s.footprint_kib = static_cast<double>(s.unique_lines) * 64.0 / 1024.0;
  s.write_bit1_density =
      write_bits == 0
          ? 0.0
          : static_cast<double>(write_ones) / static_cast<double>(write_bits);
  return s;
}

}  // namespace cnt
