// Value models: generators of 64-bit data words with the bit statistics of
// real program data.
//
// The adaptive encoder's profit depends entirely on how far stored data
// sits from 50% bit-1 density and how that interacts with the line's
// read/write mix. Each model documents its approximate density so workload
// definitions can mix them deliberately.
#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace cnt {

/// Interface: one sampled 64-bit data word per call.
class ValueModel {
 public:
  virtual ~ValueModel() = default;
  [[nodiscard]] virtual u64 sample(Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Small unsigned integers with geometric magnitude (counters, lengths,
/// ids). Density ~0.05-0.15: most bits are leading zeros.
class SmallIntModel final : public ValueModel {
 public:
  explicit SmallIntModel(u32 max_bits = 32, double decay = 0.75)
      : max_bits_(max_bits), decay_(decay) {}
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "small_int"; }

 private:
  u32 max_bits_;
  double decay_;
};

/// Small *signed* integers in two's complement (deltas, offsets, loop
/// variables that go negative). Bimodal density: positive values are
/// mostly-0, negative values mostly-1 (sign extension), so a buffer of
/// them is globally ~0.5 dense while every individual word is strongly
/// biased -- the case where per-partition adaptive encoding wins and
/// whole-buffer static inversion cannot.
class SignedIntModel final : public ValueModel {
 public:
  explicit SignedIntModel(u32 max_bits = 32, double decay = 0.75,
                          double negative_prob = 0.5)
      : inner_(max_bits, decay), neg_prob_(negative_prob) {}
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "signed_int"; }

 private:
  SmallIntModel inner_;
  double neg_prob_;
};

/// Heap pointers: base | small offset, 8-byte aligned. Density ~0.2-0.3
/// (the base contributes a fixed handful of ones).
class PointerModel final : public ValueModel {
 public:
  explicit PointerModel(u64 heap_base = 0x0000'5570'0000'0000ULL,
                        u64 heap_span = 1ULL << 26)
      : base_(heap_base), span_(heap_span) {}
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "pointer"; }

 private:
  u64 base_;
  u64 span_;
};

/// IEEE-754 doubles drawn from N(mu, sigma). Density ~0.35-0.5 (exponent
/// bits cluster, mantissa is near-random).
class Float64Model final : public ValueModel {
 public:
  explicit Float64Model(double mu = 0.0, double sigma = 1.0)
      : mu_(mu), sigma_(sigma) {}
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "f64"; }

 private:
  double mu_;
  double sigma_;
};

/// Two packed IEEE-754 floats per word, N(mu, sigma) each.
class Float32PairModel final : public ValueModel {
 public:
  explicit Float32PairModel(double mu = 0.0, double sigma = 1.0)
      : mu_(mu), sigma_(sigma) {}
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "f32x2"; }

 private:
  double mu_;
  double sigma_;
};

/// Eight packed ASCII characters (printable English-like mix).
/// Density ~0.4: printable ASCII has 3-4 ones per byte.
class AsciiModel final : public ValueModel {
 public:
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "ascii"; }
};

/// Eight packed 8-bit pixels, clamped N(mean, sigma) luminance.
/// Density depends on `mean`: dark images (~40) give ~0.25.
class PixelModel final : public ValueModel {
 public:
  explicit PixelModel(double mean = 90.0, double sigma = 45.0)
      : mean_(mean), sigma_(sigma) {}
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "pixel"; }

 private:
  double mean_;
  double sigma_;
};

/// Mostly-zero words with occasional dense payloads (sparse structures,
/// zero-initialized buffers). Density ~ p_nonzero * 0.5.
class SparseModel final : public ValueModel {
 public:
  explicit SparseModel(double p_nonzero = 0.1) : p_(p_nonzero) {}
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "sparse"; }

 private:
  double p_;
};

/// Uniformly random 64-bit words (encrypted / compressed data). Density 0.5:
/// the adversarial case where whole-line encoding has nothing to gain.
class RandomModel final : public ValueModel {
 public:
  [[nodiscard]] u64 sample(Rng& rng) override { return rng.next(); }
  [[nodiscard]] std::string name() const override { return "random"; }
};

/// Bit-1-dense words (e.g. sign-extended negative integers, sentinel
/// patterns). Density ~0.85: profits from inversion on write-heavy lines.
class DenseModel final : public ValueModel {
 public:
  explicit DenseModel(u32 max_low_bits = 24, double decay = 0.7)
      : inner_(max_low_bits, decay) {}
  [[nodiscard]] u64 sample(Rng& rng) override { return ~inner_.sample(rng); }
  [[nodiscard]] std::string name() const override { return "dense"; }

 private:
  SmallIntModel inner_;
};

/// RISC-style 32-bit instruction words, two per 64-bit fetch. Opcode/reg
/// fields have structured density ~0.35-0.45.
class InstructionModel final : public ValueModel {
 public:
  [[nodiscard]] u64 sample(Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "insn"; }
};

}  // namespace cnt
