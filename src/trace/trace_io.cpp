#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cnt {

namespace {

constexpr char kMagic[8] = {'C', 'N', 'T', 'T', 'R', 'C', '0', '1'};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("trace_io: " + what);
}

MemOp parse_op(char c, usize line_no) {
  switch (c) {
    case 'R': return MemOp::kRead;
    case 'W': return MemOp::kWrite;
    case 'I': return MemOp::kIFetch;
    default: break;
  }
  fail("bad op '" + std::string(1, c) + "' at line " +
       std::to_string(line_no));
}

}  // namespace

void write_text(const Trace& trace, std::ostream& os) {
  os << "# cnt-cache trace: " << trace.name() << "\n";
  os << "# records: " << trace.size() << "\n";
  os << std::hex;
  for (const auto& a : trace) {
    os << to_string(a.op) << ' ' << a.addr << ' ' << std::dec
       << static_cast<u32>(a.size) << std::hex;
    if (a.op == MemOp::kWrite) os << ' ' << a.value;
    os << '\n';
  }
  os << std::dec;
}

Trace read_text(std::istream& is, std::string name) {
  Trace trace(std::move(name));
  std::string line;
  usize line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string op_tok;
    if (!(ls >> op_tok)) continue;
    if (op_tok.size() != 1) {
      fail("bad op token at line " + std::to_string(line_no));
    }
    MemAccess a;
    a.op = parse_op(op_tok[0], line_no);
    u32 size = 0;
    if (!(ls >> std::hex >> a.addr >> std::dec >> size)) {
      fail("bad addr/size at line " + std::to_string(line_no));
    }
    // Validate before narrowing to u8: a size like 264 would otherwise
    // truncate to 8 and pass valid() silently.
    if (size < 1 || size > 255) {
      fail("size " + std::to_string(size) + " out of range [1, 255] at line " +
           std::to_string(line_no));
    }
    a.size = static_cast<u8>(size);
    if (a.op == MemOp::kWrite) {
      if (!(ls >> std::hex >> a.value)) {
        fail("missing write value at line " + std::to_string(line_no));
      }
    }
    if (!a.valid()) {
      fail("invalid access at line " + std::to_string(line_no));
    }
    trace.push(a);
  }
  return trace;
}

void write_binary(const Trace& trace, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  const u64 count = trace.size();
  os.write(reinterpret_cast<const char*>(&count), 8);
  for (const auto& a : trace) {
    std::array<char, 18> rec;
    std::memcpy(rec.data(), &a.addr, 8);
    std::memcpy(rec.data() + 8, &a.value, 8);
    rec[16] = static_cast<char>(a.size);  // cnt-lint: narrow-ok 8-bit field
    rec[17] = static_cast<char>(a.op);    // cnt-lint: narrow-ok 8-bit field
    os.write(rec.data(), rec.size());
  }
}

Trace read_binary(std::istream& is, std::string name) {
  char magic[8];
  if (!is.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof magic) != 0) {
    fail("bad magic");
  }
  u64 count = 0;
  if (!is.read(reinterpret_cast<char*>(&count), 8)) fail("truncated header");
  Trace trace(std::move(name));
  trace.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    std::array<char, 18> rec;
    if (!is.read(rec.data(), rec.size())) {
      fail("truncated at record " + std::to_string(i));
    }
    MemAccess a;
    std::memcpy(&a.addr, rec.data(), 8);
    std::memcpy(&a.value, rec.data() + 8, 8);
    a.size = static_cast<u8>(rec[16]);  // cnt-lint: narrow-ok same width
    const auto op_raw = static_cast<u8>(rec[17]);
    if (op_raw > static_cast<u8>(MemOp::kIFetch)) {
      fail("bad op in record " + std::to_string(i));
    }
    a.op = static_cast<MemOp>(op_raw);
    if (!a.valid()) fail("invalid access in record " + std::to_string(i));
    trace.push(a);
  }
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  const bool text = path.size() >= 4 &&
                    path.compare(path.size() - 4, 4, ".txt") == 0;
  std::ofstream out(path, text ? std::ios::out
                               : std::ios::out | std::ios::binary);
  if (!out) fail("cannot open " + path + " for writing");
  if (text) {
    write_text(trace, out);
  } else {
    write_binary(trace, out);
  }
}

Trace load_trace(const std::string& path) {
  const bool text = path.size() >= 4 &&
                    path.compare(path.size() - 4, 4, ".txt") == 0;
  std::ifstream in(path, text ? std::ios::in
                              : std::ios::in | std::ios::binary);
  if (!in) fail("cannot open " + path);
  // Trace name = file basename.
  const auto slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return text ? read_text(in, std::move(name))
              : read_binary(in, std::move(name));
}

}  // namespace cnt
