#include "trace/trace_io.hpp"

#include <array>
#include <cctype>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/io.hpp"

namespace cnt {

namespace {

// Binary header: 6-byte format magic + 2-digit version. Splitting the
// two lets diagnostics distinguish "not a CNT trace at all" (kMagic)
// from "a CNT trace from an incompatible tool version" (kVersion).
constexpr char kMagicPrefix[6] = {'C', 'N', 'T', 'T', 'R', 'C'};
constexpr char kFormatVersion[2] = {'0', '1'};

std::string printable(const char* bytes, usize n) {
  std::string out;
  for (usize i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(bytes[i]);
    if (std::isprint(c) != 0) {
      out += bytes[i];
    } else {
      constexpr char kHex[] = "0123456789abcdef";
      out += "\\x";
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    }
  }
  return out;
}

MemOp parse_op(char c, const std::string& source, usize line_no) {
  switch (c) {
    case 'R': return MemOp::kRead;
    case 'W': return MemOp::kWrite;
    case 'I': return MemOp::kIFetch;
    default: break;
  }
  throw Error(Errc::kSyntax, "bad op '" + std::string(1, c) + "'")
      .at(source, line_no)
      .hint("each record starts with R (read), W (write) or I (ifetch)");
}

}  // namespace

void write_text(const Trace& trace, std::ostream& os) {
  os << "# cnt-cache trace: " << trace.name() << "\n";
  os << "# records: " << trace.size() << "\n";
  os << std::hex;
  for (const auto& a : trace) {
    os << to_string(a.op) << ' ' << a.addr << ' ' << std::dec
       << static_cast<u32>(a.size) << std::hex;
    if (a.op == MemOp::kWrite) os << ' ' << a.value;
    os << '\n';
  }
  os << std::dec;
}

Trace read_text(std::istream& is, std::string name,
                const ParseLimits& limits) {
  Trace trace(name);
  const std::string& source = name;
  std::string line;
  usize line_no = 0;
  for (;;) {
    const LineStatus status = bounded_getline(is, line, limits.max_line_bytes);
    if (status == LineStatus::kEof) break;
    ++line_no;
    if (status == LineStatus::kTooLong) {
      throw Error(Errc::kLimit,
                  "line exceeds the " +
                      std::to_string(limits.max_line_bytes) +
                      "-byte strict-parse cap")
          .at(source, line_no)
          .hint("text trace records are short; this is not a CNT text "
                "trace");
    }
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string op_tok;
    if (!(ls >> op_tok)) continue;
    if (op_tok.size() != 1) {
      throw Error(Errc::kSyntax, "bad op token '" + op_tok + "'")
          .at(source, line_no)
          .hint("each record starts with R (read), W (write) or I (ifetch)");
    }
    MemAccess a;
    a.op = parse_op(op_tok[0], source, line_no);
    u32 size = 0;
    if (!(ls >> std::hex >> a.addr >> std::dec >> size)) {
      throw Error(Errc::kSyntax, "bad addr/size fields")
          .at(source, line_no)
          .hint("records are '<op> <hex-addr> <decimal-size> [hex-value]'");
    }
    // Validate before narrowing to u8: a size like 264 would otherwise
    // truncate to 8 and pass valid() silently.
    if (size < 1 || size > 255) {
      throw Error(Errc::kRange,
                  "size " + std::to_string(size) + " out of range [1, 255]")
          .at(source, line_no)
          .hint("access sizes are bytes per access and fit in 8 bits");
    }
    a.size = static_cast<u8>(size);
    if (a.op == MemOp::kWrite) {
      if (!(ls >> std::hex >> a.value)) {
        throw Error(Errc::kSyntax, "missing write value")
            .at(source, line_no)
            .hint("W records are 'W <hex-addr> <size> <hex-value>'");
      }
    }
    if (!a.valid()) {
      throw Error(Errc::kRange, "invalid access (size must be 1/2/4/8 and "
                                "the address size-aligned)")
          .at(source, line_no)
          .hint("capture traces with the in-tree tools to get aligned "
                "power-of-two accesses");
    }
    if (trace.size() >= limits.max_records) {
      throw Error(Errc::kLimit,
                  "more than " + std::to_string(limits.max_records) +
                      " records (strict-parse cap)")
          .at(source, line_no)
          .hint("raise ParseLimits::max_records if this is a real trace");
    }
    trace.push(a);
  }
  return trace;
}

void write_binary(const Trace& trace, std::ostream& os) {
  os.write(kMagicPrefix, sizeof kMagicPrefix);
  os.write(kFormatVersion, sizeof kFormatVersion);
  const u64 count = trace.size();
  os.write(reinterpret_cast<const char*>(&count), 8);
  for (const auto& a : trace) {
    std::array<char, 18> rec;
    std::memcpy(rec.data(), &a.addr, 8);
    std::memcpy(rec.data() + 8, &a.value, 8);
    rec[16] = static_cast<char>(a.size);  // cnt-lint: narrow-ok 8-bit field
    rec[17] = static_cast<char>(a.op);    // cnt-lint: narrow-ok 8-bit field
    os.write(rec.data(), rec.size());
  }
}

Trace read_binary(std::istream& is, std::string name,
                  const ParseLimits& limits) {
  const std::string& source = name;
  char header[8];
  if (!is.read(header, sizeof header)) {
    throw Error(Errc::kTruncated, "input ends inside the 8-byte header")
        .at(source)
        .hint("the file is empty or truncated; not a usable CNT trace");
  }
  if (std::memcmp(header, kMagicPrefix, sizeof kMagicPrefix) != 0) {
    throw Error(Errc::kMagic,
                "not a CNT trace (magic is '" +
                    printable(header, sizeof kMagicPrefix) +
                    "', expected 'CNTTRC')")
        .at(source)
        .hint("binary traces start with the 6-byte magic 'CNTTRC'; for "
              "text traces use the .txt extension");
  }
  const char* version = header + sizeof kMagicPrefix;
  if (std::memcmp(version, kFormatVersion, sizeof kFormatVersion) != 0) {
    throw Error(Errc::kVersion,
                "unsupported trace format version '" +
                    printable(version, sizeof kFormatVersion) +
                    "' (this build reads version 01)")
        .at(source)
        .hint("regenerate the trace with this build's save_trace(), or "
              "convert it via the text format");
  }
  u64 count = 0;
  if (!is.read(reinterpret_cast<char*>(&count), 8)) {
    throw Error(Errc::kTruncated, "input ends inside the record count")
        .at(source)
        .hint("the header is incomplete; the file was likely cut short");
  }
  if (count > limits.max_records) {
    throw Error(Errc::kLimit,
                "header declares " + std::to_string(count) +
                    " records, above the strict-parse cap of " +
                    std::to_string(limits.max_records))
        .at(source)
        .hint("a corrupt count would otherwise drive unbounded reads; "
              "raise ParseLimits::max_records if this is a real trace");
  }
  Trace trace(std::move(name));
  // Pre-reserve from the declared count, but never more than the
  // allocation cap: a corrupted count must not OOM the process. Larger
  // traces still load; the vector then grows with actual records.
  constexpr usize kRecordMem = sizeof(MemAccess);
  trace.reserve(std::min<u64>(count, limits.max_reserve_bytes / kRecordMem));
  for (u64 i = 0; i < count; ++i) {
    std::array<char, 18> rec;
    if (!is.read(rec.data(), rec.size())) {
      throw Error(Errc::kTruncated,
                  "input ends at record " + std::to_string(i) + " of " +
                      std::to_string(count))
          .at(source)
          .hint("the file was cut short; re-capture or re-copy the trace");
    }
    MemAccess a;
    std::memcpy(&a.addr, rec.data(), 8);
    std::memcpy(&a.value, rec.data() + 8, 8);
    a.size = static_cast<u8>(rec[16]);  // cnt-lint: narrow-ok same width
    const auto op_raw = static_cast<u8>(rec[17]);
    if (op_raw > static_cast<u8>(MemOp::kIFetch)) {
      throw Error(Errc::kRange,
                  "bad op byte " + std::to_string(op_raw) + " in record " +
                      std::to_string(i))
          .at(source)
          .hint("op bytes are 0 (read), 1 (write) or 2 (ifetch)");
    }
    a.op = static_cast<MemOp>(op_raw);
    if (!a.valid()) {
      throw Error(Errc::kRange,
                  "invalid access in record " + std::to_string(i) +
                      " (size must be 1/2/4/8 and the address "
                      "size-aligned)")
          .at(source)
          .hint("capture traces with the in-tree tools to get aligned "
                "power-of-two accesses");
    }
    trace.push(a);
  }
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  const bool text = path.size() >= 4 &&
                    path.compare(path.size() - 4, 4, ".txt") == 0;
  // Publish-atomic (docs/crash_consistency.md): the trace appears at
  // `path` only after a checked write + fsync + rename, so a killed or
  // failed save never leaves a truncated readable-looking trace.
  io::AtomicFileWriter out(path, "trace");
  if (text) {
    write_text(trace, out.stream());
  } else {
    write_binary(trace, out.stream());
  }
  out.commit();
}

Trace load_trace(const std::string& path) {
  const bool text = path.size() >= 4 &&
                    path.compare(path.size() - 4, 4, ".txt") == 0;
  std::ifstream in(path, text ? std::ios::in
                              : std::ios::in | std::ios::binary);
  if (!in) {
    throw Error(Errc::kIo, "cannot open trace file")
        .at(path)
        .hint("check the path and permissions");
  }
  // Trace name = file basename.
  const auto slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return text ? read_text(in, std::move(name))
              : read_binary(in, std::move(name));
}

Result<Trace> try_load_trace(const std::string& path) {
  try {
    return load_trace(path);
  } catch (Error& e) {
    return std::move(e);
  }
}

}  // namespace cnt
