// Kernel capture: write a memory kernel as ordinary C++ against typed
// array views, and get a value-carrying Workload out -- the syscall-
// emulation front door for user-defined workloads.
//
//   TraceCapture tc("my_kernel");
//   auto a = tc.array<double>(0x1000'0000, 1024);   // zero-initialized
//   auto b = tc.array<i32>(0x2000'0000, src_values); // copied-in data
//   for (usize i = 0; i + 1 < 1024; ++i) {
//     a[i + 1] = a[i] * 0.5 + static_cast<double>(b[i]);  // loads+store
//   }
//   Workload w = tc.take();
//
// Every element read records a load (and returns the current value from
// the backing image); every assignment records a store carrying the real
// bytes. Initial contents become init segments, so the simulator's memory
// is consistent with what the kernel saw.
#pragma once

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "trace/trace.hpp"

namespace cnt {

class TraceCapture;

namespace detail {

template <typename T>
concept CapturableScalar =
    std::is_trivially_copyable_v<T> && (sizeof(T) == 1 || sizeof(T) == 2 ||
                                        sizeof(T) == 4 || sizeof(T) == 8);

template <CapturableScalar T>
u64 to_word(T v) {
  u64 w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <CapturableScalar T>
T from_word(u64 w) {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

}  // namespace detail

/// Proxy for one element access; converts on read, records on write.
template <detail::CapturableScalar T>
class ElementRef {
 public:
  ElementRef(TraceCapture& tc, u64 addr) : tc_(&tc), addr_(addr) {}

  operator T() const;              // load
  ElementRef& operator=(T value);  // store
  ElementRef& operator=(const ElementRef& other) {  // element-to-element copy
    return *this = static_cast<T>(other);
  }
  ElementRef(const ElementRef&) = default;

  ElementRef& operator+=(T v) { return *this = static_cast<T>(*this) + v; }
  ElementRef& operator-=(T v) { return *this = static_cast<T>(*this) - v; }
  ElementRef& operator*=(T v) { return *this = static_cast<T>(*this) * v; }

 private:
  TraceCapture* tc_;
  u64 addr_;
};

/// Typed window over captured memory.
template <detail::CapturableScalar T>
class ArrayView {
 public:
  ArrayView(TraceCapture& tc, u64 base, usize count)
      : tc_(&tc), base_(base), count_(count) {}

  [[nodiscard]] usize size() const noexcept { return count_; }
  [[nodiscard]] u64 base() const noexcept { return base_; }
  [[nodiscard]] u64 addr_of(usize i) const noexcept {
    return base_ + i * sizeof(T);
  }

  [[nodiscard]] ElementRef<T> operator[](usize i) {
    return ElementRef<T>(*tc_, addr_of(i));
  }
  /// Read-only access from a const view (still records the load).
  [[nodiscard]] T at(usize i) const;

 private:
  TraceCapture* tc_;
  u64 base_;
  usize count_;
};

class TraceCapture {
 public:
  explicit TraceCapture(std::string name) : name_(std::move(name)) {
    workload_.name = name_;
    workload_.trace.set_name(name_);
  }

  /// Zero-initialized array at `base`. The base must be sizeof(T)-aligned.
  template <detail::CapturableScalar T>
  ArrayView<T> array(u64 base, usize count) {
    register_segment(base, count * sizeof(T), nullptr);
    return ArrayView<T>(*this, base, count);
  }

  /// Array initialized from `init` (contents become an init segment).
  template <detail::CapturableScalar T>
  ArrayView<T> array(u64 base, const std::vector<T>& init) {
    register_segment(base, init.size() * sizeof(T),
                     reinterpret_cast<const u8*>(init.data()));
    return ArrayView<T>(*this, base, init.size());
  }

  /// Finalize: returns the workload (trace + init segments). The capture
  /// is left empty and reusable.
  [[nodiscard]] Workload take();

  [[nodiscard]] usize recorded() const noexcept {
    return workload_.trace.size();
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // -- recording primitives (used by the proxies; public so free kernels
  //    can record raw accesses too). Accesses outside every registered
  //    array throw std::out_of_range: the capture doubles as a bounds
  //    checker for the kernel under test. --
  template <detail::CapturableScalar T>
  T load(u64 addr) {
    workload_.trace.push(MemAccess::read(addr, sizeof(T)));
    u64 word = 0;
    read_image(addr, sizeof(T), reinterpret_cast<u8*>(&word));
    return detail::from_word<T>(word);
  }

  template <detail::CapturableScalar T>
  void store(u64 addr, T value) {
    const u64 word = detail::to_word(value);
    workload_.trace.push(  // cnt-lint: narrow-ok -- sizeof scalar <= 8
        MemAccess::write(addr, word, static_cast<u8>(sizeof(T))));
    write_image(addr, sizeof(T), reinterpret_cast<const u8*>(&word));
  }

 private:
  void register_segment(u64 base, usize bytes, const u8* data);
  /// Locate the current-value segment containing [addr, addr+size);
  /// throws std::out_of_range when no registered array covers it.
  [[nodiscard]] MemorySegment& segment_for(u64 addr, usize size);
  void read_image(u64 addr, usize size, u8* out);
  void write_image(u64 addr, usize size, const u8* in);

  std::string name_;
  Workload workload_;
  /// Current memory contents, same layout as workload_.init (which keeps
  /// the *initial* values).
  std::vector<MemorySegment> image_;
};

template <detail::CapturableScalar T>
ElementRef<T>::operator T() const {
  return tc_->load<T>(addr_);
}

template <detail::CapturableScalar T>
ElementRef<T>& ElementRef<T>::operator=(T value) {
  tc_->store(addr_, value);
  return *this;
}

template <detail::CapturableScalar T>
T ArrayView<T>::at(usize i) const {
  return tc_->load<T>(addr_of(i));
}

}  // namespace cnt
