// Trace serialization: a human-readable text format and a compact binary
// format, so traces can be captured once and replayed across experiments or
// exchanged with external tools.
//
// Text format (one record per line, '#' comments allowed):
//   R <hex-addr> <size>
//   W <hex-addr> <size> <hex-value>
//   I <hex-addr> <size>
//
// Binary format: "CNTTRC01" magic, u64 record count, then per record
// {u64 addr, u64 value, u8 size, u8 op} packed little-endian.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace cnt {

/// Serialize to the text format. Never fails on a well-formed trace.
void write_text(const Trace& trace, std::ostream& os);

/// Parse the text format. Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Trace read_text(std::istream& is, std::string name = "trace");

/// Serialize to the binary format.
void write_binary(const Trace& trace, std::ostream& os);

/// Parse the binary format. Throws std::runtime_error on bad magic,
/// truncation, or invalid records.
[[nodiscard]] Trace read_binary(std::istream& is, std::string name = "trace");

/// File-path conveniences; format chosen by extension (".txt" vs other).
void save_trace(const Trace& trace, const std::string& path);
[[nodiscard]] Trace load_trace(const std::string& path);

}  // namespace cnt
