// Trace serialization: a human-readable text format and a compact binary
// format, so traces can be captured once and replayed across experiments or
// exchanged with external tools.
//
// Text format (one record per line, '#' comments allowed):
//   R <hex-addr> <size>
//   W <hex-addr> <size> <hex-value>
//   I <hex-addr> <size>
//
// Binary format: 6-byte magic "CNTTRC" + 2-digit format version "01",
// u64 record count, then per record {u64 addr, u64 value, u8 size, u8 op}
// packed little-endian. (The byte stream is identical to the historical
// single "CNTTRC01" magic, so every existing trace still loads.)
//
// All readers are strict (docs/error_handling.md): failures throw
// cnt::Error carrying the source name, a line number or record index and
// a fix-it hint; a wrong magic (Errc::kMagic, "not a CNT trace") is
// distinguished from an unsupported version (Errc::kVersion); and
// ParseLimits bound line lengths, record counts and the preallocation a
// corrupted header can trigger.
#pragma once

#include <iosfwd>
#include <string>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace cnt {

/// Serialize to the text format. Never fails on a well-formed trace.
void write_text(const Trace& trace, std::ostream& os);

/// Parse the text format. Throws cnt::Error naming `name` and the line
/// number on malformed input.
[[nodiscard]] Trace read_text(std::istream& is, std::string name = "trace",
                              const ParseLimits& limits = kDefaultLimits);

/// Serialize to the binary format.
void write_binary(const Trace& trace, std::ostream& os);

/// Parse the binary format. Throws cnt::Error on bad magic, unsupported
/// version, truncation, limit violations, or invalid records.
[[nodiscard]] Trace read_binary(std::istream& is, std::string name = "trace",
                                const ParseLimits& limits = kDefaultLimits);

/// File-path conveniences; format chosen by extension (".txt" vs other).
void save_trace(const Trace& trace, const std::string& path);
[[nodiscard]] Trace load_trace(const std::string& path);

/// Non-throwing variant of load_trace for CLIs and the fuzz wall.
[[nodiscard]] Result<Trace> try_load_trace(const std::string& path);

}  // namespace cnt
