#include "trace/capture.hpp"

#include <cassert>
#include <stdexcept>

namespace cnt {

void TraceCapture::register_segment(u64 base, usize bytes, const u8* data) {
  // Overlap with an existing segment would make the init image ambiguous.
  for (const auto& seg : workload_.init) {
    const u64 seg_end = seg.base + seg.bytes.size();
    if (base < seg_end && base + bytes > seg.base) {
      throw std::invalid_argument(
          "TraceCapture: array overlaps an existing array at base 0x" +
          std::to_string(base));
    }
  }

  MemorySegment seg;
  seg.base = base;
  if (data != nullptr) {
    seg.bytes.assign(data, data + bytes);
  } else {
    seg.bytes.assign(bytes, 0);
  }
  image_.push_back(seg);  // current values start equal to initial values
  workload_.init.push_back(std::move(seg));
}

MemorySegment& TraceCapture::segment_for(u64 addr, usize size) {
  for (auto& seg : image_) {
    if (addr >= seg.base && addr + size <= seg.base + seg.bytes.size()) {
      return seg;
    }
  }
  throw std::out_of_range("TraceCapture: access at 0x" +
                          std::to_string(addr) +
                          " is outside every registered array");
}

void TraceCapture::read_image(u64 addr, usize size, u8* out) {
  const MemorySegment& seg = segment_for(addr, size);
  std::memcpy(out, seg.bytes.data() + (addr - seg.base), size);
}

void TraceCapture::write_image(u64 addr, usize size, const u8* in) {
  MemorySegment& seg = segment_for(addr, size);
  std::memcpy(seg.bytes.data() + (addr - seg.base), in, size);
}

Workload TraceCapture::take() {
  Workload out = std::move(workload_);
  workload_ = Workload{};
  workload_.name = name_;
  workload_.trace.set_name(name_);
  image_.clear();
  return out;
}

}  // namespace cnt
