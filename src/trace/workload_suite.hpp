// The named benchmark suite used by every evaluation experiment.
//
// `default_suite()` returns the ten D-Cache workloads of DESIGN.md's
// experiment index (the reconstruction of the paper's "set of benchmark
// programs"); individual workloads can also be built by name, with a size
// scale factor for quick runs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace cnt {

struct SuiteEntry {
  std::string name;
  /// Build at `scale` (1 = full size) with the generator's seed perturbed
  /// by `seed_offset` (0 = the canonical deterministic instance).
  std::function<Workload(double scale, u64 seed_offset)> build;
};

/// All ten data-side workloads, in canonical report order.
[[nodiscard]] const std::vector<SuiteEntry>& default_suite();

/// Build one suite workload by name at the given scale; `seed_offset`
/// perturbs the generator seed for statistical replication.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] Workload build_workload(const std::string& name,
                                      double scale = 1.0,
                                      u64 seed_offset = 0);

/// Names in canonical order (for CLI help and report rows).
[[nodiscard]] std::vector<std::string> suite_names();

}  // namespace cnt
