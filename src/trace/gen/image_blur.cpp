#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload image_blur(const ImageBlurParams& p) {
  Workload w;
  w.name = "image_blur";
  w.description =
      "3x3 box blur over an 8-bit image; 9 byte-reads per written pixel, "
      "dark-ish pixel statistics";
  Rng rng(p.seed);
  PixelModel pixels(90.0, 45.0);

  const u64 img = kRegionA;
  const u64 out = kRegionB;
  const usize pixel_words = p.width * p.height / 8;
  init_segment(w, img, pixel_words, pixels, rng);
  init_zero_segment(w, out, p.width * p.height);

  auto at = [width = p.width](u64 base, usize r, usize c) {
    return base + r * width + c;
  };

  w.trace.set_name(w.name);
  w.trace.reserve((p.width - 2) * (p.height - 2) * 10);
  for (usize r = 1; r + 1 < p.height; ++r) {
    for (usize c = 1; c + 1 < p.width; ++c) {
      for (usize dr = 0; dr < 3; ++dr) {
        for (usize dc = 0; dc < 3; ++dc) {
          w.trace.push(MemAccess::read(at(img, r + dr - 1, c + dc - 1), 1));
        }
      }
      const u8 px = static_cast<u8>(pixels.sample(rng) & 0xffU);
      w.trace.push(MemAccess::write(at(out, r, c), px, 1));
    }
  }
  return w;
}

}  // namespace cnt::gen
