#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload stencil2d(const StencilParams& p) {
  Workload w;
  w.name = "stencil2d";
  w.description =
      "5-point Jacobi sweeps over an f64 temperature grid; ~17% writes, "
      "high spatial reuse";
  Rng rng(p.seed);
  // Temperature field around 300K: the exponent bits are constant across
  // the grid, which concentrates the bit distribution.
  Float64Model values(300.0, 5.0);

  const u64 grid = kRegionA;
  const u64 out = kRegionB;
  init_segment(w, grid, p.rows * p.cols, values, rng);
  init_zero_segment(w, out, p.rows * p.cols * 8);

  auto at = [cols = p.cols](u64 base, usize r, usize c) {
    return base + (r * cols + c) * 8;
  };

  w.trace.set_name(w.name);
  for (usize sweep = 0; sweep < p.sweeps; ++sweep) {
    // Alternate source/destination grids between sweeps (Jacobi ping-pong).
    const u64 src = (sweep % 2 == 0) ? grid : out;
    const u64 dst = (sweep % 2 == 0) ? out : grid;
    for (usize r = 1; r + 1 < p.rows; ++r) {
      for (usize c = 1; c + 1 < p.cols; ++c) {
        w.trace.push(MemAccess::read(at(src, r, c)));
        w.trace.push(MemAccess::read(at(src, r - 1, c)));
        w.trace.push(MemAccess::read(at(src, r + 1, c)));
        w.trace.push(MemAccess::read(at(src, r, c - 1)));
        w.trace.push(MemAccess::read(at(src, r, c + 1)));
        w.trace.push(MemAccess::write(at(dst, r, c), values.sample(rng)));
      }
    }
  }
  return w;
}

}  // namespace cnt::gen
