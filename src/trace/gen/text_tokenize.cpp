#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload text_tokenize(const TextTokenizeParams& p) {
  Workload w;
  w.name = "text_tokenize";
  w.description =
      "tokenizer: sequential ASCII reads plus a small hot write-intensive "
      "counter table";
  Rng rng(p.seed);
  AsciiModel text;
  SmallIntModel counts(24, 0.75);

  const u64 buf = kRegionA;
  const u64 table = kRegionB;
  const usize words = p.text_bytes / 8;
  init_segment(w, buf, words, text, rng);
  init_zero_segment(w, table, p.table_entries * 8);

  w.trace.set_name(w.name);
  w.trace.reserve(words * 2);
  for (usize i = 0; i < words; ++i) {
    w.trace.push(MemAccess::read(buf + i * 8));
    // Roughly one token boundary per 8-byte word of English-like text:
    // bump a histogram slot (read-modify-write).
    if (rng.chance(0.85)) {
      const u64 slot = table + rng.uniform(p.table_entries) * 8;
      w.trace.push(MemAccess::read(slot));
      w.trace.push(MemAccess::write(slot, counts.sample(rng)));
    }
  }
  return w;
}

}  // namespace cnt::gen
