#include <vector>

#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload btree_lookup(const BtreeParams& p) {
  Workload w;
  w.name = "btree_lookup";
  w.description =
      "B+-tree point lookups: hot upper levels, cold leaves; key/pointer "
      "data";
  Rng rng(p.seed);
  SmallIntModel keys(40, 0.8);
  PointerModel ptrs;

  // Node layout: fanout keys (8 B each) followed by fanout+1 child
  // pointers. Levels are laid out breadth-first, each level contiguous.
  const usize node_words = p.fanout + p.fanout + 1;
  const usize node_bytes = node_words * 8;

  std::vector<u64> level_base(p.levels);
  std::vector<usize> level_nodes(p.levels);
  u64 cursor = kRegionA;
  usize nodes = 1;
  for (usize lvl = 0; lvl < p.levels; ++lvl) {
    level_base[lvl] = cursor;
    level_nodes[lvl] = nodes;
    cursor += static_cast<u64>(nodes) * node_bytes;
    nodes *= p.fanout;
  }

  // Initialize every node: sorted-ish keys then child pointers.
  for (usize lvl = 0; lvl < p.levels; ++lvl) {
    MemorySegment seg;
    seg.base = level_base[lvl];
    seg.bytes.assign(level_nodes[lvl] * node_bytes, 0);
    auto put = [&seg](usize off, u64 v) {
      for (usize b = 0; b < 8; ++b) {
        seg.bytes[off + b] = static_cast<u8>(v >> (8 * b));
      }
    };
    for (usize n = 0; n < level_nodes[lvl]; ++n) {
      u64 key = keys.sample(rng) & 0xFFFF;
      for (usize k = 0; k < p.fanout; ++k) {
        key += 1 + rng.uniform(64);
        put(n * node_bytes + k * 8, key);
      }
      for (usize c = 0; c <= p.fanout; ++c) {
        put(n * node_bytes + (p.fanout + c) * 8, ptrs.sample(rng));
      }
    }
    w.init.push_back(std::move(seg));
  }

  w.trace.set_name(w.name);
  // Each lookup: binary-probe the keys of one node per level, then read
  // the chosen child pointer.
  for (usize q = 0; q < p.lookups; ++q) {
    usize node = 0;
    for (usize lvl = 0; lvl < p.levels; ++lvl) {
      const u64 base = level_base[lvl] + node * node_bytes;
      usize lo = 0, hi = p.fanout;
      while (lo < hi) {
        const usize mid = (lo + hi) / 2;
        w.trace.push(MemAccess::read(base + mid * 8));
        if (rng.chance(0.5)) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      w.trace.push(MemAccess::read(base + (p.fanout + lo) * 8));  // child ptr
      if (lvl + 1 < p.levels) {
        node = node * p.fanout + (lo % p.fanout);
      }
    }
  }
  return w;
}

}  // namespace cnt::gen
