#include "trace/gen/server_traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

namespace {

constexpr usize kRecordBytes = 64;

// SplitMix64 finalizer: the per-address hash every init value derives
// from. Address-keyed (not stream-keyed) so the init word of any address
// is computable in O(1) without replaying a generator RNG stream -- the
// property that lets a multi-GB streamed trace and a materialized run
// share one init image built only for touched words.
u64 mix64(u64 x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

usize index_entries(const ServerTrafficParams& p) noexcept {
  return std::max<usize>(p.records / 8, p.gather_width);
}

usize heap_words(const ServerTrafficParams& p) noexcept {
  return std::max<usize>(p.records / 4, 1024);
}

/// Initial value of the 8-aligned word at `addr` (region-dependent).
u64 init_word(const ServerTrafficParams& p, u64 addr) noexcept {
  if (addr >= kRegionC) {
    // Value heap: structured server payloads -- mostly counters and short
    // lengths, some pointer-shaped words, a thin tail of dense blobs.
    const u64 h = mix64(p.seed ^ addr ^ 0xCCCC);
    switch (h & 7) {
      case 0: return h >> 16;  // dense blob payload
      case 1:
      case 2: return 0x0000'5570'0000'0000ULL | (h & 0x3ff'fff8ULL);  // ptr
      default: return h >> (40 + ((h >> 8) & 15));  // counter: 9-24 bits
    }
  }
  if (addr >= kRegionB) {
    // Index array: each entry points at an 8-aligned word of the heap.
    const u64 h = mix64(p.seed ^ addr ^ 0xBBBB);
    return kRegionC + (h % heap_words(p)) * 8;
  }
  // Record table: zipf_kv's field layout -- key, version, value pointer,
  // length, timestamp, then zero padding.
  const u64 word = (addr - kRegionA) / 8;
  const u64 h = mix64(p.seed ^ addr);
  switch (word % 8) {
    case 0: return h >> (24 + (h & 31));  // key: 9-40 significant bits
    case 1: return 1;                     // version
    case 2: return 0x0000'5570'0000'0000ULL | (h & 0x3ff'fff8ULL);  // ptr
    case 3: return h >> 48;               // length
    case 4: return h >> 30;               // timestamp
    default: return 0;                    // padding
  }
}

}  // namespace

u64 generate_server_traffic(const ServerTrafficParams& p, TraceSink& sink) {
  Rng rng(p.seed);
  SmallIntModel ints(36, 0.72);
  ZipfSampler zipf(p.records, p.zipf_s);
  const usize idx_n = index_entries(p);
  const usize phases = std::max<usize>(1, p.phases);
  u64 count = 0;
  const auto emit = [&](const MemAccess& a) {
    sink.push(a);
    ++count;
  };

  for (usize op = 0; op < p.ops; ++op) {
    // Diurnal triangle: calm at both ends of the run, peak mid-run. The
    // peak raises the PUT share (cache churn) while the hot set drifts a
    // fixed stride per phase, so no single encoding direction stays
    // optimal for a hot line across the whole trace.
    const usize ph = std::min(phases - 1, op * phases / p.ops);
    const double wave =
        phases == 1 ? 0.0
                    : 1.0 - std::abs(2.0 * static_cast<double>(ph) /
                                         static_cast<double>(phases - 1) -
                                     1.0);
    const double get_share =
        std::max(0.05, p.base_get_fraction - p.peak_put_boost * wave);
    const usize hot_offset = static_cast<usize>(
        static_cast<double>(ph) * p.hot_drift *
        static_cast<double>(p.records));

    if (rng.chance(p.scan_fraction)) {
      // Background scan: one key-word read per record over a run of
      // consecutive records (compaction / range-query traffic).
      const usize start = rng.uniform(p.records);
      for (usize k = 0; k < p.scan_run; ++k) {
        const usize r = (start + k) % p.records;
        emit(MemAccess::read(kRegionA + r * kRecordBytes));
      }
      continue;
    }
    if (rng.chance(p.gather_fraction)) {
      // Index walk + indirect gather: sequential index entries, then the
      // heap word each one points at (secondary-index lookups).
      const usize start = rng.uniform(idx_n - p.gather_width + 1);
      for (usize k = 0; k < p.gather_width; ++k) {
        const u64 idx_addr = kRegionB + (start + k) * 8;
        emit(MemAccess::read(idx_addr));
        emit(MemAccess::read(init_word(p, idx_addr)));
      }
      continue;
    }

    // Point op on the drifted Zipfian record.
    const usize rank = zipf.sample(rng);
    const usize r = (rank + hot_offset) % p.records;
    const u64 rec = kRegionA + r * kRecordBytes;
    if (rng.chance(get_share)) {
      // GET: read key, version, value pointer.
      emit(MemAccess::read(rec + 0));
      emit(MemAccess::read(rec + 8));
      emit(MemAccess::read(rec + 16));
    } else {
      // PUT: read key + version (check), write version, timestamp.
      emit(MemAccess::read(rec + 0));
      emit(MemAccess::read(rec + 8));
      emit(MemAccess::write(rec + 8, ints.sample(rng)));
      emit(MemAccess::write(rec + 32, ints.sample(rng)));
    }
  }
  return count;
}

std::vector<MemorySegment> server_traffic_init(const ServerTrafficParams& p,
                                               const Trace& trace) {
  // Every read in this family is an 8-byte word; cover exactly those
  // words with hash-derived values. Sorted + deduped, so run order is
  // deterministic and segments stay O(touched words).
  std::vector<u64> words;
  words.reserve(trace.size());
  for (const auto& a : trace) {
    if (a.op != MemOp::kWrite) words.push_back(a.addr & ~u64{7});
  }
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());

  MemorySegment table;
  table.base = kRegionA;
  table.span = p.records * kRecordBytes;
  MemorySegment index;
  index.base = kRegionB;
  index.span = index_entries(p) * 8;
  MemorySegment heap;
  heap.base = kRegionC;
  heap.span = heap_words(p) * 8;

  for (const u64 addr : words) {
    const u64 v = init_word(p, addr);
    u8 payload[8];
    for (usize b = 0; b < 8; ++b) {
      payload[b] = static_cast<u8>(v >> (8 * b));
    }
    MemorySegment& seg = addr >= kRegionC  ? heap
                         : addr >= kRegionB ? index
                                            : table;
    seg.add_run(addr - seg.base, payload);
  }

  std::vector<MemorySegment> init;
  init.push_back(std::move(table));
  init.push_back(std::move(index));
  init.push_back(std::move(heap));
  return init;
}

Workload server_traffic(const ServerTrafficParams& p) {
  Workload w;
  w.name = "server_traffic";
  w.description =
      "server-scale Zipfian KV traffic with diurnal phases, hot-set "
      "drift, scan bursts and indirect gathers";
  w.trace.set_name(w.name);
  w.trace.reserve(p.ops * 3);
  TraceCollector sink(w.trace);
  generate_server_traffic(p, sink);
  w.init = server_traffic_init(p, w.trace);
  return w;
}

const std::vector<TrafficScenario>& traffic_scenarios() {
  static const std::vector<TrafficScenario> kScenarios = [] {
    std::vector<TrafficScenario> v;
    {
      TrafficScenario s;
      s.name = "srv_steady";
      s.description = "flat load, GET-heavy point traffic";
      s.params.phases = 1;
      s.params.peak_put_boost = 0.0;
      s.params.scan_fraction = 0.02;
      s.params.gather_fraction = 0.02;
      s.params.seed = 0x5eed0101;
      v.push_back(std::move(s));
    }
    {
      TrafficScenario s;
      s.name = "srv_diurnal";
      s.description = "six-phase load curve with drifting hot set";
      s.params.hot_drift = 0.2;
      s.params.seed = 0x5eed0102;
      v.push_back(std::move(s));
    }
    {
      TrafficScenario s;
      s.name = "srv_writeburst";
      s.description = "write-heavy peak (ingest burst)";
      s.params.base_get_fraction = 0.70;
      s.params.peak_put_boost = 0.45;
      s.params.seed = 0x5eed0103;
      v.push_back(std::move(s));
    }
    {
      TrafficScenario s;
      s.name = "srv_scan";
      s.description = "heavy sequential scan traffic over the table";
      s.params.scan_fraction = 0.18;
      s.params.scan_run = 64;
      s.params.seed = 0x5eed0104;
      v.push_back(std::move(s));
    }
    {
      TrafficScenario s;
      s.name = "srv_gather";
      s.description = "index-walk gathers into the value heap";
      s.params.gather_fraction = 0.20;
      s.params.gather_width = 16;
      s.params.seed = 0x5eed0105;
      v.push_back(std::move(s));
    }
    return v;
  }();
  return kScenarios;
}

}  // namespace cnt::gen
