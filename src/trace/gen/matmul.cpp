#include <cassert>

#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload matmul(const MatmulParams& p) {
  assert(p.block > 0 && p.n % p.block == 0);
  Workload w;
  w.name = "matmul";
  w.description =
      "blocked f32 matrix multiply C += A*B with register accumulation; "
      "read-dominated with strong block reuse";
  Rng rng(p.seed);
  Float32PairModel values(0.0, 2.0);

  // f32 matrices; accesses are 4-byte.
  const u64 a_base = kRegionA;
  const u64 b_base = kRegionB;
  const u64 c_base = kRegionC;
  const usize mat_words = p.n * p.n / 2 + 1;  // f32 count / 2 per u64
  init_segment(w, a_base, mat_words, values, rng);
  init_segment(w, b_base, mat_words, values, rng);
  init_zero_segment(w, c_base, p.n * p.n * 4 + 8);

  auto idx = [n = p.n](u64 base, usize r, usize c) {
    return base + (r * n + c) * 4;
  };
  auto f32_value = [&rng, &values]() {
    return values.sample(rng) & 0xFFFF'FFFFULL;
  };

  w.trace.set_name(w.name);
  // k-blocked i-j-k loop with the C element accumulated in a register:
  // per (kb, i, j) -- load C once, stream A[i, kb..] and B[kb.., j], store
  // C once. This is how compiled matmul actually touches memory; C traffic
  // is a small read-dominated fraction, A rows and B columns dominate.
  for (usize kb = 0; kb < p.n; kb += p.block) {
    for (usize i = 0; i < p.n; ++i) {
      for (usize j = 0; j < p.n; ++j) {
        w.trace.push(MemAccess::read(idx(c_base, i, j), 4));
        for (usize k = kb; k < kb + p.block; ++k) {
          w.trace.push(MemAccess::read(idx(a_base, i, k), 4));
          w.trace.push(MemAccess::read(idx(b_base, k, j), 4));
        }
        w.trace.push(MemAccess::write(idx(c_base, i, j), f32_value(), 4));
      }
    }
  }
  return w;
}

}  // namespace cnt::gen
