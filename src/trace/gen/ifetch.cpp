#include <vector>

#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload ifetch_stream(const IFetchParams& p) {
  Workload w;
  w.name = "ifetch";
  w.description =
      "instruction-fetch stream: Zipf-popular basic blocks of sequential "
      "fetches (read-only, RISC-encoded words)";
  Rng rng(p.seed);
  InstructionModel insns;

  // Lay out basic blocks back to back in the text segment; each block is
  // 4..24 64-bit fetch words long.
  std::vector<u64> block_start(p.static_blocks);
  std::vector<usize> block_len(p.static_blocks);
  u64 pc = kTextRegion;
  for (usize b = 0; b < p.static_blocks; ++b) {
    block_start[b] = pc;
    block_len[b] = 4 + rng.uniform(21);
    pc += block_len[b] * 8;
  }
  const usize text_words = static_cast<usize>((pc - kTextRegion) / 8);
  init_segment(w, kTextRegion, text_words, insns, rng);

  ZipfSampler popularity(p.static_blocks, p.zipf_s);

  w.trace.set_name(w.name);
  w.trace.reserve(p.fetches + 32);
  usize emitted = 0;
  while (emitted < p.fetches) {
    const usize b = popularity.sample(rng);
    for (usize i = 0; i < block_len[b] && emitted < p.fetches; ++i) {
      w.trace.push(MemAccess::ifetch(block_start[b] + i * 8));
      ++emitted;
    }
  }
  return w;
}

}  // namespace cnt::gen
