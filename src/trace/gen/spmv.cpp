#include <vector>

#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload spmv(const SpmvParams& p) {
  Workload w;
  w.name = "spmv";
  w.description =
      "CSR sparse matrix-vector product; f64 values, low-density column "
      "indices, hot x vector, ~95% reads";
  Rng rng(p.seed);
  Float64Model vals(0.0, 1.0);
  Float64Model xvals(1.0, 0.5);
  SmallIntModel idxm(16, 0.8);

  const usize nnz = p.rows * p.nnz_per_row;
  const usize ncols = p.rows;  // square matrix
  const u64 val_base = kRegionA;               // f64[nnz]
  const u64 col_base = kRegionB;               // u64[nnz] column indices
  const u64 x_base = kRegionC;                 // f64[ncols]
  const u64 y_base = kRegionD;                 // f64[rows]

  init_segment(w, val_base, nnz, vals, rng);
  init_segment(w, x_base, ncols, xvals, rng);
  init_zero_segment(w, y_base, p.rows * 8);

  // Column indices: clustered around the diagonal (banded sparsity), which
  // keeps x-vector reuse realistic. Stored as real small integers so the
  // column-index loads carry low-density values.
  std::vector<u64> cols(nnz);
  {
    MemorySegment seg;
    seg.base = col_base;
    seg.bytes.assign(nnz * 8, 0);
    for (usize r = 0; r < p.rows; ++r) {
      for (usize k = 0; k < p.nnz_per_row; ++k) {
        const u64 band = idxm.sample(rng) % 256;
        const u64 col = (r + band) % ncols;
        cols[r * p.nnz_per_row + k] = col;
        const usize off = (r * p.nnz_per_row + k) * 8;
        for (usize b = 0; b < 8; ++b) {
          seg.bytes[off + b] = static_cast<u8>(col >> (8 * b));
        }
      }
    }
    w.init.push_back(std::move(seg));
  }

  w.trace.set_name(w.name);
  w.trace.reserve(p.repeats * nnz * 3 + p.repeats * p.rows * 2);
  for (usize rep = 0; rep < p.repeats; ++rep) {
    for (usize r = 0; r < p.rows; ++r) {
      for (usize k = 0; k < p.nnz_per_row; ++k) {
        const usize e = r * p.nnz_per_row + k;
        w.trace.push(MemAccess::read(col_base + e * 8));  // column index
        w.trace.push(MemAccess::read(val_base + e * 8));  // matrix value
        w.trace.push(MemAccess::read(x_base + cols[e] * 8));  // x gather
      }
      w.trace.push(MemAccess::write(y_base + r * 8, vals.sample(rng)));
    }
  }
  return w;
}

}  // namespace cnt::gen
