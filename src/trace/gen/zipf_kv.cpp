#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

namespace {

// Record layout (64 B = one cache line): [key][version][value_ptr][len]
// [ts][flags][pad][pad], all 8-byte fields. Only the first five words are
// ever nonzero, so a record's explicit init payload is 40 bytes.
constexpr usize kRecordBytes = 64;
constexpr usize kRecordInitBytes = 40;

// Sample one record's init words in the canonical draw order (key, value
// pointer, length, timestamp). Both passes below must call this so the
// RNG stream -- and therefore every trace byte -- is independent of how
// the init image is represented.
struct RecordInit {
  u64 key, ptr, len, ts;
};
RecordInit sample_record(Rng& rng, SmallIntModel& ints, PointerModel& ptrs) {
  RecordInit r;  // NOLINT(init) -- every field assigned below
  r.key = ints.sample(rng);
  r.ptr = ptrs.sample(rng);
  r.len = ints.sample(rng);
  r.ts = ints.sample(rng);
  return r;
}

}  // namespace

Workload zipf_kv(const ZipfKvParams& p) {
  Workload w;
  w.name = "zipf_kv";
  w.description =
      "key-value store under Zipfian popularity; GET-heavy, hot records, "
      "integer/pointer fields";
  Rng rng(p.seed);
  SmallIntModel ints(36, 0.72);
  PointerModel ptrs;
  const u64 table = kRegionA;

  // Pass 1: advance the RNG through every record's init draws without
  // materializing anything. The dense builder this replaces allocated
  // records * 64 zeroed bytes up front -- GiBs at server scale -- where
  // the simulator only ever observes the records the trace touches.
  const Rng init_rng = rng;
  for (usize r = 0; r < p.records; ++r) {
    (void)sample_record(rng, ints, ptrs);
  }

  ZipfSampler zipf(p.records, p.zipf_s);

  w.trace.set_name(w.name);
  w.trace.reserve(p.ops * 3);
  std::vector<bool> touched(p.records, false);
  for (usize op = 0; op < p.ops; ++op) {
    const usize r = zipf.sample(rng);
    touched[r] = true;
    const u64 rec = table + r * kRecordBytes;
    if (rng.chance(p.get_fraction)) {
      // GET: read key, version, value pointer.
      w.trace.push(MemAccess::read(rec + 0));
      w.trace.push(MemAccess::read(rec + 8));
      w.trace.push(MemAccess::read(rec + 16));
    } else {
      // PUT: read key + version (check), write version, ts, value pointer.
      w.trace.push(MemAccess::read(rec + 0));
      w.trace.push(MemAccess::read(rec + 8));
      w.trace.push(MemAccess::write(rec + 8, ints.sample(rng)));
      w.trace.push(MemAccess::write(rec + 32, ints.sample(rng)));
    }
  }

  // Pass 2: replay the init draws from the saved RNG state, storing a
  // sparse run only for touched records. Untouched records are never read
  // (each record is exactly one line), so the simulated memory image is
  // byte-identical to the dense one while the footprint is O(touched).
  MemorySegment seg;
  seg.base = table;
  seg.span = p.records * kRecordBytes;
  Rng replay = init_rng;
  SmallIntModel replay_ints(36, 0.72);
  PointerModel replay_ptrs;
  for (usize r = 0; r < p.records; ++r) {
    const RecordInit rec = sample_record(replay, replay_ints, replay_ptrs);
    if (!touched[r]) continue;
    u8 payload[kRecordInitBytes];
    const u64 words[5] = {rec.key, 1 /*version*/, rec.ptr, rec.len, rec.ts};
    for (usize wi = 0; wi < 5; ++wi) {
      for (usize b = 0; b < 8; ++b) {
        payload[wi * 8 + b] = static_cast<u8>(words[wi] >> (8 * b));
      }
    }
    seg.add_run(r * kRecordBytes, payload);
  }
  w.init.push_back(std::move(seg));
  return w;
}

}  // namespace cnt::gen
