#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload zipf_kv(const ZipfKvParams& p) {
  Workload w;
  w.name = "zipf_kv";
  w.description =
      "key-value store under Zipfian popularity; GET-heavy, hot records, "
      "integer/pointer fields";
  Rng rng(p.seed);
  SmallIntModel ints(36, 0.72);
  PointerModel ptrs;

  // Record layout (64 B = one cache line): [key][version][value_ptr][len]
  // [ts][flags][pad][pad], all 8-byte fields.
  constexpr usize kRecordBytes = 64;
  const u64 table = kRegionA;

  MemorySegment seg;
  seg.base = table;
  seg.bytes.assign(p.records * kRecordBytes, 0);
  auto put_word = [&seg](usize offset, u64 v) {
    for (usize b = 0; b < 8; ++b) {
      seg.bytes[offset + b] = static_cast<u8>(v >> (8 * b));
    }
  };
  for (usize r = 0; r < p.records; ++r) {
    const usize base = r * kRecordBytes;
    put_word(base + 0, ints.sample(rng));   // key
    put_word(base + 8, 1);                  // version
    put_word(base + 16, ptrs.sample(rng));  // value pointer
    put_word(base + 24, ints.sample(rng));  // length
    put_word(base + 32, ints.sample(rng));  // timestamp
    put_word(base + 40, 0);                 // flags
  }
  w.init.push_back(std::move(seg));

  ZipfSampler zipf(p.records, p.zipf_s);

  w.trace.set_name(w.name);
  w.trace.reserve(p.ops * 3);
  for (usize op = 0; op < p.ops; ++op) {
    const usize r = zipf.sample(rng);
    const u64 rec = table + r * kRecordBytes;
    if (rng.chance(p.get_fraction)) {
      // GET: read key, version, value pointer.
      w.trace.push(MemAccess::read(rec + 0));
      w.trace.push(MemAccess::read(rec + 8));
      w.trace.push(MemAccess::read(rec + 16));
    } else {
      // PUT: read key + version (check), write version, ts, value pointer.
      w.trace.push(MemAccess::read(rec + 0));
      w.trace.push(MemAccess::read(rec + 8));
      w.trace.push(MemAccess::write(rec + 8, ints.sample(rng)));
      w.trace.push(MemAccess::write(rec + 32, ints.sample(rng)));
    }
  }
  return w;
}

}  // namespace cnt::gen
