// Shared helpers for the workload generators (internal to src/trace/gen).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

/// Append an initial-memory segment of `words` 64-bit words at `base`,
/// sampled from `model`. Returns the segment's end address.
inline u64 init_segment(Workload& w, u64 base, usize words, ValueModel& model,
                        Rng& rng) {
  MemorySegment seg;
  seg.base = base;
  seg.bytes.resize(words * 8);
  for (usize i = 0; i < words; ++i) {
    const u64 v = model.sample(rng);
    for (usize b = 0; b < 8; ++b) {
      seg.bytes[i * 8 + b] = static_cast<u8>(v >> (8 * b));
    }
  }
  w.init.push_back(std::move(seg));
  return base + words * 8;
}

/// Append a zero-filled segment (e.g. output arrays written before read in
/// some sweeps but read-before-write in later ones).
inline u64 init_zero_segment(Workload& w, u64 base, usize bytes) {
  MemorySegment seg;
  seg.base = base;
  seg.bytes.assign(bytes, 0);
  w.init.push_back(std::move(seg));
  return base + bytes;
}

// Disjoint virtual-address regions for the generators' data segments.
inline constexpr u64 kRegionA = 0x1000'0000;
inline constexpr u64 kRegionB = 0x2000'0000;
inline constexpr u64 kRegionC = 0x3000'0000;
inline constexpr u64 kRegionD = 0x4000'0000;
inline constexpr u64 kTextRegion = 0x0040'0000;  ///< code for ifetch

}  // namespace cnt::gen
