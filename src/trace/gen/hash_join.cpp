#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload hash_join(const HashJoinParams& p) {
  Workload w;
  w.name = "hash_join";
  w.description =
      "hash join: write-intensive build phase then read-intensive probe "
      "phase over the same table (phase-change workload)";
  Rng rng(p.seed);
  SmallIntModel keys(30, 0.7);
  PointerModel ptrs;

  // Bucket layout (16 B): [key:8][tuple_ptr:8]; open addressing by key hash.
  constexpr usize kBucketBytes = 16;
  const u64 table = kRegionA;
  init_zero_segment(w, table, p.buckets * kBucketBytes);

  auto bucket_addr = [&](u64 key) {
    // Multiplicative hash, power-of-two table assumed not required.
    const u64 h = (key * 0x9E3779B97F4A7C15ULL) >> 32;
    return table + (h % p.buckets) * kBucketBytes;
  };

  w.trace.set_name(w.name);
  w.trace.reserve(p.build_tuples * 3 + p.probe_tuples * 2);

  // Build: probe the slot (read key), then write key + pointer.
  for (usize i = 0; i < p.build_tuples; ++i) {
    const u64 key = keys.sample(rng);
    const u64 slot = bucket_addr(key);
    w.trace.push(MemAccess::read(slot + 0));
    w.trace.push(MemAccess::write(slot + 0, key));
    w.trace.push(MemAccess::write(slot + 8, ptrs.sample(rng)));
  }

  // Probe: read key + pointer per lookup.
  for (usize i = 0; i < p.probe_tuples; ++i) {
    const u64 key = keys.sample(rng);
    const u64 slot = bucket_addr(key);
    w.trace.push(MemAccess::read(slot + 0));
    w.trace.push(MemAccess::read(slot + 8));
  }
  return w;
}

}  // namespace cnt::gen
