#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload stream_copy(const StreamCopyParams& p) {
  Workload w;
  w.name = "stream_copy";
  w.description =
      "sequential signed-integer record copy src->dst; streaming, 50% "
      "writes, per-word bimodal bit density (positives sparse, negatives "
      "dense)";
  Rng rng(p.seed);
  // Mostly-positive counters/sizes with a significant minority of negative
  // deltas -- the typical mix in integer record data.
  SignedIntModel values(40, 0.72, 0.3);

  const u64 src = kRegionA;
  const u64 dst = kRegionB;
  init_segment(w, src, p.elements, values, rng);
  init_zero_segment(w, dst, p.elements * 8);

  w.trace.set_name(w.name);
  w.trace.reserve(p.elements * p.passes * 2);
  for (usize pass = 0; pass < p.passes; ++pass) {
    for (usize i = 0; i < p.elements; ++i) {
      w.trace.push(MemAccess::read(src + i * 8));
      // The copied value mirrors the source distribution; we re-sample from
      // the same model rather than tracking memory contents in the
      // generator (the simulator's memory image is authoritative).
      w.trace.push(MemAccess::write(dst + i * 8, values.sample(rng)));
    }
  }
  return w;
}

Workload stream_scale(const StreamScaleParams& p) {
  Workload w;
  w.name = "stream_scale";
  w.description =
      "daxpy-style y = a*x + y over packed f32 pairs; streaming, ~33% "
      "writes, float-typical density";
  Rng rng(p.seed);
  Float32PairModel values(0.0, 4.0);

  const u64 x = kRegionA;
  const u64 y = kRegionB;
  init_segment(w, x, p.elements, values, rng);
  init_segment(w, y, p.elements, values, rng);

  w.trace.set_name(w.name);
  w.trace.reserve(p.elements * p.passes * 3);
  for (usize pass = 0; pass < p.passes; ++pass) {
    for (usize i = 0; i < p.elements; ++i) {
      w.trace.push(MemAccess::read(x + i * 8));
      w.trace.push(MemAccess::read(y + i * 8));
      w.trace.push(MemAccess::write(y + i * 8, values.sample(rng)));
    }
  }
  return w;
}

}  // namespace cnt::gen
