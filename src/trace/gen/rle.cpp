#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"

namespace cnt::gen {

Workload rle_compress(const RleParams& p) {
  Workload w;
  w.name = "rle_compress";
  w.description =
      "run-length compression: byte reads of run-structured input, "
      "(count, value) pair writes";
  Rng rng(p.seed);

  const u64 input = kRegionA;
  const u64 output = kRegionB;

  // Run-structured input: long runs of one byte value, then a switch.
  MemorySegment seg;
  seg.base = input;
  seg.bytes.resize(p.input_bytes);
  u8 current = rng.next_byte();
  for (auto& b : seg.bytes) {
    if (!rng.chance(p.run_continue_prob)) {
      current = rng.next_byte();
    }
    b = current;
  }
  const auto input_image = seg.bytes;  // replayed below for exact counts
  w.init.push_back(std::move(seg));
  init_zero_segment(w, output, p.input_bytes);  // worst-case output size

  w.trace.set_name(w.name);
  w.trace.reserve(p.input_bytes + p.input_bytes / 4);
  u64 out_pos = 0;
  usize run_len = 0;
  u8 run_val = input_image[0];
  auto flush_run = [&](u8 value, usize len) {
    while (len > 0) {
      const usize chunk = std::min<usize>(len, 255);
      w.trace.push(
          MemAccess::write(output + out_pos, chunk, 1));        // count byte
      w.trace.push(MemAccess::write(output + out_pos + 1, value, 1));
      out_pos += 2;
      len -= chunk;
    }
  };
  for (usize i = 0; i < input_image.size(); ++i) {
    w.trace.push(MemAccess::read(input + i, 1));
    if (input_image[i] == run_val) {
      ++run_len;
    } else {
      flush_run(run_val, run_len);
      run_val = input_image[i];
      run_len = 1;
    }
  }
  flush_run(run_val, run_len);
  return w;
}

}  // namespace cnt::gen
