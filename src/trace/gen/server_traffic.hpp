// Server-scale KV traffic generator family.
//
// The small-kernel suite models single-program cache behaviour; this
// family models what a server cache sees: a Zipfian key-value store with
// millions of distinct records, a diurnal load curve that modulates the
// read/write mix, a hot set that drifts between phases, and background
// scan / gather motifs threaded through the point traffic.
//
// Unlike the suite generators, the emitter is sink-based: it streams
// accesses into any TraceSink -- an in-RAM Trace for engine runs or a
// chunked on-disk writer for multi-GB traces -- without materializing
// anything. All init values derive from per-address hashes, so the init
// image of a run is computable for exactly the addresses the trace
// touches, in O(touched) memory.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/stream/trace_source.hpp"
#include "trace/trace.hpp"

namespace cnt::gen {

struct ServerTrafficParams {
  usize records = usize{1} << 18;   ///< 64 B KV records (span = 16 MiB)
  usize ops = 150000;               ///< operations (an op emits 2-4+ accesses)
  double zipf_s = 0.99;             ///< key-popularity skew
  usize phases = 6;                 ///< diurnal phases across the run
  double base_get_fraction = 0.92;  ///< GET share in the calmest phase
  double peak_put_boost = 0.30;     ///< extra PUT share at the load peak
  double hot_drift = 0.15;          ///< hot-set rotation per phase (of records)
  double scan_fraction = 0.04;      ///< ops that are sequential scan bursts
  double gather_fraction = 0.05;    ///< ops that are index-walk gathers
  usize scan_run = 32;              ///< records per scan burst
  usize gather_width = 8;           ///< index entries per gather
  u64 seed = 0x5eed0100;
};

/// Stream the access sequence into `sink` without materializing it.
/// Returns the number of accesses emitted. Deterministic in the params.
u64 generate_server_traffic(const ServerTrafficParams& p, TraceSink& sink);

/// Materialized Workload for engine/suite-style use: the trace plus a
/// sparse init image covering exactly the words the trace reads.
[[nodiscard]] Workload server_traffic(const ServerTrafficParams& p = {});

/// Build the sparse init segments for a given parameter set from the
/// trace's read addresses (the streamed path replays with the same image).
[[nodiscard]] std::vector<MemorySegment> server_traffic_init(
    const ServerTrafficParams& p, const Trace& trace);

/// The named scenario family compared in bench_fig_traffic. Each scenario
/// is a parameter preset probing one axis of server behaviour.
struct TrafficScenario {
  std::string name;
  std::string description;
  ServerTrafficParams params;
};
[[nodiscard]] const std::vector<TrafficScenario>& traffic_scenarios();

}  // namespace cnt::gen
