#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"

namespace cnt::gen {

namespace {

/// A 64-bit word with each bit independently 1 with probability `density`.
u64 biased_word(Rng& rng, double density) {
  u64 w = 0;
  for (u32 b = 0; b < 64; ++b) {
    if (rng.chance(density)) w |= 1ULL << b;
  }
  return w;
}

}  // namespace

Workload density_probe(const DensityProbeParams& p) {
  Workload w;
  w.name = "density_probe";
  w.description =
      "synthetic probe: Bernoulli(" + std::to_string(p.bit1_density) +
      ") data bits, " + std::to_string(p.write_fraction) + " write fraction";
  Rng rng(p.seed);

  const u64 base = kRegionA;
  MemorySegment seg;
  seg.base = base;
  seg.bytes.resize(p.lines * 64);
  for (usize i = 0; i < seg.bytes.size(); i += 8) {
    const u64 v = biased_word(rng, p.bit1_density);
    for (usize b = 0; b < 8; ++b) {
      seg.bytes[i + b] = static_cast<u8>(v >> (8 * b));
    }
  }
  w.init.push_back(std::move(seg));

  w.trace.set_name(w.name);
  w.trace.reserve(p.accesses);
  const usize words = p.lines * 8;
  for (usize i = 0; i < p.accesses; ++i) {
    const u64 addr = base + rng.uniform(words) * 8;
    if (rng.chance(p.write_fraction)) {
      w.trace.push(MemAccess::write(addr, biased_word(rng, p.bit1_density)));
    } else {
      w.trace.push(MemAccess::read(addr));
    }
  }
  return w;
}

}  // namespace cnt::gen
