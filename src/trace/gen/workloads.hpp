// Synthetic benchmark-program generators.
//
// The paper evaluates CNT-Cache on "a set of benchmark programs" (names not
// given in the surviving text). We model ten programs whose access patterns
// AND value statistics span the space that matters for adaptive encoding:
//
//   - bit-1 density of the data (encoding profit grows as density leaves
//     0.5),
//   - read/write mix per line (decides the preferred encoding direction),
//   - reuse per line (windows of W accesses must accumulate before the
//     predictor can act), and
//   - phase behaviour (read->write transitions exercise direction switches).
//
// Every generator is deterministic in its seed and returns a full Workload:
// the access trace plus initial memory contents for everything read before
// first write.
#pragma once

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace cnt::gen {

/// memcpy-style record copy: sequential reads of one integer array,
/// sequential writes of another. Streaming (little reuse), write fraction
/// 0.5, low bit-1 density (~0.1).
struct StreamCopyParams {
  usize elements = 4096;  ///< 8 B elements per array (32 KiB each)
  usize passes = 6;
  u64 seed = 0x5eed0001;
};
[[nodiscard]] Workload stream_copy(const StreamCopyParams& p = {});

/// daxpy-style scale: y[i] = a*x[i] + y[i] over packed f32 pairs.
/// Streaming, write fraction ~0.33, density ~0.45 (float bits).
struct StreamScaleParams {
  usize elements = 4096;
  usize passes = 6;
  u64 seed = 0x5eed0002;
};
[[nodiscard]] Workload stream_scale(const StreamScaleParams& p = {});

/// Blocked dense matrix multiply C += A*B on f32 matrices.
/// Read-dominated (~85%), strong reuse inside blocks, density ~0.42.
struct MatmulParams {
  usize n = 56;           ///< square matrix dimension
  usize block = 8;        ///< blocking factor (must divide n)
  u64 seed = 0x5eed0003;
};
[[nodiscard]] Workload matmul(const MatmulParams& p = {});

/// 5-point Jacobi stencil over an f64 grid, several sweeps.
/// Read fraction ~0.83, high spatial reuse, density ~0.4.
struct StencilParams {
  usize rows = 64;
  usize cols = 64;
  usize sweeps = 4;
  u64 seed = 0x5eed0004;
};
[[nodiscard]] Workload stencil2d(const StencilParams& p = {});

/// Linked-list traversal with occasional payload updates.
/// Read fraction ~0.95, pointer-valued loads (density ~0.25), strong
/// temporal reuse across passes.
struct PointerChaseParams {
  usize nodes = 2048;       ///< 32 B per node
  usize hops = 60000;
  double update_prob = 0.05;
  u64 seed = 0x5eed0005;
};
[[nodiscard]] Workload pointer_chase(const PointerChaseParams& p = {});

/// Key-value store under Zipfian key popularity (GET-heavy).
/// Hot lines accumulate many accesses -> the predictor's windows fire
/// often. Low-density integer/pointer records.
struct ZipfKvParams {
  usize records = 4096;   ///< 64 B records
  usize ops = 60000;
  double get_fraction = 0.75;
  double zipf_s = 0.9;
  u64 seed = 0x5eed0006;
};
[[nodiscard]] Workload zipf_kv(const ZipfKvParams& p = {});

/// Hash join: write-intensive build phase, then read-intensive probe phase
/// over the same table -- exercises encoding-direction switches.
struct HashJoinParams {
  usize buckets = 2048;   ///< 16 B per bucket
  usize build_tuples = 12000;
  usize probe_tuples = 48000;
  u64 seed = 0x5eed0007;
};
[[nodiscard]] Workload hash_join(const HashJoinParams& p = {});

/// Tokenizer: sequential reads of ASCII text (density ~0.42) plus a small,
/// very hot, write-intensive counter table (density ~0.08).
struct TextTokenizeParams {
  usize text_bytes = 96 * 1024;
  usize table_entries = 256;
  u64 seed = 0x5eed0008;
};
[[nodiscard]] Workload text_tokenize(const TextTokenizeParams& p = {});

/// 3x3 box blur over an 8-bit image: 9 reads per written pixel, dark-ish
/// pixel values (density ~0.3).
struct ImageBlurParams {
  usize width = 128;
  usize height = 128;
  u64 seed = 0x5eed0009;
};
[[nodiscard]] Workload image_blur(const ImageBlurParams& p = {});

/// Sparse matrix-vector product y = A*x in CSR form: f64 values, low-density
/// column indices, hot x vector. Read fraction ~0.95.
struct SpmvParams {
  usize rows = 2048;
  usize nnz_per_row = 12;
  usize repeats = 2;
  u64 seed = 0x5eed000a;
};
[[nodiscard]] Workload spmv(const SpmvParams& p = {});

/// B+-tree point lookups: root-to-leaf descents through 4-level nodes of
/// sorted keys + child pointers. Upper levels are hot (window-predictor
/// territory), leaves are cold; data is low-density keys and pointers.
/// Extra workload (not in the default suite).
struct BtreeParams {
  usize fanout = 16;      ///< keys per node (node = fanout keys + ptrs)
  usize levels = 4;
  usize lookups = 25000;
  u64 seed = 0x5eed000c;
};
[[nodiscard]] Workload btree_lookup(const BtreeParams& p = {});

/// Run-length compression pass: byte reads of run-structured input,
/// (count, value) pair writes to the output -- a byte-oriented mixed-
/// density streaming kernel. Extra workload (not in the default suite).
struct RleParams {
  usize input_bytes = 96 * 1024;
  double run_continue_prob = 0.92;  ///< longer runs -> better compression
  u64 seed = 0x5eed000d;
};
[[nodiscard]] Workload rle_compress(const RleParams& p = {});

/// Synthetic mechanism probe: a resident working set whose data has an
/// exact Bernoulli bit-1 density, accessed with an exact read/write mix.
/// Not part of the benchmark suite -- used by the density-sweep experiment
/// to chart where adaptive encoding wins and where it crosses over.
struct DensityProbeParams {
  double bit1_density = 0.1;    ///< P(stored bit == 1) of every data word
  double write_fraction = 0.2;  ///< P(access is a store)
  usize lines = 64;             ///< resident 64 B lines (fits any L1)
  usize accesses = 30000;
  u64 seed = 0x5eed00d5;
};
[[nodiscard]] Workload density_probe(const DensityProbeParams& p = {});

/// Instruction-fetch stream: basic blocks of sequential fetches with
/// branches between block start addresses (for the I-Cache experiment).
struct IFetchParams {
  usize static_blocks = 400;    ///< distinct basic blocks in the binary
  usize fetches = 120000;
  double zipf_s = 1.0;          ///< block popularity skew
  u64 seed = 0x5eed000b;
};
[[nodiscard]] Workload ifetch_stream(const IFetchParams& p = {});

}  // namespace cnt::gen
