#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "trace/gen/gen_util.hpp"
#include "trace/gen/workloads.hpp"
#include "trace/value_model.hpp"

namespace cnt::gen {

Workload pointer_chase(const PointerChaseParams& p) {
  Workload w;
  w.name = "pointer_chase";
  w.description =
      "linked-list traversal with occasional payload updates; ~95% reads, "
      "pointer-valued data";
  Rng rng(p.seed);
  SmallIntModel payload(32, 0.7);

  // Node layout (32 B): [next:8][payload:8][key:8][pad:8].
  constexpr usize kNodeBytes = 32;
  const u64 heap = kRegionA;

  // Random permutation cycle so the chase visits every node before
  // repeating (a classic pointer-chase construction).
  std::vector<usize> perm(p.nodes);
  std::iota(perm.begin(), perm.end(), usize{0});
  for (usize i = p.nodes - 1; i > 0; --i) {
    const usize j = rng.uniform(i + 1);
    std::swap(perm[i], perm[j]);
  }

  MemorySegment seg;
  seg.base = heap;
  seg.bytes.assign(p.nodes * kNodeBytes, 0);
  auto put_word = [&seg](usize offset, u64 v) {
    for (usize b = 0; b < 8; ++b) {
      seg.bytes[offset + b] = static_cast<u8>(v >> (8 * b));
    }
  };
  for (usize i = 0; i < p.nodes; ++i) {
    const usize cur = perm[i];
    const usize nxt = perm[(i + 1) % p.nodes];
    put_word(cur * kNodeBytes + 0, heap + nxt * kNodeBytes);
    put_word(cur * kNodeBytes + 8, payload.sample(rng));
    put_word(cur * kNodeBytes + 16, payload.sample(rng));
  }
  w.init.push_back(std::move(seg));

  w.trace.set_name(w.name);
  w.trace.reserve(p.hops * 2);
  usize node = perm[0];
  std::vector<usize> next_of(p.nodes);
  for (usize i = 0; i < p.nodes; ++i) {
    next_of[perm[i]] = perm[(i + 1) % p.nodes];
  }
  for (usize hop = 0; hop < p.hops; ++hop) {
    const u64 node_addr = heap + node * kNodeBytes;
    w.trace.push(MemAccess::read(node_addr));          // load next pointer
    w.trace.push(MemAccess::read(node_addr + 8));      // load payload
    if (rng.chance(p.update_prob)) {
      w.trace.push(MemAccess::write(node_addr + 8, payload.sample(rng)));
    }
    node = next_of[node];
  }
  return w;
}

}  // namespace cnt::gen
