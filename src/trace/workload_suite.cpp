#include "trace/workload_suite.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/gen/server_traffic.hpp"
#include "trace/gen/workloads.hpp"

namespace cnt {

namespace {

usize scaled(usize v, double scale, usize floor_v = 1) {
  const double s = std::max(0.01, scale);
  return std::max(floor_v,
                  static_cast<usize>(std::llround(static_cast<double>(v) * s)));
}

// Seed perturbation for statistical replication: offset 0 keeps the
// canonical instance; other offsets decorrelate via a splitmix-style mix.
u64 mix_seed(u64 base, u64 offset) {
  if (offset == 0) return base;
  u64 z = base + offset * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

}  // namespace

const std::vector<SuiteEntry>& default_suite() {
  static const std::vector<SuiteEntry> kSuite = {
      {"stream_copy",
       [](double s, u64 seed) {
         gen::StreamCopyParams p;
         p.passes = scaled(p.passes, s, 1);
         p.seed = mix_seed(p.seed, seed);
         return gen::stream_copy(p);
       }},
      {"stream_scale",
       [](double s, u64 seed) {
         gen::StreamScaleParams p;
         p.passes = scaled(p.passes, s, 1);
         p.seed = mix_seed(p.seed, seed);
         return gen::stream_scale(p);
       }},
      {"matmul",
       [](double s, u64 seed) {
         gen::MatmulParams p;
         if (s < 1.0) {
           p.n = 32;
           p.block = 8;
         }
         p.seed = mix_seed(p.seed, seed);
         return gen::matmul(p);
       }},
      {"stencil2d",
       [](double s, u64 seed) {
         gen::StencilParams p;
         p.sweeps = scaled(p.sweeps, s, 1);
         p.seed = mix_seed(p.seed, seed);
         return gen::stencil2d(p);
       }},
      {"pointer_chase",
       [](double s, u64 seed) {
         gen::PointerChaseParams p;
         p.hops = scaled(p.hops, s, 500);
         p.seed = mix_seed(p.seed, seed);
         return gen::pointer_chase(p);
       }},
      {"zipf_kv",
       [](double s, u64 seed) {
         gen::ZipfKvParams p;
         p.ops = scaled(p.ops, s, 500);
         p.seed = mix_seed(p.seed, seed);
         return gen::zipf_kv(p);
       }},
      {"hash_join",
       [](double s, u64 seed) {
         gen::HashJoinParams p;
         p.build_tuples = scaled(p.build_tuples, s, 200);
         p.probe_tuples = scaled(p.probe_tuples, s, 800);
         p.seed = mix_seed(p.seed, seed);
         return gen::hash_join(p);
       }},
      {"text_tokenize",
       [](double s, u64 seed) {
         gen::TextTokenizeParams p;
         p.text_bytes = scaled(p.text_bytes, s, 4096);
         p.seed = mix_seed(p.seed, seed);
         return gen::text_tokenize(p);
       }},
      {"image_blur",
       [](double s, u64 seed) {
         gen::ImageBlurParams p;
         if (s < 1.0) {
           p.width = 64;
           p.height = 64;
         }
         p.seed = mix_seed(p.seed, seed);
         return gen::image_blur(p);
       }},
      {"spmv",
       [](double s, u64 seed) {
         gen::SpmvParams p;
         p.repeats = scaled(p.repeats, s, 1);
         p.seed = mix_seed(p.seed, seed);
         return gen::spmv(p);
       }},
  };
  return kSuite;
}

Workload build_workload(const std::string& name, double scale,
                        u64 seed_offset) {
  for (const auto& e : default_suite()) {
    if (e.name == name) return e.build(scale, seed_offset);
  }
  if (name == "ifetch") {
    gen::IFetchParams p;
    p.fetches = scaled(p.fetches, scale, 1000);
    p.seed = mix_seed(p.seed, seed_offset);
    return gen::ifetch_stream(p);
  }
  if (name == "btree_lookup") {
    gen::BtreeParams p;
    p.lookups = scaled(p.lookups, scale, 200);
    p.seed = mix_seed(p.seed, seed_offset);
    return gen::btree_lookup(p);
  }
  if (name == "rle_compress") {
    gen::RleParams p;
    p.input_bytes = scaled(p.input_bytes, scale, 4096);
    p.seed = mix_seed(p.seed, seed_offset);
    return gen::rle_compress(p);
  }
  if (name == "server_traffic") {
    gen::ServerTrafficParams p;
    p.ops = scaled(p.ops, scale, 2000);
    p.seed = mix_seed(p.seed, seed_offset);
    return gen::server_traffic(p);
  }
  // Server-traffic scenario presets (srv_*): extra workloads, not part of
  // the ten-entry default suite.
  for (const auto& sc : gen::traffic_scenarios()) {
    if (sc.name != name) continue;
    gen::ServerTrafficParams p = sc.params;
    p.ops = scaled(p.ops, scale, 2000);
    p.seed = mix_seed(p.seed, seed_offset);
    Workload w = gen::server_traffic(p);
    w.name = sc.name;
    w.description = sc.description;
    w.trace.set_name(sc.name);
    return w;
  }
  throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  names.reserve(default_suite().size());
  for (const auto& e : default_suite()) names.push_back(e.name);
  return names;
}

}  // namespace cnt
