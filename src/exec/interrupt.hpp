// Cooperative interrupt flag for graceful sweep shutdown.
//
// install_signal_handlers() routes SIGINT/SIGTERM to a process-wide
// atomic flag. The engine polls the flag between jobs: on the first
// signal it stops dequeuing new work, drains jobs already in flight, and
// flushes the journal before unwinding (SweepInterrupted), so a Ctrl-C'd
// sweep loses nothing it finished and can be relaunched with --resume. A
// second signal restores the default disposition and re-raises, so an
// impatient operator can still hard-kill a wedged run.
#pragma once

namespace cnt::exec {

/// Install the SIGINT/SIGTERM -> interrupt-flag handlers. Idempotent;
/// called by the engine when EngineOptions::handle_signals is set.
void install_signal_handlers() noexcept;

/// True once a signal arrived (or request_interrupt() was called).
[[nodiscard]] bool interrupt_requested() noexcept;

/// Set the flag programmatically (tests, embedding applications).
void request_interrupt() noexcept;

/// Clear the flag (tests; also lets a driver run several sweeps after a
/// handled interrupt).
void reset_interrupt() noexcept;

}  // namespace cnt::exec
