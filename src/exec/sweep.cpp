#include "exec/sweep.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "trace/workload_suite.hpp"

namespace cnt::exec {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

SweepSpec& SweepSpec::base(const SimConfig& cfg) {
  base_ = cfg;
  return *this;
}

SweepSpec& SweepSpec::scale(double s) {
  if (s <= 0.0) throw std::invalid_argument("SweepSpec: scale must be > 0");
  scale_ = s;
  return *this;
}

SweepSpec& SweepSpec::workload(const std::string& name) {
  workloads_.push_back(name);
  return *this;
}

SweepSpec& SweepSpec::workloads(std::vector<std::string> names) {
  workloads_ = std::move(names);
  return *this;
}

SweepSpec& SweepSpec::suite() {
  workloads_ = suite_names();
  return *this;
}

SweepSpec& SweepSpec::seed_offsets(std::vector<u64> offsets) {
  if (offsets.empty()) {
    throw std::invalid_argument("SweepSpec: seed_offsets must be non-empty");
  }
  seed_offsets_ = std::move(offsets);
  return *this;
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<std::string> labels,
                           std::function<void(SimConfig&, usize)> apply) {
  if (labels.empty()) {
    throw std::invalid_argument("SweepSpec: axis needs at least one value");
  }
  axes_.push_back(
      Axis{std::move(name), std::move(labels), std::move(apply)});
  return *this;
}

SweepSpec& SweepSpec::axis(std::string name, const std::vector<usize>& values,
                           std::function<void(SimConfig&, usize)> apply) {
  std::vector<std::string> labels;
  labels.reserve(values.size());
  for (const usize v : values) labels.push_back(std::to_string(v));
  return axis(std::move(name), std::move(labels),
              [values, apply = std::move(apply)](SimConfig& cfg, usize i) {
                apply(cfg, values[i]);
              });
}

SweepSpec& SweepSpec::axis(std::string name, const std::vector<double>& values,
                           std::function<void(SimConfig&, double)> apply) {
  std::vector<std::string> labels;
  labels.reserve(values.size());
  for (const double v : values) labels.push_back(format_double(v));
  return axis(std::move(name), std::move(labels),
              [values, apply = std::move(apply)](SimConfig& cfg, usize i) {
                apply(cfg, values[i]);
              });
}

std::vector<std::string> SweepSpec::effective_workloads() const {
  return workloads_.empty() ? suite_names() : workloads_;
}

usize SweepSpec::job_count() const {
  usize combos = 1;
  for (const auto& a : axes_) combos *= a.labels.size();
  return combos * seed_offsets_.size() * effective_workloads().size();
}

std::vector<Job> SweepSpec::expand() const {
  const std::vector<std::string> loads = effective_workloads();
  std::vector<Job> jobs;
  jobs.reserve(job_count());

  // Odometer over the axes, first axis slowest (outermost loop), matching
  // how the serial benches nest their sweep loops.
  std::vector<usize> idx(axes_.size(), 0);
  for (;;) {
    SimConfig cfg = base_;
    std::string tag;
    for (usize a = 0; a < axes_.size(); ++a) {
      axes_[a].apply(cfg, idx[a]);
      if (!tag.empty()) tag += ',';
      tag += axes_[a].name + '=' + axes_[a].labels[idx[a]];
    }
    for (const u64 seed : seed_offsets_) {
      for (const auto& w : loads) {
        Job job;
        job.id = static_cast<u64>(jobs.size());
        job.workload = w;
        job.tag = tag;
        job.config = cfg;
        job.scale = scale_;
        job.seed_offset = seed;
        jobs.push_back(std::move(job));
      }
    }
    // Advance the odometer, last axis fastest.
    usize a = axes_.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes_[a].labels.size()) break;
      idx[a] = 0;
      if (a == 0) return jobs;
    }
    if (axes_.empty()) return jobs;
  }
}

}  // namespace cnt::exec
