// Uniform parallelism / resumability knobs for every CLI in the repo.
//
// Precedence, strongest first: an explicit command-line flag (--jobs N /
// --jobs=N / -j N, --resume / --no-resume), then the environment
// (CNT_JOBS, CNT_RESUME, CNT_RETRIES), then the caller's fallback (0 =
// "unspecified", which the engine resolves to the hardware thread count
// for jobs and to "no retries" for retries). All parsers are forgiving:
// malformed values fall through to the next source rather than aborting
// a batch run.
#pragma once

#include "common/types.hpp"

namespace cnt::exec {

/// std::thread::hardware_concurrency() clamped to >= 1.
[[nodiscard]] usize hardware_jobs() noexcept;

/// $CNT_JOBS as a positive integer, else `fallback`.
[[nodiscard]] usize jobs_from_env(usize fallback = 0) noexcept;

/// Scan argv for --jobs N, --jobs=N or -j N; falls back to $CNT_JOBS and
/// then `fallback`. Does not mutate argv; unknown flags are ignored.
[[nodiscard]] usize jobs_from_args(int argc, const char* const* argv,
                                   usize fallback = 0) noexcept;

/// Resolve an "unspecified" job count: n itself if n > 0, else $CNT_JOBS,
/// else the hardware thread count.
[[nodiscard]] usize resolve_jobs(usize n) noexcept;

/// $CNT_RESUME as a boolean ("1"/"true"/"yes"/"on", case-sensitive),
/// else `fallback`.
[[nodiscard]] bool resume_from_env(bool fallback = false) noexcept;

/// Scan argv for --resume / --no-resume (last one wins); falls back to
/// $CNT_RESUME and then `fallback`. Does not mutate argv.
[[nodiscard]] bool resume_from_args(int argc, const char* const* argv,
                                    bool fallback = false) noexcept;

/// $CNT_RETRIES as a non-negative integer (extra attempts per failed
/// job), else `fallback`.
[[nodiscard]] u32 retries_from_env(u32 fallback = 0) noexcept;

/// Resolve an "unspecified" retry budget: n itself if n > 0, else
/// $CNT_RETRIES, else 0 (fail on the first error, the historical
/// behaviour).
[[nodiscard]] u32 resolve_retries(u32 n) noexcept;

/// $CNT_JOB_TIMEOUT_MS as a positive millisecond count, else `fallback`.
[[nodiscard]] u64 job_timeout_from_env(u64 fallback = 0) noexcept;

/// Resolve an "unspecified" per-attempt job timeout: n itself if n > 0,
/// else $CNT_JOB_TIMEOUT_MS, else 0 -- watchdog disabled, the historical
/// behaviour (docs/robustness.md).
[[nodiscard]] u64 resolve_job_timeout(u64 n) noexcept;

/// Generic positive-integer flag: scan argv for `<flag> N` / `<flag>=N`
/// (pass the full spelling, e.g. "--samples"), then $CNT_<NAME> (the flag
/// name without dashes, uppercased, '-' -> '_'), then `fallback`. Zero
/// and malformed values fall through to the next source. Used for bench
/// knobs like --samples and --seed, whose values (sample counts, RNG
/// seeds) need the full u64 range.
[[nodiscard]] u64 u64_from_args(int argc, const char* const* argv,
                                const char* flag, u64 fallback) noexcept;

}  // namespace cnt::exec
