// Uniform parallelism knobs for every CLI in the repo.
//
// Precedence, strongest first: an explicit --jobs N / --jobs=N / -j N
// flag, then the CNT_JOBS environment variable, then the caller's
// fallback (0 = "unspecified", which the engine resolves to the hardware
// thread count). All parsers are forgiving: malformed values fall
// through to the next source rather than aborting a batch run.
#pragma once

#include "common/types.hpp"

namespace cnt::exec {

/// std::thread::hardware_concurrency() clamped to >= 1.
[[nodiscard]] usize hardware_jobs() noexcept;

/// $CNT_JOBS as a positive integer, else `fallback`.
[[nodiscard]] usize jobs_from_env(usize fallback = 0) noexcept;

/// Scan argv for --jobs N, --jobs=N or -j N; falls back to $CNT_JOBS and
/// then `fallback`. Does not mutate argv; unknown flags are ignored.
[[nodiscard]] usize jobs_from_args(int argc, const char* const* argv,
                                   usize fallback = 0) noexcept;

/// Resolve an "unspecified" job count: n itself if n > 0, else $CNT_JOBS,
/// else the hardware thread count.
[[nodiscard]] usize resolve_jobs(usize n) noexcept;

}  // namespace cnt::exec
