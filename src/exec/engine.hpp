// ExperimentEngine: the facade benches and examples program against.
//
// Takes a batch of Jobs (usually from SweepSpec::expand()), executes them
// on a ThreadPool, and returns outcomes in submission order regardless of
// completion order. Determinism contract: every job builds its own
// workload from (name, scale, seed_offset) -- all randomness flows
// through the per-generator Rng seeds, there is no shared mutable
// simulation state -- so a parallel run is bit-identical to --jobs 1.
// A job that throws is captured as a failed JobOutcome; the rest of the
// batch runs to completion.
//
// Crash safety (docs/resumable_sweeps.md): with a jsonl_path the engine
// writes a journal -- sealed header + checksummed rows streamed into
// `<path>.partial`, renamed onto `<path>` on success. With resume=true a
// partial journal from a killed run is loaded, its torn tail truncated,
// and every journaled ok row is replayed verbatim instead of
// re-simulated, so the final file is byte-identical to an uninterrupted
// run. SIGINT/SIGTERM (when handle_signals) or a cancel_check hook stop
// the sweep gracefully: in-flight jobs drain, the journal flushes, and
// run() throws SweepInterrupted.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "exec/result_sink.hpp"
#include "exec/sweep.hpp"

namespace cnt::exec {

struct EngineOptions {
  /// Worker threads; 0 resolves via $CNT_JOBS then hardware concurrency.
  usize jobs = 0;
  /// JSONL telemetry file; empty disables the sink.
  std::string jsonl_path;
  /// Include per-job wall_ms in JSONL rows (disable for byte-exact
  /// parallel-vs-serial file comparisons).
  bool jsonl_timing = true;
  /// Live progress/throughput line on stderr.
  bool progress = false;
  /// Load `<jsonl_path>.partial` (or the final file) and skip jobs whose
  /// ok rows are already journaled. No-op without a jsonl_path.
  bool resume = false;
  /// Extra attempts per failed job; 0 resolves via $CNT_RETRIES (default:
  /// fail on the first error, the historical behaviour).
  u32 max_retries = 0;
  /// Base delay before the first retry; doubles per attempt, capped at
  /// 5 s. Only consulted when a retry actually happens. The wait is
  /// interruptible: SIGINT/SIGTERM or cancellation preempt it.
  u32 retry_backoff_ms = 100;
  /// Per-attempt wall-clock budget in milliseconds; 0 resolves via
  /// $CNT_JOB_TIMEOUT_MS then "no watchdog". When armed, an attempt
  /// still running at the deadline is cancelled (cancel::Reason::kTimeout)
  /// and the job is quarantined (docs/robustness.md).
  u64 job_timeout_ms = 0;
  /// Install SIGINT/SIGTERM handlers for graceful interruption. A second
  /// signal restores the default disposition (immediate death).
  bool handle_signals = false;
  /// Test hook polled between jobs alongside the signal flag; returning
  /// true cancels the sweep at a deterministic point.
  std::function<bool()> cancel_check;
};

/// Thrown by ExperimentEngine::run() when the sweep is cancelled by a
/// signal or cancel_check. The journal (if any) has been flushed; rerun
/// with resume=true to pick up where this run stopped.
class SweepInterrupted : public std::runtime_error {
 public:
  SweepInterrupted(usize completed, usize total, std::string journal_path);

  [[nodiscard]] usize completed() const noexcept { return completed_; }
  [[nodiscard]] usize total() const noexcept { return total_; }
  /// The `<path>.partial` file holding the flushed rows ("" if no sink).
  [[nodiscard]] const std::string& journal_path() const noexcept {
    return journal_path_;
  }

 private:
  usize completed_;
  usize total_;
  std::string journal_path_;
};

/// Execute one job in the calling thread: build the workload, simulate,
/// capture any exception. Never throws.
[[nodiscard]] JobOutcome run_job(const Job& job) noexcept;

/// A pluggable job executor (tests inject failure-then-success fakes).
using JobRunner = std::function<JobOutcome(const Job&)>;

class Watchdog;

/// Run `job` up to 1 + max_retries times, waiting backoff_ms * 2^attempt
/// (capped at 5 s) between attempts -- an interruptible wait: a pending
/// SIGINT/SIGTERM or cancellation drains it within one slice instead of
/// sleeping out the full delay. Returns the first ok outcome -- with
/// `attempts` recording how many tries it took -- or the last failure once
/// the budget is spent, with `attempt_errcs` recording every attempt's
/// errc name. With a `watchdog`, each attempt runs under its own
/// cancellation token and deadline; a timed-out attempt is not retried.
/// A failed outcome is marked quarantined ("timeout" or "retries") unless
/// the retry loop was abandoned by an interrupt request.
[[nodiscard]] JobOutcome run_job_with_retry(const Job& job, u32 max_retries,
                                            u32 backoff_ms,
                                            const JobRunner& runner = run_job,
                                            Watchdog* watchdog = nullptr);

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineOptions opts = {});

  /// Run every job; returns outcomes indexed by submission order (job ids
  /// are reassigned densely from 0 in vector order). With 1 worker the
  /// batch runs inline in the calling thread -- the serial reference path.
  /// Throws SweepInterrupted on cancellation and std::runtime_error when
  /// resume=true meets a journal for a different sweep.
  [[nodiscard]] std::vector<JobOutcome> run(std::vector<Job> jobs) const;

  [[nodiscard]] std::vector<JobOutcome> run(const SweepSpec& spec) const {
    return run(spec.expand());
  }

  /// The resolved worker count this engine will use.
  [[nodiscard]] usize worker_count() const noexcept { return workers_; }

  /// The resolved retry budget (max_retries, then $CNT_RETRIES, then 0).
  [[nodiscard]] u32 retry_budget() const noexcept { return retries_; }

  /// The resolved per-attempt timeout in ms (job_timeout_ms, then
  /// $CNT_JOB_TIMEOUT_MS, then 0 = no watchdog).
  [[nodiscard]] u64 job_timeout() const noexcept { return timeout_ms_; }

 private:
  EngineOptions opts_;
  usize workers_;
  u32 retries_;
  u64 timeout_ms_;
};

/// Outcomes of one axis point, in submission (suite) order.
struct TagGroup {
  std::string tag;
  std::vector<const JobOutcome*> outcomes;
};

/// Group outcomes by Job::tag, preserving first-appearance order (which
/// equals axis declaration order for SweepSpec batches).
[[nodiscard]] std::vector<TagGroup> group_by_tag(
    const std::vector<JobOutcome>& outcomes);

/// Extract the SimResults of a group for the report helpers
/// (mean_saving, savings_table). Throws std::runtime_error naming the
/// workload and error if any job in the group failed.
[[nodiscard]] std::vector<SimResult> results_of(
    const std::vector<const JobOutcome*>& group);

/// Process exit code for a sweep that completed with quarantined jobs:
/// distinct from 0 (clean), 1 (hard failure) and 130 (interrupted) so
/// batch drivers can tell "usable but incomplete" apart
/// (docs/robustness.md exit-code table).
inline constexpr int kExitQuarantine = 3;

/// Jobs whose outcome is quarantined (timed out / exhausted retries).
[[nodiscard]] usize quarantined_count(
    const std::vector<JobOutcome>& outcomes) noexcept;

/// 0 when every job succeeded, kExitQuarantine when the sweep completed
/// but quarantined at least one job, 1 for any other failed outcome.
[[nodiscard]] int sweep_exit_code(
    const std::vector<JobOutcome>& outcomes) noexcept;

}  // namespace cnt::exec
