// ExperimentEngine: the facade benches and examples program against.
//
// Takes a batch of Jobs (usually from SweepSpec::expand()), executes them
// on a ThreadPool, and returns outcomes in submission order regardless of
// completion order. Determinism contract: every job builds its own
// workload from (name, scale, seed_offset) -- all randomness flows
// through the per-generator Rng seeds, there is no shared mutable
// simulation state -- so a parallel run is bit-identical to --jobs 1.
// A job that throws is captured as a failed JobOutcome; the rest of the
// batch runs to completion.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "exec/result_sink.hpp"
#include "exec/sweep.hpp"

namespace cnt::exec {

struct EngineOptions {
  /// Worker threads; 0 resolves via $CNT_JOBS then hardware concurrency.
  usize jobs = 0;
  /// JSONL telemetry file; empty disables the sink.
  std::string jsonl_path;
  /// Include per-job wall_ms in JSONL rows (disable for byte-exact
  /// parallel-vs-serial file comparisons).
  bool jsonl_timing = true;
  /// Live progress/throughput line on stderr.
  bool progress = false;
};

/// Execute one job in the calling thread: build the workload, simulate,
/// capture any exception. Never throws.
[[nodiscard]] JobOutcome run_job(const Job& job) noexcept;

class ExperimentEngine {
 public:
  explicit ExperimentEngine(EngineOptions opts = {});

  /// Run every job; returns outcomes indexed by submission order (job ids
  /// are reassigned densely from 0 in vector order). With 1 worker the
  /// batch runs inline in the calling thread -- the serial reference path.
  [[nodiscard]] std::vector<JobOutcome> run(std::vector<Job> jobs) const;

  [[nodiscard]] std::vector<JobOutcome> run(const SweepSpec& spec) const {
    return run(spec.expand());
  }

  /// The resolved worker count this engine will use.
  [[nodiscard]] usize worker_count() const noexcept { return workers_; }

 private:
  EngineOptions opts_;
  usize workers_;
};

/// Outcomes of one axis point, in submission (suite) order.
struct TagGroup {
  std::string tag;
  std::vector<const JobOutcome*> outcomes;
};

/// Group outcomes by Job::tag, preserving first-appearance order (which
/// equals axis declaration order for SweepSpec batches).
[[nodiscard]] std::vector<TagGroup> group_by_tag(
    const std::vector<JobOutcome>& outcomes);

/// Extract the SimResults of a group for the report helpers
/// (mean_saving, savings_table). Throws std::runtime_error naming the
/// workload and error if any job in the group failed.
[[nodiscard]] std::vector<SimResult> results_of(
    const std::vector<const JobOutcome*>& group);

}  // namespace cnt::exec
