// Live progress/throughput reporting for a running batch.
//
// Thread-safe: workers call job_done() as they finish; the meter redraws
// a single status line ("[12/90] 4.1 sims/s eta 19s") on stderr, rate
// limited so a fast batch does not drown the terminal. The meter never
// writes to stdout or to the JSONL sink, so enabling it cannot perturb
// deterministic outputs.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <ostream>
#include <string>

#include "common/types.hpp"

namespace cnt::exec {

class ProgressMeter {
 public:
  /// `enabled` gates drawing; counters and summary() work either way.
  explicit ProgressMeter(usize total, bool enabled = true);
  ProgressMeter(usize total, bool enabled, std::ostream& os);

  /// Record one finished job; may redraw the status line.
  void job_done();

  /// Record one job skipped via --resume (its journal row was replayed,
  /// not re-simulated). Counts toward done(), tracked separately so the
  /// summary can report how much work the resume saved.
  void job_resumed();

  /// Record one quarantined job (timed out or exhausted retries -- the
  /// sweep completed without it, docs/robustness.md). Counts toward
  /// done(); tracked separately so the summary reports the damage.
  void job_quarantined();

  /// Erase the status line (if any) and stop drawing. Idempotent.
  void finish();

  [[nodiscard]] usize done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] usize resumed() const noexcept {
    return resumed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] usize quarantined() const noexcept {
    return quarantined_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] usize total() const noexcept { return total_; }
  [[nodiscard]] double elapsed_seconds() const;

  /// Mean completed simulations per second so far (0 until one finishes;
  /// resumed jobs are excluded -- they cost no simulation time).
  [[nodiscard]] double rate() const;

  /// One-line batch summary, e.g. "90 sims in 21.4 s (4.2 sims/s)",
  /// "90 sims in 3.1 s (60 resumed, 9.7 sims/s)" or, with losses,
  /// "90 sims in 21.4 s (4.2 sims/s) [1 quarantined]".
  [[nodiscard]] std::string summary() const;

 private:
  void redraw(usize done_now);

  const usize total_;
  const bool enabled_;
  std::ostream& os_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<usize> done_{0};
  std::atomic<usize> resumed_{0};
  std::atomic<usize> quarantined_{0};
  std::mutex draw_mu_;
  std::chrono::steady_clock::time_point last_draw_;  // cnt-lint: guarded-by(draw_mu_)
  bool line_open_ = false;  // cnt-lint: guarded-by(draw_mu_)
  bool finished_ = false;   // cnt-lint: guarded-by(draw_mu_)
};

}  // namespace cnt::exec
