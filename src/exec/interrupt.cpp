#include "exec/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace cnt::exec {

namespace {

// Lock-free atomic: safe to set from a signal handler and to poll from
// worker threads (volatile sig_atomic_t alone would race under TSan).
std::atomic<bool> g_interrupted{false};

extern "C" void on_interrupt_signal(int sig) {
  if (g_interrupted.exchange(true, std::memory_order_relaxed)) {
    // Second signal: give up on graceful drain, die the default way.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

}  // namespace

void install_signal_handlers() noexcept {
  std::signal(SIGINT, on_interrupt_signal);
  std::signal(SIGTERM, on_interrupt_signal);
}

bool interrupt_requested() noexcept {
  return g_interrupted.load(std::memory_order_relaxed);
}

void request_interrupt() noexcept {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void reset_interrupt() noexcept {
  g_interrupted.store(false, std::memory_order_relaxed);
}

}  // namespace cnt::exec
