#include "exec/journal.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace cnt::exec {

namespace {

void feed_tech(Fnv1a64& h, const TechParams& t) noexcept {
  h.update(t.name);
  h.update(t.cell.rd0.in_joules());
  h.update(t.cell.rd1.in_joules());
  h.update(t.cell.wr0.in_joules());
  h.update(t.cell.wr1.in_joules());
  h.update(t.periph.decoder_per_addr_bit.in_joules());
  h.update(t.periph.wordline_per_cell.in_joules());
  h.update(t.periph.tag_compare_per_bit.in_joules());
  h.update(t.periph.output_per_bit.in_joules());
  h.update(t.periph.encoder_per_bit.in_joules());
  h.update(t.periph.predictor_update.in_joules());
  h.update(t.periph.predictor_eval_per_bit.in_joules());
  h.update(t.periph.fifo_per_byte.in_joules());
  h.update(t.periph.leakage_per_cell_w);
  h.update(t.clock_ghz);
}

// The sealed-line suffix is `,"crc":"xxxxxxxx"}` -- 18 bytes.
constexpr usize kSealSuffixLen = 18;

}  // namespace

u64 config_fingerprint(const SimConfig& cfg) noexcept {
  Fnv1a64 h;
  h.update(std::string_view("cnt-config-v1"));

  const CacheConfig& c = cfg.cache;
  h.update(c.name);
  h.update(static_cast<u64>(c.size_bytes));
  h.update(static_cast<u64>(c.ways));
  h.update(static_cast<u64>(c.line_bytes));
  h.update(static_cast<u64>(c.addr_bits));
  h.update(static_cast<u64>(c.write_policy));
  h.update(static_cast<u64>(c.alloc_policy));
  h.update(static_cast<u64>(c.replacement));
  h.update(static_cast<u64>(c.idle.idle_per_miss));
  h.update(static_cast<u64>(c.idle.hit_idle_period));
  h.update(c.replacement_seed);
  h.update(c.way_prediction);
  h.update(c.sector_writeback);

  feed_tech(h, cfg.tech);
  feed_tech(h, cfg.cmos_tech);

  const CntConfig& n = cfg.cnt;
  h.update(static_cast<u64>(n.window));
  h.update(static_cast<u64>(n.partitions));
  h.update(static_cast<u64>(n.fifo_depth));
  h.update(n.delta_t);
  h.update(static_cast<u64>(n.fill_policy));
  h.update(static_cast<u64>(n.write_granularity));
  h.update(static_cast<u64>(n.history_scope));
  h.update(n.account_metadata);
  h.update(n.flip_aware_writes);
  h.update(n.zero_line_opt);

  h.update(cfg.with_cmos);
  h.update(cfg.with_static);
  h.update(cfg.with_ideal);

  // Fault fields are hashed only when the campaign is active, so every
  // fingerprint minted before the fault subsystem existed -- and every
  // fault-free sweep journal -- stays byte-identical.
  if (cfg.fault.enabled()) {
    h.update(std::string_view("fault"));
    h.update(cfg.fault.stuck_per_mbit);
    h.update(cfg.fault.stuck_at1_fraction);
    h.update(cfg.fault.transient_per_read);
    h.update(static_cast<u64>(cfg.fault.protection));
    h.update(cfg.fault.protect_directions);
    h.update(cfg.fault.seed);
  }
  return h.digest();
}

u64 job_key(const Job& job) noexcept {
  Fnv1a64 h;
  h.update(std::string_view("cnt-job-key-v1"));
  h.update(job.workload);
  h.update(job.tag);
  h.update(job.scale);
  h.update(job.seed_offset);
  h.update(config_fingerprint(job.config));
  return h.digest();
}

u64 sweep_fingerprint(const std::vector<Job>& jobs) noexcept {
  Fnv1a64 h;
  h.update(std::string_view("cnt-sweep-v1"));
  h.update(static_cast<u64>(jobs.size()));
  for (const Job& job : jobs) h.update(job_key(job));
  return h.digest();
}

std::string seal_line(std::string payload) {
  if (payload.size() < 3 || payload.front() != '{' ||
      payload.back() != '}') {
    throw Error(Errc::kInternal, "seal_line: payload is not a JSON object")
        .hint("seal_line seals exactly one serialized '{...}' object");
  }
  payload.pop_back();  // the CRC covers every byte before its own field
  const u32 c = crc32(payload);
  payload += ",\"crc\":\"" + hex_u32(c) + "\"}";
  return payload;
}

bool check_sealed_line(std::string_view line) noexcept {
  if (line.size() < kSealSuffixLen + 2) return false;
  const usize cut = line.size() - kSealSuffixLen;
  if (line.substr(cut, 8) != ",\"crc\":\"") return false;
  if (line.substr(line.size() - 2) != "\"}") return false;
  u32 stored = 0;
  if (!parse_hex_u32(line.substr(cut + 8, 8), stored)) return false;
  return crc32(line.substr(0, cut)) == stored;
}

std::string make_header_line(u64 fingerprint, u64 jobs) {
  std::ostringstream os;
  {
    JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("schema", kHeaderSchema);
    w.kv("fingerprint", hex_u64(fingerprint));
    w.kv("jobs", jobs);
    w.end_object();
  }
  return seal_line(os.str());
}

namespace {

/// Strip the seal suffix so the remaining text parses as the original
/// payload plus the crc field (the sealed line is itself valid JSON, so
/// we can just parse the whole line).
bool parse_header(const std::string& line, JournalData& out) {
  if (!check_sealed_line(line)) return false;
  try {
    const JsonValue v = parse_json(line);
    if (v.at("schema").as_string() != kHeaderSchema) return false;
    if (!parse_hex_u64(v.at("fingerprint").as_string(), out.fingerprint)) {
      return false;
    }
    out.jobs_declared = v.at("jobs").as_u64();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool parse_row(std::string line, JournalRow& row) {
  if (!check_sealed_line(line)) return false;
  try {
    JsonValue v = parse_json(line);
    if (v.at("schema").as_string() != kRowSchema) return false;
    row.job_id = v.at("job_id").as_u64();
    if (!parse_hex_u64(v.at("key").as_string(), row.key)) return false;
    row.ok = v.at("ok").as_bool();
    row.fields = std::move(v);
  } catch (const std::exception&) {
    return false;
  }
  row.text = std::move(line);
  return true;
}

bool load_from(const std::string& path, JournalData& out) {
  std::ifstream in(path);
  if (!in) return false;
  if (!read_journal(in, path, out)) return false;
  out.source_path = path;
  return true;
}

}  // namespace

bool read_journal(std::istream& is, const std::string& source,
                  JournalData& out, const ParseLimits& limits) {
  std::string line;
  if (bounded_getline(is, line, limits.max_line_bytes) != LineStatus::kOk) {
    return false;
  }
  if (!parse_header(line, out)) return false;
  out.header_ok = true;
  out.source_path = source;
  u64 line_no = 1;  // the header was line 1
  for (;;) {
    const LineStatus status =
        bounded_getline(is, line, limits.max_line_bytes);
    if (status == LineStatus::kEof) break;
    ++line_no;
    if (status == LineStatus::kOk && line.empty()) continue;
    const bool over_limit = status == LineStatus::kTooLong ||
                            out.rows.size() >= limits.max_records;
    JournalRow row;
    if (over_limit || !parse_row(std::move(line), row)) {
      // First bad line. A torn tail (crash mid-append) is recoverable by
      // truncation; a bad row *followed by more sealed rows* is mid-file
      // corruption -- the prefix beyond it must not be replayed.
      out.corrupt_line = line_no;
      out.corrupt_row_index = out.rows.size();
      ++out.dropped_lines;
      for (;;) {
        const LineStatus rest =
            bounded_getline(is, line, limits.max_line_bytes);
        if (rest == LineStatus::kEof) break;
        ++out.dropped_lines;
        if (rest == LineStatus::kOk && check_sealed_line(line)) {
          out.mid_file_corruption = true;
        }
      }
      break;
    }
    out.rows.push_back(std::move(row));
  }
  return true;
}

JournalData load_journal(const std::string& jsonl_path) {
  JournalData data;
  if (load_from(jsonl_path + ".partial", data)) return data;
  data = JournalData{};
  (void)load_from(jsonl_path, data);
  return data;
}

std::optional<Error> journal_corruption_error(const JournalData& journal) {
  if (!journal.header_ok || !journal.mid_file_corruption) {
    return std::nullopt;
  }
  return Error(Errc::kChecksum,
               "journal row " + std::to_string(journal.corrupt_row_index) +
                   " fails its CRC seal with intact rows after it "
                   "(mid-file corruption, not a torn tail)")
      .at(journal.source_path, journal.corrupt_line)
      .hint("refusing to replay a journal with a damaged interior; delete "
            "it (or restore it from backup) and rerun without --resume");
}

JobOutcome outcome_from_row(const JournalRow& row, const Job& job) {
  JobOutcome out;
  out.job = job;
  out.resumed = true;
  const JsonValue& v = row.fields;
  out.ok = v.at("ok").as_bool();
  if (const JsonValue* wall = v.find("wall_ms")) {
    out.wall_ms = wall->as_double();
  }
  if (!out.ok) {
    out.error = v.at("error").as_string();
    return out;
  }

  SimResult& r = out.result;
  r.workload = job.workload;
  const JsonValue& trace = v.at("trace");
  r.trace_stats.accesses = static_cast<usize>(trace.at("accesses").as_u64());
  r.trace_stats.write_fraction = trace.at("write_fraction").as_double();
  r.trace_stats.footprint_kib = trace.at("footprint_kib").as_double();

  // The row stores hit/miss aggregates; folding them into the read-side
  // counters preserves hits()/misses()/hit_rate() exactly.
  const JsonValue& cache = v.at("cache");
  r.cache_stats.accesses = cache.at("accesses").as_u64();
  r.cache_stats.read_hits = cache.at("hits").as_u64();
  r.cache_stats.read_misses = cache.at("misses").as_u64();
  r.cache_stats.writebacks = cache.at("writebacks").as_u64();

  // One ledger category per policy holding the journaled total: totals,
  // savings and CSV aggregates are bit-identical; per-category breakdowns
  // are not reconstructible from a journal.
  for (const auto& [name, joules] : v.at("energy_j").as_object()) {
    PolicyResult pr;
    pr.name = name;
    pr.ledger.charge(EnergyCategory::kDataRead,
                     Energy::joules(joules.as_double()));
    r.policies.push_back(std::move(pr));
  }

  if (const JsonValue* fault = v.find("fault")) {
    r.has_fault = true;
    FaultStats& fs = r.fault_stats;
    fs.stuck_data_cells = fault->at("stuck_data_cells").as_u64();
    fs.stuck_dir_cells = fault->at("stuck_dir_cells").as_u64();
    fs.transient_data_flips = fault->at("transient_data_flips").as_u64();
    fs.transient_dir_flips = fault->at("transient_dir_flips").as_u64();
    fs.faulty_reads = fault->at("faulty_reads").as_u64();
    fs.corrected_bits = fault->at("corrected_bits").as_u64();
    fs.detected_events = fault->at("detected_events").as_u64();
    fs.silent_bits = fault->at("silent_bits").as_u64();
    fs.dir_flips = fault->at("dir_flips").as_u64();
    fs.dir_corrected_bits = fault->at("dir_corrected_bits").as_u64();
    fs.dir_detected_events = fault->at("dir_detected_events").as_u64();
    fs.dir_silent_bits = fault->at("dir_silent_bits").as_u64();
  }

  if (const JsonValue* cnt = v.find("cnt")) {
    for (auto& pr : r.policies) {
      if (pr.name != kPolicyCnt) continue;
      pr.has_cnt_stats = true;
      pr.cnt_stats.windows_evaluated = cnt->at("windows_evaluated").as_u64();
      pr.cnt_stats.reencodes_applied = cnt->at("reencodes_applied").as_u64();
      pr.cnt_stats.fill_inversions = cnt->at("fill_inversions").as_u64();
      pr.queue_stats.pushed = cnt->at("fifo_pushed").as_u64();
      pr.queue_stats.dropped_full = cnt->at("fifo_drops").as_u64();
      break;
    }
  }
  return out;
}

}  // namespace cnt::exec
