#include "exec/progress.hpp"

#include <cstdio>
#include <iostream>

namespace cnt::exec {

namespace {
constexpr std::chrono::milliseconds kRedrawInterval{100};
}  // namespace

ProgressMeter::ProgressMeter(usize total, bool enabled)
    : ProgressMeter(total, enabled, std::cerr) {}

ProgressMeter::ProgressMeter(usize total, bool enabled, std::ostream& os)
    : total_(total),
      enabled_(enabled),
      os_(os),
      start_(std::chrono::steady_clock::now()),
      last_draw_(start_ - kRedrawInterval) {}

double ProgressMeter::elapsed_seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double ProgressMeter::rate() const {
  const double secs = elapsed_seconds();
  const usize d = done() - resumed();
  return secs > 0.0 ? static_cast<double>(d) / secs : 0.0;
}

void ProgressMeter::job_done() {
  const usize d = done_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled_) return;
  redraw(d);
}

void ProgressMeter::job_resumed() {
  resumed_.fetch_add(1, std::memory_order_relaxed);
  job_done();
}

void ProgressMeter::job_quarantined() {
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  job_done();
}

void ProgressMeter::redraw(usize done_now) {
  std::lock_guard lock(draw_mu_);
  if (finished_) return;
  const auto now = std::chrono::steady_clock::now();
  if (done_now < total_ && now - last_draw_ < kRedrawInterval) return;
  last_draw_ = now;

  const double secs = std::chrono::duration<double>(now - start_).count();
  const double r =
      secs > 0.0 ? static_cast<double>(done_now) / secs : 0.0;
  const double eta =
      r > 0.0 ? static_cast<double>(total_ - done_now) / r : 0.0;
  char buf[128];
  std::snprintf(buf, sizeof buf, "\r[%zu/%zu] %.1f sims/s eta %.0fs   ",
                done_now, total_, r, eta);
  os_ << buf << std::flush;
  line_open_ = true;
}

void ProgressMeter::finish() {
  std::lock_guard lock(draw_mu_);
  if (finished_) return;
  finished_ = true;
  if (line_open_) {
    os_ << "\r\033[K" << std::flush;
    line_open_ = false;
  }
}

std::string ProgressMeter::summary() const {
  const double secs = elapsed_seconds();
  const usize r = resumed();
  const usize q = quarantined();
  char buf[160];
  if (r > 0) {
    std::snprintf(buf, sizeof buf,
                  "%zu sims in %.1f s (%zu resumed, %.1f sims/s)", done(),
                  secs, r, rate());
  } else {
    std::snprintf(buf, sizeof buf, "%zu sims in %.1f s (%.1f sims/s)",
                  done(), secs, rate());
  }
  std::string out = buf;
  if (q > 0) {
    std::snprintf(buf, sizeof buf, " [%zu quarantined]", q);
    out += buf;
  }
  return out;
}

}  // namespace cnt::exec
