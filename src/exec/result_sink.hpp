// Streaming JSONL telemetry for experiment batches.
//
// One line per finished job. Workers complete jobs in whatever order the
// scheduler produces, but rows are emitted strictly in job-submission
// order (job_id 0, 1, 2, ...): the sink holds out-of-order completions in
// a reorder buffer and flushes the contiguous prefix as it forms. This is
// the determinism guarantee external tooling keys on -- a parallel run's
// JSONL is byte-identical to a serial run's (modulo the wall_ms timing
// field, which can be disabled for exact comparisons).
#pragma once

#include <fstream>
#include <map>
#include <ostream>
#include <string>

#include "common/types.hpp"
#include "exec/sweep.hpp"
#include "sim/runner.hpp"

namespace cnt::exec {

/// Everything known about one finished job. `result` is meaningful only
/// when ok; a failed job carries the exception text instead and the batch
/// carries on (failure isolation).
struct JobOutcome {
  Job job;
  bool ok = false;
  std::string error;
  double wall_ms = 0.0;  ///< wall-clock for this job, telemetry only
  SimResult result;
};

/// Serialize one outcome as a single compact JSON line (no trailing
/// newline). Schema: docs/experiment_engine.md. `include_timing` gates
/// the wall_ms field so byte-level run comparisons are possible.
void write_jsonl_row(const JobOutcome& outcome, std::ostream& os,
                     bool include_timing = true);

class JsonlSink {
 public:
  /// Disabled sink: push() only tracks ordering, nothing is written.
  JsonlSink() = default;

  /// Stream to a file; throws std::runtime_error if it cannot be opened.
  explicit JsonlSink(const std::string& path, bool include_timing = true);

  /// Stream to a caller-owned ostream (tests, stdout pipelines).
  explicit JsonlSink(std::ostream& os, bool include_timing = true);

  /// Accept a finished job in any completion order. Rows flush to the
  /// output in job-id order. Not thread-safe; callers serialize (the
  /// engine pushes under its completion lock).
  void push(JobOutcome outcome);

  /// Flush and verify completeness. Throws std::logic_error if ids were
  /// not dense (a job never arrived) -- that is an engine bug, not an
  /// experiment failure.
  void finish();

  /// Rows actually written so far (== the contiguous prefix length).
  [[nodiscard]] u64 emitted() const noexcept { return next_id_; }

  /// Completions held in the reorder buffer awaiting earlier ids.
  [[nodiscard]] usize buffered() const noexcept { return pending_.size(); }

  [[nodiscard]] bool enabled() const noexcept { return os_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void emit(const JobOutcome& outcome);

  std::ofstream file_;
  std::ostream* os_ = nullptr;
  bool include_timing_ = true;
  std::string path_;
  std::map<u64, JobOutcome> pending_;  // reorder buffer keyed by job id
  u64 next_id_ = 0;                    // next id to emit
};

}  // namespace cnt::exec
