// Streaming JSONL telemetry / journal sink for experiment batches.
//
// One line per finished job. Workers complete jobs in whatever order the
// scheduler produces, but rows are emitted strictly in job-submission
// order (job_id 0, 1, 2, ...): the sink holds out-of-order completions in
// a reorder buffer and flushes the contiguous prefix as it forms. This is
// the determinism guarantee external tooling keys on -- a parallel run's
// JSONL is byte-identical to a serial run's (modulo the wall_ms timing
// field, which can be disabled for exact comparisons).
//
// File sinks double as crash-safe journals (docs/resumable_sweeps.md):
// rows carry a stable job key and a CRC-32 seal, every row is flushed as
// it is written, the stream goes to `<path>.partial`, and only finish()
// atomically renames it onto `<path>`. A killed sweep therefore leaves
// every completed row in the partial file for `--resume` to pick up,
// while readers of `<path>` never observe a torn journal.
#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "common/types.hpp"
#include "exec/sweep.hpp"
#include "sim/runner.hpp"

namespace cnt::exec {

/// Everything known about one finished job. `result` is meaningful only
/// when ok; a failed job carries the exception text instead and the batch
/// carries on (failure isolation).
struct JobOutcome {
  Job job;
  bool ok = false;
  std::string error;
  double wall_ms = 0.0;  ///< wall-clock for this job, telemetry only
  u32 attempts = 1;      ///< executions incl. retries (telemetry only)
  bool resumed = false;  ///< reconstructed from a journal, not re-simulated
  /// errc_name of the final failure ("internal" for non-taxonomy
  /// exceptions, "" when ok) -- diagnosable without parsing `error`.
  std::string errc;
  /// One errc name per failed attempt, oldest first, so a quarantine row
  /// records the whole retry history, not just the last error.
  std::vector<std::string> attempt_errcs;
  /// The job timed out or exhausted its retry budget; the sweep
  /// completed without it (docs/robustness.md). Its journal row ("Q"
  /// row) is sealed like any other and re-attempted on --resume.
  bool quarantined = false;
  std::string quarantine_reason;  ///< "timeout" | "retries" when quarantined
  /// The final attempt was cancelled by the watchdog (Reason::kTimeout).
  bool timed_out = false;
  SimResult result;
};

/// Serialize one outcome as a single sealed JSON line (no trailing
/// newline): schema cnt-exec-v2 with a stable `key` and a trailing `crc`
/// field (docs/resumable_sweeps.md). `include_timing` gates the wall_ms
/// field so byte-level run comparisons are possible.
void write_jsonl_row(const JobOutcome& outcome, std::ostream& os,
                     bool include_timing = true);

class JsonlSink {
 public:
  /// Disabled sink: push() only tracks ordering, nothing is written.
  JsonlSink() = default;

  /// Journal-file sink: streams sealed rows to `path + ".partial"`
  /// through the durable-I/O layer (one checked write per row, failpoint
  /// sites journal.write / journal.sync / journal.rename); finish()
  /// fsyncs and renames the partial onto `path`. Throws cnt::Error
  /// (Errc::kIo) if the partial cannot be opened.
  explicit JsonlSink(const std::string& path, bool include_timing = true);

  /// Stream to a caller-owned ostream (tests, stdout pipelines). No
  /// header, no rename -- but rows are still sealed.
  explicit JsonlSink(std::ostream& os, bool include_timing = true);

  /// Write the sealed journal header (sweep fingerprint + job count).
  /// Must precede every row; throws std::logic_error otherwise.
  void write_header(u64 fingerprint, u64 jobs);

  /// Accept a finished job in any completion order. Rows flush to the
  /// output in job-id order. Not thread-safe; callers serialize (the
  /// engine pushes under its completion lock). Throws cnt::Error
  /// (Errc::kIo) when a journal write fails (disk full, device error);
  /// the rows already written stay sealed on disk for --resume.
  void push(JobOutcome outcome);

  /// Accept a journaled row for job `id` verbatim (resume replay). The
  /// line participates in the same submission-order emission as push().
  void push_replayed(u64 id, std::string sealed_row);

  /// Flush and verify completeness, then atomically publish the journal
  /// (rename `<path>.partial` -> `<path>`). Throws std::logic_error if
  /// ids were not dense (a job never arrived) -- that is an engine bug,
  /// not an experiment failure.
  void finish();

  /// Interrupted shutdown: flush rows held in the reorder buffer (beyond
  /// any gap, ascending id order -- resume matches rows by key, not file
  /// position) and close, leaving `<path>.partial` in place for --resume.
  /// Never throws on I/O: a drain on a full disk salvages what it can.
  void close_interrupted();

  /// Rows actually written so far (== the contiguous prefix length).
  [[nodiscard]] u64 emitted() const noexcept { return next_id_; }

  /// Completions held in the reorder buffer awaiting earlier ids.
  [[nodiscard]] usize buffered() const noexcept { return pending_.size(); }

  [[nodiscard]] bool enabled() const noexcept {
    return os_ != nullptr || file_.has_value();
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  struct Entry {
    bool replay = false;
    JobOutcome outcome;  ///< when !replay
    std::string raw;     ///< sealed line when replay
  };

  void enqueue(u64 id, Entry entry);
  void emit(const Entry& entry);
  void write_line(std::string line);

  std::optional<io::DurableFile> file_;  ///< journal-file mode
  std::ostream* os_ = nullptr;           ///< borrowed-stream mode
  bool include_timing_ = true;
  std::string path_;          // final journal path ("" for ostream mode)
  std::string partial_path_;  // staging file while the sweep runs
  bool header_written_ = false;
  std::map<u64, Entry> pending_;  // reorder buffer keyed by job id
  u64 next_id_ = 0;               // next id to emit
};

}  // namespace cnt::exec
