#include "exec/options.hpp"

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>

namespace cnt::exec {

namespace {

/// Parse a positive integer; 0 on anything else.
usize parse_positive(std::string_view s) noexcept {
  if (s.empty()) return 0;
  usize v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<usize>(c - '0');
    if (v > 1'000'000) return 0;  // obviously bogus thread counts
  }
  return v;
}

}  // namespace

usize hardware_jobs() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<usize>(n);
}

usize jobs_from_env(usize fallback) noexcept {
  const char* env = std::getenv("CNT_JOBS");
  if (env == nullptr) return fallback;
  const usize v = parse_positive(env);
  return v > 0 ? v : fallback;
}

usize jobs_from_args(int argc, const char* const* argv,
                     usize fallback) noexcept {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc) continue;
      value = argv[i + 1];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      value = arg.substr(7);
    } else {
      continue;
    }
    const usize v = parse_positive(value);
    if (v > 0) return v;
  }
  return jobs_from_env(fallback);
}

usize resolve_jobs(usize n) noexcept {
  if (n > 0) return n;
  return jobs_from_env(hardware_jobs());
}

bool resume_from_env(bool fallback) noexcept {
  const char* env = std::getenv("CNT_RESUME");
  if (env == nullptr) return fallback;
  const std::string_view v = env;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

bool resume_from_args(int argc, const char* const* argv,
                      bool fallback) noexcept {
  bool value = resume_from_env(fallback);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--resume") value = true;
    if (arg == "--no-resume") value = false;
  }
  return value;
}

u32 retries_from_env(u32 fallback) noexcept {
  const char* env = std::getenv("CNT_RETRIES");
  if (env == nullptr) return fallback;
  const std::string_view v = env;
  if (v == "0") return 0;
  const usize parsed = parse_positive(v);
  return parsed > 0 ? static_cast<u32>(parsed) : fallback;
}

u32 resolve_retries(u32 n) noexcept {
  if (n > 0) return n;
  return retries_from_env(0);
}

namespace {

/// Parse a positive u64 (no bogus-value ceiling -- seeds are arbitrary);
/// 0 on anything else.
u64 parse_positive_u64(std::string_view s) noexcept {
  if (s.empty() || s.size() > 20) return 0;
  u64 v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<u64>(c - '0');
  }
  return v;
}

}  // namespace

u64 job_timeout_from_env(u64 fallback) noexcept {
  const char* env = std::getenv("CNT_JOB_TIMEOUT_MS");
  if (env == nullptr) return fallback;
  const u64 v = parse_positive_u64(env);
  return v > 0 ? v : fallback;
}

u64 resolve_job_timeout(u64 n) noexcept {
  if (n > 0) return n;
  return job_timeout_from_env(0);
}

u64 u64_from_args(int argc, const char* const* argv, const char* flag,
                  u64 fallback) noexcept {
  const std::string_view spelled = flag;
  const std::string flag_eq = std::string(spelled) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == spelled) {
      if (i + 1 >= argc) continue;
      value = argv[i + 1];
    } else if (arg.rfind(flag_eq, 0) == 0) {
      value = arg.substr(flag_eq.size());
    } else {
      continue;
    }
    const u64 v = parse_positive_u64(value);
    if (v > 0) return v;
  }
  std::string env_name = "CNT_";
  for (char c : spelled.substr(spelled.find_first_not_of('-'))) {
    env_name += c == '-' ? '_' : static_cast<char>(std::toupper(c));
  }
  if (const char* env = std::getenv(env_name.c_str())) {
    const u64 v = parse_positive_u64(env);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace cnt::exec
