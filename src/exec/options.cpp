#include "exec/options.hpp"

#include <cstdlib>
#include <string_view>
#include <thread>

namespace cnt::exec {

namespace {

/// Parse a positive integer; 0 on anything else.
usize parse_positive(std::string_view s) noexcept {
  if (s.empty()) return 0;
  usize v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<usize>(c - '0');
    if (v > 1'000'000) return 0;  // obviously bogus thread counts
  }
  return v;
}

}  // namespace

usize hardware_jobs() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<usize>(n);
}

usize jobs_from_env(usize fallback) noexcept {
  const char* env = std::getenv("CNT_JOBS");
  if (env == nullptr) return fallback;
  const usize v = parse_positive(env);
  return v > 0 ? v : fallback;
}

usize jobs_from_args(int argc, const char* const* argv,
                     usize fallback) noexcept {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc) continue;
      value = argv[i + 1];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      value = arg.substr(7);
    } else {
      continue;
    }
    const usize v = parse_positive(value);
    if (v > 0) return v;
  }
  return jobs_from_env(fallback);
}

usize resolve_jobs(usize n) noexcept {
  if (n > 0) return n;
  return jobs_from_env(hardware_jobs());
}

}  // namespace cnt::exec
