#include "exec/thread_pool.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

namespace cnt::exec {

usize ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<usize>(n);
}

ThreadPool::ThreadPool(usize threads) {
  const usize n = threads == 0 ? hardware_threads() : threads;
  workers_.reserve(n);
  for (usize i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (shut_down_) {
      throw std::logic_error("ThreadPool::submit after shutdown");
    }
    ++pending_;
  }
  if (!queue_.push(std::move(task))) {
    // close() raced ahead of the shut_down_ flag; undo the accounting.
    std::lock_guard lock(mu_);
    --pending_;
    throw std::logic_error("ThreadPool::submit after shutdown");
  }
}

void ThreadPool::worker_loop() {
  while (auto task = queue_.pop()) {
    try {
      (*task)();
    } catch (const std::exception& e) {
      std::lock_guard lock(mu_);
      errors_.emplace_back(e.what());
    } catch (...) {
      std::lock_guard lock(mu_);
      errors_.emplace_back("unknown exception");
    }
    {
      std::lock_guard lock(mu_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  // Every task completion signals idle_cv_; pending_ can only fall, so
  // the park ends with the already-submitted work.
  // cnt-lint: wait-ok drains already-submitted work, worker-bounded
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    shut_down_ = true;
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

usize ThreadPool::error_count() const {
  std::lock_guard lock(mu_);
  return errors_.size();
}

std::vector<std::string> ThreadPool::take_errors() {
  std::lock_guard lock(mu_);
  return std::exchange(errors_, {});
}

}  // namespace cnt::exec
