#include "exec/engine.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/hash.hpp"
#include "exec/interrupt.hpp"
#include "exec/journal.hpp"
#include "exec/options.hpp"
#include "exec/progress.hpp"
#include "exec/thread_pool.hpp"
#include "exec/watchdog.hpp"
#include "trace/workload_suite.hpp"

namespace cnt::exec {

SweepInterrupted::SweepInterrupted(usize completed, usize total,
                                   std::string journal_path)
    : std::runtime_error("sweep interrupted after " +
                         std::to_string(completed) + "/" +
                         std::to_string(total) + " jobs"),
      completed_(completed),
      total_(total),
      journal_path_(std::move(journal_path)) {}

JobOutcome run_job(const Job& job) noexcept {
  JobOutcome out;
  out.job = job;
  // Torture-harness hook (docs/crash_consistency.md): an armed
  // engine.job failpoint injects a transient job failure (exercising the
  // retry path) or kills the process mid-sweep.
  switch (fp::check("engine.job")) {
    case fp::Action::kErrorEnospc:
    case fp::Action::kErrorEio:
    case fp::Action::kShortWrite:
      out.error = "failpoint: injected transient job failure (engine.job)";
      out.errc = "io";
      return out;
    case fp::Action::kCancelled: {
      // A `hang` failpoint parked here until this attempt's token fired
      // (watchdog timeout or explicit cancel) -- the chaos wall's
      // torture case for the quarantine path.
      cancel::Token* token = cancel::current();
      const cancel::Reason reason =
          token != nullptr ? token->reason() : cancel::Reason::kCancel;
      const Error e = cancel::cancelled_error(reason, "engine.job");
      out.error = e.what();
      out.errc = errc_name(e.code());
      return out;
    }
    case fp::Action::kNone:
      break;
  }
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const Workload w = build_workload(job.workload, job.scale,
                                      job.seed_offset);
    out.result = simulate(w, job.config);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
    const auto* taxonomy = dynamic_cast<const ErrorBase*>(&e);
    out.errc = taxonomy != nullptr
                   ? std::string(errc_name(taxonomy->info().code))
                   : "internal";
  } catch (...) {
    out.error = "unknown exception";
    out.errc = "internal";
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

namespace {

/// One watched attempt: a fresh cancellation token installed
/// thread-locally (the replay loops, StreamTraceSource refill and the
/// failpoint `hang` park all observe it), armed on the watchdog when one
/// is running. Marks the outcome timed_out when the watchdog fired.
JobOutcome run_attempt(const Job& job, const JobRunner& runner,
                       Watchdog* watchdog) {
  const auto token = std::make_shared<cancel::Token>();
  const cancel::ScopedToken scope(*token);
  std::optional<Watchdog::Guard> guard;
  if (watchdog != nullptr) guard.emplace(watchdog->watch(token));
  JobOutcome out = runner(job);
  out.timed_out = !out.ok && token->reason() == cancel::Reason::kTimeout;
  return out;
}

}  // namespace

JobOutcome run_job_with_retry(const Job& job, u32 max_retries, u32 backoff_ms,
                              const JobRunner& runner, Watchdog* watchdog) {
  std::vector<std::string> attempt_errcs;
  bool interrupted = false;
  JobOutcome out = run_attempt(job, runner, watchdog);
  out.attempts = 1;
  for (u32 retry = 1; retry <= max_retries && !out.ok; ++retry) {
    // A timed-out attempt already burned a full --job-timeout-ms budget
    // and a hung job rarely unhangs: quarantine now, do not retry.
    if (out.timed_out) break;
    // A pending interrupt outranks the retry budget: return the failure
    // now so the engine can drain and flush.
    if (interrupt_requested()) {
      interrupted = true;
      break;
    }
    if (backoff_ms > 0) {
      const u64 delay = std::min<u64>(
          static_cast<u64>(backoff_ms) << (retry - 1), u64{5000});
      // Interruptible backoff: a SIGINT/SIGTERM mid-wait drains within
      // one wait slice instead of sleeping out the full exponential
      // delay (up to 5 s) with the signal pending.
      const cancel::Token pause;
      if (pause.wait_ms(delay, [] { return interrupt_requested(); })) {
        interrupted = true;
        break;
      }
    }
    // This attempt's failure is final only in aggregate: record it and
    // spend a retry. The last attempt's errc is appended below.
    attempt_errcs.push_back(out.errc.empty() ? "internal" : out.errc);
    const u32 attempts_so_far = out.attempts;
    out = run_attempt(job, runner, watchdog);
    out.attempts = attempts_so_far + 1;
  }
  if (!out.ok) {
    attempt_errcs.push_back(out.errc.empty() ? "internal" : out.errc);
    out.attempt_errcs = std::move(attempt_errcs);
    if (out.timed_out) {
      out.quarantined = true;
      out.quarantine_reason = "timeout";
    } else if (!interrupted) {
      // The retry budget is spent and nothing external cut the loop
      // short: the failure is final, quarantine it so the sweep
      // completes deterministically without this job.
      out.quarantined = true;
      out.quarantine_reason = "retries";
    }
  }
  return out;
}

ExperimentEngine::ExperimentEngine(EngineOptions opts)
    : opts_(std::move(opts)),
      workers_(resolve_jobs(opts_.jobs)),
      retries_(resolve_retries(opts_.max_retries)),
      timeout_ms_(resolve_job_timeout(opts_.job_timeout_ms)) {}

std::vector<JobOutcome> ExperimentEngine::run(std::vector<Job> jobs) const {
  // The engine owns the id space: dense submission-order ids anchor both
  // the returned vector's order and the sink's reorder guarantee.
  for (usize i = 0; i < jobs.size(); ++i) jobs[i].id = static_cast<u64>(i);
  const u64 fp = sweep_fingerprint(jobs);

  // Load the prior journal (if resuming) BEFORE the sink truncates
  // <path>.partial.
  std::unordered_map<u64, const JournalRow*> replayable;
  JournalData journal;
  if (opts_.resume && !opts_.jsonl_path.empty()) {
    journal = load_journal(opts_.jsonl_path);
    if (journal.header_ok && journal.fingerprint != fp) {
      throw Error(Errc::kSchema,
                  "--resume: journal " + journal.source_path +
                      " records sweep " + hex_u64(journal.fingerprint) +
                      " but this sweep is " + hex_u64(fp))
          .at(journal.source_path)
          .hint("delete the stale journal or rerun without --resume");
    }
    // A torn tail is the normal crash signature and resume truncates it;
    // a row that fails its CRC *with intact rows after it* means the file
    // was damaged in place, and replaying around the hole would silently
    // drop results -- refuse instead.
    if (auto corrupt = journal_corruption_error(journal)) {
      throw std::move(*corrupt).context("--resume");
    }
    if (journal.header_ok) {
      for (const JournalRow& row : journal.rows) {
        // Only completed rows of a still-matching job are replayable;
        // failed rows get a fresh attempt.
        if (!row.ok || row.job_id >= jobs.size()) continue;
        if (row.key != job_key(jobs[row.job_id])) continue;
        replayable[row.job_id] = &row;
      }
    }
  }

  if (opts_.handle_signals) install_signal_handlers();
  const auto cancelled = [this]() -> bool {
    if (opts_.handle_signals && interrupt_requested()) return true;
    return opts_.cancel_check && opts_.cancel_check();
  };

  JsonlSink sink = opts_.jsonl_path.empty()
                       ? JsonlSink{}
                       : JsonlSink(opts_.jsonl_path, opts_.jsonl_timing);
  sink.write_header(fp, jobs.size());
  ProgressMeter meter(jobs.size(), opts_.progress);
  std::vector<JobOutcome> outcomes(jobs.size());
  std::vector<char> replayed(jobs.size(), 0);

  // Replay journaled rows first (byte-for-byte, per-row flushed) so a
  // second kill re-loses as little as possible; resume is idempotent
  // either way because row content is deterministic.
  for (usize i = 0; i < jobs.size(); ++i) {
    const auto it = replayable.find(i);
    if (it == replayable.end()) continue;
    try {
      outcomes[i] = outcome_from_row(*it->second, jobs[i]);
    } catch (const std::exception&) {
      continue;  // malformed row: fall through to re-simulation
    }
    sink.push_replayed(i, it->second->text);
    meter.job_resumed();
    replayed[i] = 1;
  }

  bool interrupted = false;
  // A journal write failure (disk full, device error) must not lose the
  // sweep: stop dispatching, drain, seal the partial, and rethrow the
  // I/O error with resume guidance (docs/crash_consistency.md).
  std::optional<Error> journal_failure;
  // One watchdog thread for the whole sweep when a per-attempt timeout
  // is armed; it works for the serial path too, being its own thread.
  std::optional<Watchdog> watchdog;
  if (timeout_ms_ > 0) watchdog.emplace(timeout_ms_);
  Watchdog* dog = watchdog.has_value() ? &*watchdog : nullptr;
  if (workers_ <= 1) {
    // Serial reference path: same code per job, no threads at all.
    for (usize i = 0; i < jobs.size(); ++i) {
      if (replayed[i] != 0) continue;
      if (cancelled()) {
        interrupted = true;
        break;
      }
      outcomes[i] = run_job_with_retry(jobs[i], retries_,
                                       opts_.retry_backoff_ms, run_job, dog);
      try {
        sink.push(outcomes[i]);
      } catch (Error& e) {
        journal_failure = std::move(e);
        break;
      }
      if (outcomes[i].quarantined) {
        meter.job_quarantined();
      } else {
        meter.job_done();
      }
    }
  } else {
    std::mutex done_mu;  // guards outcomes slot writes + sink + flags
    bool stop = false;   // cnt-lint: guarded-by(done_mu)
    ThreadPool pool(workers_);
    for (const Job& job : jobs) {
      if (replayed[static_cast<usize>(job.id)] != 0) continue;
      pool.submit([&, job] {
        {
          // Poll under the lock so cancel_check needs no thread safety
          // of its own and every worker agrees on the stop decision.
          std::lock_guard lock(done_mu);
          if (stop || cancelled()) {
            stop = true;
            return;
          }
        }
        JobOutcome out = run_job_with_retry(job, retries_,
                                            opts_.retry_backoff_ms, run_job,
                                            dog);
        // In-flight jobs drain even after a stop request: their rows
        // still reach the journal before the interrupt propagates.
        std::lock_guard lock(done_mu);
        const usize slot = static_cast<usize>(out.job.id);
        if (!journal_failure.has_value()) {
          try {
            sink.push(out);
            if (out.quarantined) {
              meter.job_quarantined();
            } else {
              meter.job_done();
            }
          } catch (Error& e) {
            journal_failure = std::move(e);
            stop = true;
          }
        }
        outcomes[slot] = std::move(out);
      });
    }
    pool.wait();
    pool.shutdown();
    // run_job is noexcept, so pool-level errors mean an engine bug.
    if (pool.error_count() != 0) {
      throw std::logic_error("ExperimentEngine: worker task threw");
    }
    // cnt-lint: guard-ok workers joined by shutdown(); no writer remains
    interrupted = stop && !journal_failure.has_value();
  }

  if (journal_failure.has_value()) {
    sink.close_interrupted();  // salvage buffered rows, keep the partial
    meter.finish();
    Error e = std::move(*journal_failure);
    std::string how = e.info().hint;
    if (!opts_.jsonl_path.empty()) {
      if (!how.empty()) how += "; ";
      how += "then rerun with --resume -- every journaled row is sealed in " +
             opts_.jsonl_path + ".partial";
    }
    throw std::move(e)
        .context("writing sweep journal (" + std::to_string(meter.done()) +
                 "/" + std::to_string(jobs.size()) + " jobs journaled)")
        .hint(std::move(how));
  }

  if (interrupted) {
    sink.close_interrupted();
    meter.finish();
    const std::string partial =
        opts_.jsonl_path.empty() ? "" : opts_.jsonl_path + ".partial";
    throw SweepInterrupted(meter.done(), jobs.size(), partial);
  }

  try {
    sink.finish();
  } catch (Error& e) {
    meter.finish();
    // The partial journal is complete and sealed; only the publish
    // failed. --resume replays it without re-simulating anything.
    throw std::move(e).context("publishing sweep journal");
  }
  meter.finish();
  if (opts_.progress) {
    std::cerr << meter.summary() << " [" << workers_ << " worker"
              << (workers_ == 1 ? "" : "s") << "]\n";
  }
  return outcomes;
}

usize quarantined_count(const std::vector<JobOutcome>& outcomes) noexcept {
  usize n = 0;
  for (const JobOutcome& o : outcomes) {
    if (o.quarantined) ++n;
  }
  return n;
}

int sweep_exit_code(const std::vector<JobOutcome>& outcomes) noexcept {
  if (quarantined_count(outcomes) > 0) return kExitQuarantine;
  for (const JobOutcome& o : outcomes) {
    if (!o.ok) return 1;
  }
  return 0;
}

std::vector<TagGroup> group_by_tag(const std::vector<JobOutcome>& outcomes) {
  std::vector<TagGroup> groups;
  for (const auto& o : outcomes) {
    TagGroup* g = nullptr;
    for (auto& existing : groups) {
      if (existing.tag == o.job.tag) {
        g = &existing;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(TagGroup{o.job.tag, {}});
      g = &groups.back();
    }
    g->outcomes.push_back(&o);
  }
  return groups;
}

std::vector<SimResult> results_of(
    const std::vector<const JobOutcome*>& group) {
  std::vector<SimResult> results;
  results.reserve(group.size());
  for (const JobOutcome* o : group) {
    if (!o->ok) {
      throw Error(Errc::kInternal,
                  "job failed (" + o->job.workload +
                      (o->job.tag.empty() ? "" : ", " + o->job.tag) +
                      "): " + o->error)
          .hint("inspect the job's error above; aggregate reports need "
                "every job in the group to have succeeded");
    }
    results.push_back(o->result);
  }
  return results;
}

}  // namespace cnt::exec
