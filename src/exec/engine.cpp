#include "exec/engine.hpp"

#include <chrono>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "exec/options.hpp"
#include "exec/progress.hpp"
#include "exec/thread_pool.hpp"
#include "trace/workload_suite.hpp"

namespace cnt::exec {

JobOutcome run_job(const Job& job) noexcept {
  JobOutcome out;
  out.job = job;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const Workload w = build_workload(job.workload, job.scale,
                                      job.seed_offset);
    out.result = simulate(w, job.config);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

ExperimentEngine::ExperimentEngine(EngineOptions opts)
    : opts_(std::move(opts)), workers_(resolve_jobs(opts_.jobs)) {}

std::vector<JobOutcome> ExperimentEngine::run(std::vector<Job> jobs) const {
  // The engine owns the id space: dense submission-order ids anchor both
  // the returned vector's order and the sink's reorder guarantee.
  for (usize i = 0; i < jobs.size(); ++i) jobs[i].id = static_cast<u64>(i);

  JsonlSink sink = opts_.jsonl_path.empty()
                       ? JsonlSink{}
                       : JsonlSink(opts_.jsonl_path, opts_.jsonl_timing);
  ProgressMeter meter(jobs.size(), opts_.progress);
  std::vector<JobOutcome> outcomes(jobs.size());

  if (workers_ <= 1) {
    // Serial reference path: same code per job, no threads at all.
    for (usize i = 0; i < jobs.size(); ++i) {
      outcomes[i] = run_job(jobs[i]);
      sink.push(outcomes[i]);
      meter.job_done();
    }
  } else {
    std::mutex done_mu;  // guards outcomes slot writes + sink
    ThreadPool pool(workers_);
    for (const Job& job : jobs) {
      pool.submit([&, job] {
        JobOutcome out = run_job(job);
        std::lock_guard lock(done_mu);
        const usize slot = static_cast<usize>(out.job.id);
        sink.push(out);
        outcomes[slot] = std::move(out);
        meter.job_done();
      });
    }
    pool.wait();
    pool.shutdown();
    // run_job is noexcept, so pool-level errors mean an engine bug.
    if (pool.error_count() != 0) {
      throw std::logic_error("ExperimentEngine: worker task threw");
    }
  }

  sink.finish();
  meter.finish();
  if (opts_.progress) {
    std::cerr << meter.summary() << " [" << workers_ << " worker"
              << (workers_ == 1 ? "" : "s") << "]\n";
  }
  return outcomes;
}

std::vector<TagGroup> group_by_tag(const std::vector<JobOutcome>& outcomes) {
  std::vector<TagGroup> groups;
  for (const auto& o : outcomes) {
    TagGroup* g = nullptr;
    for (auto& existing : groups) {
      if (existing.tag == o.job.tag) {
        g = &existing;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(TagGroup{o.job.tag, {}});
      g = &groups.back();
    }
    g->outcomes.push_back(&o);
  }
  return groups;
}

std::vector<SimResult> results_of(
    const std::vector<const JobOutcome*>& group) {
  std::vector<SimResult> results;
  results.reserve(group.size());
  for (const JobOutcome* o : group) {
    if (!o->ok) {
      throw std::runtime_error("job failed (" + o->job.workload +
                               (o->job.tag.empty() ? "" : ", " + o->job.tag) +
                               "): " + o->error);
    }
    results.push_back(o->result);
  }
  return results;
}

}  // namespace cnt::exec
