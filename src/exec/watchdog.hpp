// Per-attempt deadline enforcement for the ExperimentEngine
// (docs/robustness.md).
//
// One watchdog thread serves the whole engine. Every job attempt
// registers its cancellation token with watch(); if the attempt is still
// registered when --job-timeout-ms elapses, the watchdog cancels the
// token with Reason::kTimeout and the attempt observes it at its next
// cooperative poll -- a replay-batch boundary, a StreamTraceSource
// refill, or a failpoint `hang` park. The watchdog never kills threads:
// enforcement is cooperative, which is what keeps a timed-out job's
// partial state destructible and the rest of the sweep intact.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/types.hpp"

namespace cnt::exec {

class Watchdog {
 public:
  /// Starts the watchdog thread; `timeout_ms` must be > 0 (a disabled
  /// timeout means no watchdog is constructed at all).
  explicit Watchdog(u64 timeout_ms);
  ~Watchdog();  ///< stops and joins the thread
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// RAII registration: the token is watched while the guard is alive.
  /// Destroying the guard (the attempt finished) withdraws the deadline.
  class Guard {
   public:
    Guard(Guard&& other) noexcept : dog_(other.dog_), id_(other.id_) {
      other.dog_ = nullptr;
    }
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard();

   private:
    friend class Watchdog;
    Guard(Watchdog* dog, u64 id) noexcept : dog_(dog), id_(id) {}
    Watchdog* dog_;
    u64 id_;
  };

  /// Arm timeout_ms() from now for `token`; on expiry the token is
  /// cancelled with cancel::Reason::kTimeout.
  [[nodiscard]] Guard watch(std::shared_ptr<cancel::Token> token);

  [[nodiscard]] u64 timeout_ms() const noexcept { return timeout_ms_; }

 private:
  struct Entry {
    u64 id = 0;
    std::shared_ptr<cancel::Token> token;
    std::chrono::steady_clock::time_point deadline;
  };

  void loop();
  void unwatch(u64 id) noexcept;

  const u64 timeout_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;  // cnt-lint: guarded-by(mu_)
  bool stop_ = false;           // cnt-lint: guarded-by(mu_)
  u64 next_id_ = 1;             // cnt-lint: guarded-by(mu_)
  std::thread thread_;
};

}  // namespace cnt::exec
