#include "exec/watchdog.hpp"

#include <algorithm>
#include <utility>

namespace cnt::exec {

using Clock = std::chrono::steady_clock;

Watchdog::Watchdog(u64 timeout_ms) : timeout_ms_(timeout_ms) {
  thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

Watchdog::Guard::~Guard() {
  if (dog_ != nullptr) dog_->unwatch(id_);
}

Watchdog::Guard Watchdog::watch(std::shared_ptr<cancel::Token> token) {
  u64 id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    entries_.push_back(Entry{id, std::move(token),
                             Clock::now() +
                                 std::chrono::milliseconds(timeout_ms_)});
  }
  cv_.notify_one();
  return Guard(this, id);
}

void Watchdog::unwatch(u64 id) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_) return;
    if (entries_.empty()) {
      // Nothing armed: doze until watch()/~Watchdog notifies (bounded
      // slice only so a lost notify can never wedge the thread).
      cv_.wait_for(lock, std::chrono::minutes(1));
      continue;
    }
    Clock::time_point earliest = entries_.front().deadline;
    for (const Entry& e : entries_) earliest = std::min(earliest, e.deadline);
    const Clock::time_point now = Clock::now();
    if (now < earliest) {
      cv_.wait_until(lock, earliest);
      continue;  // re-evaluate: entries may have changed while waiting
    }
    for (Entry& e : entries_) {
      if (now >= e.deadline) e.token->cancel(cancel::Reason::kTimeout);
    }
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [now](const Entry& e) {
                                    return now >= e.deadline;
                                  }),
                   entries_.end());
  }
}

}  // namespace cnt::exec
