#include "exec/result_sink.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "exec/journal.hpp"

namespace cnt::exec {

namespace {

void write_row_payload(const JobOutcome& o, std::ostream& os,
                       bool include_timing) {
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("schema", kRowSchema);
  w.kv("job_id", o.job.id);
  w.kv("key", hex_u64(job_key(o.job)));
  w.kv("tag", o.job.tag);
  w.kv("workload", o.job.workload);
  w.kv("scale", o.job.scale);
  w.kv("seed_offset", o.job.seed_offset);
  w.kv("ok", o.ok);
  if (include_timing) w.kv("wall_ms", o.wall_ms);
  if (!o.ok) {
    w.kv("error", o.error);
    w.kv("attempts", o.attempts);
    if (!o.attempt_errcs.empty()) {
      w.key("attempt_errcs").begin_array();
      for (const std::string& name : o.attempt_errcs) w.value(name);
      w.end_array();
    }
    if (o.quarantined) {
      // The "Q" row: sealed and fingerprinted like every other row, but
      // ok=false, so --resume re-attempts exactly these jobs while
      // replaying clean rows byte-identically (docs/robustness.md).
      w.kv("quarantined", true);
      w.kv("reason", o.quarantine_reason);
    }
    w.end_object();
    return;
  }

  const SimResult& r = o.result;
  w.key("trace").begin_object();
  w.kv("accesses", static_cast<u64>(r.trace_stats.accesses));
  w.kv("write_fraction", r.trace_stats.write_fraction);
  w.kv("footprint_kib", r.trace_stats.footprint_kib);
  w.end_object();

  w.key("cache").begin_object();
  w.kv("accesses", r.cache_stats.accesses);
  w.kv("hits", r.cache_stats.hits());
  w.kv("misses", r.cache_stats.misses());
  w.kv("hit_rate", r.cache_stats.hit_rate());
  w.kv("writebacks", r.cache_stats.writebacks);
  w.end_object();

  w.key("energy_j").begin_object();
  for (const auto& p : r.policies) {
    w.kv(p.name, p.total().in_joules());
  }
  w.end_object();

  if (r.find(kPolicyCnt) != nullptr && r.find(kPolicyBaseline) != nullptr) {
    w.kv("saving", r.saving(kPolicyCnt));
  }
  if (r.has_fault) {
    const FaultStats& fs = r.fault_stats;
    w.key("fault").begin_object();
    w.kv("stuck_data_cells", fs.stuck_data_cells);
    w.kv("stuck_dir_cells", fs.stuck_dir_cells);
    w.kv("transient_data_flips", fs.transient_data_flips);
    w.kv("transient_dir_flips", fs.transient_dir_flips);
    w.kv("faulty_reads", fs.faulty_reads);
    w.kv("corrected_bits", fs.corrected_bits);
    w.kv("detected_events", fs.detected_events);
    w.kv("silent_bits", fs.silent_bits);
    w.kv("dir_flips", fs.dir_flips);
    w.kv("dir_corrected_bits", fs.dir_corrected_bits);
    w.kv("dir_detected_events", fs.dir_detected_events);
    w.kv("dir_silent_bits", fs.dir_silent_bits);
    w.end_object();
  }
  for (const auto& p : r.policies) {
    if (!p.has_cnt_stats) continue;
    w.key("cnt").begin_object();
    w.kv("windows_evaluated", p.cnt_stats.windows_evaluated);
    w.kv("reencodes_applied", p.cnt_stats.reencodes_applied);
    w.kv("fill_inversions", p.cnt_stats.fill_inversions);
    w.kv("fifo_pushed", p.queue_stats.pushed);
    w.kv("fifo_drops", p.queue_stats.dropped_full);
    w.end_object();
    break;
  }
  w.end_object();
}

}  // namespace

void write_jsonl_row(const JobOutcome& o, std::ostream& os,
                     bool include_timing) {
  std::ostringstream payload;
  write_row_payload(o, payload, include_timing);
  os << seal_line(payload.str());
}

JsonlSink::JsonlSink(const std::string& path, bool include_timing)
    : include_timing_(include_timing),
      path_(path),
      partial_path_(path + ".partial") {
  // Incremental-durable (docs/crash_consistency.md): rows go straight
  // to the partial file as checked writes; finish() publishes.
  file_.emplace(partial_path_, "journal");
}

JsonlSink::JsonlSink(std::ostream& os, bool include_timing)
    : os_(&os), include_timing_(include_timing) {}

void JsonlSink::write_line(std::string line) {
  line += '\n';
  if (file_.has_value()) {
    // One checked write per row: a killed sweep keeps every completed
    // row on disk, and a failed write throws instead of truncating.
    file_->write(line);
  } else if (os_ != nullptr) {
    *os_ << line;
    os_->flush();
  }
}

void JsonlSink::write_header(u64 fingerprint, u64 jobs) {
  if (header_written_ || next_id_ != 0 || !pending_.empty()) {
    throw std::logic_error("JsonlSink: header must precede every row");
  }
  header_written_ = true;
  if (!enabled()) return;
  write_line(make_header_line(fingerprint, jobs));
}

void JsonlSink::emit(const Entry& entry) {
  if (enabled()) {
    if (entry.replay) {
      write_line(entry.raw);
    } else {
      std::ostringstream row;
      write_jsonl_row(entry.outcome, row, include_timing_);
      write_line(row.str());
    }
  }
  ++next_id_;
}

void JsonlSink::enqueue(u64 id, Entry entry) {
  if (id < next_id_ || pending_.count(id) != 0) {
    throw std::logic_error("JsonlSink: duplicate job id " +
                           std::to_string(id));
  }
  if (id != next_id_) {
    pending_.emplace(id, std::move(entry));
    return;
  }
  emit(entry);
  // Flush the contiguous prefix the new row may have completed.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == next_id_) {
    emit(it->second);
    it = pending_.erase(it);
  }
}

void JsonlSink::push(JobOutcome outcome) {
  const u64 id = outcome.job.id;
  Entry entry;
  entry.outcome = std::move(outcome);
  enqueue(id, std::move(entry));
}

void JsonlSink::push_replayed(u64 id, std::string sealed_row) {
  Entry entry;
  entry.replay = true;
  entry.raw = std::move(sealed_row);
  enqueue(id, std::move(entry));
}

void JsonlSink::finish() {
  if (!pending_.empty()) {
    throw std::logic_error(
        "JsonlSink: " + std::to_string(pending_.size()) +
        " outcome(s) still buffered; first gap at job id " +
        std::to_string(next_id_));
  }
  if (os_ != nullptr) os_->flush();
  if (file_.has_value()) {
    // Atomic publish: fsync the rows, then rename -- readers of path_
    // see the old file or the complete new one, never a torn
    // intermediate. Failpoint sites journal.sync / journal.rename.
    file_->sync();
    file_->close();
    file_.reset();
    try {
      io::rename_file(partial_path_, path_, "journal");
    } catch (Error& e) {
      throw std::move(e).hint(
          "the partial file with every completed row is still on disk; "
          "check permissions on the destination");
    }
  }
}

void JsonlSink::close_interrupted() {
  // Rows stuck behind a gap are still valid journal entries: resume
  // matches rows by (job_id, key), not by file position, so emit them
  // out of order rather than losing finished work. On a full disk the
  // drain salvages what it can -- secondary write failures must not
  // mask the error that triggered the shutdown.
  for (auto& [id, entry] : pending_) {
    try {
      emit(entry);
    } catch (const Error&) {
      ++next_id_;  // row lost; --resume will re-simulate it
    }
  }
  pending_.clear();
  if (os_ != nullptr) os_->flush();
  if (file_.has_value()) {
    try {
      file_->sync();
      file_->close();
    } catch (const Error&) {
      // best-effort seal; the partial keeps whatever reached the disk
    }
    file_.reset();  // keep <path>.partial for --resume
    os_ = nullptr;
  }
}

}  // namespace cnt::exec
