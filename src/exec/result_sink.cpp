#include "exec/result_sink.hpp"

#include <stdexcept>
#include <utility>

#include "common/json.hpp"

namespace cnt::exec {

void write_jsonl_row(const JobOutcome& o, std::ostream& os,
                     bool include_timing) {
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("schema", "cnt-exec-v1");
  w.kv("job_id", o.job.id);
  w.kv("tag", o.job.tag);
  w.kv("workload", o.job.workload);
  w.kv("scale", o.job.scale);
  w.kv("seed_offset", o.job.seed_offset);
  w.kv("ok", o.ok);
  if (include_timing) w.kv("wall_ms", o.wall_ms);
  if (!o.ok) {
    w.kv("error", o.error);
    w.end_object();
    return;
  }

  const SimResult& r = o.result;
  w.key("trace").begin_object();
  w.kv("accesses", static_cast<u64>(r.trace_stats.accesses));
  w.kv("write_fraction", r.trace_stats.write_fraction);
  w.kv("footprint_kib", r.trace_stats.footprint_kib);
  w.end_object();

  w.key("cache").begin_object();
  w.kv("accesses", r.cache_stats.accesses);
  w.kv("hits", r.cache_stats.hits());
  w.kv("misses", r.cache_stats.misses());
  w.kv("hit_rate", r.cache_stats.hit_rate());
  w.kv("writebacks", r.cache_stats.writebacks);
  w.end_object();

  w.key("energy_j").begin_object();
  for (const auto& p : r.policies) {
    w.kv(p.name, p.total().in_joules());
  }
  w.end_object();

  if (r.find(kPolicyCnt) != nullptr && r.find(kPolicyBaseline) != nullptr) {
    w.kv("saving", r.saving(kPolicyCnt));
  }
  for (const auto& p : r.policies) {
    if (!p.has_cnt_stats) continue;
    w.key("cnt").begin_object();
    w.kv("windows_evaluated", p.cnt_stats.windows_evaluated);
    w.kv("reencodes_applied", p.cnt_stats.reencodes_applied);
    w.kv("fill_inversions", p.cnt_stats.fill_inversions);
    w.kv("fifo_pushed", p.queue_stats.pushed);
    w.kv("fifo_drops", p.queue_stats.dropped_full);
    w.end_object();
    break;
  }
  w.end_object();
}

JsonlSink::JsonlSink(const std::string& path, bool include_timing)
    : file_(path), include_timing_(include_timing), path_(path) {
  if (!file_) {
    throw std::runtime_error("JsonlSink: cannot open " + path);
  }
  os_ = &file_;
}

JsonlSink::JsonlSink(std::ostream& os, bool include_timing)
    : os_(&os), include_timing_(include_timing) {}

void JsonlSink::emit(const JobOutcome& o) {
  if (os_ != nullptr) {
    write_jsonl_row(o, *os_, include_timing_);
    *os_ << '\n';
  }
  ++next_id_;
}

void JsonlSink::push(JobOutcome outcome) {
  if (outcome.job.id < next_id_ || pending_.count(outcome.job.id) != 0) {
    throw std::logic_error("JsonlSink: duplicate job id " +
                           std::to_string(outcome.job.id));
  }
  if (outcome.job.id != next_id_) {
    pending_.emplace(outcome.job.id, std::move(outcome));
    return;
  }
  emit(outcome);
  // Flush the contiguous prefix the new row may have completed.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first == next_id_) {
    emit(it->second);
    it = pending_.erase(it);
  }
}

void JsonlSink::finish() {
  if (!pending_.empty()) {
    throw std::logic_error(
        "JsonlSink: " + std::to_string(pending_.size()) +
        " outcome(s) still buffered; first gap at job id " +
        std::to_string(next_id_));
  }
  if (os_ != nullptr) os_->flush();
}

}  // namespace cnt::exec
