// Declarative description of a batch of simulations.
//
// A SweepSpec is the experiment-side grammar of the engine: a base
// SimConfig, one or more named parameter axes (each a list of labelled
// values plus a function that applies a value to the config), a workload
// list, and optional seed offsets for statistical replication. expand()
// multiplies it all out into a flat, deterministically-ordered vector of
// Jobs -- axis values outermost (first axis slowest), then seed offsets,
// then workloads in canonical suite order -- so a parallel run can be
// compared row-for-row against any serial loop that nests the same way.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/runner.hpp"

namespace cnt::exec {

/// One simulation to run: a workload name (resolved via
/// build_workload()), the full SimConfig, a scale factor, a seed offset,
/// and a human-readable axis tag like "window=15". `id` is the
/// submission-order index; the engine reassigns it densely from 0, and
/// the JSONL sink keys its ordering guarantee on it.
struct Job {
  u64 id = 0;
  std::string workload;
  std::string tag;
  SimConfig config;
  double scale = 1.0;
  u64 seed_offset = 0;
};

class SweepSpec {
 public:
  /// Base configuration every job starts from (default: SimConfig{}).
  SweepSpec& base(const SimConfig& cfg);

  /// Workload scale factor for every job (default 1.0).
  SweepSpec& scale(double s);

  /// Append one workload by suite name.
  SweepSpec& workload(const std::string& name);

  /// Replace the workload list.
  SweepSpec& workloads(std::vector<std::string> names);

  /// Use the whole default suite (also the fallback when no workload was
  /// named before expand()).
  SweepSpec& suite();

  /// Seed offsets to replicate over (default {0}, the canonical traces).
  SweepSpec& seed_offsets(std::vector<u64> offsets);

  /// Core axis form: `labels[i]` names value i in tags; `apply(cfg, i)`
  /// mutates the config for value i.
  SweepSpec& axis(std::string name, std::vector<std::string> labels,
                  std::function<void(SimConfig&, usize)> apply);

  /// Integer axis: tags as "name=value", apply receives the value.
  SweepSpec& axis(std::string name, const std::vector<usize>& values,
                  std::function<void(SimConfig&, usize)> apply);

  /// Real-valued axis: tags as "name=value" with %g formatting.
  SweepSpec& axis(std::string name, const std::vector<double>& values,
                  std::function<void(SimConfig&, double)> apply);

  /// Number of jobs expand() will produce.
  [[nodiscard]] usize job_count() const;

  /// Multiply the grid out into jobs with dense ids 0..job_count()-1.
  [[nodiscard]] std::vector<Job> expand() const;

 private:
  struct Axis {
    std::string name;
    std::vector<std::string> labels;
    std::function<void(SimConfig&, usize)> apply;  // by value index
  };

  [[nodiscard]] std::vector<std::string> effective_workloads() const;

  SimConfig base_{};
  double scale_ = 1.0;
  std::vector<std::string> workloads_;
  std::vector<u64> seed_offsets_{0};
  std::vector<Axis> axes_;
};

}  // namespace cnt::exec
