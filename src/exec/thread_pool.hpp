// Fixed-size worker pool over a JobQueue.
//
// Design constraints (see docs/experiment_engine.md):
//  - graceful shutdown: close the queue, let workers drain every task
//    already submitted, then join -- no task is abandoned;
//  - exception capture: a task that throws never takes down a worker (or
//    the process); the error text is recorded and retrievable, and the
//    pool keeps executing the rest of the batch;
//  - wait() without shutdown: a batch driver can block until the pool is
//    idle, harvest results, and submit the next batch on the same threads.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "exec/job_queue.hpp"

namespace cnt::exec {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 picks the hardware concurrency (>= 1).
  explicit ThreadPool(usize threads = 0);

  /// Graceful shutdown (drains queued tasks) and join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::logic_error after shutdown().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished (the pool is idle).
  /// The pool stays usable: more tasks may be submitted afterwards.
  void wait();

  /// Stop accepting tasks, finish everything already queued, join all
  /// workers. Idempotent; also run by the destructor.
  void shutdown();

  [[nodiscard]] usize thread_count() const noexcept {
    return workers_.size();
  }

  /// Number of tasks whose exception was captured so far.
  [[nodiscard]] usize error_count() const;

  /// Return and clear the captured error messages (submission-completion
  /// order is not guaranteed across workers).
  [[nodiscard]] std::vector<std::string> take_errors();

  /// Hardware concurrency clamped to at least 1.
  [[nodiscard]] static usize hardware_threads() noexcept;

 private:
  void worker_loop();

  JobQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;            // guards pending_, errors_
  std::condition_variable idle_cv_;  // signalled when pending_ hits 0
  usize pending_ = 0;                // cnt-lint: guarded-by(mu_)
  std::vector<std::string> errors_;  // cnt-lint: guarded-by(mu_)
  bool shut_down_ = false;           // cnt-lint: guarded-by(mu_)
};

}  // namespace cnt::exec
