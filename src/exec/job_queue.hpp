// Bounded-by-nothing MPMC job queue: the hand-off point between the
// experiment engine (producer) and the worker threads of a ThreadPool
// (consumers).
//
// Semantics chosen for batch experiment execution rather than generic
// concurrency: FIFO order (submission order is the determinism anchor for
// the JSONL sink downstream), blocking pop with a closed-and-drained
// terminal state (workers exit by observing std::nullopt, so shutdown is
// graceful -- every job already queued still runs), and push-after-close
// returning false instead of throwing (a racing producer learns the batch
// is over without an exception crossing thread boundaries).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/types.hpp"

namespace cnt::exec {

template <typename T>
class JobQueue {
 public:
  JobQueue() = default;
  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueue one item. Returns false (item dropped) once close() was
  /// called.
  bool push(T item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue in FIFO order. Returns std::nullopt only when the
  /// queue is closed *and* fully drained -- the consumer's exit signal.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mu_);
    // Woken by every push() and by close(); the queue owner closes it
    // on shutdown/cancellation, so the park is bounded by the
    // producer's lifetime, not a timer.
    // cnt-lint: wait-ok closed-or-nonempty predicate, producer-bounded
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking dequeue; std::nullopt when currently empty.
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stop accepting work and wake every blocked consumer. Items already
  /// queued are still handed out; pop() drains before reporting nullopt.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] usize size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;  // cnt-lint: guarded-by(mu_)
  bool closed_ = false;  // cnt-lint: guarded-by(mu_)
};

}  // namespace cnt::exec
