// Crash-safe journal layer for engine-driven sweeps.
//
// A journal is the engine's JSONL telemetry file hardened for resume:
//  - line 0 is a sealed header recording the schema, the SweepSpec
//    fingerprint (hash of every job key, in submission order), and the
//    job count;
//  - every row carries a stable job key (hash of the job's full identity:
//    workload, tag, scale, seed offset, and the complete SimConfig) plus
//    a CRC-32 line checksum, appended as the final `"crc"` field;
//  - while a sweep runs, rows stream (with per-row flush) into
//    `<path>.partial`; only a completed sweep atomically renames the
//    partial onto `<path>`, so readers of `<path>` never observe a torn
//    file and a killed sweep leaves every finished row on disk.
//
// Resume (`--resume` / $CNT_RESUME) loads the partial (or final) journal,
// truncates any torn/corrupt tail at the first line that fails its
// checksum, rejects a header whose fingerprint does not match the
// relaunched sweep, and reconstructs a JobOutcome per valid `ok` row so
// only the missing jobs are re-simulated. Full semantics:
// docs/resumable_sweeps.md.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/types.hpp"
#include "exec/result_sink.hpp"
#include "exec/sweep.hpp"

namespace cnt::exec {

inline constexpr std::string_view kRowSchema = "cnt-exec-v2";
inline constexpr std::string_view kHeaderSchema = "cnt-exec-journal-v1";

/// Stable fingerprint of a complete SimConfig (cache geometry and
/// policies, both technology parameter sets, the CNT policy config, and
/// the enabled comparison policies). Platform- and run-independent.
[[nodiscard]] u64 config_fingerprint(const SimConfig& cfg) noexcept;

/// Stable identity of one job: workload, tag, scale, seed offset and the
/// config fingerprint. Deliberately excludes the submission id so the key
/// survives re-expansion of the same spec.
[[nodiscard]] u64 job_key(const Job& job) noexcept;

/// Fingerprint of a whole batch: the job count plus every job key in
/// submission order. Two SweepSpecs expand to the same fingerprint iff
/// they describe the same sweep.
[[nodiscard]] u64 sweep_fingerprint(const std::vector<Job>& jobs) noexcept;

/// Seal one serialized JSON object (`{...}`, no trailing newline) by
/// appending a final `"crc"` field whose CRC-32 covers every byte before
/// it. The result is still a single well-formed JSON object.
[[nodiscard]] std::string seal_line(std::string payload);

/// Verify a sealed line's checksum. True iff the line ends with a
/// well-formed `,"crc":"xxxxxxxx"}` suffix matching the preceding bytes.
[[nodiscard]] bool check_sealed_line(std::string_view line) noexcept;

/// Serialize + seal the journal header for a batch.
[[nodiscard]] std::string make_header_line(u64 fingerprint, u64 jobs);

/// One validated row of a loaded journal.
struct JournalRow {
  u64 job_id = 0;
  u64 key = 0;
  bool ok = false;
  std::string text;   ///< the exact sealed line (for byte-identical replay)
  JsonValue fields;   ///< parsed row for outcome reconstruction
};

/// A journal read back from disk. `rows` holds the valid prefix; loading
/// stops at the first line that fails its checksum or does not parse
/// (torn-tail truncation) and counts the discarded lines. If any *later*
/// line still carries a valid seal, the bad line is not a torn tail but
/// damage inside the file: `mid_file_corruption` is set along with the
/// 0-based row index and 1-based line number of the first bad line, and
/// resume must refuse (see journal_corruption_error()).
struct JournalData {
  bool header_ok = false;
  u64 fingerprint = 0;
  u64 jobs_declared = 0;
  std::vector<JournalRow> rows;
  usize dropped_lines = 0;
  bool mid_file_corruption = false;
  usize corrupt_row_index = 0;  ///< 0-based row index of the first bad line
  u64 corrupt_line = 0;         ///< 1-based line number of the first bad line
  std::string source_path;  ///< the file actually read ("" if none found)
};

/// Read a journal from an open stream. Returns false when the first line
/// is missing or is not a valid sealed header (out is then unspecified).
/// Never throws on corrupt content -- corruption only shrinks the usable
/// prefix and sets the corruption fields. Lines longer than
/// `limits.max_line_bytes` and rows beyond `limits.max_records` are
/// treated as corruption at that point.
bool read_journal(std::istream& is, const std::string& source,
                  JournalData& out,
                  const ParseLimits& limits = kDefaultLimits);

/// Load `<jsonl_path>.partial` if it holds a valid header, else
/// `<jsonl_path>` itself, else an empty JournalData (header_ok = false).
/// Never throws on corrupt content -- corruption only shrinks the usable
/// prefix.
[[nodiscard]] JournalData load_journal(const std::string& jsonl_path);

/// The structured error a resume must raise for a mid-file-corrupt
/// journal (Errc::kChecksum, row index + line number + path + hint), or
/// nullopt when the journal is clean or merely torn at the tail.
[[nodiscard]] std::optional<Error> journal_corruption_error(
    const JournalData& journal);

/// Reconstruct the outcome of a journaled `ok` row for `job`. The result
/// carries exact per-policy energy totals, cache/trace counters and CNT
/// stats as written (doubles round-trip bit-exactly), with each policy's
/// total in a single ledger category -- aggregate reports (savings, CSV
/// rows) are bit-identical to the original run; per-category breakdowns
/// are not available from a journal. Throws std::runtime_error on a row
/// missing required fields.
[[nodiscard]] JobOutcome outcome_from_row(const JournalRow& row,
                                          const Job& job);

}  // namespace cnt::exec
