// Functional statistics for one cache.
#pragma once

#include "common/types.hpp"

namespace cnt {

struct CacheStats {
  u64 accesses = 0;
  u64 read_hits = 0;
  u64 read_misses = 0;
  u64 write_hits = 0;
  u64 write_misses = 0;
  u64 write_arounds = 0;
  u64 fills = 0;
  u64 evictions = 0;
  u64 writebacks = 0;  ///< dirty evictions reaching the next level

  [[nodiscard]] u64 hits() const noexcept { return read_hits + write_hits; }
  [[nodiscard]] u64 misses() const noexcept {
    return read_misses + write_misses;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    const u64 total = hits() + misses();
    return total == 0 ? 0.0
                      : static_cast<double>(hits()) /
                            static_cast<double>(total);
  }
};

}  // namespace cnt
