// Backing-store model: sparse paged main memory plus the line-granular
// interface caches use to talk to the level below them.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace cnt {

/// The downstream interface of a cache: line fills/writebacks plus word
/// writes (for write-through / write-around traffic).
class MemoryLevel {
 public:
  virtual ~MemoryLevel() = default;

  /// Fetch `out.size()` bytes starting at line-aligned `line_addr`.
  virtual void read_line(u64 line_addr, std::span<u8> out) = 0;
  /// Store a full line at line-aligned `line_addr` (writeback).
  virtual void write_line(u64 line_addr, std::span<const u8> data) = 0;
  /// Store a single word (write-through / no-allocate write miss path).
  virtual void write_word(u64 addr, u64 value, u8 size) = 0;
};

/// Sparse paged memory image. Unwritten bytes read as zero. Tracks traffic
/// counters so experiments can report line fills / writebacks reaching DRAM.
class MainMemory final : public MemoryLevel {
 public:
  static constexpr usize kPageBytes = 4096;

  MainMemory() = default;

  /// Load a workload's initial data segments.
  void load(const Workload& w);
  void load_segment(const MemorySegment& seg);

  void read_line(u64 line_addr, std::span<u8> out) override;
  void write_line(u64 line_addr, std::span<const u8> data) override;
  void write_word(u64 addr, u64 value, u8 size) override;

  /// Direct byte access (test/introspection helpers; no traffic counted).
  [[nodiscard]] u8 peek(u64 addr) const;
  void poke(u64 addr, u8 value);
  [[nodiscard]] u64 peek_word(u64 addr, u8 size) const;

  [[nodiscard]] u64 line_reads() const noexcept { return line_reads_; }
  [[nodiscard]] u64 line_writes() const noexcept { return line_writes_; }
  [[nodiscard]] u64 word_writes() const noexcept { return word_writes_; }
  [[nodiscard]] usize resident_pages() const noexcept { return pages_.size(); }

 private:
  void copy_in(u64 addr, const u8* src, usize n);
  [[nodiscard]] std::vector<u8>& page(u64 addr);
  [[nodiscard]] const std::vector<u8>* page_if_present(u64 addr) const;

  std::unordered_map<u64, std::vector<u8>> pages_;
  u64 line_reads_ = 0;
  u64 line_writes_ = 0;
  u64 word_writes_ = 0;
};

}  // namespace cnt
