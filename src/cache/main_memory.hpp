// Backing-store model: sparse paged main memory plus the line-granular
// interface caches use to talk to the level below them.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <span>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/memory_segment.hpp"
#include "common/types.hpp"

namespace cnt {

/// The downstream interface of a cache: line fills/writebacks plus word
/// writes (for write-through / write-around traffic).
class MemoryLevel {
 public:
  virtual ~MemoryLevel() = default;

  /// Fetch `out.size()` bytes starting at line-aligned `line_addr`.
  virtual void read_line(u64 line_addr, std::span<u8> out) = 0;
  /// Store a full line at line-aligned `line_addr` (writeback).
  virtual void write_line(u64 line_addr, std::span<const u8> data) = 0;
  /// Store a single word (write-through / no-allocate write miss path).
  virtual void write_word(u64 addr, u64 value, u8 size) = 0;
};

/// Sparse paged memory image. Unwritten bytes read as zero. Tracks traffic
/// counters so experiments can report line fills / writebacks reaching DRAM.
///
/// Pages live in one growable store indexed through a flat hash table
/// (page number -> store slot), with a one-entry cache of the last page
/// touched: fills and writebacks stream over lines, so consecutive
/// accesses nearly always land on the same 4 KiB page and skip the probe
/// entirely. Inner page buffers never move once allocated, so the cached
/// pointer stays valid as the store grows.
class MainMemory final : public MemoryLevel {
 public:
  static constexpr usize kPageBytes = 4096;

  MainMemory() = default;

  /// Load a set of initial data segments (a workload's init image).
  void load(std::span<const MemorySegment> segments);
  void load_segment(const MemorySegment& seg);

  // The line/word interface is defined in-class: MainMemory is final, so
  // a caller holding a MainMemory* (the Cache keeps one when its next
  // level is the backing store) devirtualizes these and inlines the page
  // probe + copy straight into its miss path.
  void read_line(u64 line_addr, std::span<u8> out) override {
    assert(line_addr % out.size() == 0);
    ++line_reads_;
    u64 addr = line_addr;
    usize off = 0;
    while (off < out.size()) {
      const usize page_off = addr % kPageBytes;
      const usize chunk = std::min(kPageBytes - page_off, out.size() - off);
      if (const u8* pg = page_if_present(addr)) {
        std::memcpy(out.data() + off, pg + page_off, chunk);
      } else {
        std::memset(out.data() + off, 0, chunk);
      }
      addr += chunk;
      off += chunk;
    }
  }
  void write_line(u64 line_addr, std::span<const u8> data) override {
    assert(line_addr % data.size() == 0);
    ++line_writes_;
    u64 addr = line_addr;
    usize off = 0;
    while (off < data.size()) {
      u8* pg = page(addr);
      const usize page_off = addr % kPageBytes;
      const usize chunk = std::min(kPageBytes - page_off, data.size() - off);
      std::memcpy(pg + page_off, data.data() + off, chunk);
      addr += chunk;
      off += chunk;
    }
  }
  void write_word(u64 addr, u64 value, u8 size) override {
    assert(size <= 8 && addr % size == 0);
    ++word_writes_;
    u8* pg = page(addr);
    const usize page_off = addr % kPageBytes;
    // Natural alignment guarantees the word does not straddle a page.
    for (usize b = 0; b < size; ++b) {
      pg[page_off + b] = static_cast<u8>(value >> (8 * b));
    }
  }

  /// Direct byte access (test/introspection helpers; no traffic counted).
  [[nodiscard]] u8 peek(u64 addr) const;
  void poke(u64 addr, u8 value);
  [[nodiscard]] u64 peek_word(u64 addr, u8 size) const;

  /// Hint that the line at `addr` is about to be filled: pull its backing
  /// page bytes toward the CPU caches without touching any state or
  /// counters. The replay loop issues this a few accesses ahead (see
  /// docs/performance.md) so a miss's fill copy does not stall on DRAM.
  void prefetch_line(u64 addr, usize line_bytes) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const u32* slot = page_index_.find(addr / kPageBytes);
    if (slot != nullptr) {
      const u8* p = page_store_[*slot].data() + (addr % kPageBytes);
      for (usize i = 0; i < line_bytes; i += 64) __builtin_prefetch(p + i, 0, 1);
    }
#else
    (void)addr;
    (void)line_bytes;
#endif
  }

  [[nodiscard]] u64 line_reads() const noexcept { return line_reads_; }
  [[nodiscard]] u64 line_writes() const noexcept { return line_writes_; }
  [[nodiscard]] u64 word_writes() const noexcept { return word_writes_; }
  [[nodiscard]] usize resident_pages() const noexcept {
    return page_store_.size();
  }

 private:
  void copy_in(u64 addr, const u8* src, usize n);
  /// Page buffer for `addr`, allocated (zeroed) on first touch.
  [[nodiscard]] u8* page(u64 addr) {
    const u64 pn = addr / kPageBytes;
    if (pn == cached_page_no_) return cached_page_;
    return page_slow(addr);
  }
  [[nodiscard]] u8* page_slow(u64 addr);
  /// Page buffer for `addr`, or nullptr when never written (hot variant;
  /// maintains the last-page cache).
  [[nodiscard]] u8* page_if_present(u64 addr) {
    const u64 pn = addr / kPageBytes;
    if (pn == cached_page_no_) return cached_page_;
    const u32* slot = page_index_.find(pn);
    if (slot == nullptr) return nullptr;
    cached_page_no_ = pn;
    cached_page_ = page_store_[*slot].data();
    return cached_page_;
  }
  /// Cold const variant for peek(); does not touch the cache.
  [[nodiscard]] const u8* page_if_present(u64 addr) const;

  U64Map<u32> page_index_;                  ///< page number -> store slot
  std::vector<std::vector<u8>> page_store_;
  // Last page touched (page number + buffer). ~0 never collides: page
  // numbers are addr / 4096 and addresses are at most 64-bit.
  u64 cached_page_no_ = ~u64{0};
  u8* cached_page_ = nullptr;

  u64 line_reads_ = 0;
  u64 line_writes_ = 0;
  u64 word_writes_ = 0;
};

}  // namespace cnt
