#include "cache/cache.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/bits.hpp"

namespace cnt {

namespace {

// All-words-dirty mask for a line of `line_bytes`.
u64 full_dirty_mask(usize line_bytes) {
  const usize words = line_bytes / 8;
  return words >= 64 ? ~0ULL : (1ULL << words) - 1;
}

u64 load_word(std::span<const u8> line, u32 offset, u8 size) {
  u64 v = 0;
  for (usize b = 0; b < size; ++b) {
    v |= static_cast<u64>(line[offset + b]) << (8 * b);
  }
  return v;
}

void store_word(std::span<u8> line, u32 offset, u8 size, u64 value) {
  if constexpr (std::endian::native == std::endian::little) {
    // `value`'s memory image already is the little-endian byte sequence
    // the loop below would store.
    std::memcpy(line.data() + offset, &value, size);
    return;
  }
  for (usize b = 0; b < size; ++b) {
    line[offset + b] = static_cast<u8>(value >> (8 * b));
  }
}

}  // namespace

Cache::Cache(CacheConfig cfg, MemoryLevel& next)
    : cfg_(std::move(cfg)),
      next_(next),
      direct_mem_(dynamic_cast<MainMemory*>(&next)) {
  cfg_.validate();
  if (cfg_.ways > 64) {
    // The per-set valid/dirty bit masks hold one bit per way.
    throw std::invalid_argument(cfg_.name + ": at most 64 ways supported");
  }
  ways_ = cfg_.ways;
  line_bytes_ = cfg_.line_bytes;
  offset_bits_ = cfg_.offset_bits();
  set_bits_ = cfg_.set_bits();
  set_mask_ = cfg_.sets() - 1;
  tag_state_bits_ = cfg_.tag_bits() + 2;  // tag + valid + dirty

  const usize n = cfg_.sets() * ways_;
  tags_.assign(n, 0);
  valid_mask_.assign(cfg_.sets(), 0);
  dirty_mask_.assign(cfg_.sets(), 0);
  dirty_words_.assign(n, 0);
  data_.assign(n * line_bytes_, 0);

  repl_ = make_replacement(cfg_.replacement, cfg_.sets(), cfg_.ways,
                           cfg_.replacement_seed);
  direct_lru_ = dynamic_cast<LruPolicy*>(repl_.get());
  mru_way_.assign(cfg_.sets(), 0);
  scratch_before_.assign(line_bytes_, 0);
  zeros_.assign(line_bytes_, 0);
}

void Cache::add_sink(AccessSink& sink) { sinks_.push_back(&sink); }

void Cache::access(const MemAccess& a) {
  assert(a.valid());
  assert(cfg_.offset_of(a.addr) + a.size <= line_bytes_);
  access_impl(a.addr, a.op, cfg_.offset_of(a.addr), a.size, a.value, {});
}

void Cache::read_line(u64 line_addr, std::span<u8> out) {
  assert(out.size() == line_bytes_);
  access_impl(line_addr, MemOp::kRead, 0, 0, 0, {});
  // After the access the line is resident (read misses always allocate);
  // copy it out.
  const u32 set = static_cast<u32>((line_addr >> offset_bits_) & set_mask_);
  const u32 way = lookup(set, line_addr >> (offset_bits_ + set_bits_));
  assert(way < ways_ && "line missing after read fill");
  std::memcpy(out.data(), line_data(set, way).data(), line_bytes_);
}

void Cache::write_line(u64 line_addr, std::span<const u8> data) {
  assert(data.size() == line_bytes_);
  access_impl(line_addr, MemOp::kWrite, 0, 0, 0, data);
}

void Cache::write_word(u64 addr, u64 value, u8 size) {
  access_impl(addr, MemOp::kWrite, cfg_.offset_of(addr), size, value, {});
}

// cnt-hot
void Cache::access_impl(u64 addr, MemOp op, u32 offset, u8 size, u64 value,
                        std::span<const u8> full_line_data) {
  const u32 set = static_cast<u32>((addr >> offset_bits_) & set_mask_);
  const u64 tag = addr >> (offset_bits_ + set_bits_);
  const bool is_write = op == MemOp::kWrite;
  ++stats_.accesses;

  // Reuse one event object across accesses instead of zero-initializing
  // all of AccessEvent per call: the fields every path assigns are set
  // below (or in the taken branch), and the conditionally-written ones are
  // reset here. Sinks may not retain the event past the callback (see
  // events.hpp), so carrying the object over is invisible to them.
  AccessEvent& ev = scratch_ev_;
  ev.op = op;
  ev.addr = addr;
  ev.set = set;
  ev.offset = offset;
  ev.size = size;
  ev.tag = tag;
  ev.tag_bits_written = 0;
  ev.tag_ones_written = 0;
  ev.evicted_valid = false;
  ev.evicted_dirty = false;
  ev.evicted_tag = 0;
  ev.evicted_dirty_words = 0;
  ev.fault = LineFaultReport{};

  const u32 hit_way = probe_tags(set, tag, ev);
  if (hit_way < ways_) {
    // --- Hit ---
    const u32 w = hit_way;
    std::span<u8> stored = line_data(set, w);
    if (is_write) {
      // The before image must survive the mutation below: copy it out.
      std::memcpy(scratch_before_.data(), stored.data(), line_bytes_);
      if (!full_line_data.empty()) {
        std::memcpy(stored.data(), full_line_data.data(), line_bytes_);
      } else {
        store_word(stored, offset, size, value);
      }
      if (cfg_.write_policy == WritePolicy::kWriteBack) {
        dirty_mask_[set] |= u64{1} << w;
        dirty_words_[line_index(set, w)] |=
            full_line_data.empty() ? (1ULL << (offset / 8))
                                   : full_dirty_mask(line_bytes_);
      } else {
        // Write-through: forward immediately; line stays clean.
        if (!full_line_data.empty()) {
          next_write_line(cfg_.line_addr(addr), stored);
        } else {
          next_write_word(addr, value, size);
        }
      }
      ++stats_.write_hits;
      ev.kind = AccessKind::kWriteHit;
      ev.line_before = scratch_before_;
    } else {
      if (fault_hook_ != nullptr) {
        // The demand read senses the array: faults manifest here, and
        // whatever the protection scheme misses is what the CPU gets.
        ev.fault.add(fault_hook_->on_read(set, w, stored));
      }
      ++stats_.read_hits;
      ev.kind = AccessKind::kReadHit;
      // A read leaves the line untouched (faults above mutate it before
      // the "before" image is taken), so before == after: alias the
      // stored line instead of copying it.
      ev.line_before = stored;
    }
    repl_on_access(set, w);
    mru_way_[set] = w;
    ev.way = w;
    ev.line_after = line_data(set, w);
    ev.idle_slots = idle_slots_for(/*miss=*/false);
    emit(ev);
    return;
  }

  // --- Miss ---
  if (is_write && cfg_.alloc_policy == AllocPolicy::kNoWriteAllocate) {
    if (!full_line_data.empty()) {
      next_write_line(cfg_.line_addr(addr), full_line_data);
    } else {
      next_write_word(addr, value, size);
    }
    ++stats_.write_arounds;
    ++stats_.write_misses;
    ev.kind = AccessKind::kWriteAround;
    ev.way = 0;
    ev.line_before = {};
    ev.line_after = {};
    ev.idle_slots = idle_slots_for(/*miss=*/true);
    emit(ev);
    return;
  }

  const u32 victim = choose_victim(set);
  const usize li = line_index(set, victim);
  std::span<u8> stored = line_data(set, victim);

  // Previous occupant -> line_before / eviction bookkeeping. Only a dirty
  // victim's before image is ever read (the writeback pricing); clean and
  // cold evictions alias the shared zero line and skip the copy.
  std::span<const u8> before = zeros_;
  if (is_valid(set, victim)) {
    const bool victim_dirty = is_dirty(set, victim);
    if (victim_dirty) {
      if (fault_hook_ != nullptr &&
          cfg_.write_policy == WritePolicy::kWriteBack) {
        // The writeback reads the victim out of the array; silent
        // corruption rides down the hierarchy with it.
        ev.fault.add(fault_hook_->on_read(set, victim, stored));
      }
      std::memcpy(scratch_before_.data(), stored.data(), line_bytes_);
      before = scratch_before_;
      ev.evicted_dirty = true;
      ev.evicted_dirty_words = cfg_.sector_writeback
                                   ? dirty_words_[li]
                                   : full_dirty_mask(line_bytes_);
      if (cfg_.write_policy == WritePolicy::kWriteBack) {
        next_write_line(cfg_.addr_of(tags_[li], set), stored);
        ++stats_.writebacks;
      }
    }
    ev.evicted_valid = true;
    ev.evicted_tag = tags_[li];
    ++stats_.evictions;
  }

  // Fill.
  next_read_line(cfg_.line_addr(addr), stored);
  valid_mask_[set] |= u64{1} << victim;
  tags_[li] = tag;
  set_dirty(set, victim, false);
  dirty_words_[li] = 0;

  bool filled_dirty = false;
  if (is_write) {
    if (!full_line_data.empty()) {
      std::memcpy(stored.data(), full_line_data.data(), line_bytes_);
    } else {
      store_word(stored, offset, size, value);
    }
    if (cfg_.write_policy == WritePolicy::kWriteBack) {
      set_dirty(set, victim, true);
      filled_dirty = true;
      dirty_words_[li] = full_line_data.empty()
                             ? (1ULL << (offset / 8))
                             : full_dirty_mask(line_bytes_);
    } else if (!full_line_data.empty()) {
      next_write_line(cfg_.line_addr(addr), stored);
    } else {
      next_write_word(addr, value, size);
    }
    ++stats_.write_misses;
    ev.kind = AccessKind::kWriteMissFill;
  } else {
    ++stats_.read_misses;
    ev.kind = AccessKind::kReadMissFill;
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->on_fill(set, victim, stored);
  }
  ++stats_.fills;
  repl_on_fill(set, victim);
  mru_way_[set] = victim;

  ev.way = victim;
  ev.line_before = before;
  ev.line_after = stored;
  // Tag write on fill: tag field + valid + dirty state bits.
  ev.tag_bits_written = tag_state_bits_;
  ev.tag_ones_written =
      static_cast<usize>(std::popcount(tag)) + 1 + (filled_dirty ? 1 : 0);
  ev.idle_slots = idle_slots_for(/*miss=*/true);
  emit(ev);
}

u32 Cache::choose_victim(u32 set) {
  // Lowest zero bit of the valid mask = first invalid way, if any.
  const u32 first_invalid =
      static_cast<u32>(std::countr_one(valid_mask_[set]));
  if (first_invalid < ways_) return first_invalid;
  return repl_victim(set);
}

// cnt-hot
u32 Cache::probe_tags(u32 set, u64 tag, AccessEvent& ev) const {
  const u64* tags = tags_.data() + static_cast<usize>(set) * ways_;
  const u64 vmask = valid_mask_[set];
  const u64 dmask = dirty_mask_[set];
  const auto way_tag_ones = [&](u32 w) {
    return static_cast<usize>(std::popcount(tags[w])) + ((vmask >> w) & 1u) +
           ((dmask >> w) & 1u);
  };

  if (cfg_.way_prediction) {
    // Probe the MRU way's tag first; only a first-probe miss reads the
    // remaining ways' tags.
    const u32 predicted = mru_way_[set];
    if (((vmask >> predicted) & 1u) && tags[predicted] == tag) {
      ev.tag_bits_read = tag_state_bits_;
      ev.tag_ones_read = way_tag_ones(predicted);
      return predicted;
    }
  }

  // Valid tags within a set are unique, so accumulating the ones count and
  // matching in the same sweep finds the same way lookup() would.
  u32 hit = static_cast<u32>(ways_);
  usize ones = 0;
  for (u32 w = 0; w < ways_; ++w) {
    ones += way_tag_ones(w);
    if (((vmask >> w) & 1u) && tags[w] == tag) hit = w;
  }
  ev.tag_bits_read = tag_state_bits_ * ways_;
  ev.tag_ones_read = ones;
  return hit;
}

void Cache::emit(const AccessEvent& ev) {
  for (auto* s : sinks_) s->on_access(ev);
}

u32 Cache::idle_slots_for(bool miss) {
  if (miss) return cfg_.idle.idle_per_miss;
  if (cfg_.idle.hit_idle_period == 0) return 0;
  // Counted up-and-reset rather than with a modulo: the period is a
  // runtime config value, so `%` would be a hardware divide on every hit.
  // Yields a slot on exactly the same hits (every period-th one).
  if (++hit_counter_ != cfg_.idle.hit_idle_period) return 0;
  hit_counter_ = 0;
  return 1u;
}

u64 Cache::peek_word(u64 addr, u8 size) const {
  const u32 set = static_cast<u32>((addr >> offset_bits_) & set_mask_);
  const u32 way = lookup(set, addr >> (offset_bits_ + set_bits_));
  if (way >= ways_) return 0;
  return load_word(line_data(set, way), cfg_.offset_of(addr), size);
}

void Cache::flush() {
  for (u32 s = 0; s < cfg_.sets(); ++s) {
    for (u32 w = 0; w < ways_; ++w) {
      if (is_valid(s, w) && is_dirty(s, w)) {
        next_.write_line(cfg_.addr_of(tags_[line_index(s, w)], s),
                         line_data(s, w));
        set_dirty(s, w, false);
        dirty_words_[line_index(s, w)] = 0;
      }
    }
  }
}

Cache::LineView Cache::line_view(u32 set, u32 way) const {
  return LineView{is_valid(set, way), is_dirty(set, way),
                  tags_[line_index(set, way)], line_data(set, way)};
}

std::optional<u32> Cache::find_way(u64 addr) const {
  const u32 set = static_cast<u32>((addr >> offset_bits_) & set_mask_);
  const u32 way = lookup(set, addr >> (offset_bits_ + set_bits_));
  if (way >= ways_) return std::nullopt;
  return way;
}

}  // namespace cnt
