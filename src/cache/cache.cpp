#include "cache/cache.hpp"

#include <bit>
#include <cassert>
#include <cstring>

#include "common/bits.hpp"

namespace cnt {

namespace {

// All-words-dirty mask for a line of `line_bytes`.
u64 full_dirty_mask(usize line_bytes) {
  const usize words = line_bytes / 8;
  return words >= 64 ? ~0ULL : (1ULL << words) - 1;
}

u64 load_word(std::span<const u8> line, u32 offset, u8 size) {
  u64 v = 0;
  for (usize b = 0; b < size; ++b) {
    v |= static_cast<u64>(line[offset + b]) << (8 * b);
  }
  return v;
}

void store_word(std::span<u8> line, u32 offset, u8 size, u64 value) {
  for (usize b = 0; b < size; ++b) {
    line[offset + b] = static_cast<u8>(value >> (8 * b));
  }
}

}  // namespace

Cache::Cache(CacheConfig cfg, MemoryLevel& next)
    : cfg_(std::move(cfg)), next_(next) {
  cfg_.validate();
  lines_.resize(cfg_.sets() * cfg_.ways);
  for (auto& l : lines_) l.data.assign(cfg_.line_bytes, 0);
  repl_ = make_replacement(cfg_.replacement, cfg_.sets(), cfg_.ways,
                           cfg_.replacement_seed);
  mru_way_.assign(cfg_.sets(), 0);
  scratch_before_.assign(cfg_.line_bytes, 0);
  scratch_after_.assign(cfg_.line_bytes, 0);
}

void Cache::add_sink(AccessSink& sink) { sinks_.push_back(&sink); }

void Cache::access(const MemAccess& a) {
  assert(a.valid());
  assert(cfg_.offset_of(a.addr) + a.size <= cfg_.line_bytes);
  access_impl(a.addr, a.op, cfg_.offset_of(a.addr), a.size, a.value, {});
}

void Cache::read_line(u64 line_addr, std::span<u8> out) {
  assert(out.size() == cfg_.line_bytes);
  access_impl(line_addr, MemOp::kRead, 0, 0, 0, {});
  // After the access the line is resident (read misses always allocate);
  // copy it out.
  const u32 set = cfg_.set_index(line_addr);
  const u64 tag = cfg_.tag_of(line_addr);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    const Line& l = line(set, w);
    if (l.valid && l.tag == tag) {
      std::memcpy(out.data(), l.data.data(), cfg_.line_bytes);
      return;
    }
  }
  assert(false && "line missing after read fill");
}

void Cache::write_line(u64 line_addr, std::span<const u8> data) {
  assert(data.size() == cfg_.line_bytes);
  access_impl(line_addr, MemOp::kWrite, 0, 0, 0, data);
}

void Cache::write_word(u64 addr, u64 value, u8 size) {
  access_impl(addr, MemOp::kWrite, cfg_.offset_of(addr), size, value, {});
}

void Cache::access_impl(u64 addr, MemOp op, u32 offset, u8 size, u64 value,
                        std::span<const u8> full_line_data) {
  const u32 set = cfg_.set_index(addr);
  const u64 tag = cfg_.tag_of(addr);
  const bool is_write = op == MemOp::kWrite;
  ++stats_.accesses;

  AccessEvent ev;
  ev.op = op;
  ev.addr = addr;
  ev.set = set;
  ev.offset = offset;
  ev.size = size != 0 ? size : static_cast<u8>(0);
  ev.tag = tag;
  count_tag_read(set, tag, ev);

  // Lookup.
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& l = line(set, w);
    if (!l.valid || l.tag != tag) continue;

    // --- Hit ---
    if (fault_hook_ != nullptr && !is_write) {
      // The demand read senses the array: faults manifest here, and
      // whatever the protection scheme misses is what the CPU gets.
      ev.fault.add(fault_hook_->on_read(set, w, l.data));
    }
    std::memcpy(scratch_before_.data(), l.data.data(), cfg_.line_bytes);
    if (is_write) {
      if (!full_line_data.empty()) {
        std::memcpy(l.data.data(), full_line_data.data(), cfg_.line_bytes);
      } else {
        store_word(l.data, offset, size, value);
      }
      if (cfg_.write_policy == WritePolicy::kWriteBack) {
        l.dirty = true;
        l.dirty_words |= full_line_data.empty()
                             ? (1ULL << (offset / 8))
                             : full_dirty_mask(cfg_.line_bytes);
      } else {
        // Write-through: forward immediately; line stays clean.
        if (!full_line_data.empty()) {
          next_.write_line(cfg_.line_addr(addr), l.data);
        } else {
          next_.write_word(addr, value, size);
        }
      }
      ++stats_.write_hits;
      ev.kind = AccessKind::kWriteHit;
    } else {
      ++stats_.read_hits;
      ev.kind = AccessKind::kReadHit;
    }
    repl_->on_access(set, w);
    mru_way_[set] = w;
    ev.way = w;
    ev.line_before = scratch_before_;
    ev.line_after = l.data;
    ev.idle_slots = idle_slots_for(/*miss=*/false);
    emit(ev);
    return;
  }

  // --- Miss ---
  if (is_write && cfg_.alloc_policy == AllocPolicy::kNoWriteAllocate) {
    if (!full_line_data.empty()) {
      next_.write_line(cfg_.line_addr(addr), full_line_data);
    } else {
      next_.write_word(addr, value, size);
    }
    ++stats_.write_arounds;
    ++stats_.write_misses;
    ev.kind = AccessKind::kWriteAround;
    ev.idle_slots = idle_slots_for(/*miss=*/true);
    emit(ev);
    return;
  }

  const u32 victim = choose_victim(set);
  Line& l = line(set, victim);

  // Previous occupant -> line_before / eviction bookkeeping.
  if (l.valid) {
    if (fault_hook_ != nullptr && l.dirty &&
        cfg_.write_policy == WritePolicy::kWriteBack) {
      // The writeback reads the victim out of the array; silent
      // corruption rides down the hierarchy with it.
      ev.fault.add(fault_hook_->on_read(set, victim, l.data));
    }
    std::memcpy(scratch_before_.data(), l.data.data(), cfg_.line_bytes);
    ev.evicted_valid = true;
    ev.evicted_dirty = l.dirty;
    ev.evicted_tag = l.tag;
    if (l.dirty) {
      ev.evicted_dirty_words = cfg_.sector_writeback
                                   ? l.dirty_words
                                   : full_dirty_mask(cfg_.line_bytes);
    }
    ++stats_.evictions;
    if (l.dirty && cfg_.write_policy == WritePolicy::kWriteBack) {
      next_.write_line(cfg_.addr_of(l.tag, set), l.data);
      ++stats_.writebacks;
    }
  } else {
    std::memset(scratch_before_.data(), 0, cfg_.line_bytes);
  }

  // Fill.
  next_.read_line(cfg_.line_addr(addr), l.data);
  l.valid = true;
  l.tag = tag;
  l.dirty = false;
  l.dirty_words = 0;

  if (is_write) {
    if (!full_line_data.empty()) {
      std::memcpy(l.data.data(), full_line_data.data(), cfg_.line_bytes);
    } else {
      store_word(l.data, offset, size, value);
    }
    if (cfg_.write_policy == WritePolicy::kWriteBack) {
      l.dirty = true;
      l.dirty_words = full_line_data.empty()
                          ? (1ULL << (offset / 8))
                          : full_dirty_mask(cfg_.line_bytes);
    } else if (!full_line_data.empty()) {
      next_.write_line(cfg_.line_addr(addr), l.data);
    } else {
      next_.write_word(addr, value, size);
    }
    ++stats_.write_misses;
    ev.kind = AccessKind::kWriteMissFill;
  } else {
    ++stats_.read_misses;
    ev.kind = AccessKind::kReadMissFill;
  }
  if (fault_hook_ != nullptr) {
    fault_hook_->on_fill(set, victim, l.data);
  }
  ++stats_.fills;
  repl_->on_fill(set, victim);
  mru_way_[set] = victim;

  ev.way = victim;
  ev.line_before = scratch_before_;
  ev.line_after = l.data;
  // Tag write on fill: tag field + valid + dirty state bits.
  ev.tag_bits_written = cfg_.tag_bits() + 2;
  ev.tag_ones_written =
      static_cast<usize>(std::popcount(tag)) + 1 + (l.dirty ? 1 : 0);
  ev.idle_slots = idle_slots_for(/*miss=*/true);
  emit(ev);
}

u32 Cache::choose_victim(u32 set) {
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (!line(set, w).valid) return w;
  }
  return repl_->victim(set);
}

void Cache::count_tag_read(u32 set, u64 tag, AccessEvent& ev) const {
  const usize per_way = cfg_.tag_bits() + 2;  // tag + valid + dirty
  const auto way_tag_ones = [this, set](u32 w) {
    const Line& l = line(set, w);
    return static_cast<usize>(std::popcount(l.tag)) + (l.valid ? 1u : 0u) +
           (l.dirty ? 1u : 0u);
  };

  if (cfg_.way_prediction) {
    // Probe the MRU way's tag first; only a first-probe miss reads the
    // remaining ways' tags.
    const u32 predicted = mru_way_[set];
    const Line& p = line(set, predicted);
    if (p.valid && p.tag == tag) {
      ev.tag_bits_read = per_way;
      ev.tag_ones_read = way_tag_ones(predicted);
      return;
    }
  }

  usize ones = 0;
  for (u32 w = 0; w < cfg_.ways; ++w) ones += way_tag_ones(w);
  ev.tag_bits_read = per_way * cfg_.ways;
  ev.tag_ones_read = ones;
}

void Cache::emit(const AccessEvent& ev) {
  for (auto* s : sinks_) s->on_access(ev);
}

u32 Cache::idle_slots_for(bool miss) {
  if (miss) return cfg_.idle.idle_per_miss;
  if (cfg_.idle.hit_idle_period == 0) return 0;
  return (++hit_counter_ % cfg_.idle.hit_idle_period == 0) ? 1u : 0u;
}

u64 Cache::peek_word(u64 addr, u8 size) const {
  const u32 set = cfg_.set_index(addr);
  const u64 tag = cfg_.tag_of(addr);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    const Line& l = line(set, w);
    if (l.valid && l.tag == tag) {
      return load_word(l.data, cfg_.offset_of(addr), size);
    }
  }
  return 0;
}

void Cache::flush() {
  for (u32 s = 0; s < cfg_.sets(); ++s) {
    for (u32 w = 0; w < cfg_.ways; ++w) {
      Line& l = line(s, w);
      if (l.valid && l.dirty) {
        next_.write_line(cfg_.addr_of(l.tag, s), l.data);
        l.dirty = false;
        l.dirty_words = 0;
      }
    }
  }
}

Cache::LineView Cache::line_view(u32 set, u32 way) const {
  const Line& l = line(set, way);
  return LineView{l.valid, l.dirty, l.tag, l.data};
}

std::optional<u32> Cache::find_way(u64 addr) const {
  const u32 set = cfg_.set_index(addr);
  const u64 tag = cfg_.tag_of(addr);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    const Line& l = line(set, w);
    if (l.valid && l.tag == tag) return w;
  }
  return std::nullopt;
}

}  // namespace cnt
