// Fault-injection hook: the cache's narrow window into the fault campaign.
//
// The functional cache stays fault-agnostic: when a hook is installed
// (Cache::set_fault_hook) it is invoked at the three points where a real
// array's content and the logical content can diverge -- line fill,
// demand read, and the victim read that feeds a writeback. The hook
// mutates the stored bytes in place, so corruption that the protection
// scheme misses propagates functionally: reads return it, writebacks
// push it down the hierarchy. With no hook installed the cache behaves
// bit-identically to a build without the fault subsystem.
//
// The concrete implementation lives in src/fault (FaultCampaign); this
// interface keeps src/cache free of a dependency on it.
#pragma once

#include <span>

#include "common/access_event.hpp"
#include "common/types.hpp"

namespace cnt {

class LineFaultHook {
 public:
  virtual ~LineFaultHook() = default;

  /// A line was just filled (and possibly partially overwritten by the
  /// demanding store). `stored` is the image the ECC check bits are
  /// computed from; permanent stuck-at cells clamp physically but the
  /// divergence stays latent -- it is observed, counted, and classified
  /// at the next array read.
  virtual void on_fill(u32 set, u32 way, std::span<u8> stored) = 0;

  /// The array is read (demand read hit or victim writeback read):
  /// reassert stuck cells, sample transient flips, run the protection
  /// scheme, and repair `stored` where the scheme corrects or detects
  /// (detection recovers via refetch). Silent flips stay in `stored`.
  virtual LineFaultReport on_read(u32 set, u32 way, std::span<u8> stored) = 0;
};

}  // namespace cnt
