// Cache geometry and policy configuration.
#pragma once

#include <string>

#include "common/types.hpp"
#include "energy/array_model.hpp"

namespace cnt {

enum class WritePolicy : u8 {
  kWriteBack,     ///< dirty lines written to the next level on eviction
  kWriteThrough,  ///< every store also forwarded to the next level
};

enum class AllocPolicy : u8 {
  kWriteAllocate,    ///< write misses fill the line
  kNoWriteAllocate,  ///< write misses go around the cache
};

enum class ReplKind : u8 { kLru, kFifo, kRandom, kTreePlru };

[[nodiscard]] const char* to_string(WritePolicy p) noexcept;
[[nodiscard]] const char* to_string(AllocPolicy p) noexcept;
[[nodiscard]] const char* to_string(ReplKind k) noexcept;

/// Idle-slot model for the deferred-update FIFOs: a trace has no cycle
/// timing, so idle array slots are derived from the access stream. A miss
/// stalls the core for the miss penalty (the array sits idle while the fill
/// is in flight), and on average the core issues a memory access only every
/// few cycles, so every `hit_idle_period`-th hit also yields one idle slot.
struct IdleModel {
  u32 idle_per_miss = 8;
  u32 hit_idle_period = 4;  ///< 0 disables hit-side idle slots
};

struct CacheConfig {
  std::string name = "L1D";
  usize size_bytes = 32 * 1024;
  usize ways = 4;
  usize line_bytes = 64;
  /// Physical address width; 40 bits (1 TiB) matches the embedded-class
  /// systems CNFET caches target and sets the stored tag width.
  u32 addr_bits = 40;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  AllocPolicy alloc_policy = AllocPolicy::kWriteAllocate;
  ReplKind replacement = ReplKind::kLru;
  IdleModel idle;
  u64 replacement_seed = 0x7ef1ace;  ///< for ReplKind::kRandom
  /// MRU way prediction (energy model): probe the set's most-recently-used
  /// way's tag first and read the other ways' tags only on a first-probe
  /// miss. Classic low-power-cache technique; reduces the tag-side energy
  /// that adaptive data encoding cannot touch. Off by default (the paper's
  /// baseline has no way prediction).
  bool way_prediction = false;
  /// Sectored writebacks (energy model): track per-word dirty bits and, on
  /// a dirty eviction, read only the dirty words out of the array (the
  /// clean words need no array access -- the next level already has them).
  /// Off by default. Functional behaviour is unchanged; only the
  /// writeback-read accounting in the events narrows.
  bool sector_writeback = false;

  [[nodiscard]] usize sets() const noexcept {
    return size_bytes / (ways * line_bytes);
  }
  [[nodiscard]] u32 offset_bits() const noexcept;
  [[nodiscard]] u32 set_bits() const noexcept;
  [[nodiscard]] u32 tag_bits() const noexcept;

  [[nodiscard]] u64 line_addr(u64 addr) const noexcept {
    return addr & ~static_cast<u64>(line_bytes - 1);
  }
  [[nodiscard]] u32 set_index(u64 addr) const noexcept;
  [[nodiscard]] u64 tag_of(u64 addr) const noexcept;
  [[nodiscard]] u32 offset_of(u64 addr) const noexcept {
    return static_cast<u32>(addr & (line_bytes - 1));
  }
  /// Reconstruct a line-aligned address from tag + set.
  [[nodiscard]] u64 addr_of(u64 tag, u32 set) const noexcept;

  /// Validate invariants (power-of-two sizes, geometry divides evenly,
  /// address width fits). Throws std::invalid_argument on violation.
  void validate() const;
};

/// Derive the energy-model geometry of a cache (meta_bits = 0; policies
/// that widen the line set it themselves).
[[nodiscard]] ArrayGeometry geometry_of(const CacheConfig& cfg);

}  // namespace cnt
