#include "cache/main_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cnt {

void MainMemory::load(std::span<const MemorySegment> segments) {
  for (const auto& seg : segments) load_segment(seg);
}

void MainMemory::load_segment(const MemorySegment& seg) {
  copy_in(seg.base, seg.bytes.data(), seg.bytes.size());
  // Sparse runs: only explicit payloads are materialized. The implicit-zero
  // remainder of the span needs no pages at all -- unmapped reads already
  // return zero -- so loading a mostly-zero multi-GiB table touches memory
  // proportional to its runs, not its span.
  usize pool_pos = 0;
  for (const auto& run : seg.runs) {
    copy_in(seg.base + run.offset, seg.pool.data() + pool_pos, run.length);
    pool_pos += run.length;
  }
}

void MainMemory::copy_in(u64 addr, const u8* src, usize n) {
  usize off = 0;
  while (off < n) {
    u8* pg = page(addr);
    const usize page_off = addr % kPageBytes;
    const usize chunk = std::min(kPageBytes - page_off, n - off);
    std::memcpy(pg + page_off, src + off, chunk);
    addr += chunk;
    off += chunk;
  }
}

u8 MainMemory::peek(u64 addr) const {
  if (const u8* pg = page_if_present(addr)) {
    return pg[addr % kPageBytes];
  }
  return 0;
}

void MainMemory::poke(u64 addr, u8 value) {
  page(addr)[addr % kPageBytes] = value;
}

u64 MainMemory::peek_word(u64 addr, u8 size) const {
  u64 v = 0;
  for (usize b = 0; b < size; ++b) {
    v |= static_cast<u64>(peek(addr + b)) << (8 * b);
  }
  return v;
}

u8* MainMemory::page_slow(u64 addr) {
  const u64 pn = addr / kPageBytes;
  u32* slot = page_index_.find(pn);
  if (slot == nullptr) {
    const u32 idx = static_cast<u32>(page_store_.size());
    page_store_.emplace_back(kPageBytes, u8{0});
    slot = &page_index_.find_or_insert(pn, idx);
  }
  cached_page_no_ = pn;
  cached_page_ = page_store_[*slot].data();
  return cached_page_;
}

const u8* MainMemory::page_if_present(u64 addr) const {
  const u32* slot = page_index_.find(addr / kPageBytes);
  return slot == nullptr ? nullptr : page_store_[*slot].data();
}

}  // namespace cnt
