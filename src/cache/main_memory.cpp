#include "cache/main_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cnt {

void MainMemory::load(const Workload& w) {
  for (const auto& seg : w.init) load_segment(seg);
}

void MainMemory::load_segment(const MemorySegment& seg) {
  copy_in(seg.base, seg.bytes.data(), seg.bytes.size());
  // Sparse runs: only explicit payloads are materialized. The implicit-zero
  // remainder of the span needs no pages at all -- unmapped reads already
  // return zero -- so loading a mostly-zero multi-GiB table touches memory
  // proportional to its runs, not its span.
  usize pool_pos = 0;
  for (const auto& run : seg.runs) {
    copy_in(seg.base + run.offset, seg.pool.data() + pool_pos, run.length);
    pool_pos += run.length;
  }
}

void MainMemory::copy_in(u64 addr, const u8* src, usize n) {
  usize off = 0;
  while (off < n) {
    auto& pg = page(addr);
    const usize page_off = addr % kPageBytes;
    const usize chunk = std::min(kPageBytes - page_off, n - off);
    std::memcpy(pg.data() + page_off, src + off, chunk);
    addr += chunk;
    off += chunk;
  }
}

void MainMemory::read_line(u64 line_addr, std::span<u8> out) {
  assert(line_addr % out.size() == 0);
  ++line_reads_;
  u64 addr = line_addr;
  usize off = 0;
  while (off < out.size()) {
    const usize page_off = addr % kPageBytes;
    const usize chunk = std::min(kPageBytes - page_off, out.size() - off);
    if (const auto* pg = page_if_present(addr)) {
      std::memcpy(out.data() + off, pg->data() + page_off, chunk);
    } else {
      std::memset(out.data() + off, 0, chunk);
    }
    addr += chunk;
    off += chunk;
  }
}

void MainMemory::write_line(u64 line_addr, std::span<const u8> data) {
  assert(line_addr % data.size() == 0);
  ++line_writes_;
  u64 addr = line_addr;
  usize off = 0;
  while (off < data.size()) {
    auto& pg = page(addr);
    const usize page_off = addr % kPageBytes;
    const usize chunk = std::min(kPageBytes - page_off, data.size() - off);
    std::memcpy(pg.data() + page_off, data.data() + off, chunk);
    addr += chunk;
    off += chunk;
  }
}

void MainMemory::write_word(u64 addr, u64 value, u8 size) {
  assert(size <= 8 && addr % size == 0);
  ++word_writes_;
  auto& pg = page(addr);
  const usize page_off = addr % kPageBytes;
  // Natural alignment guarantees the word does not straddle a page.
  for (usize b = 0; b < size; ++b) {
    pg[page_off + b] = static_cast<u8>(value >> (8 * b));
  }
}

u8 MainMemory::peek(u64 addr) const {
  if (const auto* pg = page_if_present(addr)) {
    return (*pg)[addr % kPageBytes];
  }
  return 0;
}

void MainMemory::poke(u64 addr, u8 value) { page(addr)[addr % kPageBytes] = value; }

u64 MainMemory::peek_word(u64 addr, u8 size) const {
  u64 v = 0;
  for (usize b = 0; b < size; ++b) {
    v |= static_cast<u64>(peek(addr + b)) << (8 * b);
  }
  return v;
}

std::vector<u8>& MainMemory::page(u64 addr) {
  auto [it, inserted] = pages_.try_emplace(addr / kPageBytes);
  if (inserted) it->second.assign(kPageBytes, 0);
  return it->second;
}

const std::vector<u8>* MainMemory::page_if_present(u64 addr) const {
  const auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : &it->second;
}

}  // namespace cnt
