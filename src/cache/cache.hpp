// Set-associative, value-carrying cache model.
//
// This is the gem5-style functional substrate the paper's evaluation
// extends: it stores real line contents (energy depends on the bits), does
// write-back/write-allocate by default, and broadcasts every access as an
// AccessEvent to registered sinks (the energy policies).
//
// A Cache is itself a MemoryLevel, so hierarchies compose: L1 -> L2 -> DRAM.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/cache_stats.hpp"
#include "cache/events.hpp"
#include "cache/fault_hook.hpp"
#include "cache/main_memory.hpp"
#include "cache/replacement.hpp"
#include "trace/access.hpp"

namespace cnt {

class Cache final : public MemoryLevel {
 public:
  /// `next` must outlive the cache.
  Cache(CacheConfig cfg, MemoryLevel& next);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Register an observer (not owned; must outlive the cache).
  void add_sink(AccessSink& sink);

  /// Install a fault-injection hook (not owned; must outlive the cache).
  /// nullptr (the default) keeps the cache bit-identical to a fault-free
  /// build. The hook fires on line fill, on the array read behind a read
  /// hit, and on the victim read feeding a dirty writeback; see
  /// cache/fault_hook.hpp for the contract. The demand word of a miss is
  /// served critical-word-first from the fill path, so fills do not incur
  /// an array read.
  void set_fault_hook(LineFaultHook* hook) noexcept { fault_hook_ = hook; }

  /// CPU-side access. Precondition: a.valid() and the word lies within one
  /// line.
  void access(const MemAccess& a);

  /// Read the current value at `addr` from the cache *without* side effects
  /// (no allocation, no stats, no events) -- test/debug helper. Returns 0
  /// when the line is not resident; use find_way() to distinguish.
  [[nodiscard]] u64 peek_word(u64 addr, u8 size) const;

  // MemoryLevel interface (traffic from an upper-level cache).
  void read_line(u64 line_addr, std::span<u8> out) override;
  void write_line(u64 line_addr, std::span<const u8> data) override;
  void write_word(u64 addr, u64 value, u8 size) override;

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Flush every dirty line to the next level (end-of-run accounting).
  /// Does not emit events (the paper's dynamic-energy windows cover the
  /// simulated execution, not the teardown).
  void flush();

  /// Introspection for tests: contents of a (set, way).
  struct LineView {
    bool valid;
    bool dirty;
    u64 tag;
    std::span<const u8> data;
  };
  [[nodiscard]] LineView line_view(u32 set, u32 way) const;
  /// Locate `addr` in the cache, if resident.
  [[nodiscard]] std::optional<u32> find_way(u64 addr) const;

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    u64 tag = 0;
    u64 dirty_words = 0;  ///< per-8B-word dirty bits (sector_writeback)
    std::vector<u8> data;
  };

  enum class LineOp : u8 { kRead, kWrite };

  [[nodiscard]] Line& line(u32 set, u32 way) {
    return lines_[static_cast<usize>(set) * cfg_.ways + way];
  }
  [[nodiscard]] const Line& line(u32 set, u32 way) const {
    return lines_[static_cast<usize>(set) * cfg_.ways + way];
  }

  /// Core path shared by CPU accesses and upper-level line traffic.
  /// For full-line ops, offset=0 and size=line_bytes with `data` supplied.
  void access_impl(u64 addr, MemOp op, u32 offset, u8 size, u64 value,
                   std::span<const u8> full_line_data);

  [[nodiscard]] u32 choose_victim(u32 set);
  void count_tag_read(u32 set, u64 tag, AccessEvent& ev) const;
  void emit(const AccessEvent& ev);
  [[nodiscard]] u32 idle_slots_for(bool miss);

  CacheConfig cfg_;
  MemoryLevel& next_;
  std::vector<Line> lines_;
  std::unique_ptr<ReplacementPolicy> repl_;
  std::vector<AccessSink*> sinks_;
  LineFaultHook* fault_hook_ = nullptr;
  CacheStats stats_;
  u64 hit_counter_ = 0;  // for IdleModel.hit_idle_period
  std::vector<u32> mru_way_;  // per-set MRU way (way prediction)

  // Scratch buffers backing the event spans.
  std::vector<u8> scratch_before_;
  std::vector<u8> scratch_after_;
};

}  // namespace cnt
