// Set-associative, value-carrying cache model.
//
// This is the gem5-style functional substrate the paper's evaluation
// extends: it stores real line contents (energy depends on the bits), does
// write-back/write-allocate by default, and broadcasts every access as an
// AccessEvent to registered sinks (the energy policies).
//
// Line metadata is laid out structure-of-arrays (docs/performance.md): all
// tags in one contiguous array, valid/dirty state as per-set bit masks,
// per-line sector-dirty words in their own array, and every line's data in
// a single flat byte buffer. A set's lookup touches one short run of tags
// plus two mask words instead of striding across array-of-struct Line
// records, and the whole data store is one allocation.
//
// A Cache is itself a MemoryLevel, so hierarchies compose: L1 -> L2 -> DRAM.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/cache_stats.hpp"
#include "cache/fault_hook.hpp"
#include "cache/main_memory.hpp"
#include "cache/replacement.hpp"
#include "common/access.hpp"
#include "common/access_event.hpp"

namespace cnt {

class Cache final : public MemoryLevel {
 public:
  /// `next` must outlive the cache.
  Cache(CacheConfig cfg, MemoryLevel& next);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Register an observer (not owned; must outlive the cache).
  void add_sink(AccessSink& sink);

  /// Install a fault-injection hook (not owned; must outlive the cache).
  /// nullptr (the default) keeps the cache bit-identical to a fault-free
  /// build. The hook fires on line fill, on the array read behind a read
  /// hit, and on the victim read feeding a dirty writeback; see
  /// cache/fault_hook.hpp for the contract. The demand word of a miss is
  /// served critical-word-first from the fill path, so fills do not incur
  /// an array read.
  void set_fault_hook(LineFaultHook* hook) noexcept { fault_hook_ = hook; }

  /// CPU-side access. Precondition: a.valid() and the word lies within one
  /// line.
  void access(const MemAccess& a);

  /// Warm the set `addr` maps to (tag run, state masks, every way's data
  /// line) without touching any simulator state. The replay loop issues
  /// this a few accesses ahead (docs/performance.md): the data store is one
  /// flat multi-MiB buffer, so an unwarmed access stalls on DRAM for the
  /// line it hits as surely as a miss stalls on the fill source.
  void prefetch(u64 addr) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const u32 set = static_cast<u32>((addr >> offset_bits_) & set_mask_);
    __builtin_prefetch(tags_.data() + static_cast<usize>(set) * ways_, 0, 1);
    __builtin_prefetch(valid_mask_.data() + set, 0, 1);
    const u8* set_data =
        data_.data() + static_cast<usize>(set) * ways_ * line_bytes_;
    for (usize b = 0; b < ways_ * line_bytes_; b += 64) {
      __builtin_prefetch(set_data + b, 0, 1);
    }
#else
    (void)addr;
#endif
  }

  /// Read the current value at `addr` from the cache *without* side effects
  /// (no allocation, no stats, no events) -- test/debug helper. Returns 0
  /// when the line is not resident; use find_way() to distinguish.
  [[nodiscard]] u64 peek_word(u64 addr, u8 size) const;

  // MemoryLevel interface (traffic from an upper-level cache).
  void read_line(u64 line_addr, std::span<u8> out) override;
  void write_line(u64 line_addr, std::span<const u8> data) override;
  void write_word(u64 addr, u64 value, u8 size) override;

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Flush every dirty line to the next level (end-of-run accounting).
  /// Does not emit events (the paper's dynamic-energy windows cover the
  /// simulated execution, not the teardown).
  void flush();

  /// Introspection for tests: contents of a (set, way).
  struct LineView {
    bool valid;
    bool dirty;
    u64 tag;
    std::span<const u8> data;
  };
  [[nodiscard]] LineView line_view(u32 set, u32 way) const;
  /// Locate `addr` in the cache, if resident.
  [[nodiscard]] std::optional<u32> find_way(u64 addr) const;

 private:
  [[nodiscard]] usize line_index(u32 set, u32 way) const noexcept {
    return static_cast<usize>(set) * ways_ + way;
  }
  [[nodiscard]] std::span<u8> line_data(u32 set, u32 way) noexcept {
    return {data_.data() + line_index(set, way) * line_bytes_, line_bytes_};
  }
  [[nodiscard]] std::span<const u8> line_data(u32 set, u32 way) const noexcept {
    return {data_.data() + line_index(set, way) * line_bytes_, line_bytes_};
  }
  [[nodiscard]] bool is_valid(u32 set, u32 way) const noexcept {
    return (valid_mask_[set] >> way) & 1u;
  }
  [[nodiscard]] bool is_dirty(u32 set, u32 way) const noexcept {
    return (dirty_mask_[set] >> way) & 1u;
  }
  void set_dirty(u32 set, u32 way, bool dirty) noexcept {
    if (dirty) {
      dirty_mask_[set] |= u64{1} << way;
    } else {
      dirty_mask_[set] &= ~(u64{1} << way);
    }
  }

  /// Way holding (set, tag), or ways_ when not resident.
  [[nodiscard]] u32 lookup(u32 set, u64 tag) const noexcept {
    const u64* tags = tags_.data() + static_cast<usize>(set) * ways_;
    const u64 vmask = valid_mask_[set];
    for (u32 w = 0; w < ways_; ++w) {
      if (((vmask >> w) & 1u) && tags[w] == tag) return w;
    }
    return static_cast<u32>(ways_);
  }

  /// Core path shared by CPU accesses and upper-level line traffic.
  /// For full-line ops, offset=0 and size=line_bytes with `data` supplied.
  void access_impl(u64 addr, MemOp op, u32 offset, u8 size, u64 value,
                   std::span<const u8> full_line_data);

  [[nodiscard]] u32 choose_victim(u32 set);
  /// One pass over the set's tag run that both locates `tag` and accounts
  /// the tag-array read on `ev` (bits + stored ones). Returns the hit way,
  /// or ways_ on a miss.
  [[nodiscard]] u32 probe_tags(u32 set, u64 tag, AccessEvent& ev) const;
  void emit(const AccessEvent& ev);

  // Downstream traffic helpers: when the next level is the backing store
  // itself (the common single-level topology), call it through a concrete
  // MainMemory* -- the class is final and its line ops are defined in its
  // header, so these devirtualize and inline into the miss path.
  void next_read_line(u64 line_addr, std::span<u8> out) {
    if (direct_mem_ != nullptr) {
      direct_mem_->read_line(line_addr, out);
    } else {
      next_.read_line(line_addr, out);
    }
  }
  void next_write_line(u64 line_addr, std::span<const u8> data) {
    if (direct_mem_ != nullptr) {
      direct_mem_->write_line(line_addr, data);
    } else {
      next_.write_line(line_addr, data);
    }
  }
  void next_write_word(u64 addr, u64 value, u8 size) {
    if (direct_mem_ != nullptr) {
      direct_mem_->write_word(addr, value, size);
    } else {
      next_.write_word(addr, value, size);
    }
  }
  [[nodiscard]] u32 idle_slots_for(bool miss);

  // Replacement fast paths: LRU is the default policy and is final with
  // in-class bodies, so routing through a concrete pointer (when the
  // configured policy is LRU) inlines the touch/victim calls.
  void repl_on_access(u32 set, u32 way) {
    if (direct_lru_ != nullptr) {
      direct_lru_->on_access(set, way);
    } else {
      repl_->on_access(set, way);
    }
  }
  void repl_on_fill(u32 set, u32 way) {
    if (direct_lru_ != nullptr) {
      direct_lru_->on_fill(set, way);
    } else {
      repl_->on_fill(set, way);
    }
  }
  [[nodiscard]] u32 repl_victim(u32 set) {
    if (direct_lru_ != nullptr) return direct_lru_->victim(set);
    return repl_->victim(set);
  }

  CacheConfig cfg_;
  MemoryLevel& next_;
  MainMemory* direct_mem_ = nullptr;  ///< next_ when it is the backing store

  // Geometry derived once from cfg_ (the hot path never re-derives bit
  // widths from the config).
  usize ways_ = 0;
  usize line_bytes_ = 0;
  u32 offset_bits_ = 0;
  u32 set_bits_ = 0;
  u64 set_mask_ = 0;
  usize tag_state_bits_ = 0;  ///< tag_bits() + valid + dirty

  // Structure-of-arrays line metadata (see header comment).
  std::vector<u64> tags_;         ///< [sets * ways]
  std::vector<u64> valid_mask_;   ///< [sets], bit w = way w valid
  std::vector<u64> dirty_mask_;   ///< [sets], bit w = way w dirty
  std::vector<u64> dirty_words_;  ///< [sets * ways] per-8B-word dirty bits
  std::vector<u8> data_;          ///< [sets * ways * line_bytes]

  std::unique_ptr<ReplacementPolicy> repl_;
  LruPolicy* direct_lru_ = nullptr;  ///< repl_ when the policy is LRU
  std::vector<AccessSink*> sinks_;
  LineFaultHook* fault_hook_ = nullptr;
  CacheStats stats_;
  u64 hit_counter_ = 0;  // for IdleModel.hit_idle_period
  std::vector<u32> mru_way_;  // per-set MRU way (way prediction)

  // Reused event object (see access_impl): avoids re-zero-initializing
  // the full AccessEvent on every access.
  AccessEvent scratch_ev_;
  // Scratch buffer backing the event line_before span on mutating
  // accesses (read hits alias the stored line directly: its contents are
  // the before image by definition).
  std::vector<u8> scratch_before_;
  // Shared all-zero line. Fill events with no dirty victim alias it as
  // line_before: the content of a clean or cold eviction's before image is
  // unobservable (every consumer is gated on evicted_dirty), so the copy
  // it used to cost is skipped.
  std::vector<u8> zeros_;
};

}  // namespace cnt
