#include "cache/replacement.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/bits.hpp"

namespace cnt {

namespace {

/// FIFO: timestamps updated only on fill.
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(usize sets, usize ways)
      : ways_(ways), stamp_(sets * ways, 0) {}

  void on_access(u32, u32) override {}
  void on_fill(u32 set, u32 way) override { stamp_[idx(set, way)] = ++clock_; }

  u32 victim(u32 set) override {
    u32 best = 0;
    u64 best_stamp = stamp_[idx(set, 0)];
    for (u32 w = 1; w < ways_; ++w) {
      if (stamp_[idx(set, w)] < best_stamp) {
        best_stamp = stamp_[idx(set, w)];
        best = w;
      }
    }
    return best;
  }

  [[nodiscard]] const char* name() const noexcept override { return "FIFO"; }

 private:
  [[nodiscard]] usize idx(u32 set, u32 way) const noexcept {
    return static_cast<usize>(set) * ways_ + way;
  }
  usize ways_;
  u64 clock_ = 0;
  std::vector<u64> stamp_;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(usize ways, u64 seed) : ways_(ways), rng_(seed) {}

  void on_access(u32, u32) override {}
  void on_fill(u32, u32) override {}
  u32 victim(u32) override { return static_cast<u32>(rng_.uniform(ways_)); }
  [[nodiscard]] const char* name() const noexcept override { return "random"; }

 private:
  usize ways_;
  Rng rng_;
};

/// Tree-PLRU: one bit per internal node of a binary tree over the ways.
/// A touch points every node on the way's path *away* from it; the victim
/// walk follows the pointed-to direction.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(usize sets, usize ways)
      : ways_(ways), levels_(log2_exact(ways)),
        bits_(sets * (ways - 1), false) {
    assert(is_pow2(ways));
  }

  void on_access(u32 set, u32 way) override { touch(set, way); }
  void on_fill(u32 set, u32 way) override { touch(set, way); }

  u32 victim(u32 set) override {
    if (ways_ == 1) return 0;
    usize node = 0;  // root within this set's tree
    u32 way = 0;
    for (u32 level = 0; level < levels_; ++level) {
      const bool go_right = node_bit(set, node);
      way = (way << 1) | static_cast<u32>(go_right);
      node = 2 * node + 1 + static_cast<usize>(go_right);
    }
    return way;
  }

  [[nodiscard]] const char* name() const noexcept override { return "tree-PLRU"; }

 private:
  void touch(u32 set, u32 way) {
    if (ways_ == 1) return;
    usize node = 0;
    for (u32 level = 0; level < levels_; ++level) {
      const bool bit = (way >> (levels_ - 1 - level)) & 1u;
      // Point away from the touched way.
      set_node_bit(set, node, !bit);
      node = 2 * node + 1 + static_cast<usize>(bit);
    }
  }

  [[nodiscard]] bool node_bit(u32 set, usize node) const {
    return bits_[static_cast<usize>(set) * (ways_ - 1) + node];
  }
  void set_node_bit(u32 set, usize node, bool v) {
    bits_[static_cast<usize>(set) * (ways_ - 1) + node] = v;
  }

  usize ways_;
  u32 levels_;
  std::vector<bool> bits_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_replacement(ReplKind kind, usize sets,
                                                    usize ways, u64 seed) {
  switch (kind) {
    case ReplKind::kLru: return std::make_unique<LruPolicy>(sets, ways);
    case ReplKind::kFifo: return std::make_unique<FifoPolicy>(sets, ways);
    case ReplKind::kRandom: return std::make_unique<RandomPolicy>(ways, seed);
    case ReplKind::kTreePlru:
      return std::make_unique<TreePlruPolicy>(sets, ways);
  }
  return nullptr;
}

}  // namespace cnt
