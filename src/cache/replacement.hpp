// Replacement policies for the set-associative cache substrate.
#pragma once

#include <memory>

#include "cache/cache_config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cnt {

/// Victim selection + recency bookkeeping. The cache resolves invalid ways
/// itself; `victim()` is only consulted when every way in the set is valid.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A hit touched (set, way).
  virtual void on_access(u32 set, u32 way) = 0;
  /// (set, way) was just filled.
  virtual void on_fill(u32 set, u32 way) = 0;
  /// Choose the way to evict from `set` (all ways valid).
  [[nodiscard]] virtual u32 victim(u32 set) = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Construct a policy instance for a (sets x ways) cache.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_replacement(
    ReplKind kind, usize sets, usize ways, u64 seed = 0);

}  // namespace cnt
