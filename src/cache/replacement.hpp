// Replacement policies for the set-associative cache substrate.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache_config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cnt {

/// Victim selection + recency bookkeeping. The cache resolves invalid ways
/// itself; `victim()` is only consulted when every way in the set is valid.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A hit touched (set, way).
  virtual void on_access(u32 set, u32 way) = 0;
  /// (set, way) was just filled.
  virtual void on_fill(u32 set, u32 way) = 0;
  /// Choose the way to evict from `set` (all ways valid).
  [[nodiscard]] virtual u32 victim(u32 set) = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// True-LRU via per-line timestamps (exact, O(ways) victim scan). Defined
/// here, final, with in-class bodies: LRU is the default policy and its
/// touch/victim calls sit on the replay hot path, so the cache keeps a
/// concrete pointer (like its MainMemory fast path) and inlines them past
/// the virtual interface.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(usize sets, usize ways) : ways_(ways), stamp_(sets * ways, 0) {}

  void on_access(u32 set, u32 way) override {
    stamp_[idx(set, way)] = ++clock_;
  }
  void on_fill(u32 set, u32 way) override { stamp_[idx(set, way)] = ++clock_; }

  u32 victim(u32 set) override {
    u32 best = 0;
    u64 best_stamp = stamp_[idx(set, 0)];
    for (u32 w = 1; w < ways_; ++w) {
      if (stamp_[idx(set, w)] < best_stamp) {
        best_stamp = stamp_[idx(set, w)];
        best = w;
      }
    }
    return best;
  }

  [[nodiscard]] const char* name() const noexcept override { return "LRU"; }

 private:
  [[nodiscard]] usize idx(u32 set, u32 way) const noexcept {
    return static_cast<usize>(set) * ways_ + way;
  }
  usize ways_;
  u64 clock_ = 0;
  std::vector<u64> stamp_;
};

/// Construct a policy instance for a (sets x ways) cache.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_replacement(
    ReplKind kind, usize sets, usize ways, u64 seed = 0);

}  // namespace cnt
