// Two-level cache hierarchy: split L1 (I + D) over a unified L2 over DRAM.
//
// The trace-driven "CPU" is a front-end that routes each MemAccess to the
// right L1 port; energy sinks attach per cache level.
#pragma once

#include <memory>
#include <span>

#include "cache/cache.hpp"
#include "cache/main_memory.hpp"
#include "common/access.hpp"

namespace cnt {

struct HierarchyConfig {
  CacheConfig l1d;
  CacheConfig l1i;
  CacheConfig l2;
  bool enable_l2 = true;

  /// Typical embedded-class defaults: 32 KiB 4-way L1s, 256 KiB 8-way L2,
  /// 64 B lines everywhere.
  [[nodiscard]] static HierarchyConfig typical();
};

class Hierarchy {
 public:
  Hierarchy(HierarchyConfig cfg, MainMemory& memory);

  /// Route one access: IFetch -> L1I, loads/stores -> L1D.
  void access(const MemAccess& a);

  /// Run a whole sequence of accesses.
  void run(std::span<const MemAccess> accesses);

  [[nodiscard]] Cache& l1d() noexcept { return *l1d_; }
  [[nodiscard]] Cache& l1i() noexcept { return *l1i_; }
  /// Precondition: config().enable_l2.
  [[nodiscard]] Cache& l2() noexcept { return *l2_; }
  [[nodiscard]] bool has_l2() const noexcept { return l2_ != nullptr; }
  [[nodiscard]] const HierarchyConfig& config() const noexcept { return cfg_; }

  /// Flush L1s then L2 (writeback teardown).
  void flush_all();

 private:
  HierarchyConfig cfg_;
  MainMemory& memory_;
  std::unique_ptr<Cache> l2_;
  std::unique_ptr<Cache> l1d_;
  std::unique_ptr<Cache> l1i_;
};

}  // namespace cnt
