#include "cache/cache_config.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace cnt {

const char* to_string(WritePolicy p) noexcept {
  return p == WritePolicy::kWriteBack ? "write-back" : "write-through";
}

const char* to_string(AllocPolicy p) noexcept {
  return p == AllocPolicy::kWriteAllocate ? "write-allocate"
                                          : "no-write-allocate";
}

const char* to_string(ReplKind k) noexcept {
  switch (k) {
    case ReplKind::kLru: return "LRU";
    case ReplKind::kFifo: return "FIFO";
    case ReplKind::kRandom: return "random";
    case ReplKind::kTreePlru: return "tree-PLRU";
  }
  return "?";
}

u32 CacheConfig::offset_bits() const noexcept {
  return log2_exact(line_bytes);
}

u32 CacheConfig::set_bits() const noexcept { return log2_exact(sets()); }

u32 CacheConfig::tag_bits() const noexcept {
  return addr_bits - set_bits() - offset_bits();
}

u32 CacheConfig::set_index(u64 addr) const noexcept {
  return static_cast<u32>((addr >> offset_bits()) & (sets() - 1));
}

u64 CacheConfig::tag_of(u64 addr) const noexcept {
  return addr >> (offset_bits() + set_bits());
}

u64 CacheConfig::addr_of(u64 tag, u32 set) const noexcept {
  return (tag << (offset_bits() + set_bits())) |
         (static_cast<u64>(set) << offset_bits());
}

void CacheConfig::validate() const {
  if (line_bytes < 8 || !is_pow2(line_bytes)) {
    throw std::invalid_argument(name + ": line_bytes must be a power of two >= 8");
  }
  if (ways == 0) throw std::invalid_argument(name + ": ways must be > 0");
  if (size_bytes == 0 || size_bytes % (ways * line_bytes) != 0) {
    throw std::invalid_argument(name +
                                ": size must be a multiple of ways*line_bytes");
  }
  if (!is_pow2(sets())) {
    throw std::invalid_argument(name + ": set count must be a power of two");
  }
  if (addr_bits < offset_bits() + set_bits() + 1 || addr_bits > 64) {
    throw std::invalid_argument(name + ": addr_bits out of range");
  }
  if (replacement == ReplKind::kTreePlru && !is_pow2(ways)) {
    throw std::invalid_argument(name + ": tree-PLRU requires power-of-two ways");
  }
}

ArrayGeometry geometry_of(const CacheConfig& cfg) {
  ArrayGeometry g;
  g.sets = cfg.sets();
  g.ways = cfg.ways;
  g.line_bytes = cfg.line_bytes;
  g.tag_bits = cfg.tag_bits();
  g.meta_bits = 0;
  g.state_bits = 2;
  return g;
}

}  // namespace cnt
