#include "cache/hierarchy.hpp"

#include <cassert>

namespace cnt {

HierarchyConfig HierarchyConfig::typical() {
  HierarchyConfig h;
  h.l1d.name = "L1D";
  h.l1d.size_bytes = 32 * 1024;
  h.l1d.ways = 4;
  h.l1d.line_bytes = 64;

  h.l1i.name = "L1I";
  h.l1i.size_bytes = 32 * 1024;
  h.l1i.ways = 4;
  h.l1i.line_bytes = 64;

  h.l2.name = "L2";
  h.l2.size_bytes = 256 * 1024;
  h.l2.ways = 8;
  h.l2.line_bytes = 64;
  return h;
}

Hierarchy::Hierarchy(HierarchyConfig cfg, MainMemory& memory)
    : cfg_(std::move(cfg)), memory_(memory) {
  MemoryLevel* below = &memory_;
  if (cfg_.enable_l2) {
    assert(cfg_.l2.line_bytes == cfg_.l1d.line_bytes &&
           cfg_.l2.line_bytes == cfg_.l1i.line_bytes &&
           "uniform line size across levels required");
    l2_ = std::make_unique<Cache>(cfg_.l2, memory_);
    below = l2_.get();
  }
  l1d_ = std::make_unique<Cache>(cfg_.l1d, *below);
  l1i_ = std::make_unique<Cache>(cfg_.l1i, *below);
}

void Hierarchy::access(const MemAccess& a) {
  if (a.op == MemOp::kIFetch) {
    l1i_->access(a);
  } else {
    l1d_->access(a);
  }
}

void Hierarchy::run(std::span<const MemAccess> accesses) {
  for (const auto& a : accesses) access(a);
}

void Hierarchy::flush_all() {
  l1d_->flush();
  l1i_->flush();
  if (l2_) l2_->flush();
}

}  // namespace cnt
