// Derived metrics beyond raw dynamic energy: execution-time estimation,
// energy-delay product (EDP), static/leakage energy, and DRAM traffic
// energy for system-level experiments.
//
// CNFET's pitch is "both higher clock speed and energy efficiency"
// (abstract); EDP is the metric that captures the combination. The timing
// model is deliberately first-order -- an in-order core where every cache
// access takes hit_cycles and each miss stalls for miss_penalty more --
// because the encoding logic is off the critical path ("negligible
// influence on the timing", Section III.A) and thus CNT-Cache does not
// change cycle counts, only joules.
#pragma once

#include "cache/cache_stats.hpp"
#include "cache/main_memory.hpp"
#include "common/units.hpp"

namespace cnt {

struct TimingParams {
  u32 hit_cycles = 2;      ///< L1 access latency
  u32 miss_penalty = 20;   ///< additional stall cycles per L1 miss
  double clock_ghz = 2.0;  ///< core/cache clock

  /// Cycles to replay the run described by `stats`.
  [[nodiscard]] u64 cycles(const CacheStats& stats) const noexcept;
  /// Wall-clock seconds for the run.
  [[nodiscard]] double seconds(const CacheStats& stats) const noexcept;
};

/// Energy-delay product in joule-seconds.
[[nodiscard]] double edp(Energy energy, double seconds) noexcept;

/// Leakage energy burned by an array over `seconds` at `leakage_watts`.
[[nodiscard]] Energy leakage_energy(double leakage_watts,
                                    double seconds) noexcept;

/// First-order DRAM access energy (values typical of LPDDR4-class parts:
/// tens of nJ per 64 B line transfer including I/O and activation share).
struct DramParams {
  Energy per_line_read = nJ(15.0);
  Energy per_line_write = nJ(18.0);
  Energy per_word_write = nJ(2.5);  ///< write-through / write-around words

  /// Total DRAM dynamic energy for the traffic a MainMemory absorbed.
  [[nodiscard]] Energy traffic_energy(const MainMemory& mem) const noexcept;
};

}  // namespace cnt
