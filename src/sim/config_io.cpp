#include "sim/config_io.hpp"

#include <stdexcept>

namespace cnt {

namespace {

[[noreturn]] void bad_enum(const std::string& key, const std::string& value) {
  throw std::invalid_argument("config: key '" + key +
                              "' has unknown value '" + value + "'");
}

ReplKind parse_repl(const std::string& key, const std::string& v) {
  if (v == "lru") return ReplKind::kLru;
  if (v == "plru" || v == "tree-plru") return ReplKind::kTreePlru;
  if (v == "fifo") return ReplKind::kFifo;
  if (v == "random") return ReplKind::kRandom;
  bad_enum(key, v);
}

WritePolicy parse_write_policy(const std::string& key, const std::string& v) {
  if (v == "wb" || v == "write-back") return WritePolicy::kWriteBack;
  if (v == "wt" || v == "write-through") return WritePolicy::kWriteThrough;
  bad_enum(key, v);
}

AllocPolicy parse_alloc(const std::string& key, const std::string& v) {
  if (v == "wa" || v == "write-allocate") return AllocPolicy::kWriteAllocate;
  if (v == "nwa" || v == "no-write-allocate") {
    return AllocPolicy::kNoWriteAllocate;
  }
  bad_enum(key, v);
}

FillDirectionPolicy parse_fill(const std::string& key, const std::string& v) {
  if (v == "as-is") return FillDirectionPolicy::kAsIs;
  if (v == "min-write") return FillDirectionPolicy::kMinWriteEnergy;
  if (v == "read-optimized") return FillDirectionPolicy::kReadOptimized;
  if (v == "by-miss-type") return FillDirectionPolicy::kByMissType;
  bad_enum(key, v);
}

WriteGranularity parse_granularity(const std::string& key,
                                   const std::string& v) {
  if (v == "word") return WriteGranularity::kWord;
  if (v == "line") return WriteGranularity::kLine;
  bad_enum(key, v);
}

HistoryScope parse_history(const std::string& key, const std::string& v) {
  if (v == "per-line") return HistoryScope::kPerLine;
  if (v == "per-set") return HistoryScope::kPerSet;
  bad_enum(key, v);
}

ProtectionScheme parse_protection(const std::string& key,
                                  const std::string& v) {
  if (v == "none") return ProtectionScheme::kNone;
  if (v == "parity") return ProtectionScheme::kParity;
  if (v == "secded") return ProtectionScheme::kSecded;
  bad_enum(key, v);
}

}  // namespace

SimConfig sim_config_from(const Config& cfg) {
  SimConfig sim;

  sim.cache.size_bytes = cfg.get_size("cache.size", sim.cache.size_bytes);
  sim.cache.ways = cfg.get_uint("cache.ways", sim.cache.ways);
  sim.cache.line_bytes = cfg.get_size("cache.line", sim.cache.line_bytes);
  sim.cache.addr_bits =
      static_cast<u32>(cfg.get_uint("cache.addr_bits", sim.cache.addr_bits));
  if (const auto v = cfg.get("cache.replacement")) {
    sim.cache.replacement = parse_repl("cache.replacement", *v);
  }
  if (const auto v = cfg.get("cache.write_policy")) {
    sim.cache.write_policy = parse_write_policy("cache.write_policy", *v);
  }
  if (const auto v = cfg.get("cache.alloc")) {
    sim.cache.alloc_policy = parse_alloc("cache.alloc", *v);
  }
  sim.cache.way_prediction =
      cfg.get_bool("cache.way_prediction", sim.cache.way_prediction);
  sim.cache.sector_writeback =
      cfg.get_bool("cache.sector_writeback", sim.cache.sector_writeback);
  sim.cache.idle.idle_per_miss = static_cast<u32>(
      cfg.get_uint("cache.idle_per_miss", sim.cache.idle.idle_per_miss));
  sim.cache.idle.hit_idle_period = static_cast<u32>(
      cfg.get_uint("cache.hit_idle_period", sim.cache.idle.hit_idle_period));

  sim.cnt.window = cfg.get_uint("cnt.window", sim.cnt.window);
  sim.cnt.partitions = cfg.get_uint("cnt.partitions", sim.cnt.partitions);
  sim.cnt.fifo_depth = cfg.get_uint("cnt.fifo_depth", sim.cnt.fifo_depth);
  sim.cnt.delta_t = cfg.get_double("cnt.delta_t", sim.cnt.delta_t);
  if (const auto v = cfg.get("cnt.fill")) {
    sim.cnt.fill_policy = parse_fill("cnt.fill", *v);
  }
  if (const auto v = cfg.get("cnt.granularity")) {
    sim.cnt.write_granularity = parse_granularity("cnt.granularity", *v);
  }
  if (const auto v = cfg.get("cnt.history")) {
    sim.cnt.history_scope = parse_history("cnt.history", *v);
  }
  sim.cnt.account_metadata =
      cfg.get_bool("cnt.account_metadata", sim.cnt.account_metadata);
  sim.cnt.flip_aware_writes =
      cfg.get_bool("cnt.flip_aware", sim.cnt.flip_aware_writes);
  sim.cnt.zero_line_opt =
      cfg.get_bool("cnt.zero_line", sim.cnt.zero_line_opt);

  sim.fault.stuck_per_mbit =
      cfg.get_double("fault.stuck_per_mbit", sim.fault.stuck_per_mbit);
  sim.fault.stuck_at1_fraction =
      cfg.get_double("fault.stuck_at1", sim.fault.stuck_at1_fraction);
  sim.fault.transient_per_read =
      cfg.get_double("fault.transient_per_read", sim.fault.transient_per_read);
  if (const auto v = cfg.get("fault.protection")) {
    sim.fault.protection = parse_protection("fault.protection", *v);
  }
  sim.fault.protect_directions =
      cfg.get_bool("fault.protect_directions", sim.fault.protect_directions);
  sim.fault.seed = cfg.get_uint("fault.seed", sim.fault.seed);

  sim.with_cmos = cfg.get_bool("policies.cmos", sim.with_cmos);
  sim.with_static = cfg.get_bool("policies.static", sim.with_static);
  sim.with_ideal = cfg.get_bool("policies.ideal", sim.with_ideal);

  // Fail fast on invalid geometry.
  sim.cache.validate();
  return sim;
}

std::vector<std::string> known_sim_config_keys() {
  return {
      "cache.size",        "cache.ways",        "cache.line",
      "cache.addr_bits",   "cache.replacement", "cache.write_policy",
      "cache.alloc",       "cache.idle_per_miss", "cache.hit_idle_period",
      "cache.way_prediction", "cache.sector_writeback",
      "cnt.window",        "cnt.partitions",    "cnt.fifo_depth",
      "cnt.delta_t",       "cnt.fill",          "cnt.granularity",
      "cnt.history",       "cnt.account_metadata", "cnt.flip_aware",
      "cnt.zero_line",
      "fault.stuck_per_mbit", "fault.stuck_at1", "fault.transient_per_read",
      "fault.protection",  "fault.protect_directions", "fault.seed",
      "policies.cmos",     "policies.static",   "policies.ideal",
      "workload.name",     "workload.scale",
  };
}

}  // namespace cnt
