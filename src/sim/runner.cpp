#include "sim/runner.hpp"

#include <memory>
#include <span>
#include <stdexcept>

#include "cache/cache.hpp"
#include "cache/main_memory.hpp"
#include "common/cancel.hpp"
#include "cnt/baseline_policies.hpp"
#include "trace/workload_suite.hpp"

namespace cnt {

namespace {

// Inner replay loop, one batch per call. The caller owns the batch
// buffer and all per-run config; this function stays allocation-free so
// replay throughput is bounded by the cache model, not the heap.
// cnt-hot
void replay_batch(Cache& cache, MainMemory& memory,
                  TraceStatsAccumulator& stats_acc,
                  std::span<const MemAccess> batch, u64 line_mask,
                  usize line_bytes, bool warm_sets) {
  // How many accesses ahead to warm the backing store for a potential
  // fill. Far enough to cover a DRAM round-trip at replay speed, near
  // enough that the lines are still cached when the fill copies them.
  constexpr usize kPrefetchDistance = 8;
  const usize got = batch.size();
  for (usize i = 0; i < got; ++i) {
    if (i + kPrefetchDistance < got) {
      const u64 ahead = batch[i + kPrefetchDistance].addr;
      if (warm_sets) cache.prefetch(ahead);
      memory.prefetch_line(ahead & line_mask, line_bytes);
    }
    stats_acc.feed(batch[i]);
    // A single-cache study treats instruction fetches as reads.
    MemAccess routed = batch[i];
    if (routed.op == MemOp::kIFetch) routed.op = MemOp::kRead;
    cache.access(routed);
  }
}

}  // namespace

SimConfig::SimConfig()
    : tech(TechParams::cnfet()), cmos_tech(TechParams::cmos()) {
  cache.name = "L1D";
  cache.size_bytes = 32 * 1024;
  cache.ways = 4;
  cache.line_bytes = 64;
}

const PolicyResult* SimResult::find(std::string_view name) const {
  for (const auto& p : policies) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Energy SimResult::energy(std::string_view name) const {
  const auto* p = find(name);
  if (p == nullptr) {
    throw std::out_of_range("SimResult: no policy named " + std::string(name));
  }
  return p->total();
}

double SimResult::saving(std::string_view opt, std::string_view base) const {
  const double b = energy(base).in_joules();
  const double o = energy(opt).in_joules();
  return b <= 0.0 ? 0.0 : 1.0 - o / b;
}

SimResult simulate(TraceSource& source, std::span<const MemorySegment> init,
                   const SimConfig& cfg) {
  MainMemory memory;
  memory.load(init);

  Cache cache(cfg.cache, memory);
  const ArrayGeometry geom = geometry_of(cfg.cache);

  // Fault campaign: one shared corruption substrate for the functional
  // run (the data array is policy-agnostic), plus the CNT policy's
  // direction-bit domain. Disabled => no hook, no check bits, and results
  // byte-identical to a fault-free build.
  std::unique_ptr<FaultCampaign> campaign;
  if (cfg.fault.enabled()) {
    campaign = std::make_unique<FaultCampaign>(
        cfg.fault, cfg.cache.sets(), cfg.cache.ways, cfg.cache.line_bytes,
        cfg.cnt.partitions);
    cache.set_fault_hook(campaign.get());
  }
  // Baseline-family arrays protect the data line; the CNT array's codeword
  // additionally covers its K direction bits. Check bits widen the row
  // (meta_bits), so decode and leakage see the protected geometry.
  const ProtectionSpec data_prot =
      make_protection_spec(cfg.fault.protection, geom.line_bits(),
                           cfg.cnt.partitions, /*include_directions=*/false);
  const ProtectionSpec cnt_prot = make_protection_spec(
      cfg.fault.protection, geom.line_bits(), cfg.cnt.partitions,
      cfg.fault.protect_directions);
  ArrayGeometry data_geom = geom;
  data_geom.meta_bits += data_prot.check_bits;
  ArrayGeometry cnt_geom = geom;
  cnt_geom.meta_bits += cnt_prot.check_bits;

  // Every policy uses the same write-accounting granularity so the
  // comparison isolates the encoding scheme.
  const WriteGranularity wg = cfg.cnt.write_granularity;

  auto baseline = std::make_unique<PlainPolicy>(std::string(kPolicyBaseline),
                                                cfg.tech, data_geom, wg);
  auto cnt_policy = std::make_unique<CntPolicy>(std::string(kPolicyCnt),
                                                cfg.tech, cnt_geom, cfg.cnt);
  baseline->set_protection(data_prot);
  cnt_policy->set_protection(cnt_prot);
  cnt_policy->attach_direction_hook(campaign.get());
  cache.add_sink(*baseline);
  cache.add_sink(*cnt_policy);

  std::unique_ptr<PlainPolicy> cmos;
  std::unique_ptr<StaticInvertPolicy> static_inv;
  std::unique_ptr<IdealPolicy> ideal;
  if (cfg.with_cmos) {
    cmos = std::make_unique<PlainPolicy>(std::string(kPolicyCmos),
                                         cfg.cmos_tech, data_geom, wg);
    cmos->set_protection(data_prot);
    cache.add_sink(*cmos);
  }
  if (cfg.with_static) {
    static_inv = std::make_unique<StaticInvertPolicy>(
        std::string(kPolicyStatic), cfg.tech, data_geom, wg);
    static_inv->set_protection(data_prot);
    cache.add_sink(*static_inv);
  }
  if (cfg.with_ideal) {
    ideal = std::make_unique<IdealPolicy>(std::string(kPolicyIdeal), cfg.tech,
                                          data_geom, cfg.cnt.partitions, wg);
    ideal->set_protection(data_prot);
    cache.add_sink(*ideal);
  }

  // Pull in batches: keeps virtual dispatch off the per-access path and
  // bounds resident memory at one batch + one decoded chunk regardless of
  // trace length. Statistics accumulate inline on the un-routed access --
  // the same accumulator Trace::stats() uses -- so streamed and in-RAM
  // replay report identical TraceStats.
  source.reset();
  TraceStatsAccumulator stats_acc;
  std::vector<MemAccess> batch(4096);
  const u64 line_mask = ~static_cast<u64>(cfg.cache.line_bytes - 1);
  // Warming the cache's own set arrays only pays when the data store
  // outgrows the CPU's caches; for KiB-scale configs the set is already
  // resident and the extra prefetches are pure overhead.
  const bool warm_sets = cfg.cache.size_bytes > (usize{1} << 21);
  for (;;) {
    // Cooperative cancellation, once per 4096-access batch (one relaxed
    // atomic load, docs/robustness.md) -- never inside replay_batch.
    cancel::throw_if_cancelled("sim.replay");
    const usize got = source.next(batch);
    if (got == 0) break;
    replay_batch(cache, memory, stats_acc,
                 std::span<const MemAccess>(batch.data(), got), line_mask,
                 cfg.cache.line_bytes, warm_sets);
  }

  SimResult res;
  res.workload = source.name();
  res.trace_stats = stats_acc.finish();
  res.cache_stats = cache.stats();
  if (campaign) {
    res.has_fault = true;
    res.fault_stats = campaign->stats();
  }

  auto take = [&res](const EnergyPolicyBase& p) {
    PolicyResult pr;
    pr.name = p.name();
    pr.ledger = p.ledger();
    res.policies.push_back(std::move(pr));
  };

  if (cmos) take(*cmos);
  take(*baseline);
  if (static_inv) take(*static_inv);
  {
    PolicyResult pr;
    pr.name = cnt_policy->name();
    pr.ledger = cnt_policy->ledger();
    pr.has_cnt_stats = true;
    pr.cnt_stats = cnt_policy->stats();
    pr.queue_stats = cnt_policy->queue_stats();
    res.policies.push_back(std::move(pr));
  }
  if (ideal) take(*ideal);
  return res;
}

SimResult simulate(const Workload& w, const SimConfig& cfg) {
  VectorTraceSource source(w.trace);
  SimResult res = simulate(source, w.init, cfg);
  res.workload = w.name;
  return res;
}

std::vector<SimResult> run_suite(const SimConfig& cfg, double scale,
                                 u64 seed_offset) {
  std::vector<SimResult> results;
  for (const auto& entry : default_suite()) {
    results.push_back(simulate(entry.build(scale, seed_offset), cfg));
  }
  return results;
}

}  // namespace cnt
